// Bit-exactness goldens for the warp interpreter.
//
// Every scenario below runs real kernels and folds (a) every metric exported
// by visit_metrics plus the raw requested-byte counters of every launch and
// (b) every output mask byte into an FNV-1a hash, recorded here as a golden.
// The final launch's metric vector is additionally recorded field-by-field
// so a mismatch names the counter that moved instead of just "hash differs".
//
// The table pins the interpreter's observable behavior across the surfaces
// an optimization could plausibly disturb: all six optimization levels A-F
// (AoS + SoA layouts, branchy + predicated control), the tiled shared-memory
// kernel, ragged last warps (grid not a warp multiple), a custom kernel with
// a divergent while_any and every charge path (SP/DP/int arithmetic,
// divides, sqrt, fma, select, compares, casts, vote, shuffle reduction,
// shared-memory bank conflicts), each at 1, 2 and 8 executor threads.
// Fast-path refactors of the interpreter must keep every value identical.
//
// Regenerating after an *intentional* accounting change:
//   MOG_INTERP_GOLDEN_REGEN=1 ./test_interp_fastpath
//       --gtest_filter=InterpGoldensTable.Regenerate
// and paste the printed table over kGoldens.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mog/gpusim/kernel_launch.hpp"
#include "mog/kernels/mog_kernels.hpp"
#include "mog/kernels/postproc_kernels.hpp"
#include "mog/kernels/tiled_kernel.hpp"
#include "mog/video/scene.hpp"

namespace mog {
namespace {

using gpusim::Addr;
using gpusim::BlockCtx;
using gpusim::Device;
using gpusim::DeviceSpec;
using gpusim::KernelStats;
using gpusim::LaunchConfig;
using gpusim::Pred;
using gpusim::Vec;
using gpusim::WarpCtx;
using kernels::DeviceMogState;
using kernels::OptLevel;
using kernels::ParamLayout;

constexpr int kMetricCount = 23;

/// visit_metrics order; checked at runtime so a reordered or renamed field
/// fails loudly instead of silently shifting the golden columns.
constexpr const char* kMetricNames[kMetricCount] = {
    "load_instructions",     "store_instructions",
    "load_transactions",     "store_transactions",
    "rmw_transactions",      "bytes_transferred_load",
    "bytes_transferred_store", "dram_page_switches",
    "branches_executed",     "branches_divergent",
    "issue_cycles",          "warp_instructions",
    "shared_accesses",       "shared_cycles",
    "shared_replay_cycles",  "num_blocks",
    "num_warps",             "regs_per_thread",
    "threads_per_block",     "shared_bytes_per_block",
    "memory_access_efficiency", "branch_efficiency",
    "divergence_ratio",
};

struct Snapshot {
  std::vector<std::string> names;  ///< metric names of the final launch
  std::vector<double> last;        ///< metric values of the final launch
  std::uint64_t hash = 14695981039346656037ull;  ///< FNV-1a over everything
};

void mix(Snapshot& snap, const void* p, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    snap.hash ^= bytes[i];
    snap.hash *= 1099511628211ull;
  }
}

void fold_stats(Snapshot& snap, const KernelStats& stats) {
  snap.names.clear();
  snap.last.clear();
  gpusim::visit_metrics(stats, [&](const char* name, double v, bool) {
    snap.names.emplace_back(name);
    snap.last.push_back(v);
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    mix(snap, &bits, sizeof bits);
  });
  // Requested bytes feed the gated efficiency metric but are not exported
  // individually; pin the raw counters too.
  const std::uint64_t raw[2] = {stats.bytes_requested_load,
                                stats.bytes_requested_store};
  mix(snap, raw, sizeof raw);
}

Device make_device(int executor_threads) {
  DeviceSpec spec;
  spec.executor_threads = executor_threads;
  return Device{spec};
}

SceneConfig scene_config(int w, int h) {
  SceneConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.seed = 1234;
  return cfg;
}

/// Per-frame MoG launches at one optimization level; `w*h` need not be a
/// multiple of the warp or block size (ragged scenarios rely on that).
Snapshot run_mog(OptLevel level, int threads, int w, int h, int num_frames) {
  Device device = make_device(threads);
  const MogParams params;
  const auto tp = TypedMogParams<double>::from(params);
  DeviceMogState<double> state{device, w, h, params,
                               kernels::uses_aos_layout(level)
                                   ? ParamLayout::kAoS
                                   : ParamLayout::kSoA};
  auto frame_buf = device.memory().alloc<std::uint8_t>(state.num_pixels());
  auto fg_buf = device.memory().alloc<std::uint8_t>(state.num_pixels());
  const SyntheticScene scene{scene_config(w, h)};
  std::vector<std::uint8_t> fg(state.num_pixels());
  Snapshot snap;
  for (int t = 0; t < num_frames; ++t) {
    const FrameU8 f = scene.frame(t);
    gpusim::copy_to_device(frame_buf, f.data(), f.size());
    const KernelStats stats = kernels::launch_mog_frame<double>(
        device, state, frame_buf, fg_buf, tp, level);
    gpusim::copy_from_device(fg.data(), fg_buf, fg.size());
    fold_stats(snap, stats);
    mix(snap, fg.data(), fg.size());
  }
  return snap;
}

/// One tiled frame-group launch (shared-memory parameter residency).
Snapshot run_tiled(int threads) {
  Device device = make_device(threads);
  const int w = 64, h = 48, group = 4;
  const MogParams params;
  const auto tp = TypedMogParams<double>::from(params);
  DeviceMogState<double> state{device, w, h, params, ParamLayout::kSoA};
  kernels::TiledConfig tcfg;
  tcfg.frame_group = group;
  const SyntheticScene scene{scene_config(w, h)};
  std::vector<gpusim::DevSpan<std::uint8_t>> frames, fgs;
  for (int t = 0; t < group; ++t) {
    frames.push_back(device.memory().alloc<std::uint8_t>(state.num_pixels()));
    fgs.push_back(device.memory().alloc<std::uint8_t>(state.num_pixels()));
    const FrameU8 f = scene.frame(t);
    gpusim::copy_to_device(frames.back(), f.data(), f.size());
  }
  const KernelStats stats = kernels::launch_tiled_group<double>(
      device, state, frames, fgs, tp, tcfg);
  Snapshot snap;
  fold_stats(snap, stats);
  std::vector<std::uint8_t> fg(state.num_pixels());
  for (const auto& buf : fgs) {
    gpusim::copy_from_device(fg.data(), buf, fg.size());
    mix(snap, fg.data(), fg.size());
  }
  return snap;
}

/// Custom kernel exercising every charge path the MoG kernels do not:
/// a data-dependent while_any (lanes drop out at different trip counts),
/// a divergent if_then_else, int/SP/DP arithmetic, both divide pipes,
/// sqrt, fma, select, all comparison flavors, vcast in both directions,
/// vote (any), shuffle reduction (lane_max), and conflicted shared-memory
/// traffic — on a grid with a ragged last block and last warp.
Snapshot run_divergent(int threads) {
  Device device = make_device(threads);
  const std::int64_t n = 1000;  // 7 full blocks + 104-thread ragged block
  auto in = device.memory().alloc<double>(static_cast<std::size_t>(n));
  auto out = device.memory().alloc<double>(static_cast<std::size_t>(n));
  std::vector<double> host(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < host.size(); ++i)
    host[i] = static_cast<double>((i * 37) % 7) + 0.25;  // trip counts 0..6
  gpusim::copy_to_device(in, host.data(), host.size());
  std::fill(host.begin(), host.end(), 0.0);
  gpusim::copy_to_device(out, host.data(), host.size());

  const KernelStats stats = device.launch(
      LaunchConfig{n, 128}, [&](BlockCtx& blk) {
        auto sh = blk.shared_alloc<double>(64);
        blk.parallel([&](WarpCtx& warp) {
          const Vec<Addr> gid = warp.global_ids();
          Vec<double> x = warp.load<double>(in, gid);
          Vec<std::int32_t> limit = vcast<std::int32_t>(x);
          Vec<std::int32_t> i{0};
          Vec<double> acc{0.0};
          warp.while_any([&] { return vlt(i, limit); },
                         [&] {
                           warp.set(acc, vfma(acc, Vec<double>{0.5},
                                              vsqrt(x)));
                           warp.set(i, i + 1);
                         });
          warp.if_then_else(
              vgt(x, Vec<double>{3.0}),
              [&] { warp.set(acc, acc + x); },
              [&] { warp.set(acc, acc * Vec<double>{1.5}); });
          warp.if_then(veq(i, limit),
                       [&] { warp.set(acc, acc + Vec<double>{1.0}); });
          // SP pipes: cast down, sqrt + divide in float, cast back up.
          const Vec<float> f = vsqrt(vcast<float>(x) + 1.0f) / 2.0f;
          warp.set(acc, acc + vcast<double>(f));
          warp.set(acc, vmin(vabs(acc), vmax(acc, x)));
          const Pred p = vge(acc, x) | ~vle(acc, Vec<double>{4.0});
          warp.set(acc, select(p, acc - x, acc));
          // Stride-2 doubles: 4 distinct words per bank, 4-way conflict.
          const Vec<Addr> sidx = Vec<Addr>::iota(0, 2);
          warp.shared_store(sh, sidx, acc);
          const Vec<double> y = warp.shared_load(sh, sidx);
          (void)warp.any(vgt(y, Vec<double>{2.0}));
          const std::int32_t m = warp.lane_max(limit);
          warp.store(out, gid,
                     y + Vec<double>{static_cast<double>(m)} / x);
        });
      });

  Snapshot snap;
  fold_stats(snap, stats);
  gpusim::copy_from_device(host.data(), out, host.size());
  mix(snap, host.data(), host.size() * sizeof(double));
  return snap;
}

/// Level-G epilogue: MoG frames at F, each raw mask cleaned by the fused
/// postproc kernel; folds both launches' stats and the cleaned mask. The
/// ragged variant overhangs the 32-wide tile on both axes.
Snapshot run_fused_pp(int threads, int w, int h, int num_frames) {
  Device device = make_device(threads);
  const MogParams params;
  const auto tp = TypedMogParams<double>::from(params);
  DeviceMogState<double> state{device, w, h, params, ParamLayout::kSoA};
  auto frame_buf = device.memory().alloc<std::uint8_t>(state.num_pixels());
  auto fg_buf = device.memory().alloc<std::uint8_t>(state.num_pixels());
  auto pp_buf = device.memory().alloc<std::uint8_t>(state.num_pixels());
  const SyntheticScene scene{scene_config(w, h)};
  const ValidationConfig vcfg = fused_validation_config();
  std::vector<std::uint8_t> fg(state.num_pixels());
  Snapshot snap;
  for (int t = 0; t < num_frames; ++t) {
    const FrameU8 f = scene.frame(t);
    gpusim::copy_to_device(frame_buf, f.data(), f.size());
    const KernelStats mog_stats = kernels::launch_mog_frame<double>(
        device, state, frame_buf, fg_buf, tp, OptLevel::kF);
    fold_stats(snap, mog_stats);
    const KernelStats pp_stats = kernels::launch_fused_postproc(
        device, fg_buf, pp_buf, w, h, vcfg, 128);
    fold_stats(snap, pp_stats);
    gpusim::copy_from_device(fg.data(), pp_buf, fg.size());
    mix(snap, fg.data(), fg.size());
  }
  return snap;
}

constexpr const char* kScenarios[] = {
    "mog_A", "mog_B", "mog_C", "mog_D", "mog_E", "mog_F",
    "tiled", "ragged_A", "ragged_E", "divergent",
    "fused_pp", "fused_pp_ragged",
};

Snapshot run_scenario(const std::string& name, int threads) {
  if (name == "mog_A") return run_mog(OptLevel::kA, threads, 64, 48, 3);
  if (name == "mog_B") return run_mog(OptLevel::kB, threads, 64, 48, 3);
  if (name == "mog_C") return run_mog(OptLevel::kC, threads, 64, 48, 3);
  if (name == "mog_D") return run_mog(OptLevel::kD, threads, 64, 48, 3);
  if (name == "mog_E") return run_mog(OptLevel::kE, threads, 64, 48, 3);
  if (name == "mog_F") return run_mog(OptLevel::kF, threads, 64, 48, 3);
  if (name == "tiled") return run_tiled(threads);
  // 61*17 = 1037 threads: 9 blocks, the last with 13 → a 13-lane warp.
  if (name == "ragged_A") return run_mog(OptLevel::kA, threads, 61, 17, 3);
  if (name == "ragged_E") return run_mog(OptLevel::kE, threads, 61, 17, 3);
  if (name == "divergent") return run_divergent(threads);
  if (name == "fused_pp") return run_fused_pp(threads, 64, 48, 3);
  if (name == "fused_pp_ragged") return run_fused_pp(threads, 61, 17, 3);
  ADD_FAILURE() << "unknown scenario " << name;
  return {};
}

struct Golden {
  const char* scenario;
  std::uint64_t hash;
  double last[kMetricCount];
};

// Recorded from the interpreter before the fast-path refactor (regenerate
// only for an intentional accounting change; see file header).
constexpr Golden kGoldens[] = {
    {"mog_A",
     0xfd2d3e6ae2f9d6d3ull,
     {0x1.ep+9, 0x1.ddp+9, 0x1.e9p+13,
      0x1.f2p+13, 0x1.efp+13, 0x1.e9p+20,
      0x1.f08p+19, 0x1.cp+5, 0x1.3bap+12,
      0x1.e7p+8, 0x1.7f73p+17, 0x1.0ad4p+14,
      0x0p+0, 0x0p+0, 0x0p+0,
      0x1.8p+4, 0x1.8p+6, 0x1.3p+5,
      0x1p+7, 0x0p+0, 0x1.e03a55f0e52d1p-4,
      0x1.ce9ffcc171db5p-1, 0x1.8b0019f471258p-4,}},
    {"mog_B",
     0xf09c7b9a11eb5cbeull,
     {0x1.ep+9, 0x1.ddp+9, 0x1.c8p+10,
      0x1.428p+12, 0x1.004p+11, 0x1.c8p+17,
      0x1.c2ap+17, 0x1.cp+5, 0x1.3bap+12,
      0x1.e7p+8, 0x1.9f54p+16, 0x1.e5d8p+13,
      0x0p+0, 0x0p+0, 0x0p+0,
      0x1.8p+4, 0x1.8p+6, 0x1.3p+5,
      0x1p+7, 0x0p+0, 0x1.8683169fe3c37p-1,
      0x1.ce9ffcc171db5p-1, 0x1.8b0019f471258p-4,}},
    {"mog_C",
     0xf09c7b9a11eb5cbeull,
     {0x1.ep+9, 0x1.ddp+9, 0x1.c8p+10,
      0x1.428p+12, 0x1.004p+11, 0x1.c8p+17,
      0x1.c2ap+17, 0x1.cp+5, 0x1.3bap+12,
      0x1.e7p+8, 0x1.9f54p+16, 0x1.e5d8p+13,
      0x0p+0, 0x0p+0, 0x0p+0,
      0x1.8p+4, 0x1.8p+6, 0x1.3p+5,
      0x1p+7, 0x0p+0, 0x1.8683169fe3c37p-1,
      0x1.ce9ffcc171db5p-1, 0x1.8b0019f471258p-4,}},
    {"mog_D",
     0xd19db8481347ee3aull,
     {0x1.ep+9, 0x1.ddp+9, 0x1.c8p+10,
      0x1.428p+12, 0x1.004p+11, 0x1.c8p+17,
      0x1.c2ap+17, 0x1.cp+5, 0x1.9f4p+11,
      0x1.23p+8, 0x1.2254p+16, 0x1.9678p+13,
      0x0p+0, 0x0p+0, 0x0p+0,
      0x1.8p+4, 0x1.8p+6, 0x1.18p+5,
      0x1p+7, 0x0p+0, 0x1.8683169fe3c37p-1,
      0x1.d326607b4c998p-1, 0x1.66ccfc259b34p-4,}},
    {"mog_E",
     0xeba36875f6f5b93dull,
     {0x1.ep+9, 0x1.18p+10, 0x1.c8p+10,
      0x1.c5cp+12, 0x1.f4p+7, 0x1.c8p+17,
      0x1.d56p+17, 0x1.cp+5, 0x1.7b4p+11,
      0x1.5cp+6, 0x1.0dbdp+16, 0x1.b71p+13,
      0x0p+0, 0x0p+0, 0x0p+0,
      0x1.8p+4, 0x1.8p+6, 0x1.38p+5,
      0x1p+7, 0x0p+0, 0x1.e76e3552c0565p-1,
      0x1.f151821c036p-1, 0x1.d5cfbc7f94p-6,}},
    {"mog_F",
     0x74d01b4a380a5680ull,
     {0x1.ep+9, 0x1.18p+10, 0x1.c8p+10,
      0x1.c5cp+12, 0x1.f4p+7, 0x1.c8p+17,
      0x1.d56p+17, 0x1.cp+5, 0x1.7b4p+11,
      0x1.5cp+6, 0x1.123dp+16, 0x1.c91p+13,
      0x0p+0, 0x0p+0, 0x0p+0,
      0x1.8p+4, 0x1.8p+6, 0x1.18p+5,
      0x1p+7, 0x0p+0, 0x1.e76e3552c0565p-1,
      0x1.f151821c036p-1, 0x1.d5cfbc7f94p-6,}},
    {"tiled",
     0x59b6b36d4884d1a7ull,
     {0x1.38p+10, 0x1.38p+10, 0x1.08p+11,
      0x1.c8p+12, 0x0p+0, 0x1.08p+18,
      0x1.c8p+17, 0x1.5p+6, 0x1.cf6p+12,
      0x1.61p+8, 0x1.dae7p+17, 0x1.fc72p+15,
      0x1.db68p+13, 0x1.c398p+15, 0x1.4cbep+15,
      0x1.4p+2, 0x1.2p+9, 0x1p+5,
      0x1.4p+9, 0x1.68p+15, 0x1.da895da895da9p-1,
      0x1.e79f516b862e4p-1, 0x1.860ae9479d1cp-5,}},
    {"ragged_A",
     0x0342147094f13520ull,
     {0x1.4ap+8, 0x1.4cp+8, 0x1.4a5p+12,
      0x1.4fep+12, 0x1.4dep+12, 0x1.4a5p+19,
      0x1.4eep+18, 0x1.3p+4, 0x1.b6cp+10,
      0x1.54p+7, 0x1.078ep+16, 0x1.744p+12,
      0x0p+0, 0x0p+0, 0x0p+0,
      0x1.2p+3, 0x1.08p+5, 0x1.3p+5,
      0x1p+7, 0x0p+0, 0x1.e0062bf9505c9p-4,
      0x1.ce679123bce68p-1, 0x1.8cc376e218ccp-4,}},
    {"ragged_E",
     0xfe276c2f75127fbaull,
     {0x1.4ap+8, 0x1.82p+8, 0x1.98p+9,
      0x1.4cep+11, 0x1.f2p+8, 0x1.98p+16,
      0x1.8b2p+16, 0x1.3p+4, 0x1.098p+10,
      0x1.dp+4, 0x1.8c6cp+14, 0x1.304p+12,
      0x0p+0, 0x0p+0, 0x0p+0,
      0x1.2p+3, 0x1.08p+5, 0x1.38p+5,
      0x1p+7, 0x0p+0, 0x1.7b4da81a74e74p-1,
      0x1.f204d2331a842p-1, 0x1.bf65b99caf7cp-6,}},
    {"divergent",
     0x829ec023cb2d3142ull,
     {0x1p+5, 0x1p+5, 0x1.f8p+5,
      0x1.f4p+7, 0x0p+0, 0x1.f8p+12,
      0x1.f4p+12, 0x1p+2, 0x1.2p+8,
      0x1.cp+7, 0x1.a0ep+14, 0x1.5cp+11,
      0x1p+6, 0x1.f4p+8, 0x1.b4p+8,
      0x1p+3, 0x1p+5, 0x1.4p+4,
      0x1p+7, 0x1p+9, 0x1.fdf5cd0105198p-1,
      0x1.c71c71c71c71cp-3, 0x1.8e38e38e38e39p-1,}},
    {"fused_pp",
     0x6fbd8005376705baull,
     {0x1.14p+8, 0x1.8p+6, 0x1.78p+8,
      0x1.8p+6, 0x0p+0, 0x1.78p+15,
      0x1.8p+11, 0x1.8p+1, 0x1.14p+11,
      0x1.22p+8, 0x1.ee5p+16, 0x1.75cap+16,
      0x1.38p+12, 0x1.dap+12, 0x1.44p+11,
      0x1.8p+4, 0x1.8p+8, 0x1.ap+4,
      0x1p+7, 0x1.b4p+11, 0x1.ba147ae147ae1p-3,
      0x1.bcc0ed7303b5dp-1, 0x1.0cfc4a33f128cp-3,}},
    {"fused_pp_ragged",
     0x4869cabba3573eccull,
     {0x1.8p+6, 0x1.1p+5, 0x1.02p+7,
      0x1.04p+6, 0x1p+6, 0x1.02p+14,
      0x1.02p+12, 0x1p+1, 0x1.ccp+9,
      0x1.f8p+6, 0x1.9564p+15, 0x1.2e98p+15,
      0x1.fa8p+10, 0x1.844p+11, 0x1.0ep+10,
      0x1.4p+3, 0x1.4p+7, 0x1.ap+4,
      0x1p+7, 0x1.b4p+11, 0x1.6a2ba8aea2ba9p-3,
      0x1.b9e0d5b45023ap-1, 0x1.187ca92ebf718p-3,}},
};

class InterpGoldens : public ::testing::TestWithParam<int> {};

TEST_P(InterpGoldens, BitIdenticalAcrossExecutorThreadCounts) {
  const Golden& golden = kGoldens[static_cast<std::size_t>(GetParam())];
  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE(std::string{golden.scenario} + " @ executor_threads=" +
                 std::to_string(threads));
    const Snapshot snap = run_scenario(golden.scenario, threads);
    ASSERT_EQ(snap.last.size(), static_cast<std::size_t>(kMetricCount));
    for (int i = 0; i < kMetricCount; ++i) {
      EXPECT_EQ(snap.names[static_cast<std::size_t>(i)], kMetricNames[i]);
      // Bit comparison: NaN-proof and immune to -0.0 vs 0.0 drift.
      std::uint64_t got, want;
      std::memcpy(&got, &snap.last[static_cast<std::size_t>(i)], 8);
      std::memcpy(&want, &golden.last[i], 8);
      EXPECT_EQ(got, want) << kMetricNames[i] << ": got "
                           << snap.last[static_cast<std::size_t>(i)]
                           << " want " << golden.last[i];
    }
    EXPECT_EQ(snap.hash, golden.hash) << "per-launch stats or masks changed";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, InterpGoldens,
    ::testing::Range(0, static_cast<int>(std::size(kGoldens))),
    [](const auto& suite_info) {
      return std::string{kGoldens[suite_info.param].scenario};
    });

TEST(InterpGoldensTable, ScenarioListMatches) {
  ASSERT_EQ(std::size(kGoldens), std::size(kScenarios));
  for (std::size_t i = 0; i < std::size(kScenarios); ++i)
    EXPECT_STREQ(kGoldens[i].scenario, kScenarios[i]);
}

TEST(InterpGoldensTable, Regenerate) {
  if (std::getenv("MOG_INTERP_GOLDEN_REGEN") == nullptr)
    GTEST_SKIP() << "set MOG_INTERP_GOLDEN_REGEN=1 to print a fresh table";
  for (const char* name : kScenarios) {
    const Snapshot snap = run_scenario(name, 1);
    ASSERT_EQ(snap.last.size(), static_cast<std::size_t>(kMetricCount));
    std::printf("    {\"%s\",\n     0x%016llxull,\n     {", name,
                static_cast<unsigned long long>(snap.hash));
    for (int i = 0; i < kMetricCount; ++i)
      std::printf("%a,%s", snap.last[static_cast<std::size_t>(i)],
                  i + 1 == kMetricCount ? "}},\n" : i % 3 == 2 ? "\n      " : " ");
  }
}

}  // namespace
}  // namespace mog
