// Tests for the quality metrics: image ops, SSIM, MS-SSIM, confusion
// counts. SSIM properties follow Wang et al.: identity → 1, symmetric,
// degraded inputs score lower, and heavier degradation scores lower still.
#include <gtest/gtest.h>

#include <cmath>

#include "mog/common/rng.hpp"
#include "mog/metrics/confusion.hpp"
#include "mog/metrics/image_ops.hpp"
#include "mog/metrics/ssim.hpp"
#include "mog/video/scene.hpp"

namespace mog {
namespace {

Image<double> test_image(int w = 96, int h = 96, std::uint64_t seed = 3) {
  SceneConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.seed = seed;
  const SyntheticScene scene{cfg};
  return to_real<double>(scene.frame(0));
}

// Textured image at sizes below SyntheticScene's 16x16 floor: a ramp plus
// seeded noise gives SSIM real structure to score.
Image<double> tiny_image(int w, int h, std::uint64_t seed = 3) {
  Rng rng{seed};
  Image<double> img(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      img.at(x, y) = std::clamp(
          20.0 + 10.0 * x + 6.0 * y + rng.normal(0.0, 8.0), 0.0, 255.0);
  return img;
}

Image<double> add_noise(const Image<double>& src, double sd,
                        std::uint64_t seed = 1) {
  Rng rng{seed};
  Image<double> out = src;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = std::clamp(out[i] + rng.normal(0.0, sd), 0.0, 255.0);
  }
  return out;
}

TEST(ImageOps, BlurPreservesConstantImage) {
  Image<double> img(32, 32, 100.0);
  const Image<double> blurred = gaussian_blur_ssim(img);
  for (std::size_t i = 0; i < blurred.size(); ++i)
    ASSERT_NEAR(blurred[i], 100.0, 1e-9);
}

TEST(ImageOps, BlurReducesVariance) {
  const Image<double> img = add_noise(Image<double>(64, 64, 128.0), 20.0);
  const Image<double> blurred = gaussian_blur_ssim(img);
  const double m0 = mean(img);
  double var0 = 0, var1 = 0;
  for (std::size_t i = 0; i < img.size(); ++i) {
    var0 += (img[i] - m0) * (img[i] - m0);
    var1 += (blurred[i] - m0) * (blurred[i] - m0);
  }
  EXPECT_LT(var1, var0 * 0.3);
}

TEST(ImageOps, DownsampleHalvesDimensions) {
  const Image<double> img = test_image(64, 48);
  const Image<double> half = downsample2(img);
  EXPECT_EQ(half.width(), 32);
  EXPECT_EQ(half.height(), 24);
}

TEST(ImageOps, DownsampleAveragesBlocks) {
  Image<double> img(4, 2);
  img.at(0, 0) = 0;
  img.at(1, 0) = 4;
  img.at(0, 1) = 8;
  img.at(1, 1) = 12;
  const Image<double> half = downsample2(img);
  EXPECT_DOUBLE_EQ(half.at(0, 0), 6.0);
}

TEST(ImageOps, MseAndPsnr) {
  const Image<double> a = test_image();
  EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
  EXPECT_TRUE(std::isinf(psnr(a, a)));
  Image<double> b = a;
  b[0] += 10.0;
  EXPECT_GT(mse(a, b), 0.0);
  EXPECT_LT(psnr(a, b), 100.0);
}

TEST(Ssim, IdentityIsOne) {
  const Image<double> a = test_image();
  EXPECT_NEAR(ssim(a, a), 1.0, 1e-12);
  EXPECT_NEAR(ms_ssim(a, a), 1.0, 1e-9);
}

TEST(Ssim, Symmetric) {
  const Image<double> a = test_image(96, 96, 1);
  const Image<double> b = add_noise(a, 12.0);
  EXPECT_NEAR(ssim(a, b), ssim(b, a), 1e-12);
}

TEST(Ssim, BoundedAndMonotoneInDegradation) {
  const Image<double> a = test_image();
  const Image<double> mild = add_noise(a, 6.0);
  const Image<double> heavy = add_noise(a, 40.0);
  const double s_mild = ssim(a, mild);
  const double s_heavy = ssim(a, heavy);
  EXPECT_LT(s_heavy, s_mild);
  EXPECT_LT(s_mild, 1.0);
  EXPECT_GT(s_heavy, -1.0);
}

TEST(Ssim, InsensitiveToSmallLuminanceShiftComparedToMse) {
  // SSIM's hallmark: a global brightness shift hurts much less than the
  // same MSE spent on structural noise.
  const Image<double> a = test_image();
  Image<double> shifted = a;
  for (std::size_t i = 0; i < shifted.size(); ++i)
    shifted[i] = std::clamp(shifted[i] + 8.0, 0.0, 255.0);
  const Image<double> noisy = add_noise(a, 8.0);
  EXPECT_GT(ssim(a, shifted), ssim(a, noisy));
}

TEST(MsSsim, MonotoneInDegradation) {
  const Image<double> a = test_image(192, 192);
  const double m1 = ms_ssim(a, add_noise(a, 5.0));
  const double m2 = ms_ssim(a, add_noise(a, 25.0));
  EXPECT_LT(m2, m1);
  EXPECT_LT(m1, 1.0);
  EXPECT_GE(m2, 0.0);
}

TEST(MsSsim, WorksOnBinaryMasks) {
  // Table IV compares binary foreground masks; flipping a small patch
  // should cost a little, flipping a lot should cost a lot.
  FrameU8 ref(96, 96, 0);
  for (int y = 30; y < 60; ++y)
    for (int x = 30; x < 60; ++x) ref.at(x, y) = 255;
  FrameU8 close = ref;
  for (int y = 30; y < 34; ++y)
    for (int x = 30; x < 34; ++x) close.at(x, y) = 0;
  FrameU8 far = ref;
  for (int y = 30; y < 60; ++y)
    for (int x = 30; x < 45; ++x) far.at(x, y) = 0;
  const double s_close = ms_ssim(close, ref);
  const double s_far = ms_ssim(far, ref);
  EXPECT_GT(s_close, s_far);
  EXPECT_GT(s_close, 0.9);
}

TEST(MsSsim, ScaleReductionForSmallImages) {
  // 32x32 only fits 2 dyadic scales; must not throw and must stay sane.
  const Image<double> a = test_image(32, 32);
  const double m = ms_ssim(a, add_noise(a, 10.0));
  EXPECT_GT(m, 0.0);
  EXPECT_LT(m, 1.0);
}

TEST(MsSsim, TinyImagesUseGlobalStatisticsFallback) {
  // 8x8 is below the 11x11 window: one scale from whole-image statistics.
  // Identity must still score 1 and degradation must still rank.
  const Image<double> a = tiny_image(8, 8);
  EXPECT_NEAR(ms_ssim(a, a), 1.0, 1e-12);
  const double m1 = ms_ssim(a, add_noise(a, 5.0));
  const double m2 = ms_ssim(a, add_noise(a, 40.0));
  EXPECT_LT(m2, m1);
  EXPECT_LT(m1, 1.0);
  EXPECT_GE(m2, 0.0);
}

TEST(MsSsim, SixteenSquareGetsExactlyOneWindowedScale) {
  // 16x16 holds the 11x11 window once; the 8x8 second scale must not be
  // attempted (it would throw before the fallback existed).
  const Image<double> a = test_image(16, 16);
  EXPECT_NEAR(ms_ssim(a, a), 1.0, 1e-12);
  const double m = ms_ssim(a, add_noise(a, 10.0));
  EXPECT_GT(m, 0.0);
  EXPECT_LT(m, 1.0);
}

TEST(MsSsim, SubWindowDimensionFallsBack) {
  // 17x9: wide enough for the window but too short — either dimension below
  // 11 must route to the global-statistics fallback, not throw.
  const Image<double> a = tiny_image(17, 9);
  EXPECT_NEAR(ms_ssim(a, a), 1.0, 1e-12);
  const double m = ms_ssim(a, add_noise(a, 10.0));
  EXPECT_GT(m, 0.0);
  EXPECT_LT(m, 1.0);
  // Single-scale ssim() takes the same fallback.
  EXPECT_NEAR(ssim(a, a), 1.0, 1e-12);
}

TEST(Ssim, RejectsShapeMismatch) {
  const Image<double> a(32, 32, 1.0), b(32, 16, 1.0);
  EXPECT_THROW(ssim(a, b), Error);
}

TEST(Confusion, CountsAndDerivedMetrics) {
  FrameU8 pred(4, 2, 0), truth(4, 2, 0);
  pred.at(0, 0) = 255;  // FP
  pred.at(1, 0) = 255;  // TP
  truth.at(1, 0) = 255;
  truth.at(2, 0) = 255;  // FN
  const ConfusionCounts c = compare_masks(pred, truth);
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.tn, 5u);
  EXPECT_DOUBLE_EQ(c.precision(), 0.5);
  EXPECT_DOUBLE_EQ(c.recall(), 0.5);
  EXPECT_DOUBLE_EQ(c.f1(), 0.5);
  EXPECT_NEAR(c.iou(), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.75);
}

TEST(Confusion, EmptyMasksAreWellDefined) {
  FrameU8 a(4, 4, 0), b(4, 4, 0);
  const ConfusionCounts c = compare_masks(a, b);
  EXPECT_DOUBLE_EQ(c.precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.f1(), 0.0);
  EXPECT_DOUBLE_EQ(c.accuracy(), 1.0);
}

TEST(Confusion, Accumulation) {
  FrameU8 pred(2, 2, 255), truth(2, 2, 255);
  ConfusionCounts total = compare_masks(pred, truth);
  total += compare_masks(pred, truth);
  EXPECT_EQ(total.tp, 8u);
}

TEST(Confusion, Disagreement) {
  FrameU8 a(4, 4, 0), b(4, 4, 0);
  EXPECT_DOUBLE_EQ(mask_disagreement(a, b), 0.0);
  b.at(0, 0) = 255;
  b.at(1, 1) = 17;  // any nonzero counts as foreground
  EXPECT_DOUBLE_EQ(mask_disagreement(a, b), 2.0 / 16.0);
}

}  // namespace
}  // namespace mog
