// Tests for the synthetic scene generator and PGM I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <vector>

#include "mog/video/pnm_io.hpp"
#include "mog/video/scene.hpp"

namespace mog {
namespace {

SceneConfig small_scene() {
  SceneConfig cfg;
  cfg.width = 64;
  cfg.height = 48;
  cfg.seed = 5;
  return cfg;
}

TEST(Scene, DeterministicAcrossInstances) {
  const SyntheticScene a{small_scene()}, b{small_scene()};
  EXPECT_EQ(a.frame(0), b.frame(0));
  EXPECT_EQ(a.frame(17), b.frame(17));
  EXPECT_EQ(a.truth(17), b.truth(17));
}

TEST(Scene, FramesCanBeGeneratedOutOfOrder) {
  const SyntheticScene s{small_scene()};
  const FrameU8 f10 = s.frame(10);
  s.frame(3);  // interleave another frame
  EXPECT_EQ(s.frame(10), f10);
}

TEST(Scene, SeedChangesContent) {
  SceneConfig cfg = small_scene();
  const SyntheticScene a{cfg};
  cfg.seed = 6;
  const SyntheticScene b{cfg};
  EXPECT_FALSE(a.frame(0) == b.frame(0));
}

TEST(Scene, TruthMaskMarksObjects) {
  SceneConfig cfg = small_scene();
  cfg.num_objects = 2;
  const SyntheticScene s{cfg};
  std::size_t fg = 0;
  const FrameU8 t0 = s.truth(0);
  for (std::size_t i = 0; i < t0.size(); ++i) fg += (t0[i] == 255);
  EXPECT_GT(fg, 0u);
  EXPECT_LT(fg, t0.size() / 2);  // objects, not the whole frame
}

TEST(Scene, NoObjectsMeansEmptyTruth) {
  SceneConfig cfg = small_scene();
  cfg.num_objects = 0;
  const SyntheticScene s{cfg};
  const FrameU8 t = s.truth(12);
  for (std::size_t i = 0; i < t.size(); ++i) ASSERT_EQ(t[i], 0);
}

TEST(Scene, ObjectsMove) {
  SceneConfig cfg = small_scene();
  cfg.num_objects = 1;
  cfg.object_speed = 3.0;
  const SyntheticScene s{cfg};
  EXPECT_FALSE(s.truth(0) == s.truth(15));
}

TEST(Scene, TextureCreatesTemporalBimodality) {
  SceneConfig cfg = small_scene();
  cfg.num_objects = 0;
  cfg.noise_sd = 0.0;
  cfg.texture_fraction = 1.0;
  const SyntheticScene s{cfg};
  // Track one textured pixel over time: it should visit exactly two values.
  int bimodal_pixels = 0;
  const int probe = 40;
  std::vector<FrameU8> frames;
  for (int t = 0; t < probe; ++t) frames.push_back(s.frame(t));
  for (std::size_t p = 0; p < frames[0].size(); p += 7) {
    std::set<int> values;
    for (const auto& f : frames) values.insert(f[p]);
    if (values.size() == 2) ++bimodal_pixels;
  }
  EXPECT_GT(bimodal_pixels, 100);
}

TEST(Scene, ZeroTextureGivesStaticUntexturedPlate) {
  SceneConfig cfg = small_scene();
  cfg.num_objects = 0;
  cfg.noise_sd = 0.0;
  cfg.texture_fraction = 0.0;
  cfg.flicker_regions = false;
  cfg.waving_region = false;
  const SyntheticScene s{cfg};
  EXPECT_EQ(s.frame(2), s.frame(9));
}

TEST(Scene, NoiseIsZeroMeanish) {
  SceneConfig cfg = small_scene();
  cfg.num_objects = 0;
  cfg.texture_fraction = 0.0;
  cfg.flicker_regions = false;
  cfg.waving_region = false;
  cfg.noise_sd = 5.0;
  const SyntheticScene noisy{cfg};
  cfg.noise_sd = 0.0;
  const SyntheticScene clean{cfg};
  const FrameU8 n = noisy.frame(3);
  const FrameU8 c = clean.frame(3);
  double delta = 0.0;
  for (std::size_t i = 0; i < n.size(); ++i)
    delta += static_cast<double>(n[i]) - static_cast<double>(c[i]);
  EXPECT_NEAR(delta / static_cast<double>(n.size()), 0.0, 0.5);
}

TEST(Scene, BackgroundPlateExcludesObjects) {
  SceneConfig cfg = small_scene();
  cfg.num_objects = 4;
  cfg.noise_sd = 0.0;
  const SyntheticScene s{cfg};
  const FrameU8 plate = s.background_plate(0);
  const FrameU8 frame = s.frame(0);
  const FrameU8 truth = s.truth(0);
  int bg_equal = 0, bg_total = 0;
  for (std::size_t i = 0; i < plate.size(); ++i) {
    if (truth[i] == 0) {
      ++bg_total;
      bg_equal += (plate[i] == frame[i]);
    }
  }
  EXPECT_EQ(bg_equal, bg_total);
}

TEST(Scene, PresetsAreValidAndDistinct) {
  const SceneConfig hw = SceneConfig::highway(64, 48);
  const SceneConfig lb = SceneConfig::lobby(64, 48);
  const SceneConfig wt = SceneConfig::waving_trees(64, 48);
  EXPECT_NO_THROW(hw.validate());
  EXPECT_NO_THROW(lb.validate());
  EXPECT_NO_THROW(wt.validate());
  // Statistics differ in the direction the names promise.
  EXPECT_GT(hw.num_objects, lb.num_objects);
  EXPECT_GT(hw.object_speed, lb.object_speed);
  EXPECT_GT(wt.texture_fraction, hw.texture_fraction);
  EXPECT_LT(lb.texture_fraction, 0.1);
  // And the rendered frames differ.
  const SyntheticScene a{hw}, b{lb}, c{wt};
  EXPECT_FALSE(a.frame(3) == b.frame(3));
  EXPECT_FALSE(b.frame(3) == c.frame(3));
}

TEST(Scene, PresetDimensionsRespected) {
  const SceneConfig hw = SceneConfig::highway(128, 64, 7);
  EXPECT_EQ(hw.width, 128);
  EXPECT_EQ(hw.height, 64);
  EXPECT_EQ(hw.seed, 7u);
}

TEST(Scene, RejectsBadConfig) {
  SceneConfig cfg = small_scene();
  cfg.width = 4;
  EXPECT_THROW(SyntheticScene{cfg}, Error);
  cfg = small_scene();
  cfg.texture_fraction = 1.5;
  EXPECT_THROW(SyntheticScene{cfg}, Error);
  cfg = small_scene();
  cfg.noise_sd = -1.0;
  EXPECT_THROW(SyntheticScene{cfg}, Error);
}

TEST(PnmIo, RoundTrip) {
  const SyntheticScene s{small_scene()};
  const FrameU8 f = s.frame(4);
  const std::string path =
      (std::filesystem::temp_directory_path() / "mog_test_roundtrip.pgm")
          .string();
  write_pgm(path, f);
  const FrameU8 back = read_pgm(path);
  EXPECT_EQ(f, back);
  std::remove(path.c_str());
}

TEST(PnmIo, ReadRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mog_test_garbage.pgm")
          .string();
  {
    std::FILE* fp = std::fopen(path.c_str(), "wb");
    ASSERT_NE(fp, nullptr);
    std::fputs("NOT A PGM", fp);
    std::fclose(fp);
  }
  EXPECT_THROW(read_pgm(path), Error);
  std::remove(path.c_str());
}

TEST(PnmIo, ReadRejectsTruncatedPayload) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mog_test_trunc.pgm")
          .string();
  {
    std::FILE* fp = std::fopen(path.c_str(), "wb");
    ASSERT_NE(fp, nullptr);
    std::fputs("P5\n10 10\n255\n", fp);  // header promises 100 bytes, gives 3
    std::fputs("abc", fp);
    std::fclose(fp);
  }
  EXPECT_THROW(read_pgm(path), Error);
  std::remove(path.c_str());
}

TEST(PnmIo, HandlesCommentsInHeader) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mog_test_comment.pgm")
          .string();
  {
    std::FILE* fp = std::fopen(path.c_str(), "wb");
    ASSERT_NE(fp, nullptr);
    std::fputs("P5\n# a comment\n2 2\n255\nABCD", fp);
    std::fclose(fp);
  }
  const FrameU8 img = read_pgm(path);
  EXPECT_EQ(img.width(), 2);
  EXPECT_EQ(img.at(0, 0), 'A');
  EXPECT_EQ(img.at(1, 1), 'D');
  std::remove(path.c_str());
}

TEST(PnmIo, MissingFileThrows) {
  EXPECT_THROW(read_pgm("/nonexistent/dir/file.pgm"), Error);
}

// --- hostile-header hardening ----------------------------------------------
//
// The adversarial byte blobs live in the shared fuzz seed corpus
// (tests/fuzz/corpus/pnm, regenerated by scripts/make_ingest_fixtures):
// the fuzzers mutate from them, test_fuzz_corpus replays them under
// sanitizers, and these tests pin the *messages* so a failure names the
// defense that regressed.

void expect_corpus_error(const char* seed, const char* needle) {
  const std::string path =
      (std::filesystem::path{MOG_FUZZ_CORPUS_DIR} / "pnm" / seed).string();
  try {
    read_pgm(path);
    FAIL() << "expected read_pgm to reject " << path;
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(PnmIo, RejectsNonNumericHeaderFields) {
  expect_corpus_error("bad_alpha_width.pgm", "not a number");
  // Signed values are rejected up front, not parsed and range-checked.
  expect_corpus_error("bad_negative_width.pgm", "not a number");
}

TEST(PnmIo, RejectsOverflowingHeaderValues) {
  expect_corpus_error("bad_overflow_width.pgm", "bad width");
}

TEST(PnmIo, RejectsImplausibleDimensions) {
  // Parses fine but would demand a giant allocation: capped per axis.
  expect_corpus_error("bad_dims_bomb.pgm", "implausible");
}

TEST(PnmIo, RejectsBadMaxval) {
  expect_corpus_error("bad_maxval_zero.pgm", "maxval");
  expect_corpus_error("bad_maxval_16bit.pgm", "maxval");
}

TEST(PnmIo, RejectsMissingWhitespaceAfterMaxval) {
  expect_corpus_error("bad_no_sep_after_maxval.pgm", "whitespace");
  expect_corpus_error("bad_sep_x_after_maxval.pgm", "whitespace");
}

TEST(PnmIo, RejectsDigitFusedToMagic) {
  // "P51 1\n255\n..." is a corrupt header, not a 1x1 image.
  expect_corpus_error("bad_fused_magic.pgm", "separator after magic");
}

}  // namespace
}  // namespace mog
