// Tests for the discrete-event pipeline simulator, including the
// cross-validation of the Fig. 5 closed-form schedules it exists to check.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

#include "mog/common/error.hpp"

#include "mog/gpusim/stream_sim.hpp"

namespace mog::gpusim {
namespace {

FrameSchedule sched(double up_ms, double kernel_ms, double down_ms) {
  FrameSchedule f;
  f.upload_seconds = up_ms * 1e-3;
  f.kernel_seconds = kernel_ms * 1e-3;
  f.download_seconds = down_ms * 1e-3;
  return f;
}

TEST(StreamSim, SequentialMatchesClosedFormExactly) {
  const FrameSchedule f = sched(2, 5, 2);
  for (const int n : {0, 1, 3, 50}) {
    const Timeline tl = simulate_sequential(f, n);
    EXPECT_NEAR(tl.total_seconds, sequential_pipeline_seconds(f, n),
                1e-12 + 1e-12 * tl.total_seconds);
    EXPECT_EQ(tl.ops.size(), static_cast<std::size_t>(3 * n));
  }
}

class OverlapAgreement
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(OverlapAgreement, EventSimMatchesClosedForm) {
  const auto [up, kernel, down] = GetParam();
  const FrameSchedule f = sched(up, kernel, down);
  for (const int n : {1, 2, 5, 40}) {
    const Timeline tl = simulate_overlapped(f, n);
    const double closed = overlapped_pipeline_seconds(f, n);
    // The closed form idealizes steady state; the event simulation includes
    // every buffer dependency. They must agree to within a couple of frame
    // periods' worth of pipeline fill.
    EXPECT_NEAR(tl.total_seconds, closed,
                0.05 * closed + 2.0 * (f.upload_seconds + f.download_seconds))
        << "n=" << n << " up=" << up << " kernel=" << kernel;
    // And the event sim can never beat physics: at least the serialized DMA
    // work and at least the serialized kernel work.
    EXPECT_GE(tl.total_seconds,
              n * (f.upload_seconds + f.download_seconds) - 1e-12);
    EXPECT_GE(tl.total_seconds, n * f.kernel_seconds - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, OverlapAgreement,
    ::testing::Values(std::make_tuple(2.0, 8.9, 2.0),   // kernel-bound (B)
                      std::make_tuple(2.0, 5.2, 2.0),   // kernel-bound (F)
                      std::make_tuple(4.0, 1.0, 4.0),   // transfer-bound
                      std::make_tuple(3.0, 6.0, 3.0),   // balanced
                      std::make_tuple(0.1, 10.0, 0.1)), // transfers trivial
    [](const auto& info) {
      return "case" + std::to_string(info.index);
    });

TEST(StreamSim, OverlappedNeverSlowerThanSequential) {
  for (const double kernel_ms : {1.0, 4.0, 10.0}) {
    const FrameSchedule f = sched(2, kernel_ms, 2);
    EXPECT_LE(simulate_overlapped(f, 20).total_seconds,
              simulate_sequential(f, 20).total_seconds + 1e-12);
  }
}

TEST(StreamSim, DependenciesAreRespected) {
  const FrameSchedule f = sched(2, 5, 2);
  const Timeline tl = simulate_overlapped(f, 6);
  double upload_end[6] = {}, kernel_end[6] = {}, kernel_start[6] = {},
         down_start[6] = {};
  for (const TimelineOp& op : tl.ops) {
    if (op.kind[0] == 'u') upload_end[op.frame] = op.end_seconds;
    if (op.kind[0] == 'k') {
      kernel_start[op.frame] = op.start_seconds;
      kernel_end[op.frame] = op.end_seconds;
    }
    if (op.kind[0] == 'd') down_start[op.frame] = op.start_seconds;
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_GE(kernel_start[i], upload_end[i] - 1e-12) << i;
    EXPECT_GE(down_start[i], kernel_end[i] - 1e-12) << i;
  }
}

TEST(StreamSim, SingleDmaEngineSerializesTransfers) {
  const FrameSchedule f = sched(3, 1, 3);  // transfer-heavy
  const Timeline tl = simulate_overlapped(f, 10);
  // Collect DMA intervals and verify no overlap.
  std::vector<std::pair<double, double>> dma;
  for (const TimelineOp& op : tl.ops)
    if (op.engine == TimelineOp::Engine::kDma)
      dma.emplace_back(op.start_seconds, op.end_seconds);
  std::sort(dma.begin(), dma.end());
  for (std::size_t i = 1; i < dma.size(); ++i)
    EXPECT_GE(dma[i].first, dma[i - 1].second - 1e-12);
}

TEST(StreamSim, SteadyStateKernelsAreBackToBackWhenKernelBound) {
  const FrameSchedule f = sched(1, 8, 1);
  const Timeline tl = simulate_overlapped(f, 10);
  double prev_end = -1;
  for (const TimelineOp& op : tl.ops) {
    if (op.engine != TimelineOp::Engine::kKernel || op.frame < 2) continue;
    if (prev_end >= 0) EXPECT_NEAR(op.start_seconds, prev_end, 1e-9);
    prev_end = op.end_seconds;
  }
}

TEST(StreamSim, AsciiGanttRendersBothRows) {
  const FrameSchedule f = sched(2, 5, 2);
  const std::string art = simulate_overlapped(f, 4).ascii(64);
  EXPECT_NE(art.find("DMA |"), std::string::npos);
  EXPECT_NE(art.find("KER |"), std::string::npos);
  EXPECT_NE(art.find('U'), std::string::npos);
  EXPECT_NE(art.find('K'), std::string::npos);
  EXPECT_NE(art.find('D'), std::string::npos);
}

TEST(StreamSim, EmptyAndInvalidInputs) {
  const FrameSchedule f = sched(1, 1, 1);
  EXPECT_DOUBLE_EQ(simulate_overlapped(f, 0).total_seconds, 0.0);
  EXPECT_THROW(simulate_overlapped(f, -1), mog::Error);
  EXPECT_THROW(simulate_sequential(f, -1), mog::Error);
  EXPECT_EQ(simulate_sequential(f, 0).ascii(), "(empty timeline)\n");
}

// Drive one stream through a SharedTimeline with the serving scheduler's
// round structure: round r uploads, then round r-1's deferred download, then
// round r's kernel.
double pump_one_stream(SharedTimeline& st, int lane, const FrameSchedule& f,
                       int frames) {
  double pending_ready = 0;
  bool has_pending = false;
  for (int r = 0; r <= frames; ++r) {
    SharedTimeline::Window up{};
    if (r < frames) up = st.schedule_upload(lane, 0.0, f.upload_seconds);
    if (has_pending) {
      st.schedule_download(lane, pending_ready, f.download_seconds);
      has_pending = false;
    }
    if (r < frames) {
      const SharedTimeline::Window k =
          st.schedule_kernel(lane, up.end_seconds, f.kernel_seconds, 1);
      pending_ready = k.end_seconds;
      has_pending = true;
    }
  }
  return st.makespan_seconds();
}

TEST(SharedTimeline, SingleStreamReproducesOverlappedSchedule) {
  // The serving enqueue order (uploads ahead of the previous round's
  // downloads) must reproduce the Fig. 5(b) double-buffered schedule exactly
  // — kernel-bound, transfer-bound, and balanced shapes.
  for (const FrameSchedule f : {sched(2, 5, 2), sched(5, 2, 5),
                                sched(1, 1, 1)}) {
    for (const int n : {1, 2, 3, 8}) {
      const Timeline ref = simulate_overlapped(f, n);
      SharedTimeline st;
      const int lane = st.add_stream(2);
      const double makespan = pump_one_stream(st, lane, f, n);
      EXPECT_NEAR(makespan, ref.total_seconds, 1e-12 + 1e-12 * makespan)
          << "frames=" << n;
      EXPECT_EQ(st.timeline().ops.size(), ref.ops.size());
    }
  }
}

TEST(SharedTimeline, EnginesNeverOverlapAcrossStreams) {
  const FrameSchedule f = sched(2, 5, 2);
  SharedTimeline st;
  const int a = st.add_stream(2);
  const int b = st.add_stream(2);
  // Interleave two streams round-robin, the way the serving pump does.
  struct Lane {
    int id;
    double pending_ready = 0;
    bool has_pending = false;
    double up_end = 0;
  };
  Lane lanes[2] = {{a}, {b}};
  const int frames = 6;
  for (int r = 0; r <= frames; ++r) {
    for (Lane& l : lanes)
      if (r < frames)
        l.up_end =
            st.schedule_upload(l.id, 0.0, f.upload_seconds).end_seconds;
    for (Lane& l : lanes)
      if (l.has_pending) {
        st.schedule_download(l.id, l.pending_ready, f.download_seconds);
        l.has_pending = false;
      }
    for (Lane& l : lanes)
      if (r < frames) {
        l.pending_ready =
            st.schedule_kernel(l.id, l.up_end, f.kernel_seconds, 1)
                .end_seconds;
        l.has_pending = true;
      }
  }

  // One copy engine and one compute engine: within each, reservations are
  // granted in call order and may never overlap.
  double dma_cursor = 0, kernel_cursor = 0;
  for (const TimelineOp& op : st.timeline().ops) {
    double& cursor = op.engine == TimelineOp::Engine::kDma ? dma_cursor
                                                           : kernel_cursor;
    EXPECT_GE(op.start_seconds, cursor - 1e-12);
    cursor = op.end_seconds;
  }

  // Both streams moved 6 frames through a shared device: the makespan sits
  // between one stream's solo time and the strictly serialized bound.
  SharedTimeline solo;
  const double solo_span =
      pump_one_stream(solo, solo.add_stream(2), f, frames);
  EXPECT_GT(st.makespan_seconds(), solo_span);
  EXPECT_LE(st.makespan_seconds(), 2 * solo_span + 1e-12);
}

TEST(SharedTimeline, BufferRotationGatesUploadRunahead) {
  const FrameSchedule f = sched(1, 10, 1);
  SharedTimeline st;
  const int lane = st.add_stream(2);
  st.schedule_upload(lane, 0.0, f.upload_seconds);
  st.schedule_upload(lane, 0.0, f.upload_seconds);
  // Third upload would reuse slot 0, whose consuming kernel is not even
  // scheduled yet — the model must refuse rather than invent a time.
  EXPECT_THROW(st.schedule_upload(lane, 0.0, f.upload_seconds), mog::Error);

  // Once the kernel is scheduled, the reused slot frees at its completion;
  // the upload must wait for it even though the DMA engine is idle.
  const SharedTimeline::Window k =
      st.schedule_kernel(lane, 1e-3, f.kernel_seconds, 1);
  const SharedTimeline::Window up =
      st.schedule_upload(lane, 0.0, f.upload_seconds);
  EXPECT_GE(up.start_seconds, k.end_seconds - 1e-12);
}

TEST(SharedTimeline, ValidatesArguments) {
  SharedTimeline st;
  EXPECT_THROW(st.schedule_upload(0, 0.0, 1.0), mog::Error);  // no stream
  const int lane = st.add_stream(2);
  EXPECT_THROW(st.add_stream(0), mog::Error);
  EXPECT_THROW(st.schedule_upload(lane, -1.0, 1.0), mog::Error);
  // A kernel may not consume frames that were never uploaded.
  EXPECT_THROW(st.schedule_kernel(lane, 0.0, 1.0, 1), mog::Error);
  st.schedule_upload(lane, 0.0, 1e-3);
  EXPECT_THROW(st.schedule_kernel(lane, 0.0, 1.0, 2), mog::Error);
  EXPECT_EQ(st.num_streams(), 1);
}

}  // namespace
}  // namespace mog::gpusim
