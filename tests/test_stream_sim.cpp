// Tests for the discrete-event pipeline simulator, including the
// cross-validation of the Fig. 5 closed-form schedules it exists to check.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

#include "mog/common/error.hpp"

#include "mog/gpusim/stream_sim.hpp"

namespace mog::gpusim {
namespace {

FrameSchedule sched(double up_ms, double kernel_ms, double down_ms) {
  FrameSchedule f;
  f.upload_seconds = up_ms * 1e-3;
  f.kernel_seconds = kernel_ms * 1e-3;
  f.download_seconds = down_ms * 1e-3;
  return f;
}

TEST(StreamSim, SequentialMatchesClosedFormExactly) {
  const FrameSchedule f = sched(2, 5, 2);
  for (const int n : {0, 1, 3, 50}) {
    const Timeline tl = simulate_sequential(f, n);
    EXPECT_NEAR(tl.total_seconds, sequential_pipeline_seconds(f, n),
                1e-12 + 1e-12 * tl.total_seconds);
    EXPECT_EQ(tl.ops.size(), static_cast<std::size_t>(3 * n));
  }
}

class OverlapAgreement
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(OverlapAgreement, EventSimMatchesClosedForm) {
  const auto [up, kernel, down] = GetParam();
  const FrameSchedule f = sched(up, kernel, down);
  for (const int n : {1, 2, 5, 40}) {
    const Timeline tl = simulate_overlapped(f, n);
    const double closed = overlapped_pipeline_seconds(f, n);
    // The closed form idealizes steady state; the event simulation includes
    // every buffer dependency. They must agree to within a couple of frame
    // periods' worth of pipeline fill.
    EXPECT_NEAR(tl.total_seconds, closed,
                0.05 * closed + 2.0 * (f.upload_seconds + f.download_seconds))
        << "n=" << n << " up=" << up << " kernel=" << kernel;
    // And the event sim can never beat physics: at least the serialized DMA
    // work and at least the serialized kernel work.
    EXPECT_GE(tl.total_seconds,
              n * (f.upload_seconds + f.download_seconds) - 1e-12);
    EXPECT_GE(tl.total_seconds, n * f.kernel_seconds - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, OverlapAgreement,
    ::testing::Values(std::make_tuple(2.0, 8.9, 2.0),   // kernel-bound (B)
                      std::make_tuple(2.0, 5.2, 2.0),   // kernel-bound (F)
                      std::make_tuple(4.0, 1.0, 4.0),   // transfer-bound
                      std::make_tuple(3.0, 6.0, 3.0),   // balanced
                      std::make_tuple(0.1, 10.0, 0.1)), // transfers trivial
    [](const auto& info) {
      return "case" + std::to_string(info.index);
    });

TEST(StreamSim, OverlappedNeverSlowerThanSequential) {
  for (const double kernel_ms : {1.0, 4.0, 10.0}) {
    const FrameSchedule f = sched(2, kernel_ms, 2);
    EXPECT_LE(simulate_overlapped(f, 20).total_seconds,
              simulate_sequential(f, 20).total_seconds + 1e-12);
  }
}

TEST(StreamSim, DependenciesAreRespected) {
  const FrameSchedule f = sched(2, 5, 2);
  const Timeline tl = simulate_overlapped(f, 6);
  double upload_end[6] = {}, kernel_end[6] = {}, kernel_start[6] = {},
         down_start[6] = {};
  for (const TimelineOp& op : tl.ops) {
    if (op.kind[0] == 'u') upload_end[op.frame] = op.end_seconds;
    if (op.kind[0] == 'k') {
      kernel_start[op.frame] = op.start_seconds;
      kernel_end[op.frame] = op.end_seconds;
    }
    if (op.kind[0] == 'd') down_start[op.frame] = op.start_seconds;
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_GE(kernel_start[i], upload_end[i] - 1e-12) << i;
    EXPECT_GE(down_start[i], kernel_end[i] - 1e-12) << i;
  }
}

TEST(StreamSim, SingleDmaEngineSerializesTransfers) {
  const FrameSchedule f = sched(3, 1, 3);  // transfer-heavy
  const Timeline tl = simulate_overlapped(f, 10);
  // Collect DMA intervals and verify no overlap.
  std::vector<std::pair<double, double>> dma;
  for (const TimelineOp& op : tl.ops)
    if (op.engine == TimelineOp::Engine::kDma)
      dma.emplace_back(op.start_seconds, op.end_seconds);
  std::sort(dma.begin(), dma.end());
  for (std::size_t i = 1; i < dma.size(); ++i)
    EXPECT_GE(dma[i].first, dma[i - 1].second - 1e-12);
}

TEST(StreamSim, SteadyStateKernelsAreBackToBackWhenKernelBound) {
  const FrameSchedule f = sched(1, 8, 1);
  const Timeline tl = simulate_overlapped(f, 10);
  double prev_end = -1;
  for (const TimelineOp& op : tl.ops) {
    if (op.engine != TimelineOp::Engine::kKernel || op.frame < 2) continue;
    if (prev_end >= 0) EXPECT_NEAR(op.start_seconds, prev_end, 1e-9);
    prev_end = op.end_seconds;
  }
}

TEST(StreamSim, AsciiGanttRendersBothRows) {
  const FrameSchedule f = sched(2, 5, 2);
  const std::string art = simulate_overlapped(f, 4).ascii(64);
  EXPECT_NE(art.find("DMA |"), std::string::npos);
  EXPECT_NE(art.find("KER |"), std::string::npos);
  EXPECT_NE(art.find('U'), std::string::npos);
  EXPECT_NE(art.find('K'), std::string::npos);
  EXPECT_NE(art.find('D'), std::string::npos);
}

TEST(StreamSim, EmptyAndInvalidInputs) {
  const FrameSchedule f = sched(1, 1, 1);
  EXPECT_DOUBLE_EQ(simulate_overlapped(f, 0).total_seconds, 0.0);
  EXPECT_THROW(simulate_overlapped(f, -1), mog::Error);
  EXPECT_THROW(simulate_sequential(f, -1), mog::Error);
  EXPECT_EQ(simulate_sequential(f, 0).ascii(), "(empty timeline)\n");
}

}  // namespace
}  // namespace mog::gpusim
