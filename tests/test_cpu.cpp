// Tests for the CPU MoG implementations: algorithmic behaviour (adaptation,
// detection, multi-modal absorption), numerical invariants, consistency
// between the serial / SIMD / parallel flavours, and the cost model anchors.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "mog/cpu/cost_model.hpp"
#include "mog/cpu/model_io.hpp"
#include "mog/cpu/mog_update.hpp"
#include "mog/cpu/parallel_mog.hpp"
#include "mog/cpu/serial_mog.hpp"
#include "mog/cpu/simd_mog.hpp"
#include "mog/video/scene.hpp"

namespace mog {
namespace {

SceneConfig quiet_scene(int w = 48, int h = 32) {
  SceneConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.seed = 21;
  cfg.num_objects = 0;
  cfg.texture_fraction = 0.0;
  cfg.flicker_regions = false;
  cfg.waving_region = false;
  cfg.noise_sd = 1.0;
  return cfg;
}

double foreground_fraction(const FrameU8& fg) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < fg.size(); ++i) n += (fg[i] != 0);
  return static_cast<double>(n) / static_cast<double>(fg.size());
}

TEST(SerialMog, StaticSceneConvergesToBackground) {
  const SyntheticScene scene{quiet_scene()};
  SerialMog<double> mog{scene.width(), scene.height()};
  FrameU8 fg;
  for (int t = 0; t < 30; ++t) mog.apply(scene.frame(t), fg);
  EXPECT_LT(foreground_fraction(fg), 0.01);
}

TEST(SerialMog, DetectsNewObject) {
  SceneConfig cfg = quiet_scene();
  const SyntheticScene quiet{cfg};
  SerialMog<double> mog{cfg.width, cfg.height};
  FrameU8 fg;
  for (int t = 0; t < 30; ++t) mog.apply(quiet.frame(t), fg);

  // Paint a bright square into the next frame: it must light up as fg.
  FrameU8 frame = quiet.frame(30);
  for (int y = 8; y < 20; ++y)
    for (int x = 8; x < 20; ++x) frame.at(x, y) = 250;
  mog.apply(frame, fg);
  int hits = 0;
  for (int y = 8; y < 20; ++y)
    for (int x = 8; x < 20; ++x) hits += (fg.at(x, y) != 0);
  EXPECT_GT(hits, 120);  // ≥ ~85% of the 144 painted pixels
  // And the rest of the frame stays background.
  EXPECT_LT(foreground_fraction(fg), 0.2);
}

TEST(SerialMog, StationaryObjectGetsAbsorbedIntoBackground) {
  SceneConfig cfg = quiet_scene();
  const SyntheticScene quiet{cfg};
  MogParams params;
  params.alpha = 0.92;  // faster adaptation to keep the test short
  SerialMog<double> mog{cfg.width, cfg.height, params};
  FrameU8 fg;
  for (int t = 0; t < 20; ++t) mog.apply(quiet.frame(t), fg);

  auto with_box = [&](int t) {
    FrameU8 f = quiet.frame(t);
    for (int y = 8; y < 20; ++y)
      for (int x = 8; x < 20; ++x) f.at(x, y) = 250;
    return f;
  };
  mog.apply(with_box(20), fg);
  EXPECT_GT(foreground_fraction(fg), 0.05);  // initially detected
  for (int t = 21; t < 140; ++t) mog.apply(with_box(t), fg);
  EXPECT_LT(foreground_fraction(fg), 0.01);  // absorbed
}

TEST(SerialMog, MultiModalBackgroundIsLearned) {
  SceneConfig cfg = quiet_scene();
  cfg.texture_fraction = 1.0;  // every patch bimodal
  const SyntheticScene scene{cfg};
  SerialMog<double> mog{cfg.width, cfg.height};
  FrameU8 fg;
  for (int t = 0; t < 80; ++t) mog.apply(scene.frame(t), fg);
  // After learning, both modes must be accepted as background.
  double fg_late = 0;
  for (int t = 80; t < 90; ++t) {
    mog.apply(scene.frame(t), fg);
    fg_late += foreground_fraction(fg);
  }
  EXPECT_LT(fg_late / 10, 0.03);
}

TEST(SerialMog, WeightsStayNormalizedAndFinite) {
  const SyntheticScene scene{quiet_scene(32, 24)};
  SerialMog<double> mog{32, 24};
  FrameU8 fg;
  for (int t = 0; t < 25; ++t) mog.apply(scene.frame(t), fg);
  const auto& m = mog.model();
  for (std::size_t p = 0; p < m.num_pixels(); ++p) {
    double sum = 0;
    for (int k = 0; k < m.num_components(); ++k) {
      ASSERT_TRUE(std::isfinite(m.weight(p, k)));
      ASSERT_TRUE(std::isfinite(m.mean(p, k)));
      ASSERT_TRUE(std::isfinite(m.sd(p, k)));
      ASSERT_GE(m.weight(p, k), 0.0);
      ASSERT_GE(m.sd(p, k), MogParams{}.min_sd - 1e-9);
      sum += m.weight(p, k);
    }
    ASSERT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(SerialMog, ComponentsSortedByRankAfterUpdate) {
  const SyntheticScene scene{quiet_scene(32, 24)};
  SerialMog<double> mog{32, 24};
  FrameU8 fg;
  for (int t = 0; t < 10; ++t) mog.apply(scene.frame(t), fg);
  const auto& m = mog.model();
  for (std::size_t p = 0; p < m.num_pixels(); p += 5) {
    for (int k = 0; k + 1 < m.num_components(); ++k)
      ASSERT_GE(m.rank(p, k), m.rank(p, k + 1) - 1e-12);
  }
}

TEST(SerialMog, BackgroundEstimateTracksScene) {
  SceneConfig cfg = quiet_scene();
  cfg.noise_sd = 1.0;
  const SyntheticScene scene{cfg};
  MogParams params;
  params.alpha = 0.9;  // learn quickly so the mean converges within the test
  SerialMog<double> mog{cfg.width, cfg.height, params};
  FrameU8 fg;
  for (int t = 0; t < 60; ++t) mog.apply(scene.frame(t), fg);
  const FrameU8 bg = to_u8(mog.background());
  const FrameU8 plate = scene.background_plate(60);
  double err = 0;
  for (std::size_t i = 0; i < bg.size(); ++i)
    err += std::abs(static_cast<double>(bg[i]) - plate[i]);
  EXPECT_LT(err / static_cast<double>(bg.size()), 3.0);
}

TEST(SerialMog, RejectsMismatchedFrame) {
  SerialMog<double> mog{32, 24};
  FrameU8 wrong(16, 16), fg;
  EXPECT_THROW(mog.apply(wrong, fg), Error);
}

TEST(MogParams, ValidationCatchesBadValues) {
  MogParams p;
  p.alpha = 1.5;
  EXPECT_THROW(p.validate(), Error);
  p = {};
  p.num_components = 0;
  EXPECT_THROW(p.validate(), Error);
  p = {};
  p.weight_threshold = 0.0;
  EXPECT_THROW(p.validate(), Error);
  p = {};
  p.min_sd = p.initial_sd + 1;
  EXPECT_THROW(p.validate(), Error);
}

// --- consistency across implementations ------------------------------------

using LevelParams = std::tuple<int /*K*/, bool /*float*/>;

class CpuConsistency : public ::testing::TestWithParam<LevelParams> {};

TEST_P(CpuConsistency, ParallelMatchesSerialExactly) {
  const auto [k, use_float] = GetParam();
  SceneConfig cfg;
  cfg.width = 64;
  cfg.height = 40;
  cfg.seed = 33;
  const SyntheticScene scene{cfg};
  MogParams params;
  params.num_components = k;

  auto run = [&](auto serial, auto parallel) {
    FrameU8 fg_s, fg_p;
    for (int t = 0; t < 12; ++t) {
      const FrameU8 f = scene.frame(t);
      serial->apply(f, fg_s);
      parallel->apply(f, fg_p);
      ASSERT_EQ(fg_s, fg_p) << "frame " << t;
    }
  };
  if (use_float) {
    auto s = std::make_unique<SerialMog<float>>(64, 40, params);
    auto p = std::make_unique<ParallelMog<float>>(64, 40, params, 4);
    run(s.get(), p.get());
  } else {
    auto s = std::make_unique<SerialMog<double>>(64, 40, params);
    auto p = std::make_unique<ParallelMog<double>>(64, 40, params, 4);
    run(s.get(), p.get());
  }
}

TEST_P(CpuConsistency, SimdFlavourAgreesWithSerialDecisions) {
  const auto [k, use_float] = GetParam();
  if (use_float) GTEST_SKIP() << "covered by the double variant";
  SceneConfig cfg;
  cfg.width = 64;
  cfg.height = 40;
  cfg.seed = 34;
  const SyntheticScene scene{cfg};
  MogParams params;
  params.num_components = k;
  SerialMog<double> serial{64, 40, params};
  SimdMog<double> simd{64, 40, params};
  FrameU8 fg_s, fg_v;
  double total_disagreement = 0;
  for (int t = 0; t < 15; ++t) {
    const FrameU8 f = scene.frame(t);
    serial.apply(f, fg_s);
    simd.apply(f, fg_v);
    std::size_t diff = 0;
    for (std::size_t i = 0; i < fg_s.size(); ++i)
      diff += (fg_s[i] != fg_v[i]);
    total_disagreement +=
        static_cast<double>(diff) / static_cast<double>(fg_s.size());
  }
  // The no-sort flavour reorders float ops; decisions may flip only on a
  // tiny fraction of threshold-straddling pixels.
  EXPECT_LT(total_disagreement / 15, 0.005);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CpuConsistency,
                         ::testing::Combine(::testing::Values(3, 5),
                                            ::testing::Bool()),
                         [](const auto& info) {
                           return "K" +
                                  std::to_string(std::get<0>(info.param)) +
                                  (std::get<1>(info.param) ? "_float"
                                                           : "_double");
                         });

// --- per-pixel update kernel properties -------------------------------------

TEST(MogUpdate, MatchedUpdateMovesMeanTowardSample) {
  const TypedMogParams<double> p = TypedMogParams<double>::from(MogParams{});
  double w = 1.0, m = 100.0, sd = 8.0;
  detail::update_matched(w, m, sd, 110.0, p);
  EXPECT_GT(m, 100.0);
  EXPECT_LT(m, 110.0);
  EXPECT_GT(w, 0.99);
}

TEST(MogUpdate, SdFloorHolds) {
  const TypedMogParams<double> p = TypedMogParams<double>::from(MogParams{});
  double w = 1.0, m = 100.0, sd = 4.0;
  for (int i = 0; i < 200; ++i) detail::update_matched(w, m, sd, 100.0, p);
  EXPECT_GE(sd, p.min_sd - 1e-12);
}

TEST(MogUpdate, NosortSurvivesDegenerateZeroWeights) {
  // Regression: the predicated path divides by the updated weight; dormant
  // (zero-weight, non-matching) components must not poison the blend with
  // NaNs (0 * NaN = NaN).
  MogParams mp;
  const TypedMogParams<double> p = TypedMogParams<double>::from(mp);
  double w[3] = {1.0, 0.0, 0.0};
  double m[3] = {100.0, 0.0, 0.0};
  double sd[3] = {4.0, 4.0, 4.0};  // tight: x=200 matches nothing
  const bool fg = update_pixel_nosort(w, m, sd, 1, 200.0, p);
  EXPECT_TRUE(fg);
  for (int k = 0; k < 3; ++k) {
    ASSERT_TRUE(std::isfinite(w[k]));
    ASSERT_TRUE(std::isfinite(m[k]));
    ASSERT_TRUE(std::isfinite(sd[k]));
  }
}

TEST(MogUpdate, VirtualComponentReplacesLowestWeight) {
  MogParams mp;
  const TypedMogParams<double> p = TypedMogParams<double>::from(mp);
  double w[3] = {0.7, 0.2, 0.1};
  double m[3] = {50.0, 120.0, 200.0};
  double sd[3] = {4.0, 4.0, 4.0};
  const bool fg = update_pixel_sorted(w, m, sd, 1, 90.0, p);
  EXPECT_TRUE(fg);  // fresh component starts below the weight threshold
  bool found = false;
  for (int k = 0; k < 3; ++k) found |= (m[k] == 90.0);
  EXPECT_TRUE(found);
}

// --- cost model ---------------------------------------------------------------

TEST(CostModel, ReproducesPaperAnchors) {
  const CpuCostModel cost;
  EXPECT_NEAR(cost.seconds(CpuVariant::kSerial, Precision::kDouble, 1920,
                           1080, 450, 3),
              227.3, 0.1);
  EXPECT_NEAR(cost.seconds(CpuVariant::kSerial, Precision::kDouble, 1920,
                           1080, 450, 5),
              406.6, 0.1);
  EXPECT_NEAR(cost.seconds(CpuVariant::kSerial, Precision::kFloat, 1920, 1080,
                           450, 3),
              180.0, 0.2);
  EXPECT_NEAR(cost.seconds(CpuVariant::kSimd, Precision::kDouble, 1920, 1080,
                           450, 3),
              163.0, 0.2);
  EXPECT_NEAR(cost.seconds(CpuVariant::kParallel, Precision::kDouble, 1920,
                           1080, 450, 3, 8),
              99.8, 0.2);
}

TEST(CostModel, ScalesLinearlyInPixelsAndFrames) {
  const CpuCostModel cost;
  const double full = cost.seconds(CpuVariant::kSerial, Precision::kDouble,
                                   1920, 1080, 450, 3);
  EXPECT_NEAR(cost.seconds(CpuVariant::kSerial, Precision::kDouble, 960, 540,
                           450, 3),
              full / 4, 1e-9);
  EXPECT_NEAR(cost.seconds(CpuVariant::kSerial, Precision::kDouble, 1920,
                           1080, 45, 3),
              full / 10, 1e-9);
}

TEST(CostModel, MoreThreadsNeverSlower) {
  const CpuCostModel cost;
  double prev = 1e18;
  for (int t : {1, 2, 4, 8, 16}) {
    const double s = cost.seconds(CpuVariant::kParallel, Precision::kDouble,
                                  1920, 1080, 450, 3, t);
    EXPECT_LE(s, prev + 1e-12);
    prev = s;
  }
}

// --- model persistence ---------------------------------------------------------

std::string temp_model_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ModelIo, RoundTripPreservesStateBitExactly) {
  const SyntheticScene scene{quiet_scene()};
  SerialMog<double> mog{scene.width(), scene.height()};
  FrameU8 fg;
  for (int t = 0; t < 10; ++t) mog.apply(scene.frame(t), fg);

  const std::string path = temp_model_path("mog_model_roundtrip.mogm");
  save_model(path, mog.model());
  const MogModel<double> loaded = load_model<double>(path, mog.params());
  EXPECT_EQ(loaded.weights(), mog.model().weights());
  EXPECT_EQ(loaded.means(), mog.model().means());
  EXPECT_EQ(loaded.sds(), mog.model().sds());
  std::remove(path.c_str());
}

TEST(ModelIo, ResumedEngineContinuesIdentically) {
  const SyntheticScene scene{quiet_scene()};
  SerialMog<double> full{scene.width(), scene.height()};
  FrameU8 fg_full, fg_resumed;
  for (int t = 0; t < 12; ++t) full.apply(scene.frame(t), fg_full);

  // Warm a twin for 8 frames, persist, reload into a fresh engine, and run
  // the remaining 4 frames: outputs must match the uninterrupted run.
  const std::string path = temp_model_path("mog_model_resume.mogm");
  {
    SerialMog<double> warm{scene.width(), scene.height()};
    FrameU8 fg;
    for (int t = 0; t < 8; ++t) warm.apply(scene.frame(t), fg);
    save_model(path, warm.model());
  }
  SerialMog<double> resumed{scene.width(), scene.height()};
  resumed.model() = load_model<double>(path, resumed.params());
  for (int t = 8; t < 12; ++t) resumed.apply(scene.frame(t), fg_resumed);
  EXPECT_EQ(fg_full, fg_resumed);
  std::remove(path.c_str());
}

TEST(ModelIo, RejectsWrongScalarType) {
  SerialMog<float> mog{32, 24};
  const std::string path = temp_model_path("mog_model_f32.mogm");
  save_model(path, mog.model());
  EXPECT_THROW(load_model<double>(path, MogParams{}), Error);
  EXPECT_NO_THROW(load_model<float>(path, MogParams{}));
  std::remove(path.c_str());
}

TEST(ModelIo, RejectsGarbageAndMissingFiles) {
  EXPECT_THROW(load_model<double>("/nonexistent/model.mogm", MogParams{}),
               Error);
  const std::string path = temp_model_path("mog_model_garbage.mogm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a model";
  }
  EXPECT_THROW(load_model<double>(path, MogParams{}), Error);
  std::remove(path.c_str());
}

TEST(ModelIo, RejectsTruncatedFile) {
  SerialMog<double> mog{16, 16};
  const std::string path = temp_model_path("mog_model_trunc.mogm");
  save_model(path, mog.model());
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);  // lose half the payload
  try {
    load_model<double>(path, MogParams{});
    FAIL() << "truncated model loaded without error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(ModelIo, RejectsUnsupportedVersion) {
  SerialMog<double> mog{16, 16};
  const std::string path = temp_model_path("mog_model_ver.mogm");
  save_model(path, mog.model());
  {
    // Stamp a far-future format version into the header (offset 4).
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(4);
    const std::uint32_t version = 99;
    f.write(reinterpret_cast<const char*>(&version), sizeof version);
  }
  try {
    load_model<double>(path, MogParams{});
    FAIL() << "future-version model loaded without error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(ModelIo, RejectsComponentMismatch) {
  SerialMog<double> mog{16, 16};
  const std::string path = temp_model_path("mog_model_k.mogm");
  save_model(path, mog.model());
  MogParams p5;
  p5.num_components = 5;
  EXPECT_THROW(load_model<double>(path, p5), Error);
  std::remove(path.c_str());
}

TEST(ModelIo, InMemoryRoundTripIsBitExact) {
  const SyntheticScene scene{quiet_scene()};
  SerialMog<double> mog{scene.width(), scene.height()};
  FrameU8 fg;
  for (int t = 0; t < 6; ++t) mog.apply(scene.frame(t), fg);

  const std::vector<std::uint8_t> bytes = serialize_model(mog.model());
  const MogModel<double> restored =
      deserialize_model<double>(bytes.data(), bytes.size(), mog.params());
  EXPECT_EQ(restored.weights(), mog.model().weights());
  EXPECT_EQ(restored.means(), mog.model().means());
  EXPECT_EQ(restored.sds(), mog.model().sds());
}

TEST(ModelIo, TruncationAtEveryRegionThrowsTypedError) {
  SerialMog<double> mog{16, 12};
  const std::vector<std::uint8_t> bytes = serialize_model(mog.model());
  // Cut inside the header, at the header boundary, inside each parameter
  // array, and one byte short of complete: all must reject as truncation,
  // none may return a partially populated model.
  const std::size_t cuts[] = {0,
                              1,
                              23,
                              24,
                              bytes.size() / 4,
                              bytes.size() / 2,
                              3 * bytes.size() / 4,
                              bytes.size() - 1};
  for (const std::size_t cut : cuts) {
    try {
      deserialize_model<double>(bytes.data(), cut, MogParams{});
      FAIL() << "accepted a payload cut to " << cut << " bytes";
    } catch (const ModelTruncatedError& e) {
      EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
          << e.what();
    }
  }
}

TEST(ModelIo, BitFlipInAnyArrayThrowsChecksumError) {
  SerialMog<double> mog{16, 16};
  const SyntheticScene scene{quiet_scene(16, 16)};
  FrameU8 fg;
  for (int t = 0; t < 4; ++t) mog.apply(scene.frame(t), fg);
  const std::vector<std::uint8_t> clean = serialize_model(mog.model());

  // One flipped bit anywhere in the weights / means / sds arrays or in the
  // stored CRC itself must be caught by the checksum.
  const std::size_t header = 24, payload = clean.size() - header - 4;
  const std::size_t offsets[] = {header,
                                 header + payload / 6,
                                 header + payload / 2,
                                 header + 5 * payload / 6,
                                 clean.size() - 5,
                                 clean.size() - 1};
  for (const std::size_t at : offsets) {
    std::vector<std::uint8_t> bad = clean;
    bad[at] ^= 0x10;
    try {
      deserialize_model<double>(bad.data(), bad.size(), MogParams{});
      FAIL() << "accepted a bit flip at byte " << at;
    } catch (const ModelChecksumError& e) {
      EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
          << e.what();
    }
  }
}

TEST(ModelIo, DimensionBombHeaderIsRejectedBeforeAllocation) {
  SerialMog<double> mog{16, 12};
  std::vector<std::uint8_t> bytes = serialize_model(mog.model());
  // Forge absurd dimensions into the header (width at offset 12): without
  // the cap the loader would try to allocate terabytes before noticing the
  // payload is 9 KB.
  const std::int32_t bomb = 1 << 30;
  std::memcpy(bytes.data() + 12, &bomb, sizeof bomb);
  EXPECT_THROW(
      deserialize_model<double>(bytes.data(), bytes.size(), MogParams{}),
      ModelFormatError);
  // Zero and negative dimensions are equally malformed.
  const std::int32_t zero = 0, negative = -16;
  std::memcpy(bytes.data() + 12, &zero, sizeof zero);
  EXPECT_THROW(
      deserialize_model<double>(bytes.data(), bytes.size(), MogParams{}),
      ModelFormatError);
  std::memcpy(bytes.data() + 12, &negative, sizeof negative);
  EXPECT_THROW(
      deserialize_model<double>(bytes.data(), bytes.size(), MogParams{}),
      ModelFormatError);
}

TEST(ModelIo, TrailingGarbageIsRejected) {
  SerialMog<double> mog{16, 12};
  std::vector<std::uint8_t> bytes = serialize_model(mog.model());
  bytes.push_back(0xab);  // one byte past the declared payload
  try {
    deserialize_model<double>(bytes.data(), bytes.size(), MogParams{});
    FAIL() << "accepted trailing garbage";
  } catch (const ModelFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos)
        << e.what();
  }
}

TEST(ModelIo, ErrorTypesFormAHierarchyUnderError) {
  // Callers can catch the family (ModelIoError) or the root (Error) without
  // caring which specific guard fired.
  SerialMog<double> mog{16, 12};
  std::vector<std::uint8_t> bytes = serialize_model(mog.model());
  bytes[30] ^= 0x01;
  EXPECT_THROW(
      deserialize_model<double>(bytes.data(), bytes.size(), MogParams{}),
      ModelIoError);
  EXPECT_THROW(deserialize_model<double>(bytes.data(), 10, MogParams{}),
               ModelIoError);
  EXPECT_THROW(
      deserialize_model<double>(bytes.data(), bytes.size(), MogParams{}),
      Error);
}

TEST(CostModel, RejectsBadInputs) {
  const CpuCostModel cost;
  EXPECT_THROW(cost.seconds(CpuVariant::kSerial, Precision::kDouble, 0, 10,
                            10, 3),
               Error);
  EXPECT_THROW(cost.seconds(CpuVariant::kSerial, Precision::kDouble, 10, 10,
                            10, 0),
               Error);
}

}  // namespace
}  // namespace mog
