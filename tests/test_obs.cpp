// Tests for the live observability plane: structured logging (fan-out,
// thresholds, deterministic rate limiting), Prometheus text exposition
// (rendering + grammar validation), the embedded HTTP server over a real
// socket, frame-ticket trace propagation, trace-truncation surfacing, and an
// end-to-end /metrics + /healthz scrape of a running StreamServer.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mog/fault/fault_injector.hpp"
#include "mog/obs/flame.hpp"
#include "mog/obs/frame_ticket.hpp"
#include "mog/obs/heatmap.hpp"
#include "mog/obs/http_server.hpp"
#include "mog/obs/log.hpp"
#include "mog/obs/prometheus.hpp"
#include "mog/obs/sampler.hpp"
#include "mog/serve/stream_server.hpp"
#include "mog/telemetry/telemetry.hpp"
#include "mog/video/scene.hpp"

namespace mog {
namespace {

using obs::HistogramSeries;
using obs::HttpRequest;
using obs::HttpResponse;
using obs::HttpServer;
using obs::LogLevel;
using obs::Logger;
using obs::LogRecord;
using obs::MetricFamily;
using obs::MetricSample;
using obs::MetricType;
using obs::RateLimitPolicy;
using obs::RingBufferSink;
using obs::ScopedLogger;

// --- structured logging ------------------------------------------------------

TEST(Log, FormatJsonlIsOneParsableObjectPerRecord) {
  LogRecord rec;
  rec.level = LogLevel::kWarn;
  rec.component = "serve";
  rec.message = "queue \"full\"";  // quotes must be escaped
  rec.fields = {{"stream", telemetry::Json{3}},
                {"dropped", telemetry::Json{true}}};
  rec.ts_us = 1234;
  rec.suppressed = 2;

  const std::string line = format_jsonl(rec);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const telemetry::Json doc = telemetry::Json::parse(line);
  EXPECT_EQ(doc.find("level")->as_string(), "warn");
  EXPECT_EQ(doc.find("component")->as_string(), "serve");
  EXPECT_EQ(doc.find("msg")->as_string(), "queue \"full\"");
  EXPECT_DOUBLE_EQ(doc.find("stream")->as_number(), 3.0);
  EXPECT_TRUE(doc.find("dropped")->as_bool());
  EXPECT_DOUBLE_EQ(doc.find("ts_us")->as_number(), 1234.0);
  EXPECT_DOUBLE_EQ(doc.find("suppressed")->as_number(), 2.0);
}

TEST(Log, ThresholdAndFanOut) {
  Logger logger{LogLevel::kInfo};
  RingBufferSink a, b;
  logger.add_sink(&a);
  logger.add_sink(&b);

  logger.log(LogLevel::kDebug, "t", "below threshold");
  logger.log(LogLevel::kInfo, "t", "hello");
  logger.log(LogLevel::kError, "t", "boom");

  for (const RingBufferSink* sink : {&a, &b}) {
    const std::vector<LogRecord> got = sink->snapshot();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].message, "hello");
    EXPECT_EQ(got[1].message, "boom");
  }

  logger.set_threshold(LogLevel::kDebug);
  logger.log(LogLevel::kDebug, "t", "now visible");
  EXPECT_EQ(a.snapshot().back().message, "now visible");

  logger.remove_sink(&b);
  logger.log(LogLevel::kInfo, "t", "only a");
  EXPECT_EQ(a.total_written(), 4u);
  EXPECT_EQ(b.total_written(), 3u);
}

TEST(Log, SinklessLoggingIsANoOp) {
  Logger logger;
  EXPECT_FALSE(logger.has_sinks());
  logger.log(LogLevel::kError, "t", "dropped on the floor");
  EXPECT_EQ(logger.records_emitted(), 0u);
}

TEST(Log, RateLimitIsDeterministicAndCountBased) {
  Logger logger{LogLevel::kDebug};
  RingBufferSink sink;
  logger.add_sink(&sink);
  logger.set_rate_limit({/*max_burst=*/2, /*every=*/3});

  for (int i = 0; i < 8; ++i) logger.log(LogLevel::kInfo, "t", "repeat");

  // Records 1, 2 pass as the burst; afterwards every 3rd repeat passes:
  // 3 and 4 suppressed, 5 passes (suppressed=2), 6 and 7 suppressed,
  // 8 passes (suppressed=2).
  const std::vector<LogRecord> got = sink.snapshot();
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].suppressed, 0u);
  EXPECT_EQ(got[1].suppressed, 0u);
  EXPECT_EQ(got[2].suppressed, 2u);
  EXPECT_EQ(got[3].suppressed, 2u);
  EXPECT_EQ(logger.records_suppressed(), 4u);

  // A different (component, message) key is not affected...
  logger.log(LogLevel::kInfo, "other", "repeat");
  EXPECT_EQ(sink.snapshot().back().component, "other");

  // ...and errors are never suppressed.
  for (int i = 0; i < 8; ++i) logger.log(LogLevel::kError, "t", "fatal");
  std::size_t errors = 0;
  for (const LogRecord& r : sink.snapshot()) errors += r.message == "fatal";
  EXPECT_EQ(errors, 8u);
}

TEST(Log, RingBufferKeepsLastN) {
  Logger logger{LogLevel::kDebug};
  RingBufferSink sink{3};
  logger.add_sink(&sink);
  logger.set_rate_limit({/*max_burst=*/100, /*every=*/1});
  for (int i = 0; i < 5; ++i)
    logger.log(LogLevel::kInfo, "t", "m" + std::to_string(i));
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.total_written(), 5u);
  EXPECT_EQ(sink.snapshot().front().message, "m2");
  EXPECT_EQ(sink.snapshot().back().message, "m4");
}

TEST(Log, ScopedLoggerStampsComponent) {
  Logger logger{LogLevel::kDebug};
  RingBufferSink sink;
  logger.add_sink(&sink);
  const ScopedLogger slog{"fault", &logger};
  slog.warn("degraded", {{"from", telemetry::Json{"tiled"}}});
  const std::vector<LogRecord> got = sink.snapshot();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].component, "fault");
  EXPECT_EQ(got[0].level, LogLevel::kWarn);
  ASSERT_EQ(got[0].fields.size(), 1u);
  EXPECT_EQ(got[0].fields[0].first, "from");
}

// --- Prometheus exposition ---------------------------------------------------

TEST(Prometheus, RenderedPagePassesItsOwnValidator) {
  std::vector<MetricFamily> families;
  MetricFamily gauge;
  gauge.name = "mog_serve_queue_depth";
  gauge.help = "frames waiting per stream; quotes \" and \\ escape";
  gauge.type = MetricType::kGauge;
  gauge.samples = {{{{"stream", "0"}}, 3.0},
                   {{{"stream", "1"}, {"tier", "tiled\"gpu"}}, 0.0}};
  families.push_back(gauge);

  MetricFamily counter;
  counter.name = "mog_serve_frames_dropped_total";
  counter.type = MetricType::kCounter;
  counter.samples = {{{}, 42.0}};
  families.push_back(counter);

  MetricFamily hist;
  hist.name = "mog_serve_latency_seconds";
  hist.type = MetricType::kHistogram;
  hist.histograms = {
      obs::make_histogram({0.001, 0.002, 0.5}, {{"stream", "0"}})};
  families.push_back(hist);

  const std::string page = obs::render(families);
  EXPECT_EQ(obs::validate_exposition(page), "") << page;
  EXPECT_NE(page.find("# TYPE mog_serve_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(page.find("# TYPE mog_serve_frames_dropped_total counter"),
            std::string::npos);
  EXPECT_NE(page.find("mog_serve_latency_seconds_bucket{stream=\"0\",le="),
            std::string::npos);
  EXPECT_NE(page.find("mog_serve_latency_seconds_count{stream=\"0\"} 3"),
            std::string::npos);
}

TEST(Prometheus, ValidatorRejectsMalformedPages) {
  EXPECT_NE(obs::validate_exposition("bad-name 1\n"), "");
  EXPECT_NE(obs::validate_exposition("# TYPE x gauge\ny 1\n"), "");
  EXPECT_NE(obs::validate_exposition("x{label=\"unterminated} 1\n"), "");
}

TEST(Prometheus, AdversarialLabelValuesAndHelpEscapeCleanly) {
  // Stream names are operator-controlled; backslashes, quotes and newlines
  // must come out as the spec's escape sequences, never as raw bytes that
  // break the line-oriented grammar.
  MetricFamily f;
  f.name = "mog_serve_frames_submitted_total";
  f.help = "per-stream \\ backslash and\nan embedded newline";
  f.type = MetricType::kCounter;
  f.samples = {{{{"stream", "cam\\1"}}, 1.0},
               {{{"stream", "quote\"inside"}}, 2.0},
               {{{"stream", "new\nline"}}, 3.0},
               {{{"stream", "trailing\\"}}, 4.0}};

  const std::string page = obs::render({f});
  EXPECT_EQ(obs::validate_exposition(page), "") << page;
  EXPECT_NE(page.find("stream=\"cam\\\\1\""), std::string::npos) << page;
  EXPECT_NE(page.find("stream=\"quote\\\"inside\""), std::string::npos)
      << page;
  EXPECT_NE(page.find("stream=\"new\\nline\""), std::string::npos) << page;
  EXPECT_NE(page.find("stream=\"trailing\\\\\""), std::string::npos) << page;
  EXPECT_NE(page.find("# HELP mog_serve_frames_submitted_total per-stream "
                      "\\\\ backslash and\\nan embedded newline\n"),
            std::string::npos)
      << page;
  // Exactly HELP + TYPE + four sample lines: nothing leaked a raw newline.
  EXPECT_EQ(std::count(page.begin(), page.end(), '\n'), 6);
}

TEST(Prometheus, SanitizeMetricName) {
  EXPECT_EQ(obs::sanitize_metric_name("serve.latency_seconds"),
            "serve_latency_seconds");
  EXPECT_EQ(obs::sanitize_metric_name("9lives"), "_9lives");
  EXPECT_EQ(obs::sanitize_metric_name("ok_name:x"), "ok_name:x");
}

TEST(Prometheus, MakeHistogramBucketsAreCumulative) {
  const HistogramSeries h =
      obs::make_histogram({0.5, 1.5, 2.5, 100.0}, {}, {1.0, 2.0, 3.0});
  ASSERT_EQ(h.counts.size(), 4u);  // 3 bounds + the implicit +Inf bucket
  EXPECT_EQ(h.counts[0], 1u);      // <= 1.0
  EXPECT_EQ(h.counts[1], 2u);      // <= 2.0
  EXPECT_EQ(h.counts[2], 3u);      // <= 3.0
  EXPECT_EQ(h.counts[3], 4u);      // +Inf
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 104.5);
}

TEST(Prometheus, CounterRegistryAndTraceHealthFamilies) {
  telemetry::CounterRegistry reg;
  gpusim::KernelStats stats;
  stats.num_warps = 32;
  reg.on_kernel_launch(stats);
  reg.record("serve.latency_seconds", 0.004);

  telemetry::TraceRecorder trace{2};
  trace.instant("a");
  trace.instant("b");
  trace.instant("dropped");  // over capacity

  std::vector<MetricFamily> families;
  obs::append_counter_registry(reg, families);
  obs::append_trace_health(trace, families);
  const std::string page = obs::render(families);
  EXPECT_EQ(obs::validate_exposition(page), "") << page;
  EXPECT_NE(page.find("mog_kernel_launches_total 1"), std::string::npos);
  EXPECT_NE(page.find("mog_serve_latency_seconds"), std::string::npos);
  EXPECT_NE(page.find("mog_trace_dropped_total 1"), std::string::npos);
}

// --- embedded HTTP server ----------------------------------------------------

/// Blocking one-shot HTTP client against 127.0.0.1:`port` (tests only).
std::string http_get(int port, const std::string& target,
                     const std::string& method = "GET") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request =
      method + " " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(Http, ServesHandlersOverARealSocket) {
  HttpServer server;
  server.handle("/ping", [](const HttpRequest& req) {
    HttpResponse resp;
    resp.body = "pong " + req.method;
    return resp;
  });
  server.start(0);  // ephemeral port
  ASSERT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());

  const std::string ok = http_get(server.port(), "/ping");
  EXPECT_NE(ok.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_EQ(body_of(ok), "pong GET");

  // Query strings are stripped before dispatch.
  EXPECT_EQ(body_of(http_get(server.port(), "/ping?x=1")), "pong GET");

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

  const std::string post = http_get(server.port(), "/ping", "POST");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(Http, ConcurrentScrapesAllSucceed) {
  HttpServer server;
  server.handle("/metrics", [](const HttpRequest&) {
    HttpResponse resp;
    resp.content_type = obs::kPrometheusContentType;
    resp.body = "mog_up 1\n";
    return resp;
  });
  server.start(0);
  std::vector<std::thread> clients;
  std::vector<std::string> bodies(4);
  for (std::size_t i = 0; i < bodies.size(); ++i)
    clients.emplace_back([&, i] {
      bodies[i] = body_of(http_get(server.port(), "/metrics"));
    });
  for (std::thread& t : clients) t.join();
  for (const std::string& body : bodies) EXPECT_EQ(body, "mog_up 1\n");
  server.stop();
}

/// Send raw bytes (possibly a partial or malformed request) and read whatever
/// the server answers before closing. With `half_close` the write side is shut
/// down after sending, so the server sees EOF; without it our end stays open,
/// which lets read-timeout behaviour be observed.
std::string http_raw(int port, const std::string& bytes,
                     bool half_close = false) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  if (!bytes.empty())
    EXPECT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  if (half_close) ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(Http, OversizedRequestIsRefusedWith431) {
  HttpServer server;
  server.handle("/ping", [](const HttpRequest&) { return HttpResponse{}; });
  server.set_max_request_bytes(64);
  server.start(0);

  const std::string big = "GET /ping HTTP/1.1\r\nX-Pad: " +
                          std::string(512, 'a') + "\r\n\r\n";
  const std::string refused = http_raw(server.port(), big);
  EXPECT_NE(refused.find("HTTP/1.1 431"), std::string::npos) << refused;

  // One abusive client must not take the endpoint down.
  EXPECT_TRUE(server.running());
  EXPECT_NE(http_get(server.port(), "/ping").find("HTTP/1.1 200"),
            std::string::npos);
  server.stop();
}

TEST(Http, StalledRequestTimesOutWith408AndServerStaysUp) {
  HttpServer server;
  server.handle("/ping", [](const HttpRequest&) { return HttpResponse{}; });
  server.set_read_timeout(0.2);
  server.start(0);

  // A peer that sends half a request line and then goes quiet would park the
  // single serve thread forever without the read deadline.
  const std::string stalled = http_raw(server.port(), "GET /ping HTT");
  EXPECT_NE(stalled.find("HTTP/1.1 408"), std::string::npos) << stalled;

  // A connect-and-close probe (port scan / TCP health check) gets silence,
  // not an error page, and the server keeps serving afterwards.
  EXPECT_EQ(http_raw(server.port(), "", /*half_close=*/true), "");
  EXPECT_TRUE(server.running());
  EXPECT_NE(http_get(server.port(), "/ping").find("HTTP/1.1 200"),
            std::string::npos);
  server.stop();
}

TEST(Http, HardeningKnobsRejectMisuse) {
  HttpServer server;
  EXPECT_THROW(server.set_max_request_bytes(8), Error);  // below floor
  server.start(0);
  EXPECT_THROW(server.set_read_timeout(1.0), Error);       // while running
  EXPECT_THROW(server.set_max_request_bytes(4096), Error);  // while running
  server.stop();
}

TEST(Http, PercentDecodeAndQueryStringParsing) {
  std::string out;
  EXPECT_TRUE(obs::percent_decode("plain", out));
  EXPECT_EQ(out, "plain");
  EXPECT_TRUE(obs::percent_decode("a%20b+c%2Fd%41", out));
  EXPECT_EQ(out, "a b c/dA");
  EXPECT_TRUE(obs::percent_decode("", out));
  EXPECT_EQ(out, "");
  EXPECT_FALSE(obs::percent_decode("truncated%2", out));
  EXPECT_FALSE(obs::percent_decode("truncated%", out));
  EXPECT_FALSE(obs::percent_decode("nonhex%G1", out));

  std::vector<std::pair<std::string, std::string>> q;
  EXPECT_TRUE(obs::parse_query_string("", q));
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(obs::parse_query_string("a=1&b=two%20words&a=3", q));
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q[0], (std::pair<std::string, std::string>{"a", "1"}));
  EXPECT_EQ(q[1], (std::pair<std::string, std::string>{"b", "two words"}));
  EXPECT_EQ(q[2], (std::pair<std::string, std::string>{"a", "3"}));
  EXPECT_TRUE(obs::parse_query_string("empty=", q));  // empty value is fine
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q[0].second, "");

  EXPECT_FALSE(obs::parse_query_string("=1", q));        // empty key
  EXPECT_FALSE(obs::parse_query_string("bare", q));      // no '='
  EXPECT_FALSE(obs::parse_query_string("a=1&&b=2", q));  // empty pair
  EXPECT_FALSE(obs::parse_query_string("a=1&", q));      // trailing empty pair
  EXPECT_FALSE(obs::parse_query_string("a=%zz", q));     // bad escape
}

TEST(Http, QueryParamsDecodedAndMalformedQueryGets400) {
  HttpServer server;
  server.handle("/echo", [](const HttpRequest& req) {
    HttpResponse resp;
    const std::string* x = req.param("x");
    resp.body = x != nullptr ? *x : "<missing>";
    return resp;
  });
  server.start(0);

  EXPECT_EQ(body_of(http_get(server.port(), "/echo?x=hello%20world&y=1")),
            "hello world");
  EXPECT_EQ(body_of(http_get(server.port(), "/echo?x=a%2Fb+c")), "a/b c");
  EXPECT_EQ(body_of(http_get(server.port(), "/echo")), "<missing>");

  // Malformed query strings are rejected before dispatch, and the server
  // keeps serving afterwards.
  for (const char* target :
       {"/echo?x=%G1", "/echo?noequals", "/echo?=1", "/echo?a=1&&b=2"}) {
    const std::string resp = http_get(server.port(), target);
    EXPECT_NE(resp.find("HTTP/1.1 400"), std::string::npos) << target;
    EXPECT_NE(body_of(resp).find("malformed query string"), std::string::npos)
        << target;
  }
  EXPECT_EQ(body_of(http_get(server.port(), "/echo?x=ok")), "ok");
  server.stop();
}

// --- frame tickets and flow propagation --------------------------------------

TEST(FrameTicket, MintedUniqueAndScopedPerThread) {
  const std::uint64_t a = obs::mint_frame_ticket();
  const std::uint64_t b = obs::mint_frame_ticket();
  EXPECT_GT(a, 0u);
  EXPECT_NE(a, b);

  EXPECT_EQ(obs::current_frame_ticket(), 0u);
  {
    obs::FrameTicketScope outer{a};
    EXPECT_EQ(obs::current_frame_ticket(), a);
    {
      obs::FrameTicketScope inner{b};
      EXPECT_EQ(obs::current_frame_ticket(), b);
    }
    EXPECT_EQ(obs::current_frame_ticket(), a);

    // Tickets are thread-local: another thread sees none.
    std::uint64_t seen = 99;
    std::thread{[&] { seen = obs::current_frame_ticket(); }}.join();
    EXPECT_EQ(seen, 0u);
  }
  EXPECT_EQ(obs::current_frame_ticket(), 0u);
}

TEST(ServeFlow, FrameJourneyEmitsConnectedFlowEvents) {
  telemetry::TraceRecorder trace;
  telemetry::set_tracer(&trace);
  {
    serve::ServeConfig cfg;
    serve::StreamServer<double> server{cfg};
    serve::StreamServer<double>::GpuConfig gpu;
    gpu.width = 48;
    gpu.height = 36;
    SceneConfig sc;
    sc.width = 48;
    sc.height = 36;
    const SyntheticScene scene{sc};
    const int id = server.open_stream(gpu);
    constexpr int kFrames = 4;
    for (int t = 0; t < kFrames; ++t)
      server.submit(id, scene.frame(t), t / 30.0);
    server.drain();
  }
  telemetry::set_tracer(nullptr);

  // Every frame's journey is an s -> t... -> f chain keyed by its ticket.
  std::vector<std::uint64_t> begins, steps, ends;
  for (const telemetry::TraceEvent& ev : trace.events()) {
    if (ev.cat != "serve.flow") continue;
    EXPECT_EQ(ev.name, "frame");
    EXPECT_GE(ev.tid, telemetry::TraceRecorder::kServeTrackBase);
    EXPECT_GT(ev.flow_id, 0u);
    if (ev.phase == 's') begins.push_back(ev.flow_id);
    if (ev.phase == 't') steps.push_back(ev.flow_id);
    if (ev.phase == 'f') ends.push_back(ev.flow_id);
  }
  EXPECT_EQ(begins.size(), 4u);
  EXPECT_EQ(ends.size(), 4u);
  EXPECT_FALSE(steps.empty());
  // Each completed chain ends with the ticket it began with.
  for (const std::uint64_t ticket : ends)
    EXPECT_NE(std::find(begins.begin(), begins.end(), ticket), begins.end());
}

TEST(Trace, TruncationIsSurfacedInTheExport) {
  telemetry::TraceRecorder trace{2};
  trace.instant("kept1");
  trace.instant("kept2");
  trace.instant("lost1");
  trace.instant("lost2");
  EXPECT_EQ(trace.dropped(), 2u);

  const telemetry::Json doc = trace.to_json();
  const telemetry::Json::Array& events =
      doc.find("traceEvents")->as_array();
  bool truncated_seen = false, counter_seen = false;
  for (const telemetry::Json& ev : events) {
    const telemetry::Json* name = ev.find("name");
    if (name == nullptr) continue;
    if (name->as_string() == "trace.truncated") {
      truncated_seen = true;
      const telemetry::Json* args = ev.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_DOUBLE_EQ(args->find("dropped_events")->as_number(), 2.0);
      EXPECT_DOUBLE_EQ(args->find("capacity")->as_number(), 2.0);
    }
    if (name->as_string() == "trace.dropped") counter_seen = true;
  }
  EXPECT_TRUE(truncated_seen);
  EXPECT_TRUE(counter_seen);

  // An untruncated trace carries no such marker.
  telemetry::TraceRecorder roomy;
  roomy.instant("only");
  const telemetry::Json clean = roomy.to_json();
  for (const telemetry::Json& ev : clean.find("traceEvents")->as_array())
    EXPECT_NE(ev.find("name")->as_string(), "trace.truncated");
}

// --- end-to-end: scraping a running StreamServer -----------------------------

TEST(ServerObs, MetricsHealthzStatuszOverHttp) {
  telemetry::CounterRegistry reg;
  telemetry::set_counters(&reg);

  serve::ServeConfig cfg;
  cfg.obs_port = 0;  // ephemeral loopback port
  serve::StreamServer<double> server{cfg};
  ASSERT_GT(server.obs_port(), 0);

  serve::StreamServer<double>::GpuConfig gpu;
  gpu.width = 48;
  gpu.height = 36;
  SceneConfig sc;
  sc.width = 48;
  sc.height = 36;
  const SyntheticScene scene{sc};
  const int id = server.open_stream(gpu);
  for (int t = 0; t < 6; ++t) server.submit(id, scene.frame(t), t / 30.0);
  server.drain();

  // /metrics: Prometheus-parseable, right content type, live counters.
  const std::string metrics = http_get(server.obs_port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(metrics.find(obs::kPrometheusContentType), std::string::npos);
  const std::string page = body_of(metrics);
  EXPECT_EQ(obs::validate_exposition(page), "") << page;
  EXPECT_NE(
      page.find("mog_serve_frames_submitted_total{stream=\"0\"} 6"),
      std::string::npos);
  EXPECT_NE(page.find("mog_serve_masks_delivered_total{stream=\"0\"} 6"),
            std::string::npos);
  EXPECT_NE(page.find("mog_serve_latency_seconds_bucket"), std::string::npos);
  EXPECT_NE(page.find("mog_timeline_engine_busy_seconds"), std::string::npos);
  EXPECT_NE(page.find("mog_kernel_launches_total"), std::string::npos);

  // /healthz: all streams on a GPU tier, model validates -> 200.
  const std::string health = http_get(server.obs_port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(body_of(health).find("stream 0: tier="), std::string::npos);

  // /statusz: human-readable digest.
  const std::string status = http_get(server.obs_port(), "/statusz");
  EXPECT_NE(status.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_FALSE(body_of(status).empty());

  telemetry::set_counters(nullptr);
}

TEST(ServerObs, HealthzFlipsTo503OnForcedDegradation) {
  serve::ServeConfig cfg;
  cfg.obs_port = 0;
  cfg.resilience.retry.max_attempts = 2;
  cfg.resilience.degrade_after_failures = 1;
  serve::StreamServer<double> server{cfg};

  auto injector = std::make_shared<fault::FaultInjector>([] {
    fault::FaultConfig fc;
    fc.launch_fault_prob = 1.0;  // every launch dies -> ladder to CPU tier
    return fc;
  }());
  serve::StreamServer<double>::GpuConfig gpu;
  gpu.width = 48;
  gpu.height = 36;
  const int id = server.open_stream(gpu, injector);

  EXPECT_NE(http_get(server.obs_port(), "/healthz").find("HTTP/1.1 200"),
            std::string::npos);

  SceneConfig sc;
  sc.width = 48;
  sc.height = 36;
  const SyntheticScene scene{sc};
  for (int t = 0; t < 4; ++t) server.submit(id, scene.frame(t));
  server.drain();
  ASSERT_EQ(server.stream_stats(id).tier, fault::ExecutionTier::kCpuSerial);

  const std::string sick = http_get(server.obs_port(), "/healthz");
  EXPECT_NE(sick.find("HTTP/1.1 503"), std::string::npos);
  EXPECT_NE(body_of(sick).find("cpu-serial"), std::string::npos);

  // The degraded tier is also visible on /metrics as a gauge.
  const std::string page = body_of(http_get(server.obs_port(), "/metrics"));
  EXPECT_EQ(obs::validate_exposition(page), "") << page;
  EXPECT_NE(page.find("mog_serve_stream_tier{stream=\"0\"} 2"),
            std::string::npos);
}

TEST(ServerObs, ObsPortDisabledByDefault) {
  serve::ServeConfig cfg;
  serve::StreamServer<double> server{cfg};
  EXPECT_EQ(server.obs_port(), -1);
  // The in-process bodies still work without a socket.
  std::string detail;
  EXPECT_TRUE(server.healthz(detail));
  EXPECT_EQ(obs::validate_exposition(server.metrics_text()), "");
  EXPECT_FALSE(server.statusz().empty());
}

// --- sampling profiler -------------------------------------------------------

TEST(Sampler, StartStopDoubleStartAndTake) {
  obs::Sampler sampler;
  EXPECT_FALSE(sampler.running());
  sampler.stop();  // stop before start is a no-op
  EXPECT_THROW(sampler.start(0), Error);      // below range
  EXPECT_THROW(sampler.start(30000), Error);  // above range

  ASSERT_TRUE(sampler.start(500));
  EXPECT_TRUE(sampler.running());
  EXPECT_FALSE(sampler.start(500)) << "double start must be refused";
  // One running sampler process-wide: a second instance is refused too.
  EXPECT_FALSE(obs::Sampler::global().start(500));
  EXPECT_THROW(sampler.take(), Error);  // take() requires stop() first

  {
    const obs::ProfSpan span{obs::ProfTag::kDecode};
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  sampler.stop();
  sampler.stop();  // idempotent
  EXPECT_FALSE(sampler.running());

  const obs::FlameProfile profile = sampler.take();
  EXPECT_EQ(profile.hz, 500);
  EXPECT_GT(profile.seconds, 0.0);
  EXPECT_GT(profile.ticks, 0u);
  EXPECT_TRUE(sampler.take().empty()) << "take() clears the stored profile";

  // The registry is re-armed after stop: a fresh capture works.
  ASSERT_TRUE(obs::Sampler::global().start(500));
  obs::Sampler::global().stop();
  obs::Sampler::global().take();
}

TEST(Sampler, TagStackOverflowTruncatesButKeepsCounting) {
  obs::Sampler sampler;
  ASSERT_TRUE(sampler.start(4000));

  std::thread deep([] {
    obs::prof_set_thread_name("deep");
    // 20 nested spans: the published stack caps at kProfMaxDepth frames,
    // the 4 pushes beyond it are tallied, and the pops balance on unwind.
    std::vector<std::unique_ptr<obs::ProfSpan>> spans;
    for (int i = 0; i < 20; ++i)
      spans.push_back(
          std::make_unique<obs::ProfSpan>(obs::ProfTag::kWarpDispatch));
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    while (!spans.empty()) spans.pop_back();
    // After full unwind the thread samples as idle, not as a corrupt stack.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  });
  deep.join();
  sampler.stop();

  const obs::FlameProfile profile = sampler.take();
  EXPECT_GE(profile.truncated, 4u);
  bool saw_capped = false;
  for (const obs::FlameStack& stack : profile.stacks) {
    if (stack.thread != "deep") continue;
    EXPECT_LE(stack.frames.size(), obs::kProfMaxDepth);
    if (stack.frames.size() == obs::kProfMaxDepth) {
      saw_capped = true;
      for (const std::string& frame : stack.frames)
        EXPECT_EQ(frame, "warp_dispatch");
    }
  }
  EXPECT_TRUE(saw_capped) << "expected a depth-capped stack from 'deep'";
}

TEST(Flame, CollapsedRoundTripGolden) {
  obs::FlameProfile profile;
  profile.hz = 997;
  profile.stacks = {
      {"exec0", {"kernel_launch", "warp_dispatch", "coalescer_access"}, 42},
      {"exec0", {"kernel_launch", "warp_dispatch"}, 17},
      {"serve.pump", {"pump"}, 9},
      {"decode1", {}, 5},  // idle
  };
  profile.samples = 68;
  profile.idle = 5;

  const std::string text = obs::render_collapsed(profile);
  EXPECT_EQ(text,
            "exec0;kernel_launch;warp_dispatch;coalescer_access 42\n"
            "exec0;kernel_launch;warp_dispatch 17\n"
            "serve.pump;pump 9\n"
            "decode1;(idle) 5\n");

  const obs::FlameProfile parsed = obs::parse_collapsed(text);
  ASSERT_EQ(parsed.stacks.size(), profile.stacks.size());
  for (std::size_t i = 0; i < parsed.stacks.size(); ++i) {
    EXPECT_EQ(parsed.stacks[i].thread, profile.stacks[i].thread);
    EXPECT_EQ(parsed.stacks[i].frames, profile.stacks[i].frames);
    EXPECT_EQ(parsed.stacks[i].count, profile.stacks[i].count);
  }
  EXPECT_EQ(parsed.samples, 68u);
  EXPECT_EQ(parsed.idle, 5u);
  EXPECT_EQ(obs::render_collapsed(parsed), text) << "round-trip is stable";

  EXPECT_THROW(obs::parse_collapsed("nocount\n"), Error);
  EXPECT_THROW(obs::parse_collapsed(";frame 1\n"), Error);      // empty thread
  EXPECT_THROW(obs::parse_collapsed("t;;frame 1\n"), Error);    // empty frame
  EXPECT_THROW(obs::parse_collapsed("t;frame 12x\n"), Error);   // bad count
}

TEST(Flame, ReportJsonAndSpeedscopeExports) {
  obs::FlameProfile profile;
  profile.hz = 199;
  profile.seconds = 0.5;
  profile.ticks = 100;
  profile.samples = 30;
  profile.idle = 10;
  profile.truncated = 2;
  profile.stacks = {{"exec0", {"kernel_launch", "warp_dispatch"}, 30},
                    {"exec0", {}, 10}};

  const telemetry::Json prof = obs::profile_report_json(profile);
  const obs::FlameProfile back = obs::profile_from_report_json(prof);
  EXPECT_EQ(back.hz, 199);
  EXPECT_DOUBLE_EQ(back.seconds, 0.5);
  EXPECT_EQ(back.ticks, 100u);
  EXPECT_EQ(back.samples, 30u);
  EXPECT_EQ(back.idle, 10u);
  EXPECT_EQ(back.truncated, 2u);
  EXPECT_EQ(obs::render_collapsed(back), obs::render_collapsed(profile));

  const telemetry::Json scope = obs::render_speedscope(profile);
  EXPECT_NE(scope.find("$schema"), nullptr);
  ASSERT_NE(scope.find("shared"), nullptr);
  ASSERT_NE(scope.find("profiles"), nullptr);
  EXPECT_EQ(scope.find("profiles")->as_array().size(), 1u);  // one thread
  const telemetry::Json& entry = scope.find("profiles")->as_array()[0];
  EXPECT_EQ(entry.find("type")->as_string(), "sampled");
  EXPECT_EQ(entry.find("samples")->as_array().size(), 2u);
  // The table renderer mentions the truncation so it is never silent.
  EXPECT_NE(obs::render_flame_table(profile).find("truncated"),
            std::string::npos);
}

// --- per-block heatmaps ------------------------------------------------------

TEST(Heatmap, BinsBlockDeltasByPixelOverlap) {
  obs::HeatmapSink sink;
  sink.bind_frame(32, 16, 8);  // 4x2 cells, 8x8 px each
  gpusim::KernelStats launch;
  sink.on_kernel_launch(launch);

  // One block covering the top half of the frame (rows 0..7): its weight
  // spreads evenly over the four top cells, and the bottom row stays cold.
  gpusim::BlockStats top;
  top.block_id = 0;
  top.first_thread = 0;
  top.threads = 256;
  top.delta.issue_cycles = 400;
  top.delta.branches_executed = 80;
  top.delta.branches_divergent = 20;
  top.delta.load_instructions = 30;
  top.delta.store_instructions = 10;
  top.delta.load_transactions = 100;
  top.delta.bytes_transferred_load = 6400;
  sink.on_block_stats(top);

  const obs::Heatmap map = sink.snapshot();
  EXPECT_EQ(map.cells_x, 4);
  EXPECT_EQ(map.cells_y, 2);
  EXPECT_EQ(map.launches, 1u);
  EXPECT_EQ(map.blocks, 1u);
  ASSERT_EQ(map.issue_cycles.size(), 8u);
  for (int cx = 0; cx < 4; ++cx) {
    EXPECT_DOUBLE_EQ(map.issue_cycles[cx], 100.0) << "top cell " << cx;
    EXPECT_DOUBLE_EQ(map.issue_cycles[4 + cx], 0.0) << "bottom cell " << cx;
  }
  double total = 0;
  for (const double v : map.dram_bytes) total += v;
  EXPECT_DOUBLE_EQ(total, 6400.0) << "distribution conserves the block total";

  // Derived views: divergence ratio and coalescing replay per cell.
  const std::vector<double> div = obs::divergence_grid(map);
  EXPECT_DOUBLE_EQ(div[0], 0.25);
  const std::vector<double> replay = obs::replay_grid(map);
  EXPECT_DOUBLE_EQ(replay[0], 25.0 - 10.0);  // transactions - mem insts

  // A block entirely past the frame (fused-epilogue halo) is ignored.
  gpusim::BlockStats halo;
  halo.first_thread = 32 * 16;
  halo.threads = 64;
  halo.delta.issue_cycles = 999;
  sink.on_block_stats(halo);
  EXPECT_EQ(sink.snapshot().blocks, 1u);

  // Rebinding with the same geometry keeps accumulating; a new geometry
  // resets.
  sink.bind_frame(32, 16, 8);
  EXPECT_EQ(sink.snapshot().blocks, 1u);
  sink.bind_frame(64, 16, 8);
  EXPECT_EQ(sink.snapshot().blocks, 0u);
}

TEST(Heatmap, JsonRoundTripAndRenderers) {
  obs::HeatmapSink sink;
  sink.bind_frame(16, 16, 8);  // 2x2 cells
  gpusim::BlockStats block;
  block.first_thread = 0;
  block.threads = 16 * 16;
  block.delta.issue_cycles = 1000;
  block.delta.load_transactions = 40;
  block.delta.load_instructions = 10;
  sink.on_block_stats(block);
  const obs::Heatmap map = sink.snapshot();

  const telemetry::Json doc = obs::heatmap_to_json(map);
  EXPECT_EQ(doc.find("schema")->as_string(), "mog-heatmap-v1");
  const obs::Heatmap back = obs::heatmap_from_json(doc);
  EXPECT_EQ(back.width, map.width);
  EXPECT_EQ(back.cells_x, map.cells_x);
  EXPECT_EQ(back.blocks, map.blocks);
  EXPECT_EQ(back.issue_cycles, map.issue_cycles);
  EXPECT_EQ(back.transactions, map.transactions);

  telemetry::Json bad = obs::heatmap_to_json(map);
  bad.set("schema", "not-a-heatmap");
  EXPECT_THROW(obs::heatmap_from_json(bad), Error);

  const std::string pgm =
      obs::heatmap_to_pgm(map.issue_cycles, map.cells_x, map.cells_y);
  EXPECT_EQ(pgm.substr(0, 9), "P2\n2 2\n25");
  EXPECT_NE(pgm.find("255"), std::string::npos);  // hottest cell saturates
  const std::string csv =
      obs::heatmap_to_csv(map.issue_cycles, map.cells_x, map.cells_y);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
  EXPECT_NE(obs::render_heatmap_summary(map).find("hottest"),
            std::string::npos);
}

// --- GET /profilez -----------------------------------------------------------

TEST(Profilez, CapturesOverHttpWith400And503Paths) {
  HttpServer server;
  server.handle("/profilez", obs::profilez_response);
  server.start(0);

  // Keep a tagged thread busy so the capture has something to see.
  std::atomic<bool> stop{false};
  std::thread busy([&stop] {
    obs::prof_set_thread_name("busy");
    while (!stop.load(std::memory_order_relaxed)) {
      const obs::ProfSpan span{obs::ProfTag::kDecode};
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const std::string ok =
      http_get(server.port(), "/profilez?seconds=0.15&hz=2000");
  EXPECT_NE(ok.find("HTTP/1.1 200"), std::string::npos) << ok;
  EXPECT_NE(body_of(ok).find("busy;decode"), std::string::npos) << ok;

  const std::string scope = http_get(
      server.port(), "/profilez?seconds=0.05&hz=500&format=speedscope");
  EXPECT_NE(scope.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(body_of(scope).find("speedscope.app"), std::string::npos);

  const std::string table =
      http_get(server.port(), "/profilez?seconds=0.05&hz=500&format=table");
  EXPECT_NE(table.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(body_of(table).find("frame"), std::string::npos);

  stop.store(true, std::memory_order_relaxed);
  busy.join();

  // Out-of-range or unparsable knobs are a client error, not a capture.
  for (const char* target :
       {"/profilez?seconds=31", "/profilez?seconds=abc", "/profilez?hz=0",
        "/profilez?hz=99999", "/profilez?format=xml"}) {
    EXPECT_NE(http_get(server.port(), target).find("HTTP/1.1 400"),
              std::string::npos)
        << target;
  }

  // A capture already in flight (here: a long-running manual one) gets 503.
  ASSERT_TRUE(obs::Sampler::global().start(50));
  const std::string b = http_get(server.port(), "/profilez?seconds=0.05");
  EXPECT_NE(b.find("HTTP/1.1 503"), std::string::npos) << b;
  obs::Sampler::global().stop();
  obs::Sampler::global().take();

  server.stop();
}

}  // namespace
}  // namespace mog
