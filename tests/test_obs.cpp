// Tests for the live observability plane: structured logging (fan-out,
// thresholds, deterministic rate limiting), Prometheus text exposition
// (rendering + grammar validation), the embedded HTTP server over a real
// socket, frame-ticket trace propagation, trace-truncation surfacing, and an
// end-to-end /metrics + /healthz scrape of a running StreamServer.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mog/fault/fault_injector.hpp"
#include "mog/obs/frame_ticket.hpp"
#include "mog/obs/http_server.hpp"
#include "mog/obs/log.hpp"
#include "mog/obs/prometheus.hpp"
#include "mog/serve/stream_server.hpp"
#include "mog/telemetry/telemetry.hpp"
#include "mog/video/scene.hpp"

namespace mog {
namespace {

using obs::HistogramSeries;
using obs::HttpRequest;
using obs::HttpResponse;
using obs::HttpServer;
using obs::LogLevel;
using obs::Logger;
using obs::LogRecord;
using obs::MetricFamily;
using obs::MetricSample;
using obs::MetricType;
using obs::RateLimitPolicy;
using obs::RingBufferSink;
using obs::ScopedLogger;

// --- structured logging ------------------------------------------------------

TEST(Log, FormatJsonlIsOneParsableObjectPerRecord) {
  LogRecord rec;
  rec.level = LogLevel::kWarn;
  rec.component = "serve";
  rec.message = "queue \"full\"";  // quotes must be escaped
  rec.fields = {{"stream", telemetry::Json{3}},
                {"dropped", telemetry::Json{true}}};
  rec.ts_us = 1234;
  rec.suppressed = 2;

  const std::string line = format_jsonl(rec);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const telemetry::Json doc = telemetry::Json::parse(line);
  EXPECT_EQ(doc.find("level")->as_string(), "warn");
  EXPECT_EQ(doc.find("component")->as_string(), "serve");
  EXPECT_EQ(doc.find("msg")->as_string(), "queue \"full\"");
  EXPECT_DOUBLE_EQ(doc.find("stream")->as_number(), 3.0);
  EXPECT_TRUE(doc.find("dropped")->as_bool());
  EXPECT_DOUBLE_EQ(doc.find("ts_us")->as_number(), 1234.0);
  EXPECT_DOUBLE_EQ(doc.find("suppressed")->as_number(), 2.0);
}

TEST(Log, ThresholdAndFanOut) {
  Logger logger{LogLevel::kInfo};
  RingBufferSink a, b;
  logger.add_sink(&a);
  logger.add_sink(&b);

  logger.log(LogLevel::kDebug, "t", "below threshold");
  logger.log(LogLevel::kInfo, "t", "hello");
  logger.log(LogLevel::kError, "t", "boom");

  for (const RingBufferSink* sink : {&a, &b}) {
    const std::vector<LogRecord> got = sink->snapshot();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].message, "hello");
    EXPECT_EQ(got[1].message, "boom");
  }

  logger.set_threshold(LogLevel::kDebug);
  logger.log(LogLevel::kDebug, "t", "now visible");
  EXPECT_EQ(a.snapshot().back().message, "now visible");

  logger.remove_sink(&b);
  logger.log(LogLevel::kInfo, "t", "only a");
  EXPECT_EQ(a.total_written(), 4u);
  EXPECT_EQ(b.total_written(), 3u);
}

TEST(Log, SinklessLoggingIsANoOp) {
  Logger logger;
  EXPECT_FALSE(logger.has_sinks());
  logger.log(LogLevel::kError, "t", "dropped on the floor");
  EXPECT_EQ(logger.records_emitted(), 0u);
}

TEST(Log, RateLimitIsDeterministicAndCountBased) {
  Logger logger{LogLevel::kDebug};
  RingBufferSink sink;
  logger.add_sink(&sink);
  logger.set_rate_limit({/*max_burst=*/2, /*every=*/3});

  for (int i = 0; i < 8; ++i) logger.log(LogLevel::kInfo, "t", "repeat");

  // Records 1, 2 pass as the burst; afterwards every 3rd repeat passes:
  // 3 and 4 suppressed, 5 passes (suppressed=2), 6 and 7 suppressed,
  // 8 passes (suppressed=2).
  const std::vector<LogRecord> got = sink.snapshot();
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].suppressed, 0u);
  EXPECT_EQ(got[1].suppressed, 0u);
  EXPECT_EQ(got[2].suppressed, 2u);
  EXPECT_EQ(got[3].suppressed, 2u);
  EXPECT_EQ(logger.records_suppressed(), 4u);

  // A different (component, message) key is not affected...
  logger.log(LogLevel::kInfo, "other", "repeat");
  EXPECT_EQ(sink.snapshot().back().component, "other");

  // ...and errors are never suppressed.
  for (int i = 0; i < 8; ++i) logger.log(LogLevel::kError, "t", "fatal");
  std::size_t errors = 0;
  for (const LogRecord& r : sink.snapshot()) errors += r.message == "fatal";
  EXPECT_EQ(errors, 8u);
}

TEST(Log, RingBufferKeepsLastN) {
  Logger logger{LogLevel::kDebug};
  RingBufferSink sink{3};
  logger.add_sink(&sink);
  logger.set_rate_limit({/*max_burst=*/100, /*every=*/1});
  for (int i = 0; i < 5; ++i)
    logger.log(LogLevel::kInfo, "t", "m" + std::to_string(i));
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.total_written(), 5u);
  EXPECT_EQ(sink.snapshot().front().message, "m2");
  EXPECT_EQ(sink.snapshot().back().message, "m4");
}

TEST(Log, ScopedLoggerStampsComponent) {
  Logger logger{LogLevel::kDebug};
  RingBufferSink sink;
  logger.add_sink(&sink);
  const ScopedLogger slog{"fault", &logger};
  slog.warn("degraded", {{"from", telemetry::Json{"tiled"}}});
  const std::vector<LogRecord> got = sink.snapshot();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].component, "fault");
  EXPECT_EQ(got[0].level, LogLevel::kWarn);
  ASSERT_EQ(got[0].fields.size(), 1u);
  EXPECT_EQ(got[0].fields[0].first, "from");
}

// --- Prometheus exposition ---------------------------------------------------

TEST(Prometheus, RenderedPagePassesItsOwnValidator) {
  std::vector<MetricFamily> families;
  MetricFamily gauge;
  gauge.name = "mog_serve_queue_depth";
  gauge.help = "frames waiting per stream; quotes \" and \\ escape";
  gauge.type = MetricType::kGauge;
  gauge.samples = {{{{"stream", "0"}}, 3.0},
                   {{{"stream", "1"}, {"tier", "tiled\"gpu"}}, 0.0}};
  families.push_back(gauge);

  MetricFamily counter;
  counter.name = "mog_serve_frames_dropped_total";
  counter.type = MetricType::kCounter;
  counter.samples = {{{}, 42.0}};
  families.push_back(counter);

  MetricFamily hist;
  hist.name = "mog_serve_latency_seconds";
  hist.type = MetricType::kHistogram;
  hist.histograms = {
      obs::make_histogram({0.001, 0.002, 0.5}, {{"stream", "0"}})};
  families.push_back(hist);

  const std::string page = obs::render(families);
  EXPECT_EQ(obs::validate_exposition(page), "") << page;
  EXPECT_NE(page.find("# TYPE mog_serve_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(page.find("# TYPE mog_serve_frames_dropped_total counter"),
            std::string::npos);
  EXPECT_NE(page.find("mog_serve_latency_seconds_bucket{stream=\"0\",le="),
            std::string::npos);
  EXPECT_NE(page.find("mog_serve_latency_seconds_count{stream=\"0\"} 3"),
            std::string::npos);
}

TEST(Prometheus, ValidatorRejectsMalformedPages) {
  EXPECT_NE(obs::validate_exposition("bad-name 1\n"), "");
  EXPECT_NE(obs::validate_exposition("# TYPE x gauge\ny 1\n"), "");
  EXPECT_NE(obs::validate_exposition("x{label=\"unterminated} 1\n"), "");
}

TEST(Prometheus, SanitizeMetricName) {
  EXPECT_EQ(obs::sanitize_metric_name("serve.latency_seconds"),
            "serve_latency_seconds");
  EXPECT_EQ(obs::sanitize_metric_name("9lives"), "_9lives");
  EXPECT_EQ(obs::sanitize_metric_name("ok_name:x"), "ok_name:x");
}

TEST(Prometheus, MakeHistogramBucketsAreCumulative) {
  const HistogramSeries h =
      obs::make_histogram({0.5, 1.5, 2.5, 100.0}, {}, {1.0, 2.0, 3.0});
  ASSERT_EQ(h.counts.size(), 4u);  // 3 bounds + the implicit +Inf bucket
  EXPECT_EQ(h.counts[0], 1u);      // <= 1.0
  EXPECT_EQ(h.counts[1], 2u);      // <= 2.0
  EXPECT_EQ(h.counts[2], 3u);      // <= 3.0
  EXPECT_EQ(h.counts[3], 4u);      // +Inf
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 104.5);
}

TEST(Prometheus, CounterRegistryAndTraceHealthFamilies) {
  telemetry::CounterRegistry reg;
  gpusim::KernelStats stats;
  stats.num_warps = 32;
  reg.on_kernel_launch(stats);
  reg.record("serve.latency_seconds", 0.004);

  telemetry::TraceRecorder trace{2};
  trace.instant("a");
  trace.instant("b");
  trace.instant("dropped");  // over capacity

  std::vector<MetricFamily> families;
  obs::append_counter_registry(reg, families);
  obs::append_trace_health(trace, families);
  const std::string page = obs::render(families);
  EXPECT_EQ(obs::validate_exposition(page), "") << page;
  EXPECT_NE(page.find("mog_kernel_launches_total 1"), std::string::npos);
  EXPECT_NE(page.find("mog_serve_latency_seconds"), std::string::npos);
  EXPECT_NE(page.find("mog_trace_dropped_total 1"), std::string::npos);
}

// --- embedded HTTP server ----------------------------------------------------

/// Blocking one-shot HTTP client against 127.0.0.1:`port` (tests only).
std::string http_get(int port, const std::string& target,
                     const std::string& method = "GET") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request =
      method + " " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(Http, ServesHandlersOverARealSocket) {
  HttpServer server;
  server.handle("/ping", [](const HttpRequest& req) {
    HttpResponse resp;
    resp.body = "pong " + req.method;
    return resp;
  });
  server.start(0);  // ephemeral port
  ASSERT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());

  const std::string ok = http_get(server.port(), "/ping");
  EXPECT_NE(ok.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_EQ(body_of(ok), "pong GET");

  // Query strings are stripped before dispatch.
  EXPECT_EQ(body_of(http_get(server.port(), "/ping?x=1")), "pong GET");

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

  const std::string post = http_get(server.port(), "/ping", "POST");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(Http, ConcurrentScrapesAllSucceed) {
  HttpServer server;
  server.handle("/metrics", [](const HttpRequest&) {
    HttpResponse resp;
    resp.content_type = obs::kPrometheusContentType;
    resp.body = "mog_up 1\n";
    return resp;
  });
  server.start(0);
  std::vector<std::thread> clients;
  std::vector<std::string> bodies(4);
  for (std::size_t i = 0; i < bodies.size(); ++i)
    clients.emplace_back([&, i] {
      bodies[i] = body_of(http_get(server.port(), "/metrics"));
    });
  for (std::thread& t : clients) t.join();
  for (const std::string& body : bodies) EXPECT_EQ(body, "mog_up 1\n");
  server.stop();
}

/// Send raw bytes (possibly a partial or malformed request) and read whatever
/// the server answers before closing. With `half_close` the write side is shut
/// down after sending, so the server sees EOF; without it our end stays open,
/// which lets read-timeout behaviour be observed.
std::string http_raw(int port, const std::string& bytes,
                     bool half_close = false) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  if (!bytes.empty())
    EXPECT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  if (half_close) ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(Http, OversizedRequestIsRefusedWith431) {
  HttpServer server;
  server.handle("/ping", [](const HttpRequest&) { return HttpResponse{}; });
  server.set_max_request_bytes(64);
  server.start(0);

  const std::string big = "GET /ping HTTP/1.1\r\nX-Pad: " +
                          std::string(512, 'a') + "\r\n\r\n";
  const std::string refused = http_raw(server.port(), big);
  EXPECT_NE(refused.find("HTTP/1.1 431"), std::string::npos) << refused;

  // One abusive client must not take the endpoint down.
  EXPECT_TRUE(server.running());
  EXPECT_NE(http_get(server.port(), "/ping").find("HTTP/1.1 200"),
            std::string::npos);
  server.stop();
}

TEST(Http, StalledRequestTimesOutWith408AndServerStaysUp) {
  HttpServer server;
  server.handle("/ping", [](const HttpRequest&) { return HttpResponse{}; });
  server.set_read_timeout(0.2);
  server.start(0);

  // A peer that sends half a request line and then goes quiet would park the
  // single serve thread forever without the read deadline.
  const std::string stalled = http_raw(server.port(), "GET /ping HTT");
  EXPECT_NE(stalled.find("HTTP/1.1 408"), std::string::npos) << stalled;

  // A connect-and-close probe (port scan / TCP health check) gets silence,
  // not an error page, and the server keeps serving afterwards.
  EXPECT_EQ(http_raw(server.port(), "", /*half_close=*/true), "");
  EXPECT_TRUE(server.running());
  EXPECT_NE(http_get(server.port(), "/ping").find("HTTP/1.1 200"),
            std::string::npos);
  server.stop();
}

TEST(Http, HardeningKnobsRejectMisuse) {
  HttpServer server;
  EXPECT_THROW(server.set_max_request_bytes(8), Error);  // below floor
  server.start(0);
  EXPECT_THROW(server.set_read_timeout(1.0), Error);       // while running
  EXPECT_THROW(server.set_max_request_bytes(4096), Error);  // while running
  server.stop();
}

// --- frame tickets and flow propagation --------------------------------------

TEST(FrameTicket, MintedUniqueAndScopedPerThread) {
  const std::uint64_t a = obs::mint_frame_ticket();
  const std::uint64_t b = obs::mint_frame_ticket();
  EXPECT_GT(a, 0u);
  EXPECT_NE(a, b);

  EXPECT_EQ(obs::current_frame_ticket(), 0u);
  {
    obs::FrameTicketScope outer{a};
    EXPECT_EQ(obs::current_frame_ticket(), a);
    {
      obs::FrameTicketScope inner{b};
      EXPECT_EQ(obs::current_frame_ticket(), b);
    }
    EXPECT_EQ(obs::current_frame_ticket(), a);

    // Tickets are thread-local: another thread sees none.
    std::uint64_t seen = 99;
    std::thread{[&] { seen = obs::current_frame_ticket(); }}.join();
    EXPECT_EQ(seen, 0u);
  }
  EXPECT_EQ(obs::current_frame_ticket(), 0u);
}

TEST(ServeFlow, FrameJourneyEmitsConnectedFlowEvents) {
  telemetry::TraceRecorder trace;
  telemetry::set_tracer(&trace);
  {
    serve::ServeConfig cfg;
    serve::StreamServer<double> server{cfg};
    serve::StreamServer<double>::GpuConfig gpu;
    gpu.width = 48;
    gpu.height = 36;
    SceneConfig sc;
    sc.width = 48;
    sc.height = 36;
    const SyntheticScene scene{sc};
    const int id = server.open_stream(gpu);
    constexpr int kFrames = 4;
    for (int t = 0; t < kFrames; ++t)
      server.submit(id, scene.frame(t), t / 30.0);
    server.drain();
  }
  telemetry::set_tracer(nullptr);

  // Every frame's journey is an s -> t... -> f chain keyed by its ticket.
  std::vector<std::uint64_t> begins, steps, ends;
  for (const telemetry::TraceEvent& ev : trace.events()) {
    if (ev.cat != "serve.flow") continue;
    EXPECT_EQ(ev.name, "frame");
    EXPECT_GE(ev.tid, telemetry::TraceRecorder::kServeTrackBase);
    EXPECT_GT(ev.flow_id, 0u);
    if (ev.phase == 's') begins.push_back(ev.flow_id);
    if (ev.phase == 't') steps.push_back(ev.flow_id);
    if (ev.phase == 'f') ends.push_back(ev.flow_id);
  }
  EXPECT_EQ(begins.size(), 4u);
  EXPECT_EQ(ends.size(), 4u);
  EXPECT_FALSE(steps.empty());
  // Each completed chain ends with the ticket it began with.
  for (const std::uint64_t ticket : ends)
    EXPECT_NE(std::find(begins.begin(), begins.end(), ticket), begins.end());
}

TEST(Trace, TruncationIsSurfacedInTheExport) {
  telemetry::TraceRecorder trace{2};
  trace.instant("kept1");
  trace.instant("kept2");
  trace.instant("lost1");
  trace.instant("lost2");
  EXPECT_EQ(trace.dropped(), 2u);

  const telemetry::Json doc = trace.to_json();
  const telemetry::Json::Array& events =
      doc.find("traceEvents")->as_array();
  bool truncated_seen = false, counter_seen = false;
  for (const telemetry::Json& ev : events) {
    const telemetry::Json* name = ev.find("name");
    if (name == nullptr) continue;
    if (name->as_string() == "trace.truncated") {
      truncated_seen = true;
      const telemetry::Json* args = ev.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_DOUBLE_EQ(args->find("dropped_events")->as_number(), 2.0);
      EXPECT_DOUBLE_EQ(args->find("capacity")->as_number(), 2.0);
    }
    if (name->as_string() == "trace.dropped") counter_seen = true;
  }
  EXPECT_TRUE(truncated_seen);
  EXPECT_TRUE(counter_seen);

  // An untruncated trace carries no such marker.
  telemetry::TraceRecorder roomy;
  roomy.instant("only");
  const telemetry::Json clean = roomy.to_json();
  for (const telemetry::Json& ev : clean.find("traceEvents")->as_array())
    EXPECT_NE(ev.find("name")->as_string(), "trace.truncated");
}

// --- end-to-end: scraping a running StreamServer -----------------------------

TEST(ServerObs, MetricsHealthzStatuszOverHttp) {
  telemetry::CounterRegistry reg;
  telemetry::set_counters(&reg);

  serve::ServeConfig cfg;
  cfg.obs_port = 0;  // ephemeral loopback port
  serve::StreamServer<double> server{cfg};
  ASSERT_GT(server.obs_port(), 0);

  serve::StreamServer<double>::GpuConfig gpu;
  gpu.width = 48;
  gpu.height = 36;
  SceneConfig sc;
  sc.width = 48;
  sc.height = 36;
  const SyntheticScene scene{sc};
  const int id = server.open_stream(gpu);
  for (int t = 0; t < 6; ++t) server.submit(id, scene.frame(t), t / 30.0);
  server.drain();

  // /metrics: Prometheus-parseable, right content type, live counters.
  const std::string metrics = http_get(server.obs_port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(metrics.find(obs::kPrometheusContentType), std::string::npos);
  const std::string page = body_of(metrics);
  EXPECT_EQ(obs::validate_exposition(page), "") << page;
  EXPECT_NE(
      page.find("mog_serve_frames_submitted_total{stream=\"0\"} 6"),
      std::string::npos);
  EXPECT_NE(page.find("mog_serve_masks_delivered_total{stream=\"0\"} 6"),
            std::string::npos);
  EXPECT_NE(page.find("mog_serve_latency_seconds_bucket"), std::string::npos);
  EXPECT_NE(page.find("mog_timeline_engine_busy_seconds"), std::string::npos);
  EXPECT_NE(page.find("mog_kernel_launches_total"), std::string::npos);

  // /healthz: all streams on a GPU tier, model validates -> 200.
  const std::string health = http_get(server.obs_port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(body_of(health).find("stream 0: tier="), std::string::npos);

  // /statusz: human-readable digest.
  const std::string status = http_get(server.obs_port(), "/statusz");
  EXPECT_NE(status.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_FALSE(body_of(status).empty());

  telemetry::set_counters(nullptr);
}

TEST(ServerObs, HealthzFlipsTo503OnForcedDegradation) {
  serve::ServeConfig cfg;
  cfg.obs_port = 0;
  cfg.resilience.retry.max_attempts = 2;
  cfg.resilience.degrade_after_failures = 1;
  serve::StreamServer<double> server{cfg};

  auto injector = std::make_shared<fault::FaultInjector>([] {
    fault::FaultConfig fc;
    fc.launch_fault_prob = 1.0;  // every launch dies -> ladder to CPU tier
    return fc;
  }());
  serve::StreamServer<double>::GpuConfig gpu;
  gpu.width = 48;
  gpu.height = 36;
  const int id = server.open_stream(gpu, injector);

  EXPECT_NE(http_get(server.obs_port(), "/healthz").find("HTTP/1.1 200"),
            std::string::npos);

  SceneConfig sc;
  sc.width = 48;
  sc.height = 36;
  const SyntheticScene scene{sc};
  for (int t = 0; t < 4; ++t) server.submit(id, scene.frame(t));
  server.drain();
  ASSERT_EQ(server.stream_stats(id).tier, fault::ExecutionTier::kCpuSerial);

  const std::string sick = http_get(server.obs_port(), "/healthz");
  EXPECT_NE(sick.find("HTTP/1.1 503"), std::string::npos);
  EXPECT_NE(body_of(sick).find("cpu-serial"), std::string::npos);

  // The degraded tier is also visible on /metrics as a gauge.
  const std::string page = body_of(http_get(server.obs_port(), "/metrics"));
  EXPECT_EQ(obs::validate_exposition(page), "") << page;
  EXPECT_NE(page.find("mog_serve_stream_tier{stream=\"0\"} 2"),
            std::string::npos);
}

TEST(ServerObs, ObsPortDisabledByDefault) {
  serve::ServeConfig cfg;
  serve::StreamServer<double> server{cfg};
  EXPECT_EQ(server.obs_port(), -1);
  // The in-process bodies still work without a socket.
  std::string detail;
  EXPECT_TRUE(server.healthz(detail));
  EXPECT_EQ(obs::validate_exposition(server.metrics_text()), "");
  EXPECT_FALSE(server.statusz().empty());
}

}  // namespace
}  // namespace mog
