// Tests for mask post-processing: morphology identities and properties,
// connected components, and the foreground-validation pipeline.
#include <gtest/gtest.h>

#include "mog/postproc/validation.hpp"
#include "mog/common/rng.hpp"

namespace mog {
namespace {

FrameU8 with_rect(int w, int h, int x0, int y0, int x1, int y1) {
  FrameU8 m(w, h, 0);
  for (int y = y0; y <= y1; ++y)
    for (int x = x0; x <= x1; ++x) m.at(x, y) = 255;
  return m;
}

std::size_t count_fg(const FrameU8& m) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < m.size(); ++i) n += (m[i] != 0);
  return n;
}

// ---------------------------------------------------------------------------
// Morphology
// ---------------------------------------------------------------------------

TEST(Morphology, ErodeShrinksRectByRadius) {
  const FrameU8 m = with_rect(32, 32, 8, 8, 19, 19);  // 12x12
  const FrameU8 e = erode(m, 1);
  EXPECT_EQ(count_fg(e), 10u * 10u);
  EXPECT_EQ(e.at(9, 9), 255);
  EXPECT_EQ(e.at(8, 8), 0);
}

TEST(Morphology, DilateGrowsRectByRadius) {
  const FrameU8 m = with_rect(32, 32, 8, 8, 19, 19);
  const FrameU8 d = dilate(m, 2);
  EXPECT_EQ(count_fg(d), 16u * 16u);
  EXPECT_EQ(d.at(6, 6), 255);
  EXPECT_EQ(d.at(5, 5), 0);
}

TEST(Morphology, ErodeDilateDuality) {
  // erode(mask) == ~dilate(~mask) on the interior.
  Rng rng{3};
  FrameU8 m(24, 24, 0);
  for (std::size_t i = 0; i < m.size(); ++i)
    m[i] = rng.chance(0.4) ? 255 : 0;
  FrameU8 inv(24, 24);
  for (std::size_t i = 0; i < m.size(); ++i) inv[i] = m[i] ? 0 : 255;
  const FrameU8 a = erode(m, 1);
  const FrameU8 b = dilate(inv, 1);
  for (int y = 1; y < 23; ++y)
    for (int x = 1; x < 23; ++x)
      ASSERT_EQ(a.at(x, y) != 0, b.at(x, y) == 0) << x << "," << y;
}

TEST(Morphology, OpeningRemovesSpecksKeepsBlocks) {
  FrameU8 m = with_rect(32, 32, 10, 10, 20, 20);
  m.at(2, 2) = 255;  // isolated speck
  const FrameU8 o = morph_open(m, 1);
  EXPECT_EQ(o.at(2, 2), 0);
  EXPECT_EQ(o.at(15, 15), 255);
  // Opening restores the block's full extent (erode then dilate).
  EXPECT_EQ(count_fg(o), 11u * 11u);
}

TEST(Morphology, ClosingFillsHoles) {
  FrameU8 m = with_rect(32, 32, 10, 10, 20, 20);
  m.at(15, 15) = 0;  // pinhole
  const FrameU8 c = morph_close(m, 1);
  EXPECT_EQ(c.at(15, 15), 255);
  EXPECT_EQ(count_fg(c), 11u * 11u);
}

TEST(Morphology, OpenAndCloseAreIdempotent) {
  Rng rng{9};
  FrameU8 m(40, 30, 0);
  for (std::size_t i = 0; i < m.size(); ++i)
    m[i] = rng.chance(0.35) ? 255 : 0;
  const FrameU8 o1 = morph_open(m, 1);
  EXPECT_EQ(morph_open(o1, 1), o1);
  const FrameU8 c1 = morph_close(m, 1);
  EXPECT_EQ(morph_close(c1, 1), c1);
}

TEST(Morphology, MonotoneInclusionProperties) {
  // open(m) ⊆ m ⊆ close(m)
  Rng rng{11};
  FrameU8 m(30, 30, 0);
  for (std::size_t i = 0; i < m.size(); ++i)
    m[i] = rng.chance(0.3) ? 255 : 0;
  const FrameU8 o = morph_open(m, 1);
  const FrameU8 c = morph_close(m, 1);
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (o[i]) ASSERT_NE(m[i], 0);
    if (m[i]) ASSERT_NE(c[i], 0);
  }
}

TEST(Morphology, MedianDespecklesBothPolarities) {
  FrameU8 m = with_rect(32, 32, 10, 10, 20, 20);
  m.at(2, 2) = 255;  // speck
  m.at(15, 15) = 0;  // pinhole
  const FrameU8 f = median3(m);
  EXPECT_EQ(f.at(2, 2), 0);
  EXPECT_EQ(f.at(15, 15), 255);
}

TEST(Morphology, RejectsBadRadius) {
  const FrameU8 m(16, 16, 0);
  EXPECT_THROW(erode(m, 0), Error);
  EXPECT_THROW(dilate(m, 99), Error);
}

// ---------------------------------------------------------------------------
// Border semantics — pinned, because the fused device kernel must reproduce
// them exactly (and the minmax_filter comments used to contradict the code).
// ---------------------------------------------------------------------------

TEST(MorphologyBorder, ErodePadsOutOfBoundsWithForeground) {
  // A foreground pixel on the border survives erosion when every IN-BOUNDS
  // neighbor is foreground: out-of-bounds cells act as foreground (identity
  // of min), so the frame edge alone cannot erode an object.
  FrameU8 m = with_rect(8, 8, 0, 0, 2, 2);  // 3x3 block in the corner
  const FrameU8 e = erode(m, 1);
  EXPECT_EQ(e.at(0, 0), 255);  // corner: all 3 in-bounds neighbors are fg
  EXPECT_EQ(e.at(1, 0), 255);  // edge: all 5 in-bounds neighbors are fg
  EXPECT_EQ(e.at(1, 1), 255);  // interior of the block
  EXPECT_EQ(e.at(2, 2), 0);    // interior corner: has bg neighbors
}

TEST(MorphologyBorder, DilatePadsOutOfBoundsWithBackground) {
  // Dilation treats out-of-bounds as background (identity of max): an empty
  // mask stays empty, and a border pixel only lights up from real neighbors.
  const FrameU8 empty(8, 8, 0);
  EXPECT_EQ(count_fg(dilate(empty, 1)), 0u);
  FrameU8 m(8, 8, 0);
  m.at(0, 0) = 255;
  const FrameU8 d = dilate(m, 1);
  EXPECT_EQ(count_fg(d), 4u);  // (0,0),(1,0),(0,1),(1,1) only
}

TEST(MorphologyBorder, ClosingStaysExtensiveAtTheBorder) {
  // The reason erosion pads with foreground: close(m) ⊇ m must hold at the
  // frame edge too. A block touching the border must survive closing intact.
  const FrameU8 m = with_rect(8, 8, 0, 0, 3, 3);
  const FrameU8 c = morph_close(m, 1);
  for (std::size_t i = 0; i < m.size(); ++i)
    if (m[i]) ASSERT_NE(c[i], 0) << "closing lost a border pixel";
}

TEST(MorphologyBorder, Median3ShrinksWindowAndBreaksTiesToBackground) {
  // Border windows shrink (no padding). The vote is a STRICT majority
  // (2*fg > total), so ties — possible only in the even-sized 2x2 corner
  // and never in the 6-cell edge or 9-cell interior windows — clear to
  // background.
  FrameU8 m(8, 8, 0);
  // Corner window of (0,0) is {(0,0),(1,0),(0,1),(1,1)}: 2 fg of 4 = tie.
  m.at(0, 0) = 255;
  m.at(1, 1) = 255;
  EXPECT_EQ(median3(m).at(0, 0), 0);
  // 3 fg of 4 is a strict majority.
  m.at(1, 0) = 255;
  EXPECT_EQ(median3(m).at(0, 0), 255);
  // Edge window of (3,0) has 6 cells; 4 fg of 6 is a strict majority.
  FrameU8 e(8, 8, 0);
  e.at(2, 0) = e.at(3, 0) = e.at(4, 0) = e.at(3, 1) = 255;
  EXPECT_EQ(median3(e).at(3, 0), 255);
  // 3 fg of 6 is a tie: clears.
  e.at(3, 1) = 0;
  EXPECT_EQ(median3(e).at(3, 0), 0);
}

// ---------------------------------------------------------------------------
// Connected components
// ---------------------------------------------------------------------------

TEST(Components, LabelsDistinctBlobs) {
  FrameU8 m(32, 16, 0);
  for (int x = 2; x <= 5; ++x)
    for (int y = 2; y <= 5; ++y) m.at(x, y) = 255;
  for (int x = 20; x <= 27; ++x)
    for (int y = 6; y <= 9; ++y) m.at(x, y) = 255;
  const LabeledComponents lc = label_components(m);
  ASSERT_EQ(lc.blobs.size(), 2u);
  EXPECT_NE(lc.labels.at(3, 3), lc.labels.at(22, 7));
  EXPECT_EQ(lc.labels.at(0, 0), -1);
}

TEST(Components, BlobGeometry) {
  FrameU8 m(32, 16, 0);
  for (int x = 4; x <= 9; ++x)
    for (int y = 3; y <= 6; ++y) m.at(x, y) = 255;
  const auto blobs = find_blobs(m);
  ASSERT_EQ(blobs.size(), 1u);
  const Blob& b = blobs[0];
  EXPECT_EQ(b.width(), 6);
  EXPECT_EQ(b.height(), 4);
  EXPECT_EQ(b.area, 24);
  EXPECT_DOUBLE_EQ(b.centroid_x, 6.5);
  EXPECT_DOUBLE_EQ(b.centroid_y, 4.5);
  EXPECT_DOUBLE_EQ(b.fill_ratio(), 1.0);
}

TEST(Components, DiagonalPixelsAreSeparateUnder4Connectivity) {
  FrameU8 m(8, 8, 0);
  m.at(2, 2) = 255;
  m.at(3, 3) = 255;
  EXPECT_EQ(label_components(m).blobs.size(), 2u);
}

TEST(Components, FindBlobsFiltersAndSorts) {
  FrameU8 m(32, 32, 0);
  m.at(1, 1) = 255;  // area 1
  for (int x = 10; x <= 13; ++x)
    for (int y = 10; y <= 13; ++y) m.at(x, y) = 255;  // area 16
  for (int x = 20; x <= 29; ++x)
    for (int y = 20; y <= 25; ++y) m.at(x, y) = 255;  // area 60
  const auto blobs = find_blobs(m, 2);
  ASSERT_EQ(blobs.size(), 2u);
  EXPECT_EQ(blobs[0].area, 60);
  EXPECT_EQ(blobs[1].area, 16);
}

TEST(Components, BlobsToMaskRoundTrip) {
  FrameU8 m(16, 16, 0);
  for (int x = 4; x <= 8; ++x) m.at(x, 4) = 255;
  m.at(12, 12) = 255;
  const LabeledComponents lc = label_components(m);
  const FrameU8 filtered = blobs_to_mask(lc, 2);
  EXPECT_EQ(filtered.at(5, 4), 255);
  EXPECT_EQ(filtered.at(12, 12), 0);
}

TEST(Components, EmptyMask) {
  const FrameU8 m(16, 16, 0);
  EXPECT_TRUE(label_components(m).blobs.empty());
  EXPECT_TRUE(find_blobs(m).empty());
}

TEST(Components, FullMaskIsOneBlob) {
  const FrameU8 m(16, 16, 255);
  const auto blobs = find_blobs(m);
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_EQ(blobs[0].area, 256);
}

// ---------------------------------------------------------------------------
// Validation pipeline
// ---------------------------------------------------------------------------

TEST(Validation, CleansNoisyObjectMask) {
  Rng rng{21};
  FrameU8 m = with_rect(64, 48, 20, 12, 43, 35);  // 24x24 object
  // Punch pinholes into the object and sprinkle specks outside.
  for (int i = 0; i < 25; ++i) {
    m.at(21 + static_cast<int>(rng.uniform_u32(22)),
         13 + static_cast<int>(rng.uniform_u32(22))) = 0;
    m.at(static_cast<int>(rng.uniform_u32(18)),
         static_cast<int>(rng.uniform_u32(48))) = 255;
  }
  ValidationConfig cfg;
  cfg.min_blob_area = 30;
  const FrameU8 clean = validate_foreground(m, cfg);
  const auto blobs = find_blobs(clean);
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_NEAR(blobs[0].area, 24 * 24, 60);
  EXPECT_GT(blobs[0].fill_ratio(), 0.95);
}

TEST(Validation, FillRatioDropsWireframes) {
  // A 1-pixel-wide L-shape covers a big bounding box with few pixels.
  FrameU8 m(32, 32, 0);
  for (int i = 4; i < 28; ++i) m.at(i, 4) = 255;
  for (int i = 4; i < 28; ++i) m.at(4, i) = 255;
  ValidationConfig cfg;
  cfg.despeckle = false;
  cfg.close_radius = 0;
  cfg.min_blob_area = 0;
  cfg.min_fill_ratio = 0.5;
  const FrameU8 clean = validate_foreground(m, cfg);
  EXPECT_EQ(count_fg(clean), 0u);
}

TEST(Validation, DefaultConfigPreservesSolidObjects) {
  const FrameU8 m = with_rect(48, 48, 10, 10, 30, 30);
  const FrameU8 clean = validate_foreground(m);
  // The median pass may shave the four convex corners; nothing else moves.
  EXPECT_GE(count_fg(clean), count_fg(m) - 4);
  EXPECT_LE(count_fg(clean), count_fg(m));
  EXPECT_EQ(clean.at(20, 20), 255);
}

TEST(Validation, AllStagesDisabledReturnsInputUnchanged) {
  Rng rng{31};
  FrameU8 m(20, 14, 0);
  for (std::size_t i = 0; i < m.size(); ++i)
    m[i] = rng.chance(0.5) ? 255 : 0;
  ValidationConfig cfg;
  cfg.despeckle = false;
  cfg.close_radius = 0;
  cfg.min_blob_area = 0;
  EXPECT_FALSE(cfg.active());
  EXPECT_EQ(validate_foreground(m, cfg), m);
}

TEST(Validation, FusedConfigRunsDespeckleAndClose) {
  const ValidationConfig cfg = fused_validation_config();
  EXPECT_TRUE(cfg.active());
  EXPECT_TRUE(cfg.fusable());
  FrameU8 m = with_rect(32, 32, 10, 10, 20, 20);
  m.at(2, 2) = 255;  // speck: removed by the median
  m.at(15, 15) = 0;  // pinhole: filled by the close
  const FrameU8 clean = validate_foreground(m, cfg);
  EXPECT_EQ(clean.at(2, 2), 0);
  EXPECT_EQ(clean.at(15, 15), 255);
}

TEST(Validation, RejectsBadConfig) {
  ValidationConfig cfg;
  cfg.min_fill_ratio = 1.5;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = {};
  cfg.close_radius = -1;
  EXPECT_THROW(cfg.validate(), Error);
}

}  // namespace
}  // namespace mog
