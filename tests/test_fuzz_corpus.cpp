// Corpus-regression replay: every committed fuzz seed must keep its
// contract — ok_* parses, bad_* throws the typed error — and none may
// crash, leak, or trip UB. This test carries the `fuzz-corpus` ctest label
// so CI replays the corpus inside the ASan/UBSan job even when the
// libFuzzer lane (clang-only) is unavailable; new crash inputs found by
// fuzzing get minimized, named bad_*, and dropped into tests/fuzz/corpus/
// to become permanent regressions here.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mog/ingest/ingest_error.hpp"
#include "mog/ingest/jpeg.hpp"
#include "mog/ingest/mjpeg.hpp"
#include "mog/ingest/y4m.hpp"
#include "mog/video/pnm_io.hpp"

namespace mog {
namespace {

namespace fs = std::filesystem;

fs::path corpus_dir(const char* format) {
  return fs::path{MOG_FUZZ_CORPUS_DIR} / format;
}

std::vector<std::uint8_t> slurp(const fs::path& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

// Replay one corpus directory through `parse`. ok_* must succeed, bad_*
// must throw exactly the expected error type (never any other exception,
// never a crash). Returns the number of seeds replayed.
template <typename ExpectedError, typename ParseFn>
int replay(const char* format, ParseFn parse) {
  int seeds = 0;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(corpus_dir(format))) {
    const std::string name = entry.path().filename().string();
    const std::vector<std::uint8_t> bytes = slurp(entry.path());
    ++seeds;
    if (name.rfind("ok_", 0) == 0) {
      EXPECT_NO_THROW(parse(bytes, name)) << name;
    } else if (name.rfind("bad_", 0) == 0) {
      EXPECT_THROW(parse(bytes, name), ExpectedError) << name;
    } else {
      ADD_FAILURE() << "corpus file " << name
                    << " violates the ok_*/bad_* naming convention";
    }
  }
  return seeds;
}

TEST(FuzzCorpus, Y4m) {
  const int n = replay<ingest::IngestError>(
      "y4m", [](const std::vector<std::uint8_t>& bytes, const std::string&) {
        ingest::decode_y4m(bytes);
      });
  EXPECT_GE(n, 10) << "y4m seed corpus went missing";
}

TEST(FuzzCorpus, Jpeg) {
  const int n = replay<ingest::IngestError>(
      "jpeg", [](const std::vector<std::uint8_t>& bytes, const std::string&) {
        ingest::decode_jpeg_gray(bytes);
      });
  EXPECT_GE(n, 10) << "jpeg seed corpus went missing";
}

TEST(FuzzCorpus, JpegSeedsAlsoSplitAsMjpeg) {
  // Every standalone JPEG seed doubles as a one-part MJPEG stream; the
  // splitter must agree with the direct decoder about validity.
  for (const fs::directory_entry& entry :
       fs::directory_iterator(corpus_dir("jpeg"))) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ok_", 0) != 0) continue;
    ingest::MjpegReader reader{
        std::make_unique<ingest::MemorySource>(slurp(entry.path()))};
    FrameU8 frame;
    EXPECT_TRUE(reader.next(frame)) << name;
    EXPECT_FALSE(reader.next(frame)) << name;
  }
}

TEST(FuzzCorpus, Pnm) {
  const int n = replay<Error>(
      "pnm",
      [](const std::vector<std::uint8_t>& bytes, const std::string& name) {
        const std::string s{bytes.begin(), bytes.end()};
        std::istringstream in{s};
        read_pgm(in, name);
      });
  EXPECT_GE(n, 10) << "pnm seed corpus went missing";
}

TEST(FuzzCorpus, PnmMaxvalSeedRescalesToFullRange) {
  // ok_maxval15.pgm holds samples 0,5,10,15 at maxval 15: the reader must
  // stretch them to 0,85,170,255, not hand a near-black frame downstream.
  const std::vector<std::uint8_t> bytes =
      slurp(corpus_dir("pnm") / "ok_maxval15.pgm");
  const std::string s{bytes.begin(), bytes.end()};
  std::istringstream in{s};
  const FrameU8 img = read_pgm(in, "ok_maxval15.pgm");
  ASSERT_EQ(img.size(), 4u);
  EXPECT_EQ(img[0], 0);
  EXPECT_EQ(img[1], 85);
  EXPECT_EQ(img[2], 170);
  EXPECT_EQ(img[3], 255);
}

}  // namespace
}  // namespace mog
