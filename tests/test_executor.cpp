// Tests for the multi-threaded block executor: the pool itself (every block
// runs exactly once, exceptions propagate, the pool survives failures), the
// bit-exact determinism guarantee (identical masks, KernelStats, and modeled
// timing at 1, 2, and 8 host threads), fault-hook ordering, and the
// exec_env() RAII guard that keeps a throwing kernel from leaving a dangling
// thread-local behind.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "mog/gpusim/block_executor.hpp"
#include "mog/gpusim/kernel_launch.hpp"
#include "mog/pipeline/gpu_pipeline.hpp"
#include "mog/video/scene.hpp"

namespace mog {
namespace {

using gpusim::Addr;
using gpusim::BlockCtx;
using gpusim::Device;
using gpusim::DeviceSpec;
using gpusim::KernelStats;
using gpusim::LaunchConfig;
using gpusim::Vec;
using gpusim::WarpCtx;

constexpr int kW = 64, kH = 48;

/// Every metric visit_metrics exposes, as an ordered name/value list — the
/// determinism tests demand exact equality of the whole set.
std::vector<std::pair<std::string, double>> metric_vector(
    const KernelStats& s) {
  std::vector<std::pair<std::string, double>> v;
  gpusim::visit_metrics(s, [&](const char* name, double value, bool) {
    v.emplace_back(name, value);
  });
  return v;
}

// ---------------------------------------------------------------------------
// BlockExecutor pool mechanics
// ---------------------------------------------------------------------------

TEST(BlockExecutor, RunsEveryBlockExactlyOnceAndPoolIsReusable) {
  gpusim::BlockExecutor pool{8};
  EXPECT_EQ(pool.num_threads(), 8);
  constexpr std::int64_t kBlocks = 1000;
  for (int run = 0; run < 3; ++run) {
    std::vector<std::atomic<int>> hits(kBlocks);
    pool.run(kBlocks, [&](std::int64_t block, int worker) {
      ASSERT_GE(worker, 0);
      ASSERT_LT(worker, 8);
      hits[static_cast<std::size_t>(block)].fetch_add(
          1, std::memory_order_relaxed);
    });
    for (std::int64_t b = 0; b < kBlocks; ++b)
      ASSERT_EQ(hits[static_cast<std::size_t>(b)].load(), 1)
          << "block " << b << " in run " << run;
  }
}

TEST(BlockExecutor, RethrowsLowestFailingBlockAndStaysUsable) {
  gpusim::BlockExecutor pool{4};
  // Blocks are claimed in increasing order, so block 3 — the lowest thrower —
  // is always attempted before any later thrower can short-circuit the run.
  try {
    pool.run(100, [](std::int64_t block, int) {
      if (block % 10 == 3) throw Error{"block " + std::to_string(block)};
    });
    FAIL() << "expected the pool to rethrow";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "block 3");
  }
  std::atomic<std::int64_t> done{0};
  pool.run(50, [&](std::int64_t, int) {
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 50);
}

TEST(BlockExecutor, SingleThreadPoolRunsOnCallingThread) {
  gpusim::BlockExecutor pool{1};
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<std::int64_t> order;
  pool.run(8, [&](std::int64_t block, int worker) {
    EXPECT_EQ(worker, 0);
    order.push_back(block);
  });
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

// ---------------------------------------------------------------------------
// Thread-count resolution
// ---------------------------------------------------------------------------

TEST(ExecutorConfig, ExplicitCountWinsOverEnvironment) {
  ASSERT_EQ(setenv("MOG_EXECUTOR_THREADS", "3", 1), 0);
  EXPECT_EQ(gpusim::resolved_executor_threads(0), 3);   // env fills the default
  EXPECT_EQ(gpusim::resolved_executor_threads(2), 2);   // explicit wins
  EXPECT_EQ(gpusim::resolved_executor_threads(999), 64);  // clamped
  ASSERT_EQ(unsetenv("MOG_EXECUTOR_THREADS"), 0);
  EXPECT_GE(gpusim::resolved_executor_threads(0), 1);  // hardware default
  DeviceSpec spec;
  spec.executor_threads = 5;
  EXPECT_EQ(Device{spec}.executor_threads(), 5);
}

// ---------------------------------------------------------------------------
// Bit-exact determinism across thread counts
// ---------------------------------------------------------------------------

/// A deliberately gnarly raw-device workload: a partial final block, partial
/// warps, divergent branches, shared-memory traffic, and strided global
/// stores (multiple DRAM pages). Returns (stats, device buffer contents).
std::pair<KernelStats, std::vector<double>> raw_device_workload(int threads) {
  DeviceSpec spec;
  spec.executor_threads = threads;
  Device dev{spec};
  constexpr std::int64_t kN = 128 * 37 + 48;  // 38 blocks, ragged tail
  auto buf = dev.memory().alloc<double>(kN);
  for (std::int64_t i = 0; i < kN; ++i)
    buf.data[i] = static_cast<double>(i % 101);

  LaunchConfig cfg;
  cfg.num_threads = kN;
  cfg.threads_per_block = 128;
  const KernelStats s = dev.launch(cfg, [&](BlockCtx& blk) {
    auto sh = blk.shared_alloc<double>(128);
    blk.parallel([&](WarpCtx& w) {
      const Vec<Addr> gid = w.global_ids();
      Vec<double> x = w.load<double>(buf, gid);
      w.shared_store(sh, Vec<Addr>::iota(0), x);
      x = x + w.shared_load(sh, Vec<Addr>::iota(0));
      w.if_then(vlt(Vec<std::int32_t>::iota(0), 11),
                [&] { w.store(buf, gid, x * Vec<double>(3.0)); });
    });
  });
  return {s, std::vector<double>(buf.data, buf.data + kN)};
}

TEST(ExecutorDeterminism, RawDeviceLaunchBitIdenticalAcrossThreadCounts) {
  const auto [s1, out1] = raw_device_workload(1);
  ASSERT_GT(s1.dram_page_switches, 0u);  // the replay path is exercised
  for (const int threads : {2, 8}) {
    const auto [st, outt] = raw_device_workload(threads);
    EXPECT_EQ(metric_vector(s1), metric_vector(st)) << threads << " threads";
    EXPECT_EQ(out1, outt) << threads << " threads";
  }
}

/// Run the full pipeline over a synthetic scene and collect every mask plus
/// the summary metrics the benches report.
struct PipelineRun {
  std::vector<FrameU8> masks;
  std::vector<std::pair<std::string, double>> per_frame_metrics;
  double modeled_seconds = 0;
  double occupancy = 0;
};

PipelineRun run_pipeline(int threads, bool tiled) {
  SceneConfig sc;
  sc.width = kW;
  sc.height = kH;
  const SyntheticScene scene{sc};

  typename GpuMogPipeline<double>::Config cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.executor_threads = threads;
  cfg.level = kernels::OptLevel::kF;
  if (tiled) {
    cfg.tiled = true;
    cfg.tiled_config.frame_group = 4;
    cfg.tiled_config.tile_pixels = 64;
  }
  GpuMogPipeline<double> pipe{cfg};

  PipelineRun run;
  FrameU8 fg;
  for (int t = 0; t < 8; ++t) {
    if (pipe.process(scene.frame(t), fg))
      for (const FrameU8& m : pipe.last_group_masks()) run.masks.push_back(m);
  }
  run.per_frame_metrics = metric_vector(pipe.per_frame_stats());
  run.modeled_seconds = pipe.modeled_seconds();
  run.occupancy = pipe.occupancy().achieved;
  return run;
}

TEST(ExecutorDeterminism, PipelineBitIdenticalAcrossThreadCounts) {
  for (const bool tiled : {false, true}) {
    const PipelineRun serial = run_pipeline(1, tiled);
    ASSERT_EQ(serial.masks.size(), 8u);
    for (const int threads : {2, 8}) {
      const PipelineRun par = run_pipeline(threads, tiled);
      const std::string label = (tiled ? "tiled, " : "level F, ") +
                                std::to_string(threads) + " threads";
      ASSERT_EQ(par.masks.size(), serial.masks.size()) << label;
      for (std::size_t i = 0; i < serial.masks.size(); ++i)
        EXPECT_TRUE(par.masks[i] == serial.masks[i])
            << label << ", mask " << i;
      EXPECT_EQ(par.per_frame_metrics, serial.per_frame_metrics) << label;
      EXPECT_EQ(par.modeled_seconds, serial.modeled_seconds) << label;
      EXPECT_EQ(par.occupancy, serial.occupancy) << label;
    }
  }
}

// ---------------------------------------------------------------------------
// Failure paths
// ---------------------------------------------------------------------------

TEST(ExecutorFaults, ExecEnvClearedWhenKernelThrowsMidWarp) {
  DeviceSpec spec;
  spec.executor_threads = 1;
  Device dev{spec};
  LaunchConfig cfg;
  cfg.num_threads = 32;
  cfg.threads_per_block = 32;
  EXPECT_THROW(dev.launch(cfg,
                          [&](BlockCtx& blk) {
                            blk.parallel([&](WarpCtx&) {
                              throw Error{"mid-warp fault"};
                            });
                          }),
               Error);
  // Regression: the launch used to leave the thread-local execution
  // environment pointing at a dead stack frame, so the next launch's
  // bookkeeping scribbled through it.
  EXPECT_EQ(gpusim::exec_env(), nullptr);

  auto benign = [&] {
    return dev.launch(cfg, [&](BlockCtx& blk) {
      blk.parallel([&](WarpCtx& w) { (void)w.active_count(); });
    });
  };
  const KernelStats after = benign();
  const KernelStats fresh = Device{spec}.launch(cfg, [&](BlockCtx& blk) {
    blk.parallel([&](WarpCtx& w) { (void)w.active_count(); });
  });
  EXPECT_EQ(metric_vector(after), metric_vector(fresh));
}

TEST(ExecutorFaults, MidKernelThrowPropagatesFromWorkerThreads) {
  DeviceSpec spec;
  spec.executor_threads = 8;
  Device dev{spec};
  LaunchConfig cfg;
  cfg.num_threads = 32 * 128;
  cfg.threads_per_block = 128;
  try {
    dev.launch(cfg, [&](BlockCtx& blk) {
      blk.parallel([&](WarpCtx&) {
        MOG_CHECK(blk.block_id() != 5, "injected block failure");
      });
    });
    FAIL() << "expected the worker's MOG_CHECK to propagate";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("injected block failure"),
              std::string::npos);
  }
  EXPECT_EQ(gpusim::exec_env(), nullptr);
  // The device (and its persistent pool) stays usable.
  const KernelStats s = dev.launch(cfg, [&](BlockCtx& blk) {
    blk.parallel([&](WarpCtx& w) { (void)w.active_count(); });
  });
  EXPECT_EQ(s.num_blocks, 32u);
  EXPECT_EQ(s.num_warps, 32u * 4u);
}

struct LaunchRefusingHook final : gpusim::FaultHook {
  void before_transfer(gpusim::TransferDir, std::uint64_t) override {}
  void after_transfer(gpusim::TransferDir, void*, std::size_t) override {}
  void before_launch() override { throw gpusim::LaunchError{"refused"}; }
};

TEST(ExecutorFaults, BeforeLaunchHookFiresBeforeAnyBlock) {
  DeviceSpec spec;
  spec.executor_threads = 8;
  Device dev{spec};
  LaunchRefusingHook hook;
  dev.set_fault_hook(&hook);
  std::atomic<int> blocks_run{0};
  LaunchConfig cfg;
  cfg.num_threads = 16 * 128;
  cfg.threads_per_block = 128;
  EXPECT_THROW(dev.launch(cfg,
                          [&](BlockCtx&) {
                            blocks_run.fetch_add(1,
                                                 std::memory_order_relaxed);
                          }),
               gpusim::LaunchError);
  EXPECT_EQ(blocks_run.load(), 0);  // device state untouched, CUDA-style
}

}  // namespace
}  // namespace mog
