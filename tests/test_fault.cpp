// Tests for the fault-injection layer: deterministic replay, scheduled
// faults, frame-level fault kinds, the device fault hooks, model health
// validation, and the CRC-protected model snapshot format.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "mog/common/crc32.hpp"
#include "mog/cpu/model_io.hpp"
#include "mog/cpu/serial_mog.hpp"
#include "mog/fault/fault_injector.hpp"
#include "mog/fault/model_health.hpp"
#include "mog/gpusim/kernel_launch.hpp"
#include "mog/pipeline/gpu_pipeline.hpp"
#include "mog/video/scene.hpp"

namespace mog {
namespace {

using fault::FaultConfig;
using fault::FaultInjector;
using fault::FaultSite;
using fault::FrameFault;

constexpr int kW = 32, kH = 24;

FrameU8 test_frame(int t) {
  SceneConfig c;
  c.width = kW;
  c.height = kH;
  return SyntheticScene{c}.frame(t);
}

// Exercise every fault site of an injector the same way twice and return
// the log — used to assert bit-identical replay.
fault::InjectionLog drive_injector(const FaultConfig& cfg) {
  FaultInjector inj{cfg};
  std::vector<std::uint8_t> payload(64, 0x5a);
  std::vector<double> model(128, 0.5);
  for (int t = 0; t < 50; ++t) {
    FrameU8 f = test_frame(t);
    inj.apply_frame_faults(f);
    try {
      inj.before_transfer(gpusim::TransferDir::kHostToDevice, payload.size());
      inj.after_transfer(gpusim::TransferDir::kHostToDevice, payload.data(),
                         payload.size());
    } catch (const gpusim::TransferError&) {
    }
    try {
      inj.before_transfer(gpusim::TransferDir::kDeviceToHost, payload.size());
    } catch (const gpusim::TransferError&) {
    }
    try {
      inj.before_launch();
    } catch (const gpusim::LaunchError&) {
    }
    inj.corrupt_model_maybe(model.data(), model.size());
  }
  return inj.log();
}

TEST(FaultInjector, ReplayIsDeterministic) {
  FaultConfig cfg;
  cfg.seed = 77;
  cfg.frame_drop_prob = 0.05;
  cfg.frame_truncate_prob = 0.05;
  cfg.frame_corrupt_prob = 0.05;
  cfg.upload_fault_prob = 0.1;
  cfg.download_fault_prob = 0.1;
  cfg.launch_fault_prob = 0.1;
  cfg.payload_bitflip_prob = 0.2;
  cfg.model_corrupt_prob = 0.05;

  const fault::InjectionLog a = drive_injector(cfg);
  const fault::InjectionLog b = drive_injector(cfg);
  EXPECT_EQ(a, b);
  // With these rates over 50 frames, something must actually have fired.
  EXPECT_GT(a.upload_faults + a.download_faults + a.launch_faults, 0u);
  EXPECT_GT(a.frames_dropped + a.frames_truncated + a.frames_corrupted, 0u);

  FaultConfig other = cfg;
  other.seed = 78;
  EXPECT_NE(drive_injector(other), a);
}

TEST(FaultInjector, ScheduledFaultPinsExactOperation) {
  FaultConfig cfg;
  cfg.schedule.push_back({FaultSite::kLaunch, 2});
  FaultInjector inj{cfg};
  EXPECT_NO_THROW(inj.before_launch());
  EXPECT_NO_THROW(inj.before_launch());
  EXPECT_THROW(inj.before_launch(), gpusim::LaunchError);
  EXPECT_NO_THROW(inj.before_launch());
  EXPECT_EQ(inj.log().launch_faults, 1u);
  EXPECT_EQ(inj.log().launches_seen, 4u);
}

TEST(FaultInjector, FrameFaultKinds) {
  {
    FaultConfig cfg;
    cfg.frame_drop_prob = 1.0;
    FaultInjector inj{cfg};
    FrameU8 f = test_frame(0);
    EXPECT_EQ(inj.apply_frame_faults(f), FrameFault::kDropped);
    EXPECT_TRUE(f.empty());
  }
  {
    FaultConfig cfg;
    cfg.frame_truncate_prob = 1.0;
    FaultInjector inj{cfg};
    FrameU8 f = test_frame(0);
    EXPECT_EQ(inj.apply_frame_faults(f), FrameFault::kTruncated);
    EXPECT_EQ(f.width(), kW);
    EXPECT_GT(f.height(), 0);
    EXPECT_LT(f.height(), kH);
  }
  {
    FaultConfig cfg;
    cfg.frame_corrupt_prob = 1.0;
    FaultInjector inj{cfg};
    FrameU8 f = test_frame(0);
    EXPECT_EQ(inj.apply_frame_faults(f), FrameFault::kCorrupted);
    ASSERT_EQ(f.width(), kW);
    std::size_t saturated = 0;
    for (std::size_t i = 0; i < f.size(); ++i)
      saturated += (f[i] == 0 || f[i] == 255) ? 1u : 0u;
    EXPECT_GT(saturated, f.size() / 4);  // a visible burst, not a blip
  }
}

TEST(FaultInjector, UploadFaultSurfacesThroughPipeline) {
  auto injector = std::make_shared<FaultInjector>([] {
    FaultConfig cfg;
    cfg.upload_fault_prob = 1.0;
    return cfg;
  }());
  GpuMogPipeline<double>::Config cfg;
  cfg.width = kW;
  cfg.height = kH;
  GpuMogPipeline<double> pipe{cfg};
  pipe.device().set_fault_hook(injector.get());
  FrameU8 fg;
  EXPECT_THROW(pipe.process(test_frame(0), fg), gpusim::TransferError);
  // An upload fault fires before any model state changes: the pipeline is
  // clean and the same call simply succeeds once the fault clears.
  EXPECT_FALSE(pipe.in_flight());
  pipe.device().set_fault_hook(nullptr);
  EXPECT_TRUE(pipe.process(test_frame(0), fg));
  EXPECT_EQ(pipe.frames_processed(), 1u);
}

TEST(FaultInjector, DownloadFaultLeavesPipelineResumable) {
  auto injector = std::make_shared<FaultInjector>([] {
    FaultConfig cfg;
    cfg.download_fault_prob = 1.0;
    return cfg;
  }());
  GpuMogPipeline<double>::Config cfg;
  cfg.width = kW;
  cfg.height = kH;
  GpuMogPipeline<double> pipe{cfg};
  pipe.device().set_fault_hook(injector.get());
  FrameU8 fg;
  EXPECT_THROW(pipe.process(test_frame(0), fg), gpusim::TransferError);
  // The model update already ran; only the mask download is owed.
  EXPECT_TRUE(pipe.in_flight());
  EXPECT_EQ(pipe.frames_processed(), 1u);
  pipe.device().set_fault_hook(nullptr);
  EXPECT_TRUE(pipe.resume(fg));
  EXPECT_FALSE(pipe.in_flight());
  EXPECT_EQ(fg.width(), kW);
  // frames_processed did not double-count the resumed frame.
  EXPECT_EQ(pipe.frames_processed(), 1u);
}

TEST(FaultInjector, PayloadBitflipChangesExactlyOneBit) {
  FaultConfig cfg;
  cfg.payload_bitflip_prob = 1.0;
  FaultInjector inj{cfg};
  std::vector<std::uint8_t> payload(256, 0x00);
  inj.after_transfer(gpusim::TransferDir::kDeviceToHost, payload.data(),
                     payload.size());
  int bits_set = 0;
  for (std::uint8_t b : payload)
    while (b) {
      bits_set += b & 1;
      b = static_cast<std::uint8_t>(b >> 1);
    }
  EXPECT_EQ(bits_set, 1);
  EXPECT_EQ(inj.log().payload_bitflips, 1u);
}

// ---------------------------------------------------------------------------
// Model health validation
// ---------------------------------------------------------------------------

TEST(ModelHealth, CleanModelIsHealthy) {
  MogParams params;
  MogModel<double> model(kW, kH, params);
  const fault::ModelHealth h = fault::validate_model(model);
  EXPECT_EQ(h.pixels_checked, model.num_pixels());
  EXPECT_EQ(h.non_finite, 0u);
  EXPECT_EQ(h.nonpositive_sd, 0u);
  EXPECT_LT(h.max_weight_drift, 1e-9);
  EXPECT_TRUE(h.healthy(fault::kDefaultWeightDriftTolerance));
}

TEST(ModelHealth, DetectsNaNBadSdAndDrift) {
  MogParams params;
  MogModel<double> model(kW, kH, params);
  model.mean(3, 0) = std::numeric_limits<double>::quiet_NaN();
  model.sd(5, 0) = 0.0;
  model.weight(7, 0) = 2.0;  // weight sum drifts to 2
  const fault::ModelHealth h = fault::validate_model(model);
  EXPECT_EQ(h.non_finite, 1u);
  EXPECT_EQ(h.nonpositive_sd, 1u);
  EXPECT_NEAR(h.max_weight_drift, 1.0, 1e-12);
  EXPECT_FALSE(h.healthy(fault::kDefaultWeightDriftTolerance));
  EXPECT_FALSE(h.summary().empty());
}

TEST(ModelHealth, StrideSubsamplesButStillCounts) {
  MogParams params;
  MogModel<double> model(kW, kH, params);
  const fault::ModelHealth h = fault::validate_model(model, 4);
  EXPECT_EQ(h.pixels_checked, (model.num_pixels() + 3) / 4);
}

TEST(ModelHealth, DeviceStateOverloadMatchesHostModel) {
  GpuMogPipeline<double>::Config cfg;
  cfg.width = kW;
  cfg.height = kH;
  GpuMogPipeline<double> pipe{cfg};
  FrameU8 fg;
  for (int t = 0; t < 4; ++t) pipe.process(test_frame(t), fg);
  const fault::ModelHealth h =
      fault::validate_model(pipe.state(), cfg.params);
  EXPECT_TRUE(h.healthy(fault::kDefaultWeightDriftTolerance));
  EXPECT_EQ(h.pixels_checked, static_cast<std::uint64_t>(kW) * kH);
}

TEST(ModelHealth, CorruptModelMaybePoisonsOneScalar) {
  FaultConfig cfg;
  cfg.model_corrupt_prob = 1.0;
  FaultInjector inj{cfg};
  std::vector<float> data(64, 1.0f);
  EXPECT_TRUE(inj.corrupt_model_maybe(data.data(), data.size()));
  int nans = 0;
  for (float v : data) nans += std::isnan(v) ? 1 : 0;
  EXPECT_EQ(nans, 1);
}

// ---------------------------------------------------------------------------
// CRC-protected model snapshots (MOGM v2)
// ---------------------------------------------------------------------------

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

MogModel<double> warmed_model() {
  MogParams params;
  SerialMog<double> mog(kW, kH, params);
  FrameU8 fg;
  for (int t = 0; t < 6; ++t) mog.apply(test_frame(t), fg);
  return mog.model();
}

TEST(ModelIoCrc, RoundTripsV2) {
  const std::string path = temp_path("mog_crc_roundtrip.mogm");
  const MogModel<double> model = warmed_model();
  save_model(path, model);
  const MogModel<double> loaded = load_model<double>(path, MogParams{});
  EXPECT_EQ(loaded.means(), model.means());
  EXPECT_EQ(loaded.weights(), model.weights());
  EXPECT_EQ(loaded.sds(), model.sds());
  std::filesystem::remove(path);
}

TEST(ModelIoCrc, RejectsCorruptedPayload) {
  const std::string path = temp_path("mog_crc_corrupt.mogm");
  save_model(path, warmed_model());
  std::vector<char> bytes = slurp(path);
  // Flip one payload byte well past the header.
  ASSERT_GT(bytes.size(), 200u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  spit(path, bytes);
  try {
    load_model<double>(path, MogParams{});
    FAIL() << "corrupted snapshot loaded without error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(ModelIoCrc, StillLoadsVersion1Files) {
  const std::string path = temp_path("mog_crc_v1.mogm");
  const MogModel<double> model = warmed_model();
  save_model(path, model);
  // Rewrite as a v1 file: version field back to 1, trailing CRC removed.
  std::vector<char> bytes = slurp(path);
  ASSERT_GE(bytes.size(), 8u);
  bytes[4] = 1;
  bytes[5] = bytes[6] = bytes[7] = 0;
  bytes.resize(bytes.size() - 4);
  spit(path, bytes);
  const MogModel<double> loaded = load_model<double>(path, MogParams{});
  EXPECT_EQ(loaded.means(), model.means());
  std::filesystem::remove(path);
}

TEST(ModelIoCrc, Crc32MatchesKnownVector) {
  // IEEE 802.3 check value for the ASCII string "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
  Crc32 acc;
  acc.update("1234", 4);
  acc.update("56789", 5);
  EXPECT_EQ(acc.value(), 0xcbf43926u);
}

}  // namespace
}  // namespace mog
