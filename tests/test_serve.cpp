// Tests for the multi-stream serving layer: bounded-queue backpressure,
// round-robin fairness, admission control, per-stream mask parity with solo
// pipelines, modeled device-time sharing, and thread-safe submission.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mog/fault/fault_injector.hpp"
#include "mog/gpusim/transfer_model.hpp"
#include "mog/pipeline/gpu_pipeline.hpp"
#include "mog/serve/frame_queue.hpp"
#include "mog/serve/stream_server.hpp"
#include "mog/telemetry/telemetry.hpp"
#include "mog/video/scene.hpp"

namespace mog {
namespace {

using serve::AdmissionError;
using serve::DropPolicy;
using serve::QueueStats;
using serve::ServeConfig;
using serve::StreamServer;
using serve::StreamStats;

constexpr int kW = 48, kH = 36;

SyntheticScene scene_for(std::uint64_t seed) {
  SceneConfig c;
  c.width = kW;
  c.height = kH;
  c.seed = seed;
  return SyntheticScene{c};
}

StreamServer<double>::GpuConfig gpu_config(bool tiled = false,
                                           int executor_threads = 0) {
  StreamServer<double>::GpuConfig cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.level = kernels::OptLevel::kF;
  cfg.executor_threads = executor_threads;
  if (tiled) {
    cfg.tiled = true;
    cfg.tiled_config.frame_group = 4;
    cfg.tiled_config.tile_pixels = 64;
  }
  return cfg;
}

TEST(StreamServer, EightStreamMasksMatchSoloPipelines) {
  // The acceptance criterion of the serving layer: multiplexing shares
  // modeled device *time*, never model *state* — every stream's masks must
  // be bit-identical to running that stream alone, at any executor thread
  // count.
  constexpr int kStreams = 8, kFrames = 6;
  for (const int threads : {1, 8}) {
    ServeConfig cfg;
    cfg.queue_depth = kFrames;
    StreamServer<double> server{cfg};
    for (int s = 0; s < kStreams; ++s)
      ASSERT_EQ(server.open_stream(gpu_config(false, threads)), s);
    for (int t = 0; t < kFrames; ++t)
      for (int s = 0; s < kStreams; ++s)
        ASSERT_TRUE(server.submit(s, scene_for(100 + s).frame(t)));
    server.drain();

    for (int s = 0; s < kStreams; ++s) {
      GpuMogPipeline<double>::Config solo_cfg = gpu_config(false, threads);
      GpuMogPipeline<double> solo{solo_cfg};
      const std::vector<FrameU8> served = server.take_masks(s);
      ASSERT_EQ(served.size(), static_cast<std::size_t>(kFrames))
          << "stream " << s;
      FrameU8 fg;
      for (int t = 0; t < kFrames; ++t) {
        ASSERT_TRUE(solo.process(scene_for(100 + s).frame(t), fg));
        EXPECT_EQ(served[static_cast<std::size_t>(t)], fg)
            << "stream " << s << " frame " << t << " threads " << threads;
      }
      EXPECT_EQ(server.stream_stats(s).masks_delivered,
                static_cast<std::uint64_t>(kFrames));
    }
    EXPECT_EQ(server.masks_delivered(),
              static_cast<std::uint64_t>(kStreams * kFrames));
    EXPECT_EQ(server.frames_dropped(), 0u);
  }
}

TEST(StreamServer, TiledStreamsDeliverGroupsAndCloseFlushesPartials) {
  constexpr int kFrames = 6;  // group of 4: one full group + 2 flushed
  ServeConfig cfg;
  cfg.queue_depth = kFrames;
  StreamServer<double> server{cfg};
  const int id = server.open_stream(gpu_config(true));
  for (int t = 0; t < kFrames; ++t)
    ASSERT_TRUE(server.submit(id, scene_for(7).frame(t)));
  server.drain();
  EXPECT_EQ(server.stream_stats(id).masks_delivered, 4u);

  server.close_stream(id);  // flushes the partial group of 2
  EXPECT_EQ(server.stream_stats(id).masks_delivered, 6u);
  EXPECT_EQ(server.open_streams(), 0);
  EXPECT_EQ(server.device_bytes_in_use(), 0u);

  // Bit-identical to the solo tiled pipeline, including the flush tail.
  GpuMogPipeline<double> solo{gpu_config(true)};
  std::vector<FrameU8> expected;
  FrameU8 fg;
  for (int t = 0; t < kFrames; ++t)
    if (solo.process(scene_for(7).frame(t), fg))
      for (const FrameU8& m : solo.last_group_masks()) expected.push_back(m);
  std::vector<FrameU8> rest;
  solo.flush(rest);
  for (auto& m : rest) expected.push_back(std::move(m));

  const std::vector<FrameU8> served = server.take_masks(id);
  ASSERT_EQ(served.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(served[i], expected[i]) << "mask " << i;
}

TEST(StreamServer, RoundRobinPumpIsFair) {
  // With every queue loaded, no stream may get two frames of service before
  // another ready stream gets one: after each round the scheduled counts
  // spread by at most 1.
  constexpr int kStreams = 3, kFrames = 5;
  ServeConfig cfg;
  cfg.queue_depth = kFrames;
  StreamServer<double> server{cfg};
  for (int s = 0; s < kStreams; ++s) server.open_stream(gpu_config());
  for (int t = 0; t < kFrames; ++t)
    for (int s = 0; s < kStreams; ++s)
      ASSERT_TRUE(server.submit(s, scene_for(s).frame(t)));

  while (server.pump() > 0) {
    std::uint64_t lo = ~0ull, hi = 0;
    for (int s = 0; s < kStreams; ++s) {
      const std::uint64_t n = server.stream_stats(s).frames_scheduled;
      lo = std::min(lo, n);
      hi = std::max(hi, n);
    }
    EXPECT_LE(hi - lo, 1u);
  }
  for (int s = 0; s < kStreams; ++s)
    EXPECT_EQ(server.stream_stats(s).masks_delivered,
              static_cast<std::uint64_t>(kFrames));
}

TEST(StreamServer, DropNewestRefusesAtFullQueue) {
  ServeConfig cfg;
  cfg.queue_depth = 2;
  cfg.drop_policy = DropPolicy::kDropNewest;
  StreamServer<double> server{cfg};
  const int id = server.open_stream(gpu_config());
  const SyntheticScene scene = scene_for(1);
  EXPECT_TRUE(server.submit(id, scene.frame(0)));
  EXPECT_TRUE(server.submit(id, scene.frame(1)));
  EXPECT_FALSE(server.submit(id, scene.frame(2)));  // explicit backpressure
  EXPECT_FALSE(server.submit(id, scene.frame(3)));

  const QueueStats q = server.stream_stats(id).queue;
  EXPECT_EQ(q.submitted, 4u);
  EXPECT_EQ(q.accepted, 2u);
  EXPECT_EQ(q.dropped, 2u);
  EXPECT_EQ(q.submitted, q.accepted + q.dropped);  // conservation
  EXPECT_EQ(q.high_water, 2u);

  server.drain();
  // The two *oldest* frames survived: masks match solo frames 0..1.
  GpuMogPipeline<double> solo{gpu_config()};
  const std::vector<FrameU8> served = server.take_masks(id);
  ASSERT_EQ(served.size(), 2u);
  FrameU8 fg;
  for (int t = 0; t < 2; ++t) {
    solo.process(scene.frame(t), fg);
    EXPECT_EQ(served[static_cast<std::size_t>(t)], fg);
  }
}

TEST(StreamServer, DropOldestEvictsStaleFrames) {
  ServeConfig cfg;
  cfg.queue_depth = 2;
  cfg.drop_policy = DropPolicy::kDropOldest;
  StreamServer<double> server{cfg};
  const int id = server.open_stream(gpu_config());
  const SyntheticScene scene = scene_for(1);
  for (int t = 0; t < 4; ++t)
    EXPECT_TRUE(server.submit(id, scene.frame(t)));  // always admitted
  server.drain();

  const QueueStats q = server.stream_stats(id).queue;
  EXPECT_EQ(q.submitted, 4u);
  EXPECT_EQ(q.accepted, 4u);
  EXPECT_EQ(q.dropped, 2u);
  EXPECT_EQ(q.popped, 2u);
  EXPECT_EQ(q.accepted, q.popped + q.dropped);  // conservation, queue empty

  // The two *newest* frames survived: the model saw frames 2..3.
  GpuMogPipeline<double> solo{gpu_config()};
  const std::vector<FrameU8> served = server.take_masks(id);
  ASSERT_EQ(served.size(), 2u);
  FrameU8 fg;
  for (int t = 2; t < 4; ++t) {
    solo.process(scene.frame(t), fg);
    EXPECT_EQ(served[static_cast<std::size_t>(t - 2)], fg);
  }
}

// Hammer one BoundedFrameQueue from several producer threads while a consumer
// drains it, under each drop policy. However the races interleave, the
// QueueStats conservation laws must hold exactly — no frame may be double
// counted or vanish unaccounted.
TEST(BoundedFrameQueue, ConcurrentProducersPreserveStatsConservation) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 400;
  constexpr std::size_t kDepth = 8;

  for (const DropPolicy policy :
       {DropPolicy::kDropNewest, DropPolicy::kDropOldest}) {
    SCOPED_TRACE(serve::to_string(policy));
    serve::BoundedFrameQueue queue{kDepth, policy};

    std::atomic<std::uint64_t> refused{0};
    std::atomic<std::uint64_t> popped{0};
    std::atomic<int> producers_left{kProducers};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          const FrameU8 frame(4, 4, static_cast<std::uint8_t>(p));
          if (!queue.push(frame, 1e-3 * i)) refused.fetch_add(1);
        }
        producers_left.fetch_sub(1);
      });
    }
    std::thread consumer([&] {
      serve::QueuedFrame out;
      while (producers_left.load() > 0 || !queue.empty()) {
        if (queue.pop(out))
          popped.fetch_add(1);
        else
          std::this_thread::yield();
      }
    });
    for (std::thread& t : producers) t.join();
    consumer.join();

    const QueueStats q = queue.stats();
    EXPECT_EQ(q.submitted,
              static_cast<std::uint64_t>(kProducers * kPerProducer));
    EXPECT_LE(q.high_water, kDepth);
    EXPECT_EQ(q.popped, popped.load());
    if (policy == DropPolicy::kDropNewest) {
      // Tail drop: push() returning false is the only loss path.
      EXPECT_EQ(q.dropped, refused.load());
      EXPECT_EQ(q.submitted, q.accepted + q.dropped);
      EXPECT_EQ(q.accepted, q.popped + queue.size());
    } else {
      // Head drop: every push admitted; evictions are the only loss path.
      EXPECT_EQ(refused.load(), 0u);
      EXPECT_EQ(q.accepted, q.submitted);
      EXPECT_EQ(q.accepted, q.popped + q.dropped + queue.size());
    }
    // The consumer only exits once producers stopped and the queue read
    // empty; anything still queued would be a conservation bug.
    EXPECT_EQ(queue.size(), 0u);
  }
}

TEST(StreamServer, AdmissionControlEnforcesStreamCap) {
  ServeConfig cfg;
  cfg.max_streams = 2;
  StreamServer<double> server{cfg};
  server.open_stream(gpu_config());
  server.open_stream(gpu_config());
  EXPECT_THROW(server.open_stream(gpu_config()), AdmissionError);
  // Closing a stream frees its slot.
  server.close_stream(0);
  EXPECT_NO_THROW(server.open_stream(gpu_config()));
}

TEST(StreamServer, AdmissionControlEnforcesMemoryBudget) {
  ServeConfig cfg;
  StreamServer<double> probe{cfg};
  probe.open_stream(gpu_config());
  const std::size_t per_stream = probe.device_bytes_in_use();
  ASSERT_GT(per_stream, 0u);

  // Budget for two streams; the third must be refused with a useful message.
  cfg.device_memory_budget_bytes = 2 * per_stream + per_stream / 2;
  StreamServer<double> server{cfg};
  server.open_stream(gpu_config());
  server.open_stream(gpu_config());
  try {
    server.open_stream(gpu_config());
    FAIL() << "admission control accepted a stream over the memory budget";
  } catch (const AdmissionError& e) {
    EXPECT_NE(std::string{e.what()}.find("budget"), std::string::npos);
  }
  EXPECT_EQ(server.device_bytes_in_use(), 2 * per_stream);
  // A refused stream leaks nothing; closing one admits the next.
  server.close_stream(1);
  EXPECT_NO_THROW(server.open_stream(gpu_config()));
}

TEST(StreamServer, SingleStreamMakespanTracksOverlappedModel) {
  // Cross-validation with the Fig. 5(b) closed form: one stream, frames
  // arriving at t = 0, the serving scheduler's makespan must agree with the
  // solo pipeline's overlapped model. Small slack only, because the serving
  // timeline prices each round at the counters averaged so far while
  // modeled_seconds() uses the final average.
  constexpr int kFrames = 8;
  ServeConfig cfg;
  cfg.queue_depth = kFrames;
  cfg.collect_masks = false;
  StreamServer<double> server{cfg};
  const int id = server.open_stream(gpu_config());
  const SyntheticScene scene = scene_for(3);
  for (int t = 0; t < kFrames; ++t)
    ASSERT_TRUE(server.submit(id, scene.frame(t)));
  server.drain();

  GpuMogPipeline<double> solo{gpu_config()};
  FrameU8 fg;
  for (int t = 0; t < kFrames; ++t) solo.process(scene.frame(t), fg);
  const double modeled = solo.modeled_seconds(kFrames);
  EXPECT_NEAR(server.makespan_seconds(), modeled, 0.05 * modeled);

  const telemetry::Rollup lat = server.latency_rollup(id);
  EXPECT_EQ(lat.count, static_cast<std::size_t>(kFrames));
  EXPECT_GT(lat.p50, 0.0);
  EXPECT_LE(lat.p50, lat.p99);
  EXPECT_LE(lat.p99, server.makespan_seconds() + 1e-12);
}

TEST(StreamServer, ModeledTimesAreIdenticalAcrossExecutorThreads) {
  // executor_threads is a wall-clock knob only: the modeled makespan and
  // every latency must be bit-identical at 1 and 8 workers.
  auto run = [](int threads) {
    ServeConfig cfg;
    cfg.queue_depth = 8;
    StreamServer<double> server{cfg};
    for (int s = 0; s < 2; ++s) server.open_stream(gpu_config(false, threads));
    for (int t = 0; t < 5; ++t)
      for (int s = 0; s < 2; ++s)
        server.submit(s, scene_for(40 + s).frame(t));
    server.drain();
    std::vector<double> out{server.makespan_seconds()};
    for (int s = 0; s < 2; ++s) {
      const telemetry::Rollup r = server.latency_rollup(s);
      out.push_back(r.p50);
      out.push_back(r.p99);
      out.push_back(r.total);
    }
    return out;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(StreamServer, SharedDeviceStretchesLatencyButNotCorrectness) {
  // Two streams through one device take longer than one stream alone — the
  // whole point of modeling the shared copy engine — while aggregate
  // throughput accounting stays conserved.
  auto makespan_for = [](int streams) {
    ServeConfig cfg;
    cfg.queue_depth = 6;
    cfg.collect_masks = false;
    StreamServer<double> server{cfg};
    for (int s = 0; s < streams; ++s) server.open_stream(gpu_config());
    for (int t = 0; t < 6; ++t)
      for (int s = 0; s < streams; ++s)
        server.submit(s, scene_for(60 + s).frame(t));
    server.drain();
    return server.makespan_seconds();
  };
  const double one = makespan_for(1);
  const double four = makespan_for(4);
  EXPECT_GT(four, one * 1.5);  // contention must show up
  EXPECT_LT(four, one * 8.0);  // but overlap must still help
}

TEST(StreamServer, ConcurrentProducersWithBackgroundScheduler) {
  // Thread-safety coverage (runs under TSan in CI): four capture threads
  // submit while the background scheduler pumps.
  constexpr int kStreams = 4, kFrames = 12;
  ServeConfig cfg;
  cfg.queue_depth = kFrames;  // deep enough that nothing drops
  cfg.collect_masks = false;
  StreamServer<double> server{cfg};
  for (int s = 0; s < kStreams; ++s) server.open_stream(gpu_config());

  server.start();
  std::vector<std::thread> producers;
  for (int s = 0; s < kStreams; ++s)
    producers.emplace_back([&server, s] {
      const SyntheticScene scene = scene_for(static_cast<std::uint64_t>(s));
      for (int t = 0; t < kFrames; ++t)
        server.submit(s, scene.frame(t),
                      static_cast<double>(t) * 1e-3);
    });
  for (std::thread& p : producers) p.join();
  server.stop();
  server.drain();  // finish anything the worker had not reached

  std::uint64_t accepted = 0;
  for (int s = 0; s < kStreams; ++s)
    accepted += server.stream_stats(s).queue.accepted;
  EXPECT_EQ(accepted, static_cast<std::uint64_t>(kStreams * kFrames));
  EXPECT_EQ(server.masks_delivered(), accepted);
  EXPECT_GT(server.aggregate_latency_rollup().count, 0u);
}

TEST(StreamServer, FeedsGlobalTelemetrySinks) {
  telemetry::TraceRecorder rec;
  telemetry::CounterRegistry reg;
  telemetry::set_tracer(&rec);
  telemetry::set_counters(&reg);
  {
    ServeConfig cfg;
    cfg.queue_depth = 4;
    StreamServer<double> server{cfg};
    for (int s = 0; s < 2; ++s) server.open_stream(gpu_config());
    for (int t = 0; t < 3; ++t)
      for (int s = 0; s < 2; ++s) server.submit(s, scene_for(9).frame(t));
    server.drain();

    EXPECT_EQ(reg.samples("serve.latency_seconds").size(),
              server.masks_delivered());
    EXPECT_FALSE(reg.samples("serve.queue_depth").empty());
    bool serve_track_seen = false;
    for (const telemetry::TraceEvent& ev : rec.events())
      serve_track_seen |=
          ev.tid >= telemetry::TraceRecorder::kServeTrackBase;
    EXPECT_TRUE(serve_track_seen);
  }
  telemetry::set_tracer(nullptr);
  telemetry::set_counters(nullptr);
}

TEST(StreamServer, DegradedStreamKeepsServingOffTheSharedDevice) {
  // Hammer one stream with launch faults until it degrades to the CPU tier;
  // it must keep delivering masks while the healthy stream is unaffected.
  ServeConfig cfg;
  cfg.queue_depth = 16;
  cfg.resilience.retry.max_attempts = 2;
  cfg.resilience.degrade_after_failures = 1;
  StreamServer<double> server{cfg};
  auto injector = std::make_shared<fault::FaultInjector>([] {
    fault::FaultConfig fc;
    fc.launch_fault_prob = 1.0;
    return fc;
  }());
  const int sick = server.open_stream(gpu_config(), injector);
  const int healthy = server.open_stream(gpu_config());
  for (int t = 0; t < 8; ++t) {
    server.submit(sick, scene_for(1).frame(t));
    server.submit(healthy, scene_for(2).frame(t));
  }
  server.drain();

  EXPECT_EQ(server.stream_stats(sick).tier, fault::ExecutionTier::kCpuSerial);
  EXPECT_EQ(server.stream_stats(sick).masks_delivered, 8u);
  EXPECT_EQ(server.stream_stats(healthy).masks_delivered, 8u);

  // The healthy stream's masks are still bit-identical to its solo run.
  GpuMogPipeline<double> solo{gpu_config()};
  const std::vector<FrameU8> served = server.take_masks(healthy);
  ASSERT_EQ(served.size(), 8u);
  FrameU8 fg;
  for (int t = 0; t < 8; ++t) {
    solo.process(scene_for(2).frame(t), fg);
    EXPECT_EQ(served[static_cast<std::size_t>(t)], fg);
  }
}

TEST(StreamServer, ValidatesApiMisuse) {
  ServeConfig bad;
  bad.queue_depth = 0;
  EXPECT_THROW(StreamServer<double>{bad}, Error);

  StreamServer<double> server{ServeConfig{}};
  const SyntheticScene scene = scene_for(5);
  EXPECT_THROW(server.submit(0, scene.frame(0)), Error);  // unknown id
  const int id = server.open_stream(gpu_config());
  server.close_stream(id);
  EXPECT_THROW(server.submit(id, scene.frame(0)), Error);  // closed
  EXPECT_THROW(server.close_stream(id), Error);            // double close
}

}  // namespace
}  // namespace mog
