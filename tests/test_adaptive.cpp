// Tests for the variable-component-count MoG (§II related work): CPU
// behaviour (growth, pruning, savings on unimodal scenes), GPU kernel
// parity, and the lockstep-waste accounting the paper's argument rests on.
#include <gtest/gtest.h>

#include <memory>

#include "mog/cpu/adaptive_mog.hpp"
#include "mog/kernels/adaptive_kernel.hpp"
#include "mog/metrics/confusion.hpp"
#include "mog/video/scene.hpp"

namespace mog {
namespace {

constexpr int kW = 64, kH = 48;

SceneConfig scene_cfg(double texture) {
  SceneConfig cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.seed = 99;
  cfg.texture_fraction = texture;
  if (texture == 0.0) {
    cfg.flicker_regions = false;
    cfg.waving_region = false;
  }
  return cfg;
}

TEST(AdaptiveCpu, UnimodalSceneStaysNearOneComponent) {
  const SyntheticScene scene{scene_cfg(0.0)};
  AdaptiveMog<double> mog{kW, kH};
  FrameU8 fg;
  for (int t = 0; t < 25; ++t) mog.apply(scene.frame(t), fg);
  // A static scene needs ~1 component; transient virtual components get
  // pruned again.
  EXPECT_LT(mog.model().mean_active_components(), 1.6);
}

TEST(AdaptiveCpu, BimodalSceneGrowsComponents) {
  const SyntheticScene scene{scene_cfg(1.0)};
  AdaptiveMog<double> mog{kW, kH};
  FrameU8 fg;
  for (int t = 0; t < 40; ++t) mog.apply(scene.frame(t), fg);
  EXPECT_GT(mog.model().mean_active_components(), 1.5);
  EXPECT_LE(mog.model().mean_active_components(), 3.0);
}

TEST(AdaptiveCpu, SavesWorkVersusFixedK) {
  // The CPU-side selling point: far fewer component iterations than K * N.
  const SyntheticScene scene{scene_cfg(0.0)};
  AdaptiveMog<double> mog{kW, kH};
  FrameU8 fg;
  const int frames = 20;
  for (int t = 0; t < frames; ++t) mog.apply(scene.frame(t), fg);
  const auto fixed_iterations =
      static_cast<std::uint64_t>(kW) * kH * frames * 3;
  EXPECT_LT(mog.active_iterations(), fixed_iterations / 2);
}

TEST(AdaptiveCpu, DetectsForegroundAfterWarmup) {
  const SyntheticScene scene{scene_cfg(0.0)};
  AdaptiveMog<double> mog{kW, kH};
  FrameU8 fg;
  for (int t = 0; t < 25; ++t) mog.apply(scene.frame(t), fg);
  FrameU8 frame = scene.frame(25);
  for (int y = 8; y < 20; ++y)
    for (int x = 8; x < 20; ++x) frame.at(x, y) = 250;
  mog.apply(frame, fg);
  int hits = 0;
  for (int y = 8; y < 20; ++y)
    for (int x = 8; x < 20; ++x) hits += (fg.at(x, y) != 0);
  EXPECT_GT(hits, 120);
}

TEST(AdaptiveCpu, CountsStayInBounds) {
  const SyntheticScene scene{scene_cfg(1.0)};
  AdaptiveMogParams params;
  params.base.num_components = 5;
  AdaptiveMog<double> mog{kW, kH, params};
  FrameU8 fg;
  for (int t = 0; t < 15; ++t) mog.apply(scene.frame(t), fg);
  for (const std::int32_t c : mog.model().counts()) {
    ASSERT_GE(c, 1);
    ASSERT_LE(c, 5);
  }
}

TEST(AdaptiveCpu, PruneRemovesNegligibleComponents) {
  AdaptiveMogParams ap;
  const TypedMogParams<double> p = TypedMogParams<double>::from(ap.base);
  // Two components: one dominant, one with weight below the prune line.
  double w[3] = {0.99, 0.011, 0.0};
  double m[3] = {100.0, 200.0, 0.0};
  double sd[3] = {5.0, 5.0, 15.0};
  std::int32_t count = 2;
  adaptive_update_pixel(w, m, sd, count, 1, 100.0, p,
                        ap.prune_weight);
  EXPECT_EQ(count, 1);
  EXPECT_NEAR(m[0], 100.0, 1.0);  // the dominant component survived
}

TEST(AdaptiveCpu, ParamsValidation) {
  AdaptiveMogParams params;
  params.prune_weight = 0.5;  // >= weight_threshold
  EXPECT_THROW(params.validate(), Error);
}

// ---------------------------------------------------------------------------
// GPU kernel
// ---------------------------------------------------------------------------

struct AdaptiveGpuRun {
  gpusim::Device device;
  std::unique_ptr<kernels::AdaptiveDeviceState<double>> state;
  gpusim::DevSpan<std::uint8_t> frame_buf, fg_buf;
  TypedMogParams<double> tp;
  AdaptiveMogParams params;
  kernels::AdaptiveCounters counters;

  AdaptiveGpuRun() : tp(TypedMogParams<double>::from(AdaptiveMogParams{}.base)) {
    state = std::make_unique<kernels::AdaptiveDeviceState<double>>(
        device, kW, kH, params);
    frame_buf = device.memory().alloc<std::uint8_t>(kW * kH);
    fg_buf = device.memory().alloc<std::uint8_t>(kW * kH);
  }

  gpusim::KernelStats step(const FrameU8& frame, FrameU8& fg) {
    gpusim::copy_to_device(frame_buf, frame.data(), frame.size());
    auto stats = kernels::launch_adaptive_frame<double>(
        device, *state, frame_buf, fg_buf, tp,
        static_cast<double>(params.prune_weight), &counters);
    if (!fg.same_shape(frame)) fg = FrameU8(kW, kH);
    gpusim::copy_from_device(fg.data(), fg_buf, fg.size());
    return stats;
  }
};

TEST(AdaptiveGpu, TracksCpuImplementation) {
  const SyntheticScene scene{scene_cfg(0.9)};
  AdaptiveMog<double> cpu{kW, kH};
  AdaptiveGpuRun gpu;
  FrameU8 cpu_fg, gpu_fg;
  double disagreement = 0;
  for (int t = 0; t < 15; ++t) {
    const FrameU8 f = scene.frame(t);
    cpu.apply(f, cpu_fg);
    gpu.step(f, gpu_fg);
    if (t >= 5) disagreement += mask_disagreement(cpu_fg, gpu_fg);
  }
  EXPECT_LT(disagreement / 10, 0.02);
  // Component counts agree pixel-for-pixel (integer state, fp-insensitive
  // except at thresholds).
  const auto gm = gpu.state->download(gpu.params);
  const auto& cm = cpu.model();
  std::size_t count_diffs = 0;
  for (std::size_t p = 0; p < cm.num_pixels(); ++p)
    count_diffs += (gm.counts()[p] != cm.counts()[p]);
  EXPECT_LT(static_cast<double>(count_diffs) /
                static_cast<double>(cm.num_pixels()),
            0.02);
}

TEST(AdaptiveGpu, LockstepWasteOnMixedWarps) {
  // The §II claim: on a scene mixing unimodal and multimodal patches, lane
  // utilization of the component loops drops well below 1 — lanes idle
  // while their warp runs to the maximum count.
  const SyntheticScene scene{scene_cfg(0.5)};
  AdaptiveGpuRun gpu;
  FrameU8 fg;
  for (int t = 0; t < 20; ++t) gpu.step(scene.frame(t), fg);
  const double util = gpu.counters.lane_utilization();
  EXPECT_LT(util, 0.92);
  EXPECT_GT(util, 0.3);
}

TEST(AdaptiveGpu, UniformSceneHasHighUtilization) {
  // Truly unimodal input (constant frames near the initial model mean):
  // every lane stays at one component, so there is no lockstep waste.
  // (Scene content far from the initial mean seeds second components whose
  // slow weight decay keeps counts elevated for hundreds of frames — that
  // mixed regime is covered by LockstepWasteOnMixedWarps.)
  AdaptiveGpuRun gpu;
  FrameU8 frame(kW, kH, 128), fg;
  for (int t = 0; t < 12; ++t) {
    for (std::size_t i = 0; i < frame.size(); ++i)
      frame[i] = static_cast<std::uint8_t>(126 + (i + t) % 5);
    gpu.step(frame, fg);
  }
  EXPECT_GT(gpu.counters.lane_utilization(), 0.95);
}

TEST(AdaptiveGpu, UnbalancedAccessHurtsMemoryEfficiency) {
  // Compared to the fixed-K coalesced kernels (~96%), the variable-K
  // kernel's masked, ragged parameter accesses waste bandwidth.
  const SyntheticScene scene{scene_cfg(0.9)};
  AdaptiveGpuRun gpu;
  FrameU8 fg;
  gpusim::KernelStats total;
  for (int t = 0; t < 12; ++t) total += gpu.step(scene.frame(t), fg);
  EXPECT_LT(total.memory_access_efficiency(), 0.9);
}

TEST(AdaptiveGpu, RejectsMismatchedParams) {
  AdaptiveGpuRun gpu;
  auto tp_bad = gpu.tp;
  tp_bad.k = gpu.params.base.num_components + 1;
  EXPECT_THROW(kernels::launch_adaptive_frame<double>(
                   gpu.device, *gpu.state, gpu.frame_buf, gpu.fg_buf, tp_bad,
                   0.01, nullptr),
               Error);
}

}  // namespace
}  // namespace mog
