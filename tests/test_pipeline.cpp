// Tests for the host pipeline, the experiment runner, and the public
// BackgroundSubtractor facade — the integration layer the benches rely on.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mog/core/background_subtractor.hpp"
#include "mog/cpu/serial_mog.hpp"
#include "mog/fault/fault_injector.hpp"
#include "mog/gpusim/kernel_launch.hpp"
#include "mog/metrics/confusion.hpp"
#include "mog/pipeline/experiment.hpp"
#include "mog/pipeline/gpu_pipeline.hpp"
#include "mog/video/scene.hpp"

namespace mog {
namespace {

constexpr int kW = 64, kH = 48;

ExperimentConfig small_experiment(kernels::OptLevel level) {
  ExperimentConfig cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.frames = 10;
  cfg.warmup_frames = 4;
  cfg.level = level;
  return cfg;
}

TEST(GpuPipeline, ProcessesFramesAndReportsStats) {
  const SyntheticScene scene{[] {
    SceneConfig c;
    c.width = kW;
    c.height = kH;
    return c;
  }()};
  GpuMogPipeline<double>::Config cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.level = kernels::OptLevel::kF;
  GpuMogPipeline<double> pipe{cfg};
  FrameU8 fg;
  for (int t = 0; t < 5; ++t) EXPECT_TRUE(pipe.process(scene.frame(t), fg));
  EXPECT_EQ(pipe.frames_processed(), 5u);
  EXPECT_EQ(pipe.kernel_launches(), 5u);
  EXPECT_GT(pipe.per_frame_stats().issue_cycles, 0u);
  EXPECT_GT(pipe.occupancy().achieved, 0.1);
  EXPECT_GT(pipe.modeled_seconds(), 0.0);
}

TEST(GpuPipeline, TiledBuffersUntilGroupCompletes) {
  const SyntheticScene scene{[] {
    SceneConfig c;
    c.width = kW;
    c.height = kH;
    return c;
  }()};
  GpuMogPipeline<double>::Config cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.tiled = true;
  cfg.tiled_config.frame_group = 4;
  cfg.tiled_config.tile_pixels = 64;
  GpuMogPipeline<double> pipe{cfg};
  FrameU8 fg;
  EXPECT_FALSE(pipe.process(scene.frame(0), fg));
  EXPECT_FALSE(pipe.process(scene.frame(1), fg));
  EXPECT_FALSE(pipe.process(scene.frame(2), fg));
  EXPECT_TRUE(pipe.process(scene.frame(3), fg));
  EXPECT_EQ(pipe.last_group_masks().size(), 4u);
  EXPECT_EQ(pipe.kernel_launches(), 1u);

  // Partial group drains through flush().
  EXPECT_FALSE(pipe.process(scene.frame(4), fg));
  std::vector<FrameU8> rest;
  EXPECT_EQ(pipe.flush(rest), 1);
  EXPECT_EQ(rest.size(), 1u);
  EXPECT_EQ(pipe.flush(rest), 0);  // idempotent
}

TEST(GpuPipeline, TiledRequiresLevelF) {
  GpuMogPipeline<double>::Config cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.tiled = true;
  cfg.level = kernels::OptLevel::kB;
  EXPECT_THROW(GpuMogPipeline<double>{cfg}, Error);
}

// Config-boundary checks carry actionable messages, not just a throw.
TEST(GpuPipeline, ConfigBoundaryMessages) {
  auto expect_message = [](auto&& fn, const char* needle) {
    try {
      fn();
      FAIL() << "expected an Error mentioning \"" << needle << "\"";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };

  expect_message(
      [] {
        GpuMogPipeline<double>::Config cfg;
        cfg.width = 0;
        cfg.height = kH;
        GpuMogPipeline<double> pipe{cfg};
      },
      "bad pipeline dimensions");
  expect_message(
      [] {
        GpuMogPipeline<double>::Config cfg;
        cfg.width = kW;
        cfg.height = kH;
        cfg.tiled = true;
        cfg.level = kernels::OptLevel::kC;
        GpuMogPipeline<double> pipe{cfg};
      },
      "level F");
  expect_message(
      [] {
        GpuMogPipeline<double>::Config cfg;
        cfg.width = kW;
        cfg.height = kH;
        GpuMogPipeline<double> pipe{cfg};
        FrameU8 wrong(kW / 2, kH), fg;
        pipe.process(wrong, fg);
      },
      "frame dimensions");
  expect_message(
      [] {
        GpuMogPipeline<double>::Config cfg;
        cfg.width = kW;
        cfg.height = kH;
        GpuMogPipeline<double> pipe{cfg};
        FrameU8 fg;
        pipe.resume(fg);  // nothing interrupted: refuse, don't hang
      },
      "resume");
}

TEST(GpuPipeline, FlushOnNonTiledIsANoOp) {
  GpuMogPipeline<double>::Config cfg;
  cfg.width = kW;
  cfg.height = kH;
  GpuMogPipeline<double> pipe{cfg};
  std::vector<FrameU8> out;
  EXPECT_EQ(pipe.flush(out), 0);
  EXPECT_TRUE(out.empty());
}

TEST(GpuPipeline, ProcessAndFlushRefuseWhileInFlight) {
  // A mid-group download fault leaves the pipeline in_flight(); both entry
  // points must refuse (precondition error, not corruption) until resume().
  const SyntheticScene scene{[] {
    SceneConfig c;
    c.width = kW;
    c.height = kH;
    return c;
  }()};
  auto injector = std::make_shared<fault::FaultInjector>([] {
    fault::FaultConfig fc;
    fc.schedule.push_back({fault::FaultSite::kDownload, 1});
    return fc;
  }());
  GpuMogPipeline<double>::Config cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.tiled = true;
  cfg.tiled_config.frame_group = 2;
  cfg.tiled_config.tile_pixels = 64;
  GpuMogPipeline<double> pipe{cfg};
  pipe.device().set_fault_hook(injector.get());

  FrameU8 fg;
  EXPECT_FALSE(pipe.process(scene.frame(0), fg));
  // Group completes: mask 0 downloads, mask 1's download faults.
  EXPECT_THROW(pipe.process(scene.frame(1), fg), gpusim::TransferError);
  ASSERT_TRUE(pipe.in_flight());

  try {
    pipe.process(scene.frame(2), fg);
    FAIL() << "process() accepted work while in_flight()";
  } catch (const Error& e) {
    EXPECT_NE(std::string{e.what()}.find("resume"), std::string::npos);
  }
  std::vector<FrameU8> out;
  EXPECT_THROW(pipe.flush(out), Error);
  EXPECT_TRUE(pipe.in_flight());  // refusals must not clear the state

  pipe.device().set_fault_hook(nullptr);
  EXPECT_TRUE(pipe.resume(fg));
  EXPECT_FALSE(pipe.in_flight());
  EXPECT_EQ(pipe.last_group_masks().size(), 2u);
  // Reusable: the next frame starts a fresh group.
  EXPECT_FALSE(pipe.process(scene.frame(2), fg));
}

TEST(GpuPipeline, ResumeAfterGroupDownloadFaultMatchesFaultFreeRun) {
  // The interrupted download is re-fetched without re-running the update
  // kernel, so the recovered masks must be byte-identical to a run that
  // never faulted.
  const SyntheticScene scene{[] {
    SceneConfig c;
    c.width = kW;
    c.height = kH;
    return c;
  }()};
  GpuMogPipeline<double>::Config cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.tiled = true;
  cfg.tiled_config.frame_group = 4;
  cfg.tiled_config.tile_pixels = 64;

  GpuMogPipeline<double> reference{cfg};
  FrameU8 fg;
  for (int t = 0; t < 4; ++t) reference.process(scene.frame(t), fg);
  const std::vector<FrameU8> expected = reference.last_group_masks();
  ASSERT_EQ(expected.size(), 4u);

  auto injector = std::make_shared<fault::FaultInjector>([] {
    fault::FaultConfig fc;
    fc.schedule.push_back({fault::FaultSite::kDownload, 1});  // 2nd mask
    return fc;
  }());
  GpuMogPipeline<double> faulted{cfg};
  faulted.device().set_fault_hook(injector.get());
  for (int t = 0; t < 3; ++t) EXPECT_FALSE(faulted.process(scene.frame(t), fg));
  EXPECT_THROW(faulted.process(scene.frame(3), fg), gpusim::TransferError);
  ASSERT_TRUE(faulted.in_flight());
  // The failed attempt consumed schedule index 1, so resume() re-fetches the
  // remaining masks cleanly.
  EXPECT_TRUE(faulted.resume(fg));
  EXPECT_FALSE(faulted.in_flight());

  const std::vector<FrameU8>& recovered = faulted.last_group_masks();
  ASSERT_EQ(recovered.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(recovered[i], expected[i]) << "mask " << i;
  EXPECT_EQ(fg, expected.back());
  EXPECT_EQ(faulted.frames_processed(), reference.frames_processed());
}

TEST(GpuPipeline, AbortInFlightLeavesPipelineReusable) {
  const SyntheticScene scene{[] {
    SceneConfig c;
    c.width = kW;
    c.height = kH;
    return c;
  }()};
  // Case 1: lost mask downloads (model already updated) — abort discards no
  // buffered input frames.
  {
    auto injector = std::make_shared<fault::FaultInjector>([] {
      fault::FaultConfig fc;
      fc.download_fault_prob = 1.0;
      return fc;
    }());
    GpuMogPipeline<double>::Config cfg;
    cfg.width = kW;
    cfg.height = kH;
    GpuMogPipeline<double> pipe{cfg};
    pipe.device().set_fault_hook(injector.get());
    FrameU8 fg;
    EXPECT_THROW(pipe.process(scene.frame(0), fg), gpusim::TransferError);
    ASSERT_TRUE(pipe.in_flight());
    EXPECT_EQ(pipe.abort_in_flight(), 0);
    EXPECT_FALSE(pipe.in_flight());
    pipe.device().set_fault_hook(nullptr);
    EXPECT_TRUE(pipe.process(scene.frame(1), fg));
    EXPECT_EQ(pipe.frames_processed(), 2u);  // frame 0 did update the model
  }
  // Case 2: a failed group launch — the whole buffered group is discarded
  // and the pipeline accepts new groups afterwards.
  {
    auto injector = std::make_shared<fault::FaultInjector>([] {
      fault::FaultConfig fc;
      fc.schedule.push_back({fault::FaultSite::kLaunch, 0});
      return fc;
    }());
    GpuMogPipeline<double>::Config cfg;
    cfg.width = kW;
    cfg.height = kH;
    cfg.tiled = true;
    cfg.tiled_config.frame_group = 2;
    cfg.tiled_config.tile_pixels = 64;
    GpuMogPipeline<double> pipe{cfg};
    pipe.device().set_fault_hook(injector.get());
    FrameU8 fg;
    EXPECT_FALSE(pipe.process(scene.frame(0), fg));
    EXPECT_THROW(pipe.process(scene.frame(1), fg), gpusim::LaunchError);
    ASSERT_TRUE(pipe.in_flight());
    EXPECT_EQ(pipe.abort_in_flight(), 2);  // both buffered frames discarded
    EXPECT_FALSE(pipe.in_flight());
    EXPECT_FALSE(pipe.process(scene.frame(2), fg));
    EXPECT_TRUE(pipe.process(scene.frame(3), fg));
    EXPECT_EQ(pipe.last_group_masks().size(), 2u);
  }
}

TEST(GpuPipeline, OverlapReducesModeledTime) {
  // Same kernel, different schedule: C (overlapped) must beat B.
  const SyntheticScene scene{[] {
    SceneConfig c;
    c.width = kW;
    c.height = kH;
    return c;
  }()};
  auto run = [&](kernels::OptLevel level) {
    GpuMogPipeline<double>::Config cfg;
    cfg.width = kW;
    cfg.height = kH;
    cfg.level = level;
    GpuMogPipeline<double> pipe{cfg};
    FrameU8 fg;
    for (int t = 0; t < 4; ++t) pipe.process(scene.frame(t), fg);
    return pipe.modeled_seconds(450);
  };
  EXPECT_LT(run(kernels::OptLevel::kC), run(kernels::OptLevel::kB));
}

TEST(ScaleStats, LinearInRatio) {
  gpusim::KernelStats s;
  s.issue_cycles = 1000;
  s.load_transactions = 500;
  s.branches_executed = 100;
  s.regs_per_thread = 33;
  s.threads_per_block = 128;
  const gpusim::KernelStats big = scale_stats(s, 4.0);
  EXPECT_EQ(big.issue_cycles, 4000u);
  EXPECT_EQ(big.load_transactions, 2000u);
  EXPECT_EQ(big.branches_executed, 400u);
  EXPECT_EQ(big.regs_per_thread, 33);  // resource fields pass through
}

TEST(Experiment, ProducesConsistentResult) {
  const ExperimentResult r =
      run_gpu_experiment(small_experiment(kernels::OptLevel::kF));
  EXPECT_GT(r.speedup, 1.0);
  EXPECT_GT(r.gpu_seconds, 0.0);
  EXPECT_GT(r.cpu_seconds, r.gpu_seconds);
  EXPECT_NEAR(r.cpu_seconds_fullhd450, 227.3, 0.1);
  EXPECT_GT(r.occupancy.achieved, 0.2);
  EXPECT_GT(r.per_frame.issue_cycles, 0u);
  EXPECT_LT(r.fg_disagreement, 0.05);
  EXPECT_GT(r.vs_truth.tp + r.vs_truth.tn + r.vs_truth.fp + r.vs_truth.fn,
            0u);
}

TEST(Experiment, SpeedupLadderIsOrdered) {
  // The paper's headline (Fig. 8a): every optimization step pays off.
  using kernels::OptLevel;
  double prev = 0.0;
  for (const OptLevel level :
       {OptLevel::kA, OptLevel::kB, OptLevel::kC, OptLevel::kF}) {
    const ExperimentResult r = run_gpu_experiment(small_experiment(level));
    EXPECT_GT(r.speedup, prev) << kernels::to_string(level);
    prev = r.speedup;
  }
}

TEST(Experiment, QualityMeasurementProducesMsSsim) {
  ExperimentConfig cfg = small_experiment(kernels::OptLevel::kB);
  cfg.measure_quality = true;
  const ExperimentResult r = run_gpu_experiment(cfg);
  EXPECT_GT(r.msssim_foreground, 0.9);
  EXPECT_LE(r.msssim_foreground, 1.0);
  EXPECT_GT(r.msssim_background, 0.9);
}

TEST(Experiment, TiledAccountsAllFrames) {
  ExperimentConfig cfg = small_experiment(kernels::OptLevel::kF);
  cfg.tiled = true;
  cfg.tiled_config.frame_group = 4;
  cfg.tiled_config.tile_pixels = 64;
  cfg.frames = 10;  // 2 full groups + partial group of 2
  const ExperimentResult r = run_gpu_experiment(cfg);
  EXPECT_GT(r.speedup, 1.0);
  EXPECT_LT(r.fg_disagreement, 0.05);
}

TEST(Experiment, FloatUsesFloatBaseline) {
  ExperimentConfig cfg = small_experiment(kernels::OptLevel::kF);
  cfg.precision = Precision::kFloat;
  const ExperimentResult r = run_gpu_experiment(cfg);
  EXPECT_NEAR(r.cpu_seconds_fullhd450, 180.0, 0.2);
}

TEST(Experiment, RejectsDegenerateFrameBudget) {
  ExperimentConfig cfg = small_experiment(kernels::OptLevel::kF);
  cfg.frames = cfg.warmup_frames;
  EXPECT_THROW(run_gpu_experiment(cfg), Error);
}

// ---------------------------------------------------------------------------
// BackgroundSubtractor facade
// ---------------------------------------------------------------------------

TEST(Facade, GpuBackendEndToEnd) {
  BackgroundSubtractor::Config cfg;
  cfg.width = kW;
  cfg.height = kH;
  BackgroundSubtractor bgs{cfg};
  const SyntheticScene scene{[] {
    SceneConfig c;
    c.width = kW;
    c.height = kH;
    return c;
  }()};
  FrameU8 fg;
  for (int t = 0; t < 6; ++t) EXPECT_TRUE(bgs.apply(scene.frame(t), fg));
  const auto profile = bgs.profile();
  EXPECT_TRUE(profile.available);
  EXPECT_GT(profile.occupancy.achieved, 0.0);
  EXPECT_GT(profile.modeled_seconds, 0.0);
  const FrameU8 bg = bgs.background();
  EXPECT_EQ(bg.width(), kW);
}

TEST(Facade, CpuBackendsMatchEachOther) {
  const SyntheticScene scene{[] {
    SceneConfig c;
    c.width = kW;
    c.height = kH;
    return c;
  }()};
  auto make = [&](BackgroundSubtractor::Backend backend) {
    BackgroundSubtractor::Config cfg;
    cfg.width = kW;
    cfg.height = kH;
    cfg.backend = backend;
    cfg.num_threads = 3;
    return BackgroundSubtractor{cfg};
  };
  auto serial = make(BackgroundSubtractor::Backend::kCpuSerial);
  auto parallel = make(BackgroundSubtractor::Backend::kCpuParallel);
  FrameU8 fg_s, fg_p;
  for (int t = 0; t < 8; ++t) {
    const FrameU8 f = scene.frame(t);
    serial.apply(f, fg_s);
    parallel.apply(f, fg_p);
    ASSERT_EQ(fg_s, fg_p);
  }
  EXPECT_FALSE(serial.profile().available);  // CPU backends: no GPU profile
}

TEST(Facade, SimdBackendRuns) {
  BackgroundSubtractor::Config cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.backend = BackgroundSubtractor::Backend::kCpuSimd;
  cfg.precision = Precision::kFloat;
  BackgroundSubtractor bgs{cfg};
  const SyntheticScene scene{[] {
    SceneConfig c;
    c.width = kW;
    c.height = kH;
    return c;
  }()};
  FrameU8 fg;
  EXPECT_TRUE(bgs.apply(scene.frame(0), fg));
  EXPECT_EQ(fg.width(), kW);
}

TEST(Facade, TiledDeliveryContract) {
  BackgroundSubtractor::Config cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.tiled = true;
  cfg.tiled_config.frame_group = 3;
  cfg.tiled_config.tile_pixels = 64;
  BackgroundSubtractor bgs{cfg};
  const SyntheticScene scene{[] {
    SceneConfig c;
    c.width = kW;
    c.height = kH;
    return c;
  }()};
  FrameU8 fg;
  EXPECT_FALSE(bgs.apply(scene.frame(0), fg));
  EXPECT_FALSE(bgs.apply(scene.frame(1), fg));
  EXPECT_TRUE(bgs.apply(scene.frame(2), fg));
  std::vector<FrameU8> rest;
  bgs.apply(scene.frame(3), fg);
  EXPECT_EQ(bgs.flush(rest), 1);
}

TEST(Facade, RejectsInvalidConfig) {
  BackgroundSubtractor::Config cfg;
  cfg.width = 0;
  cfg.height = 10;
  EXPECT_THROW(BackgroundSubtractor{cfg}, Error);
  cfg.width = 10;
  cfg.params.alpha = 2.0;
  EXPECT_THROW(BackgroundSubtractor{cfg}, Error);
}

TEST(Facade, MoveSemantics) {
  BackgroundSubtractor::Config cfg;
  cfg.width = kW;
  cfg.height = kH;
  BackgroundSubtractor a{cfg};
  BackgroundSubtractor b{std::move(a)};
  const SyntheticScene scene{[] {
    SceneConfig c;
    c.width = kW;
    c.height = kH;
    return c;
  }()};
  FrameU8 fg;
  EXPECT_TRUE(b.apply(scene.frame(0), fg));
}

}  // namespace
}  // namespace mog
