// Tests for the self-healing pipeline wrapper: deterministic replay of a
// faulty run, mask fidelity under sustained fault rates, the degradation
// ladder, watchdog rollback, and checkpointing to disk.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "mog/cpu/model_io.hpp"
#include "mog/fault/fault_injector.hpp"
#include "mog/fault/resilient_pipeline.hpp"
#include "mog/video/scene.hpp"

namespace mog {
namespace {

using fault::ExecutionTier;
using fault::FaultConfig;
using fault::FaultInjector;
using fault::FaultSite;
using fault::RecoveryStats;
using fault::ResilienceConfig;
using fault::ResilientPipeline;

constexpr int kW = 48, kH = 36;

SyntheticScene quiet_scene() {
  SceneConfig c;
  c.width = kW;
  c.height = kH;
  c.noise_sd = 0.0;  // pixels sit far from decision boundaries
  c.flicker_regions = false;
  c.texture_fraction = 0.0;
  return SyntheticScene{c};
}

ResilientPipeline<double>::GpuConfig gpu_config(bool tiled = false) {
  ResilientPipeline<double>::GpuConfig cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.level = kernels::OptLevel::kF;
  if (tiled) {
    cfg.tiled = true;
    cfg.tiled_config.frame_group = 4;
    cfg.tiled_config.tile_pixels = 64;
  }
  return cfg;
}

struct RunResult {
  RecoveryStats stats;
  fault::InjectionLog log;
  std::vector<FrameU8> masks;
  ExecutionTier final_tier = ExecutionTier::kTiledGpu;
};

RunResult run(const FaultConfig& faults, const ResilienceConfig& res,
              int frames, bool tiled = false) {
  const SyntheticScene scene = quiet_scene();
  auto injector = std::make_shared<FaultInjector>(faults);
  ResilientPipeline<double> pipe{gpu_config(tiled), res, injector};
  RunResult out;
  FrameU8 fg;
  for (int t = 0; t < frames; ++t)
    if (pipe.process(scene.frame(t), fg)) out.masks.push_back(fg);
  std::vector<FrameU8> rest;
  pipe.flush(rest);
  for (auto& m : rest) out.masks.push_back(std::move(m));
  out.stats = pipe.recovery_stats();
  out.log = injector->log();
  out.final_tier = pipe.tier();
  return out;
}

TEST(ResilientPipeline, FaultFreeRunMatchesRawPipeline) {
  const SyntheticScene scene = quiet_scene();
  ResilientPipeline<double> resilient{gpu_config(), ResilienceConfig{}};
  GpuMogPipeline<double> raw{gpu_config()};
  FrameU8 fg_r, fg_g;
  for (int t = 0; t < 20; ++t) {
    ASSERT_TRUE(resilient.process(scene.frame(t), fg_r));
    ASSERT_TRUE(raw.process(scene.frame(t), fg_g));
    ASSERT_EQ(fg_r, fg_g) << "frame " << t;
  }
  const RecoveryStats& s = resilient.recovery_stats();
  EXPECT_EQ(s.frames_in, 20u);
  EXPECT_EQ(s.frames_absorbed, 20u);
  EXPECT_EQ(s.masks_delivered, 20u);
  EXPECT_EQ(s.masks_reused, 0u);
  EXPECT_EQ(s.retries, 0u);
  EXPECT_EQ(resilient.tier(), ExecutionTier::kGpuDirect);
}

TEST(ResilientPipeline, ReplayIsDeterministic) {
  FaultConfig faults;
  faults.seed = 1234;
  faults.upload_fault_prob = 0.05;
  faults.download_fault_prob = 0.05;
  faults.frame_corrupt_prob = 0.02;
  faults.frame_drop_prob = 0.01;
  ResilienceConfig res;

  const RunResult a = run(faults, res, 120);
  const RunResult b = run(faults, res, 120);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.log, b.log);
  ASSERT_EQ(a.masks.size(), b.masks.size());
  for (std::size_t i = 0; i < a.masks.size(); ++i)
    ASSERT_EQ(a.masks[i], b.masks[i]) << "mask " << i;

  // A different seed takes a different recovery path.
  FaultConfig other = faults;
  other.seed = 4321;
  const RunResult c = run(other, res, 120);
  EXPECT_NE(c.log, a.log);
}

// The headline acceptance test: 5% transfer faults + 1% frame corruption
// over 200+ frames completes with no uncaught exception, and the masks stay
// faithful — mismatches vs the fault-free run are caused only by the bad
// frames themselves, never by the transfer-fault recovery.
TEST(ResilientPipeline, SustainedFaultsKeepMasksFaithful) {
  FaultConfig faults;
  faults.seed = 99;
  faults.upload_fault_prob = 0.05;
  faults.download_fault_prob = 0.05;
  faults.frame_corrupt_prob = 0.01;
  ResilienceConfig res;
  res.retry.max_attempts = 6;  // survives runs of bad luck at 5%
  const int kFrames = 220;

  const RunResult faulty = run(faults, res, kFrames);

  EXPECT_EQ(faulty.stats.frames_in, static_cast<std::uint64_t>(kFrames));
  // One mask per frame: salvage fills in for every lost or bad frame.
  ASSERT_EQ(faulty.masks.size(), static_cast<std::size_t>(kFrames));
  EXPECT_GT(faulty.stats.transfer_faults, 0u);
  EXPECT_GT(faulty.stats.retries, 0u);
  EXPECT_GT(faulty.stats.frames_corrupt, 0u);
  EXPECT_EQ(faulty.stats.frames_lost, 0u);  // retries absorbed every fault
  EXPECT_EQ(faulty.final_tier, ExecutionTier::kGpuDirect);  // no degradation

  // Reference A: the same frame-level faults, but a fault-free device. The
  // per-site RNG streams keep the frame faults identical, so retry/resume
  // recovery must be *exact*: bit-identical masks on every frame.
  FaultConfig frame_faults_only = faults;
  frame_faults_only.upload_fault_prob = 0.0;
  frame_faults_only.download_fault_prob = 0.0;
  const RunResult reference = run(frame_faults_only, res, kFrames);
  ASSERT_EQ(reference.masks.size(), static_cast<std::size_t>(kFrames));
  EXPECT_EQ(reference.stats.frames_corrupt, faulty.stats.frames_corrupt);
  for (int t = 0; t < kFrames; ++t)
    ASSERT_EQ(faulty.masks[static_cast<std::size_t>(t)],
              reference.masks[static_cast<std::size_t>(t)])
        << "transfer-fault recovery changed the mask of frame " << t;

  // Reference B: the fully fault-free run. Divergence can begin only at the
  // first injected frame fault (a salvaged mask + one skipped update); every
  // frame before that must match exactly.
  const RunResult clean = run(FaultConfig{}, ResilienceConfig{}, kFrames);
  ASSERT_EQ(clean.masks.size(), static_cast<std::size_t>(kFrames));
  int first_frame_fault = kFrames;
  {
    FaultInjector probe{frame_faults_only};  // deterministic replay
    const SyntheticScene scene = quiet_scene();
    for (int t = 0; t < kFrames; ++t) {
      FrameU8 f = scene.frame(t);
      if (probe.apply_frame_faults(f) != fault::FrameFault::kNone) {
        first_frame_fault = t;
        break;
      }
    }
  }
  ASSERT_LT(first_frame_fault, kFrames);  // 1% over 220 frames: some fired
  for (int t = 0; t < first_frame_fault; ++t)
    ASSERT_EQ(faulty.masks[static_cast<std::size_t>(t)],
              clean.masks[static_cast<std::size_t>(t)])
        << "mask " << t << " diverged before any fault was injected";
}

TEST(ResilientPipeline, DegradationLadderReachesCpuAndKeepsProducing) {
  // Permanent launch failure: retries can never succeed on either GPU tier,
  // so the ladder must walk tiled -> direct -> CPU and stay functional.
  FaultConfig faults;
  faults.launch_fault_prob = 1.0;
  ResilienceConfig res;
  res.retry.max_attempts = 2;
  res.degrade_after_failures = 2;

  const SyntheticScene scene = quiet_scene();
  auto injector = std::make_shared<FaultInjector>(faults);
  ResilientPipeline<double> pipe{gpu_config(/*tiled=*/true), res, injector};
  EXPECT_EQ(pipe.tier(), ExecutionTier::kTiledGpu);

  FrameU8 fg;
  int delivered = 0;
  for (int t = 0; t < 40; ++t)
    if (pipe.process(scene.frame(t), fg)) {
      ++delivered;
      EXPECT_EQ(fg.width(), kW);
    }
  EXPECT_EQ(pipe.tier(), ExecutionTier::kCpuSerial);
  EXPECT_EQ(pipe.gpu_pipeline(), nullptr);
  EXPECT_EQ(pipe.recovery_stats().degradations, 2u);
  EXPECT_GT(pipe.recovery_stats().launch_faults, 0u);
  // Once on the CPU tier every frame yields a real mask again.
  EXPECT_GT(delivered, 10);
  const FrameU8 bg = pipe.background();
  EXPECT_EQ(bg.width(), kW);
}

TEST(ResilientPipeline, WatchdogRollsBackPoisonedModel) {
  // Pin exactly one model-memory fault shortly after the first checkpoint;
  // the next watchdog scan must detect the NaN and restore the checkpoint.
  FaultConfig faults;
  faults.schedule.push_back({FaultSite::kModelMemory, 24});
  ResilienceConfig res;
  res.checkpoint_interval = 16;
  res.health_check_interval = 8;
  res.health_check_stride = 1;

  const RunResult r = run(faults, res, 64);
  EXPECT_EQ(r.log.model_corruptions, 1u);
  EXPECT_GE(r.stats.checkpoints, 1u);
  EXPECT_EQ(r.stats.rollbacks, 1u);
  // The run ends healthy: rollback purged the NaN.
  const RunResult replay = run(faults, res, 64);
  EXPECT_EQ(replay.stats, r.stats);
}

TEST(ResilientPipeline, CheckpointsToDiskWithValidCrc) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mog_resilient_ckpt.mogm")
          .string();
  ResilienceConfig res;
  res.checkpoint_interval = 10;
  res.checkpoint_path = path;

  const SyntheticScene scene = quiet_scene();
  ResilientPipeline<double> pipe{gpu_config(), res};
  FrameU8 fg;
  for (int t = 0; t < 25; ++t) pipe.process(scene.frame(t), fg);
  EXPECT_EQ(pipe.recovery_stats().checkpoints, 2u);
  ASSERT_TRUE(std::filesystem::exists(path));
  // The snapshot round-trips through the CRC-checked loader.
  const MogModel<double> loaded = load_model<double>(path, MogParams{});
  EXPECT_EQ(loaded.width(), kW);
  EXPECT_EQ(loaded.height(), kH);
  std::filesystem::remove(path);
}

TEST(ResilientPipeline, TiledFlushRecoversPartialGroup) {
  FaultConfig faults;
  // Fail the very first download attempt of the flushed partial group; the
  // retry inside flush() must resume and still deliver the masks.
  faults.schedule.push_back({FaultSite::kDownload, 0});
  ResilienceConfig res;

  const SyntheticScene scene = quiet_scene();
  auto injector = std::make_shared<FaultInjector>(faults);
  ResilientPipeline<double> pipe{gpu_config(/*tiled=*/true), res, injector};
  FrameU8 fg;
  // Two frames buffered: less than the group of 4, so nothing delivered yet.
  EXPECT_FALSE(pipe.process(scene.frame(0), fg));
  EXPECT_FALSE(pipe.process(scene.frame(1), fg));
  std::vector<FrameU8> rest;
  EXPECT_EQ(pipe.flush(rest), 2);
  EXPECT_EQ(rest.size(), 2u);
  EXPECT_EQ(pipe.recovery_stats().transfer_faults, 1u);
  EXPECT_EQ(pipe.recovery_stats().retries, 1u);
}

TEST(ResilientPipeline, DroppedFramesReuseLastMask) {
  FaultConfig faults;
  faults.schedule.push_back({FaultSite::kFrameDrop, 5});
  faults.schedule.push_back({FaultSite::kFrameTruncate, 7});
  ResilienceConfig res;

  const RunResult r = run(faults, res, 12);
  EXPECT_EQ(r.stats.frames_dropped, 1u);
  EXPECT_EQ(r.stats.frames_truncated, 1u);
  EXPECT_EQ(r.stats.masks_reused, 2u);
  EXPECT_EQ(r.stats.frames_absorbed, 10u);
  ASSERT_EQ(r.masks.size(), 12u);
  // The dropped frame's mask is a byte-identical reuse of its predecessor.
  EXPECT_EQ(r.masks[5], r.masks[4]);
}

TEST(ResilientPipeline, RejectsInvalidResilienceConfig) {
  ResilienceConfig res;
  res.retry.max_attempts = 0;
  EXPECT_THROW((ResilientPipeline<double>{gpu_config(), res}), Error);
  res = ResilienceConfig{};
  res.weight_drift_tolerance = 0.0;
  EXPECT_THROW((ResilientPipeline<double>{gpu_config(), res}), Error);
  res = ResilienceConfig{};
  res.frame_deadline_seconds = -0.5;
  EXPECT_THROW((ResilientPipeline<double>{gpu_config(), res}), Error);
}

TEST(ResilientPipeline, FrameDeadlineCapsRetryBackoffPerFrame) {
  // Permanent launch failure with a deep retry budget: without a deadline
  // every frame walks the whole exponential ladder; with one, the frame is
  // abandoned as soon as the next delay would blow the cap. The stream keeps
  // delivering (salvaged masks) instead of stalling on a sick device.
  FaultConfig faults;
  faults.launch_fault_prob = 1.0;
  ResilienceConfig res;
  res.retry.max_attempts = 8;
  res.degrade_after_failures = 50;  // keep the ladder out of the picture

  constexpr int kFrames = 6;
  const RunResult unlimited = run(faults, res, kFrames);
  EXPECT_EQ(unlimited.stats.deadline_exceeded, 0u);
  // All 7 retries per frame: backoff 1+2+4+8+16+32+64 ms.
  EXPECT_EQ(unlimited.stats.retries, static_cast<std::uint64_t>(7 * kFrames));
  EXPECT_NEAR(unlimited.stats.backoff_seconds, kFrames * 127e-3, 1e-9);

  res.frame_deadline_seconds = 4e-3;
  const RunResult capped = run(faults, res, kFrames);
  // Retries 1 (1 ms) and 2 (2 ms) fit under 4 ms; retry 3 (4 ms) would
  // accumulate 7 ms and is cut off.
  EXPECT_EQ(capped.stats.deadline_exceeded,
            static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(capped.stats.retries, static_cast<std::uint64_t>(2 * kFrames));
  EXPECT_NEAR(capped.stats.backoff_seconds, kFrames * 3e-3, 1e-9);
  EXPECT_LT(capped.stats.backoff_seconds, unlimited.stats.backoff_seconds);

  // Abandoning early must not cost delivery: both runs produce a mask per
  // frame (salvaged), and the capped run replays deterministically.
  EXPECT_EQ(capped.masks.size(), unlimited.masks.size());
  const RunResult replay = run(faults, res, kFrames);
  EXPECT_EQ(replay.stats, capped.stats);
}

TEST(ResilientPipeline, FrameDeadlineStillAllowsRecoveryWithinBudget) {
  // A deadline generous enough for the whole ladder changes nothing: same
  // recovery path, same masks as the unlimited run under transient faults.
  FaultConfig faults;
  faults.seed = 77;
  faults.upload_fault_prob = 0.05;
  faults.download_fault_prob = 0.05;
  ResilienceConfig res;
  const RunResult unlimited = run(faults, res, 80);
  res.frame_deadline_seconds = 10.0;
  const RunResult generous = run(faults, res, 80);
  EXPECT_EQ(generous.stats, unlimited.stats);
  ASSERT_EQ(generous.masks.size(), unlimited.masks.size());
  for (std::size_t i = 0; i < generous.masks.size(); ++i)
    ASSERT_EQ(generous.masks[i], unlimited.masks[i]) << "mask " << i;
}

}  // namespace
}  // namespace mog
