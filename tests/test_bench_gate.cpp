// Perf-regression gate: pass/fail verdicts, tolerance bands (default,
// per-metric override, absolute slack), wall-clock skipping, the non-fatal
// --warn-wall tripwire, and schema guarding.
#include <gtest/gtest.h>

#include "mog/telemetry/bench_report.hpp"
#include "mog/telemetry/gate.hpp"

namespace mog::telemetry {
namespace {

/// One-case report with a single "speedup" metric.
Json report(double speedup) {
  BenchReporter rep{"unit"};
  rep.add_case("A").metric("speedup", speedup);
  return rep.to_json();
}

TEST(BenchGate, IdenticalReportsPass) {
  const GateResult r = gate_reports(report(96.0), report(96.0));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.cases_compared, 1);
  EXPECT_EQ(r.metrics_compared, 1);
}

TEST(BenchGate, MovementWithinDefaultBandPasses) {
  // Default band is 2%; 1% moves pass in both directions.
  EXPECT_TRUE(gate_reports(report(100.0), report(101.0)).ok());
  EXPECT_TRUE(gate_reports(report(100.0), report(99.0)).ok());
}

TEST(BenchGate, MovementOutsideBandFailsSymmetrically) {
  // The simulator is deterministic: an *improvement* outside the band is
  // also a model change and must fail until the baseline is regenerated.
  for (const double fresh : {103.0, 97.0}) {
    const GateResult r = gate_reports(report(100.0), report(fresh));
    ASSERT_FALSE(r.ok()) << "fresh=" << fresh;
    ASSERT_EQ(r.failures.size(), 1u);
    const GateFinding& f = r.failures[0];
    EXPECT_EQ(f.kind, GateFinding::Kind::kRegression);
    EXPECT_EQ(f.case_name, "A");
    EXPECT_EQ(f.metric, "speedup");
    EXPECT_DOUBLE_EQ(f.baseline, 100.0);
    EXPECT_DOUBLE_EQ(f.fresh, fresh);
    EXPECT_NEAR(f.rel_delta, 0.03, 1e-12);
    EXPECT_FALSE(f.describe().empty());
  }
}

TEST(BenchGate, ExactBoundaryPasses) {
  EXPECT_TRUE(gate_reports(report(100.0), report(102.0)).ok());
  EXPECT_FALSE(gate_reports(report(100.0), report(102.1)).ok());
}

TEST(BenchGate, OptionsWidenTheDefaultBand) {
  GateOptions opt;
  opt.default_rel_tol = 0.10;
  EXPECT_TRUE(gate_reports(report(100.0), report(108.0), opt).ok());
}

TEST(BenchGate, BaselineTolerancesOverrideTheDefault) {
  BenchReporter base{"unit"};
  base.set_tolerance("fg_disagreement", 0.25);
  base.add_case("A").metric("fg_disagreement", 100.0).metric("speedup", 50.0);
  BenchReporter fresh{"unit"};
  fresh.add_case("A").metric("fg_disagreement", 120.0).metric("speedup", 50.0);
  // 20% movement: outside the 2% default but inside the embedded 25% band.
  EXPECT_TRUE(gate_reports(base.to_json(), fresh.to_json()).ok());

  BenchReporter worse{"unit"};
  worse.add_case("A").metric("fg_disagreement", 130.0).metric("speedup", 50.0);
  EXPECT_FALSE(gate_reports(base.to_json(), worse.to_json()).ok());
}

TEST(BenchGate, ZeroBaselinePassesWithinAbsoluteSlack) {
  // Relative bands are undefined at 0; abs_tol carries exact zeros.
  EXPECT_TRUE(gate_reports(report(0.0), report(0.0)).ok());
  EXPECT_FALSE(gate_reports(report(0.0), report(0.001)).ok());
}

TEST(BenchGate, MissingCaseFails) {
  BenchReporter fresh{"unit"};
  fresh.add_case("B").metric("speedup", 96.0);
  const GateResult r = gate_reports(report(96.0), fresh.to_json());
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].kind, GateFinding::Kind::kMissingCase);
  EXPECT_EQ(r.failures[0].case_name, "A");
}

TEST(BenchGate, MissingMetricFails) {
  BenchReporter fresh{"unit"};
  fresh.add_case("A").metric("occupancy", 0.45);
  const GateResult r = gate_reports(report(96.0), fresh.to_json());
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].kind, GateFinding::Kind::kMissingMetric);
  EXPECT_EQ(r.failures[0].metric, "speedup");
}

TEST(BenchGate, ExtraFreshMetricsAndCasesAreIgnored) {
  BenchReporter fresh{"unit"};
  fresh.add_case("A").metric("speedup", 96.0).metric("new_metric", 1.0);
  fresh.add_case("Z").metric("anything", 7.0);
  EXPECT_TRUE(gate_reports(report(96.0), fresh.to_json()).ok());
}

TEST(BenchGate, WallClockMetricsAreSkippedUnlessRequested) {
  BenchReporter base{"unit"};
  base.add_case("A").metric("wall_ms", 100.0);
  BenchReporter fresh{"unit"};
  fresh.add_case("A").metric("wall_ms", 500.0);

  const GateResult skipped = gate_reports(base.to_json(), fresh.to_json());
  EXPECT_TRUE(skipped.ok());
  EXPECT_EQ(skipped.metrics_compared, 0);
  EXPECT_EQ(skipped.metrics_skipped, 1);

  GateOptions opt;
  opt.include_wall = true;
  EXPECT_FALSE(gate_reports(base.to_json(), fresh.to_json(), opt).ok());
}

TEST(BenchGate, WarnWallFlagsGrossSlowdownWithoutFailing) {
  BenchReporter base{"unit"};
  base.add_case("A").metric("wall_ms", 100.0).metric("speedup", 96.0);
  BenchReporter fresh{"unit"};
  fresh.add_case("A").metric("wall_ms", 350.0).metric("speedup", 96.0);

  GateOptions opt;
  opt.warn_wall_factor = 3.0;
  const GateResult r = gate_reports(base.to_json(), fresh.to_json(), opt);
  EXPECT_TRUE(r.ok());  // warnings never fail the gate
  EXPECT_EQ(r.metrics_skipped, 1);
  ASSERT_EQ(r.warnings.size(), 1u);
  const GateFinding& w = r.warnings[0];
  EXPECT_EQ(w.kind, GateFinding::Kind::kWallSlowdown);
  EXPECT_EQ(w.case_name, "A");
  EXPECT_EQ(w.metric, "wall_ms");
  EXPECT_DOUBLE_EQ(w.baseline, 100.0);
  EXPECT_DOUBLE_EQ(w.fresh, 350.0);
  EXPECT_DOUBLE_EQ(w.tolerance, 3.0);
  EXPECT_FALSE(w.describe().empty());

  // The comparison row carries the verdict for the machine-readable diff.
  const GateComparison& row = r.comparisons[0];
  EXPECT_EQ(row.metric, "wall_ms");
  EXPECT_EQ(row.verdict, "warn_wall");

  const Json doc = gate_result_to_json("unit", r);
  EXPECT_TRUE(doc.find("ok")->as_bool());
  ASSERT_EQ(doc.find("warnings")->as_array().size(), 1u);
}

TEST(BenchGate, WarnWallStaysQuietWithinTheFactor) {
  BenchReporter base{"unit"};
  base.add_case("A").metric("wall_ms", 100.0);
  BenchReporter fresh{"unit"};
  fresh.add_case("A").metric("wall_ms", 299.0);  // < 3x: machine noise

  GateOptions opt;
  opt.warn_wall_factor = 3.0;
  const GateResult r = gate_reports(base.to_json(), fresh.to_json(), opt);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.warnings.empty());
  EXPECT_EQ(r.comparisons[0].verdict, "skipped_wall");
}

TEST(BenchGate, WarnWallIgnoresZeroBaselines) {
  // A 0 wall baseline (sub-ms case rounded down) has no meaningful factor;
  // the tripwire must not fire on it.
  BenchReporter base{"unit"};
  base.add_case("A").metric("wall_ms", 0.0);
  BenchReporter fresh{"unit"};
  fresh.add_case("A").metric("wall_ms", 50.0);

  GateOptions opt;
  opt.warn_wall_factor = 3.0;
  const GateResult r = gate_reports(base.to_json(), fresh.to_json(), opt);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.warnings.empty());
}

TEST(BenchGate, SchemaVersionMismatchFails) {
  Json fresh = report(96.0);
  fresh.set("schema_version", Json{BenchReporter::kSchemaVersion + 1});
  const GateResult r = gate_reports(report(96.0), fresh);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failures[0].kind, GateFinding::Kind::kSchemaMismatch);
}

TEST(BenchGate, ComparisonRowsRecordEveryBaselineMetric) {
  BenchReporter base{"unit"};
  base.add_case("A")
      .metric("speedup", 100.0)
      .metric("wall_ms", 5.0)
      .metric("gone", 1.0);
  BenchReporter fresh{"unit"};
  fresh.add_case("A").metric("speedup", 110.0).metric("wall_ms", 9.0);

  const GateResult r = gate_reports(base.to_json(), fresh.to_json());
  ASSERT_EQ(r.comparisons.size(), 3u);

  const GateComparison& regressed = r.comparisons[0];
  EXPECT_EQ(regressed.metric, "speedup");
  EXPECT_EQ(regressed.verdict, "fail");
  EXPECT_DOUBLE_EQ(regressed.baseline, 100.0);
  EXPECT_DOUBLE_EQ(regressed.fresh, 110.0);
  EXPECT_NEAR(regressed.rel_delta, 0.10, 1e-12);

  const GateComparison& wall = r.comparisons[1];
  EXPECT_EQ(wall.metric, "wall_ms");
  EXPECT_EQ(wall.verdict, "skipped_wall");
  EXPECT_DOUBLE_EQ(wall.fresh, 9.0);  // captured even though not gated

  const GateComparison& missing = r.comparisons[2];
  EXPECT_EQ(missing.metric, "gone");
  EXPECT_EQ(missing.verdict, "missing");
}

TEST(BenchGate, PassingComparisonRowKeepsPassVerdict) {
  const GateResult r = gate_reports(report(100.0), report(101.0));
  ASSERT_EQ(r.comparisons.size(), 1u);
  EXPECT_EQ(r.comparisons[0].verdict, "pass");
  EXPECT_NEAR(r.comparisons[0].rel_delta, 0.01, 1e-12);
}

TEST(BenchGate, ResultToJsonCarriesTheDiff) {
  const GateResult r = gate_reports(report(100.0), report(110.0));
  const Json doc = gate_result_to_json("BENCH_unit.json", r);

  EXPECT_EQ(doc.find("label")->as_string(), "BENCH_unit.json");
  EXPECT_FALSE(doc.find("ok")->as_bool());
  const Json::Array& rows = doc.find("comparisons")->as_array();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].find("verdict")->as_string(), "fail");
  EXPECT_DOUBLE_EQ(rows[0].find("baseline")->as_number(), 100.0);
  EXPECT_DOUBLE_EQ(rows[0].find("fresh")->as_number(), 110.0);
  EXPECT_NEAR(rows[0].find("rel_delta")->as_number(), 0.10, 1e-12);
  ASSERT_EQ(doc.find("failures")->as_array().size(), 1u);

  // The document must survive dump -> parse (what the CI artifact is).
  const Json reparsed = Json::parse(doc.dump(2));
  EXPECT_EQ(reparsed.find("comparisons")->as_array().size(), 1u);
}

TEST(BenchGate, ResultToJsonRendersInfiniteRelDeltaAsNull) {
  // Baseline 0 with a nonzero fresh value has no relative band; the JSON
  // artifact must still parse (no bare Inf tokens).
  const GateResult r = gate_reports(report(0.0), report(5.0));
  const Json doc = gate_result_to_json("zero", r);
  const Json::Array& rows = doc.find("comparisons")->as_array();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].find("rel_delta")->is_null());
  EXPECT_NO_THROW(Json::parse(doc.dump()));
}

TEST(BenchGate, RoundTripThroughTextStaysEqual) {
  // The gate sees files, not in-memory objects: dump -> parse must not
  // perturb any metric (round-trip precision of the number formatter).
  BenchReporter rep{"unit"};
  rep.add_case("A")
      .metric("speedup", 96.123456789012345)
      .metric("tiny", 1.0000000000000002)
      .metric("big_count", 9007199254740992.0);
  const Json original = rep.to_json();
  const Json reparsed = Json::parse(original.dump(2));
  EXPECT_TRUE(gate_reports(original, reparsed).ok());
}

}  // namespace
}  // namespace mog::telemetry
