// Tests for the MoG device kernels: functional equivalence against the CPU
// reference across all optimization levels, the mechanistic counter
// relationships the paper's figures rest on, device-state round trips, and
// the tiled kernel.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "mog/cpu/serial_mog.hpp"
#include "mog/cpu/simd_mog.hpp"
#include "mog/kernels/mog_kernels.hpp"
#include "mog/kernels/tiled_kernel.hpp"
#include "mog/metrics/confusion.hpp"
#include "mog/video/scene.hpp"

namespace mog {
namespace {

using kernels::DeviceMogState;
using kernels::OptLevel;
using kernels::ParamLayout;

constexpr int kW = 64, kH = 48;

SceneConfig scene_config() {
  SceneConfig cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.seed = 77;
  return cfg;
}

struct GpuRun {
  gpusim::Device device;
  std::unique_ptr<DeviceMogState<double>> state;
  gpusim::DevSpan<std::uint8_t> frame_buf, fg_buf;
  TypedMogParams<double> tp;
  OptLevel level;

  explicit GpuRun(OptLevel lvl, const MogParams& params = {})
      : tp(TypedMogParams<double>::from(params)), level(lvl) {
    state = std::make_unique<DeviceMogState<double>>(
        device, kW, kH, params,
        kernels::uses_aos_layout(lvl) ? ParamLayout::kAoS
                                      : ParamLayout::kSoA);
    frame_buf = device.memory().alloc<std::uint8_t>(state->num_pixels());
    fg_buf = device.memory().alloc<std::uint8_t>(state->num_pixels());
  }

  gpusim::KernelStats step(const FrameU8& frame, FrameU8& fg) {
    gpusim::copy_to_device(frame_buf, frame.data(), frame.size());
    auto stats = kernels::launch_mog_frame<double>(device, *state, frame_buf,
                                                   fg_buf, tp, level);
    if (!fg.same_shape(frame)) fg = FrameU8(kW, kH);
    gpusim::copy_from_device(fg.data(), fg_buf, fg.size());
    return stats;
  }
};

class KernelLevels : public ::testing::TestWithParam<OptLevel> {};

TEST_P(KernelLevels, MasksTrackCpuReference) {
  const OptLevel level = GetParam();
  const SyntheticScene scene{scene_config()};
  SerialMog<double> cpu{kW, kH};
  GpuRun gpu{level};
  FrameU8 cpu_fg, gpu_fg;
  double disagreement = 0;
  for (int t = 0; t < 20; ++t) {
    const FrameU8 f = scene.frame(t);
    cpu.apply(f, cpu_fg);
    gpu.step(f, gpu_fg);
    if (t >= 5) disagreement += mask_disagreement(cpu_fg, gpu_fg);
  }
  // Kernels use fused multiply-add and (for F) a rewritten diff; decisions
  // may flip only on a small fraction of threshold-straddling pixels.
  EXPECT_LT(disagreement / 15, 0.02) << kernels::to_string(level);
}

TEST_P(KernelLevels, ModelStateStaysFiniteAndNormalized) {
  const OptLevel level = GetParam();
  const SyntheticScene scene{scene_config()};
  GpuRun gpu{level};
  FrameU8 fg;
  for (int t = 0; t < 10; ++t) gpu.step(scene.frame(t), fg);
  const MogModel<double> m = gpu.state->download(MogParams{});
  for (std::size_t p = 0; p < m.num_pixels(); ++p) {
    double sum = 0;
    for (int k = 0; k < m.num_components(); ++k) {
      ASSERT_TRUE(std::isfinite(m.weight(p, k)));
      ASSERT_TRUE(std::isfinite(m.mean(p, k)));
      ASSERT_TRUE(std::isfinite(m.sd(p, k)));
      sum += m.weight(p, k);
    }
    ASSERT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST_P(KernelLevels, StaticBackgroundConverges) {
  SceneConfig cfg = scene_config();
  cfg.num_objects = 0;
  cfg.texture_fraction = 0.0;
  cfg.flicker_regions = false;
  cfg.waving_region = false;
  const SyntheticScene scene{cfg};
  GpuRun gpu{GetParam()};
  FrameU8 fg;
  for (int t = 0; t < 25; ++t) gpu.step(scene.frame(t), fg);
  std::size_t n_fg = 0;
  for (std::size_t i = 0; i < fg.size(); ++i) n_fg += (fg[i] != 0);
  EXPECT_LT(static_cast<double>(n_fg) / static_cast<double>(fg.size()), 0.01);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, KernelLevels,
                         ::testing::ValuesIn(kernels::kAllLevels),
                         [](const auto& suite_info) {
                           return std::string{kernels::to_string(suite_info.param)};
                         });

TEST(KernelVariants, BandCProduceIdenticalOutputAndCounters) {
  // C differs from B only in the transfer schedule; the kernel is the same.
  const SyntheticScene scene{scene_config()};
  GpuRun b{OptLevel::kB}, c{OptLevel::kC};
  FrameU8 fg_b, fg_c;
  for (int t = 0; t < 6; ++t) {
    const FrameU8 f = scene.frame(t);
    const auto sb = b.step(f, fg_b);
    const auto sc = c.step(f, fg_c);
    ASSERT_EQ(fg_b, fg_c);
    ASSERT_EQ(sb.issue_cycles, sc.issue_cycles);
    ASSERT_EQ(sb.total_transactions(), sc.total_transactions());
  }
}

TEST(KernelVariants, AosAndSoaAgreeFunctionally) {
  const SyntheticScene scene{scene_config()};
  GpuRun a{OptLevel::kA}, b{OptLevel::kB};
  FrameU8 fg_a, fg_b;
  for (int t = 0; t < 8; ++t) {
    const FrameU8 f = scene.frame(t);
    a.step(f, fg_a);
    b.step(f, fg_b);
    ASSERT_EQ(fg_a, fg_b) << "layout must not change results, frame " << t;
  }
}

/// Accumulate per-frame stats over a few frames of the standard scene.
gpusim::KernelStats collect(OptLevel level, int frames = 8,
                            const MogParams& params = {}) {
  const SyntheticScene scene{scene_config()};
  GpuRun gpu{level, params};
  FrameU8 fg;
  gpusim::KernelStats total;
  for (int t = 0; t < frames; ++t) total += gpu.step(scene.frame(t), fg);
  return total.averaged_over(static_cast<std::uint64_t>(frames));
}

TEST(KernelCounters, CoalescingSlashesTransactions) {
  // Fig. 6a: the AoS layout inflates both load and store transactions.
  const auto a = collect(OptLevel::kA);
  const auto b = collect(OptLevel::kB);
  EXPECT_GT(a.load_transactions, 5 * b.load_transactions);
  EXPECT_GT(a.store_transactions, 2 * b.store_transactions);
  EXPECT_LT(a.memory_access_efficiency(), 0.25);
  EXPECT_GT(b.memory_access_efficiency(), 0.6);
}

TEST(KernelCounters, SortRemovalCutsBranches) {
  // Fig. 7a: D executes fewer branches than C and fewer divergent ones.
  const auto c = collect(OptLevel::kC);
  const auto d = collect(OptLevel::kD);
  EXPECT_LT(d.branches_executed, c.branches_executed);
  EXPECT_LT(d.branches_divergent, c.branches_divergent);
}

TEST(KernelCounters, PredicationLiftsBranchEfficiency) {
  // Fig. 7a: E's branch efficiency approaches 100%.
  const auto d = collect(OptLevel::kD);
  const auto e = collect(OptLevel::kE);
  EXPECT_GT(e.branch_efficiency(), d.branch_efficiency());
  EXPECT_GT(e.branch_efficiency(), 0.97);
}

TEST(KernelCounters, PredicationLiftsMemoryEfficiency) {
  // Fig. 7b: unconditional stores use every fetched byte.
  const auto d = collect(OptLevel::kD);
  const auto e = collect(OptLevel::kE);
  EXPECT_GT(e.memory_access_efficiency(), d.memory_access_efficiency());
  EXPECT_GT(e.memory_access_efficiency(), 0.9);
  // Masked stores pay ECC read-modify-write; predicated full-warp stores
  // avoid almost all of it (only virtual-component writes remain masked).
  EXPECT_GT(d.rmw_transactions, 5 * e.rmw_transactions);
}

TEST(KernelCounters, RegisterReductionOrdering) {
  // §IV-C register story: the sorted variants are the hungriest, F is the
  // leanest, E sits above D (predication temporaries).
  const auto b = collect(OptLevel::kB);
  const auto d = collect(OptLevel::kD);
  const auto e = collect(OptLevel::kE);
  const auto f = collect(OptLevel::kF);
  EXPECT_GE(b.regs_per_thread, d.regs_per_thread);
  EXPECT_GT(e.regs_per_thread, f.regs_per_thread);
  EXPECT_LE(f.regs_per_thread, d.regs_per_thread);
}

TEST(KernelCounters, FiveGaussiansCostMore) {
  MogParams p5;
  p5.num_components = 5;
  const auto k3 = collect(OptLevel::kF);
  const auto k5 = collect(OptLevel::kF, 8, p5);
  EXPECT_GT(k5.issue_cycles, k3.issue_cycles);
  EXPECT_GT(k5.regs_per_thread, k3.regs_per_thread);
  EXPECT_GT(k5.bytes_transferred(), k3.bytes_transferred());
}

TEST(KernelCounters, WarpsCoverEveryPixel) {
  const auto f = collect(OptLevel::kF, 1);
  EXPECT_EQ(f.num_warps, (kW * kH + 31) / 32);
  EXPECT_EQ(f.threads_per_block, 128);
}

TEST(DeviceState, UploadDownloadRoundTripBothLayouts) {
  for (const ParamLayout layout : {ParamLayout::kAoS, ParamLayout::kSoA}) {
    gpusim::Device dev;
    MogParams params;
    DeviceMogState<double> state{dev, 16, 8, params, layout};
    MogModel<double> m{16, 8, params};
    for (std::size_t p = 0; p < m.num_pixels(); ++p)
      for (int k = 0; k < m.num_components(); ++k) {
        m.weight(p, k) = 0.1 + static_cast<double>(k);
        m.mean(p, k) = static_cast<double>(p % 251);
        m.sd(p, k) = 5.0 + k;
      }
    state.upload(m);
    const MogModel<double> back = state.download(params);
    for (std::size_t p = 0; p < m.num_pixels(); ++p)
      for (int k = 0; k < m.num_components(); ++k) {
        ASSERT_EQ(back.weight(p, k), m.weight(p, k));
        ASSERT_EQ(back.mean(p, k), m.mean(p, k));
        ASSERT_EQ(back.sd(p, k), m.sd(p, k));
      }
  }
}

TEST(DeviceState, LevelLayoutMismatchIsRejected) {
  gpusim::Device dev;
  MogParams params;
  DeviceMogState<double> soa{dev, 16, 8, params, ParamLayout::kSoA};
  auto frame = dev.memory().alloc<std::uint8_t>(128);
  auto fg = dev.memory().alloc<std::uint8_t>(128);
  const auto tp = TypedMogParams<double>::from(params);
  EXPECT_THROW(kernels::launch_mog_frame<double>(dev, soa, frame, fg, tp,
                                                 OptLevel::kA),
               Error);
}

// ---------------------------------------------------------------------------
// Tiled kernel
// ---------------------------------------------------------------------------

struct TiledRun {
  gpusim::Device device;
  std::unique_ptr<DeviceMogState<double>> state;
  std::vector<gpusim::DevSpan<std::uint8_t>> frames, fgs;
  TypedMogParams<double> tp;
  kernels::TiledConfig cfg;

  explicit TiledRun(int group, int tile = 64)
      : tp(TypedMogParams<double>::from(MogParams{})) {
    cfg.frame_group = group;
    cfg.tile_pixels = tile;
    state = std::make_unique<DeviceMogState<double>>(
        device, kW, kH, MogParams{}, ParamLayout::kSoA);
    for (int i = 0; i < group; ++i) {
      frames.push_back(device.memory().alloc<std::uint8_t>(kW * kH));
      fgs.push_back(device.memory().alloc<std::uint8_t>(kW * kH));
    }
  }

  gpusim::KernelStats run_group(const SyntheticScene& scene, int t0, int g) {
    for (int i = 0; i < g; ++i) {
      const FrameU8 f = scene.frame(t0 + i);
      gpusim::copy_to_device(frames[static_cast<std::size_t>(i)], f.data(),
                             f.size());
    }
    return kernels::launch_tiled_group<double>(
        device, *state,
        std::span<const gpusim::DevSpan<std::uint8_t>>{frames.data(),
                                                       std::size_t(g)},
        std::span<const gpusim::DevSpan<std::uint8_t>>{fgs.data(),
                                                       std::size_t(g)},
        tp, cfg);
  }

  FrameU8 mask(int i) const {
    FrameU8 m(kW, kH);
    gpusim::copy_from_device(m.data(), fgs[static_cast<std::size_t>(i)],
                             m.size());
    return m;
  }
};

TEST(TiledKernel, MatchesUntiledVariantFClosely) {
  const SyntheticScene scene{scene_config()};
  GpuRun f_run{OptLevel::kF};
  TiledRun tiled{4};
  FrameU8 fg_f;
  double disagreement = 0;
  for (int t0 = 0; t0 < 16; t0 += 4) {
    tiled.run_group(scene, t0, 4);
    for (int i = 0; i < 4; ++i) {
      f_run.step(scene.frame(t0 + i), fg_f);
      if (t0 + i >= 4) disagreement += mask_disagreement(fg_f, tiled.mask(i));
    }
  }
  EXPECT_LT(disagreement / 12, 0.01);
}

TEST(TiledKernel, GroupSizeOneMatchesGroupSizeFourResults) {
  const SyntheticScene scene{scene_config()};
  TiledRun g1{1}, g4{4};
  for (int t = 0; t < 8; ++t) g1.run_group(scene, t, 1);
  for (int t0 = 0; t0 < 8; t0 += 4) g4.run_group(scene, t0, 4);
  // Model state must be identical: the grouping changes scheduling, not math.
  const MogModel<double> m1 = g1.state->download(MogParams{});
  const MogModel<double> m4 = g4.state->download(MogParams{});
  for (std::size_t i = 0; i < m1.weights().size(); ++i) {
    ASSERT_EQ(m1.weights()[i], m4.weights()[i]);
    ASSERT_EQ(m1.means()[i], m4.means()[i]);
    ASSERT_EQ(m1.sds()[i], m4.sds()[i]);
  }
}

TEST(TiledKernel, SharedFootprintAndOccupancy) {
  const SyntheticScene scene{scene_config()};
  TiledRun tiled{2, /*tile=*/64};
  const auto stats = tiled.run_group(scene, 0, 2);
  // 3 arrays x tile x K x sizeof(double)
  EXPECT_EQ(stats.shared_bytes_per_block, 3u * 64 * 3 * sizeof(double));
  EXPECT_GT(stats.shared_accesses, 0u);
}

TEST(TiledKernel, LargerGroupsAmortizeParameterTraffic) {
  const SyntheticScene scene{scene_config()};
  TiledRun g1{1}, g8{8};
  gpusim::KernelStats s1, s8;
  for (int t = 0; t < 8; ++t) s1 += g1.run_group(scene, t, 1);
  s8 = g8.run_group(scene, 0, 8);
  // Same 8 frames of work: the grouped run must move far fewer bytes.
  EXPECT_LT(s8.bytes_transferred(), s1.bytes_transferred() / 3);
}

TEST(TiledKernel, PartialTrailingGroupWorks) {
  const SyntheticScene scene{scene_config()};
  TiledRun tiled{8};
  const auto stats = tiled.run_group(scene, 0, 3);  // partial group of 3
  EXPECT_GT(stats.issue_cycles, 0u);
  FrameU8 m = tiled.mask(2);
  EXPECT_EQ(m.width(), kW);
}

TEST(TiledKernel, ValidatesConfiguration) {
  gpusim::Device dev;
  MogParams params;
  DeviceMogState<double> state{dev, 16, 8, params, ParamLayout::kSoA};
  const auto tp = TypedMogParams<double>::from(params);
  kernels::TiledConfig cfg;
  cfg.tile_pixels = 33;  // not a warp multiple
  EXPECT_THROW(cfg.validate(), Error);
  cfg = {};
  std::vector<gpusim::DevSpan<std::uint8_t>> none;
  EXPECT_THROW(kernels::launch_tiled_group<double>(
                   dev, state,
                   std::span<const gpusim::DevSpan<std::uint8_t>>{},
                   std::span<const gpusim::DevSpan<std::uint8_t>>{}, tp, cfg),
               Error);
}

}  // namespace
}  // namespace mog
