// Optimization step G: the fused mask post-processing epilogue.
//
// The contract under test is bit-exactness: at level G the pipeline's mask
// must equal validate_foreground() applied to the level-F raw mask —
// per byte, at any executor thread count, for full and ragged grids, and
// for the tiled variant. The unfused device chain (launch_mask_stage) must
// match the host stages individually. On top of equivalence, the launch
// and DRAM accounting that motivates the fusion is pinned: G spends
// strictly fewer launches and strictly fewer DRAM bytes per frame than
// level F running the same stages unfused.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "mog/common/rng.hpp"
#include "mog/kernels/postproc_kernels.hpp"
#include "mog/postproc/morphology.hpp"
#include "mog/pipeline/gpu_pipeline.hpp"
#include "mog/video/scene.hpp"

namespace mog {
namespace {

using kernels::MaskStageOp;
using kernels::OptLevel;

FrameU8 random_mask(int w, int h, double fg_fraction, std::uint64_t seed) {
  Rng rng{seed};
  FrameU8 m(w, h, 0);
  for (std::size_t i = 0; i < m.size(); ++i)
    m[i] = rng.chance(fg_fraction) ? 255 : 0;
  return m;
}

void expect_masks_equal(const FrameU8& got, const FrameU8& want,
                        const std::string& what) {
  ASSERT_TRUE(got.same_shape(want)) << what;
  for (int y = 0; y < got.height(); ++y)
    for (int x = 0; x < got.width(); ++x)
      ASSERT_EQ(got.at(x, y), want.at(x, y))
          << what << " first differs at (" << x << "," << y << ")";
}

// ---------------------------------------------------------------------------
// Kernel level: device stages vs the host postproc, byte for byte
// ---------------------------------------------------------------------------

FrameU8 device_fused(const FrameU8& raw, const ValidationConfig& cfg,
                     int executor_threads, int threads_per_block = 128) {
  gpusim::DeviceSpec spec;
  spec.executor_threads = executor_threads;
  gpusim::Device device{spec};
  const std::size_t n = raw.size();
  const auto in = device.memory().alloc<std::uint8_t>(n);
  const auto out = device.memory().alloc<std::uint8_t>(n);
  gpusim::copy_to_device(in, raw.data(), n);
  kernels::launch_fused_postproc(device, in, out, raw.width(), raw.height(),
                                 cfg, threads_per_block);
  FrameU8 cleaned(raw.width(), raw.height());
  gpusim::copy_from_device(cleaned.data(), out, n);
  return cleaned;
}

FrameU8 device_stage(const FrameU8& mask, MaskStageOp op,
                     int executor_threads) {
  gpusim::DeviceSpec spec;
  spec.executor_threads = executor_threads;
  gpusim::Device device{spec};
  const std::size_t n = mask.size();
  const auto in = device.memory().alloc<std::uint8_t>(n);
  const auto out = device.memory().alloc<std::uint8_t>(n);
  gpusim::copy_to_device(in, mask.data(), n);
  kernels::launch_mask_stage(device, in, out, mask.width(), mask.height(), op,
                             128);
  FrameU8 result(mask.width(), mask.height());
  gpusim::copy_from_device(result.data(), out, n);
  return result;
}

// Frame shapes chosen to hit every geometry case: block-aligned, ragged
// width (tile overhang), tiny frames narrower/shorter than one tile, and a
// total pixel count that leaves a ragged last warp in the unfused kernel.
const struct {
  int w, h;
} kShapes[] = {{64, 48}, {61, 17}, {33, 5}, {7, 9}, {32, 4}};

TEST(FusedPostprocKernel, MatchesHostValidateForeground) {
  const ValidationConfig cfg = fused_validation_config();
  for (const auto& s : kShapes) {
    for (const double fg : {0.05, 0.35, 0.7}) {
      const FrameU8 raw =
          random_mask(s.w, s.h, fg, static_cast<std::uint64_t>(s.w * 100 + 7));
      const FrameU8 want = validate_foreground(raw, cfg);
      for (const int threads : {1, 2, 8}) {
        const FrameU8 got = device_fused(raw, cfg, threads);
        expect_masks_equal(got, want,
                           std::to_string(s.w) + "x" + std::to_string(s.h) +
                               " fg=" + std::to_string(fg) +
                               " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(FusedPostprocKernel, SingleStageConfigsMatchHost) {
  // despeckle-only and close-only exercise the 1-op and 2-op chains
  // (shorter halo rings) rather than the full 3-op default.
  ValidationConfig median_only = fused_validation_config();
  median_only.close_radius = 0;
  ValidationConfig close_only = fused_validation_config();
  close_only.despeckle = false;
  const FrameU8 raw = random_mask(61, 17, 0.4, 99);
  expect_masks_equal(device_fused(raw, median_only, 2),
                     validate_foreground(raw, median_only), "median only");
  expect_masks_equal(device_fused(raw, close_only, 2),
                     validate_foreground(raw, close_only), "close only");
}

TEST(FusedPostprocKernel, WideBlocksAndTiledShapeMatch) {
  // The tiled pipeline launches postproc with threads_per_block =
  // tile_pixels (640 → a 32x20 tile); also pin a 32-thread block (th=1).
  const ValidationConfig cfg = fused_validation_config();
  const FrameU8 raw = random_mask(64, 48, 0.3, 41);
  const FrameU8 want = validate_foreground(raw, cfg);
  expect_masks_equal(device_fused(raw, cfg, 2, 640), want, "tpb=640");
  expect_masks_equal(device_fused(raw, cfg, 2, 32), want, "tpb=32");
}

TEST(MaskStageKernel, StagesMatchHostOps) {
  for (const auto& s : kShapes) {
    const FrameU8 m = random_mask(s.w, s.h, 0.4,
                                  static_cast<std::uint64_t>(s.h * 31 + 3));
    const std::string shape =
        std::to_string(s.w) + "x" + std::to_string(s.h);
    expect_masks_equal(device_stage(m, MaskStageOp::kMedian3, 2), median3(m),
                       shape + " median3");
    expect_masks_equal(device_stage(m, MaskStageOp::kDilate1, 2), dilate(m, 1),
                       shape + " dilate");
    expect_masks_equal(device_stage(m, MaskStageOp::kErode1, 2), erode(m, 1),
                       shape + " erode");
  }
}

// ---------------------------------------------------------------------------
// Pipeline level: G masks == validate_foreground(F masks)
// ---------------------------------------------------------------------------

template <typename ConfigFn>
std::vector<FrameU8> run_pipeline_masks(int w, int h, int frames,
                                        int executor_threads,
                                        ConfigFn&& tweak) {
  GpuMogPipeline<double>::Config cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.executor_threads = executor_threads;
  tweak(cfg);
  GpuMogPipeline<double> pipe{cfg};

  SceneConfig scene_cfg;
  scene_cfg.width = w;
  scene_cfg.height = h;
  scene_cfg.seed = 2026;
  const SyntheticScene scene{scene_cfg};

  std::vector<FrameU8> masks;
  FrameU8 fg;
  for (int t = 0; t < frames; ++t) {
    if (pipe.process(scene.frame(t), fg))
      for (const FrameU8& m : pipe.last_group_masks()) masks.push_back(m);
  }
  std::vector<FrameU8> rest;
  pipe.flush(rest);
  for (FrameU8& m : rest) masks.push_back(std::move(m));
  return masks;
}

void expect_g_equals_postprocessed_f(int w, int h, int frames, bool tiled) {
  for (const int threads : {1, 2, 8}) {
    const auto f_masks =
        run_pipeline_masks(w, h, frames, threads, [&](auto& cfg) {
          cfg.level = OptLevel::kF;
          cfg.tiled = tiled;
        });
    const auto g_masks =
        run_pipeline_masks(w, h, frames, threads, [&](auto& cfg) {
          cfg.level = OptLevel::kG;
          cfg.tiled = tiled;
        });
    ASSERT_EQ(f_masks.size(), g_masks.size());
    ASSERT_EQ(f_masks.size(), static_cast<std::size_t>(frames));
    for (std::size_t t = 0; t < f_masks.size(); ++t)
      expect_masks_equal(
          g_masks[t],
          validate_foreground(f_masks[t], fused_validation_config()),
          (tiled ? "tiled" : "untiled") + std::string(" frame ") +
              std::to_string(t) + " threads=" + std::to_string(threads));
  }
}

TEST(FusedPostprocPipeline, GEqualsHostPostprocessedF) {
  expect_g_equals_postprocessed_f(64, 48, 6, /*tiled=*/false);
}

TEST(FusedPostprocPipeline, GEqualsHostPostprocessedFRaggedGrid) {
  // 61*17 = 1037 pixels: ragged last block and a 13-lane last warp in the
  // MoG pass, tile overhang on both axes in the fused epilogue.
  expect_g_equals_postprocessed_f(61, 17, 5, /*tiled=*/false);
}

TEST(FusedPostprocPipeline, GEqualsHostPostprocessedFTiled) {
  expect_g_equals_postprocessed_f(64, 48, 8, /*tiled=*/true);
}

TEST(FusedPostprocPipeline, UnfusedDeviceChainMatchesToo) {
  // Below G the same stages run as the unfused device chain; masks must
  // still be bit-identical to the host postproc.
  const auto f_masks = run_pipeline_masks(64, 48, 5, 2, [](auto& cfg) {
    cfg.level = OptLevel::kF;
  });
  const auto pp_masks = run_pipeline_masks(64, 48, 5, 2, [](auto& cfg) {
    cfg.level = OptLevel::kF;
    cfg.postproc.enabled = true;
  });
  ASSERT_EQ(pp_masks.size(), f_masks.size());
  for (std::size_t t = 0; t < f_masks.size(); ++t)
    expect_masks_equal(
        pp_masks[t],
        validate_foreground(f_masks[t], fused_validation_config()),
        "unfused frame " + std::to_string(t));
}

// ---------------------------------------------------------------------------
// Accounting: fusion must actually save launches and DRAM traffic
// ---------------------------------------------------------------------------

TEST(FusedPostprocPipeline, StrictlyFewerLaunchesAndDramBytesThanUnfused) {
  const int frames = 4;
  auto run = [&](OptLevel level, bool postproc) {
    GpuMogPipeline<double>::Config cfg;
    cfg.width = 64;
    cfg.height = 48;
    cfg.level = level;
    cfg.postproc.enabled = postproc;
    GpuMogPipeline<double> pipe{cfg};
    SceneConfig scene_cfg;
    scene_cfg.width = 64;
    scene_cfg.height = 48;
    const SyntheticScene scene{scene_cfg};
    FrameU8 fg;
    for (int t = 0; t < frames; ++t) pipe.process(scene.frame(t), fg);
    struct {
      std::uint64_t launches;
      std::uint64_t dram_bytes;
    } r{pipe.kernel_launches(), pipe.per_frame_stats().bytes_transferred()};
    return r;
  };

  const auto fused = run(OptLevel::kG, false);      // postproc implied by G
  const auto unfused = run(OptLevel::kF, true);     // same stages, unfused
  const auto bare = run(OptLevel::kF, false);       // no postproc at all

  // The chain (median, dilate, erode) costs 3 launches unfused, 1 fused.
  EXPECT_EQ(bare.launches, static_cast<std::uint64_t>(frames));
  EXPECT_EQ(fused.launches, static_cast<std::uint64_t>(2 * frames));
  EXPECT_EQ(unfused.launches, static_cast<std::uint64_t>(4 * frames));

  // DRAM mask traffic: the unfused chain round-trips every intermediate
  // mask; the fused epilogue reads raw (with halo overlap) and writes the
  // cleaned mask only.
  EXPECT_LT(fused.dram_bytes, unfused.dram_bytes);
  EXPECT_GT(fused.dram_bytes, bare.dram_bytes);
}

// ---------------------------------------------------------------------------
// Configuration guard rails
// ---------------------------------------------------------------------------

TEST(FusedPostprocConfig, ValidateFusedRejectsInexpressibleStages) {
  ValidationConfig big_close = fused_validation_config();
  big_close.close_radius = 2;
  EXPECT_THROW(big_close.validate_fused(), Error);
  EXPECT_FALSE(big_close.fusable());

  ValidationConfig with_open = fused_validation_config();
  with_open.open_radius = 1;
  EXPECT_THROW(with_open.validate_fused(), Error);
  EXPECT_FALSE(with_open.fusable());

  ValidationConfig with_blobs = fused_validation_config();
  with_blobs.min_blob_area = 24;
  EXPECT_THROW(with_blobs.validate_fused(), Error);
  EXPECT_FALSE(with_blobs.fusable());

  EXPECT_TRUE(fused_validation_config().fusable());
  EXPECT_NO_THROW(fused_validation_config().validate_fused());
}

TEST(FusedPostprocPipeline, UnfusableConfigFallsBackToHostWithCounter) {
  // Level G with blob filtering: the epilogue cannot express it, so the
  // pipeline must post-process on the host — recording every fallback —
  // and still produce exactly validate_foreground(F mask).
  ValidationConfig heavy = fused_validation_config();
  heavy.min_blob_area = 8;
  const int frames = 3;

  const auto f_masks = run_pipeline_masks(64, 48, frames, 2, [](auto& cfg) {
    cfg.level = OptLevel::kF;
  });

  GpuMogPipeline<double>::Config cfg;
  cfg.width = 64;
  cfg.height = 48;
  cfg.level = OptLevel::kG;
  cfg.postproc.validation = heavy;
  GpuMogPipeline<double> pipe{cfg};
  EXPECT_FALSE(pipe.device_postproc_active());

  SceneConfig scene_cfg;
  scene_cfg.width = 64;
  scene_cfg.height = 48;
  scene_cfg.seed = 2026;
  const SyntheticScene scene{scene_cfg};
  FrameU8 fg;
  for (int t = 0; t < frames; ++t) {
    ASSERT_TRUE(pipe.process(scene.frame(t), fg));
    const auto& raw = f_masks[static_cast<std::size_t>(t)];
    expect_masks_equal(fg, validate_foreground(raw, heavy),
                       "fallback frame " + std::to_string(t));
  }
  EXPECT_EQ(pipe.host_postproc_fallbacks(), static_cast<std::uint64_t>(frames));
  EXPECT_EQ(pipe.kernel_launches(), static_cast<std::uint64_t>(frames));
}

TEST(FusedPostprocKernel, LaunchRejectsBadConfigs) {
  gpusim::Device device;
  const auto in = device.memory().alloc<std::uint8_t>(64);
  const auto out = device.memory().alloc<std::uint8_t>(64);
  ValidationConfig bad = fused_validation_config();
  bad.close_radius = 2;
  EXPECT_THROW(
      kernels::launch_fused_postproc(device, in, out, 8, 8, bad, 128), Error);
  ValidationConfig none = fused_validation_config();
  none.despeckle = false;
  none.close_radius = 0;
  EXPECT_THROW(
      kernels::launch_fused_postproc(device, in, out, 8, 8, none, 128), Error);
  EXPECT_THROW(kernels::launch_mask_stage(device, in, in, 8, 8,
                                          MaskStageOp::kMedian3, 128),
               Error);
}

}  // namespace
}  // namespace mog
