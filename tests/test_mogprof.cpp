// Tests for the mogprof profile engine: loading counter dumps (bench
// reports and CounterRegistry dumps), the reconstructed per-kernel derived
// metrics, the paper's A..F optimization-step attribution, and the diff and
// table renderers. The checked-in fig8 baseline is the fixture: its cases
// ARE the optimization ladder, so the assertions below are exactly the
// paper's measurement story.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mog/common/error.hpp"
#include "mog/obs/profile.hpp"
#include "mog/telemetry/counters.hpp"
#include "mog/telemetry/json.hpp"

#ifndef MOG_BENCH_BASELINE_DIR
#define MOG_BENCH_BASELINE_DIR "bench/baselines"
#endif

namespace mog {
namespace {

using obs::KernelProfile;
using obs::ProfileDump;

const std::string kFig8 =
    std::string{MOG_BENCH_BASELINE_DIR} + "/BENCH_fig8_speedup.json";

const ProfileDump& fig8() {
  static const ProfileDump dump = obs::load_profile_file(kFig8);
  return dump;
}

TEST(Mogprof, LoadsTheFig8BaselineWithOneKernelPerLevel) {
  const ProfileDump& dump = fig8();
  EXPECT_EQ(dump.source, kFig8);
  EXPECT_GT(dump.width, 0);
  EXPECT_GT(dump.height, 0);
  EXPECT_GT(dump.frames, 0);
  for (const char* level : {"A", "B", "C", "D", "E", "F"}) {
    const KernelProfile* k = dump.find(level);
    ASSERT_NE(k, nullptr) << level;
    EXPECT_GT(k->stats.num_warps, 0u) << level;
    EXPECT_GT(k->occupancy.achieved, 0.0) << level;
    EXPECT_GT(k->timing.total_seconds, 0.0) << level;
  }
  EXPECT_EQ(dump.find("nope"), nullptr);
}

TEST(Mogprof, ReproducesThePaperMeasurementStory) {
  const ProfileDump& dump = fig8();
  const KernelProfile &a = *dump.find("A"), &b = *dump.find("B"),
                      &c = *dump.find("C"), &d = *dump.find("D"),
                      &e = *dump.find("E"), &f = *dump.find("F");

  // Coalescing (§IV-A, SoA layout): the uncoalesced share collapses A -> B
  // and again with predication's access regrouping D -> E; it never gets
  // worse down the ladder.
  EXPECT_LT(b.uncoalesced_share(), a.uncoalesced_share());
  EXPECT_LT(e.uncoalesced_share(), d.uncoalesced_share());
  EXPECT_LE(f.uncoalesced_share(), a.uncoalesced_share());

  // Divergence (§IV-B/C): branch reduction C -> D and predication D -> E
  // each strictly cut it; it is monotone non-increasing overall.
  EXPECT_LT(d.divergence(), c.divergence());
  EXPECT_LT(e.divergence(), d.divergence());
  EXPECT_LE(b.divergence(), a.divergence());
  EXPECT_LE(f.divergence(), e.divergence());

  // Register reduction (§IV-C): E -> F drops regs/thread, which lifts
  // occupancy.
  EXPECT_LT(f.stats.regs_per_thread, e.stats.regs_per_thread);
  EXPECT_GT(f.occupancy.achieved, e.occupancy.achieved);

  // Roofline: the uncoalesced baseline saturates DRAM (memory-bound); the
  // optimized kernels are compute-bound.
  EXPECT_TRUE(a.memory_bound());
  EXPECT_FALSE(f.memory_bound());
  EXPECT_GT(a.dram_gbps(), f.dram_gbps());

  // And the point of it all: F is strictly faster than A.
  EXPECT_LT(f.timing.total_seconds, a.timing.total_seconds);
}

TEST(Mogprof, TableListsEveryKernelWithItsRooflineVerdict) {
  const std::string table = obs::render_profile_table(fig8());
  for (const char* needle :
       {"kernel", "divergence", "occupancy", "bound", "memory-bound",
        "compute-bound"})
    EXPECT_NE(table.find(needle), std::string::npos) << needle;
  for (const char* level : {"A", "B", "C", "D", "E", "F"})
    EXPECT_NE(table.find(std::string{"\n"} + level + " "), std::string::npos)
        << level;
}

TEST(Mogprof, StepReportAttributesEachLadderStep) {
  const std::string report = obs::render_step_report(fig8());
  ASSERT_FALSE(report.empty());
  for (const char* needle :
       {"optimization-step attribution", "step A -> B", "step B -> C",
        "step C -> D", "step D -> E", "step E -> F", "branch divergence",
        "uncoalesced share", "regs/thread", "occupancy",
        "modeled time/frame"})
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
}

TEST(Mogprof, StepReportNeedsAtLeastTwoLadderCases) {
  telemetry::Json doc = telemetry::read_json_file(kFig8);
  // A dump with a single ladder case has no steps to attribute.
  telemetry::Json only_a = telemetry::Json::array();
  only_a.push_back(doc.find("cases")->as_array().front());
  doc.set("cases", std::move(only_a));
  const ProfileDump one = obs::load_profile_dump(doc, "one-case");
  EXPECT_EQ(obs::render_step_report(one), "");
  EXPECT_FALSE(obs::render_profile_table(one).empty());
}

TEST(Mogprof, DiffOfIdenticalDumpsIsAllZeroDeltas) {
  const std::string diff = obs::render_profile_diff(fig8(), fig8());
  EXPECT_NE(diff.find("kernel A:"), std::string::npos);
  EXPECT_NE(diff.find("kernel F:"), std::string::npos);
  EXPECT_NE(diff.find("+0.0 %"), std::string::npos);
  EXPECT_EQ(diff.find("only in"), std::string::npos);
}

TEST(Mogprof, DiffListsKernelsMissingFromEitherSide) {
  telemetry::Json doc = telemetry::read_json_file(kFig8);
  const telemetry::Json::Array& cases = doc.find("cases")->as_array();
  telemetry::Json pruned = telemetry::Json::array();
  for (std::size_t i = 1; i < cases.size(); ++i)  // drop case A
    pruned.push_back(cases[i]);
  doc.set("cases", std::move(pruned));
  const ProfileDump fresh = obs::load_profile_dump(doc, "pruned");
  const std::string diff = obs::render_profile_diff(fig8(), fresh);
  EXPECT_NE(diff.find("only in baseline"), std::string::npos);
  EXPECT_NE(diff.find("A"), std::string::npos);
}

TEST(Mogprof, LoadsACounterRegistryDumpAsOneAggregateKernel) {
  telemetry::CounterRegistry reg;
  gpusim::KernelStats stats;
  stats.load_instructions = 648;
  stats.store_instructions = 324;
  stats.load_transactions = 2000;
  stats.store_transactions = 1500;
  stats.bytes_transferred_load = 256000;
  stats.bytes_transferred_store = 48000;
  stats.bytes_requested_load = 200000;
  stats.bytes_requested_store = 48000;
  stats.branches_executed = 5000;
  stats.branches_divergent = 250;
  stats.issue_cycles = 40000;
  stats.warp_instructions = 35000;
  stats.regs_per_thread = 35;
  stats.threads_per_block = 256;
  stats.num_blocks = 81;
  stats.num_warps = 648;
  reg.on_kernel_launch(stats);
  reg.on_kernel_launch(stats);

  const ProfileDump dump = obs::load_profile_dump(reg.to_json(), "registry");
  ASSERT_EQ(dump.kernels.size(), 1u);
  const KernelProfile& k = dump.kernels[0];
  EXPECT_EQ(k.name, "aggregate");
  EXPECT_EQ(k.stats.regs_per_thread, 35);
  EXPECT_EQ(k.stats.threads_per_block, 256);
  EXPECT_NEAR(k.divergence(), 0.05, 1e-9);
  EXPECT_GT(k.occupancy.achieved, 0.0);
  EXPECT_GT(k.timing.total_seconds, 0.0);
  EXPECT_FALSE(obs::render_profile_table(dump).empty());
  EXPECT_EQ(obs::render_step_report(dump), "");  // no ladder in a registry
}

TEST(Mogprof, RejectsDocumentsWithoutCounterData) {
  EXPECT_THROW(obs::load_profile_dump(telemetry::Json::object(), "empty"),
               Error);
  telemetry::Json no_counters = telemetry::Json::object();
  no_counters.set("cases", telemetry::Json::array());
  EXPECT_THROW(obs::load_profile_dump(no_counters, "no-cases"), Error);
}

}  // namespace
}  // namespace mog
