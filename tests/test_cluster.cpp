// Tests for the multi-device fleet: placement policy, fault domains, live
// stream migration (the acceptance criterion: a stream failing over
// mid-sequence produces bit-identical masks to an uninterrupted run),
// capacity-exhausted degradation, fleet observability, and concurrent
// submission against the background supervisor.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "mog/cluster/device_fleet.hpp"
#include "mog/cluster/placement.hpp"
#include "mog/common/strutil.hpp"
#include "mog/fault/fault_injector.hpp"
#include "mog/obs/sampler.hpp"
#include "mog/pipeline/gpu_pipeline.hpp"
#include "mog/video/scene.hpp"

namespace mog {
namespace {

using cluster::ClusterScheduler;
using cluster::DeviceFleet;
using cluster::DeviceLoad;
using cluster::FleetConfig;
using cluster::FleetStreamInfo;
using cluster::MigrationStats;

constexpr int kW = 48, kH = 36;

SyntheticScene scene_for(std::uint64_t seed) {
  SceneConfig c;
  c.width = kW;
  c.height = kH;
  c.seed = seed;
  return SyntheticScene{c};
}

DeviceFleet<double>::GpuConfig gpu_config(bool tiled = false) {
  DeviceFleet<double>::GpuConfig cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.level = kernels::OptLevel::kF;
  if (tiled) {
    cfg.tiled = true;
    cfg.tiled_config.frame_group = 4;
    cfg.tiled_config.tile_pixels = 64;
  }
  return cfg;
}

FleetConfig fleet_config(int devices) {
  FleetConfig cfg;
  cfg.devices = devices;
  cfg.serve.queue_depth = 32;
  return cfg;
}

std::vector<FrameU8> solo_masks(std::uint64_t scene_seed, int frames) {
  GpuMogPipeline<double> solo{gpu_config(false)};
  std::vector<FrameU8> out;
  FrameU8 fg;
  for (int t = 0; t < frames; ++t) {
    EXPECT_TRUE(solo.process(scene_for(scene_seed).frame(t), fg));
    out.push_back(fg);
  }
  return out;
}

TEST(ClusterScheduler, LeastLoadedWinsOutright) {
  ClusterScheduler sched{32};
  for (int d = 0; d < 4; ++d) sched.add_device(d);
  std::vector<DeviceLoad> loads(4);
  for (int d = 0; d < 4; ++d) {
    loads[static_cast<std::size_t>(d)].device = d;
    loads[static_cast<std::size_t>(d)].open_streams = d == 2 ? 0 : 1;
  }
  EXPECT_EQ(sched.pick("anything", loads), 2);

  // Stream count equal: fewest device-memory bytes breaks the tie.
  for (auto& l : loads) l.open_streams = 1;
  loads[0].bytes_in_use = 100;
  loads[1].bytes_in_use = 50;
  loads[2].bytes_in_use = 100;
  loads[3].bytes_in_use = 100;
  EXPECT_EQ(sched.pick("anything", loads), 1);
}

TEST(ClusterScheduler, TiesSpreadDeterministicallyAcrossKeys) {
  ClusterScheduler sched{32};
  for (int d = 0; d < 4; ++d) sched.add_device(d);
  std::vector<DeviceLoad> loads(4);
  for (int d = 0; d < 4; ++d) loads[static_cast<std::size_t>(d)].device = d;

  std::set<int> chosen;
  for (int k = 0; k < 64; ++k) {
    const std::string key = strprintf("camera-%d", k);
    const int d = sched.pick(key, loads);
    ASSERT_GE(d, 0);
    ASSERT_LT(d, 4);
    EXPECT_EQ(sched.pick(key, loads), d) << "placement must be stable";
    chosen.insert(d);
  }
  EXPECT_GT(chosen.size(), 1u) << "consistent hashing should spread keys";
}

TEST(ClusterScheduler, DeadDevicesAreNeverEligible) {
  ClusterScheduler sched{16};
  for (int d = 0; d < 3; ++d) sched.add_device(d);
  std::vector<DeviceLoad> loads(3);
  for (int d = 0; d < 3; ++d) loads[static_cast<std::size_t>(d)].device = d;
  loads[1].alive = false;
  for (int k = 0; k < 32; ++k)
    EXPECT_NE(sched.pick(strprintf("key-%d", k), loads), 1);
  for (auto& l : loads) l.alive = false;
  EXPECT_EQ(sched.pick("x", loads), -1);
}

TEST(DeviceFleet, SpreadsStreamsAndMatchesSoloPipelines) {
  constexpr int kStreams = 4, kFrames = 6;
  DeviceFleet<double> fleet{fleet_config(2)};
  for (int s = 0; s < kStreams; ++s)
    ASSERT_EQ(fleet.open_stream(gpu_config()), s);

  // Least-loaded placement must balance a tie-heavy admission sequence.
  int on0 = 0, on1 = 0;
  for (int s = 0; s < kStreams; ++s)
    (fleet.stream_device(s) == 0 ? on0 : on1)++;
  EXPECT_EQ(on0, 2);
  EXPECT_EQ(on1, 2);

  for (int t = 0; t < kFrames; ++t)
    for (int s = 0; s < kStreams; ++s)
      ASSERT_TRUE(fleet.submit(s, scene_for(100 + s).frame(t)));
  fleet.drain();

  for (int s = 0; s < kStreams; ++s) {
    const std::vector<FrameU8> expected = solo_masks(100 + s, kFrames);
    const std::vector<FrameU8> served = fleet.take_masks(s);
    ASSERT_EQ(served.size(), expected.size()) << "stream " << s;
    for (std::size_t i = 0; i < expected.size(); ++i)
      EXPECT_EQ(served[i], expected[i]) << "stream " << s << " frame " << i;
  }
  EXPECT_EQ(fleet.masks_delivered(),
            static_cast<std::uint64_t>(kStreams * kFrames));
  EXPECT_EQ(fleet.frames_dropped(), 0u);
  EXPECT_EQ(fleet.migration_stats(), MigrationStats{});
}

TEST(DeviceFleet, MigrationFidelityBitIdenticalMasks) {
  // THE acceptance criterion: fail the hosting device mid-sequence; the
  // stream must fail over and the full mask sequence must be bit-identical
  // to an uninterrupted run — the MOGM v2 snapshot carries the exact model.
  constexpr int kFrames = 8, kCut = 4;
  DeviceFleet<double> fleet{fleet_config(2)};
  const int id = fleet.open_stream(gpu_config());
  const int home = fleet.stream_device(id);

  for (int t = 0; t < kCut; ++t)
    ASSERT_TRUE(fleet.submit(id, scene_for(9).frame(t)));
  fleet.drain();

  fleet.fail_device(home);
  EXPECT_FALSE(fleet.device_alive(home));
  EXPECT_EQ(fleet.alive_devices(), 1);
  EXPECT_NE(fleet.stream_device(id), home);

  for (int t = kCut; t < kFrames; ++t)
    ASSERT_TRUE(fleet.submit(id, scene_for(9).frame(t)));
  fleet.drain();

  const std::vector<FrameU8> expected = solo_masks(9, kFrames);
  const std::vector<FrameU8> served = fleet.take_masks(id);
  ASSERT_EQ(served.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(served[i], expected[i]) << "frame " << i;

  const MigrationStats& m = fleet.migration_stats();
  EXPECT_EQ(m.attempted, 1u);
  EXPECT_EQ(m.completed, 1u);
  EXPECT_EQ(m.checkpoint_rejected, 0u);
  EXPECT_EQ(m.models_reset, 0u);
  EXPECT_EQ(fleet.frames_dropped(), 0u);
  EXPECT_EQ(fleet.stream_info(id).migrations, 1u);
  EXPECT_EQ(fleet.stream_info(id).masks_delivered,
            static_cast<std::uint64_t>(kFrames));
}

TEST(DeviceFleet, DeviceLossMovesQueuedFramesWithZeroLoss) {
  // Frames still waiting in the victim device's queues must migrate with
  // their streams — device loss drops zero admitted frames, and order is
  // preserved so the masks stay bit-identical.
  constexpr int kStreams = 4, kFrames = 6;
  DeviceFleet<double> fleet{fleet_config(2)};
  for (int s = 0; s < kStreams; ++s)
    ASSERT_EQ(fleet.open_stream(gpu_config()), s);
  for (int t = 0; t < kFrames; ++t)
    for (int s = 0; s < kStreams; ++s)
      ASSERT_TRUE(fleet.submit(s, scene_for(200 + s).frame(t)));

  fleet.fail_device(0);  // every frame for device 0's streams still queued
  const MigrationStats& m = fleet.migration_stats();
  EXPECT_EQ(m.completed, 2u);
  EXPECT_EQ(m.frames_requeued, static_cast<std::uint64_t>(2 * kFrames));
  EXPECT_EQ(m.frames_dropped_in_transit, 0u);

  fleet.drain();
  for (int s = 0; s < kStreams; ++s) {
    EXPECT_EQ(fleet.stream_device(s), 1) << "stream " << s;
    const std::vector<FrameU8> expected = solo_masks(200 + s, kFrames);
    const std::vector<FrameU8> served = fleet.take_masks(s);
    ASSERT_EQ(served.size(), expected.size()) << "stream " << s;
    for (std::size_t i = 0; i < expected.size(); ++i)
      EXPECT_EQ(served[i], expected[i]) << "stream " << s << " frame " << i;
  }
  EXPECT_EQ(fleet.frames_dropped(), 0u);
  EXPECT_EQ(fleet.masks_delivered(),
            static_cast<std::uint64_t>(kStreams * kFrames));
}

TEST(DeviceFleet, RepeatedLaunchFailuresTriggerAutomaticFailover) {
  // A device-scoped injector makes device 0 a sick fault domain: its stream
  // degrades, the supervisor charges the strike, declares the device lost,
  // and migrates the stream back to full GPU service elsewhere.
  FleetConfig cfg = fleet_config(2);
  cfg.serve.resilience.retry.max_attempts = 2;
  cfg.serve.resilience.degrade_after_failures = 1;

  fault::FaultConfig storm;
  storm.launch_fault_prob = 1.0;

  DeviceFleet<double> fleet{cfg};
  fleet.set_device_injector(0, std::make_shared<fault::FaultInjector>(storm));
  const int a = fleet.open_stream(gpu_config());
  const int b = fleet.open_stream(gpu_config());
  const int victim = fleet.stream_device(a) == 0 ? a : b;
  const int healthy = victim == a ? b : a;
  ASSERT_EQ(fleet.stream_device(victim), 0);
  ASSERT_EQ(fleet.stream_device(healthy), 1);

  constexpr int kFrames = 4;
  for (int t = 0; t < kFrames; ++t) {
    ASSERT_TRUE(fleet.submit(victim, scene_for(31).frame(t)));
    ASSERT_TRUE(fleet.submit(healthy, scene_for(32).frame(t)));
  }
  fleet.drain();

  EXPECT_FALSE(fleet.device_alive(0));
  EXPECT_EQ(fleet.stream_device(victim), 1);
  EXPECT_GE(fleet.migration_stats().completed, 1u);
  EXPECT_EQ(fleet.stream_info(victim).migrations, 1u);
  // Back on the GPU tier on the healthy device (no injector there).
  EXPECT_EQ(fleet.stream_info(victim).tier, fault::ExecutionTier::kGpuDirect);
  // Zero admitted frames lost: every frame produced a mask (salvaged masks
  // count — delivery, not freshness, is the failover contract).
  EXPECT_EQ(fleet.stream_info(victim).masks_delivered,
            static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(fleet.stream_info(healthy).masks_delivered,
            static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(fleet.frames_dropped(), 0u);

  // The healthy stream never left its device and kept bit-exact service.
  const std::vector<FrameU8> expected = solo_masks(32, kFrames);
  const std::vector<FrameU8> served = fleet.take_masks(healthy);
  ASSERT_EQ(served.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(served[i], expected[i]) << "frame " << i;
}

TEST(DeviceFleet, SamplerCaptureDuringFailoverStaysBitIdentical) {
  // A profile capture running across a device failure must neither disturb
  // the failover (masks stay bit-identical) nor crash when the victim's
  // threads disappear mid-capture.
  FleetConfig cfg = fleet_config(2);
  cfg.serve.resilience.retry.max_attempts = 2;
  cfg.serve.resilience.degrade_after_failures = 1;

  fault::FaultConfig storm;
  storm.launch_fault_prob = 1.0;

  DeviceFleet<double> fleet{cfg};
  fleet.set_device_injector(0, std::make_shared<fault::FaultInjector>(storm));
  const int a = fleet.open_stream(gpu_config());
  const int b = fleet.open_stream(gpu_config());
  const int victim = fleet.stream_device(a) == 0 ? a : b;
  const int healthy = victim == a ? b : a;

  ASSERT_TRUE(obs::Sampler::global().start(2000));

  constexpr int kFrames = 4;
  for (int t = 0; t < kFrames; ++t) {
    ASSERT_TRUE(fleet.submit(victim, scene_for(61).frame(t)));
    ASSERT_TRUE(fleet.submit(healthy, scene_for(62).frame(t)));
  }
  fleet.drain();

  obs::Sampler::global().stop();
  const obs::FlameProfile profile = obs::Sampler::global().take();
  EXPECT_GT(profile.ticks, 0u);

  // The failover completed under the sampler...
  EXPECT_FALSE(fleet.device_alive(0));
  EXPECT_EQ(fleet.stream_device(victim), 1);
  EXPECT_EQ(fleet.frames_dropped(), 0u);
  // ...and service stayed bit-identical on the healthy stream.
  const std::vector<FrameU8> expected = solo_masks(62, kFrames);
  const std::vector<FrameU8> served = fleet.take_masks(healthy);
  ASSERT_EQ(served.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(served[i], expected[i]) << "frame " << i;
}

TEST(DeviceFleet, CorruptSnapshotIsRejectedTypedAndRetried) {
  // Bit rot on the migration hot path: the first snapshot decode fails the
  // CRC (typed ModelIoError, counted), the protocol re-reads the model and
  // completes — still bit-identical, never silently wrong.
  constexpr int kFrames = 8, kCut = 4;
  DeviceFleet<double> fleet{fleet_config(2)};
  const int id = fleet.open_stream(gpu_config());
  const int home = fleet.stream_device(id);

  auto corrupted_once = std::make_shared<bool>(false);
  fleet.set_snapshot_corruptor([corrupted_once](std::vector<std::uint8_t>& p) {
    if (*corrupted_once) return;
    *corrupted_once = true;
    p[p.size() / 2] ^= 0x40;  // flip one payload bit -> CRC mismatch
  });

  for (int t = 0; t < kCut; ++t)
    ASSERT_TRUE(fleet.submit(id, scene_for(77).frame(t)));
  fleet.drain();
  fleet.fail_device(home);
  for (int t = kCut; t < kFrames; ++t)
    ASSERT_TRUE(fleet.submit(id, scene_for(77).frame(t)));
  fleet.drain();

  const MigrationStats& m = fleet.migration_stats();
  EXPECT_EQ(m.completed, 1u);
  EXPECT_EQ(m.checkpoint_rejected, 1u);
  EXPECT_EQ(m.snapshot_retries, 1u);
  EXPECT_EQ(m.models_reset, 0u);

  const std::vector<FrameU8> expected = solo_masks(77, kFrames);
  const std::vector<FrameU8> served = fleet.take_masks(id);
  ASSERT_EQ(served.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(served[i], expected[i]) << "frame " << i;
}

TEST(DeviceFleet, CapacityExhaustedFallsBackToCpuLadderInPlace) {
  // Every other device is full: migration is refused (counted) and the
  // stream rides its per-stream degradation ladder where it is — masks keep
  // flowing from the CPU tier; the fleet reports itself unhealthy.
  FleetConfig cfg = fleet_config(2);
  cfg.serve.max_streams = 1;
  cfg.serve.resilience.retry.max_attempts = 2;
  cfg.serve.resilience.degrade_after_failures = 1;

  fault::FaultConfig storm;
  storm.launch_fault_prob = 1.0;

  DeviceFleet<double> fleet{cfg};
  fleet.set_device_injector(0, std::make_shared<fault::FaultInjector>(storm));
  const int a = fleet.open_stream(gpu_config());
  const int b = fleet.open_stream(gpu_config());
  const int victim = fleet.stream_device(a) == 0 ? a : b;

  constexpr int kFrames = 4;
  for (int t = 0; t < kFrames; ++t) {
    ASSERT_TRUE(fleet.submit(a, scene_for(41).frame(t)));
    ASSERT_TRUE(fleet.submit(b, scene_for(42).frame(t)));
  }
  fleet.drain();

  EXPECT_FALSE(fleet.device_alive(0));
  EXPECT_GE(fleet.migration_stats().capacity_exhausted, 1u);
  EXPECT_EQ(fleet.migration_stats().completed, 0u);
  EXPECT_EQ(fleet.stream_device(victim), 0) << "nowhere to go: stays put";
  EXPECT_EQ(fleet.stream_info(victim).tier, fault::ExecutionTier::kCpuSerial);
  EXPECT_EQ(fleet.stream_info(victim).masks_delivered,
            static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(fleet.frames_dropped(), 0u);

  std::string detail;
  EXPECT_FALSE(fleet.healthz(detail)) << detail;
  EXPECT_NE(detail.find("LOST"), std::string::npos);
}

TEST(DeviceFleet, MetricsHealthzStatuszReflectFleetState) {
  DeviceFleet<double> fleet{fleet_config(2)};
  const int id = fleet.open_stream(gpu_config());
  for (int t = 0; t < 4; ++t)
    ASSERT_TRUE(fleet.submit(id, scene_for(5).frame(t)));
  fleet.drain();

  std::string detail;
  EXPECT_TRUE(fleet.healthz(detail)) << detail;
  EXPECT_NE(detail.find("device 0: alive"), std::string::npos);

  const int home = fleet.stream_device(id);
  fleet.fail_device(home);
  fleet.drain();

  // Migrated and healthy again: the failover is invisible to /healthz but
  // fully visible in /metrics and /statusz.
  detail.clear();
  EXPECT_TRUE(fleet.healthz(detail)) << detail;
  EXPECT_NE(detail.find("LOST"), std::string::npos);

  const std::string metrics = fleet.metrics_text();
  EXPECT_NE(metrics.find("# TYPE mog_fleet_devices gauge"),
            std::string::npos);
  EXPECT_NE(metrics.find("mog_fleet_devices{state=\"lost\"} 1"),
            std::string::npos);
  EXPECT_NE(
      metrics.find("mog_fleet_migrations_total{event=\"completed\"} 1"),
      std::string::npos);
  EXPECT_NE(metrics.find("# TYPE mog_fleet_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(metrics.find("mog_fleet_masks_delivered_total"),
            std::string::npos);
  EXPECT_NE(metrics.find("mog_fleet_engine_busy_seconds"),
            std::string::npos);

  const std::string status = fleet.statusz();
  EXPECT_NE(status.find("== fleet =="), std::string::npos);
  EXPECT_NE(status.find("migrations: 1 attempted, 1 completed"),
            std::string::npos);
}

TEST(DeviceFleet, ConcurrentSubmitWithBackgroundSupervisorAndFailover) {
  // Live mode: member pump threads + fleet supervisor running, capture
  // threads submitting, one device failed mid-flight. Nothing may be lost.
  constexpr int kStreams = 4, kFrames = 8;
  FleetConfig cfg = fleet_config(2);
  // Deep enough for a stream's own frames plus a migrated backlog, so no
  // submission is ever refused (a refusal would count as a drop).
  cfg.serve.queue_depth = 2 * kFrames;
  DeviceFleet<double> fleet{cfg};
  for (int s = 0; s < kStreams; ++s)
    ASSERT_EQ(fleet.open_stream(gpu_config()), s);

  fleet.start();
  std::vector<std::thread> producers;
  for (int s = 0; s < kStreams; ++s)
    producers.emplace_back([&fleet, s] {
      for (int t = 0; t < kFrames; ++t)
        while (!fleet.submit(s, scene_for(300 + s).frame(t)))
          std::this_thread::yield();
    });
  fleet.fail_device(0);
  for (std::thread& p : producers) p.join();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (fleet.masks_delivered() <
             static_cast<std::uint64_t>(kStreams * kFrames) &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  fleet.stop();
  fleet.drain();

  EXPECT_EQ(fleet.masks_delivered(),
            static_cast<std::uint64_t>(kStreams * kFrames));
  EXPECT_EQ(fleet.frames_dropped(), 0u);
  EXPECT_FALSE(fleet.device_alive(0));
  for (int s = 0; s < kStreams; ++s)
    EXPECT_EQ(fleet.stream_device(s), 1) << "stream " << s;
}

TEST(DeviceFleet, ChaosSeedReplaysDeterministically) {
  // The CI chaos matrix exports MOG_CHAOS_SEED; whatever the seed, two runs
  // of the same seeded storm must behave identically and deliver every
  // admitted frame (salvaged or fresh).
  std::uint64_t seed = 1337;
  if (const char* env = std::getenv("MOG_CHAOS_SEED"))
    seed = std::strtoull(env, nullptr, 10);

  const auto run = [seed](std::vector<std::vector<FrameU8>>& masks) {
    FleetConfig cfg = fleet_config(2);
    cfg.serve.resilience.retry.max_attempts = 2;
    cfg.serve.resilience.degrade_after_failures = 1;
    fault::FaultConfig storm;
    storm.seed = seed;
    storm.launch_fault_prob = 0.4;
    storm.upload_fault_prob = 0.2;
    storm.download_fault_prob = 0.2;

    DeviceFleet<double> fleet{cfg};
    fleet.set_device_injector(0,
                              std::make_shared<fault::FaultInjector>(storm));
    constexpr int kStreams = 3, kFrames = 6;
    for (int s = 0; s < kStreams; ++s)
      EXPECT_EQ(fleet.open_stream(gpu_config()), s);
    for (int t = 0; t < kFrames; ++t)
      for (int s = 0; s < kStreams; ++s)
        EXPECT_TRUE(fleet.submit(s, scene_for(500 + s).frame(t)));
    fleet.drain();

    for (int s = 0; s < kStreams; ++s) {
      // Delivery conservation: every admitted frame yields a mask even
      // under the storm (salvage counts).
      EXPECT_EQ(fleet.stream_info(s).masks_delivered,
                static_cast<std::uint64_t>(kFrames))
          << "stream " << s << " seed " << seed;
      masks.push_back(fleet.take_masks(s));
    }
    EXPECT_EQ(fleet.frames_dropped(), 0u);
    return fleet.migration_stats();
  };

  std::vector<std::vector<FrameU8>> masks1, masks2;
  const MigrationStats m1 = run(masks1);
  const MigrationStats m2 = run(masks2);
  EXPECT_EQ(m1, m2) << "seeded chaos must replay bit-identically";
  ASSERT_EQ(masks1.size(), masks2.size());
  for (std::size_t s = 0; s < masks1.size(); ++s) {
    ASSERT_EQ(masks1[s].size(), masks2[s].size()) << "stream " << s;
    for (std::size_t i = 0; i < masks1[s].size(); ++i)
      EXPECT_EQ(masks1[s][i], masks2[s][i])
          << "stream " << s << " frame " << i;
  }
}

TEST(DeviceFleet, AdmissionFailsOnlyWhenEveryAliveDeviceIsFull) {
  FleetConfig cfg = fleet_config(2);
  cfg.serve.max_streams = 1;
  DeviceFleet<double> fleet{cfg};
  EXPECT_EQ(fleet.open_stream(gpu_config()), 0);
  EXPECT_EQ(fleet.open_stream(gpu_config()), 1);  // spills to device 2
  EXPECT_NE(fleet.stream_device(0), fleet.stream_device(1));
  EXPECT_THROW(fleet.open_stream(gpu_config()), serve::AdmissionError);
  // Closing frees the slot; the replacement lands on the freed device.
  fleet.close_stream(0);
  const int replacement = fleet.open_stream(gpu_config());
  EXPECT_EQ(fleet.stream_device(replacement), fleet.stream_device(0));
}

TEST(DeviceFleet, TiledStreamsMigrateAfterGroupFlush) {
  // A tiled stream mid-group flushes its partial group on the victim device
  // (masks delivered early, never lost), then resumes tiled on the target.
  constexpr int kFrames = 6;  // group of 4: one boundary + 2 buffered
  DeviceFleet<double> fleet{fleet_config(2)};
  const int id = fleet.open_stream(gpu_config(true));
  const int home = fleet.stream_device(id);
  for (int t = 0; t < kFrames; ++t)
    ASSERT_TRUE(fleet.submit(id, scene_for(61).frame(t)));
  fleet.drain();
  ASSERT_EQ(fleet.stream_info(id).masks_delivered, 4u);

  fleet.fail_device(home);
  EXPECT_EQ(fleet.migration_stats().completed, 1u);
  // The flush delivered the 2 buffered masks before the model moved.
  EXPECT_EQ(fleet.stream_info(id).masks_delivered, 6u);
  EXPECT_EQ(fleet.stream_info(id).tier, fault::ExecutionTier::kTiledGpu);

  // Keep serving tiled on the new device.
  for (int t = 0; t < 4; ++t)
    ASSERT_TRUE(fleet.submit(id, scene_for(61).frame(kFrames + t)));
  fleet.drain();
  EXPECT_EQ(fleet.stream_info(id).masks_delivered, 10u);
  EXPECT_EQ(fleet.frames_dropped(), 0u);
}

}  // namespace
}  // namespace mog
