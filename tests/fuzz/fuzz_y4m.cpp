// libFuzzer harness for the Y4M reader.
//
// Contract under fuzzing: any byte string either decodes or throws a typed
// IngestError — no other exception type, no crash, no sanitizer report, no
// unbounded allocation (the bomb caps bound geometry, and the frame cap
// below bounds runtime on gigantic generated streams).
//
//   $ cmake -B build -DMOG_BUILD_FUZZERS=ON -DCMAKE_CXX_COMPILER=clang++
//   $ cmake --build build -j
//   $ build/tests/fuzz/fuzz_y4m tests/fuzz/corpus/y4m -max_total_time=60
#include <cstddef>
#include <cstdint>
#include <vector>

#include "mog/ingest/y4m.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  try {
    mog::ingest::decode_y4m(std::vector<std::uint8_t>{data, data + size},
                            /*max_frames=*/64);
  } catch (const mog::ingest::IngestError&) {
    // Typed rejection is the correct outcome for malformed input.
  }
  return 0;
}
