// libFuzzer harness for the baseline JPEG decoder (and, via the splitter
// contract, the MJPEG part scanner: find_jpeg_span runs on the same bytes).
//
// Contract under fuzzing: decode or typed IngestError — nothing else.
//
//   $ build/tests/fuzz/fuzz_jpeg tests/fuzz/corpus/jpeg -max_total_time=60
#include <cstddef>
#include <cstdint>
#include <span>

#include "mog/ingest/jpeg.hpp"
#include "mog/ingest/mjpeg.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes{data, size};
  try {
    mog::ingest::decode_jpeg_gray(bytes);
  } catch (const mog::ingest::IngestError&) {
  }
  try {
    mog::ingest::find_jpeg_span(bytes);
  } catch (const mog::ingest::IngestError&) {
  }
  return 0;
}
