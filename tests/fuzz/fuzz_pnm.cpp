// libFuzzer harness for the PGM reader, fed through the istream overload so
// no filesystem round-trip is needed per input.
//
// Contract under fuzzing: parse or typed mog::Error — nothing else.
//
//   $ build/tests/fuzz/fuzz_pnm tests/fuzz/corpus/pnm -max_total_time=60
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "mog/video/pnm_io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string bytes{reinterpret_cast<const char*>(data), size};
  std::istringstream in{bytes};
  try {
    mog::read_pgm(in, "fuzz-input");
  } catch (const mog::Error&) {
  }
  return 0;
}
