// Unit tests for mog/common: RNG determinism and statistics, Image
// container semantics, string utilities, error handling macros.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "mog/common/error.hpp"
#include "mog/common/image.hpp"
#include "mog/common/rng.hpp"
#include "mog/common/strutil.hpp"

namespace mog {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{9};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
  EXPECT_THROW(rng.uniform(2.0, 1.0), Error);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng{11};
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BoundedDrawIsUnbiasedAndInRange) {
  Rng rng{13};
  int counts[7] = {};
  for (int i = 0; i < 70000; ++i) {
    const std::uint32_t v = rng.uniform_u32(7);
    ASSERT_LT(v, 7u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
  EXPECT_THROW(rng.uniform_u32(0), Error);
}

TEST(Rng, ChanceProbability) {
  Rng rng{17};
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits, 2500, 200);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 sm{0};
  const std::uint64_t first = sm.next();
  SplitMix64 sm2{0};
  EXPECT_EQ(first, sm2.next());
  EXPECT_NE(first, sm.next());
}

TEST(Image, ConstructionAndFill) {
  Image<int> img(4, 3, 7);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.size(), 12u);
  for (std::size_t i = 0; i < img.size(); ++i) EXPECT_EQ(img[i], 7);
  img.fill(2);
  EXPECT_EQ(img.at(3, 2), 2);
}

TEST(Image, RowMajorAddressing) {
  Image<int> img(5, 4);
  img.at(2, 3) = 42;
  EXPECT_EQ(img[3 * 5 + 2], 42);
}

TEST(Image, RejectsBadDimensions) {
  EXPECT_THROW(Image<int>(0, 3), Error);
  EXPECT_THROW(Image<int>(3, -1), Error);
}

TEST(Image, EqualityAndShape) {
  Image<int> a(3, 3, 1), b(3, 3, 1), c(3, 2, 1);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
  b.at(1, 1) = 9;
  EXPECT_FALSE(a == b);
}

TEST(Image, SaturateU8) {
  EXPECT_EQ(saturate_u8(-5.0), 0);
  EXPECT_EQ(saturate_u8(0.4), 0);
  EXPECT_EQ(saturate_u8(0.6), 1);
  EXPECT_EQ(saturate_u8(254.9), 255);
  EXPECT_EQ(saturate_u8(300.0), 255);
}

TEST(Image, RoundTripConversions) {
  FrameU8 f(3, 2);
  for (std::size_t i = 0; i < f.size(); ++i)
    f[i] = static_cast<std::uint8_t>(40 * i);
  const Image<double> d = to_real<double>(f);
  const FrameU8 back = to_u8(d);
  EXPECT_EQ(f, back);
}

TEST(Strutil, Printf) {
  EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strprintf("%.2f", 1.005), "1.00");
}

TEST(Strutil, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512.0 B");
  EXPECT_EQ(human_bytes(46080), "45.0 KB");
  EXPECT_EQ(human_bytes(1.5 * 1024 * 1024), "1.5 MB");
}

TEST(Strutil, Percent) {
  EXPECT_EQ(percent(0.783), "78.3%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

TEST(Strutil, ParseIntAcceptsStrictBase10) {
  EXPECT_EQ(parse_int("0", 0, 100, "n"), 0);
  EXPECT_EQ(parse_int("42", 0, 100, "n"), 42);
  EXPECT_EQ(parse_int("-7", -10, 10, "n"), -7);
  EXPECT_EQ(parse_int("+5", 0, 10, "n"), 5);
}

TEST(Strutil, ParseIntRejectsWhatAtoiSilentlyAccepts) {
  // std::atoi("banana") == 0 and atoi("12x") == 12; both must throw here.
  EXPECT_THROW(parse_int("banana", 0, 100, "n"), Error);
  EXPECT_THROW(parse_int("12x", 0, 100, "n"), Error);
  EXPECT_THROW(parse_int("", 0, 100, "n"), Error);
  EXPECT_THROW(parse_int(" 12", 0, 100, "n"), Error);  // whole-input rule
  EXPECT_THROW(parse_int("1.5", 0, 100, "n"), Error);
  EXPECT_THROW(parse_int("99999999999999999999", 0, 100, "n"), Error);
}

TEST(Strutil, ParseIntEnforcesRangeAndNamesTheFlag) {
  EXPECT_THROW(parse_int("101", 0, 100, "--count"), Error);
  EXPECT_THROW(parse_int("-1", 0, 100, "--count"), Error);
  try {
    parse_int("bogus", 0, 100, "--count");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string{e.what()}.find("--count"), std::string::npos);
    EXPECT_NE(std::string{e.what()}.find("bogus"), std::string::npos);
  }
}

TEST(Strutil, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("2.5", 0.0, 10.0, "x"), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("1e-3", 0.0, 1.0, "x"), 1e-3);
  EXPECT_THROW(parse_double("nan", 0.0, 1.0, "x"), Error);
  EXPECT_THROW(parse_double("inf", 0.0, 1.0, "x"), Error);
  EXPECT_THROW(parse_double("2.5pt", 0.0, 10.0, "x"), Error);
  EXPECT_THROW(parse_double("11.0", 0.0, 10.0, "x"), Error);
  EXPECT_THROW(parse_double("", 0.0, 10.0, "x"), Error);
}

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    MOG_CHECK(1 == 2, "impossible arithmetic");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string{e.what()}.find("impossible arithmetic"),
              std::string::npos);
    EXPECT_NE(std::string{e.what()}.find("1 == 2"), std::string::npos);
  }
}

TEST(Error, AssertMacroActiveInAllBuilds) {
  EXPECT_THROW(MOG_ASSERT(false, "invariant"), Error);
}

}  // namespace
}  // namespace mog
