// Telemetry subsystem: JSON round-trips, trace export well-formedness,
// counter rollup math, KernelStats accumulation validation, and the bench
// report schema.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <limits>

#include "mog/gpusim/stats.hpp"
#include "mog/telemetry/bench_report.hpp"
#include "mog/telemetry/counters.hpp"
#include "mog/telemetry/trace.hpp"

namespace mog::telemetry {
namespace {

// --- Json --------------------------------------------------------------------

TEST(Json, RoundTripsNestedDocument) {
  Json doc = Json::object();
  doc.set("null", Json{});
  doc.set("flag", Json{true});
  doc.set("int", Json{42.0});
  doc.set("neg", Json{-7.0});
  doc.set("frac", Json{0.125});
  doc.set("big", Json{1.5e300});
  doc.set("text", Json{std::string{"line\n\"quoted\"\tback\\slash"}});
  Json arr = Json::array();
  arr.push_back(Json{1.0});
  arr.push_back(Json{std::string{"two"}});
  arr.push_back(Json::object());
  doc.set("arr", std::move(arr));

  for (const int indent : {-1, 0, 2}) {
    const Json back = Json::parse(doc.dump(indent));
    EXPECT_EQ(back, doc) << "indent=" << indent;
  }
}

TEST(Json, IntegersPrintWithoutDecimalPoint) {
  EXPECT_EQ(Json{42.0}.dump(), "42");
  EXPECT_EQ(Json{-3.0}.dump(), "-3");
  EXPECT_EQ(Json{0.5}.dump(), "0.5");
}

TEST(Json, ParsesUnicodeEscapes) {
  // U+00E9 (é), and U+1F600 via a surrogate pair.
  const Json v = Json::parse(R"("café 😀")");
  EXPECT_EQ(v.as_string(), "caf\xc3\xa9 \xf0\x9f\x98\x80");
}

TEST(Json, PreservesKeyOrder) {
  const Json v = Json::parse(R"({"z": 1, "a": 2, "m": 3})");
  const auto& obj = v.as_object();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].first, "z");
  EXPECT_EQ(obj[1].first, "a");
  EXPECT_EQ(obj[2].first, "m");
}

TEST(Json, ParseErrorsThrow) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("tru"), Error);
  EXPECT_THROW(Json::parse("1 2"), Error);
  EXPECT_THROW(Json::parse(R"("\x")"), Error);
}

// Regression: the scan-then-strtod number parser accepted any strtod-able
// prefix, so malformed literals ("1.2.3", "07.", "1e") parsed as numbers a
// writer never produced. The parser now enforces the JSON number grammar.
TEST(Json, RejectsMalformedNumbers) {
  for (const char* bad : {"1.2.3", "1e", "1e+", "-", "-.", "07.", "01", "1.",
                          ".5", "+1", "0x10", "1.e5", "--1", "1e1.5", "Inf",
                          "NaN", "1_000"})
    EXPECT_THROW(Json::parse(bad), Error) << bad;
}

TEST(Json, AcceptsGrammaticalNumbers) {
  EXPECT_DOUBLE_EQ(Json::parse("0").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(Json::parse("-0").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(Json::parse("0.5").as_number(), 0.5);
  EXPECT_DOUBLE_EQ(Json::parse("-12.25e2").as_number(), -1225.0);
  EXPECT_DOUBLE_EQ(Json::parse("3E-2").as_number(), 0.03);
  EXPECT_DOUBLE_EQ(Json::parse("1e+3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(Json::parse("[0.0625]").as_array()[0].as_number(), 0.0625);
}

// Regression: a lone low surrogate was encoded straight to (invalid) UTF-8,
// and an unpaired high surrogate at end-of-input read past the buffer.
TEST(Json, RejectsUnpairedSurrogatesAndTruncatedEscapes) {
  for (const char* bad :
       {R"("\udc00")",          // lone low surrogate
        R"("\ud800")",          // lone high surrogate, string then ends
        R"("\ud800x")",         // high surrogate followed by a plain char
        R"("\ud800\n")",        // high surrogate followed by a non-\u escape
        R"("\ud800\ud801")",    // high surrogate followed by another high
        R"("\ud800A")",    // high surrogate paired with a non-surrogate
        R"("\u12)",             // truncated hex quad
        R"("\ud800\u12")",      // truncated low half
        R"("\)",                // truncated escape at end of input
        R"("abc)"})             // unterminated string
    EXPECT_THROW(Json::parse(bad), Error) << bad;
}

TEST(Json, AcceptsValidSurrogatePairs) {
  // The escaped pair for U+1F600 must decode to the 4-byte UTF-8 sequence.
  const Json v = Json::parse("\"\\ud83d\\ude00\"");
  EXPECT_EQ(v.as_string(), "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsNonFiniteNumbers) {
  EXPECT_THROW(Json{std::numeric_limits<double>::infinity()}.dump(), Error);
}

// --- TraceRecorder -----------------------------------------------------------

TEST(TraceRecorder, ExportIsWellFormedChromeTrace) {
  TraceRecorder rec;
  {
    auto sp = rec.span("kernel", "sim");
    sp.arg("frame", 3);
  }
  rec.instant("retry", "recovery", {{"attempt", 1}});
  rec.counter("tier", 2);
  rec.complete("upload", "modeled", TraceRecorder::kModeledTrack, 100, 50,
               {{"frames", 1}});

  const Json doc = Json::parse(rec.to_json().dump(2));
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // 3 thread_name metadata events + the 4 recorded ones.
  ASSERT_EQ(events->as_array().size(), 7u);
  for (const Json& ev : events->as_array()) {
    ASSERT_NE(ev.find("name"), nullptr);
    ASSERT_NE(ev.find("ph"), nullptr);
    ASSERT_NE(ev.find("pid"), nullptr);
  }
  // The explicit-timestamp event survives verbatim.
  const Json& upload = events->as_array().back();
  EXPECT_EQ(upload.find("name")->as_string(), "upload");
  EXPECT_EQ(upload.find("ts")->as_number(), 100);
  EXPECT_EQ(upload.find("dur")->as_number(), 50);
  EXPECT_EQ(upload.find("tid")->as_number(), TraceRecorder::kModeledTrack);
}

TEST(TraceRecorder, BoundedCapacityCountsDrops) {
  TraceRecorder rec{4};
  for (int i = 0; i < 10; ++i) rec.instant("e");
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  const Json doc = rec.to_json();
  EXPECT_EQ(doc.find("otherData")->find("dropped_events")->as_number(), 6);
}

TEST(TraceRecorder, MovedFromSpanDoesNotEmit) {
  TraceRecorder rec;
  {
    auto sp = rec.span("outer");
    auto sp2 = std::move(sp);
  }
  EXPECT_EQ(rec.size(), 1u);
}

// --- percentiles / rollups ---------------------------------------------------

TEST(Percentile, MatchesLinearInterpolation) {
  const std::vector<double> s{15.0, 20.0, 35.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(s, 0), 15.0);
  EXPECT_DOUBLE_EQ(percentile(s, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(s, 50), 35.0);
  EXPECT_DOUBLE_EQ(percentile(s, 25), 20.0);
  // numpy.percentile([15,20,35,40,50], 40) == 29.0
  EXPECT_DOUBLE_EQ(percentile(s, 40), 29.0);
}

TEST(Percentile, SingleSampleAndValidation) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99), 7.0);
  // An empty series is a normal live-scrape state, not an error: it must
  // report 0, never abort the exposition.
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 100), 0.0);
  EXPECT_THROW(percentile({1.0}, -1), Error);
  EXPECT_THROW(percentile({1.0}, 101), Error);
}

TEST(Rollup, ComputesSummaryStatistics) {
  const Rollup r = make_rollup({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(r.count, 4u);
  EXPECT_DOUBLE_EQ(r.total, 10.0);
  EXPECT_DOUBLE_EQ(r.mean, 2.5);
  EXPECT_DOUBLE_EQ(r.min, 1.0);
  EXPECT_DOUBLE_EQ(r.max, 4.0);
  EXPECT_DOUBLE_EQ(r.p50, 2.5);
}

TEST(Rollup, EmptyAndSingleSampleEdges) {
  // count == 0: every statistic well-defined and NaN-free.
  const Rollup empty = make_rollup({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.total, 0.0);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  EXPECT_DOUBLE_EQ(empty.min, 0.0);
  EXPECT_DOUBLE_EQ(empty.max, 0.0);
  EXPECT_DOUBLE_EQ(empty.p50, 0.0);
  EXPECT_DOUBLE_EQ(empty.p90, 0.0);
  EXPECT_DOUBLE_EQ(empty.p99, 0.0);

  // count == 1: every percentile collapses to the sample.
  const Rollup one = make_rollup({42.0});
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 42.0);
  EXPECT_DOUBLE_EQ(one.min, 42.0);
  EXPECT_DOUBLE_EQ(one.max, 42.0);
  EXPECT_DOUBLE_EQ(one.p50, 42.0);
  EXPECT_DOUBLE_EQ(one.p99, 42.0);
}

// --- CounterRegistry ---------------------------------------------------------

gpusim::KernelStats launch_stats(std::uint64_t loads, int tpb) {
  gpusim::KernelStats s;
  s.load_transactions = loads;
  s.threads_per_block = tpb;
  s.regs_per_thread = 20;
  return s;
}

TEST(CounterRegistry, RollsUpExtensiveAndIntensiveMetrics) {
  CounterRegistry reg;
  reg.on_kernel_launch(launch_stats(100, 128));
  reg.on_kernel_launch(launch_stats(300, 640));
  EXPECT_EQ(reg.launches(), 2u);

  // Extensive: totals across launches, divided per frame.
  EXPECT_DOUBLE_EQ(reg.per_run("load_transactions"), 400.0);
  EXPECT_DOUBLE_EQ(reg.per_frame("load_transactions", 8), 50.0);
  // Intensive: launch mean in both views (mixed block shapes are fine —
  // the registry samples per launch instead of summing KernelStats).
  EXPECT_DOUBLE_EQ(reg.per_run("threads_per_block"), 384.0);
  EXPECT_DOUBLE_EQ(reg.per_frame("threads_per_block", 8), 384.0);

  const Rollup r = reg.rollup("load_transactions");
  EXPECT_EQ(r.count, 2u);
  EXPECT_DOUBLE_EQ(r.min, 100.0);
  EXPECT_DOUBLE_EQ(r.max, 300.0);

  const Json doc = reg.to_json();
  EXPECT_EQ(doc.find("launches")->as_number(), 2);
  ASSERT_NE(doc.find("metrics")->find("load_transactions"), nullptr);

  reg.clear();
  EXPECT_EQ(reg.launches(), 0u);
  EXPECT_TRUE(reg.samples("load_transactions").empty());
}

// --- KernelStats validation --------------------------------------------------

TEST(KernelStats, AccumulateRejectsMismatchedLaunchShapes) {
  gpusim::KernelStats a = launch_stats(10, 128);
  EXPECT_THROW(a += launch_stats(10, 640), Error);
  // A default-constructed (shapeless) side is fine in either direction.
  gpusim::KernelStats fresh;
  EXPECT_NO_THROW(fresh += a);
  EXPECT_EQ(fresh.threads_per_block, 128);
  EXPECT_NO_THROW(a += gpusim::KernelStats{});
  EXPECT_EQ(a.threads_per_block, 128);
}

TEST(KernelStats, AveragedOverRejectsZeroLaunches) {
  EXPECT_THROW(launch_stats(10, 128).averaged_over(0), Error);
  const gpusim::KernelStats avg = launch_stats(10, 128).averaged_over(2);
  EXPECT_EQ(avg.load_transactions, 5u);
}

// --- BenchReporter -----------------------------------------------------------

TEST(BenchReporter, SchemaRoundTrip) {
  BenchReporter rep{"unit"};
  rep.set_workload(192, 108, 12);
  rep.set_tolerance("speedup", 0.1);
  rep.add_case("A").metric("speedup", 17.5).metric("wall_ms", 3.0);
  rep.add_case("B").metric("speedup", 96.0);
  // Reopening a case appends to it instead of duplicating the name.
  rep.add_case("A").metric("occupancy", 0.45);
  EXPECT_EQ(rep.num_cases(), 2u);

  const Json doc = Json::parse(rep.to_json().dump(2));
  EXPECT_EQ(doc.find("schema_version")->as_number(),
            BenchReporter::kSchemaVersion);
  EXPECT_EQ(doc.find("bench")->as_string(), "unit");
  EXPECT_EQ(doc.find("workload")->find("width")->as_number(), 192);
  EXPECT_EQ(doc.find("tolerances")->find("speedup")->as_number(), 0.1);
  const auto& cases = doc.find("cases")->as_array();
  ASSERT_EQ(cases.size(), 2u);
  EXPECT_EQ(cases[0].find("name")->as_string(), "A");
  EXPECT_EQ(cases[0].find("metrics")->find("occupancy")->as_number(), 0.45);
  ASSERT_NE(doc.find("host"), nullptr);
  EXPECT_NE(doc.find("host")->find("compiler"), nullptr);
}

TEST(BenchReporter, CountersExpandWithPrefix) {
  BenchReporter rep{"unit"};
  rep.add_case("A").counters(launch_stats(123, 128));
  const Json doc = rep.to_json();
  const Json* metrics = doc.find("cases")->as_array()[0].find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->find("ctr_load_transactions")->as_number(), 123);
  EXPECT_EQ(metrics->find("ctr_threads_per_block")->as_number(), 128);
}

TEST(BenchReporter, WritesNamedFile) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "mog_telemetry_test_reports";
  std::filesystem::remove_all(dir);
  BenchReporter rep{"file_test"};
  rep.add_case("A").metric("x", 1.0);
  const std::string path = rep.write_file(dir.string());
  EXPECT_EQ(std::filesystem::path{path}.filename(), "BENCH_file_test.json");
  const Json back = read_json_file(path);
  EXPECT_EQ(back.find("bench")->as_string(), "file_test");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mog::telemetry
