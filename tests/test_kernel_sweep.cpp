// Property-style sweep over the full kernel configuration space:
// every optimization level x precision x component count (plus tiled
// variants), each checked against the matching CPU reference for decision
// agreement and model sanity. This is the broad net behind the targeted
// tests in test_kernels.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "mog/cpu/serial_mog.hpp"
#include "mog/metrics/confusion.hpp"
#include "mog/pipeline/gpu_pipeline.hpp"
#include "mog/video/scene.hpp"

namespace mog {
namespace {

constexpr int kW = 64, kH = 32, kFrames = 12;

using SweepParam =
    std::tuple<kernels::OptLevel, bool /*float*/, int /*components*/>;

class KernelSweep : public ::testing::TestWithParam<SweepParam> {};

template <typename T>
void run_sweep(kernels::OptLevel level, int components) {
  SceneConfig sc;
  sc.width = kW;
  sc.height = kH;
  sc.seed = 1234;
  const SyntheticScene scene{sc};

  MogParams params;
  params.num_components = components;

  typename GpuMogPipeline<T>::Config cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.params = params;
  cfg.level = level;
  GpuMogPipeline<T> gpu{cfg};
  SerialMog<T> cpu{kW, kH, params};

  // Level G post-processes its masks on the device; the reference gets the
  // same cleaning (from the validated config) so decisions stay comparable.
  const MaskPostprocConfig& pp = gpu.config().postproc;
  const bool pp_active = pp.enabled && pp.validation.active();

  FrameU8 cpu_fg, gpu_fg;
  double disagreement = 0;
  for (int t = 0; t < kFrames; ++t) {
    const FrameU8 f = scene.frame(t);
    cpu.apply(f, cpu_fg);
    ASSERT_TRUE(gpu.process(f, gpu_fg));
    if (t >= 4)
      disagreement += mask_disagreement(
          pp_active ? validate_foreground(cpu_fg, pp.validation) : cpu_fg,
          gpu_fg);
  }
  // Decisions track the same-precision CPU reference closely for every
  // configuration (F's diff rewrite flips a small fraction; others are
  // near-exact).
  EXPECT_LT(disagreement / (kFrames - 4), 0.02);

  // Model state remains sane.
  const MogModel<T> m = gpu.model();
  for (std::size_t p = 0; p < m.num_pixels(); p += 3) {
    T sum{};
    for (int k = 0; k < components; ++k) {
      ASSERT_TRUE(std::isfinite(static_cast<double>(m.weight(p, k))));
      ASSERT_TRUE(std::isfinite(static_cast<double>(m.mean(p, k))));
      ASSERT_GE(m.sd(p, k), static_cast<T>(params.min_sd) - T(1e-5));
      sum += m.weight(p, k);
    }
    ASSERT_NEAR(static_cast<double>(sum), 1.0, 1e-5);
  }

  // Profiler counters are populated and self-consistent.
  const auto stats = gpu.per_frame_stats();
  EXPECT_GT(stats.issue_cycles, 0u);
  EXPECT_GT(stats.load_transactions, 0u);
  EXPECT_GT(stats.branches_executed, stats.branches_divergent);
  EXPECT_GT(gpu.occupancy().achieved, 0.05);
  EXPECT_GT(gpu.modeled_seconds(), 0.0);
}

TEST_P(KernelSweep, TracksCpuReferenceAndStaysSane) {
  const auto [level, use_float, components] = GetParam();
  if (use_float)
    run_sweep<float>(level, components);
  else
    run_sweep<double>(level, components);
}

INSTANTIATE_TEST_SUITE_P(
    FullMatrix, KernelSweep,
    ::testing::Combine(::testing::ValuesIn(kernels::kAllLevels),
                       ::testing::Bool(), ::testing::Values(3, 5)),
    [](const auto& suite_info) {
      return std::string(kernels::to_string(std::get<0>(suite_info.param))) +
             (std::get<1>(suite_info.param) ? "_f32_K" : "_f64_K") +
             std::to_string(std::get<2>(suite_info.param));
    });

// Tiled sweep: precision x component count at a fixed group size.
using TiledParam = std::tuple<bool /*float*/, int /*components*/>;
class TiledSweep : public ::testing::TestWithParam<TiledParam> {};

template <typename T>
void run_tiled_sweep(int components) {
  SceneConfig sc;
  sc.width = kW;
  sc.height = kH;
  sc.seed = 77;
  const SyntheticScene scene{sc};

  MogParams params;
  params.num_components = components;

  typename GpuMogPipeline<T>::Config cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.params = params;
  cfg.tiled = true;
  cfg.tiled_config.frame_group = 4;
  cfg.tiled_config.tile_pixels = 64;
  GpuMogPipeline<T> gpu{cfg};
  SerialMog<T> cpu{kW, kH, params};

  FrameU8 cpu_fg, gpu_fg;
  std::vector<FrameU8> cpu_masks;
  for (int t = 0; t < 8; ++t) {
    const FrameU8 f = scene.frame(t);
    cpu.apply(f, cpu_fg);
    cpu_masks.push_back(cpu_fg);
    gpu.process(f, gpu_fg);
  }
  // Two complete groups: compare the final group's masks.
  const auto& masks = gpu.last_group_masks();
  ASSERT_EQ(masks.size(), 4u);
  double disagreement = 0;
  for (int i = 0; i < 4; ++i)
    disagreement +=
        mask_disagreement(masks[static_cast<std::size_t>(i)],
                          cpu_masks[static_cast<std::size_t>(4 + i)]);
  EXPECT_LT(disagreement / 4, 0.02);
  EXPECT_EQ(gpu.per_frame_stats().shared_bytes_per_block,
            3u * 64 * static_cast<unsigned>(components) * sizeof(T));
}

TEST_P(TiledSweep, TracksCpuReference) {
  const auto [use_float, components] = GetParam();
  if (use_float)
    run_tiled_sweep<float>(components);
  else
    run_tiled_sweep<double>(components);
}

INSTANTIATE_TEST_SUITE_P(
    PrecisionByComponents, TiledSweep,
    ::testing::Combine(::testing::Bool(), ::testing::Values(3, 5)),
    [](const auto& suite_info) {
      return std::string(std::get<0>(suite_info.param) ? "f32_K" : "f64_K") +
             std::to_string(std::get<1>(suite_info.param));
    });

}  // namespace
}  // namespace mog
