// Reproduction regression suite: asserts the paper's headline results hold
// within tolerance bands, so any change to the simulator, the kernels, or
// the calibration constants that breaks the reproduction fails CI.
//
// Paper targets (450 full-HD frames, double, K=3 unless stated):
//   speedups A..F:   13 / 41 / 57 / 85 / 86 / 97        (Fig. 8a)
//   tiled:           101x at frame group 8               (Fig. 10a)
//   float F:         105x                                (Fig. 12a)
//   5-Gaussian:      C 44x, F 92x                        (Fig. 11a)
//   quality:         F lowest, all >= 95% MS-SSIM        (Table IV)
#include <gtest/gtest.h>

#include <map>

#include "mog/pipeline/experiment.hpp"

namespace mog {
namespace {

using kernels::OptLevel;

ExperimentConfig repro_config() {
  ExperimentConfig cfg;
  cfg.width = 256;
  cfg.height = 144;
  cfg.frames = 12;
  cfg.warmup_frames = 4;
  cfg.seed = 7;
  return cfg;
}

/// Cache: each configuration is simulated once per test binary run.
const ExperimentResult& cached(const ExperimentConfig& cfg,
                               const std::string& key) {
  static std::map<std::string, ExperimentResult> cache;
  auto it = cache.find(key);
  if (it == cache.end()) it = cache.emplace(key, run_gpu_experiment(cfg)).first;
  return it->second;
}

const ExperimentResult& level_result(OptLevel level) {
  ExperimentConfig cfg = repro_config();
  cfg.level = level;
  return cached(cfg, std::string("L") + kernels::to_string(level));
}

const ExperimentResult& tiled_result(int group) {
  ExperimentConfig cfg = repro_config();
  cfg.level = OptLevel::kF;
  cfg.tiled = true;
  cfg.tiled_config.frame_group = group;
  if (cfg.frames < 2 * group) cfg.frames = 2 * group;
  return cached(cfg, "T" + std::to_string(group));
}

struct Band {
  OptLevel level;
  double paper;
  double lo, hi;
};

class SpeedupBands : public ::testing::TestWithParam<Band> {};

TEST_P(SpeedupBands, WithinToleranceOfPaper) {
  const Band band = GetParam();
  const double speedup = level_result(band.level).speedup;
  EXPECT_GE(speedup, band.lo) << "paper: " << band.paper << "x";
  EXPECT_LE(speedup, band.hi) << "paper: " << band.paper << "x";
}

INSTANTIATE_TEST_SUITE_P(
    Fig8, SpeedupBands,
    ::testing::Values(Band{OptLevel::kA, 13, 9, 26},
                      Band{OptLevel::kB, 41, 30, 55},
                      Band{OptLevel::kC, 57, 43, 76},
                      Band{OptLevel::kD, 85, 64, 115},
                      Band{OptLevel::kE, 86, 64, 115},
                      Band{OptLevel::kF, 97, 73, 122}),
    [](const auto& suite_info) {
      return std::string{kernels::to_string(suite_info.param.level)};
    });

TEST(Reproduction, LadderOrderingMatchesPaper) {
  // A < B < C < {D,E} < F; the paper's D/E gap is 1%, ours may invert by a
  // few percent (documented), so D and E are only required to sit between
  // C and F.
  const double a = level_result(OptLevel::kA).speedup;
  const double b = level_result(OptLevel::kB).speedup;
  const double c = level_result(OptLevel::kC).speedup;
  const double d = level_result(OptLevel::kD).speedup;
  const double e = level_result(OptLevel::kE).speedup;
  const double f = level_result(OptLevel::kF).speedup;
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
  EXPECT_LT(c, e);
  EXPECT_GT(f, c);
  EXPECT_GE(f * 1.05, d);  // F is the best non-tiled level (5% slack)
  EXPECT_GE(f * 1.05, e);
}

TEST(Reproduction, GeneralOptimizationsDominatedByCoalescing) {
  // Fig. 6: A -> B is the big memory jump.
  const auto& a = level_result(OptLevel::kA);
  const auto& b = level_result(OptLevel::kB);
  EXPECT_LT(a.per_frame.memory_access_efficiency(), 0.25);  // paper 17%
  EXPECT_GT(b.per_frame.memory_access_efficiency(), 0.55);  // paper 78%
  EXPECT_GT(b.speedup / a.speedup, 1.8);  // paper 3.2x
}

TEST(Reproduction, OverlapHidesTransfers) {
  // Fig. 5 / B -> C: same kernel, sizeable gain from scheduling alone.
  const auto& b = level_result(OptLevel::kB);
  const auto& c = level_result(OptLevel::kC);
  EXPECT_NEAR(static_cast<double>(c.per_frame.issue_cycles),
              static_cast<double>(b.per_frame.issue_cycles),
              0.01 * static_cast<double>(b.per_frame.issue_cycles));
  EXPECT_GT(c.speedup / b.speedup, 1.2);  // paper 57/41 = 1.39
}

TEST(Reproduction, PredicationReachesNearPerfectEfficiencies) {
  // Fig. 7: E's branch efficiency 99.5%, memory efficiency ~100%.
  const auto& e = level_result(OptLevel::kE);
  EXPECT_GT(e.per_frame.branch_efficiency(), 0.97);
  EXPECT_GT(e.per_frame.memory_access_efficiency(), 0.90);
}

TEST(Reproduction, OccupancyImprovesAcrossAlgSpecificSteps) {
  // Fig. 8b: occupancy 52% at C rises to 65% at F (ours: C < F).
  const auto& c = level_result(OptLevel::kC);
  const auto& f = level_result(OptLevel::kF);
  EXPECT_GT(f.occupancy.achieved, c.occupancy.achieved);
  EXPECT_GT(f.occupancy.achieved, 0.45);
  EXPECT_LT(c.occupancy.achieved, 0.60);
}

TEST(Reproduction, TiledPeaksNearPaperValue) {
  // Fig. 10a: ~101x at frame group 8.
  const double t8 = tiled_result(8).speedup;
  EXPECT_GE(t8, 76);   // 101 - 25%
  EXPECT_LE(t8, 126);  // 101 + 25%
}

TEST(Reproduction, TiledSweepShape) {
  // Fig. 10: speedup rises steeply to g=8 then saturates; memory access
  // efficiency decreases monotonically with the group size.
  const double g1 = tiled_result(1).speedup;
  const double g8 = tiled_result(8).speedup;
  const double g32 = tiled_result(32).speedup;
  EXPECT_GT(g8, 1.3 * g1);
  EXPECT_LT(std::abs(g32 - g8) / g8, 0.15);  // saturation beyond 8
  EXPECT_GT(tiled_result(1).per_frame.memory_access_efficiency(),
            tiled_result(8).per_frame.memory_access_efficiency());
  EXPECT_GT(tiled_result(8).per_frame.memory_access_efficiency(),
            tiled_result(32).per_frame.memory_access_efficiency());
  EXPECT_LT(tiled_result(32).per_frame.memory_access_efficiency(), 0.75);
}

TEST(Reproduction, TiledOccupancyIsSharedMemoryLimited) {
  // Fig. 10b: ~40% occupancy, bound by the 46 KB/block parameter residency.
  const auto& t8 = tiled_result(8);
  EXPECT_NEAR(t8.occupancy.achieved, 0.40, 0.08);
  EXPECT_EQ(t8.occupancy.limiter, gpusim::Occupancy::Limiter::kSharedMem);
}

TEST(Reproduction, FloatReachesPaperSpeedup) {
  // Fig. 12a: float F at 105x (vs the float CPU baseline).
  ExperimentConfig cfg = repro_config();
  cfg.level = OptLevel::kF;
  cfg.precision = Precision::kFloat;
  const auto& r = cached(cfg, "Ffloat");
  EXPECT_GE(r.speedup, 79);   // 105 - 25%
  EXPECT_LE(r.speedup, 131);  // 105 + 25%
  // Float frees the register file: occupancy at least that of double F.
  EXPECT_GE(r.occupancy.achieved,
            level_result(OptLevel::kF).occupancy.achieved);
}

TEST(Reproduction, FiveGaussiansSlowerAndHungrier) {
  // Fig. 11: 5-Gaussian runs slower than 3-Gaussian at the same level and
  // uses more registers (lower occupancy).
  ExperimentConfig cfg = repro_config();
  cfg.level = OptLevel::kF;
  cfg.params.num_components = 5;
  const auto& k5 = cached(cfg, "F5");
  const auto& k3 = level_result(OptLevel::kF);
  EXPECT_LT(k5.speedup, k3.speedup);
  EXPECT_GT(k5.per_frame.regs_per_thread, k3.per_frame.regs_per_thread);
  EXPECT_LT(k5.occupancy.achieved, k3.occupancy.achieved);
  // Paper band for F at K=5: 92x ± 35%.
  EXPECT_GE(k5.speedup, 55);
  EXPECT_LE(k5.speedup, 125);
}

TEST(Reproduction, QualityShapeMatchesTableIV) {
  // Table IV: F is the only level whose rewrite changes decisions; all
  // levels stay >= 95% MS-SSIM. (A..E are bit-exact against the CPU
  // reference here — both sides are IEEE; see EXPERIMENTS.md.)
  ExperimentConfig cfg = repro_config();
  cfg.frames = 16;
  cfg.warmup_frames = 6;
  cfg.measure_quality = true;

  cfg.level = OptLevel::kB;
  const auto& b = cached(cfg, "QB");
  cfg.level = OptLevel::kF;
  const auto& f = cached(cfg, "QF");

  EXPECT_GE(b.msssim_foreground, 0.999);
  EXPECT_GE(b.msssim_background, 0.99);
  EXPECT_GE(f.msssim_foreground, 0.95);      // paper: 95%
  EXPECT_LE(f.msssim_foreground, 0.9999);    // F genuinely differs
  EXPECT_GT(f.fg_disagreement, 0.0);
  EXPECT_EQ(b.fg_disagreement, 0.0);
}

TEST(Reproduction, RegistersSitInPaperRange) {
  // §IV-C discusses 30-36 registers/thread; our tracker should land in the
  // same neighbourhood for every level.
  for (const auto level : kernels::kAllLevels) {
    const int regs = level_result(level).per_frame.regs_per_thread;
    EXPECT_GE(regs, 25) << kernels::to_string(level);
    EXPECT_LE(regs, 45) << kernels::to_string(level);
  }
}

}  // namespace
}  // namespace mog
