// Tests for the GPU simulator: device memory, coalescing analysis (known
// address patterns → exact transaction counts), divergence accounting,
// masked commits, register tracking, shared-memory bank conflicts, the
// occupancy calculator (checked against CUDA occupancy rules for cc2.0),
// the timing model, and the transfer schedules.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mog/gpusim/kernel_launch.hpp"
#include "mog/gpusim/occupancy.hpp"
#include "mog/gpusim/timing_model.hpp"
#include "mog/gpusim/transfer_model.hpp"

namespace mog::gpusim {
namespace {

// ---------------------------------------------------------------------------
// DeviceMemory
// ---------------------------------------------------------------------------

TEST(DeviceMemory, AllocatesAlignedDisjointRegions) {
  DeviceMemory mem{1 << 20};
  const auto a = mem.alloc<double>(100);
  const auto b = mem.alloc<double>(100);
  EXPECT_EQ(a.dev_addr % 256, 0u);
  EXPECT_EQ(b.dev_addr % 256, 0u);
  EXPECT_GE(b.dev_addr, a.dev_addr + 100 * sizeof(double));
  EXPECT_NE(a.data, b.data);
}

TEST(DeviceMemory, OutOfMemoryThrows) {
  DeviceMemory mem{1024};
  EXPECT_THROW(mem.alloc<double>(1000), Error);
}

TEST(DeviceMemory, CopyRoundTrip) {
  DeviceMemory mem{1 << 16};
  auto span = mem.alloc<int>(16);
  std::vector<int> src(16);
  std::iota(src.begin(), src.end(), 0);
  EXPECT_EQ(copy_to_device(span, src.data(), 16), 16 * sizeof(int));
  std::vector<int> dst(16, -1);
  EXPECT_EQ(copy_from_device(dst.data(), span, 16), 16 * sizeof(int));
  EXPECT_EQ(src, dst);
}

TEST(DeviceMemory, SubspanAddressing) {
  DeviceMemory mem{1 << 16};
  const auto span = mem.alloc<double>(64);
  const auto sub = span.subspan(8, 16);
  EXPECT_EQ(sub.dev_addr, span.dev_addr + 8 * sizeof(double));
  EXPECT_EQ(sub.count, 16u);
  EXPECT_THROW(span.subspan(60, 8), Error);
}

// ---------------------------------------------------------------------------
// Coalescer
// ---------------------------------------------------------------------------

KernelStats run_access(Coalescer::Kind kind,
                       const std::vector<std::uint64_t>& addrs,
                       unsigned bytes_per_lane) {
  DeviceSpec spec;
  Coalescer c{spec, kEffectiveL1SegmentsPerWarp};
  c.begin_warp();
  KernelStats stats;
  c.access(kind, addrs, bytes_per_lane, stats);
  return stats;
}

TEST(Coalescer, FullyCoalescedDoubleLoadIsTwoSegments) {
  // 32 consecutive doubles starting at a 128 B boundary: exactly two 128 B
  // load transactions, 100% efficiency.
  std::vector<std::uint64_t> addrs;
  for (int i = 0; i < 32; ++i) addrs.push_back(0x10000 + 8 * i);
  const KernelStats s = run_access(Coalescer::Kind::kLoad, addrs, 8);
  EXPECT_EQ(s.load_transactions, 2u);
  EXPECT_EQ(s.bytes_requested_load, 256u);
  EXPECT_EQ(s.bytes_transferred_load, 256u);
  EXPECT_DOUBLE_EQ(s.memory_access_efficiency(), 1.0);
}

TEST(Coalescer, StridedAoSLoadWastesBandwidth) {
  // The paper's Fig. 4a: 72-byte stride (3 components x 3 params x 8 B)
  // spans 2304 B = 18 segments of 128 B for 256 useful bytes ≈ 11%.
  std::vector<std::uint64_t> addrs;
  for (int i = 0; i < 32; ++i) addrs.push_back(0x10000 + 72 * i);
  const KernelStats s = run_access(Coalescer::Kind::kLoad, addrs, 8);
  EXPECT_EQ(s.load_transactions, 18u);
  EXPECT_NEAR(s.memory_access_efficiency(), 256.0 / (18 * 128), 1e-12);
}

TEST(Coalescer, CoalescedStoreUses32ByteSegments) {
  std::vector<std::uint64_t> addrs;
  for (int i = 0; i < 32; ++i) addrs.push_back(0x20000 + 8 * i);
  const KernelStats s = run_access(Coalescer::Kind::kStore, addrs, 8);
  EXPECT_EQ(s.store_transactions, 8u);  // 256 B / 32 B
  EXPECT_EQ(s.rmw_transactions, 0u);    // fully covered: no ECC RMW
  EXPECT_DOUBLE_EQ(s.memory_access_efficiency(), 1.0);
}

TEST(Coalescer, PartialStoreTriggersEccReadModifyWrite) {
  // Every second lane stores: each 32 B segment is half-covered, so every
  // store transaction drags an RMW read along.
  std::vector<std::uint64_t> addrs;
  for (int i = 0; i < 16; ++i) addrs.push_back(0x20000 + 16 * i);
  const KernelStats s = run_access(Coalescer::Kind::kStore, addrs, 8);
  EXPECT_EQ(s.store_transactions, 8u);
  EXPECT_EQ(s.rmw_transactions, 8u);
  // transferred = 8 writes + 8 RMW reads, requested = 128 B.
  EXPECT_NEAR(s.memory_access_efficiency(), 128.0 / (16 * 32), 1e-12);
}

TEST(Coalescer, DuplicateLaneStoresCountCoverageOnce) {
  // 32 lanes all storing the same 4-byte word: one 32 B store segment with
  // only 4 of 32 bytes covered → the ECC read-modify-write must fire.
  // Summed per-lane extents would claim 128 bytes of coverage and mask it.
  std::vector<std::uint64_t> addrs(32, 0x20000);
  const KernelStats s = run_access(Coalescer::Kind::kStore, addrs, 4);
  EXPECT_EQ(s.store_transactions, 1u);
  EXPECT_EQ(s.rmw_transactions, 1u);
}

TEST(Coalescer, OverlappingStoreExtentsDedupeByteCoverage) {
  // Lanes 0..15 write overlapping 4-byte spans at stride 2 covering bytes
  // [0, 34): segment 0 is fully covered (no RMW), segment 1 only holds two
  // bytes (RMW). The summed-extent bug saw 64 bytes on segment 0 either way,
  // but also masked genuinely partial patterns like segment 1's.
  std::vector<std::uint64_t> addrs;
  for (int i = 0; i < 16; ++i) addrs.push_back(0x20000 + 2 * i);
  const KernelStats s = run_access(Coalescer::Kind::kStore, addrs, 4);
  EXPECT_EQ(s.store_transactions, 2u);
  EXPECT_EQ(s.rmw_transactions, 1u);
}

TEST(Coalescer, L1WindowServesImmediateReuse) {
  DeviceSpec spec;
  Coalescer c{spec, kEffectiveL1SegmentsPerWarp};
  c.begin_warp();
  KernelStats s;
  std::vector<std::uint64_t> addrs;
  for (int i = 0; i < 32; ++i) addrs.push_back(0x10000 + 8 * i);
  c.access(Coalescer::Kind::kLoad, addrs, 8, s);
  EXPECT_EQ(s.load_transactions, 2u);
  c.access(Coalescer::Kind::kLoad, addrs, 8, s);  // same lines again
  EXPECT_EQ(s.load_transactions, 2u) << "second access must hit L1";
}

TEST(Coalescer, L1WindowThrashesOnWideFootprints) {
  // An 18-segment AoS access evicts everything (capacity 4): re-reading the
  // same addresses misses again — the paper's AoS eviction behaviour.
  DeviceSpec spec;
  Coalescer c{spec, kEffectiveL1SegmentsPerWarp};
  c.begin_warp();
  KernelStats s;
  std::vector<std::uint64_t> addrs;
  for (int i = 0; i < 32; ++i) addrs.push_back(0x10000 + 72 * i);
  c.access(Coalescer::Kind::kLoad, addrs, 8, s);
  c.access(Coalescer::Kind::kLoad, addrs, 8, s);
  EXPECT_EQ(s.load_transactions, 36u);
}

TEST(Coalescer, InactiveWarpEmitsNothing) {
  const KernelStats s = run_access(Coalescer::Kind::kLoad, {}, 8);
  EXPECT_EQ(s.load_transactions, 0u);
  EXPECT_EQ(s.load_instructions, 0u);
}

TEST(Coalescer, LsuReplayCountsDistinctLinesOnce) {
  // Two ascending unaligned 8-byte accesses both straddling the same 128 B
  // line boundary: lines {0, 1} are touched, so the replay charge is one
  // re-issue — the monotone fast path must not recount the shared line_last
  // per element.
  const KernelStats s =
      run_access(Coalescer::Kind::kLoad, {0x10000 + 124, 0x10000 + 126}, 8);
  const KernelStats one =
      run_access(Coalescer::Kind::kLoad, {0x10000 + 124}, 8);
  EXPECT_EQ(s.issue_cycles - one.issue_cycles, 0u)
      << "second straddler touches no new line: no extra replay";
}

TEST(Coalescer, LsuReplayMatchesBetweenMonotoneAndScatterOrder) {
  // The same address multiset must charge the same replay cycles whether the
  // lanes issue it ascending (monotone fast path) or permuted (scatter
  // path): distinct-line count is order-independent.
  std::vector<std::uint64_t> asc;
  for (int i = 0; i < 32; ++i) asc.push_back(0x30000 + 124 + 2 * i);
  std::vector<std::uint64_t> perm = asc;
  std::swap(perm[0], perm[31]);
  std::swap(perm[5], perm[17]);
  const KernelStats a = run_access(Coalescer::Kind::kLoad, asc, 8);
  const KernelStats b = run_access(Coalescer::Kind::kLoad, perm, 8);
  EXPECT_EQ(a.issue_cycles, b.issue_cycles);
}

TEST(SegmentCache, LruEviction) {
  SegmentCache cache{2};
  EXPECT_FALSE(cache.access(1));
  EXPECT_FALSE(cache.access(2));
  EXPECT_TRUE(cache.access(1));   // still resident, now MRU
  EXPECT_FALSE(cache.access(3));  // evicts 2
  EXPECT_TRUE(cache.access(1));
  EXPECT_FALSE(cache.access(2));
}

// ---------------------------------------------------------------------------
// Warp execution
// ---------------------------------------------------------------------------

/// Harness: run `fn(WarpCtx&)` as a single full warp and return the stats.
template <typename Fn>
KernelStats run_warp(Fn&& fn, int lanes = 32) {
  Device dev;
  LaunchConfig cfg;
  cfg.num_threads = lanes;
  cfg.threads_per_block = 32;
  return dev.launch(cfg, [&](BlockCtx& blk) {
    blk.parallel([&](WarpCtx& w) { fn(w); });
  });
}

TEST(Warp, ElementwiseArithmetic) {
  run_warp([](WarpCtx&) {
    Vec<double> a = Vec<double>::iota(0.0);
    Vec<double> b(2.0);
    const Vec<double> sum = a + b;
    const Vec<double> prod = a * b;
    EXPECT_DOUBLE_EQ(sum[5], 7.0);
    EXPECT_DOUBLE_EQ(prod[5], 10.0);
    EXPECT_DOUBLE_EQ(vabs(a - Vec<double>(31.0))[0], 31.0);
    EXPECT_DOUBLE_EQ(vsqrt(Vec<double>(16.0))[3], 4.0);
    EXPECT_DOUBLE_EQ(vfma(a, b, b)[4], 10.0);
    EXPECT_DOUBLE_EQ(vmax(a, Vec<double>(10.0))[3], 10.0);
    EXPECT_DOUBLE_EQ(vmin(a, Vec<double>(10.0))[3], 3.0);
  });
}

TEST(Warp, PredicatesAndSelect) {
  run_warp([](WarpCtx&) {
    const Vec<int32_t> lane = Vec<int32_t>::iota(0);
    const Pred low = vlt(lane, 16);
    EXPECT_TRUE(low.lane(3));
    EXPECT_FALSE(low.lane(20));
    const Vec<int32_t> sel = select(low, Vec<int32_t>(1), Vec<int32_t>(0));
    EXPECT_EQ(sel[3], 1);
    EXPECT_EQ(sel[20], 0);
    EXPECT_TRUE((low & ~low).bits == 0u);
    EXPECT_TRUE((low | ~low).bits == 0xffffffffu);
  });
}

TEST(Warp, DivergentBranchExecutesBothPathsUnderMask) {
  KernelStats s = run_warp([](WarpCtx& w) {
    const Vec<int32_t> lane = Vec<int32_t>::iota(0);
    Vec<int32_t> out(0);
    int then_runs = 0, else_runs = 0;
    w.if_then_else(
        vlt(lane, 8),
        [&] {
          ++then_runs;
          w.set(out, Vec<int32_t>(1));
        },
        [&] {
          ++else_runs;
          w.set(out, Vec<int32_t>(2));
        });
    EXPECT_EQ(then_runs, 1);
    EXPECT_EQ(else_runs, 1);
    EXPECT_EQ(out[3], 1);   // then-path lanes
    EXPECT_EQ(out[20], 2);  // else-path lanes
  });
  EXPECT_EQ(s.branches_executed, 1u);
  EXPECT_EQ(s.branches_divergent, 1u);
}

TEST(Warp, UniformBranchIsNotDivergent) {
  KernelStats s = run_warp([](WarpCtx& w) {
    const Vec<int32_t> lane = Vec<int32_t>::iota(0);
    int runs = 0;
    w.if_then(vlt(lane, 64), [&] { ++runs; });  // all lanes taken
    w.if_then(vlt(lane, -1), [&] { ++runs; });  // no lane taken
    EXPECT_EQ(runs, 1);
  });
  EXPECT_EQ(s.branches_executed, 2u);
  EXPECT_EQ(s.branches_divergent, 0u);
}

TEST(Warp, NestedMasksCompose) {
  run_warp([](WarpCtx& w) {
    const Vec<int32_t> lane = Vec<int32_t>::iota(0);
    Vec<int32_t> out(0);
    w.if_then(vlt(lane, 16), [&] {
      w.if_then(vge(lane, 8), [&] { w.set(out, Vec<int32_t>(7)); });
    });
    EXPECT_EQ(out[4], 0);
    EXPECT_EQ(out[12], 7);
    EXPECT_EQ(out[20], 0);
  });
}

TEST(Warp, MaskRestoredAfterBranch) {
  run_warp([](WarpCtx& w) {
    const std::uint32_t before = w.active_mask();
    w.if_then(vlt(Vec<int32_t>::iota(0), 4), [] {});
    EXPECT_EQ(w.active_mask(), before);
  });
}

TEST(Warp, WhileAnyDropsLanesOut) {
  KernelStats s = run_warp([](WarpCtx& w) {
    Vec<int32_t> remaining = Vec<int32_t>::iota(0);  // lane i loops i times
    Vec<int32_t> count(0);
    w.while_any([&] { return vgt(remaining, 0); },
                [&] {
                  w.set(count, count + Vec<int32_t>(1));
                  w.set(remaining, remaining - Vec<int32_t>(1));
                });
    EXPECT_EQ(count[0], 0);
    EXPECT_EQ(count[5], 5);
    EXPECT_EQ(count[31], 31);
    EXPECT_EQ(w.active_count(), 32);  // mask restored
  });
  // 32 loop-condition evaluations; every one except the final all-false
  // evaluation drops some-but-not-all lanes, i.e. diverges.
  EXPECT_EQ(s.branches_executed, 32u);
  EXPECT_EQ(s.branches_divergent, 31u);
}

TEST(Warp, RaggedLastWarpMasksHighLanes) {
  KernelStats s = run_warp(
      [](WarpCtx& w) {
        EXPECT_EQ(w.active_count(), 10);
        EXPECT_EQ(w.active_mask(), (1u << 10) - 1);
      },
      /*lanes=*/10);
  EXPECT_EQ(s.num_warps, 1u);
}

TEST(Warp, GlobalIdsFollowBlockDecomposition) {
  // Serial executor: the test records warp bases into a host vector and
  // asserts their order, which is only defined for single-threaded launches.
  DeviceSpec spec;
  spec.executor_threads = 1;
  Device dev{spec};
  LaunchConfig cfg;
  cfg.num_threads = 256;
  cfg.threads_per_block = 64;
  std::vector<std::int64_t> bases;
  dev.launch(cfg, [&](BlockCtx& blk) {
    blk.parallel([&](WarpCtx& w) { bases.push_back(w.global_base()); });
  });
  EXPECT_EQ(bases, (std::vector<std::int64_t>{0, 32, 64, 96, 128, 160, 192,
                                              224}));
}

TEST(Warp, LoadStoreRoundTripAndCounters) {
  Device dev;
  auto buf = dev.memory().alloc<double>(32);
  for (int i = 0; i < 32; ++i) buf.data[i] = i;
  LaunchConfig cfg;
  cfg.num_threads = 32;
  cfg.threads_per_block = 32;
  const KernelStats s = dev.launch(cfg, [&](BlockCtx& blk) {
    blk.parallel([&](WarpCtx& w) {
      const Vec<Addr> idx = w.global_ids();
      Vec<double> v = w.load<double>(buf, idx);
      EXPECT_DOUBLE_EQ(v[7], 7.0);
      w.store(buf, idx, v + Vec<double>(1.0));
    });
  });
  EXPECT_DOUBLE_EQ(buf.data[7], 8.0);
  EXPECT_EQ(s.load_instructions, 1u);
  EXPECT_EQ(s.store_instructions, 1u);
  EXPECT_EQ(s.load_transactions, 2u);
  EXPECT_EQ(s.store_transactions, 8u);
}

TEST(Warp, MaskedStoreOnlyTouchesActiveLanes) {
  Device dev;
  auto buf = dev.memory().alloc<int>(32);
  for (int i = 0; i < 32; ++i) buf.data[i] = -1;
  LaunchConfig cfg;
  cfg.num_threads = 32;
  cfg.threads_per_block = 32;
  dev.launch(cfg, [&](BlockCtx& blk) {
    blk.parallel([&](WarpCtx& w) {
      const Vec<Addr> idx = w.global_ids();
      w.if_then(vlt(Vec<int32_t>::iota(0), 4),
                [&] { w.store(buf, idx, Vec<int32_t>(9)); });
    });
  });
  EXPECT_EQ(buf.data[0], 9);
  EXPECT_EQ(buf.data[3], 9);
  EXPECT_EQ(buf.data[4], -1);
}

TEST(Warp, OutOfBoundsAccessIsCaught) {
  Device dev;
  auto buf = dev.memory().alloc<int>(16);
  LaunchConfig cfg;
  cfg.num_threads = 32;
  cfg.threads_per_block = 32;
  EXPECT_THROW(dev.launch(cfg,
                          [&](BlockCtx& blk) {
                            blk.parallel([&](WarpCtx& w) {
                              w.load<int>(buf, w.global_ids());
                            });
                          }),
               Error);
}

TEST(Warp, IotaAndCast) {
  run_warp([](WarpCtx&) {
    const Vec<int32_t> stepped = Vec<int32_t>::iota(10, 3);
    EXPECT_EQ(stepped[0], 10);
    EXPECT_EQ(stepped[4], 22);
    const Vec<double> as_double = vcast<double>(stepped);
    EXPECT_DOUBLE_EQ(as_double[4], 22.0);
    const Vec<int32_t> truncated = vcast<int32_t>(Vec<double>(3.9));
    EXPECT_EQ(truncated[7], 3);
  });
}

TEST(Warp, FloatArithmeticChargesLessThanDouble) {
  const KernelStats f32 = run_warp([](WarpCtx&) {
    Vec<float> a(1.0f), b(2.0f);
    for (int i = 0; i < 10; ++i) a = a * b + b;
  });
  const KernelStats f64 = run_warp([](WarpCtx&) {
    Vec<double> a(1.0), b(2.0);
    for (int i = 0; i < 10; ++i) a = a * b + b;
  });
  EXPECT_LT(f32.issue_cycles, f64.issue_cycles);
}

TEST(Warp, DivisionAndSqrtAreExpensive) {
  const KernelStats cheap = run_warp([](WarpCtx&) {
    Vec<double> a(5.0), b(2.0);
    (void)(a * b);
  });
  const KernelStats costly = run_warp([](WarpCtx&) {
    Vec<double> a(5.0), b(2.0);
    (void)(a / b);
    (void)vsqrt(a);
  });
  EXPECT_GT(costly.issue_cycles, 10 * cheap.issue_cycles);
}

TEST(Warp, DivisionByZeroLanesStayFinite) {
  run_warp([](WarpCtx&) {
    Vec<double> num(4.0), den(0.0);
    const Vec<double> q = num / den;
    EXPECT_DOUBLE_EQ(q[0], 0.0);  // guarded, not inf/NaN
    EXPECT_DOUBLE_EQ((4.0 / Vec<double>(2.0))[3], 2.0);
  });
}

TEST(Warp, LaneMaxReduction) {
  run_warp([](WarpCtx& w) {
    const Vec<int32_t> v = Vec<int32_t>::iota(0);
    EXPECT_EQ(w.lane_max(v), 31);
    w.if_then(vlt(v, 5), [&] { EXPECT_EQ(w.lane_max(v), 4); });
    w.if_then(vlt(v, -1), [&] { FAIL() << "no lanes active"; });
  });
}

TEST(Warp, PartialWarpLoadLeavesInactiveLanesZero) {
  Device dev;
  auto buf = dev.memory().alloc<double>(32);
  for (int i = 0; i < 32; ++i) buf.data[i] = 7.0;
  LaunchConfig cfg;
  cfg.num_threads = 8;  // only 8 lanes active
  cfg.threads_per_block = 32;
  dev.launch(cfg, [&](BlockCtx& blk) {
    blk.parallel([&](WarpCtx& w) {
      const Vec<double> v = w.load<double>(buf, w.global_ids());
      EXPECT_DOUBLE_EQ(v[3], 7.0);
      EXPECT_DOUBLE_EQ(v[20], 0.0);
    });
  });
}

TEST(Stats, AveragedOverDividesExtensiveCounters) {
  KernelStats s;
  s.issue_cycles = 100;
  s.load_transactions = 40;
  s.regs_per_thread = 33;
  s.num_warps = 10;
  const KernelStats avg = s.averaged_over(10);
  EXPECT_EQ(avg.issue_cycles, 10u);
  EXPECT_EQ(avg.load_transactions, 4u);
  EXPECT_EQ(avg.num_warps, 1u);
  EXPECT_EQ(avg.regs_per_thread, 33);  // intensive: unchanged
}

TEST(Stats, AccumulateTakesMaxOfResources) {
  KernelStats a, b;
  a.regs_per_thread = 30;
  a.shared_bytes_per_block = 1024;
  b.regs_per_thread = 35;
  b.shared_bytes_per_block = 512;
  a += b;
  EXPECT_EQ(a.regs_per_thread, 35);
  EXPECT_EQ(a.shared_bytes_per_block, 1024u);
}

TEST(Occupancy, EmbeddedSpecUsesKeplerLimits) {
  const DeviceSpec spec = embedded_device_spec();
  EXPECT_EQ(spec.max_warps_per_sm, 64);
  // 32 regs, 128 tpb on Kepler: the 16-block limit binds first.
  const Occupancy occ = compute_occupancy(spec, 32, 128, 0);
  EXPECT_EQ(occ.blocks_per_sm, 16);
  EXPECT_EQ(occ.warps_per_sm, 64);
  EXPECT_NEAR(occ.theoretical, 1.0, 1e-12);
}

TEST(Warp, RegisterTrackingSeesLiveVecs) {
  KernelStats few = run_warp([](WarpCtx&) {
    Vec<double> a(1.0), b(2.0);
    (void)(a + b);
  });
  KernelStats many = run_warp([](WarpCtx&) {
    std::vector<Vec<double>> arrs(8, Vec<double>(1.0));
    Vec<double> acc(0.0);
    for (auto& a : arrs) acc = acc + a;
  });
  EXPECT_GT(many.regs_per_thread, few.regs_per_thread);
}

TEST(Warp, VecConstructedOutsideKernelCannotUnderflowRegTracker) {
  // A Vec constructed while no kernel runs (exec_env() == nullptr) is never
  // register-tracked; destroying it while a later kernel runs on the same
  // thread must not release words it never allocated. Before the tracked_
  // flag, the release drove live_words negative, so the kernel's own Vecs
  // climbed back through zero and regs_per_thread under-reported.
  auto kernel_body = [](WarpCtx&) {
    std::vector<Vec<double>> arrs(4, Vec<double>(1.0));
    Vec<double> acc(0.0);
    for (auto& a : arrs) acc = acc + a;
  };
  const KernelStats clean = run_warp(kernel_body);

  auto outside = std::make_unique<Vec<double>>(5.0);  // untracked
  DeviceSpec spec;
  spec.executor_threads = 1;  // blocks run on this thread
  Device dev{spec};
  LaunchConfig cfg;
  cfg.num_threads = 32;
  cfg.threads_per_block = 32;
  const KernelStats poisoned = dev.launch(cfg, [&](BlockCtx& blk) {
    blk.parallel([&](WarpCtx& w) {
      outside.reset();  // destroyed mid-warp, while exec_env() is installed
      kernel_body(w);
    });
  });
  EXPECT_EQ(poisoned.regs_per_thread, clean.regs_per_thread);
}

TEST(Warp, VcastChargesDestinationWidth) {
  // vcast cycle cost must follow the destination type: float→double runs on
  // the half-rate DP pipe, float→int on the int pipe (it used to flat-charge
  // kCyclesSpArith regardless).
  const KernelStats base = run_warp([](WarpCtx&) { Vec<float> a(1.0f); });
  const KernelStats to_dp = run_warp([](WarpCtx&) {
    Vec<float> a(1.0f);
    (void)vcast<double>(a);
  });
  const KernelStats to_int = run_warp([](WarpCtx&) {
    Vec<float> a(1.0f);
    (void)vcast<std::int32_t>(a);
  });
  EXPECT_EQ(to_dp.issue_cycles - base.issue_cycles,
            static_cast<std::uint64_t>(kCyclesDpArith));
  EXPECT_EQ(to_int.issue_cycles - base.issue_cycles,
            static_cast<std::uint64_t>(kCyclesIntArith));
  EXPECT_EQ(to_dp.warp_instructions - base.warp_instructions, 1u);
}

TEST(Warp, SharedMemoryRoundTripAndConflicts) {
  Device dev;
  LaunchConfig cfg;
  cfg.num_threads = 32;
  cfg.threads_per_block = 32;
  KernelStats s = dev.launch(cfg, [&](BlockCtx& blk) {
    auto sh = blk.shared_alloc<float>(64);
    blk.parallel([&](WarpCtx& w) {
      const Vec<Addr> idx = w.global_ids();
      w.shared_store(sh, idx, Vec<float>(3.5f));
      const Vec<float> v = w.shared_load(sh, idx);
      EXPECT_FLOAT_EQ(v[13], 3.5f);
    });
  });
  EXPECT_EQ(s.shared_bytes_per_block, 64 * sizeof(float));
  EXPECT_EQ(s.shared_accesses, 2u);
  // Conflict-free: stride-1 float across 32 banks.
  EXPECT_EQ(s.shared_cycles, 2u * kCyclesSharedF32);
}

TEST(Warp, SharedMemoryBankConflictsCharged) {
  Device dev;
  LaunchConfig cfg;
  cfg.num_threads = 32;
  cfg.threads_per_block = 32;
  KernelStats s = dev.launch(cfg, [&](BlockCtx& blk) {
    auto sh = blk.shared_alloc<float>(32 * 32);
    blk.parallel([&](WarpCtx& w) {
      // Stride-32 float: every lane hits bank 0 → 32-way conflict.
      const Vec<Addr> idx = Vec<Addr>::iota(0, 32);
      w.shared_load(sh, idx);
    });
  });
  EXPECT_EQ(s.shared_cycles, 32u * kCyclesSharedF32);
}

TEST(Warp, SharedOverCapacityThrows) {
  Device dev;
  LaunchConfig cfg;
  cfg.num_threads = 32;
  cfg.threads_per_block = 32;
  EXPECT_THROW(
      dev.launch(cfg,
                 [&](BlockCtx& blk) { blk.shared_alloc<double>(7000); }),
      Error);
}

TEST(Launch, ValidatesConfig) {
  Device dev;
  LaunchConfig cfg;
  cfg.num_threads = 0;
  EXPECT_THROW(dev.launch(cfg, [](BlockCtx&) {}), Error);
  cfg.num_threads = 128;
  cfg.threads_per_block = 48;  // not a warp multiple
  EXPECT_THROW(dev.launch(cfg, [](BlockCtx&) {}), Error);
  cfg.threads_per_block = 2048;  // beyond device limit
  EXPECT_THROW(dev.launch(cfg, [](BlockCtx&) {}), Error);
}

// ---------------------------------------------------------------------------
// Occupancy (cross-checked against the CUDA occupancy calculator, cc2.0)
// ---------------------------------------------------------------------------

TEST(Occupancy, UnconstrainedKernelHitsBlockLimit) {
  DeviceSpec spec;
  // 128 threads/block, 16 regs, no shared: 8-block limit → 32 warps of 48.
  const Occupancy occ = compute_occupancy(spec, 16, 128, 0);
  EXPECT_EQ(occ.blocks_per_sm, 8);
  EXPECT_EQ(occ.warps_per_sm, 32);
  EXPECT_NEAR(occ.theoretical, 32.0 / 48.0, 1e-12);
  EXPECT_EQ(occ.limiter, Occupancy::Limiter::kBlocks);
}

TEST(Occupancy, RegisterLimit) {
  DeviceSpec spec;
  // 36 regs → 1152 regs/warp → 28 resident warps → 7 blocks of 4 warps.
  const Occupancy occ = compute_occupancy(spec, 36, 128, 0);
  EXPECT_EQ(occ.blocks_per_sm, 7);
  EXPECT_EQ(occ.warps_per_sm, 28);
  EXPECT_EQ(occ.limiter, Occupancy::Limiter::kRegisters);
  EXPECT_NEAR(occ.achieved, (28.0 / 48.0) * kAchievedOccupancyFactor, 1e-12);
}

TEST(Occupancy, SharedMemoryLimit) {
  DeviceSpec spec;
  // 46080 B/block (the tiled kernel at K=3, double): one block per SM.
  const Occupancy occ = compute_occupancy(spec, 20, 640, 46080);
  EXPECT_EQ(occ.blocks_per_sm, 1);
  EXPECT_EQ(occ.warps_per_sm, 20);
  EXPECT_EQ(occ.limiter, Occupancy::Limiter::kSharedMem);
}

TEST(Occupancy, WarpLimitForLargeBlocks) {
  DeviceSpec spec;
  // 1024 threads/block = 32 warps: only one block fits the 48-warp SM.
  const Occupancy occ = compute_occupancy(spec, 16, 1024, 0);
  EXPECT_EQ(occ.blocks_per_sm, 1);
  EXPECT_EQ(occ.warps_per_sm, 32);
}

TEST(Occupancy, MonotoneInRegisters) {
  DeviceSpec spec;
  double prev = 1.0;
  for (int regs = 20; regs <= 63; regs += 4) {
    const Occupancy occ = compute_occupancy(spec, regs, 128, 0);
    EXPECT_LE(occ.theoretical, prev + 1e-12);
    prev = occ.theoretical;
  }
}

TEST(Occupancy, RejectsBadInputs) {
  DeviceSpec spec;
  EXPECT_THROW(compute_occupancy(spec, 0, 128, 0), Error);
  EXPECT_THROW(compute_occupancy(spec, 32, 4096, 0), Error);
}

// ---------------------------------------------------------------------------
// Timing model
// ---------------------------------------------------------------------------

KernelStats synthetic_stats() {
  KernelStats s;
  s.issue_cycles = 10'000'000;
  s.load_transactions = 100'000;
  s.store_transactions = 100'000;
  s.bytes_transferred_load = 100'000 * 128;
  s.bytes_transferred_store = 100'000 * 32;
  s.bytes_requested_load = s.bytes_transferred_load;
  s.bytes_requested_store = s.bytes_transferred_store;
  s.regs_per_thread = 32;
  s.threads_per_block = 128;
  return s;
}

TEST(TimingModel, MoreComputeTakesLonger) {
  DeviceSpec spec;
  const Occupancy occ = compute_occupancy(spec, 32, 128, 0);
  KernelStats a = synthetic_stats();
  KernelStats b = a;
  b.issue_cycles *= 2;
  EXPECT_GT(kernel_time(b, occ, spec).total_seconds,
            kernel_time(a, occ, spec).total_seconds);
}

TEST(TimingModel, HigherOccupancyHidesLatency) {
  DeviceSpec spec;
  const KernelStats s = synthetic_stats();
  const Occupancy low = compute_occupancy(spec, 60, 128, 0);
  const Occupancy high = compute_occupancy(spec, 20, 128, 0);
  ASSERT_LT(low.achieved, high.achieved);
  EXPECT_GT(kernel_time(s, low, spec).exposed_latency_seconds,
            kernel_time(s, high, spec).exposed_latency_seconds);
  EXPECT_GT(kernel_time(s, low, spec).total_seconds,
            kernel_time(s, high, spec).total_seconds);
}

TEST(TimingModel, BandwidthFloorBindsTrafficHeavyKernels) {
  DeviceSpec spec;
  const Occupancy occ = compute_occupancy(spec, 32, 128, 0);
  KernelStats s = synthetic_stats();
  s.bytes_transferred_load = 4ull << 30;  // 4 GB of traffic
  const KernelTiming t = kernel_time(s, occ, spec);
  EXPECT_STREQ(t.bound_by, "bandwidth");
  EXPECT_NEAR(t.total_seconds,
              t.bandwidth_floor_seconds + t.launch_overhead_seconds, 1e-9);
}

TEST(TimingModel, LaunchOverheadAlwaysPresent) {
  DeviceSpec spec;
  const Occupancy occ = compute_occupancy(spec, 32, 128, 0);
  KernelStats s;  // empty kernel
  s.regs_per_thread = 32;
  s.threads_per_block = 128;
  EXPECT_GE(kernel_time(s, occ, spec).total_seconds, kKernelLaunchSeconds);
}

// ---------------------------------------------------------------------------
// Transfer model / schedules (Fig. 5)
// ---------------------------------------------------------------------------

TEST(TransferModel, BandwidthPlusSetup) {
  DeviceSpec spec;
  const double t = transfer_seconds(spec, 1 << 20);
  EXPECT_NEAR(t,
              spec.dma_setup_seconds +
                  (1 << 20) / (spec.pcie_effective_gbps * 1e9),
              1e-12);
  EXPECT_DOUBLE_EQ(transfer_seconds(spec, 0), 0.0);
}

TEST(TransferSchedules, OverlapNeverSlower) {
  FrameSchedule f;
  f.upload_seconds = 2e-3;
  f.kernel_seconds = 5e-3;
  f.download_seconds = 2e-3;
  for (std::uint64_t n : {1ull, 2ull, 10ull, 450ull}) {
    EXPECT_LE(overlapped_pipeline_seconds(f, n),
              sequential_pipeline_seconds(f, n) + 1e-12);
  }
}

TEST(TransferSchedules, OverlapHidesTransfersWhenKernelDominates) {
  // The paper's Fig. 5b: steady-state per-frame cost is max(kernel, up+down).
  FrameSchedule f;
  f.upload_seconds = 2e-3;
  f.kernel_seconds = 5e-3;
  f.download_seconds = 2e-3;
  const std::uint64_t n = 1000;
  const double total = overlapped_pipeline_seconds(f, n);
  EXPECT_NEAR(total / static_cast<double>(n), f.kernel_seconds, 1e-4);
}

TEST(TransferSchedules, TransferBoundWhenKernelIsShort) {
  FrameSchedule f;
  f.upload_seconds = 4e-3;
  f.kernel_seconds = 1e-3;
  f.download_seconds = 4e-3;
  const double total = overlapped_pipeline_seconds(f, 1000);
  EXPECT_NEAR(total / 1000.0, 8e-3, 1e-4);
}

TEST(TransferSchedules, SequentialIsSumOfParts) {
  FrameSchedule f;
  f.upload_seconds = 1e-3;
  f.kernel_seconds = 2e-3;
  f.download_seconds = 3e-3;
  EXPECT_DOUBLE_EQ(sequential_pipeline_seconds(f, 10), 60e-3);
  EXPECT_DOUBLE_EQ(overlapped_pipeline_seconds(f, 0), 0.0);
}

}  // namespace
}  // namespace mog::gpusim
