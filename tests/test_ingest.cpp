// Tests for the encoded-video ingestion front end: Y4M and baseline-JPEG
// decoding, the MJPEG splitter, typed error discipline, the DecodeWorker
// bridge into the serving layer, and — the acceptance criterion —
// round-trip
// fidelity: frames encoded by the fixture encoder, decoded by ingest, and
// served through StreamServer must produce masks bit-identical to the
// synthetic path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mog/ingest/decode_worker.hpp"
#include "mog/ingest/jpeg.hpp"
#include "mog/ingest/mjpeg.hpp"
#include "mog/ingest/y4m.hpp"
#include "mog/pipeline/gpu_pipeline.hpp"
#include "mog/serve/stream_server.hpp"
#include "mog/telemetry/telemetry.hpp"
#include "mog/video/scene.hpp"

namespace mog {
namespace {

using ingest::DecodeWorker;
using ingest::DecodeWorkerConfig;
using ingest::IngestError;
using ingest::IngestErrorKind;
using ingest::JpegEncodeConfig;
using ingest::MemorySource;
using ingest::Y4mColorspace;
using ingest::Y4mHeader;
using ingest::Y4mReader;

constexpr int kW = 48, kH = 36;

SyntheticScene scene_for(std::uint64_t seed) {
  SceneConfig c;
  c.width = kW;
  c.height = kH;
  c.seed = seed;
  return SyntheticScene{c};
}

std::vector<FrameU8> frames_for(std::uint64_t seed, int n) {
  SyntheticScene s = scene_for(seed);
  std::vector<FrameU8> out;
  for (int t = 0; t < n; ++t) out.push_back(s.frame(t));
  return out;
}

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

IngestErrorKind kind_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const IngestError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected an IngestError";
  return IngestErrorKind::kFormat;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// Encode frames to a temp Y4M file; returns its path.
std::string write_y4m_file(const char* name, const std::vector<FrameU8>& fr,
                           Y4mColorspace cs) {
  const std::string path = temp_path(name);
  Y4mHeader h;
  h.width = fr.front().width();
  h.height = fr.front().height();
  h.colorspace = cs;
  ingest::Y4mWriter w{path, h};
  for (const FrameU8& f : fr) w.append(f);
  w.close();
  return path;
}

// --- Y4M --------------------------------------------------------------------

TEST(Y4m, RoundTripIsBitExactForBothColorspaces) {
  const std::vector<FrameU8> fr = frames_for(42, 5);
  for (const Y4mColorspace cs : {Y4mColorspace::kMono, Y4mColorspace::k420}) {
    const std::string path = write_y4m_file("mog_ingest_rt.y4m", fr, cs);
    Y4mReader r{std::make_unique<ingest::FileSource>(path)};
    EXPECT_EQ(r.header().width, kW);
    EXPECT_EQ(r.header().height, kH);
    EXPECT_DOUBLE_EQ(r.header().fps(), 30.0);
    FrameU8 f;
    for (std::size_t t = 0; t < fr.size(); ++t) {
      ASSERT_TRUE(r.next(f)) << t;
      EXPECT_EQ(f, fr[t]) << "frame " << t << " not bit-exact";
    }
    EXPECT_FALSE(r.next(f));  // clean EOF
    std::remove(path.c_str());
  }
}

TEST(Y4m, HeaderVariantsParse) {
  // Optional tags, C420jpeg alias, FRAME parameters: all must parse.
  std::string s = "YUV4MPEG2 W8 H4 F25:1 Ip A1:1 C420jpeg XYSCSS=420\n";
  s += "FRAME Xtag\n";
  s.append(8 * 4 + 2 * 4 * 2, static_cast<char>(0x7F));
  const std::vector<FrameU8> fr = ingest::decode_y4m(bytes_of(s));
  ASSERT_EQ(fr.size(), 1u);
  EXPECT_EQ(fr[0].width(), 8);
  EXPECT_EQ(fr[0].height(), 4);
  EXPECT_EQ(fr[0].at(0, 0), 0x7F);
}

TEST(Y4m, TypedErrors) {
  EXPECT_EQ(kind_of([] {
              ingest::decode_y4m(bytes_of("MPEG W4 H4 Cmono\n"));
            }),
            IngestErrorKind::kFormat);
  EXPECT_EQ(kind_of([] {
              ingest::decode_y4m(bytes_of("YUV4MPEG2 W4 Cmono\nFRAME\n"));
            }),
            IngestErrorKind::kFormat);
  EXPECT_EQ(kind_of([] {
              ingest::decode_y4m(
                  bytes_of("YUV4MPEG2 W99999 H99999 Cmono\nFRAME\n"));
            }),
            IngestErrorKind::kBombCap);
  EXPECT_EQ(kind_of([] {
              ingest::decode_y4m(bytes_of("YUV4MPEG2 W5 H4 C420\nFRAME\n"));
            }),
            IngestErrorKind::kUnsupported);
  EXPECT_EQ(kind_of([] {
              ingest::decode_y4m(bytes_of("YUV4MPEG2 W4 H2 Cmono\nFRAME\nxy"));
            }),
            IngestErrorKind::kTruncated);
}

TEST(Y4m, FailedReaderKeepsThrowing) {
  std::string s = "YUV4MPEG2 W4 H2 Cmono\nFRAME\n";
  s.append(8, 'a');
  s += "FRAME\nxx";  // second frame truncated
  Y4mReader r{std::make_unique<MemorySource>(bytes_of(s))};
  FrameU8 f;
  ASSERT_TRUE(r.next(f));
  EXPECT_THROW(r.next(f), IngestError);
  EXPECT_THROW(r.next(f), IngestError);  // failed state is sticky
}

// --- JPEG -------------------------------------------------------------------

TEST(Jpeg, ConstantImageRoundTripsExactly) {
  const FrameU8 g(32, 24, 131);
  JpegEncodeConfig cfg;
  cfg.quality = 95;
  const FrameU8 d = ingest::decode_jpeg_gray(ingest::encode_jpeg_gray(g, cfg));
  EXPECT_EQ(d, g);  // flat blocks survive quantization untouched
}

TEST(Jpeg, QualityControlsReconstructionError) {
  const FrameU8 f = scene_for(7).frame(3);
  double prev_mse = 1e30;
  for (const int q : {25, 50, 75, 95}) {
    JpegEncodeConfig cfg;
    cfg.quality = q;
    const FrameU8 d =
        ingest::decode_jpeg_gray(ingest::encode_jpeg_gray(f, cfg));
    ASSERT_EQ(d.width(), f.width());
    double mse = 0;
    for (std::size_t i = 0; i < f.size(); ++i) {
      const double e = static_cast<double>(f[i]) - d[i];
      mse += e * e;
    }
    mse /= static_cast<double>(f.size());
    EXPECT_LT(mse, prev_mse) << "quality " << q;
    prev_mse = mse;
  }
  EXPECT_LT(prev_mse, 4.0);  // q95: near-transparent
}

TEST(Jpeg, RestartMarkersAndYcbcr420DecodeIdentically) {
  const FrameU8 f = scene_for(9).frame(2);
  JpegEncodeConfig plain;
  plain.quality = 85;
  const FrameU8 base =
      ingest::decode_jpeg_gray(ingest::encode_jpeg_gray(f, plain));

  JpegEncodeConfig rst = plain;
  rst.restart_interval = 3;
  EXPECT_EQ(ingest::decode_jpeg_gray(ingest::encode_jpeg_gray(f, rst)), base);

  JpegEncodeConfig sub = plain;
  sub.ycbcr420 = true;
  EXPECT_EQ(ingest::decode_jpeg_gray(ingest::encode_jpeg_gray(f, sub)), base);
}

TEST(Jpeg, OddDimensionsDecodeToExactGeometry) {
  FrameU8 g(37, 23);
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] = static_cast<std::uint8_t>(i * 7);
  for (const bool sub : {false, true}) {
    JpegEncodeConfig cfg;
    cfg.ycbcr420 = sub;
    const FrameU8 d =
        ingest::decode_jpeg_gray(ingest::encode_jpeg_gray(g, cfg));
    EXPECT_EQ(d.width(), 37);
    EXPECT_EQ(d.height(), 23);
  }
}

TEST(Jpeg, ProbeReadsGeometryWithoutDecoding) {
  const FrameU8 f = scene_for(3).frame(0);
  JpegEncodeConfig cfg;
  cfg.ycbcr420 = true;
  const ingest::JpegInfo info =
      ingest::probe_jpeg(ingest::encode_jpeg_gray(f, cfg));
  EXPECT_EQ(info.width, kW);
  EXPECT_EQ(info.height, kH);
  EXPECT_EQ(info.components, 3);
}

TEST(Jpeg, TypedErrors) {
  const std::vector<std::uint8_t> good =
      ingest::encode_jpeg_gray(scene_for(1).frame(0));

  EXPECT_EQ(kind_of([&] {
              ingest::decode_jpeg_gray(
                  std::vector<std::uint8_t>{0x00, 0x11});
            }),
            IngestErrorKind::kFormat);
  EXPECT_EQ(kind_of([&] {
              ingest::decode_jpeg_gray(std::span<const std::uint8_t>{
                  good.data(), good.size() / 2});
            }),
            IngestErrorKind::kTruncated);

  std::vector<std::uint8_t> progressive = good;
  for (std::size_t i = 0; i + 1 < progressive.size(); ++i)
    if (progressive[i] == 0xFF && progressive[i + 1] == 0xC0) {
      progressive[i + 1] = 0xC2;
      break;
    }
  EXPECT_EQ(kind_of([&] { ingest::decode_jpeg_gray(progressive); }),
            IngestErrorKind::kUnsupported);

  std::vector<std::uint8_t> bomb = good;
  for (std::size_t i = 0; i + 9 < bomb.size(); ++i)
    if (bomb[i] == 0xFF && bomb[i + 1] == 0xC0) {
      bomb[i + 5] = bomb[i + 6] = bomb[i + 7] = bomb[i + 8] = 0xFF;
      break;
    }
  EXPECT_EQ(kind_of([&] { ingest::decode_jpeg_gray(bomb); }),
            IngestErrorKind::kBombCap);
}

// --- MJPEG ------------------------------------------------------------------

TEST(Mjpeg, SplitsPartsIncludingPaddingAndRestartMarkers) {
  const std::vector<FrameU8> fr = frames_for(5, 4);
  JpegEncodeConfig cfg;
  cfg.restart_interval = 2;  // restart markers inside entropy data
  std::vector<std::uint8_t> stream;
  for (const FrameU8& f : fr) {
    const std::vector<std::uint8_t> part = ingest::encode_jpeg_gray(f, cfg);
    stream.insert(stream.end(), part.begin(), part.end());
    stream.insert(stream.end(), 3, 0x00);  // camera-style NUL padding
  }
  ingest::MjpegReader r{std::make_unique<MemorySource>(stream)};
  FrameU8 f;
  int n = 0;
  while (r.next(f)) {
    EXPECT_EQ(f.width(), kW);
    ++n;
  }
  EXPECT_EQ(n, 4);
  EXPECT_EQ(r.bytes_consumed(), stream.size());
}

TEST(Mjpeg, TruncatedFinalPartIsTypedError) {
  const std::vector<std::uint8_t> part =
      ingest::encode_jpeg_gray(scene_for(2).frame(0));
  std::vector<std::uint8_t> stream = part;
  stream.insert(stream.end(), part.begin(), part.end() - 40);
  ingest::MjpegReader r{std::make_unique<MemorySource>(stream)};
  FrameU8 f;
  ASSERT_TRUE(r.next(f));  // first part decodes
  EXPECT_EQ(kind_of([&] { r.next(f); }), IngestErrorKind::kTruncated);
}

// --- DecodeWorker -----------------------------------------------------------

TEST(DecodeWorker, DeliversWholeStreamWithStats) {
  const std::vector<FrameU8> fr = frames_for(11, 6);
  const std::string path =
      write_y4m_file("mog_ingest_worker.y4m", fr, Y4mColorspace::kMono);

  std::mutex mu;
  std::vector<FrameU8> got;
  std::vector<double> arrivals;
  DecodeWorkerConfig wc;
  wc.fps = 10.0;
  DecodeWorker w{
      std::make_unique<Y4mReader>(std::make_unique<ingest::FileSource>(path)),
      [&](FrameU8 f, double arrival, std::uint64_t ticket) {
        std::lock_guard<std::mutex> lock(mu);
        EXPECT_GT(ticket, 0u);
        got.push_back(std::move(f));
        arrivals.push_back(arrival);
        return true;
      },
      wc};
  w.start();
  w.join();
  EXPECT_TRUE(w.done());
  EXPECT_FALSE(w.failed());
  ASSERT_EQ(got.size(), fr.size());
  for (std::size_t t = 0; t < fr.size(); ++t) EXPECT_EQ(got[t], fr[t]);
  EXPECT_DOUBLE_EQ(arrivals[3], 0.3);  // n / fps cadence
  const ingest::DecodeStats st = w.stats();
  EXPECT_EQ(st.frames_decoded, fr.size());
  EXPECT_EQ(st.frames_rejected, 0u);
  EXPECT_GT(st.bytes_consumed, 0u);
  std::remove(path.c_str());
}

TEST(DecodeWorker, ErrorStopsAtFrameBoundaryNoPartialFrame) {
  // Two good frames then a truncated third: both good frames must be
  // delivered, nothing after, and the worker reports the typed error.
  std::string s = "YUV4MPEG2 W4 H2 Cmono\n";
  s += "FRAME\nAAAAAAAA";
  s += "FRAME\nBBBBBBBB";
  s += "FRAME\nCC";
  int delivered = 0;
  DecodeWorker w{std::make_unique<Y4mReader>(
                     std::make_unique<MemorySource>(bytes_of(s))),
                 [&](FrameU8 f, double, std::uint64_t) {
                   EXPECT_EQ(f.size(), 8u);
                   ++delivered;
                   return true;
                 }};
  w.start();
  w.join();
  EXPECT_EQ(delivered, 2);
  EXPECT_TRUE(w.failed());
  EXPECT_NE(w.error().find("truncated"), std::string::npos) << w.error();
  EXPECT_EQ(w.stats().frames_decoded, 2u);
}

// --- round-trip fidelity through the serving layer --------------------------

// The acceptance criterion: Y4M is bit-lossless for grayscale, so frames
// that travel scene -> fixture encoder -> Y4mReader -> DecodeWorker ->
// StreamServer must yield masks bit-identical to submitting the scene
// frames directly.
TEST(IngestFidelity, Y4mDecodedMasksMatchSyntheticPathBitExactly) {
  constexpr int kFrames = 6;
  const std::vector<FrameU8> fr = frames_for(77, kFrames);
  const std::string path =
      write_y4m_file("mog_ingest_fidelity.y4m", fr, Y4mColorspace::k420);

  serve::ServeConfig cfg;
  cfg.queue_depth = kFrames;
  serve::StreamServer<double> server{cfg};
  serve::StreamServer<double>::GpuConfig gpu;
  gpu.width = kW;
  gpu.height = kH;
  const int id = server.open_stream(gpu);

  DecodeWorker w{
      std::make_unique<Y4mReader>(std::make_unique<ingest::FileSource>(path)),
      [&](FrameU8 f, double arrival, std::uint64_t ticket) {
        return server.submit(id, std::move(f), arrival, ticket);
      }};
  w.start();
  w.join();
  ASSERT_FALSE(w.failed()) << w.error();
  server.drain();

  const std::vector<FrameU8> served = server.take_masks(id);
  ASSERT_EQ(served.size(), static_cast<std::size_t>(kFrames));

  GpuMogPipeline<double>::Config solo_cfg = gpu;
  GpuMogPipeline<double> solo{solo_cfg};
  FrameU8 fg;
  for (int t = 0; t < kFrames; ++t) {
    ASSERT_TRUE(solo.process(fr[static_cast<std::size_t>(t)], fg));
    EXPECT_EQ(served[static_cast<std::size_t>(t)], fg)
        << "mask " << t << " diverged from the synthetic path";
  }
  std::remove(path.c_str());
}

// MJPEG is lossy, so exact mask parity is asserted against the *decoded*
// frames: pushing them through the worker must equal submitting them
// directly (the plumbing adds nothing), and the decode error itself stays
// bounded.
TEST(IngestFidelity, MjpegWorkerPathMatchesDirectSubmissionOfDecodedFrames) {
  constexpr int kFrames = 4;
  const std::vector<FrameU8> fr = frames_for(21, kFrames);
  JpegEncodeConfig ecfg;
  ecfg.quality = 90;
  const std::vector<std::uint8_t> stream = ingest::encode_mjpeg(fr, ecfg);

  // Reference: decode the parts, submit directly.
  std::vector<FrameU8> decoded;
  {
    ingest::MjpegReader r{std::make_unique<MemorySource>(stream)};
    FrameU8 f;
    while (r.next(f)) {
      double err = 0;
      for (std::size_t i = 0; i < f.size(); ++i)
        err = std::max(err, std::abs(static_cast<double>(f[i]) -
                                     fr[decoded.size()][i]));
      EXPECT_LT(err, 48.0) << "q90 reconstruction error out of bounds";
      decoded.push_back(f);
    }
    ASSERT_EQ(decoded.size(), static_cast<std::size_t>(kFrames));
  }

  const auto run = [&](bool via_worker) {
    serve::ServeConfig cfg;
    cfg.queue_depth = kFrames;
    serve::StreamServer<double> server{cfg};
    serve::StreamServer<double>::GpuConfig gpu;
    gpu.width = kW;
    gpu.height = kH;
    const int id = server.open_stream(gpu);
    if (via_worker) {
      DecodeWorker w{
          std::make_unique<ingest::MjpegReader>(
              std::make_unique<MemorySource>(stream)),
          [&](FrameU8 f, double arrival, std::uint64_t ticket) {
            return server.submit(id, std::move(f), arrival, ticket);
          }};
      w.start();
      w.join();
      EXPECT_FALSE(w.failed()) << w.error();
    } else {
      for (int t = 0; t < kFrames; ++t)
        server.submit(id, decoded[static_cast<std::size_t>(t)], t / 30.0);
    }
    server.drain();
    return server.take_masks(id);
  };
  EXPECT_EQ(run(true), run(false));
}

// The decode span must be the first hop of the frame's flow chain: the
// worker emits flow-begin at decode, and a pre-minted ticket makes queue
// admission a flow-step — not a second begin — on the same ticket.
TEST(IngestFidelity, DecodeSpanStartsTheTicketFlowChain) {
  const std::vector<FrameU8> fr = frames_for(31, 3);
  const std::string path =
      write_y4m_file("mog_ingest_trace.y4m", fr, Y4mColorspace::kMono);

  telemetry::TraceRecorder trace;
  telemetry::set_tracer(&trace);
  serve::ServeConfig cfg;
  serve::StreamServer<double> server{cfg};
  serve::StreamServer<double>::GpuConfig gpu;
  gpu.width = kW;
  gpu.height = kH;
  const int id = server.open_stream(gpu);
  DecodeWorker w{
      std::make_unique<Y4mReader>(std::make_unique<ingest::FileSource>(path)),
      [&](FrameU8 f, double arrival, std::uint64_t ticket) {
        return server.submit(id, std::move(f), arrival, ticket);
      }};
  w.start();
  w.join();
  server.drain();
  telemetry::set_tracer(nullptr);

  int decode_spans = 0, flow_begins = 0, flow_steps = 0, flow_ends = 0;
  for (const telemetry::TraceEvent& e : trace.events()) {
    if (e.name == "decode" && e.cat == "ingest") ++decode_spans;
    if (e.cat == "serve.flow") {
      if (e.phase == 's') ++flow_begins;
      if (e.phase == 't') ++flow_steps;
      if (e.phase == 'f') ++flow_ends;
    }
  }
  EXPECT_EQ(decode_spans, 3);
  EXPECT_EQ(flow_begins, 3);  // exactly one begin per frame — at decode
  EXPECT_GE(flow_steps, 3);   // admission + downstream hops are steps
  EXPECT_EQ(flow_ends, 3);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mog
