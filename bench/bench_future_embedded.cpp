// §VI future work — MoG on an embedded GPU.
//
// The paper closes with: "we plan to realize MoG on an embedded GPU ...
// With the significantly lower compute power of embedded GPUs, achieving
// real-time performance will require to trade off quality for speed." This
// bench runs that study on a simulated Tegra-K1-class device: for each
// (precision, component count) quality/speed operating point it reports the
// achievable frame rate at three resolutions, answering where real-time
// (30/60 Hz) operation lands.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "mog/gpusim/transfer_model.hpp"
#include "mog/pipeline/experiment.hpp"

namespace mog::bench {
namespace {

struct OperatingPoint {
  const char* name;
  Precision precision;
  int components;
};

constexpr OperatingPoint kPoints[] = {
    {"double K=5 (max quality)", Precision::kDouble, 5},
    {"double K=3 (paper cfg)", Precision::kDouble, 3},
    {"float  K=3", Precision::kFloat, 3},
    {"float  K=2 (min quality)", Precision::kFloat, 2},
};

struct Resolution {
  const char* name;
  int width, height;
};
constexpr Resolution kResolutions[] = {
    {"1080p", 1920, 1080}, {"720p", 1280, 720}, {"480p", 854, 480}};

/// Run one operating point on the embedded device at reduced scale; return
/// the experiment result (counters are resolution-extrapolatable).
ExperimentResult run_point(const OperatingPoint& pt) {
  ExperimentConfig cfg;
  cfg.width = 320;
  cfg.height = 180;
  cfg.frames = 12;
  cfg.warmup_frames = 4;
  cfg.level = kernels::OptLevel::kF;
  cfg.precision = pt.precision;
  cfg.params.num_components = pt.components;
  cfg.device = gpusim::embedded_device_spec();
  return run_gpu_experiment(cfg);
}

/// Modeled fps at a target resolution, overlapped schedule.
double fps_at(const ExperimentResult& r, const Resolution& res) {
  const gpusim::DeviceSpec spec = gpusim::embedded_device_spec();
  const double ratio = (static_cast<double>(res.width) * res.height) /
                       (static_cast<double>(r.config.width) *
                        r.config.height);
  const gpusim::KernelStats scaled = scale_stats(r.per_frame, ratio);
  const double kernel_s =
      gpusim::kernel_time(scaled, r.occupancy, spec).total_seconds;
  const double xfer_s = gpusim::transfer_seconds(
      spec, static_cast<std::uint64_t>(res.width) * res.height);
  const double frame_s = std::max(kernel_s, 2.0 * xfer_s);
  return 1.0 / frame_s;
}

void embedded(benchmark::State& state) {
  const OperatingPoint& pt = kPoints[state.range(0)];
  ExperimentResult r;
  for (auto _ : state) r = run_point(pt);
  state.SetLabel(pt.name);
  state.counters["fps_1080p"] = fps_at(r, kResolutions[0]);
  state.counters["fps_720p"] = fps_at(r, kResolutions[1]);
  state.counters["fps_480p"] = fps_at(r, kResolutions[2]);
  state.counters["occupancy_pct"] = 100.0 * r.occupancy.achieved;
}
BENCHMARK(embedded)->DenseRange(0, 3)->Iterations(1)->Unit(
    benchmark::kMillisecond);

void epilogue() {
  std::printf(
      "\n=== §VI future work — embedded GPU (Tegra-K1-class, simulated) "
      "===\n");
  std::printf("%-28s %12s %12s %12s %10s\n", "operating point", "1080p_fps",
              "720p_fps", "480p_fps", "occup%");
  for (const OperatingPoint& pt : kPoints) {
    const ExperimentResult r = run_point(pt);
    std::printf("%-28s %12.1f %12.1f %12.1f %10.1f\n", pt.name,
                fps_at(r, kResolutions[0]), fps_at(r, kResolutions[1]),
                fps_at(r, kResolutions[2]), 100.0 * r.occupancy.achieved);
    reporter()
        .add_case(pt.name)
        .metric("fps_1080p", fps_at(r, kResolutions[0]))
        .metric("fps_720p", fps_at(r, kResolutions[1]))
        .metric("fps_480p", fps_at(r, kResolutions[2]))
        .metric("occupancy", r.occupancy.achieved);
  }
  std::printf(
      "(real-time = 30-60 fps: the embedded part cannot run the paper's "
      "double-precision full-HD configuration in real time — the predicted "
      "quality-for-speed trade is dropping to single precision and/or "
      "reducing resolution or component count, exactly the paper's closing "
      "forecast)\n");
}

}  // namespace
}  // namespace mog::bench

MOG_BENCH_MAIN("future_embedded", mog::bench::epilogue)
