// Ablation — thread-block size. The paper fixes 128 threads/block (§IV-A:
// "We select 128 threads per block") without exploring alternatives; this
// sweep shows why that choice is solid: occupancy granularity vs tail
// effects across block sizes for the two extreme kernels (B: register-heavy
// sorted; F: lean predicated).
#include "bench_util.hpp"

namespace mog::bench {
namespace {

std::string key(kernels::OptLevel level, int tpb) {
  return std::string(kernels::to_string(level)) + "/tpb" +
         std::to_string(tpb);
}

void blocksize(benchmark::State& state) {
  const auto level = static_cast<kernels::OptLevel>(state.range(0));
  const int tpb = static_cast<int>(state.range(1));
  ExperimentConfig cfg = base_config();
  cfg.level = level;
  cfg.threads_per_block = tpb;
  run_and_record(state, key(level, tpb), cfg);
}
BENCHMARK(blocksize)
    ->ArgsProduct({{1 /*B*/, 5 /*F*/}, {64, 128, 256, 512}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void epilogue() {
  std::vector<Row> rows;
  for (const auto level : {kernels::OptLevel::kB, kernels::OptLevel::kF}) {
    for (const int tpb : {64, 128, 256, 512}) {
      const auto& r = Registry::instance().get(key(level, tpb));
      rows.push_back(Row{std::string(kernels::to_string(level)) + " tpb=" +
                             std::to_string(tpb),
                         {r.speedup,
                          1e3 * r.kernel_timing.total_seconds *
                              fullhd_ratio(r.config),
                          100.0 * r.occupancy.achieved,
                          static_cast<double>(r.occupancy.blocks_per_sm)}});
    }
  }
  print_table("Ablation — threads per block (B vs F kernels)",
              {"speedup", "kernel_ms", "occup%", "blocks/SM"}, rows,
              "the paper's 128 threads/block choice sits at (or near) the "
              "occupancy optimum for both register regimes.");
}

}  // namespace
}  // namespace mog::bench

MOG_BENCH_MAIN("ablation_blocksize", mog::bench::epilogue)
