// Fig. 8 — speedup over serial CPU across the optimization ladder A..F, and
// the efficiency summary panel (branch efficiency, memory access efficiency,
// SM occupancy). Also prints the level definitions (Tables II and III).
//
// Paper values (3 Gaussians, double, 450 full-HD frames):
//   A 13x, B 41x, C 57x, D 85x, E 86x, F 97x.
//
// Two cases extend the paper's ladder with mask post-processing:
//   F+pp — level F plus the UNFUSED device postproc chain (one stencil
//          launch per stage, intermediates round-tripping DRAM);
//   G    — the same stages fused into one epilogue launch (arXiv
//          1509.04394's kernel-fusion technique). The gated launches_per_
//          frame metric pins the fusion win: 4 launches/frame at F+pp,
//          2 at G.
#include "bench_util.hpp"

#include "mog/kernels/opt_level.hpp"

namespace mog::bench {
namespace {

const double kPaperSpeedup[7] = {13, 41, 57, 85, 86, 97, 0};
const double kPaperBranchEff[7] = {0, 0, 94.5, 96.0, 99.5, 99.5, 0};
const double kPaperOccupancy[7] = {0, 52, 52, 61, 56, 65, 0};

void ladder(benchmark::State& state) {
  const auto level = static_cast<kernels::OptLevel>(state.range(0));
  ExperimentConfig cfg = base_config();
  cfg.level = level;
  run_and_record(state, kernels::to_string(level), cfg);
}
BENCHMARK(ladder)
    ->DenseRange(0, 6)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void postproc_unfused(benchmark::State& state) {
  ExperimentConfig cfg = base_config();
  cfg.level = kernels::OptLevel::kF;
  cfg.postproc.enabled = true;  // same stages as G, unfused (3 extra launches)
  run_and_record(state, "F+pp", cfg);
}
BENCHMARK(postproc_unfused)->Iterations(1)->Unit(benchmark::kMillisecond);

void epilogue() {
  std::printf("\nOptimization levels (paper Tables II & III):\n");
  for (const auto level : kernels::kAllLevels)
    std::printf("  %s: %s\n", kernels::to_string(level),
                kernels::describe(level));

  std::vector<Row> rows;
  int i = 0;
  for (const auto level : kernels::kAllLevels) {
    const auto& r = Registry::instance().get(kernels::to_string(level));
    rows.push_back(Row{std::string("level ") + kernels::to_string(level),
                       {kPaperSpeedup[i], r.speedup,
                        1e3 * r.gpu_seconds_fullhd450 / 450,
                        100.0 * r.per_frame.branch_efficiency(),
                        kPaperBranchEff[i],
                        100.0 * r.per_frame.memory_access_efficiency(),
                        100.0 * r.occupancy.achieved, kPaperOccupancy[i]}});
    ++i;
  }
  print_table(
      "Fig. 8 — optimization ladder (3 Gaussians, double)",
      {"paper_speedup", "speedup", "ms/frame", "br_eff%", "paper_br%",
       "mem_eff%", "occup%", "paper_occ%"},
      rows,
      "paper_br/occ values read off Fig. 8(b); 0 = not reported for "
      "that level (G extends the paper's ladder).");

  // Step G's headline: the fused epilogue vs the same stages unfused.
  const auto& unfused = Registry::instance().get("F+pp");
  const auto& fused = Registry::instance().get("G");
  print_table("Step G — kernel fusion of the postproc chain",
              {"launches/frame", "ms/frame", "dram_MB/frame"},
              {Row{"F + unfused chain",
                   {unfused.launches_per_frame,
                    1e3 * unfused.gpu_seconds_fullhd450 / 450,
                    1e-6 * static_cast<double>(
                               unfused.per_frame.bytes_transferred())}},
               Row{"G (fused)",
                   {fused.launches_per_frame,
                    1e3 * fused.gpu_seconds_fullhd450 / 450,
                    1e-6 * static_cast<double>(
                               fused.per_frame.bytes_transferred())}}},
              "identical cleaned masks; the deltas are pure fusion.");
}

}  // namespace
}  // namespace mog::bench

MOG_BENCH_MAIN("fig8_speedup", mog::bench::epilogue)
