// Fig. 8 — speedup over serial CPU across the optimization ladder A..F, and
// the efficiency summary panel (branch efficiency, memory access efficiency,
// SM occupancy). Also prints the level definitions (Tables II and III).
//
// Paper values (3 Gaussians, double, 450 full-HD frames):
//   A 13x, B 41x, C 57x, D 85x, E 86x, F 97x.
#include "bench_util.hpp"

#include "mog/kernels/opt_level.hpp"

namespace mog::bench {
namespace {

const double kPaperSpeedup[6] = {13, 41, 57, 85, 86, 97};
const double kPaperBranchEff[6] = {0, 0, 94.5, 96.0, 99.5, 99.5};
const double kPaperOccupancy[6] = {0, 52, 52, 61, 56, 65};

void ladder(benchmark::State& state) {
  const auto level = static_cast<kernels::OptLevel>(state.range(0));
  ExperimentConfig cfg = base_config();
  cfg.level = level;
  run_and_record(state, kernels::to_string(level), cfg);
}
BENCHMARK(ladder)
    ->DenseRange(0, 5)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void epilogue() {
  std::printf("\nOptimization levels (paper Tables II & III):\n");
  for (const auto level : kernels::kAllLevels)
    std::printf("  %s: %s\n", kernels::to_string(level),
                kernels::describe(level));

  std::vector<Row> rows;
  int i = 0;
  for (const auto level : kernels::kAllLevels) {
    const auto& r = Registry::instance().get(kernels::to_string(level));
    rows.push_back(Row{std::string("level ") + kernels::to_string(level),
                       {kPaperSpeedup[i], r.speedup,
                        1e3 * r.gpu_seconds_fullhd450 / 450,
                        100.0 * r.per_frame.branch_efficiency(),
                        kPaperBranchEff[i],
                        100.0 * r.per_frame.memory_access_efficiency(),
                        100.0 * r.occupancy.achieved, kPaperOccupancy[i]}});
    ++i;
  }
  print_table(
      "Fig. 8 — optimization ladder (3 Gaussians, double)",
      {"paper_speedup", "speedup", "ms/frame", "br_eff%", "paper_br%",
       "mem_eff%", "occup%", "paper_occ%"},
      rows,
      "paper_br/occ values read off Fig. 8(b); 0 = not reported for "
      "that level.");
}

}  // namespace
}  // namespace mog::bench

MOG_BENCH_MAIN("fig8_speedup", mog::bench::epilogue)
