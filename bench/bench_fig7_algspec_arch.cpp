// Fig. 7 — architectural impact of the algorithm-specific optimizations
// (C -> D -> E -> F):
//   (a) executed branches per frame (6.7 M -> 6.2 M at D) and branch
//       efficiency (-> 99.5% at E);
//   (b) memory access efficiency (peaks ~100% at E) and total transactions
//       (-> 1.70 M at E);
//   (c) registers per thread (36/32/33/31) and SM occupancy (52/61/56/65%).
#include "bench_util.hpp"

#include "mog/kernels/opt_level.hpp"

namespace mog::bench {
namespace {

void algspec(benchmark::State& state) {
  const auto level = static_cast<kernels::OptLevel>(state.range(0));
  ExperimentConfig cfg = base_config();
  cfg.level = level;
  run_and_record(state, kernels::to_string(level), cfg);
}
BENCHMARK(algspec)->DenseRange(2, 5)->Iterations(1)->Unit(
    benchmark::kMillisecond);

void epilogue() {
  const double paper_branches_m[4] = {6.7, 6.2, 6.2, 6.2};
  const double paper_br_eff[4] = {94.5, 96.0, 99.5, 99.5};
  const double paper_regs[4] = {36, 32, 33, 31};
  const double paper_occ[4] = {52, 61, 56, 65};
  std::vector<Row> rows;
  int i = 0;
  for (const auto level : {kernels::OptLevel::kC, kernels::OptLevel::kD,
                           kernels::OptLevel::kE, kernels::OptLevel::kF}) {
    const auto& r = Registry::instance().get(kernels::to_string(level));
    const double ratio = fullhd_ratio(r.config);
    rows.push_back(
        Row{std::string("level ") + kernels::to_string(level),
            {static_cast<double>(r.per_frame.branches_executed) * ratio / 1e6,
             paper_branches_m[i],
             100.0 * r.per_frame.branch_efficiency(), paper_br_eff[i],
             100.0 * r.per_frame.memory_access_efficiency(),
             static_cast<double>(r.per_frame.total_transactions()) * ratio /
                 1e6,
             static_cast<double>(r.per_frame.regs_per_thread), paper_regs[i],
             100.0 * r.occupancy.achieved, paper_occ[i]}});
    ++i;
  }
  print_table("Fig. 7 — algorithm-specific optimizations",
              {"br(M/fr)", "paper_br", "br_eff%", "paper_be%", "mem_eff%",
               "tr(M/fr)", "regs", "p_regs", "occup%", "p_occ%"},
              rows, "counters scaled to a full-HD frame.");
}

}  // namespace
}  // namespace mog::bench

MOG_BENCH_MAIN("fig7_algspec_arch", mog::bench::epilogue)
