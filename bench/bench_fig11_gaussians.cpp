// Fig. 11 — effect of the number of Gaussian components (3 vs 5) across the
// optimization ladder. Paper anchors: 5-Gaussian speedups reach 44x after
// the general optimizations (C) and 92x after the algorithm-specific ones
// (F); CPU time grows linearly with the component count (227.3 s -> 406.6 s).
#include "bench_util.hpp"

#include "mog/kernels/opt_level.hpp"

namespace mog::bench {
namespace {

std::string key(kernels::OptLevel level, int k) {
  return std::string(kernels::to_string(level)) + "/K" + std::to_string(k);
}

void gaussians(benchmark::State& state) {
  const auto level = static_cast<kernels::OptLevel>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  ExperimentConfig cfg = base_config();
  cfg.level = level;
  cfg.params.num_components = k;
  run_and_record(state, key(level, k), cfg);
}
BENCHMARK(gaussians)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 5, 1), {3, 5}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void epilogue() {
  const double paper3[6] = {13, 41, 57, 85, 86, 97};
  const double paper5[6] = {0, 0, 44, 0, 0, 92};
  std::vector<Row> rows;
  int i = 0;
  for (const auto level : kernels::kAllLevels) {
    const auto& r3 = Registry::instance().get(key(level, 3));
    const auto& r5 = Registry::instance().get(key(level, 5));
    rows.push_back(Row{std::string("level ") + kernels::to_string(level),
                       {r3.speedup, paper3[i], r5.speedup, paper5[i],
                        100.0 * r5.per_frame.branch_efficiency(),
                        100.0 * r5.per_frame.memory_access_efficiency(),
                        100.0 * r5.occupancy.achieved,
                        static_cast<double>(r5.per_frame.regs_per_thread)}});
    ++i;
  }
  print_table("Fig. 11 — 3 vs 5 Gaussian components (double)",
              {"spd_K3", "paper_K3", "spd_K5", "paper_K5", "K5_br_eff%",
               "K5_mem_eff%", "K5_occup%", "K5_regs"},
              rows,
              "paper reports 5-Gaussian speedups only at C (44x) and F "
              "(92x); 5-Gaussian occupancy sits lower (more registers per "
              "thread), matching Fig. 11(b).");
}

}  // namespace
}  // namespace mog::bench

MOG_BENCH_MAIN("fig11_gaussians", mog::bench::epilogue)
