// Table I — hardware configuration. Prints the simulated Tesla C2075
// parameters next to the paper's Xeon E5-2620 CPU column, plus the derived
// quantities the analysis uses (bytes/cycle, occupancy limits). Includes a
// trivial benchmark that measures simulator launch overhead so the binary
// participates in the google-benchmark harness like its siblings.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "mog/cpu/cost_model.hpp"
#include "mog/gpusim/device_spec.hpp"
#include "mog/gpusim/kernel_launch.hpp"

namespace mog::bench {
namespace {

void sim_launch_overhead(benchmark::State& state) {
  gpusim::Device dev;
  auto buf = dev.memory().alloc<int>(1024);
  gpusim::LaunchConfig cfg;
  cfg.num_threads = 1024;
  cfg.threads_per_block = 128;
  for (auto _ : state) {
    auto stats = dev.launch(cfg, [&](gpusim::BlockCtx& blk) {
      blk.parallel([&](gpusim::WarpCtx& w) {
        w.store(buf, w.global_ids(), gpusim::Vec<int32_t>(1));
      });
    });
    benchmark::DoNotOptimize(stats.issue_cycles);
  }
}
BENCHMARK(sim_launch_overhead)->Unit(benchmark::kMicrosecond);

void epilogue() {
  const gpusim::DeviceSpec gpu;
  const CpuSpec cpu;
  std::printf("\n=== Table I — HW configuration ===\n");
  std::printf("%-22s %-28s %-32s\n", "", "CPU (paper)", "GPU (simulated)");
  std::printf("%-22s %-28s %-32s\n", "Processor", cpu.name,
              gpu.name.c_str());
  std::printf("%-22s %-28d %-32d\n", "Cores", cpu.cores,
              gpu.num_sms * gpu.cores_per_sm);
  std::printf("%-22s %-28.2f %-32.2f\n", "Frequency (GHz)",
              cpu.frequency_ghz, gpu.core_clock_ghz);
  std::printf("%-22s %-28.1f %-32.1f\n", "FLOPS single (G)", cpu.sp_gflops,
              1030.0);
  std::printf("%-22s %-28s %-32.1f\n", "FLOPS double (G)", "(unavailable)",
              515.0);
  std::printf("%-22s %-28.1f %-32.1f\n", "Mem BW (GB/s)", cpu.mem_bw_gbps,
              gpu.dram_bandwidth_gbps);
  std::printf("%-22s L2 %dK / L3 %dM %14s L1 %d/%dK, L2 768K\n", "Cache",
              cpu.l2_kb, cpu.l3_kb / 1024, "",
              gpu.l1_bytes / 1024, gpu.shared_mem_per_sm / 1024);
  std::printf("\nSimulated device detail:\n%s",
              describe_device(gpu).c_str());
  std::printf("Derived: %.1f DRAM bytes/core-cycle\n",
              gpu.dram_bytes_per_cycle());

  reporter()
      .add_case("simulated_device")
      .metric("num_sms", gpu.num_sms)
      .metric("cores_per_sm", gpu.cores_per_sm)
      .metric("core_clock_ghz", gpu.core_clock_ghz)
      .metric("dram_bandwidth_gbps", gpu.dram_bandwidth_gbps)
      .metric("dram_bytes_per_cycle", gpu.dram_bytes_per_cycle());
  reporter()
      .add_case("paper_cpu")
      .metric("cores", cpu.cores)
      .metric("frequency_ghz", cpu.frequency_ghz)
      .metric("mem_bw_gbps", cpu.mem_bw_gbps);
}

}  // namespace
}  // namespace mog::bench

MOG_BENCH_MAIN("table1_hwconfig", mog::bench::epilogue)
