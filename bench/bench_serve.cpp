// Serving-layer scaling: N camera streams multiplexed onto one simulated
// device through serve::StreamServer.
//
// For streams in {1, 2, 4, 8} every stream submits the full frame budget at
// t = 0 and the scheduler drains the backlog; the report captures the
// aggregate modeled throughput, the end-to-end latency distribution
// (arrival -> mask download complete), and the shared-device makespan. One
// stream reproduces the Fig. 5(b) overlapped pipeline; more streams trade
// per-stream latency for aggregate throughput on the single copy engine —
// the serving-layer analogue of the paper's transfer/kernel overlap story.
// The fleet benches extend the surface to devices x streams: the same backlog
// sharded across N single-device planes by cluster::DeviceFleet, plus
// device-loss runs where device 0 dies mid-backlog and its streams fail over
// live (model checkpoint carried across, queued frames requeued).
#include "bench_util.hpp"

#include "mog/cluster/device_fleet.hpp"
#include "mog/serve/stream_server.hpp"
#include "mog/video/scene.hpp"

namespace mog::bench {
namespace {

struct ServeResult {
  int streams = 0;
  int frames_per_stream = 0;
  double makespan_seconds = 0;
  double aggregate_fps = 0;
  telemetry::Rollup latency;
  std::uint64_t masks = 0;
};

std::map<int, ServeResult>& serve_results() {
  static std::map<int, ServeResult> r;
  return r;
}

void serve_streams(benchmark::State& state) {
  const int streams = static_cast<int>(state.range(0));
  const ExperimentConfig base = base_config();

  ServeResult result;
  const auto wall_start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    serve::ServeConfig cfg;
    cfg.max_streams = streams;
    cfg.queue_depth = static_cast<std::size_t>(base.frames);
    cfg.collect_masks = false;  // counters only; masks would dominate memory
    serve::StreamServer<double> server{cfg};

    serve::StreamServer<double>::GpuConfig gpu;
    gpu.width = base.width;
    gpu.height = base.height;
    gpu.level = kernels::OptLevel::kF;
    for (int s = 0; s < streams; ++s) server.open_stream(gpu);

    for (int s = 0; s < streams; ++s) {
      SceneConfig sc;
      sc.width = base.width;
      sc.height = base.height;
      sc.seed = 1000 + static_cast<std::uint64_t>(s);
      const SyntheticScene scene{sc};
      for (int t = 0; t < base.frames; ++t)
        server.submit(s, scene.frame(t));
    }
    server.drain();

    result.streams = streams;
    result.frames_per_stream = base.frames;
    result.makespan_seconds = server.makespan_seconds();
    result.masks = server.masks_delivered();
    result.aggregate_fps =
        static_cast<double>(result.masks) / result.makespan_seconds;
    result.latency = server.aggregate_latency_rollup();
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();

  state.counters["streams"] = streams;
  state.counters["aggregate_fps"] = result.aggregate_fps;
  state.counters["latency_p99_ms"] = 1e3 * result.latency.p99;
  serve_results()[streams] = result;

  reporter().set_workload(base.width, base.height, base.frames);
  reporter()
      .add_case("s" + std::to_string(streams))
      .metric("aggregate_fps", result.aggregate_fps)
      .metric("makespan_seconds", result.makespan_seconds)
      .metric("latency_p50_ms", 1e3 * result.latency.p50)
      .metric("latency_p99_ms", 1e3 * result.latency.p99)
      .metric("latency_mean_ms", 1e3 * result.latency.mean)
      .metric("masks_delivered", static_cast<double>(result.masks))
      .metric("wall_ms", wall_ms);
}
BENCHMARK(serve_streams)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// --- device fleet: devices x streams, with and without device loss ----------

struct FleetResult {
  int devices = 0;
  int streams = 0;
  bool device_loss = false;
  double makespan_seconds = 0;
  double aggregate_fps = 0;
  telemetry::Rollup latency;
  std::uint64_t masks = 0;
  std::uint64_t dropped = 0;
  cluster::MigrationStats migrations;
};

std::map<std::string, FleetResult>& fleet_results() {
  static std::map<std::string, FleetResult> r;
  return r;
}

/// One fleet run: S streams sharded over D devices, full backlog at t = 0.
/// With `kill_device_zero`, device 0 is declared lost after half of each
/// stream's frames are queued — the remainder lands on the survivors.
FleetResult run_fleet(int devices, int streams, bool kill_device_zero) {
  const ExperimentConfig base = base_config();

  cluster::FleetConfig cfg;
  cfg.devices = static_cast<std::size_t>(devices);
  cfg.serve.max_streams = streams;  // per device: room to absorb failover
  cfg.serve.queue_depth = static_cast<std::size_t>(2 * base.frames);
  cfg.serve.collect_masks = false;
  cluster::DeviceFleet<double> fleet{cfg};

  typename serve::StreamServer<double>::GpuConfig gpu;
  gpu.width = base.width;
  gpu.height = base.height;
  gpu.level = kernels::OptLevel::kF;
  std::vector<int> ids;
  for (int s = 0; s < streams; ++s)
    ids.push_back(fleet.open_stream(gpu, nullptr, "cam" + std::to_string(s)));

  std::vector<SyntheticScene> scenes;
  for (int s = 0; s < streams; ++s) {
    SceneConfig sc;
    sc.width = base.width;
    sc.height = base.height;
    sc.seed = 1000 + static_cast<std::uint64_t>(s);
    scenes.emplace_back(sc);
  }

  const int cut = kill_device_zero ? base.frames / 2 : base.frames;
  for (int s = 0; s < streams; ++s)
    for (int t = 0; t < cut; ++t)
      fleet.submit(ids[static_cast<std::size_t>(s)],
                   scenes[static_cast<std::size_t>(s)].frame(t));
  if (kill_device_zero) {
    fleet.fail_device(0);  // queued frames migrate with their streams
    for (int s = 0; s < streams; ++s)
      for (int t = cut; t < base.frames; ++t)
        fleet.submit(ids[static_cast<std::size_t>(s)],
                     scenes[static_cast<std::size_t>(s)].frame(t));
  }
  fleet.drain();

  FleetResult r;
  r.devices = devices;
  r.streams = streams;
  r.device_loss = kill_device_zero;
  r.makespan_seconds = fleet.makespan_seconds();
  r.masks = fleet.masks_delivered();
  r.dropped = fleet.frames_dropped();
  r.aggregate_fps = static_cast<double>(r.masks) / r.makespan_seconds;
  r.latency = fleet.aggregate_latency_rollup();
  r.migrations = fleet.migration_stats();
  return r;
}

void fleet_surface(benchmark::State& state) {
  const int devices = static_cast<int>(state.range(0));
  const int streams = static_cast<int>(state.range(1));
  const ExperimentConfig base = base_config();

  FleetResult result;
  const auto wall_start = std::chrono::steady_clock::now();
  for (auto _ : state) result = run_fleet(devices, streams, false);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();

  state.counters["devices"] = devices;
  state.counters["streams"] = streams;
  state.counters["aggregate_fps"] = result.aggregate_fps;
  const std::string name =
      "d" + std::to_string(devices) + "s" + std::to_string(streams);
  fleet_results()[name] = result;

  reporter().set_workload(base.width, base.height, base.frames);
  reporter()
      .add_case(name)
      .metric("aggregate_fps", result.aggregate_fps)
      .metric("makespan_seconds", result.makespan_seconds)
      .metric("latency_p50_ms", 1e3 * result.latency.p50)
      .metric("latency_p99_ms", 1e3 * result.latency.p99)
      .metric("masks_delivered", static_cast<double>(result.masks))
      .metric("wall_ms", wall_ms);
}
BENCHMARK(fleet_surface)
    ->Args({1, 4})
    ->Args({2, 4})
    ->Args({4, 4})
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({4, 8})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void fleet_device_loss(benchmark::State& state) {
  const int devices = static_cast<int>(state.range(0));
  const int streams = static_cast<int>(state.range(1));
  const ExperimentConfig base = base_config();

  FleetResult result;
  const auto wall_start = std::chrono::steady_clock::now();
  for (auto _ : state) result = run_fleet(devices, streams, true);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();

  // The fault-free run with the same shape is the latency yardstick: the
  // acceptance bar is zero admitted-frame loss and surviving-device p99
  // within 2x of fault-free.
  const std::string fault_free_name =
      "d" + std::to_string(devices) + "s" + std::to_string(streams);
  const double fault_free_p99 =
      fleet_results().count(fault_free_name) != 0
          ? fleet_results()[fault_free_name].latency.p99
          : 0.0;
  const double p99_ratio =
      fault_free_p99 > 0 ? result.latency.p99 / fault_free_p99 : 0.0;

  state.counters["devices"] = devices;
  state.counters["streams"] = streams;
  state.counters["frames_dropped"] = static_cast<double>(result.dropped);
  state.counters["p99_vs_fault_free"] = p99_ratio;
  const std::string name = "loss_" + fault_free_name;
  fleet_results()[name] = result;

  reporter().set_workload(base.width, base.height, base.frames);
  reporter()
      .add_case(name)
      .metric("aggregate_fps", result.aggregate_fps)
      .metric("makespan_seconds", result.makespan_seconds)
      .metric("latency_p99_ms", 1e3 * result.latency.p99)
      .metric("p99_vs_fault_free", p99_ratio)
      .metric("masks_delivered", static_cast<double>(result.masks))
      .metric("frames_dropped", static_cast<double>(result.dropped))
      .metric("migrations_completed",
              static_cast<double>(result.migrations.completed))
      .metric("frames_requeued",
              static_cast<double>(result.migrations.frames_requeued))
      .metric("wall_ms", wall_ms);
}
BENCHMARK(fleet_device_loss)
    ->Args({2, 4})
    ->Args({4, 8})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void epilogue() {
  std::vector<Row> rows;
  const double base_fps = serve_results().count(1) != 0
                              ? serve_results()[1].aggregate_fps
                              : 0.0;
  for (const auto& [streams, r] : serve_results()) {
    rows.push_back(
        Row{"streams=" + std::to_string(streams),
            {static_cast<double>(streams), r.aggregate_fps,
             base_fps > 0 ? r.aggregate_fps / base_fps : 0.0,
             1e3 * r.latency.p50, 1e3 * r.latency.p99,
             1e3 * r.makespan_seconds}});
  }
  print_table(
      "Serving layer — streams sharing one device (level F, double)",
      {"streams", "agg_fps", "scaling_x", "p50_ms", "p99_ms", "makespan_ms"},
      rows,
      "one DMA + one compute engine shared round-robin; latency is modeled "
      "arrival -> mask-download-complete.");

  std::vector<Row> surface;
  std::vector<Row> loss;
  for (const auto& [name, r] : fleet_results()) {
    if (!r.device_loss) {
      surface.push_back(Row{name,
                            {static_cast<double>(r.devices),
                             static_cast<double>(r.streams), r.aggregate_fps,
                             1e3 * r.latency.p50, 1e3 * r.latency.p99,
                             1e3 * r.makespan_seconds}});
      continue;
    }
    const std::string fault_free = name.substr(std::string("loss_").size());
    const double base_p99 = fleet_results().count(fault_free) != 0
                                ? fleet_results()[fault_free].latency.p99
                                : 0.0;
    loss.push_back(Row{
        name,
        {static_cast<double>(r.devices), static_cast<double>(r.streams),
         static_cast<double>(r.masks), static_cast<double>(r.dropped),
         static_cast<double>(r.migrations.completed),
         static_cast<double>(r.migrations.frames_requeued),
         base_p99 > 0 ? r.latency.p99 / base_p99 : 0.0}});
  }
  if (!surface.empty())
    print_table(
        "Device fleet — streams sharded across devices (level F, double)",
        {"devices", "streams", "agg_fps", "p50_ms", "p99_ms", "makespan_ms"},
        surface,
        "cluster::DeviceFleet, least-loaded placement; each device is one "
        "full serve plane with its own DMA + compute engines.");
  if (!loss.empty())
    print_table(
        "Device fleet — device 0 lost at half the backlog",
        {"devices", "streams", "masks", "dropped", "migrations", "requeued",
         "p99_x"},
        loss,
        "live failover: models checkpointed across, queued frames requeued on "
        "the survivors; p99_x is surviving-stream p99 vs the fault-free run "
        "of the same shape (acceptance bar: dropped == 0, p99_x <= 2).");
}

}  // namespace
}  // namespace mog::bench

MOG_BENCH_MAIN("serve", mog::bench::epilogue)
