// Serving-layer scaling: N camera streams multiplexed onto one simulated
// device through serve::StreamServer.
//
// For streams in {1, 2, 4, 8} every stream submits the full frame budget at
// t = 0 and the scheduler drains the backlog; the report captures the
// aggregate modeled throughput, the end-to-end latency distribution
// (arrival -> mask download complete), and the shared-device makespan. One
// stream reproduces the Fig. 5(b) overlapped pipeline; more streams trade
// per-stream latency for aggregate throughput on the single copy engine —
// the serving-layer analogue of the paper's transfer/kernel overlap story.
#include "bench_util.hpp"

#include "mog/serve/stream_server.hpp"
#include "mog/video/scene.hpp"

namespace mog::bench {
namespace {

struct ServeResult {
  int streams = 0;
  int frames_per_stream = 0;
  double makespan_seconds = 0;
  double aggregate_fps = 0;
  telemetry::Rollup latency;
  std::uint64_t masks = 0;
};

std::map<int, ServeResult>& serve_results() {
  static std::map<int, ServeResult> r;
  return r;
}

void serve_streams(benchmark::State& state) {
  const int streams = static_cast<int>(state.range(0));
  const ExperimentConfig base = base_config();

  ServeResult result;
  const auto wall_start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    serve::ServeConfig cfg;
    cfg.max_streams = streams;
    cfg.queue_depth = static_cast<std::size_t>(base.frames);
    cfg.collect_masks = false;  // counters only; masks would dominate memory
    serve::StreamServer<double> server{cfg};

    serve::StreamServer<double>::GpuConfig gpu;
    gpu.width = base.width;
    gpu.height = base.height;
    gpu.level = kernels::OptLevel::kF;
    for (int s = 0; s < streams; ++s) server.open_stream(gpu);

    for (int s = 0; s < streams; ++s) {
      SceneConfig sc;
      sc.width = base.width;
      sc.height = base.height;
      sc.seed = 1000 + static_cast<std::uint64_t>(s);
      const SyntheticScene scene{sc};
      for (int t = 0; t < base.frames; ++t)
        server.submit(s, scene.frame(t));
    }
    server.drain();

    result.streams = streams;
    result.frames_per_stream = base.frames;
    result.makespan_seconds = server.makespan_seconds();
    result.masks = server.masks_delivered();
    result.aggregate_fps =
        static_cast<double>(result.masks) / result.makespan_seconds;
    result.latency = server.aggregate_latency_rollup();
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();

  state.counters["streams"] = streams;
  state.counters["aggregate_fps"] = result.aggregate_fps;
  state.counters["latency_p99_ms"] = 1e3 * result.latency.p99;
  serve_results()[streams] = result;

  reporter().set_workload(base.width, base.height, base.frames);
  reporter()
      .add_case("s" + std::to_string(streams))
      .metric("aggregate_fps", result.aggregate_fps)
      .metric("makespan_seconds", result.makespan_seconds)
      .metric("latency_p50_ms", 1e3 * result.latency.p50)
      .metric("latency_p99_ms", 1e3 * result.latency.p99)
      .metric("latency_mean_ms", 1e3 * result.latency.mean)
      .metric("masks_delivered", static_cast<double>(result.masks))
      .metric("wall_ms", wall_ms);
}
BENCHMARK(serve_streams)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void epilogue() {
  std::vector<Row> rows;
  const double base_fps = serve_results().count(1) != 0
                              ? serve_results()[1].aggregate_fps
                              : 0.0;
  for (const auto& [streams, r] : serve_results()) {
    rows.push_back(
        Row{"streams=" + std::to_string(streams),
            {static_cast<double>(streams), r.aggregate_fps,
             base_fps > 0 ? r.aggregate_fps / base_fps : 0.0,
             1e3 * r.latency.p50, 1e3 * r.latency.p99,
             1e3 * r.makespan_seconds}});
  }
  print_table(
      "Serving layer — streams sharing one device (level F, double)",
      {"streams", "agg_fps", "scaling_x", "p50_ms", "p99_ms", "makespan_ms"},
      rows,
      "one DMA + one compute engine shared round-robin; latency is modeled "
      "arrival -> mask-download-complete.");
}

}  // namespace
}  // namespace mog::bench

MOG_BENCH_MAIN("serve", mog::bench::epilogue)
