// Fig. 6 — architectural impact of the general GPU optimizations:
//   (a) memory access efficiency (17% -> 78%) and store transactions per
//       frame (13.3 M -> 2 M) going from the base layout (A) to coalesced
//       (B);
//   (b) registers per thread (30 -> 36) and SM occupancy for A, B, C.
#include "bench_util.hpp"

#include "mog/kernels/opt_level.hpp"

namespace mog::bench {
namespace {

void general(benchmark::State& state) {
  const auto level = static_cast<kernels::OptLevel>(state.range(0));
  ExperimentConfig cfg = base_config();
  cfg.level = level;
  run_and_record(state, kernels::to_string(level), cfg);
}
BENCHMARK(general)->DenseRange(0, 2)->Iterations(1)->Unit(
    benchmark::kMillisecond);

void epilogue() {
  const double paper_eff[3] = {17, 78, 78};
  const double paper_store_m[3] = {13.3, 2.0, 2.0};
  const double paper_regs[3] = {30, 36, 36};
  std::vector<Row> rows;
  int i = 0;
  for (const auto level :
       {kernels::OptLevel::kA, kernels::OptLevel::kB, kernels::OptLevel::kC}) {
    const auto& r = Registry::instance().get(kernels::to_string(level));
    const double ratio = fullhd_ratio(r.config);
    rows.push_back(
        Row{std::string("level ") + kernels::to_string(level),
            {100.0 * r.per_frame.memory_access_efficiency(), paper_eff[i],
             static_cast<double>(r.per_frame.store_transactions) * ratio / 1e6,
             paper_store_m[i],
             static_cast<double>(r.per_frame.load_transactions) * ratio / 1e6,
             static_cast<double>(r.per_frame.regs_per_thread), paper_regs[i],
             100.0 * r.occupancy.achieved}});
    ++i;
  }
  print_table("Fig. 6 — general optimizations: memory & registers",
              {"mem_eff%", "paper_eff%", "st_tr(M/fr)", "paper_st(M)",
               "ld_tr(M/fr)", "regs", "paper_regs", "occup%"},
              rows,
              "store/load transactions scaled to a full-HD frame; the "
              "register tracker reproduces the B/C > later-levels ordering, "
              "not the paper's absolute per-variant compiler allocation "
              "(see EXPERIMENTS.md).");
}

}  // namespace
}  // namespace mog::bench

MOG_BENCH_MAIN("fig6_general_arch", mog::bench::epilogue)
