// Ingestion front-end decode throughput: Y4M plane extraction and baseline
// JPEG entropy-decode + IDCT, measured over fixture streams encoded from the
// deterministic synthetic scene.
//
// The gated metrics are deterministic by construction: the encoder and
// decoder share a literal-constant DCT basis (no std::cos), so compressed
// byte counts and reconstruction error are bit-stable across hosts and libm
// versions. Wall-clock throughput (decode fps, MB/s) is reported under the
// "wall_" prefix, which bench_gate ignores — decode speed is a property of
// the runner, not the model.
#include "bench_util.hpp"

#include <filesystem>
#include <fstream>

#include "mog/ingest/jpeg.hpp"
#include "mog/ingest/mjpeg.hpp"
#include "mog/ingest/y4m.hpp"
#include "mog/video/scene.hpp"

namespace mog::bench {
namespace {

struct IngestResult {
  std::string codec;
  int frames = 0;
  double compressed_bytes = 0;
  double raw_bytes = 0;
  double max_abs_err = 0;
  double wall_decode_ms = 0;
};

std::vector<IngestResult>& ingest_results() {
  static std::vector<IngestResult> r;
  return r;
}

std::vector<FrameU8> scene_frames(const ExperimentConfig& cfg) {
  SceneConfig sc;
  sc.width = cfg.width;
  sc.height = cfg.height;
  sc.seed = 7;
  SyntheticScene scene{sc};
  std::vector<FrameU8> out;
  for (int t = 0; t < cfg.frames; ++t) out.push_back(scene.frame(t));
  return out;
}

std::vector<std::uint8_t> encode_y4m_mem(const std::vector<FrameU8>& frames,
                                         ingest::Y4mColorspace cs) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mog_bench_ingest.y4m")
          .string();
  ingest::Y4mHeader h;
  h.width = frames.front().width();
  h.height = frames.front().height();
  h.colorspace = cs;
  ingest::Y4mWriter w{path, h};
  for (const FrameU8& f : frames) w.append(f);
  w.close();
  std::ifstream in{path, std::ios::binary};
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  std::remove(path.c_str());
  return bytes;
}

void record(benchmark::State& state, const std::string& name,
            const std::vector<FrameU8>& src, const IngestResult& r) {
  const double raw = static_cast<double>(src.size()) *
                     static_cast<double>(src.front().size());
  state.counters["frames"] = r.frames;
  state.counters["wall_decode_fps"] =
      r.wall_decode_ms > 0 ? 1e3 * r.frames / r.wall_decode_ms : 0;
  state.counters["max_abs_err"] = r.max_abs_err;

  reporter()
      .add_case(name)
      .metric("frames", r.frames)
      .metric("compressed_bytes", r.compressed_bytes)
      .metric("compression_ratio", raw / r.compressed_bytes)
      .metric("max_abs_err", r.max_abs_err)
      .metric("wall_decode_ms", r.wall_decode_ms)
      .metric("wall_decode_fps",
              r.wall_decode_ms > 0 ? 1e3 * r.frames / r.wall_decode_ms : 0)
      .metric("wall_decode_mb_s",
              r.wall_decode_ms > 0
                  ? r.compressed_bytes / 1e3 / r.wall_decode_ms
                  : 0);
  ingest_results().push_back(r);
}

double max_err(const std::vector<FrameU8>& a, const std::vector<FrameU8>& b) {
  double m = 0;
  for (std::size_t t = 0; t < a.size(); ++t)
    for (std::size_t i = 0; i < a[t].size(); ++i)
      m = std::max(m, std::abs(static_cast<double>(a[t][i]) - b[t][i]));
  return m;
}

void y4m_decode(benchmark::State& state) {
  const bool mono = state.range(0) == 0;
  const ExperimentConfig base = base_config();
  const std::vector<FrameU8> src = scene_frames(base);
  const std::vector<std::uint8_t> stream = encode_y4m_mem(
      src, mono ? ingest::Y4mColorspace::kMono : ingest::Y4mColorspace::k420);

  IngestResult r;
  const auto wall_start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    const std::vector<FrameU8> decoded = ingest::decode_y4m(stream);
    r.codec = mono ? "y4m_mono" : "y4m_420";
    r.frames = static_cast<int>(decoded.size());
    r.compressed_bytes = static_cast<double>(stream.size());
    r.max_abs_err = max_err(src, decoded);  // Y4M is lossless: must be 0
  }
  r.wall_decode_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
  record(state, r.codec, src, r);
}
BENCHMARK(y4m_decode)->Arg(0)->Arg(1)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void mjpeg_decode(benchmark::State& state) {
  const int quality = static_cast<int>(state.range(0));
  const ExperimentConfig base = base_config();
  const std::vector<FrameU8> src = scene_frames(base);
  ingest::JpegEncodeConfig cfg;
  cfg.quality = quality;
  const std::vector<std::uint8_t> stream = ingest::encode_mjpeg(src, cfg);

  IngestResult r;
  const auto wall_start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    std::vector<FrameU8> decoded;
    ingest::MjpegReader reader{
        std::make_unique<ingest::MemorySource>(stream)};
    FrameU8 f;
    while (reader.next(f)) decoded.push_back(f);
    r.codec = "mjpeg_q" + std::to_string(quality);
    r.frames = static_cast<int>(decoded.size());
    r.compressed_bytes = static_cast<double>(stream.size());
    r.max_abs_err = max_err(src, decoded);
  }
  r.wall_decode_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
  record(state, r.codec, src, r);
}
BENCHMARK(mjpeg_decode)->Arg(50)->Arg(90)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void print_ingest_table() {
  std::printf("\ndecode throughput (%s)\n",
              "wall-clock; gated metrics are the deterministic ones");
  std::printf("  %-10s %7s %12s %12s %10s %12s\n", "codec", "frames",
              "compressed", "max_abs_err", "decode_ms", "decode_fps");
  for (const IngestResult& r : ingest_results())
    std::printf("  %-10s %7d %12.0f %12.1f %10.2f %12.1f\n", r.codec.c_str(),
                r.frames, r.compressed_bytes, r.max_abs_err,
                r.wall_decode_ms,
                r.wall_decode_ms > 0 ? 1e3 * r.frames / r.wall_decode_ms : 0);
}

void epilogue() {
  const ExperimentConfig base = base_config();
  reporter().set_workload(base.width, base.height, base.frames);
  print_ingest_table();
}

}  // namespace
}  // namespace mog::bench

MOG_BENCH_MAIN("ingest", ::mog::bench::epilogue)
