// Fig. 10 — the windowed (tiled) shared-memory MoG vs frame-group size:
//   (a) speedup (paper: maximum 101x at group size 8, flat beyond) and
//       memory access efficiency (>90% at g=1 falling below 60% at g=32);
//   (b) SM occupancy (40% at g=1 drifting to 38% at g=32 — shared-memory
//       capacity limits residency to one 640-thread block per SM).
// Also reports per-frame output latency, the cost the paper calls out for
// large groups.
#include "bench_util.hpp"

namespace mog::bench {
namespace {

void tiled(benchmark::State& state) {
  const int group = static_cast<int>(state.range(0));
  ExperimentConfig cfg = base_config();
  cfg.level = kernels::OptLevel::kF;
  cfg.tiled = true;
  cfg.tiled_config.frame_group = group;
  if (cfg.frames < 2 * group) cfg.frames = 2 * group;
  run_and_record(state, "g" + std::to_string(group), cfg);
  state.counters["group"] = group;
}
BENCHMARK(tiled)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void untiled_reference(benchmark::State& state) {
  ExperimentConfig cfg = base_config();
  cfg.level = kernels::OptLevel::kF;
  run_and_record(state, "F (untiled)", cfg);
}
BENCHMARK(untiled_reference)->Iterations(1)->Unit(benchmark::kMillisecond);

// Tiling composes with step G: the fused postproc epilogue cleans each
// mask of the group in one extra launch per frame (tile = one 640-thread
// block, same block shape as the MoG group launch).
void tiled_fused_postproc(benchmark::State& state) {
  ExperimentConfig cfg = base_config();
  cfg.level = kernels::OptLevel::kG;
  cfg.tiled = true;
  cfg.tiled_config.frame_group = 8;
  if (cfg.frames < 16) cfg.frames = 16;
  run_and_record(state, "g8+G", cfg);
}
BENCHMARK(tiled_fused_postproc)->Iterations(1)->Unit(benchmark::kMillisecond);

void epilogue() {
  std::vector<Row> rows;
  {
    const auto& f = Registry::instance().get("F (untiled)");
    rows.push_back(Row{"F (untiled)",
                       {f.speedup, 97.0,
                        100.0 * f.per_frame.memory_access_efficiency(), 0,
                        100.0 * f.occupancy.achieved,
                        1e3 * f.kernel_timing.total_seconds *
                            fullhd_ratio(f.config)}});
  }
  const double paper_speedup[6] = {0, 0, 0, 101, 0, 0};
  int i = 0;
  for (const int g : {1, 2, 4, 8, 16, 32}) {
    const auto& r = Registry::instance().get("g" + std::to_string(g));
    // Latency until a frame's mask is available: the whole group must finish.
    const double group_latency_ms =
        1e3 * r.kernel_timing.total_seconds * fullhd_ratio(r.config) * g;
    rows.push_back(Row{"tiled g=" + std::to_string(g),
                       {r.speedup, paper_speedup[i],
                        100.0 * r.per_frame.memory_access_efficiency(),
                        g == 1 ? 90.0 : (g == 32 ? 60.0 : 0.0),
                        100.0 * r.occupancy.achieved, group_latency_ms}});
    ++i;
  }
  {
    const auto& r = Registry::instance().get("g8+G");
    rows.push_back(Row{"tiled g=8 + G",
                       {r.speedup, 0,
                        100.0 * r.per_frame.memory_access_efficiency(), 0,
                        100.0 * r.occupancy.achieved,
                        1e3 * r.kernel_timing.total_seconds *
                            fullhd_ratio(r.config) * 8}});
  }
  print_table("Fig. 10 — tiled MoG vs frame-group size (double, K=3)",
              {"speedup", "paper_spd", "mem_eff%", "paper_me%", "occup%",
               "latency_ms"},
              rows,
              "paper anchors: 101x at g=8; mem_eff >90% (g=1) -> <60% "
              "(g=32); occupancy 40% -> 38%. latency = time until a group's "
              "masks appear (full-HD scale).");
}

}  // namespace
}  // namespace mog::bench

MOG_BENCH_MAIN("fig10_tiled", mog::bench::epilogue)
