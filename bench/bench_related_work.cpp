// §II related-work analysis — variable component count on a GPU.
//
// The paper dismisses the variable-K approach ([18]/[19]) for GPU targets:
// lockstep warps run every lane to the warp-wide maximum component count,
// and the per-lane slot indices produce unbalanced memory access. This
// bench implements that approach and measures both effects against the
// paper's fixed-K level-D kernel (the closest fixed-K analogue: branchy,
// no sort):
//   * lane utilization of the component loops (useful / lockstep-charged),
//   * memory access efficiency,
//   * modeled kernel time per frame.
// Swept over scene multimodality, because the variable-K win on a CPU —
// and its loss on a GPU — both depend on how mixed the warps are.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "mog/cpu/adaptive_mog.hpp"
#include "mog/gpusim/timing_model.hpp"
#include "mog/kernels/adaptive_kernel.hpp"
#include "mog/kernels/mog_kernels.hpp"
#include "mog/video/scene.hpp"

namespace mog::bench {
namespace {

constexpr int kW = 320, kH = 180, kFrames = 10;

struct Comparison {
  double adaptive_kernel_ms = 0;   // modeled, per frame
  double fixed_kernel_ms = 0;
  double lane_utilization = 0;
  double adaptive_mem_eff = 0;
  double fixed_mem_eff = 0;
  double cpu_mean_active = 0;      // adaptive CPU: mean active components
};

Comparison compare(double texture_fraction) {
  SceneConfig sc;
  sc.width = kW;
  sc.height = kH;
  sc.seed = 5;
  sc.texture_fraction = texture_fraction;
  const SyntheticScene scene{sc};

  AdaptiveMogParams ap;  // K_max = 3, like the fixed-K baseline
  const auto tp = TypedMogParams<double>::from(ap.base);

  Comparison out;
  // --- adaptive GPU ---------------------------------------------------------
  {
    gpusim::Device dev;
    kernels::AdaptiveDeviceState<double> state{dev, kW, kH, ap};
    auto fb = dev.memory().alloc<std::uint8_t>(kW * kH);
    auto gb = dev.memory().alloc<std::uint8_t>(kW * kH);
    kernels::AdaptiveCounters counters;
    gpusim::KernelStats total;
    FrameU8 frame;
    for (int t = 0; t < kFrames; ++t) {
      frame = scene.frame(t);
      gpusim::copy_to_device(fb, frame.data(), frame.size());
      total += kernels::launch_adaptive_frame<double>(
          dev, state, fb, gb, tp, static_cast<double>(ap.prune_weight),
          &counters);
    }
    const auto per_frame = total.averaged_over(kFrames);
    const auto occ = gpusim::compute_occupancy(
        dev.spec(), per_frame.regs_per_thread, per_frame.threads_per_block,
        per_frame.shared_bytes_per_block);
    out.adaptive_kernel_ms =
        1e3 * gpusim::kernel_time(per_frame, occ, dev.spec()).total_seconds;
    out.lane_utilization = counters.lane_utilization();
    out.adaptive_mem_eff = per_frame.memory_access_efficiency();
  }
  // --- fixed-K GPU (level D: branchy no-sort, the closest analogue) ---------
  {
    gpusim::Device dev;
    kernels::DeviceMogState<double> state{dev, kW, kH, ap.base,
                                          kernels::ParamLayout::kSoA};
    auto fb = dev.memory().alloc<std::uint8_t>(kW * kH);
    auto gb = dev.memory().alloc<std::uint8_t>(kW * kH);
    gpusim::KernelStats total;
    FrameU8 frame;
    for (int t = 0; t < kFrames; ++t) {
      frame = scene.frame(t);
      gpusim::copy_to_device(fb, frame.data(), frame.size());
      total += kernels::launch_mog_frame<double>(dev, state, fb, gb, tp,
                                                 kernels::OptLevel::kD);
    }
    const auto per_frame = total.averaged_over(kFrames);
    const auto occ = gpusim::compute_occupancy(
        dev.spec(), per_frame.regs_per_thread, per_frame.threads_per_block,
        per_frame.shared_bytes_per_block);
    out.fixed_kernel_ms =
        1e3 * gpusim::kernel_time(per_frame, occ, dev.spec()).total_seconds;
    out.fixed_mem_eff = per_frame.memory_access_efficiency();
  }
  // --- adaptive CPU (the approach's home turf) -------------------------------
  {
    AdaptiveMog<double> cpu{kW, kH, ap};
    FrameU8 frame, fg;
    for (int t = 0; t < kFrames; ++t) {
      frame = scene.frame(t);
      cpu.apply(frame, fg);
    }
    out.cpu_mean_active = cpu.model().mean_active_components();
  }
  return out;
}

void related_work(benchmark::State& state) {
  const double texture = static_cast<double>(state.range(0)) / 100.0;
  Comparison c;
  for (auto _ : state) c = compare(texture);
  state.counters["lane_util_pct"] = 100.0 * c.lane_utilization;
  state.counters["adaptive_ms"] = c.adaptive_kernel_ms;
  state.counters["fixedK_ms"] = c.fixed_kernel_ms;
  state.counters["cpu_mean_K"] = c.cpu_mean_active;
}
BENCHMARK(related_work)
    ->Arg(0)
    ->Arg(30)
    ->Arg(60)
    ->Arg(90)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void epilogue() {
  std::printf(
      "\n=== §II related work — variable-K MoG on lockstep hardware ===\n");
  std::printf("%-12s %10s %12s %12s %12s %12s %12s\n", "texture%",
              "cpu_mean_K", "lane_util%", "adapt_ms/fr", "fixedK_ms/fr",
              "adapt_eff%", "fixed_eff%");
  for (const double texture : {0.0, 0.3, 0.6, 0.9}) {
    const Comparison c = compare(texture);
    std::printf("%-12.0f %10.2f %12.1f %12.2f %12.2f %12.1f %12.1f\n",
                100.0 * texture, c.cpu_mean_active,
                100.0 * c.lane_utilization, c.adaptive_kernel_ms,
                c.fixed_kernel_ms, 100.0 * c.adaptive_mem_eff,
                100.0 * c.fixed_mem_eff);
    char label[32];
    std::snprintf(label, sizeof label, "texture=%.0f%%", 100.0 * texture);
    reporter()
        .add_case(label)
        .metric("cpu_mean_active_components", c.cpu_mean_active)
        .metric("lane_utilization", c.lane_utilization)
        .metric("adaptive_kernel_ms", c.adaptive_kernel_ms)
        .metric("fixed_kernel_ms", c.fixed_kernel_ms)
        .metric("adaptive_mem_efficiency", c.adaptive_mem_eff)
        .metric("fixed_mem_efficiency", c.fixed_mem_eff);
  }
  std::printf(
      "(the paper's §II argument, quantified: the CPU-side win — mean "
      "active components well under K — does not transfer to the GPU, "
      "where warps run to the lane maximum and ragged accesses burn "
      "bandwidth; the fixed-K kernel stays ahead)\n");
}

}  // namespace
}  // namespace mog::bench

MOG_BENCH_MAIN("related_work", mog::bench::epilogue)
