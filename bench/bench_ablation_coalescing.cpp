// Ablation for Fig. 4 — coalesced vs non-coalesced data placement, isolated
// from the MoG kernel: replay the exact access patterns of the two layouts
// through the coalescing analyzer and report transactions, efficiency, and
// the LSU replay cost per warp instruction. This is the "why" behind the
// A -> B jump in Fig. 6.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "mog/gpusim/coalescer.hpp"
#include "mog/gpusim/timing_constants.hpp"

namespace mog::bench {
namespace {

using gpusim::Coalescer;
using gpusim::KernelStats;

/// One warp-load of parameter k under the given layout (K components,
/// 3 params of `elem` bytes each).
std::vector<std::uint64_t> layout_addresses(bool aos, int k, int param,
                                            unsigned elem, int num_comp) {
  std::vector<std::uint64_t> addrs;
  const std::uint64_t base = 0x100000;
  for (int lane = 0; lane < 32; ++lane) {
    if (aos) {
      // Fig. 4a: [pixel][component][param]
      addrs.push_back(base + (static_cast<std::uint64_t>(lane) * num_comp * 3 +
                              static_cast<std::uint64_t>(k) * 3 + param) *
                                 elem);
    } else {
      // Fig. 4b: [param][component][pixel]; pixels contiguous.
      addrs.push_back(base +
                      (static_cast<std::uint64_t>(param) * num_comp + k) *
                          (1 << 22) +
                      static_cast<std::uint64_t>(lane) * elem);
    }
  }
  return addrs;
}

KernelStats replay_layout(bool aos, unsigned elem, int num_comp) {
  gpusim::DeviceSpec spec;
  Coalescer c{spec, gpusim::kEffectiveL1SegmentsPerWarp};
  c.begin_warp();
  KernelStats s;
  for (int k = 0; k < num_comp; ++k)
    for (int param = 0; param < 3; ++param) {
      c.access(Coalescer::Kind::kLoad, layout_addresses(aos, k, param, elem,
                                                        num_comp),
               elem, s);
      c.access(Coalescer::Kind::kStore, layout_addresses(aos, k, param, elem,
                                                         num_comp),
               elem, s);
    }
  return s;
}

void coalescing(benchmark::State& state) {
  const bool aos = state.range(0) == 0;
  const unsigned elem = static_cast<unsigned>(state.range(1));
  const int num_comp = static_cast<int>(state.range(2));
  KernelStats s;
  for (auto _ : state) {
    s = replay_layout(aos, elem, num_comp);
    benchmark::DoNotOptimize(s.load_transactions);
  }
  state.counters["ld_transactions"] = static_cast<double>(s.load_transactions);
  state.counters["st_transactions"] =
      static_cast<double>(s.store_transactions);
  state.counters["mem_eff_pct"] = 100.0 * s.memory_access_efficiency();
  state.counters["replay_cycles"] = static_cast<double>(s.issue_cycles);
  state.SetLabel(std::string(aos ? "AoS" : "SoA") + " elem=" +
                 std::to_string(elem) + "B K=" + std::to_string(num_comp));
}
BENCHMARK(coalescing)
    ->ArgsProduct({{0, 1}, {8, 4}, {3, 5}})
    ->Unit(benchmark::kMicrosecond);

void epilogue() {
  std::printf("\n=== Ablation — layout vs memory-system behaviour ===\n");
  std::printf("%-20s %10s %10s %10s %10s\n", "layout", "ld_trans", "st_trans",
              "eff%", "replay_cyc");
  for (const bool aos : {true, false})
    for (const unsigned elem : {8u, 4u}) {
      const KernelStats s = replay_layout(aos, elem, 3);
      const std::string label = std::string(aos ? "AoS" : "SoA") + " " +
                                std::to_string(elem) + "B x3 comps";
      std::printf("%-20s %10llu %10llu %10.1f %10llu\n", label.c_str(),
                  static_cast<unsigned long long>(s.load_transactions),
                  static_cast<unsigned long long>(s.store_transactions),
                  100.0 * s.memory_access_efficiency(),
                  static_cast<unsigned long long>(s.issue_cycles));
      reporter()
          .add_case(label)
          .metric("load_transactions", static_cast<double>(s.load_transactions))
          .metric("store_transactions",
                  static_cast<double>(s.store_transactions))
          .metric("memory_access_efficiency", s.memory_access_efficiency())
          .metric("replay_cycles", static_cast<double>(s.issue_cycles));
    }
  std::printf(
      "(paper Fig. 4: the AoS layout turns each warp access into a strided "
      "sweep; coalescing restores one-segment-per-warp behaviour)\n");
}

}  // namespace
}  // namespace mog::bench

MOG_BENCH_MAIN("ablation_coalescing", mog::bench::epilogue)
