// Ablation — the occupancy calculator as a design-space tool: sweep block
// size, registers per thread, and shared memory per block, reporting which
// resource limits residency. This is the machinery behind the paper's
// register-reduction argument (§IV-C: "arithmetic calculations are cheaper
// than occupying registers") and the tiled kernel's shared-memory ceiling.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "mog/gpusim/occupancy.hpp"

namespace mog::bench {
namespace {

void occupancy_sweep(benchmark::State& state) {
  const gpusim::DeviceSpec spec;
  const int regs = static_cast<int>(state.range(0));
  const int tpb = static_cast<int>(state.range(1));
  gpusim::Occupancy occ;
  for (auto _ : state) {
    occ = gpusim::compute_occupancy(spec, regs, tpb, 0);
    benchmark::DoNotOptimize(occ.theoretical);
  }
  state.counters["occupancy_pct"] = 100.0 * occ.theoretical;
  state.counters["blocks_per_sm"] = occ.blocks_per_sm;
}
BENCHMARK(occupancy_sweep)
    ->ArgsProduct({{20, 28, 31, 32, 33, 36, 43, 50, 63}, {128, 256, 640}})
    ->Unit(benchmark::kNanosecond);

void epilogue() {
  const gpusim::DeviceSpec spec;
  std::printf(
      "\n=== Ablation — occupancy vs registers (128 threads/block) ===\n");
  std::printf("%-8s %10s %10s %12s %14s\n", "regs", "blocks", "warps",
              "occup_theo%", "limited_by");
  for (const int regs : {20, 24, 28, 31, 32, 33, 36, 40, 44, 50, 56, 63}) {
    const auto occ = gpusim::compute_occupancy(spec, regs, 128, 0);
    std::printf("%-8d %10d %10d %12.1f %14s\n", regs, occ.blocks_per_sm,
                occ.warps_per_sm, 100.0 * occ.theoretical,
                to_string(occ.limiter));
    reporter()
        .add_case("regs=" + std::to_string(regs) + " tpb=128")
        .metric("blocks_per_sm", occ.blocks_per_sm)
        .metric("warps_per_sm", occ.warps_per_sm)
        .metric("occupancy_theoretical", occ.theoretical);
  }
  std::printf(
      "\n=== Occupancy vs shared memory (640 threads/block, 20 regs) ===\n");
  std::printf("%-14s %10s %12s %14s\n", "shared_B", "blocks", "occup_theo%",
              "limited_by");
  for (const int kb : {4, 8, 16, 23, 46}) {
    const auto occ =
        gpusim::compute_occupancy(spec, 20, 640,
                                  static_cast<std::uint64_t>(kb) * 1024);
    std::printf("%-14d %10d %12.1f %14s\n", kb * 1024, occ.blocks_per_sm,
                100.0 * occ.theoretical, to_string(occ.limiter));
    reporter()
        .add_case("shared=" + std::to_string(kb) + "KB tpb=640")
        .metric("blocks_per_sm", occ.blocks_per_sm)
        .metric("occupancy_theoretical", occ.theoretical);
  }
  std::printf(
      "(the tiled kernel's 46 KB/block footprint pins one block per SM — "
      "the occupancy cliff of Fig. 10b)\n");
}

}  // namespace
}  // namespace mog::bench

MOG_BENCH_MAIN("ablation_occupancy", mog::bench::epilogue)
