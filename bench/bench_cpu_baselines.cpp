// §IV-A / §V text — the CPU baselines:
//   serial double K=3: 227.3 s / 450 full-HD frames (the reference point)
//   serial double K=5: 406.6 s        serial float K=3: 180 s
//   SIMD-customized:   163 s          8-thread OpenMP:   99.8 s
//   base GPU (A):      17.5 s (13x)
//
// The modeled values come from the calibrated cost model; alongside them,
// this bench actually *runs* the real CPU implementations at reduced
// resolution and reports their measured per-pixel throughput — the sanity
// check that the functional implementations behave like implementations,
// not stubs.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "mog/cpu/cost_model.hpp"
#include "mog/cpu/parallel_mog.hpp"
#include "mog/cpu/serial_mog.hpp"
#include "mog/cpu/simd_mog.hpp"
#include "mog/video/scene.hpp"

namespace mog::bench {
namespace {

constexpr int kW = 320, kH = 180;

const SyntheticScene& scene() {
  static const SyntheticScene s{[] {
    SceneConfig cfg;
    cfg.width = kW;
    cfg.height = kH;
    return cfg;
  }()};
  return s;
}

template <typename Engine>
void run_cpu(benchmark::State& state, Engine& engine) {
  FrameU8 fg;
  int t = 0;
  for (auto _ : state) {
    engine.apply(scene().frame(t++ % 64), fg);
    benchmark::DoNotOptimize(fg.data());
  }
  state.counters["Mpixels/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kW * kH / 1e6,
      benchmark::Counter::kIsRate);
}

void serial_double(benchmark::State& state) {
  MogParams p;
  p.num_components = static_cast<int>(state.range(0));
  SerialMog<double> engine{kW, kH, p};
  run_cpu(state, engine);
}
BENCHMARK(serial_double)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

void serial_float(benchmark::State& state) {
  SerialMog<float> engine{kW, kH};
  run_cpu(state, engine);
}
BENCHMARK(serial_float)->Unit(benchmark::kMillisecond);

void simd_double(benchmark::State& state) {
  SimdMog<double> engine{kW, kH};
  run_cpu(state, engine);
}
BENCHMARK(simd_double)->Unit(benchmark::kMillisecond);

void parallel_double(benchmark::State& state) {
  ParallelMog<double> engine{kW, kH, MogParams{},
                             static_cast<int>(state.range(0))};
  run_cpu(state, engine);
}
BENCHMARK(parallel_double)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void epilogue() {
  const CpuCostModel cost;
  struct Line {
    const char* label;
    double modeled;
    double paper;
  };
  const Line lines[] = {
      {"serial double K=3",
       cost.seconds(CpuVariant::kSerial, Precision::kDouble, 1920, 1080, 450,
                    3),
       227.3},
      {"serial double K=5",
       cost.seconds(CpuVariant::kSerial, Precision::kDouble, 1920, 1080, 450,
                    5),
       406.6},
      {"serial float K=3",
       cost.seconds(CpuVariant::kSerial, Precision::kFloat, 1920, 1080, 450,
                    3),
       180.0},
      {"SIMD-customized",
       cost.seconds(CpuVariant::kSimd, Precision::kDouble, 1920, 1080, 450,
                    3),
       163.0},
      {"8-thread parallel",
       cost.seconds(CpuVariant::kParallel, Precision::kDouble, 1920, 1080,
                    450, 3, 8),
       99.8},
  };
  std::printf(
      "\n=== CPU baselines — modeled seconds for 450 full-HD frames ===\n");
  std::printf("%-22s %12s %12s\n", "", "modeled_s", "paper_s");
  for (const Line& l : lines) {
    std::printf("%-22s %12.1f %12.1f\n", l.label, l.modeled, l.paper);
    reporter()
        .add_case(l.label)
        .metric("modeled_seconds", l.modeled)
        .metric("paper_seconds", l.paper);
  }
  std::printf(
      "(measured per-pixel throughput of the real implementations is in the "
      "benchmark rows above; modeled seconds anchor the speedup ratios)\n");
}

}  // namespace
}  // namespace mog::bench

MOG_BENCH_MAIN("cpu_baselines", mog::bench::epilogue)
