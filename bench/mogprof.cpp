// mogprof: nvprof-style digestion of counter dumps.
//
// Usage:
//   mogprof <dump.json>                     per-kernel table + A..F step report
//   mogprof --diff <baseline.json> <fresh.json>
//
// A dump is either a schema-v1 bench report (BENCH_*.json) or a
// CounterRegistry::to_json() dump. The tool reconstructs per-kernel
// divergence, coalescing efficiency, occupancy, achieved DRAM bandwidth and
// a memory-/compute-bound roofline verdict, and — when the dump's cases are
// the paper's optimization levels — attributes each A..F step to the
// counters it moved.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "mog/common/error.hpp"
#include "mog/obs/profile.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <dump.json>\n"
               "       %s --diff <baseline.json> <fresh.json>\n"
               "dumps are BENCH_*.json reports or CounterRegistry dumps\n",
               argv0, argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool diff = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--diff") == 0)
      diff = true;
    else
      positional.emplace_back(argv[i]);
  }

  try {
    if (diff) {
      if (positional.size() != 2) return usage(argv[0]);
      const mog::obs::ProfileDump baseline =
          mog::obs::load_profile_file(positional[0]);
      const mog::obs::ProfileDump fresh =
          mog::obs::load_profile_file(positional[1]);
      std::fputs(mog::obs::render_profile_diff(baseline, fresh).c_str(),
                 stdout);
      return 0;
    }
    if (positional.size() != 1) return usage(argv[0]);
    const mog::obs::ProfileDump dump =
        mog::obs::load_profile_file(positional[0]);
    std::fputs(mog::obs::render_profile_table(dump).c_str(), stdout);
    const std::string steps = mog::obs::render_step_report(dump);
    if (!steps.empty()) {
      std::fputs("\n", stdout);
      std::fputs(steps.c_str(), stdout);
    }
    return 0;
  } catch (const mog::Error& e) {
    std::fprintf(stderr, "mogprof: %s\n", e.what());
    return 1;
  }
}
