// mogprof: nvprof-style digestion of counter dumps and sampling profiles.
//
// Usage:
//   mogprof <dump.json>                     per-kernel table + A..F step report
//   mogprof --diff <baseline.json> <fresh.json>
//   mogprof --flame <profile> [--top N]     top-N table from a sampling profile
//   mogprof --heatmap <heat.json> [--out dir]
//
// A dump is either a schema-v1 bench report (BENCH_*.json) or a
// CounterRegistry::to_json() dump. The tool reconstructs per-kernel
// divergence, coalescing efficiency, occupancy, achieved DRAM bandwidth and
// a memory-/compute-bound roofline verdict, and — when the dump's cases are
// the paper's optimization levels — attributes each A..F step to the
// counters it moved.
//
// --flame accepts a PROF_*.collapsed text file, or any JSON with a "prof"
// block (a BENCH_*.json written under MOG_BENCH_PROFILE) or that is itself
// such a block (a /profilez?format=speedscope capture is NOT accepted —
// fetch format=collapsed instead). --heatmap reads a HEAT_*.json
// ("mog-heatmap-v1") and prints a summary; with --out it also writes one
// .pgm and one .csv per metric into the directory.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mog/common/error.hpp"
#include "mog/common/strutil.hpp"
#include "mog/obs/flame.hpp"
#include "mog/obs/heatmap.hpp"
#include "mog/obs/profile.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <dump.json>\n"
               "       %s --diff <baseline.json> <fresh.json>\n"
               "       %s --flame <PROF_*.collapsed | BENCH_*.json> [--top N]\n"
               "       %s --heatmap <HEAT_*.json> [--out dir]\n"
               "dumps are BENCH_*.json reports or CounterRegistry dumps\n",
               argv0, argv0, argv0, argv0);
  return 1;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MOG_CHECK(in.good(), "cannot open " + path);
  std::ostringstream body;
  body << in.rdbuf();
  MOG_CHECK(!in.bad(), "read failed: " + path);
  return body.str();
}

/// Load a sampling profile from a collapsed-stack text file or a JSON doc
/// carrying (or being) a "prof" report block.
mog::obs::FlameProfile load_flame(const std::string& path) {
  const std::string text = read_text_file(path);
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first != std::string::npos && text[first] == '{') {
    const mog::telemetry::Json doc = mog::telemetry::Json::parse(text);
    const mog::telemetry::Json* prof = doc.find("prof");
    if (prof == nullptr) prof = &doc;
    MOG_CHECK(prof->find("stacks") != nullptr,
              path + " has no \"prof\" block (run the bench with "
                     "MOG_BENCH_PROFILE=1)");
    return mog::obs::profile_from_report_json(*prof);
  }
  return mog::obs::parse_collapsed(text);
}

int run_flame(const std::string& path, int top_n) {
  const mog::obs::FlameProfile profile = load_flame(path);
  std::fputs(mog::obs::render_flame_table(profile, top_n).c_str(), stdout);
  return 0;
}

int run_heatmap(const std::string& path, const std::string& out_dir) {
  const mog::obs::Heatmap map =
      mog::obs::heatmap_from_json(mog::telemetry::read_json_file(path));
  std::fputs(mog::obs::render_heatmap_summary(map).c_str(), stdout);
  if (out_dir.empty()) return 0;

  std::filesystem::create_directories(out_dir);
  const std::string stem =
      std::filesystem::path(path).stem().string();
  const auto write_grid = [&](const char* metric,
                              const std::vector<double>& grid) {
    for (const char* ext : {".pgm", ".csv"}) {
      const std::string file =
          out_dir + "/" + stem + "_" + metric + ext;
      std::ofstream out(file);
      MOG_CHECK(out.good(), "cannot open " + file);
      out << (std::strcmp(ext, ".pgm") == 0
                  ? mog::obs::heatmap_to_pgm(grid, map.cells_x, map.cells_y)
                  : mog::obs::heatmap_to_csv(grid, map.cells_x, map.cells_y));
      MOG_CHECK(out.good(), "short write to " + file);
      std::printf("wrote %s\n", file.c_str());
    }
  };
  write_grid("cycles", map.issue_cycles);
  write_grid("divergence", mog::obs::divergence_grid(map));
  write_grid("replay", mog::obs::replay_grid(map));
  write_grid("dram_bytes", map.dram_bytes);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool diff = false, flame = false, heatmap = false;
  int top_n = 20;
  std::string out_dir;
  std::vector<std::string> positional;
  try {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--diff") == 0) {
        diff = true;
      } else if (std::strcmp(argv[i], "--flame") == 0) {
        flame = true;
      } else if (std::strcmp(argv[i], "--heatmap") == 0) {
        heatmap = true;
      } else if (std::strcmp(argv[i], "--top") == 0) {
        if (++i >= argc) return usage(argv[0]);
        top_n = mog::parse_int(argv[i], 1, 1000, "--top");
      } else if (std::strcmp(argv[i], "--out") == 0) {
        if (++i >= argc) return usage(argv[0]);
        out_dir = argv[i];
      } else {
        positional.emplace_back(argv[i]);
      }
    }
    if (diff + flame + heatmap > 1) return usage(argv[0]);

    if (diff) {
      if (positional.size() != 2) return usage(argv[0]);
      const mog::obs::ProfileDump baseline =
          mog::obs::load_profile_file(positional[0]);
      const mog::obs::ProfileDump fresh =
          mog::obs::load_profile_file(positional[1]);
      std::fputs(mog::obs::render_profile_diff(baseline, fresh).c_str(),
                 stdout);
      return 0;
    }
    if (positional.size() != 1) return usage(argv[0]);
    if (flame) return run_flame(positional[0], top_n);
    if (heatmap) return run_heatmap(positional[0], out_dir);

    const mog::obs::ProfileDump dump =
        mog::obs::load_profile_file(positional[0]);
    std::fputs(mog::obs::render_profile_table(dump).c_str(), stdout);
    const std::string steps = mog::obs::render_step_report(dump);
    if (!steps.empty()) {
      std::fputs("\n", stdout);
      std::fputs(steps.c_str(), stdout);
    }
    return 0;
  } catch (const mog::Error& e) {
    std::fprintf(stderr, "mogprof: %s\n", e.what());
    return 1;
  }
}
