// Table IV — output quality of every optimization level against the
// double-precision CPU ground truth, measured with MS-SSIM exactly as the
// paper does (background estimate and foreground masks).
//
// Paper values: background 99% for all levels; foreground 99/99/96/97/97/95%
// for A..F. The mechanisms for sub-100% scores are the same as the paper's
// §V-A analysis: fused multiply-add contraction in the device kernels and
// the level-F diff rewrite (post-update mean).
#include "bench_util.hpp"

#include "mog/kernels/opt_level.hpp"

namespace mog::bench {
namespace {

void quality(benchmark::State& state) {
  const auto level = static_cast<kernels::OptLevel>(state.range(0));
  ExperimentConfig cfg = base_config();
  cfg.level = level;
  cfg.measure_quality = true;
  cfg.frames = std::max(cfg.frames, 20);  // some history before comparing
  cfg.warmup_frames = 8;
  run_and_record(state, kernels::to_string(level), cfg);
  const auto& r = Registry::instance().get(kernels::to_string(level));
  state.counters["msssim_fg_pct"] = 100.0 * r.msssim_foreground;
  state.counters["msssim_bg_pct"] = 100.0 * r.msssim_background;
}
BENCHMARK(quality)->DenseRange(0, 5)->Iterations(1)->Unit(
    benchmark::kMillisecond);

void epilogue() {
  const double paper_fg[6] = {99, 99, 96, 97, 97, 95};
  std::vector<Row> rows;
  int i = 0;
  for (const auto level : kernels::kAllLevels) {
    const auto& r = Registry::instance().get(kernels::to_string(level));
    rows.push_back(Row{std::string("level ") + kernels::to_string(level),
                       {100.0 * r.msssim_background, 99.0,
                        100.0 * r.msssim_foreground, paper_fg[i],
                        100.0 * r.fg_disagreement,
                        100.0 * r.vs_truth.f1()}});
    ++i;
  }
  print_table(
      "Table IV — MS-SSIM vs CPU double-precision ground truth",
      {"bg%", "paper_bg%", "fg%", "paper_fg%", "flipped_px%", "truth_F1%"},
      rows,
      "flipped_px = fraction of mask pixels that differ from the CPU "
      "reference; truth_F1 = detection quality against the synthetic "
      "scene's ground-truth objects (supplementary).");
}

}  // namespace
}  // namespace mog::bench

MOG_BENCH_MAIN("table4_quality", mog::bench::epilogue)
