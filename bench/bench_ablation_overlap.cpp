// Ablation for Fig. 5 — sequential vs overlapped transfer scheduling,
// sweeping the kernel/transfer balance. Reproduces the paper's observation
// that "almost one third of the total execution time is devoted to data
// transmission" before overlap, and that overlap leaves the pipeline bound
// by max(kernel, transfers).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "mog/gpusim/device_spec.hpp"
#include "mog/gpusim/stream_sim.hpp"
#include "mog/gpusim/transfer_model.hpp"

namespace mog::bench {
namespace {

using gpusim::FrameSchedule;

FrameSchedule full_hd_schedule(double kernel_ms) {
  gpusim::DeviceSpec spec;
  FrameSchedule f;
  f.upload_seconds = gpusim::transfer_seconds(spec, 1920ull * 1080);
  f.download_seconds = gpusim::transfer_seconds(spec, 1920ull * 1080);
  f.kernel_seconds = kernel_ms * 1e-3;
  return f;
}

void schedules(benchmark::State& state) {
  const double kernel_ms = static_cast<double>(state.range(0)) / 10.0;
  const FrameSchedule f = full_hd_schedule(kernel_ms);
  double seq = 0, ovl = 0;
  for (auto _ : state) {
    seq = gpusim::sequential_pipeline_seconds(f, 450);
    ovl = gpusim::overlapped_pipeline_seconds(f, 450);
    benchmark::DoNotOptimize(seq);
    benchmark::DoNotOptimize(ovl);
  }
  state.counters["sequential_s"] = seq;
  state.counters["overlapped_s"] = ovl;
  state.counters["gain_pct"] = 100.0 * (1.0 - ovl / seq);
}
BENCHMARK(schedules)->Arg(10)->Arg(30)->Arg(89)->Arg(200)->Unit(
    benchmark::kNanosecond);

void epilogue() {
  std::printf(
      "\n=== Ablation — Fig. 5 transfer/kernel overlap (450 full-HD frames) "
      "===\n");
  std::printf("%-14s %12s %12s %12s %14s\n", "kernel_ms", "transfers_ms",
              "sequential_s", "overlapped_s", "transfer_share");
  for (const double kernel_ms : {1.0, 3.0, 5.2, 8.9, 20.0}) {
    const FrameSchedule f = full_hd_schedule(kernel_ms);
    const double seq = gpusim::sequential_pipeline_seconds(f, 450);
    const double ovl = gpusim::overlapped_pipeline_seconds(f, 450);
    const double transfers_ms =
        1e3 * (f.upload_seconds + f.download_seconds);
    std::printf("%-14.1f %12.2f %12.2f %12.2f %13.1f%%\n", kernel_ms,
                transfers_ms, seq, ovl,
                100.0 * transfers_ms / (transfers_ms + kernel_ms));
    char label[32];
    std::snprintf(label, sizeof label, "kernel_ms=%.1f", kernel_ms);
    reporter()
        .add_case(label)
        .metric("transfers_ms", transfers_ms)
        .metric("sequential_seconds", seq)
        .metric("overlapped_seconds", ovl)
        .metric("overlap_gain", 1.0 - ovl / seq);
  }
  std::printf(
      "(at the paper's B-level kernel time of ~8.9 ms the transfers are "
      "about a third of the per-frame budget, and overlap hides them — the "
      "B -> C step of Fig. 8)\n");

  // Fig. 5 rendered from the discrete-event pipeline simulation
  // (U = upload, K = kernel, D = download; one row per engine).
  const FrameSchedule f = full_hd_schedule(8.9);
  std::printf("\nFig. 5(a) — sequential, 4 frames:\n%s",
              gpusim::simulate_sequential(f, 4).ascii(72).c_str());
  std::printf("\nFig. 5(b) — overlapped (double buffering), 4 frames:\n%s",
              gpusim::simulate_overlapped(f, 4).ascii(72).c_str());
}

}  // namespace
}  // namespace mog::bench

MOG_BENCH_MAIN("ablation_overlap", mog::bench::epilogue)
