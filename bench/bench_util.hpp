// Shared infrastructure for the figure/table reproduction benches.
//
// Each bench binary registers one google-benchmark case per experimental
// configuration (Iterations(1) — the simulator is deterministic), records
// the ExperimentResult, and prints a paper-vs-measured table after the run.
//
// Every binary also feeds a telemetry::BenchReporter and, unless
// MOG_BENCH_NO_REPORT is set, writes a schema-versioned machine-readable
// BENCH_<name>.json into MOG_BENCH_REPORT_DIR (default: the working
// directory) on exit. CI diffs these against bench/baselines/ with the
// bench_gate binary; metrics prefixed "wall_" are wall-clock noise and are
// not gated.
//
// Workload scale is reduced by default (counters are per-warp properties and
// both timing models are linear in pixels/frames; see DESIGN.md §2) and can
// be overridden with MOG_BENCH_WIDTH / MOG_BENCH_HEIGHT / MOG_BENCH_FRAMES.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "mog/obs/flame.hpp"
#include "mog/obs/heatmap.hpp"
#include "mog/obs/sampler.hpp"
#include "mog/pipeline/experiment.hpp"
#include "mog/telemetry/bench_report.hpp"

namespace mog::bench {

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

/// Baseline experiment configuration for all benches.
inline ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.width = env_int("MOG_BENCH_WIDTH", 512);
  cfg.height = env_int("MOG_BENCH_HEIGHT", 288);
  cfg.frames = env_int("MOG_BENCH_FRAMES", 16);
  cfg.warmup_frames = 4;
  return cfg;
}

/// Ratio that scales per-frame counters to the paper's full-HD frame.
inline double fullhd_ratio(const ExperimentConfig& cfg) {
  return (1920.0 * 1080.0) / (static_cast<double>(cfg.width) * cfg.height);
}

/// The process-wide bench report, named by MOG_BENCH_MAIN.
inline telemetry::BenchReporter& reporter() {
  static telemetry::BenchReporter r;
  return r;
}

/// Write the report (honoring MOG_BENCH_REPORT_DIR / MOG_BENCH_NO_REPORT);
/// returns a process exit code.
inline int finish_bench_report() {
  if (std::getenv("MOG_BENCH_NO_REPORT") != nullptr) return 0;
  const char* dir = std::getenv("MOG_BENCH_REPORT_DIR");
  try {
    const std::string path =
        reporter().write_file(dir != nullptr ? dir : ".");
    std::printf("\nbench report: %s\n", path.c_str());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "failed to write bench report: %s\n", e.what());
    return 1;
  }
}

// --- optional profiling capture (MOG_BENCH_PROFILE) --------------------------

/// Process-wide heatmap sink for profiled bench runs. Static storage: the
/// pipeline reads the installed pointer at construction time, so the sink
/// must outlive every GpuMogPipeline the benchmarks build.
inline obs::HeatmapSink& bench_heatmap_sink() {
  static obs::HeatmapSink sink;
  return sink;
}

/// When MOG_BENCH_PROFILE is set, install the heatmap sink and start the
/// sampling profiler (MOG_BENCH_PROFILE_HZ, default 997 — prime, so the
/// sampler cannot phase-lock with any periodic work). No-op otherwise, and
/// the bench's modeled counters are bit-identical either way.
inline void begin_bench_profile() {
  if (std::getenv("MOG_BENCH_PROFILE") == nullptr) return;
  obs::set_heatmap_sink(&bench_heatmap_sink());
  const int hz = env_int("MOG_BENCH_PROFILE_HZ", 997);
  if (!obs::Sampler::global().start(hz))
    std::fprintf(stderr, "bench profile: sampler already running\n");
}

/// Stop the sampler, attach the profile to the report ("prof" block), and
/// write the sidecar artifacts next to BENCH_<name>.json:
///   PROF_<name>.collapsed        collapsed stacks (flamegraph.pl-compatible)
///   PROF_<name>.speedscope.json  load at https://www.speedscope.app
///   HEAT_<name>.json             per-block heatmap grids (mogprof --heatmap)
inline void finish_bench_profile() {
  if (std::getenv("MOG_BENCH_PROFILE") == nullptr) return;
  obs::Sampler& sampler = obs::Sampler::global();
  sampler.stop();
  const obs::FlameProfile profile = sampler.take();
  reporter().set_profile(obs::profile_report_json(profile));
  std::printf("\n%s\n", obs::render_flame_table(profile).c_str());

  if (std::getenv("MOG_BENCH_NO_REPORT") != nullptr) return;
  const char* dir_env = std::getenv("MOG_BENCH_REPORT_DIR");
  const std::string dir = dir_env != nullptr ? dir_env : ".";
  const std::string& name = reporter().name();
  try {
    std::filesystem::create_directories(dir);
    const auto write_text = [&](const std::string& path,
                                const std::string& body) {
      std::ofstream out(path);
      MOG_CHECK(out.good(), "cannot open " + path);
      out << body;
      MOG_CHECK(out.good(), "short write to " + path);
      std::printf("bench profile: %s\n", path.c_str());
    };
    write_text(dir + "/PROF_" + name + ".collapsed",
               obs::render_collapsed(profile));
    write_text(dir + "/PROF_" + name + ".speedscope.json",
               obs::render_speedscope(profile).dump(2) + "\n");
    const obs::Heatmap heat = bench_heatmap_sink().snapshot();
    if (!heat.empty())
      write_text(dir + "/HEAT_" + name + ".json",
                 obs::heatmap_to_json(heat).dump(2) + "\n");
  } catch (const Error& e) {
    std::fprintf(stderr, "failed to write bench profile: %s\n", e.what());
  }
}

/// Result registry keyed by row label, filled by benchmark bodies and
/// consumed by the end-of-run table printer.
class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }
  void put(const std::string& key, const ExperimentResult& result) {
    results_[key] = result;
    order_.push_back(key);
  }
  const ExperimentResult& get(const std::string& key) const {
    return results_.at(key);
  }
  bool has(const std::string& key) const { return results_.count(key) > 0; }
  const std::vector<std::string>& order() const { return order_; }

 private:
  std::map<std::string, ExperimentResult> results_;
  std::vector<std::string> order_;
};

/// Run one experiment inside a benchmark body, exporting headline counters
/// to the benchmark UI, stashing the full result for the table printer, and
/// adding a case (headline metrics + full per-frame counter set) to the
/// machine-readable report.
inline void run_and_record(benchmark::State& state, const std::string& key,
                           const ExperimentConfig& cfg) {
  ExperimentResult result;
  const auto wall_start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    result = run_gpu_experiment(cfg);
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  state.counters["speedup_x"] = result.speedup;
  state.counters["kernel_ms_fullhd"] =
      1e3 * result.kernel_timing.total_seconds * fullhd_ratio(cfg);
  state.counters["occupancy_pct"] = 100.0 * result.occupancy.achieved;
  state.counters["branch_eff_pct"] =
      100.0 * result.per_frame.branch_efficiency();
  state.counters["mem_eff_pct"] =
      100.0 * result.per_frame.memory_access_efficiency();
  Registry::instance().put(key, result);

  reporter().set_workload(cfg.width, cfg.height, cfg.frames);
  // Mask disagreement counts flipped pixels near decision thresholds; give
  // it a wide band so FP-contraction differences between compilers cannot
  // trip the gate.
  reporter().set_tolerance("fg_disagreement", 0.25);
  reporter()
      .add_case(key)
      .metric("speedup", result.speedup)
      .metric("modeled_gpu_seconds", result.gpu_seconds)
      .metric("modeled_cpu_seconds", result.cpu_seconds)
      .metric("gpu_seconds_fullhd450", result.gpu_seconds_fullhd450)
      .metric("kernel_ms_fullhd",
              1e3 * result.kernel_timing.total_seconds * fullhd_ratio(cfg))
      .metric("occupancy", result.occupancy.achieved)
      .metric("fg_disagreement", result.fg_disagreement)
      .metric("launches_per_frame", result.launches_per_frame)
      .metric("wall_ms", wall_ms)
      .counters(result.per_frame);
}

// --- table printing ----------------------------------------------------------

struct Row {
  std::string label;
  std::vector<double> values;
};

inline void print_table(const std::string& title,
                        const std::vector<std::string>& columns,
                        const std::vector<Row>& rows,
                        const std::string& footnote = {}) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-22s", "");
  for (const auto& c : columns) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (const auto& r : rows) {
    std::printf("%-22s", r.label.c_str());
    for (double v : r.values) std::printf("%16.2f", v);
    std::printf("\n");
  }
  if (!footnote.empty()) std::printf("%s\n", footnote.c_str());
}

/// Standard main: name the report, run benchmarks (profiled when
/// MOG_BENCH_PROFILE is set), run the bench-specific epilogue, then write
/// BENCH_<name>.json plus any PROF_/HEAT_ sidecars.
#define MOG_BENCH_MAIN(bench_name, epilogue)                       \
  int main(int argc, char** argv) {                                \
    ::mog::bench::reporter().set_name(bench_name);                 \
    ::benchmark::Initialize(&argc, argv);                          \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))      \
      return 1;                                                    \
    ::mog::bench::begin_bench_profile();                           \
    ::benchmark::RunSpecifiedBenchmarks();                         \
    ::benchmark::Shutdown();                                       \
    epilogue();                                                    \
    ::mog::bench::finish_bench_profile();                          \
    return ::mog::bench::finish_bench_report();                    \
  }

}  // namespace mog::bench
