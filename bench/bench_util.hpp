// Shared infrastructure for the figure/table reproduction benches.
//
// Each bench binary registers one google-benchmark case per experimental
// configuration (Iterations(1) — the simulator is deterministic), records
// the ExperimentResult, and prints a paper-vs-measured table after the run.
//
// Workload scale is reduced by default (counters are per-warp properties and
// both timing models are linear in pixels/frames; see DESIGN.md §2) and can
// be overridden with MOG_BENCH_WIDTH / MOG_BENCH_HEIGHT / MOG_BENCH_FRAMES.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "mog/pipeline/experiment.hpp"

namespace mog::bench {

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

/// Baseline experiment configuration for all benches.
inline ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.width = env_int("MOG_BENCH_WIDTH", 512);
  cfg.height = env_int("MOG_BENCH_HEIGHT", 288);
  cfg.frames = env_int("MOG_BENCH_FRAMES", 16);
  cfg.warmup_frames = 4;
  return cfg;
}

/// Ratio that scales per-frame counters to the paper's full-HD frame.
inline double fullhd_ratio(const ExperimentConfig& cfg) {
  return (1920.0 * 1080.0) / (static_cast<double>(cfg.width) * cfg.height);
}

/// Result registry keyed by row label, filled by benchmark bodies and
/// consumed by the end-of-run table printer.
class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }
  void put(const std::string& key, const ExperimentResult& result) {
    results_[key] = result;
    order_.push_back(key);
  }
  const ExperimentResult& get(const std::string& key) const {
    return results_.at(key);
  }
  bool has(const std::string& key) const { return results_.count(key) > 0; }
  const std::vector<std::string>& order() const { return order_; }

 private:
  std::map<std::string, ExperimentResult> results_;
  std::vector<std::string> order_;
};

/// Run one experiment inside a benchmark body, exporting headline counters
/// to the benchmark UI and stashing the full result for the table printer.
inline void run_and_record(benchmark::State& state, const std::string& key,
                           const ExperimentConfig& cfg) {
  ExperimentResult result;
  for (auto _ : state) {
    result = run_gpu_experiment(cfg);
  }
  state.counters["speedup_x"] = result.speedup;
  state.counters["kernel_ms_fullhd"] =
      1e3 * result.kernel_timing.total_seconds * fullhd_ratio(cfg);
  state.counters["occupancy_pct"] = 100.0 * result.occupancy.achieved;
  state.counters["branch_eff_pct"] =
      100.0 * result.per_frame.branch_efficiency();
  state.counters["mem_eff_pct"] =
      100.0 * result.per_frame.memory_access_efficiency();
  Registry::instance().put(key, result);
}

// --- table printing ----------------------------------------------------------

struct Row {
  std::string label;
  std::vector<double> values;
};

inline void print_table(const std::string& title,
                        const std::vector<std::string>& columns,
                        const std::vector<Row>& rows,
                        const std::string& footnote = {}) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-22s", "");
  for (const auto& c : columns) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (const auto& r : rows) {
    std::printf("%-22s", r.label.c_str());
    for (double v : r.values) std::printf("%16.2f", v);
    std::printf("\n");
  }
  if (!footnote.empty()) std::printf("%s\n", footnote.c_str());
}

/// Standard main: run benchmarks, then the bench-specific epilogue.
#define MOG_BENCH_MAIN(epilogue)                                   \
  int main(int argc, char** argv) {                                \
    ::benchmark::Initialize(&argc, argv);                          \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))      \
      return 1;                                                    \
    ::benchmark::RunSpecifiedBenchmarks();                         \
    ::benchmark::Shutdown();                                       \
    epilogue();                                                    \
    return 0;                                                      \
  }

}  // namespace mog::bench
