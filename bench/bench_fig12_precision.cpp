// Fig. 12 — double vs single precision across the optimization ladder.
// Paper anchors: the float implementation reaches 105x at level F (vs 97x
// for double); float memory access efficiency climbs 62% (C) -> 88% (F) and
// branch efficiency 95% -> 99%; the register file stops being the
// occupancy limiter in float. Speedups are measured against the matching
// CPU baseline (227.3 s double / 180 s float, §V-C).
#include "bench_util.hpp"

#include "mog/kernels/opt_level.hpp"

namespace mog::bench {
namespace {

std::string key(kernels::OptLevel level, Precision p) {
  return std::string(kernels::to_string(level)) +
         (p == Precision::kDouble ? "/f64" : "/f32");
}

void precision(benchmark::State& state) {
  const auto level = static_cast<kernels::OptLevel>(state.range(0));
  const auto prec =
      state.range(1) == 0 ? Precision::kDouble : Precision::kFloat;
  ExperimentConfig cfg = base_config();
  cfg.level = level;
  cfg.precision = prec;
  run_and_record(state, key(level, prec), cfg);
}
BENCHMARK(precision)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 5, 1), {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void epilogue() {
  const double paper64[6] = {13, 41, 57, 85, 86, 97};
  const double paper32[6] = {0, 0, 0, 0, 0, 105};
  std::vector<Row> rows;
  int i = 0;
  for (const auto level : kernels::kAllLevels) {
    const auto& r64 = Registry::instance().get(key(level, Precision::kDouble));
    const auto& r32 = Registry::instance().get(key(level, Precision::kFloat));
    rows.push_back(
        Row{std::string("level ") + kernels::to_string(level),
            {r64.speedup, paper64[i], r32.speedup, paper32[i],
             100.0 * r32.per_frame.branch_efficiency(),
             100.0 * r32.per_frame.memory_access_efficiency(),
             100.0 * r32.occupancy.achieved,
             static_cast<double>(r32.per_frame.regs_per_thread)}});
    ++i;
  }
  print_table("Fig. 12 — double vs float (3 Gaussians)",
              {"spd_f64", "paper_f64", "spd_f32", "paper_f32", "f32_br%",
               "f32_mem%", "f32_occup%", "f32_regs"},
              rows,
              "float speedups are vs the paper's float CPU baseline "
              "(180 s / 450 full-HD frames).");
}

}  // namespace
}  // namespace mog::bench

MOG_BENCH_MAIN("fig12_precision", mog::bench::epilogue)
