// Diagnostic probe: run every optimization level and print the full counter
// set side by side with the paper's reported values. This is the tool used
// to calibrate gpusim/timing_constants.hpp (DESIGN.md §5) and a useful
// one-stop sanity check when modifying the simulator.
#include <cstdio>
#include <cstdlib>

#include "mog/common/strutil.hpp"
#include "mog/pipeline/experiment.hpp"
#include "mog/telemetry/bench_report.hpp"

using namespace mog;

namespace {

telemetry::BenchReporter& reporter() {
  static telemetry::BenchReporter r;
  return r;
}

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  const char* w = std::getenv("MOG_PROBE_WIDTH");
  const char* h = std::getenv("MOG_PROBE_HEIGHT");
  const char* f = std::getenv("MOG_PROBE_FRAMES");
  cfg.width = w ? std::atoi(w) : 512;
  cfg.height = h ? std::atoi(h) : 288;
  cfg.frames = f ? std::atoi(f) : 16;
  cfg.warmup_frames = 4;
  return cfg;
}

void print_result(const std::string& section, const ExperimentResult& r) {
  const auto& s = r.per_frame;
  // Per-frame counters scaled to full-HD for comparability with the paper.
  const double ratio =
      (1920.0 * 1080.0) / (static_cast<double>(r.config.width) *
                           static_cast<double>(r.config.height));
  const double warps = static_cast<double>(s.num_warps);
  std::printf(
      "%-18s speedup %6.1fx  kern(hd) %6.2f ms [cmp %5.2f sh %5.2f bw %5.2f "
      "lat %5.2f/%4.2f] regs %2d occ %4.1f%% br_eff %5.1f%% mem_eff %5.1f%% "
      "ld/st_tr(hd) %5.2f/%5.2fM br(hd) %5.2fM pg(hd) %5.0fk iss/warp %4.0f\n",
      r.config.label().c_str(), r.speedup,
      1e3 * r.kernel_timing.total_seconds * ratio,
      1e3 * r.kernel_timing.compute_seconds * ratio,
      1e3 * r.kernel_timing.shared_seconds * ratio,
      1e3 * r.kernel_timing.bandwidth_floor_seconds * ratio,
      1e3 * r.kernel_timing.latency_seconds * ratio,
      1e3 * r.kernel_timing.exposed_latency_seconds * ratio,
      s.regs_per_thread, 100.0 * r.occupancy.achieved,
      100.0 * s.branch_efficiency(), 100.0 * s.memory_access_efficiency(),
      static_cast<double>(s.load_transactions) * ratio / 1e6,
      static_cast<double>(s.store_transactions) * ratio / 1e6,
      static_cast<double>(s.branches_executed) * ratio / 1e6,
      static_cast<double>(s.dram_page_switches) * ratio / 1e3,
      warps > 0 ? static_cast<double>(s.issue_cycles) / warps : 0.0);

  reporter().set_workload(r.config.width, r.config.height, r.config.frames);
  reporter()
      .add_case(section + "/" + r.config.label())
      .metric("speedup", r.speedup)
      .metric("kernel_ms_fullhd", 1e3 * r.kernel_timing.total_seconds * ratio)
      .metric("occupancy", r.occupancy.achieved)
      .metric("branch_efficiency", s.branch_efficiency())
      .metric("memory_access_efficiency", s.memory_access_efficiency())
      .counters(s);
}

}  // namespace

int main() {
  reporter().set_name("probe");

  std::printf("== optimization ladder (K=3, double) — paper: 13/41/57/85/86/97x ==\n");
  for (kernels::OptLevel level : kernels::kAllLevels) {
    ExperimentConfig cfg = base_config();
    cfg.level = level;
    print_result("ladder", run_gpu_experiment(cfg));
  }

  std::printf("\n== tiled sweep (double) — paper: peak 101x @ g=8; occ 40->38%%; mem_eff >90 -> <60%% ==\n");
  for (int g : {1, 2, 4, 8, 16, 32}) {
    ExperimentConfig cfg = base_config();
    cfg.level = kernels::OptLevel::kF;
    cfg.tiled = true;
    cfg.tiled_config.frame_group = g;
    cfg.frames = std::max(cfg.frames, 2 * g);
    print_result("tiled", run_gpu_experiment(cfg));
  }

  std::printf("\n== float (paper: F 105x) and 5-Gaussian (paper: C 44x, F 92x) ==\n");
  for (kernels::OptLevel level :
       {kernels::OptLevel::kC, kernels::OptLevel::kF}) {
    ExperimentConfig cfg = base_config();
    cfg.level = level;
    cfg.precision = Precision::kFloat;
    print_result("float", run_gpu_experiment(cfg));
  }
  for (kernels::OptLevel level :
       {kernels::OptLevel::kC, kernels::OptLevel::kF}) {
    ExperimentConfig cfg = base_config();
    cfg.level = level;
    cfg.params.num_components = 5;
    print_result("k5", run_gpu_experiment(cfg));
  }

  if (std::getenv("MOG_BENCH_NO_REPORT") == nullptr) {
    const char* dir = std::getenv("MOG_BENCH_REPORT_DIR");
    const std::string path = reporter().write_file(dir != nullptr ? dir : ".");
    std::printf("\nbench report: %s\n", path.c_str());
  }
  return 0;
}
