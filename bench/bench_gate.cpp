// CI perf-regression gate over BENCH_*.json reports.
//
// Usage:
//   bench_gate <baseline.json> <fresh.json>   [options]
//   bench_gate <baseline_dir>  <fresh_dir>    [options]
//
// Directory mode pairs every BENCH_*.json in the baseline directory with the
// same-named file in the fresh directory (a missing fresh file fails the
// gate; extra fresh reports are ignored so new benches can land before their
// baselines). Exit code 0 = all metrics within tolerance, 1 = regression or
// usage error.
//
// Options:
//   --rel-tol X      default relative tolerance band (default 0.02)
//   --include-wall   also gate metrics prefixed "wall_" (off by default)
//   --warn-wall X    non-fatal tripwire: print a warning (and a "warn_wall"
//                    verdict in the --json diff) for any "wall_*" metric
//                    whose fresh value exceeds baseline * X; never fails the
//                    gate — wall clocks are machine-dependent noise, but a
//                    gross slowdown should still be visible in CI logs
//   --json PATH      also write a machine-readable diff (per-metric
//                    baseline/fresh/rel-delta/verdict rows) for CI artifacts
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "mog/common/error.hpp"
#include "mog/telemetry/gate.hpp"
#include "mog/telemetry/json.hpp"

namespace fs = std::filesystem;
using mog::telemetry::GateOptions;
using mog::telemetry::GateResult;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline file|dir> <fresh file|dir> "
               "[--rel-tol X] [--include-wall] [--warn-wall X] [--json PATH]\n",
               argv0);
  return 1;
}

/// Gate one baseline file against one fresh file; prints the verdict table
/// and appends a machine-readable entry to `json_reports`.
bool gate_pair(const fs::path& baseline, const fs::path& fresh,
               const GateOptions& options,
               std::vector<mog::telemetry::Json>& json_reports) {
  const std::string label = baseline.filename().string();
  if (!fs::exists(fresh)) {
    std::printf("FAIL %s: fresh report %s missing\n", label.c_str(),
                fresh.string().c_str());
    mog::telemetry::Json entry = mog::telemetry::Json::object();
    entry.set("label", label);
    entry.set("ok", false);
    entry.set("error", "fresh report missing: " + fresh.string());
    json_reports.push_back(std::move(entry));
    return false;
  }
  const GateResult result = mog::telemetry::gate_reports(
      mog::telemetry::read_json_file(baseline.string()),
      mog::telemetry::read_json_file(fresh.string()), options);
  std::printf("%s\n",
              mog::telemetry::format_gate_result(label, result).c_str());
  json_reports.push_back(mog::telemetry::gate_result_to_json(label, result));
  return result.ok();
}

/// Writes the accumulated per-pair diffs as one JSON document for CI upload.
void write_json_artifact(const std::string& path, bool ok,
                         std::vector<mog::telemetry::Json> reports) {
  mog::telemetry::Json doc = mog::telemetry::Json::object();
  doc.set("schema", std::string("mog-bench-gate/1"));
  doc.set("ok", ok);
  mog::telemetry::Json array = mog::telemetry::Json::array();
  for (mog::telemetry::Json& report : reports)
    array.push_back(std::move(report));
  doc.set("reports", std::move(array));
  mog::telemetry::write_json_file(path, doc);
  std::printf("bench_gate: wrote JSON diff to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::string json_path;
  GateOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--include-wall") == 0) {
      options.include_wall = true;
    } else if (std::strcmp(argv[i], "--rel-tol") == 0) {
      if (++i == argc) return usage(argv[0]);
      options.default_rel_tol = std::atof(argv[i]);
    } else if (std::strcmp(argv[i], "--warn-wall") == 0) {
      if (++i == argc) return usage(argv[0]);
      options.warn_wall_factor = std::atof(argv[i]);
      if (!(options.warn_wall_factor > 0)) {
        std::fprintf(stderr, "--warn-wall factor must be > 0\n");
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--json") == 0) {
      if (++i == argc) return usage(argv[0]);
      json_path = argv[i];
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (positional.size() != 2) return usage(argv[0]);

  const fs::path baseline{positional[0]};
  const fs::path fresh{positional[1]};

  try {
    std::vector<mog::telemetry::Json> json_reports;
    if (!fs::is_directory(baseline)) {
      const bool ok = gate_pair(baseline, fresh, options, json_reports);
      if (!json_path.empty())
        write_json_artifact(json_path, ok, std::move(json_reports));
      return ok ? 0 : 1;
    }

    // Directory mode: every checked-in baseline must have a fresh twin.
    std::vector<fs::path> baselines;
    for (const auto& entry : fs::directory_iterator(baseline)) {
      const std::string name = entry.path().filename().string();
      if (entry.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
          entry.path().extension() == ".json")
        baselines.push_back(entry.path());
    }
    std::sort(baselines.begin(), baselines.end());
    if (baselines.empty()) {
      std::fprintf(stderr, "no BENCH_*.json baselines in %s\n",
                   baseline.string().c_str());
      return 1;
    }
    bool ok = true;
    for (const fs::path& b : baselines)
      ok = gate_pair(b, fresh / b.filename(), options, json_reports) && ok;
    std::printf("\nbench_gate: %s (%zu report%s)\n", ok ? "PASS" : "FAIL",
                baselines.size(), baselines.size() == 1 ? "" : "s");
    if (!json_path.empty())
      write_json_artifact(json_path, ok, std::move(json_reports));
    return ok ? 0 : 1;
  } catch (const mog::Error& e) {
    std::fprintf(stderr, "bench_gate: %s\n", e.what());
    return 1;
  }
}
