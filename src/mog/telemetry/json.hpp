// Minimal JSON value type: enough to write Chrome traces and BENCH_*.json
// reports and to parse them back (bench_gate, schema round-trip tests).
//
// Objects preserve insertion order so emitted files diff cleanly; numbers
// print as integers when they are integral (counters) and with round-trip
// precision otherwise. parse() accepts standard JSON and throws mog::Error
// with a byte offset on malformed input.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "mog/common/error.hpp"

namespace mog::telemetry {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int v) : value_(static_cast<double>(v)) {}
  Json(std::int64_t v) : value_(static_cast<double>(v)) {}
  Json(std::uint64_t v) : value_(static_cast<double>(v)) {}
  Json(const char* s) : value_(std::string{s}) {}
  Json(std::string s) : value_(std::move(s)) {}

  static Json array() { return Json{Array{}}; }
  static Json object() { return Json{Object{}}; }

  Type type() const { return static_cast<Type>(value_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  bool as_bool() const { return get<bool>("bool"); }
  double as_number() const { return get<double>("number"); }
  const std::string& as_string() const { return get<std::string>("string"); }
  const Array& as_array() const { return get<Array>("array"); }
  Array& as_array() { return mut<Array>("array"); }
  const Object& as_object() const { return get<Object>("object"); }
  Object& as_object() { return mut<Object>("object"); }

  /// Object lookup; nullptr when missing (or not an object).
  const Json* find(std::string_view key) const;

  /// Object insert-or-assign (keeps first-insertion order).
  Json& set(std::string key, Json value);

  void push_back(Json value) { mut<Array>("array").push_back(std::move(value)); }

  bool operator==(const Json& other) const { return value_ == other.value_; }

  /// Serialize; indent < 0 means compact single-line output.
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document (trailing garbage is an error).
  static Json parse(std::string_view text);

 private:
  using Value =
      std::variant<std::nullptr_t, bool, double, std::string, Array, Object>;
  explicit Json(Value v) : value_(std::move(v)) {}

  template <typename T>
  const T& get(const char* what) const {
    const T* p = std::get_if<T>(&value_);
    MOG_CHECK(p != nullptr, std::string("JSON value is not a ") + what);
    return *p;
  }
  template <typename T>
  T& mut(const char* what) {
    T* p = std::get_if<T>(&value_);
    MOG_CHECK(p != nullptr, std::string("JSON value is not a ") + what);
    return *p;
  }

  void dump_to(std::string& out, int indent, int depth) const;

  Value value_;
};

/// Read a whole file into a parsed Json (throws mog::Error on I/O failure).
Json read_json_file(const std::string& path);

/// Write `value` to `path` with 2-space indentation and a trailing newline.
void write_json_file(const std::string& path, const Json& value);

}  // namespace mog::telemetry
