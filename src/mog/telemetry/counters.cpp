#include "mog/telemetry/counters.hpp"

#include <algorithm>
#include <cmath>

#include "mog/common/strutil.hpp"

namespace mog::telemetry {

double percentile(std::vector<double> samples, double p) {
  MOG_CHECK(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  // An empty series is an ordinary state for a live /metrics scrape (a
  // stream that has not completed a frame yet), not a caller bug: report 0
  // rather than aborting the exposition.
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

Rollup make_rollup(const std::vector<double>& samples) {
  Rollup r;
  r.count = samples.size();
  if (samples.empty()) return r;
  r.min = samples[0];
  r.max = samples[0];
  for (const double v : samples) {
    r.total += v;
    r.min = std::min(r.min, v);
    r.max = std::max(r.max, v);
  }
  r.mean = r.total / static_cast<double>(r.count);
  r.p50 = percentile(samples, 50.0);
  r.p90 = percentile(samples, 90.0);
  r.p99 = percentile(samples, 99.0);
  return r;
}

void CounterRegistry::on_kernel_launch(const gpusim::KernelStats& stats) {
  if (names_.empty()) {
    gpusim::visit_metrics(stats, [this](const char* name, double, bool ext) {
      names_.emplace_back(name);
      extensive_.push_back(ext);
      samples_.emplace_back();
    });
  }
  std::size_t i = 0;
  gpusim::visit_metrics(stats, [this, &i](const char*, double value, bool) {
    samples_[i++].push_back(value);
  });
  ++launches_;
}

void CounterRegistry::record(const std::string& metric, double value,
                             bool extensive) {
  MOG_CHECK(index_of(metric) < 0,
            "custom series shadows a kernel metric: " + metric);
  int i = custom_index_of(metric);
  if (i < 0) {
    i = static_cast<int>(custom_names_.size());
    custom_names_.push_back(metric);
    custom_extensive_.push_back(extensive);
    custom_samples_.emplace_back();
  }
  custom_samples_[static_cast<std::size_t>(i)].push_back(value);
}

int CounterRegistry::index_of(const std::string& metric) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == metric) return static_cast<int>(i);
  return -1;
}

int CounterRegistry::custom_index_of(const std::string& metric) const {
  for (std::size_t i = 0; i < custom_names_.size(); ++i)
    if (custom_names_[i] == metric) return static_cast<int>(i);
  return -1;
}

const std::vector<double>& CounterRegistry::samples(
    const std::string& metric) const {
  static const std::vector<double> kEmpty;
  const int i = index_of(metric);
  if (i >= 0) return samples_[static_cast<std::size_t>(i)];
  const int c = custom_index_of(metric);
  return c < 0 ? kEmpty : custom_samples_[static_cast<std::size_t>(c)];
}

double CounterRegistry::per_run(const std::string& metric) const {
  const int i = index_of(metric);
  if (i >= 0) {
    const Rollup r = make_rollup(samples_[static_cast<std::size_t>(i)]);
    return extensive_[static_cast<std::size_t>(i)] ? r.total : r.mean;
  }
  const int c = custom_index_of(metric);
  MOG_CHECK(c >= 0, "unknown telemetry metric: " + metric);
  const Rollup r = make_rollup(custom_samples_[static_cast<std::size_t>(c)]);
  return custom_extensive_[static_cast<std::size_t>(c)] ? r.total : r.mean;
}

double CounterRegistry::per_frame(const std::string& metric,
                                  std::uint64_t frames) const {
  const int i = index_of(metric);
  const int c = i < 0 ? custom_index_of(metric) : -1;
  MOG_CHECK(i >= 0 || c >= 0, "unknown telemetry metric: " + metric);
  const bool extensive =
      i >= 0 ? extensive_[static_cast<std::size_t>(i)]
             : custom_extensive_[static_cast<std::size_t>(c)];
  if (!extensive) return per_run(metric);
  MOG_CHECK(frames > 0, "per-frame rollup needs a positive frame count");
  return per_run(metric) / static_cast<double>(frames);
}

void CounterRegistry::clear() {
  launches_ = 0;
  names_.clear();
  extensive_.clear();
  samples_.clear();
  custom_names_.clear();
  custom_extensive_.clear();
  custom_samples_.clear();
}

Json CounterRegistry::to_json() const {
  const auto metric_json = [](const Rollup& r, bool extensive) {
    Json m = Json::object();
    m.set("extensive", extensive);
    m.set("count", static_cast<double>(r.count));
    m.set("total", r.total);
    m.set("mean", r.mean);
    m.set("min", r.min);
    m.set("max", r.max);
    m.set("p50", r.p50);
    m.set("p90", r.p90);
    m.set("p99", r.p99);
    return m;
  };
  Json root = Json::object();
  root.set("launches", static_cast<double>(launches_));
  Json metrics = Json::object();
  for (std::size_t i = 0; i < names_.size(); ++i)
    metrics.set(names_[i], metric_json(make_rollup(samples_[i]),
                                       extensive_[i]));
  for (std::size_t i = 0; i < custom_names_.size(); ++i)
    metrics.set(custom_names_[i], metric_json(make_rollup(custom_samples_[i]),
                                              custom_extensive_[i]));
  root.set("metrics", std::move(metrics));
  return root;
}

std::string CounterRegistry::summary(std::uint64_t frames) const {
  if (launches_ == 0) return "no kernel launches recorded";
  std::string out = strprintf("%zu kernel launches", launches_);
  if (frames > 0)
    out += strprintf(" over %llu frames",
                     static_cast<unsigned long long>(frames));
  const auto line = [&](const char* metric, const char* label, double scale) {
    const Rollup r = rollup(metric);
    if (r.count == 0) return;
    out += strprintf("\n  %-24s mean %10.3f  p50 %10.3f  p99 %10.3f", label,
                     r.mean * scale, r.p50 * scale, r.p99 * scale);
  };
  line("load_transactions", "load txns/launch (M)", 1e-6);
  line("store_transactions", "store txns/launch (M)", 1e-6);
  line("divergence_ratio", "divergence ratio (%)", 100.0);
  line("memory_access_efficiency", "mem access eff (%)", 100.0);
  line("shared_replay_cycles", "shared replays/launch", 1.0);
  line("issue_cycles", "issue cycles/launch (M)", 1e-6);
  return out;
}

}  // namespace mog::telemetry
