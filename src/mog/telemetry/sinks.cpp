#include "mog/telemetry/telemetry.hpp"

namespace mog::telemetry {

namespace {
TraceRecorder* g_tracer = nullptr;
CounterRegistry* g_counters = nullptr;
}  // namespace

TraceRecorder* tracer() { return g_tracer; }
void set_tracer(TraceRecorder* recorder) { g_tracer = recorder; }

CounterRegistry* counters() { return g_counters; }
void set_counters(CounterRegistry* registry) { g_counters = registry; }

}  // namespace mog::telemetry
