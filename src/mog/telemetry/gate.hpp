// Perf-regression gating over BENCH_*.json reports.
//
// gate_reports() diffs a freshly generated report against a checked-in
// baseline, metric by metric, with relative tolerance bands. The band is
// symmetric — the simulator is deterministic, so *any* unexplained movement
// (faster or slower, fewer or more transactions) means the model changed
// and the baseline must be consciously regenerated, not silently absorbed.
//
// Tolerance resolution, most specific wins:
//   1. the baseline report's "tolerances" object ({metric: rel_tol}),
//   2. GateOptions::default_rel_tol.
// Metrics prefixed "wall_" are wall-clock noise and are skipped unless
// GateOptions::include_wall. Cases or metrics present in the baseline but
// missing from the fresh report fail the gate; extra metrics in the fresh
// report are ignored (forward compatibility while baselines lag).
#pragma once

#include <string>
#include <vector>

#include "mog/telemetry/json.hpp"

namespace mog::telemetry {

struct GateOptions {
  double default_rel_tol = 0.02;  ///< 2% band when the baseline has no override
  /// Absolute slack: |fresh - baseline| below this always passes (guards
  /// metrics whose baseline value is 0, where a relative band is undefined).
  double abs_tol = 1e-12;
  bool include_wall = false;  ///< also gate "wall_*" metrics
  /// Non-fatal wall-clock tripwire: when > 0 (and include_wall is off), a
  /// "wall_*" metric whose fresh value exceeds baseline × factor records a
  /// warning instead of a failure — visibility into gross slowdowns without
  /// making CI flake on machine noise. 0 disables.
  double warn_wall_factor = 0;
};

struct GateFinding {
  enum class Kind {
    kRegression,     ///< metric moved outside its tolerance band
    kMissingCase,    ///< baseline case absent from the fresh report
    kMissingMetric,  ///< baseline metric absent from the fresh case
    kSchemaMismatch, ///< schema_version differs or structure malformed
    kWallSlowdown,   ///< wall_* metric past the warn factor (warning only)
  };
  Kind kind = Kind::kRegression;
  std::string case_name;
  std::string metric;
  double baseline = 0;
  double fresh = 0;
  double rel_delta = 0;  ///< |fresh - baseline| / |baseline|
  double tolerance = 0;

  std::string describe() const;
};

/// One baseline-vs-fresh metric comparison, recorded pass or fail — the
/// machine-readable row behind bench_gate --json.
struct GateComparison {
  std::string case_name;
  std::string metric;
  double baseline = 0;
  double fresh = 0;
  double rel_delta = 0;
  double tolerance = 0;
  const char* verdict = "pass";  ///< "pass", "fail", "skipped_wall",
                                 ///< "warn_wall", "missing"
};

struct GateResult {
  int cases_compared = 0;
  int metrics_compared = 0;
  int metrics_skipped = 0;  ///< wall_* metrics not gated
  std::vector<GateFinding> failures;
  /// Non-fatal findings (kWallSlowdown); never affect ok().
  std::vector<GateFinding> warnings;
  /// Every metric row visited, verdicts included — not just the failures.
  std::vector<GateComparison> comparisons;

  bool ok() const { return failures.empty(); }
};

/// Compare one fresh report against one baseline report.
GateResult gate_reports(const Json& baseline, const Json& fresh,
                        const GateOptions& options = {});

/// Human-readable verdict table for one comparison.
std::string format_gate_result(const std::string& label,
                               const GateResult& result);

/// Machine-readable diff ({label, ok, counts, comparisons[], failures[]})
/// for CI artifacts.
Json gate_result_to_json(const std::string& label, const GateResult& result);

}  // namespace mog::telemetry
