#include "mog/telemetry/bench_report.hpp"

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <thread>

#include "mog/common/strutil.hpp"
#include "mog/gpusim/device_spec.hpp"

namespace mog::telemetry {

namespace {

std::string compiler_id() {
#if defined(__clang__)
  return strprintf("clang %d.%d.%d", __clang_major__, __clang_minor__,
                   __clang_patchlevel__);
#elif defined(__GNUC__)
  return strprintf("gcc %d.%d.%d", __GNUC__, __GNUC_MINOR__,
                   __GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string build_type() {
#if defined(NDEBUG)
  return "release";
#else
  return "debug";
#endif
}

/// Compile-flag summary assembled from predefined macros — honest about
/// what we can know from inside the binary (optimization level and the ISA
/// features the compiler was allowed to use), which is what matters when
/// comparing wall_/prof_ numbers across machines.
std::string compile_flags() {
  std::string flags;
#if defined(__OPTIMIZE__)
  flags += "optimized";
#else
  flags += "unoptimized";
#endif
#if defined(NDEBUG)
  flags += " ndebug";
#endif
#if defined(__AVX512F__)
  flags += " avx512f";
#elif defined(__AVX2__)
  flags += " avx2";
#elif defined(__AVX__)
  flags += " avx";
#elif defined(__SSE4_2__)
  flags += " sse4.2";
#elif defined(__SSE2__) || defined(__x86_64__)
  flags += " sse2";
#endif
#if defined(__FMA__)
  flags += " fma";
#endif
#if defined(__aarch64__)
  flags += " neon";
#endif
#if defined(__SANITIZE_ADDRESS__)
  flags += " asan";
#endif
#if defined(__SANITIZE_THREAD__)
  flags += " tsan";
#endif
  return flags;
}

std::string utc_timestamp() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&now, &tm);
  return strprintf("%04d-%02d-%02dT%02d:%02d:%02dZ", tm.tm_year + 1900,
                   tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min,
                   tm.tm_sec);
}

}  // namespace

BenchReporter::Case& BenchReporter::Case::counters(
    const gpusim::KernelStats& per_frame) {
  gpusim::visit_metrics(per_frame,
                        [this](const char* name, double value, bool) {
                          metrics_.emplace_back(std::string("ctr_") + name,
                                                value);
                        });
  return *this;
}

BenchReporter::Case& BenchReporter::add_case(const std::string& name) {
  for (Case& c : cases_)
    if (c.name() == name) return c;
  cases_.emplace_back(name);
  return cases_.back();
}

Json BenchReporter::to_json() const {
  Json root = Json::object();
  root.set("schema_version", kSchemaVersion);
  root.set("bench", name_);

  Json host = Json::object();
  host.set("compiler", compiler_id());
  host.set("build_type", build_type());
  host.set("timestamp_utc", utc_timestamp());
  // Wall-clock metrics scale with the block executor's host parallelism;
  // recording the thread count lets a report reader attribute wall_* drift
  // to the environment instead of the simulator.
  host.set("executor_threads",
           executor_threads_ > 0
               ? executor_threads_
               : gpusim::resolved_executor_threads(0));
  root.set("host", std::move(host));

  // Environment block: everything needed to judge whether two reports'
  // wall_/prof_ numbers are comparable across machines. Informational only
  // — bench_gate walks the baseline's cases/metrics, so this never gates.
  Json env = Json::object();
  env.set("compiler", compiler_id());
  env.set("flags", compile_flags());
  env.set("hw_threads",
          static_cast<int>(std::thread::hardware_concurrency()));
  const char* executor_env = std::getenv("MOG_EXECUTOR_THREADS");
  env.set("mog_executor_threads", executor_env != nullptr ? executor_env : "");
  env.set("executor_threads",
          executor_threads_ > 0 ? executor_threads_
                                : gpusim::resolved_executor_threads(0));
  root.set("env", std::move(env));

  Json workload = Json::object();
  workload.set("width", width_);
  workload.set("height", height_);
  workload.set("frames", frames_);
  root.set("workload", std::move(workload));

  if (!tolerances_.empty()) {
    Json tol = Json::object();
    for (const auto& [k, v] : tolerances_) tol.set(k, v);
    root.set("tolerances", std::move(tol));
  }

  Json cases = Json::array();
  for (const Case& c : cases_) {
    Json jc = Json::object();
    jc.set("name", c.name());
    Json metrics = Json::object();
    for (const auto& [k, v] : c.metrics()) metrics.set(k, v);
    jc.set("metrics", std::move(metrics));
    cases.push_back(std::move(jc));
  }
  root.set("cases", std::move(cases));
  if (!profile_.is_null()) root.set("prof", profile_);
  return root;
}

std::string BenchReporter::write_file(const std::string& dir) const {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  write_json_file(path, to_json());
  return path;
}

}  // namespace mog::telemetry
