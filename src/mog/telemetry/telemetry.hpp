// Process-wide telemetry sinks.
//
// The pipeline layers are instrumented unconditionally but emit nothing
// until a recorder/registry is installed here — a null sink costs one
// pointer load per site, which keeps the tracing layer out of the hot path
// for ordinary runs. Ownership stays with the installer (typically an
// example binary or a test); install nullptr before the sink dies.
//
//   mog::telemetry::TraceRecorder rec;
//   mog::telemetry::CounterRegistry reg;
//   mog::telemetry::set_tracer(&rec);
//   mog::telemetry::set_counters(&reg);
//   ... run pipelines ...
//   rec.write("trace.json");            // load in chrome://tracing
//   std::puts(reg.summary().c_str());
//   mog::telemetry::set_tracer(nullptr);
//   mog::telemetry::set_counters(nullptr);
#pragma once

#include <utility>
#include <vector>

#include "mog/telemetry/counters.hpp"
#include "mog/telemetry/trace.hpp"

namespace mog::telemetry {

TraceRecorder* tracer();
void set_tracer(TraceRecorder* recorder);

CounterRegistry* counters();
void set_counters(CounterRegistry* registry);

/// Emit an instant event on the installed tracer; no-op when none is set.
inline void emit_instant(const char* name, const char* cat,
                         std::vector<std::pair<std::string, double>> args = {}) {
  if (TraceRecorder* tr = tracer()) tr->instant(name, cat, std::move(args));
}

/// Wall-clock span on the installed tracer; inert when none is set.
inline TraceRecorder::Span maybe_span(std::string name,
                                      std::string cat = "sim") {
  return TraceRecorder::Span{tracer(), std::move(name), std::move(cat)};
}

}  // namespace mog::telemetry
