#include "mog/telemetry/trace.hpp"

namespace mog::telemetry {

namespace {

const char* track_name(int tid) {
  switch (tid) {
    case TraceRecorder::kWallTrack: return "wall clock";
    case TraceRecorder::kModeledTrack: return "modeled GPU timeline";
    case TraceRecorder::kModeledOverlapTrack: return "modeled overlap windows";
    default: return "track";
  }
}

}  // namespace

Json TraceRecorder::to_json() const {
  Json trace = Json::object();
  Json arr = Json::array();

  // Thread-name metadata events so the tracks are labeled in the viewer.
  for (const int tid :
       {kWallTrack, kModeledTrack, kModeledOverlapTrack}) {
    Json meta = Json::object();
    meta.set("name", "thread_name");
    meta.set("ph", "M");
    meta.set("pid", 1);
    meta.set("tid", tid);
    Json args = Json::object();
    args.set("name", track_name(tid));
    meta.set("args", std::move(args));
    arr.push_back(std::move(meta));
  }

  for (const TraceEvent& ev : events_) {
    Json e = Json::object();
    e.set("name", ev.name);
    e.set("cat", ev.cat);
    e.set("ph", std::string(1, ev.phase));
    e.set("ts", static_cast<double>(ev.ts_us));
    if (ev.phase == 'X') e.set("dur", static_cast<double>(ev.dur_us));
    if (ev.phase == 'i') e.set("s", "t");  // instant scope: thread
    e.set("pid", 1);
    e.set("tid", ev.tid);
    if (!ev.args.empty()) {
      Json args = Json::object();
      for (const auto& [k, v] : ev.args) args.set(k, v);
      e.set("args", std::move(args));
    }
    arr.push_back(std::move(e));
  }

  trace.set("traceEvents", std::move(arr));
  trace.set("displayTimeUnit", "ms");
  Json other = Json::object();
  other.set("recorded_events", static_cast<double>(events_.size()));
  other.set("dropped_events", static_cast<double>(dropped_));
  trace.set("otherData", std::move(other));
  return trace;
}

}  // namespace mog::telemetry
