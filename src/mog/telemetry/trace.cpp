#include "mog/telemetry/trace.hpp"

namespace mog::telemetry {

namespace {

const char* track_name(int tid) {
  switch (tid) {
    case TraceRecorder::kWallTrack: return "wall clock";
    case TraceRecorder::kModeledTrack: return "modeled GPU timeline";
    case TraceRecorder::kModeledOverlapTrack: return "modeled overlap windows";
    default: return "track";
  }
}

}  // namespace

Json TraceRecorder::to_json() const {
  Json trace = Json::object();
  Json arr = Json::array();

  // Thread-name metadata events so the tracks are labeled in the viewer.
  for (const int tid :
       {kWallTrack, kModeledTrack, kModeledOverlapTrack}) {
    Json meta = Json::object();
    meta.set("name", "thread_name");
    meta.set("ph", "M");
    meta.set("pid", 1);
    meta.set("tid", tid);
    Json args = Json::object();
    args.set("name", track_name(tid));
    meta.set("args", std::move(args));
    arr.push_back(std::move(meta));
  }

  for (const TraceEvent& ev : events_) {
    Json e = Json::object();
    e.set("name", ev.name);
    e.set("cat", ev.cat);
    e.set("ph", std::string(1, ev.phase));
    e.set("ts", static_cast<double>(ev.ts_us));
    if (ev.phase == 'X') e.set("dur", static_cast<double>(ev.dur_us));
    if (ev.phase == 'i') e.set("s", "t");  // instant scope: thread
    if (ev.phase == 's' || ev.phase == 't' || ev.phase == 'f') {
      e.set("id", static_cast<double>(ev.flow_id));
      // Bind step/end to the enclosing slice so the arrows attach to the
      // upload/kernel/download boxes rather than to whole-track anchors.
      if (ev.phase != 's') e.set("bp", "e");
    }
    e.set("pid", 1);
    e.set("tid", ev.tid);
    if (!ev.args.empty()) {
      Json args = Json::object();
      for (const auto& [k, v] : ev.args) args.set(k, v);
      e.set("args", std::move(args));
    }
    arr.push_back(std::move(e));
  }

  // A truncated recording says so inside the trace itself: a final instant
  // a viewer shows at the end of the wall track, plus a trace.dropped
  // counter sample so the loss is graphable. otherData alone is invisible
  // in Perfetto's timeline view.
  if (dropped_ > 0) {
    const std::int64_t last_ts =
        events_.empty() ? 0 : events_.back().ts_us + events_.back().dur_us;
    Json note = Json::object();
    note.set("name", "trace.truncated");
    note.set("cat", "telemetry");
    note.set("ph", "i");
    note.set("ts", static_cast<double>(last_ts));
    note.set("s", "g");  // global scope: draws a full-height marker
    note.set("pid", 1);
    note.set("tid", kWallTrack);
    Json nargs = Json::object();
    nargs.set("dropped_events", static_cast<double>(dropped_));
    nargs.set("capacity", static_cast<double>(capacity_));
    note.set("args", std::move(nargs));
    arr.push_back(std::move(note));

    Json ctr = Json::object();
    ctr.set("name", "trace.dropped");
    ctr.set("cat", "counter");
    ctr.set("ph", "C");
    ctr.set("ts", static_cast<double>(last_ts));
    ctr.set("pid", 1);
    ctr.set("tid", kWallTrack);
    Json cargs = Json::object();
    cargs.set("value", static_cast<double>(dropped_));
    ctr.set("args", std::move(cargs));
    arr.push_back(std::move(ctr));
  }

  trace.set("traceEvents", std::move(arr));
  trace.set("displayTimeUnit", "ms");
  Json other = Json::object();
  other.set("recorded_events", static_cast<double>(events_.size()));
  other.set("dropped_events", static_cast<double>(dropped_));
  trace.set("otherData", std::move(other));
  return trace;
}

}  // namespace mog::telemetry
