// Per-launch counter aggregation with percentile rollups.
//
// A CounterRegistry is a gpusim::StatsSink: attach it to a Device (the GPU
// pipeline does this automatically when a global registry is installed, see
// telemetry.hpp) and every kernel launch contributes one sample per metric
// from gpusim::visit_metrics. Rollups report count/mean/min/max and the
// p50/p90/p99 percentiles across launches; per-frame views divide extensive
// (work-proportional) metrics by the frame count and leave intensive ones
// (resources, efficiencies) as launch means.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mog/gpusim/stats.hpp"
#include "mog/telemetry/json.hpp"

namespace mog::telemetry {

struct Rollup {
  std::size_t count = 0;
  double total = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

/// Percentile with linear interpolation between order statistics
/// (`p` in [0, 100]; matches numpy's default "linear" method). The input
/// need not be sorted. An empty sample set reports 0.0 — live scrapes hit
/// series that have no samples yet, and that must not abort the exposition.
double percentile(std::vector<double> samples, double p);

/// Rollup over a sample vector (count/total/mean/min/max/p50/p90/p99).
Rollup make_rollup(const std::vector<double>& samples);

class CounterRegistry : public gpusim::StatsSink {
 public:
  void on_kernel_launch(const gpusim::KernelStats& stats) override;

  /// Record one sample of a caller-defined scalar series (e.g. the serving
  /// layer's end-to-end latencies or queue depths). Custom series live next
  /// to the kernel-launch metrics and share the rollup / percentile /
  /// JSON-export machinery; `extensive` series total in per_run(), intensive
  /// ones report their mean. A custom series may not shadow a kernel metric
  /// name.
  void record(const std::string& metric, double value, bool extensive = false);

  std::size_t launches() const { return launches_; }
  const std::vector<std::string>& metric_names() const { return names_; }
  const std::vector<std::string>& custom_metric_names() const {
    return custom_names_;
  }

  /// Per-launch (or per-record) samples of one metric — kernel-launch
  /// metrics first, then custom series (empty when unknown / no samples).
  const std::vector<double>& samples(const std::string& metric) const;

  /// Percentile rollup of one metric across launches.
  Rollup rollup(const std::string& metric) const {
    return make_rollup(samples(metric));
  }

  /// Run total of an extensive metric; launch mean of an intensive one.
  double per_run(const std::string& metric) const;

  /// per_run normalized by `frames` for extensive metrics; launch mean for
  /// intensive ones.
  double per_frame(const std::string& metric, std::uint64_t frames) const;

  void clear();

  /// {"launches": n, "metrics": {name: {count, mean, min, max, p50, ...}}}
  Json to_json() const;

  /// Compact human-readable digest (surveillance example, logs).
  std::string summary(std::uint64_t frames = 0) const;

 private:
  int index_of(const std::string& metric) const;
  int custom_index_of(const std::string& metric) const;

  std::size_t launches_ = 0;
  std::vector<std::string> names_;
  std::vector<bool> extensive_;
  std::vector<std::vector<double>> samples_;

  // Custom series are stored apart from the kernel metrics: the launch path
  // assumes names_ aligns 1:1 with gpusim::visit_metrics order.
  std::vector<std::string> custom_names_;
  std::vector<bool> custom_extensive_;
  std::vector<std::vector<double>> custom_samples_;
};

}  // namespace mog::telemetry
