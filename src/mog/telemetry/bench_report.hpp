// Canonical machine-readable bench report: every bench binary emits one
// schema-versioned BENCH_<name>.json that CI diffs against a checked-in
// baseline (see gate.hpp / the bench_gate binary).
//
// Schema v1:
//   {
//     "schema_version": 1,
//     "bench": "<name>",
//     "host": {"compiler": ..., "build_type": ..., "timestamp_utc": ...},
//     "env": {"compiler": ..., "flags": ..., "hw_threads": N,
//             "mog_executor_threads": "...", "executor_threads": N},
//     "workload": {"width": W, "height": H, "frames": N},
//     "tolerances": {"<metric>": <relative tolerance>, ...},   // optional
//     "cases": [
//       {"name": "<case>", "metrics": {"<metric>": <number>, ...}}, ...
//     ],
//     "prof": {...}   // optional sampling-profile block (MOG_BENCH_PROFILE)
//   }
//
// Conventions: metrics prefixed "wall_" are wall-clock measurements and are
// skipped by the regression gate (everything else in this repo is a
// deterministic simulation output and is gated). The "host", "env" and
// "prof" blocks are informational and never compared.
#pragma once

#include <string>
#include <vector>

#include "mog/gpusim/stats.hpp"
#include "mog/telemetry/json.hpp"

namespace mog::telemetry {

class BenchReporter {
 public:
  static constexpr int kSchemaVersion = 1;

  /// Metric prefix the regression gate skips by default.
  static constexpr const char* kWallPrefix = "wall_";

  explicit BenchReporter(std::string name = "unnamed")
      : name_(std::move(name)) {}

  class Case {
   public:
    explicit Case(std::string name) : name_(std::move(name)) {}

    Case& metric(const std::string& name, double value) {
      metrics_.emplace_back(name, value);
      return *this;
    }

    /// Expand a per-frame KernelStats into "ctr_<metric>" entries.
    Case& counters(const gpusim::KernelStats& per_frame);

    const std::string& name() const { return name_; }
    const std::vector<std::pair<std::string, double>>& metrics() const {
      return metrics_;
    }

   private:
    std::string name_;
    std::vector<std::pair<std::string, double>> metrics_;
  };

  void set_name(std::string name) { name_ = std::move(name); }
  const std::string& name() const { return name_; }

  void set_workload(int width, int height, int frames) {
    width_ = width;
    height_ = height;
    frames_ = frames;
  }

  /// Record the block-executor thread count the bench ran with (host
  /// metadata, never gated). Defaults to the resolved device default, so a
  /// bench only needs to call this when it pins a non-default count. The
  /// gate skips "host", but a reader diagnosing wall_* drift between two
  /// reports needs this to tell environment from regression.
  void set_executor_threads(int threads) { executor_threads_ = threads; }

  /// Override the gate's relative tolerance for one metric (embedded in the
  /// report, so a regenerated baseline carries its own bands).
  void set_tolerance(const std::string& metric, double rel_tol) {
    for (auto& [k, v] : tolerances_)
      if (k == metric) {
        v = rel_tol;
        return;
      }
    tolerances_.emplace_back(metric, rel_tol);
  }

  /// Attach a sampling-profile block (emitted as root key "prof"). The
  /// reporter treats it as opaque JSON — obs::profile_report_json builds
  /// it — so telemetry stays independent of the profiler. Like "host" and
  /// "env", the gate never compares it.
  void set_profile(Json prof) { profile_ = std::move(prof); }

  /// Add (or reopen) a case; the reference stays valid until the next add.
  Case& add_case(const std::string& name);

  std::size_t num_cases() const { return cases_.size(); }

  Json to_json() const;

  /// Write BENCH_<name>.json under `dir` (created if missing); returns the
  /// path written.
  std::string write_file(const std::string& dir) const;

 private:
  std::string name_;
  int width_ = 0, height_ = 0, frames_ = 0;
  int executor_threads_ = 0;  ///< 0 = resolve the device default at dump time
  std::vector<std::pair<std::string, double>> tolerances_;
  std::vector<Case> cases_;
  Json profile_;  ///< null until set_profile(); emitted as "prof"
};

}  // namespace mog::telemetry
