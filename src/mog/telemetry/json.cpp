#include "mog/telemetry/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "mog/common/strutil.hpp"

namespace mog::telemetry {

const Json* Json::find(std::string_view key) const {
  const Object* obj = std::get_if<Object>(&value_);
  if (obj == nullptr) return nullptr;
  for (const auto& [k, v] : *obj)
    if (k == key) return &v;
  return nullptr;
}

Json& Json::set(std::string key, Json value) {
  Object& obj = mut<Object>("object");
  for (auto& [k, v] : obj)
    if (k == key) {
      v = std::move(value);
      return v;
    }
  obj.emplace_back(std::move(key), std::move(value));
  return obj.back().second;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += strprintf("\\u%04x", c);
        else
          out += c;
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  MOG_CHECK(std::isfinite(d), "JSON cannot represent NaN or infinity");
  // Counters are integers; print them as such (within the exact range).
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    out += strprintf("%lld", static_cast<long long>(d));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type()) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += std::get<bool>(value_) ? "true" : "false"; break;
    case Type::kNumber: append_number(out, std::get<double>(value_)); break;
    case Type::kString: append_escaped(out, std::get<std::string>(value_)); break;
    case Type::kArray: {
      const Array& arr = std::get<Array>(value_);
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i > 0) out += ',';
        append_newline_indent(out, indent, depth + 1);
        arr[i].dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      const Object& obj = std::get<Object>(value_);
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj.size(); ++i) {
        if (i > 0) out += ',';
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, obj[i].first);
        out += indent < 0 ? ":" : ": ";
        obj[i].second.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// --- parser ------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    MOG_CHECK(pos_ == text_.size(),
              strprintf("trailing characters after JSON value at offset %zu",
                        pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw Error{strprintf("JSON parse error at offset %zu: %s", pos_,
                          what.c_str())};
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(strprintf("expected '%c'", c));
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json{parse_string()};
      case 't':
        if (consume_literal("true")) return Json{true};
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json{false};
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json{};
        fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.as_object().emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<unsigned>(c - 'A' + 10);
      else
        fail("bad \\u escape");
    }
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {  // high surrogate: pair owed
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              fail("unpaired surrogate");
            pos_ += 2;
            const unsigned lo = parse_hex4();
            if (lo < 0xdc00 || lo > 0xdfff) fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            // A lone low surrogate is not a code point; encoding it would
            // emit invalid UTF-8 (CESU-8) that round-trips as garbage.
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  bool at_digit() const {
    return pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9';
  }

  // Strict JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
  // A permissive scan-then-strtod here would quietly accept malformed
  // baselines ("07.", "1.", ".5", "+1") and feed the perf gate a number the
  // writer never produced; any deviation from the grammar is a parse error.
  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!at_digit()) fail("malformed number");
    if (text_[pos_] == '0')
      ++pos_;  // leading zero admits no further integer digits
    else
      while (at_digit()) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!at_digit()) fail("malformed number");
      while (at_digit()) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (!at_digit()) fail("malformed number");
      while (at_digit()) ++pos_;
    }
    const std::string tok{text_.substr(start, pos_ - start)};
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0') fail("malformed number");
    return Json{d};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser{text}.parse_document();
}

Json read_json_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  MOG_CHECK(in.good(), "cannot open JSON file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return Json::parse(ss.str());
}

void write_json_file(const std::string& path, const Json& value) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  MOG_CHECK(out.good(), "cannot open JSON file for writing: " + path);
  out << value.dump(2) << '\n';
  MOG_CHECK(out.good(), "failed writing JSON file: " + path);
}

}  // namespace mog::telemetry
