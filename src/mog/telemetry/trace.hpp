// Low-overhead scoped tracing with Chrome-trace (chrome://tracing /
// Perfetto) JSON export.
//
// Two tracks share one timeline:
//   tid kWallTrack    — wall-clock spans measured around real simulator work
//                       (upload / kernel / download / recovery actions);
//   tid kModeledTrack — the *modeled* GPU timeline the paper reasons about,
//                       emitted by the pipeline with explicit timestamps so
//                       overlap windows (Fig. 5b) are visible as such.
//
// Recording is bounded: once `capacity()` events are held, further events
// are counted in dropped() instead of stored, so a long soak run cannot
// grow without limit. All methods are cheap no-ops on a null recorder via
// the free helpers in telemetry.hpp.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mog/telemetry/json.hpp"

namespace mog::telemetry {

struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'X';       ///< 'X' complete, 'i' instant, 'C' counter,
                          ///< 's'/'t'/'f' flow begin/step/end
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;  ///< complete events only
  int tid = 0;
  std::uint64_t flow_id = 0;  ///< flow events only (frame ticket)
  std::vector<std::pair<std::string, double>> args;
};

class TraceRecorder {
 public:
  static constexpr int kWallTrack = 0;
  static constexpr int kModeledTrack = 1;
  static constexpr int kModeledOverlapTrack = 2;
  /// Serving layer: stream k's modeled device ops render on track
  /// kServeTrackBase + k, one row per camera stream.
  static constexpr int kServeTrackBase = 8;

  explicit TraceRecorder(std::size_t capacity = 1 << 20)
      : capacity_(capacity), epoch_(std::chrono::steady_clock::now()) {}

  /// Microseconds since this recorder was constructed.
  std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// RAII wall-clock span on kWallTrack; emits on destruction.
  class Span {
   public:
    Span(TraceRecorder* rec, std::string name, std::string cat)
        : rec_(rec), name_(std::move(name)), cat_(std::move(cat)),
          start_us_(rec != nullptr ? rec->now_us() : 0) {}
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span(Span&& other) noexcept
        : rec_(other.rec_), name_(std::move(other.name_)),
          cat_(std::move(other.cat_)), start_us_(other.start_us_),
          args_(std::move(other.args_)) {
      other.rec_ = nullptr;
    }
    Span& operator=(Span&&) = delete;

    Span& arg(std::string key, double value) {
      if (rec_ != nullptr) args_.emplace_back(std::move(key), value);
      return *this;
    }

    ~Span() {
      if (rec_ == nullptr) return;
      rec_->complete(name_, cat_, TraceRecorder::kWallTrack, start_us_,
                     rec_->now_us() - start_us_, std::move(args_));
    }

   private:
    TraceRecorder* rec_;
    std::string name_, cat_;
    std::int64_t start_us_;
    std::vector<std::pair<std::string, double>> args_;
  };

  Span span(std::string name, std::string cat = "sim") {
    return Span{this, std::move(name), std::move(cat)};
  }

  /// Complete event with explicit timestamps (modeled-timeline emission).
  void complete(std::string name, std::string cat, int tid, std::int64_t ts_us,
                std::int64_t dur_us,
                std::vector<std::pair<std::string, double>> args = {}) {
    push({std::move(name), std::move(cat), 'X', ts_us, dur_us, tid, 0,
          std::move(args)});
  }

  void instant(std::string name, std::string cat = "event",
               std::vector<std::pair<std::string, double>> args = {}) {
    push({std::move(name), std::move(cat), 'i', now_us(), 0, kWallTrack, 0,
          std::move(args)});
  }

  void counter(std::string name, double value) {
    push({std::move(name), "counter", 'C', now_us(), 0, kWallTrack, 0,
          {{"value", value}}});
  }

  /// Chrome-trace flow events: a begin ('s') / step ('t') / end ('f') chain
  /// sharing one id renders as connected arrows across tracks. The serving
  /// layer keys these on the frame ticket so a single frame's journey —
  /// queue admission, upload, kernel, download, recovery — reads as one
  /// arrow chain through the per-stream tracks. Timestamps are explicit
  /// because the modeled timeline does not run on the wall clock.
  void flow_begin(std::string name, std::string cat, std::uint64_t id, int tid,
                  std::int64_t ts_us) {
    push({std::move(name), std::move(cat), 's', ts_us, 0, tid, id, {}});
  }
  void flow_step(std::string name, std::string cat, std::uint64_t id, int tid,
                 std::int64_t ts_us) {
    push({std::move(name), std::move(cat), 't', ts_us, 0, tid, id, {}});
  }
  void flow_end(std::string name, std::string cat, std::uint64_t id, int tid,
                std::int64_t ts_us) {
    push({std::move(name), std::move(cat), 'f', ts_us, 0, tid, id, {}});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t dropped() const { return dropped_; }

  /// Chrome trace "JSON object format": {"traceEvents": [...], ...}.
  Json to_json() const;

  void write(const std::string& path) const { write_json_file(path, to_json()); }

 private:
  void push(TraceEvent ev) {
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(std::move(ev));
  }

  std::size_t capacity_;
  std::size_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> events_;
};

}  // namespace mog::telemetry
