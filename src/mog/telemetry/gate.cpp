#include "mog/telemetry/gate.hpp"

#include <cmath>
#include <limits>

#include "mog/common/strutil.hpp"
#include "mog/telemetry/bench_report.hpp"

namespace mog::telemetry {

namespace {

bool is_wall_metric(const std::string& name) {
  return name.rfind(BenchReporter::kWallPrefix, 0) == 0;
}

const Json* find_case(const Json& report, const std::string& name) {
  const Json* cases = report.find("cases");
  if (cases == nullptr || !cases->is_array()) return nullptr;
  for (const Json& c : cases->as_array()) {
    const Json* n = c.find("name");
    if (n != nullptr && n->is_string() && n->as_string() == name) return &c;
  }
  return nullptr;
}

double schema_version(const Json& report) {
  const Json* v = report.find("schema_version");
  return v != nullptr && v->is_number() ? v->as_number() : -1.0;
}

double tolerance_for(const Json& baseline, const std::string& metric,
                     const GateOptions& options) {
  const Json* tols = baseline.find("tolerances");
  if (tols != nullptr) {
    const Json* t = tols->find(metric);
    if (t != nullptr && t->is_number()) return t->as_number();
  }
  return options.default_rel_tol;
}

}  // namespace

std::string GateFinding::describe() const {
  switch (kind) {
    case Kind::kSchemaMismatch:
      return strprintf("schema mismatch: baseline v%g vs fresh v%g", baseline,
                       fresh);
    case Kind::kMissingCase:
      return strprintf("case '%s' missing from fresh report",
                       case_name.c_str());
    case Kind::kMissingMetric:
      return strprintf("metric '%s/%s' missing from fresh report",
                       case_name.c_str(), metric.c_str());
    case Kind::kRegression:
      return strprintf(
          "'%s/%s' moved %.3g -> %.3g (%.2f%% > %.2f%% tolerance)",
          case_name.c_str(), metric.c_str(), baseline, fresh,
          100.0 * rel_delta, 100.0 * tolerance);
    case Kind::kWallSlowdown:
      // tolerance carries the warn *factor* here (×), not a relative band.
      return strprintf("'%s/%s' wall-clock %.3g -> %.3g (%.2fx > %.2gx warn "
                       "factor; not fatal)",
                       case_name.c_str(), metric.c_str(), baseline, fresh,
                       baseline > 0 ? fresh / baseline : 0.0, tolerance);
  }
  return "?";
}

GateResult gate_reports(const Json& baseline, const Json& fresh,
                        const GateOptions& options) {
  GateResult result;

  const double bv = schema_version(baseline);
  const double fv = schema_version(fresh);
  if (bv != fv || bv < 0) {
    GateFinding f;
    f.kind = GateFinding::Kind::kSchemaMismatch;
    f.baseline = bv;
    f.fresh = fv;
    result.failures.push_back(f);
    return result;
  }

  const Json* cases = baseline.find("cases");
  if (cases == nullptr || !cases->is_array()) return result;

  for (const Json& bc : cases->as_array()) {
    const Json* name = bc.find("name");
    const std::string case_name =
        name != nullptr && name->is_string() ? name->as_string() : "?";
    const Json* fc = find_case(fresh, case_name);
    if (fc == nullptr) {
      GateFinding f;
      f.kind = GateFinding::Kind::kMissingCase;
      f.case_name = case_name;
      result.failures.push_back(f);
      continue;
    }
    ++result.cases_compared;

    const Json* bmetrics = bc.find("metrics");
    const Json* fmetrics = fc->find("metrics");
    if (bmetrics == nullptr || !bmetrics->is_object()) continue;

    for (const auto& [metric, bval] : bmetrics->as_object()) {
      if (!bval.is_number()) continue;

      GateComparison row;
      row.case_name = case_name;
      row.metric = metric;
      row.baseline = bval.as_number();
      row.tolerance = tolerance_for(baseline, metric, options);

      if (!options.include_wall && is_wall_metric(metric)) {
        ++result.metrics_skipped;
        row.verdict = "skipped_wall";
        const Json* fval =
            fmetrics != nullptr ? fmetrics->find(metric) : nullptr;
        if (fval != nullptr && fval->is_number()) row.fresh = fval->as_number();
        // Non-fatal tripwire: flag gross wall-clock slowdowns (fresh beyond
        // baseline × factor) without letting machine noise fail the gate.
        if (options.warn_wall_factor > 0 && row.baseline > options.abs_tol &&
            row.fresh > row.baseline * options.warn_wall_factor) {
          GateFinding w;
          w.kind = GateFinding::Kind::kWallSlowdown;
          w.case_name = case_name;
          w.metric = metric;
          w.baseline = row.baseline;
          w.fresh = row.fresh;
          w.rel_delta = (row.fresh - row.baseline) / row.baseline;
          w.tolerance = options.warn_wall_factor;
          result.warnings.push_back(std::move(w));
          row.verdict = "warn_wall";
        }
        result.comparisons.push_back(std::move(row));
        continue;
      }
      const Json* fval =
          fmetrics != nullptr ? fmetrics->find(metric) : nullptr;
      if (fval == nullptr || !fval->is_number()) {
        GateFinding f;
        f.kind = GateFinding::Kind::kMissingMetric;
        f.case_name = case_name;
        f.metric = metric;
        result.failures.push_back(f);
        row.verdict = "missing";
        result.comparisons.push_back(std::move(row));
        continue;
      }
      ++result.metrics_compared;

      const double b = bval.as_number();
      const double v = fval->as_number();
      row.fresh = v;
      const double abs_delta = std::fabs(v - b);
      const double tol = row.tolerance;
      const double rel =
          std::fabs(b) > 0 ? abs_delta / std::fabs(b)
                           : std::numeric_limits<double>::infinity();
      if (abs_delta > options.abs_tol) row.rel_delta = rel;
      if (abs_delta > options.abs_tol && rel > tol) {
        GateFinding f;
        f.kind = GateFinding::Kind::kRegression;
        f.case_name = case_name;
        f.metric = metric;
        f.baseline = b;
        f.fresh = v;
        f.rel_delta = rel;
        f.tolerance = tol;
        result.failures.push_back(f);
        row.verdict = "fail";
      }
      result.comparisons.push_back(std::move(row));
    }
  }
  return result;
}

std::string format_gate_result(const std::string& label,
                               const GateResult& result) {
  std::string out = strprintf(
      "%s: %s — %d cases, %d metrics compared, %d wall metrics skipped",
      label.c_str(), result.ok() ? "PASS" : "FAIL", result.cases_compared,
      result.metrics_compared, result.metrics_skipped);
  if (!result.warnings.empty())
    out += strprintf(", %zu wall warning%s", result.warnings.size(),
                     result.warnings.size() == 1 ? "" : "s");
  for (const GateFinding& f : result.failures)
    out += "\n  ✗ " + f.describe();
  for (const GateFinding& w : result.warnings)
    out += "\n  ⚠ " + w.describe();
  return out;
}

Json gate_result_to_json(const std::string& label, const GateResult& result) {
  Json root = Json::object();
  root.set("label", label);
  root.set("ok", result.ok());
  root.set("cases_compared", result.cases_compared);
  root.set("metrics_compared", result.metrics_compared);
  root.set("metrics_skipped", result.metrics_skipped);

  Json rows = Json::array();
  for (const GateComparison& c : result.comparisons) {
    Json row = Json::object();
    row.set("case", c.case_name);
    row.set("metric", c.metric);
    row.set("baseline", c.baseline);
    row.set("fresh", c.fresh);
    // rel_delta is infinite when the baseline is 0 and the fresh value is
    // not; JSON has no Inf, so that degenerate band renders as null.
    row.set("rel_delta",
            std::isfinite(c.rel_delta) ? Json{c.rel_delta} : Json{nullptr});
    row.set("tolerance", c.tolerance);
    row.set("verdict", c.verdict);
    rows.push_back(std::move(row));
  }
  root.set("comparisons", std::move(rows));

  Json failures = Json::array();
  for (const GateFinding& f : result.failures) failures.push_back(f.describe());
  root.set("failures", std::move(failures));

  Json warnings = Json::array();
  for (const GateFinding& w : result.warnings) warnings.push_back(w.describe());
  root.set("warnings", std::move(warnings));
  return root;
}

}  // namespace mog::telemetry
