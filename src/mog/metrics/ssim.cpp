#include "mog/metrics/ssim.hpp"

#include <cmath>

#include "mog/metrics/image_ops.hpp"

namespace mog {

namespace {

struct SsimTerms {
  double mean_ssim;
  double mean_cs;
};

/// Fallback for images smaller than the 11x11 window in either dimension:
/// one SSIM term from whole-image statistics (the entire image acts as the
/// single window). Continuous with the windowed path in spirit — identical
/// formula, global rather than local moments — and well-defined down to 1x1.
SsimTerms global_ssim_terms(const Image<double>& a, const Image<double>& b,
                            const SsimOptions& opts) {
  const double c1 = (opts.k1 * opts.peak) * (opts.k1 * opts.peak);
  const double c2 = (opts.k2 * opts.peak) * (opts.k2 * opts.peak);
  const double n = static_cast<double>(a.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double var_a = 0.0, var_b = 0.0, cov = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    var_a += (a[i] - ma) * (a[i] - ma);
    var_b += (b[i] - mb) * (b[i] - mb);
    cov += (a[i] - ma) * (b[i] - mb);
  }
  var_a /= n;
  var_b /= n;
  cov /= n;
  const double cs = (2.0 * cov + c2) / (var_a + var_b + c2);
  const double lum = (2.0 * ma * mb + c1) / (ma * ma + mb * mb + c1);
  return {lum * cs, cs};
}

SsimTerms ssim_terms(const Image<double>& a, const Image<double>& b,
                     const SsimOptions& opts) {
  MOG_CHECK(a.same_shape(b), "SSIM requires same-shaped images");
  MOG_CHECK(!a.empty(), "SSIM of empty images");
  if (a.width() < 11 || a.height() < 11) return global_ssim_terms(a, b, opts);

  const double c1 = (opts.k1 * opts.peak) * (opts.k1 * opts.peak);
  const double c2 = (opts.k2 * opts.peak) * (opts.k2 * opts.peak);

  const Image<double> mu_a = gaussian_blur_ssim(a);
  const Image<double> mu_b = gaussian_blur_ssim(b);
  const Image<double> aa = gaussian_blur_ssim(multiply(a, a));
  const Image<double> bb = gaussian_blur_ssim(multiply(b, b));
  const Image<double> ab = gaussian_blur_ssim(multiply(a, b));

  double acc_ssim = 0.0, acc_cs = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double ma = mu_a[i], mb = mu_b[i];
    const double var_a = aa[i] - ma * ma;
    const double var_b = bb[i] - mb * mb;
    const double cov = ab[i] - ma * mb;
    const double cs = (2.0 * cov + c2) / (var_a + var_b + c2);
    const double lum = (2.0 * ma * mb + c1) / (ma * ma + mb * mb + c1);
    acc_ssim += lum * cs;
    acc_cs += cs;
  }
  const double n = static_cast<double>(a.size());
  return {acc_ssim / n, acc_cs / n};
}

constexpr double kMsWeights[5] = {0.0448, 0.2856, 0.3001, 0.2363, 0.1333};

}  // namespace

double ssim(const Image<double>& a, const Image<double>& b,
            const SsimOptions& opts) {
  return ssim_terms(a, b, opts).mean_ssim;
}

double ssim(const FrameU8& a, const FrameU8& b, const SsimOptions& opts) {
  return ssim(to_real<double>(a), to_real<double>(b), opts);
}

double ssim_cs(const Image<double>& a, const Image<double>& b,
               const SsimOptions& opts) {
  return ssim_terms(a, b, opts).mean_cs;
}

double ms_ssim(const Image<double>& a, const Image<double>& b,
               const SsimOptions& opts, int max_scales) {
  MOG_CHECK(a.same_shape(b), "MS-SSIM requires same-shaped images");
  MOG_CHECK(max_scales >= 1 && max_scales <= 5, "max_scales must be in [1,5]");

  // How many dyadic scales fit: the smallest level must still hold the
  // 11x11 window. Images below the window in either dimension get one scale
  // through the global-statistics fallback in ssim_terms() instead of
  // throwing — small synthetic test frames stay measurable.
  int scales = 0;
  {
    int w = a.width(), h = a.height();
    while (scales < max_scales && w >= 11 && h >= 11) {
      ++scales;
      w /= 2;
      h /= 2;
    }
  }
  if (scales == 0) scales = 1;
  MOG_CHECK(!a.empty(), "MS-SSIM of empty images");

  double wsum = 0.0;
  for (int s = 0; s < scales; ++s) wsum += kMsWeights[s];

  Image<double> la = a, lb = b;
  double result = 1.0;
  for (int s = 0; s < scales; ++s) {
    const SsimTerms t = ssim_terms(la, lb, opts);
    const double exponent = kMsWeights[s] / wsum;
    // Intermediate scales contribute contrast-structure; the coarsest scale
    // contributes the full SSIM (luminance included).
    const double term = (s == scales - 1) ? t.mean_ssim : t.mean_cs;
    // Negative terms can occur for anticorrelated patches; clamp as in the
    // reference implementation to keep the geometric mean defined.
    result *= std::pow(std::max(term, 0.0), exponent);
    if (s != scales - 1) {
      la = downsample2(gaussian_blur(la, /*radius=*/1, /*sigma=*/0.75));
      lb = downsample2(gaussian_blur(lb, /*radius=*/1, /*sigma=*/0.75));
    }
  }
  return result;
}

double ms_ssim(const FrameU8& a, const FrameU8& b, const SsimOptions& opts,
               int max_scales) {
  return ms_ssim(to_real<double>(a), to_real<double>(b), opts, max_scales);
}

}  // namespace mog
