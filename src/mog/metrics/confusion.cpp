#include "mog/metrics/confusion.hpp"

namespace mog {

namespace {
double safe_div(double num, double den) { return den > 0.0 ? num / den : 0.0; }
}  // namespace

double ConfusionCounts::precision() const {
  return safe_div(static_cast<double>(tp), static_cast<double>(tp + fp));
}

double ConfusionCounts::recall() const {
  return safe_div(static_cast<double>(tp), static_cast<double>(tp + fn));
}

double ConfusionCounts::f1() const {
  return safe_div(2.0 * static_cast<double>(tp),
                  static_cast<double>(2 * tp + fp + fn));
}

double ConfusionCounts::iou() const {
  return safe_div(static_cast<double>(tp), static_cast<double>(tp + fp + fn));
}

double ConfusionCounts::accuracy() const {
  return safe_div(static_cast<double>(tp + tn),
                  static_cast<double>(tp + tn + fp + fn));
}

ConfusionCounts& ConfusionCounts::operator+=(const ConfusionCounts& other) {
  tp += other.tp;
  fp += other.fp;
  fn += other.fn;
  tn += other.tn;
  return *this;
}

ConfusionCounts compare_masks(const FrameU8& predicted, const FrameU8& truth) {
  MOG_CHECK(predicted.same_shape(truth), "mask shape mismatch");
  ConfusionCounts c;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const bool p = predicted[i] != 0;
    const bool t = truth[i] != 0;
    if (p && t)
      ++c.tp;
    else if (p && !t)
      ++c.fp;
    else if (!p && t)
      ++c.fn;
    else
      ++c.tn;
  }
  return c;
}

double mask_disagreement(const FrameU8& a, const FrameU8& b) {
  MOG_CHECK(a.same_shape(b), "mask shape mismatch");
  if (a.size() == 0) return 0.0;
  std::uint64_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    diff += ((a[i] != 0) != (b[i] != 0)) ? 1 : 0;
  return static_cast<double>(diff) / static_cast<double>(a.size());
}

}  // namespace mog
