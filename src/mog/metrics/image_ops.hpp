// Image-processing primitives backing the quality metrics.
#pragma once

#include "mog/common/image.hpp"

namespace mog {

/// Separable Gaussian blur with an 11-tap kernel, σ = 1.5 (the SSIM window).
/// Borders use kernel renormalization (truncate + rescale), matching the
/// common "valid-region emphasis" SSIM implementations.
Image<double> gaussian_blur_ssim(const Image<double>& src);

/// Separable Gaussian blur with an arbitrary odd kernel size and σ.
Image<double> gaussian_blur(const Image<double>& src, int radius,
                            double sigma);

/// 2x downsampling by 2x2 box average (MS-SSIM pyramid step). Odd trailing
/// rows/columns are dropped.
Image<double> downsample2(const Image<double>& src);

/// Elementwise product / square helpers.
Image<double> multiply(const Image<double>& a, const Image<double>& b);

/// Mean of all pixels.
double mean(const Image<double>& img);

/// Mean squared error between two same-shaped images.
double mse(const Image<double>& a, const Image<double>& b);

/// PSNR in dB for a given peak value (255 for 8-bit). Returns +inf when the
/// images are identical.
double psnr(const Image<double>& a, const Image<double>& b,
            double peak = 255.0);

}  // namespace mog
