// SSIM and Multi-Scale SSIM (MS-SSIM) image quality indices.
//
// MS-SSIM is the paper's quality measure (Table IV): it compares each
// optimized variant's output against the double-precision CPU ground truth.
// Implementation follows Wang, Simoncelli & Bovik, "Multiscale structural
// similarity for image quality assessment", Asilomar 2003: 5 scales with
// exponents {0.0448, 0.2856, 0.3001, 0.2363, 0.1333}, 11x11 Gaussian window
// with σ = 1.5, C1 = (0.01 L)², C2 = (0.03 L)², L = 255.
//
// For images too small for 5 dyadic scales the scale count is reduced and
// the exponent vector renormalized (standard practice; documented so results
// on small test images are well-defined). Images smaller than the 11x11
// window in either dimension fall back to a single scale computed from
// whole-image statistics (the image is the window) — same formula, global
// moments — so ssim()/ms_ssim() are total functions down to 1x1 instead of
// throwing on tiny fixtures.
#pragma once

#include "mog/common/image.hpp"

namespace mog {

struct SsimOptions {
  double peak = 255.0;  ///< dynamic range L
  double k1 = 0.01;
  double k2 = 0.03;
};

/// Mean single-scale SSIM over the image.
double ssim(const Image<double>& a, const Image<double>& b,
            const SsimOptions& opts = {});
double ssim(const FrameU8& a, const FrameU8& b, const SsimOptions& opts = {});

/// Mean contrast-structure term only (used internally by MS-SSIM; exposed
/// for tests).
double ssim_cs(const Image<double>& a, const Image<double>& b,
               const SsimOptions& opts = {});

/// Multi-scale SSIM. `max_scales` caps the pyramid depth (5 = the reference
/// configuration).
double ms_ssim(const Image<double>& a, const Image<double>& b,
               const SsimOptions& opts = {}, int max_scales = 5);
double ms_ssim(const FrameU8& a, const FrameU8& b,
               const SsimOptions& opts = {}, int max_scales = 5);

}  // namespace mog
