#include "mog/metrics/image_ops.hpp"

#include <cmath>
#include <limits>
#include <vector>

namespace mog {

namespace {

std::vector<double> gaussian_kernel(int radius, double sigma) {
  std::vector<double> k(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    const double v = std::exp(-0.5 * (i * i) / (sigma * sigma));
    k[static_cast<std::size_t>(i + radius)] = v;
    sum += v;
  }
  for (double& v : k) v /= sum;
  return k;
}

// One separable pass along x or y with border renormalization.
Image<double> convolve1d(const Image<double>& src,
                         const std::vector<double>& kernel, bool horizontal) {
  const int radius = static_cast<int>(kernel.size() / 2);
  Image<double> out(src.width(), src.height());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      double acc = 0.0, wsum = 0.0;
      for (int i = -radius; i <= radius; ++i) {
        const int xx = horizontal ? x + i : x;
        const int yy = horizontal ? y : y + i;
        if (!src.in_bounds(xx, yy)) continue;
        const double w = kernel[static_cast<std::size_t>(i + radius)];
        acc += w * src.at(xx, yy);
        wsum += w;
      }
      out.at(x, y) = acc / wsum;
    }
  }
  return out;
}

}  // namespace

Image<double> gaussian_blur(const Image<double>& src, int radius,
                            double sigma) {
  MOG_CHECK(radius >= 1 && sigma > 0.0, "bad blur parameters");
  const auto kernel = gaussian_kernel(radius, sigma);
  return convolve1d(convolve1d(src, kernel, /*horizontal=*/true), kernel,
                    /*horizontal=*/false);
}

Image<double> gaussian_blur_ssim(const Image<double>& src) {
  return gaussian_blur(src, /*radius=*/5, /*sigma=*/1.5);
}

Image<double> downsample2(const Image<double>& src) {
  const int w = src.width() / 2;
  const int h = src.height() / 2;
  MOG_CHECK(w >= 1 && h >= 1, "image too small to downsample");
  Image<double> out(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      out.at(x, y) = 0.25 * (src.at(2 * x, 2 * y) + src.at(2 * x + 1, 2 * y) +
                             src.at(2 * x, 2 * y + 1) +
                             src.at(2 * x + 1, 2 * y + 1));
  return out;
}

Image<double> multiply(const Image<double>& a, const Image<double>& b) {
  MOG_CHECK(a.same_shape(b), "shape mismatch");
  Image<double> out(a.width(), a.height());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

double mean(const Image<double>& img) {
  MOG_CHECK(!img.empty(), "mean of empty image");
  double acc = 0.0;
  for (std::size_t i = 0; i < img.size(); ++i) acc += img[i];
  return acc / static_cast<double>(img.size());
}

double mse(const Image<double>& a, const Image<double>& b) {
  MOG_CHECK(a.same_shape(b), "shape mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc / static_cast<double>(a.size());
}

double psnr(const Image<double>& a, const Image<double>& b, double peak) {
  const double err = mse(a, b);
  if (err == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(peak * peak / err);
}

}  // namespace mog
