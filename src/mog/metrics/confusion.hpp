// Binary-mask confusion metrics for foreground quality against ground truth
// (supplementary to the paper's MS-SSIM — precision/recall make the
// detection behaviour of the synthetic scenes inspectable).
#pragma once

#include <cstdint>

#include "mog/common/image.hpp"

namespace mog {

struct ConfusionCounts {
  std::uint64_t tp = 0;  ///< predicted fg, truth fg
  std::uint64_t fp = 0;  ///< predicted fg, truth bg
  std::uint64_t fn = 0;  ///< predicted bg, truth fg
  std::uint64_t tn = 0;  ///< predicted bg, truth bg

  double precision() const;
  double recall() const;
  double f1() const;
  double iou() const;  ///< intersection-over-union of the foreground class
  double accuracy() const;

  ConfusionCounts& operator+=(const ConfusionCounts& other);
};

/// Compare two masks; any nonzero pixel counts as foreground.
ConfusionCounts compare_masks(const FrameU8& predicted, const FrameU8& truth);

/// Fraction of pixels where the two masks disagree.
double mask_disagreement(const FrameU8& a, const FrameU8& b);

}  // namespace mog
