#include "mog/video/scene.hpp"

#include <cmath>
#include <numbers>

#include "mog/common/rng.hpp"

namespace mog {

void SceneConfig::validate() const {
  MOG_CHECK(width >= 16 && height >= 16, "scene must be at least 16x16");
  MOG_CHECK(noise_sd >= 0.0, "noise_sd must be non-negative");
  MOG_CHECK(num_objects >= 0 && num_objects <= 64,
            "num_objects must be in [0, 64]");
  MOG_CHECK(object_speed > 0.0, "object_speed must be positive");
  MOG_CHECK(texture_fraction >= 0.0 && texture_fraction <= 1.0,
            "texture_fraction must be in [0, 1]");
}

SceneConfig SceneConfig::highway(int width, int height, std::uint64_t seed) {
  SceneConfig cfg;
  cfg.width = width;
  cfg.height = height;
  cfg.seed = seed;
  cfg.num_objects = 8;
  cfg.object_speed = 6.0;
  cfg.noise_sd = 7.0;
  cfg.texture_fraction = 0.25;
  cfg.flicker_regions = false;
  cfg.waving_region = false;
  return cfg;
}

SceneConfig SceneConfig::lobby(int width, int height, std::uint64_t seed) {
  SceneConfig cfg;
  cfg.width = width;
  cfg.height = height;
  cfg.seed = seed;
  cfg.num_objects = 2;
  cfg.object_speed = 1.2;
  cfg.noise_sd = 2.5;
  cfg.texture_fraction = 0.05;
  cfg.flicker_regions = true;  // displays / status lights
  cfg.waving_region = false;
  return cfg;
}

SceneConfig SceneConfig::waving_trees(int width, int height,
                                      std::uint64_t seed) {
  SceneConfig cfg;
  cfg.width = width;
  cfg.height = height;
  cfg.seed = seed;
  cfg.num_objects = 3;
  cfg.object_speed = 2.5;
  cfg.noise_sd = 5.0;
  cfg.texture_fraction = 0.85;
  cfg.flicker_regions = false;
  cfg.waving_region = true;
  return cfg;
}

namespace {

// Counter-based noise: hash (seed, frame, pixel) and shape four 16-bit
// chunks into an Irwin-Hall(4) approximate Gaussian. Cheap, deterministic,
// order-independent.
double hash_noise(std::uint64_t seed, std::uint64_t t, std::uint64_t pixel) {
  std::uint64_t z = seed ^ (t * 0x9e3779b97f4a7c15ull) ^
                    (pixel * 0xbf58476d1ce4e5b9ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  double sum = 0.0;
  for (int i = 0; i < 4; ++i)
    sum += static_cast<double>((z >> (16 * i)) & 0xffff) / 65536.0;
  // Sum of 4 U(0,1): mean 2, sd sqrt(1/3). Normalize to ~N(0,1).
  return (sum - 2.0) * 1.7320508075688772;
}

// Static per-pixel attributes (is the pixel textured? mode amplitude,
// period, phase) derived from a hash of (seed, pixel) only — stable over
// time, independent across neighbours.
std::uint64_t pixel_hash(std::uint64_t seed, std::uint64_t pixel) {
  std::uint64_t z = (seed + 0x12345u) ^ (pixel * 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

SyntheticScene::SyntheticScene(const SceneConfig& config) : config_(config) {
  config_.validate();
  Rng rng{config_.seed};

  const double W = config_.width;
  const double H = config_.height;

  objects_.reserve(static_cast<std::size_t>(config_.num_objects));
  for (int i = 0; i < config_.num_objects; ++i) {
    MovingObject obj{};
    obj.half_w = rng.uniform(0.03, 0.08) * W;
    obj.half_h = rng.uniform(0.05, 0.12) * H;
    obj.x0 = rng.uniform(obj.half_w, W - obj.half_w);
    obj.y0 = rng.uniform(obj.half_h, H - obj.half_h);
    const double speed = config_.object_speed * rng.uniform(0.6, 1.4);
    const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
    obj.vx = speed * std::cos(angle);
    obj.vy = speed * std::sin(angle);
    // Dark and bright objects alternate so foreground contrasts with any
    // local background intensity.
    obj.intensity = (i % 2 == 0) ? 215 : 35;
    obj.elliptical = (i % 3 == 0);
    objects_.push_back(obj);
  }

  if (config_.flicker_regions) {
    // Two small bimodal regions in opposite corners.
    flicker_.push_back({config_.width / 10, config_.height / 10,
                        config_.width / 8, config_.height / 8});
    flicker_.push_back({config_.width * 7 / 10, config_.height * 6 / 10,
                        config_.width / 8, config_.height / 8});
  }
  if (config_.waving_region) {
    waving_ = {config_.width / 3, config_.height * 2 / 3,
               config_.width / 4, config_.height / 4};
  }
}

double SyntheticScene::reflect(double p, double lo, double hi) {
  // Triangle-wave reflection keeps objects bouncing inside [lo, hi].
  const double range = hi - lo;
  if (range <= 0.0) return lo;
  double q = std::fmod(p - lo, 2.0 * range);
  if (q < 0.0) q += 2.0 * range;
  return lo + (q <= range ? q : 2.0 * range - q);
}

double SyntheticScene::background_value(int x, int y, int t) const {
  const double W = config_.width;
  const double H = config_.height;
  constexpr double kTwoPi = 2.0 * std::numbers::pi;

  // Static plate: smooth gradient plus a tile pattern, typical of indoor
  // surveillance backgrounds.
  double v = 105.0 + 25.0 * std::sin(kTwoPi * 1.5 * x / W) *
                         std::cos(kTwoPi * 1.0 * y / H);
  v += ((x / 16 + y / 16) % 2 == 0) ? 10.0 : -10.0;

  // Bimodal flicker (hard switch between two levels, period 9 frames).
  for (const Region& r : flicker_) {
    if (x >= r.x && x < r.x + r.w && y >= r.y && y < r.y + r.h) {
      v += (t % 9 < 4) ? 42.0 : 0.0;
    }
  }

  // Waving region: per-column phase makes a traveling oscillation, like
  // foliage — intensities sweep a band instead of two points.
  if (config_.waving_region && x >= waving_.x && x < waving_.x + waving_.w &&
      y >= waving_.y && y < waving_.y + waving_.h) {
    const double phase = kTwoPi * (x - waving_.x) / 18.0;
    v += 16.0 * std::sin(kTwoPi * t / 24.0 + phase);
  }

  // Clustered bimodal texture dynamics. Texture comes in 16-pixel patches
  // (bushes, water surface, shimmering signage): a patch is textured with
  // probability texture_fraction, and ~70% of the pixels inside a textured
  // patch square-wave between two intensity modes with pixel-specific
  // period and phase. Mode separation (48..79 levels) exceeds the initial
  // 2.5-sigma match window, so MoG models each mode with its own Gaussian
  // component — neighbouring pixels then match *different* components at
  // any instant, which is what makes real scenes divergent for lockstep
  // SIMT execution while untextured patches stay warp-uniform.
  if (config_.texture_fraction > 0.0) {
    const std::uint64_t patch =
        static_cast<std::uint64_t>(y) * ((config_.width + 15) / 16) + x / 16;
    const std::uint64_t zp = pixel_hash(config_.seed, patch);
    if (static_cast<double>(zp & 0xffff) / 65536.0 <
        config_.texture_fraction) {
      const std::uint64_t pix =
          static_cast<std::uint64_t>(y) * config_.width + x;
      const std::uint64_t z = pixel_hash(config_.seed ^ 0xabcdu, pix);
      if ((z & 0xff) < 230) {  // ~90% of lanes inside the patch
        const int amp = 48 + static_cast<int>((z >> 16) & 0x1f);    // 48..79
        const int period = 7 + static_cast<int>((z >> 24) & 0x1f);  // 7..38
        const int phase = static_cast<int>((z >> 32) & 0xff);
        if ((t + phase) % period < (period + 1) / 2) v += amp;
      }
    }
  }

  if (config_.illumination_drift != 0.0) {
    v += config_.illumination_drift * std::sin(kTwoPi * t / 600.0);
  }
  return v;
}

void SyntheticScene::render(int t, FrameU8* frame, FrameU8* truth) const {
  MOG_CHECK(t >= 0, "frame index must be non-negative");
  if (frame != nullptr && !(frame->width() == config_.width &&
                            frame->height() == config_.height))
    *frame = FrameU8(config_.width, config_.height);
  if (truth != nullptr && !(truth->width() == config_.width &&
                            truth->height() == config_.height))
    *truth = FrameU8(config_.width, config_.height);
  if (truth != nullptr) truth->fill(0);

  // Object positions at time t (pure function of t).
  struct Placed {
    double cx, cy;
    const MovingObject* obj;
  };
  std::vector<Placed> placed;
  placed.reserve(objects_.size());
  for (const MovingObject& o : objects_) {
    Placed p{};
    p.cx = reflect(o.x0 + o.vx * t, o.half_w, config_.width - o.half_w);
    p.cy = reflect(o.y0 + o.vy * t, o.half_h, config_.height - o.half_h);
    p.obj = &o;
    placed.push_back(p);
  }

  for (int y = 0; y < config_.height; ++y) {
    for (int x = 0; x < config_.width; ++x) {
      const std::size_t pix =
          static_cast<std::size_t>(y) * config_.width + x;

      double v = background_value(x, y, t);
      bool is_fg = false;
      for (const Placed& p : placed) {
        const double dx = (x - p.cx) / p.obj->half_w;
        const double dy = (y - p.cy) / p.obj->half_h;
        const bool inside = p.obj->elliptical
                                ? (dx * dx + dy * dy <= 1.0)
                                : (std::abs(dx) <= 1.0 && std::abs(dy) <= 1.0);
        if (inside) {
          v = p.obj->intensity;
          is_fg = true;
        }
      }

      if (config_.noise_sd > 0.0)
        v += config_.noise_sd *
             hash_noise(config_.seed, static_cast<std::uint64_t>(t), pix);

      if (frame != nullptr) (*frame)[pix] = saturate_u8(v);
      if (truth != nullptr && is_fg) (*truth)[pix] = 255;
    }
  }
}

FrameU8 SyntheticScene::frame(int t) const {
  FrameU8 f;
  render(t, &f, nullptr);
  return f;
}

FrameU8 SyntheticScene::truth(int t) const {
  FrameU8 m;
  render(t, nullptr, &m);
  return m;
}

FrameU8 SyntheticScene::background_plate(int t) const {
  FrameU8 f(config_.width, config_.height);
  for (int y = 0; y < config_.height; ++y)
    for (int x = 0; x < config_.width; ++x)
      f.at(x, y) = saturate_u8(background_value(x, y, t));
  return f;
}

}  // namespace mog
