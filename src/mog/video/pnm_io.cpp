#include "mog/video/pnm_io.hpp"

#include <fstream>

#include "mog/common/strutil.hpp"

namespace mog {

void write_pgm(const std::string& path, const FrameU8& image) {
  MOG_CHECK(!image.empty(), "cannot write empty image");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error{"cannot open for writing: " + path};
  out << "P5\n" << image.width() << ' ' << image.height() << "\n255\n";
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  if (!out) throw Error{"write failed: " + path};
}

namespace {
// Skip whitespace and `#` comment lines between header tokens.
void skip_separators(std::istream& in) {
  while (true) {
    const int c = in.peek();
    if (c == '#') {
      std::string line;
      std::getline(in, line);
    } else if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      in.get();
    } else {
      return;
    }
  }
}

int read_header_int(std::istream& in, const std::string& path) {
  skip_separators(in);
  int v = 0;
  if (!(in >> v)) throw Error{"malformed PGM header: " + path};
  return v;
}
}  // namespace

FrameU8 read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error{"cannot open for reading: " + path};
  char magic[2] = {};
  in.read(magic, 2);
  if (!in || magic[0] != 'P' || magic[1] != '5')
    throw Error{"not a binary PGM (P5): " + path};

  const int width = read_header_int(in, path);
  const int height = read_header_int(in, path);
  const int maxval = read_header_int(in, path);
  if (width <= 0 || height <= 0 || maxval <= 0 || maxval > 255)
    throw Error{strprintf("unsupported PGM geometry %dx%d maxval=%d in %s",
                          width, height, maxval, path.c_str())};
  in.get();  // single whitespace byte after maxval

  FrameU8 image(width, height);
  in.read(reinterpret_cast<char*>(image.data()),
          static_cast<std::streamsize>(image.size()));
  if (!in) throw Error{"truncated PGM payload: " + path};
  return image;
}

}  // namespace mog
