#include "mog/video/pnm_io.hpp"

#include <fstream>

#include "mog/common/strutil.hpp"

namespace mog {

void write_pgm(const std::string& path, const FrameU8& image) {
  MOG_CHECK(!image.empty(), "cannot write empty image");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error{"cannot open for writing: " + path};
  out << "P5\n" << image.width() << ' ' << image.height() << "\n255\n";
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  if (!out) throw Error{"write failed: " + path};
}

namespace {

// Caps on accepted geometry: a malformed or hostile header must not drive a
// multi-gigabyte allocation. 16384² is far beyond any camera this pipeline
// targets (the paper's frames are full HD).
constexpr int kMaxDimension = 16384;
constexpr std::size_t kMaxPixels = std::size_t{1} << 28;  // 256 Mpixel

// Skip whitespace and `#` comment lines between header tokens.
void skip_separators(std::istream& in) {
  while (true) {
    const int c = in.peek();
    if (c == '#') {
      std::string line;
      std::getline(in, line);
    } else if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      in.get();
    } else {
      return;
    }
  }
}

int read_header_int(std::istream& in, const char* field,
                    const std::string& path) {
  skip_separators(in);
  // Reject signs explicitly: "-1" would otherwise parse and only be caught
  // as a range error, with a misleading message.
  const int first = in.peek();
  if (first == std::istream::traits_type::eof() || first < '0' || first > '9')
    throw Error{strprintf("malformed PGM header: %s is not a number in %s",
                          field, path.c_str())};
  int v = 0;
  if (!(in >> v))  // overflow sets failbit
    throw Error{strprintf("malformed PGM header: bad %s in %s", field,
                          path.c_str())};
  return v;
}

}  // namespace

FrameU8 read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error{"cannot open for reading: " + path};
  char magic[2] = {};
  in.read(magic, 2);
  if (!in || magic[0] != 'P' || magic[1] != '5')
    throw Error{"not a binary PGM (P5): " + path};

  const int width = read_header_int(in, "width", path);
  const int height = read_header_int(in, "height", path);
  const int maxval = read_header_int(in, "maxval", path);
  if (width <= 0 || height <= 0 || maxval <= 0 || maxval > 255)
    throw Error{strprintf("unsupported PGM geometry %dx%d maxval=%d in %s",
                          width, height, maxval, path.c_str())};
  if (width > kMaxDimension || height > kMaxDimension ||
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height) >
          kMaxPixels)
    throw Error{strprintf(
        "implausible PGM dimensions %dx%d in %s (limit %d per axis, %zu "
        "pixels total)",
        width, height, path.c_str(), kMaxDimension, kMaxPixels)};
  const int sep = in.get();  // single whitespace byte after maxval
  if (sep != ' ' && sep != '\t' && sep != '\r' && sep != '\n')
    throw Error{"malformed PGM header: missing whitespace after maxval in " +
                path};

  FrameU8 image(width, height);
  in.read(reinterpret_cast<char*>(image.data()),
          static_cast<std::streamsize>(image.size()));
  if (!in || static_cast<std::size_t>(in.gcount()) != image.size())
    throw Error{"truncated PGM payload: " + path};
  return image;
}

}  // namespace mog
