#include "mog/video/pnm_io.hpp"

#include <algorithm>
#include <fstream>

#include "mog/common/strutil.hpp"

namespace mog {

void write_pgm(const std::string& path, const FrameU8& image) {
  MOG_CHECK(!image.empty(), "cannot write empty image");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error{"cannot open for writing: " + path};
  out << "P5\n" << image.width() << ' ' << image.height() << "\n255\n";
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  if (!out) throw Error{"write failed: " + path};
}

namespace {

// Caps on accepted geometry: a malformed or hostile header must not drive a
// multi-gigabyte allocation. 16384² is far beyond any camera this pipeline
// targets (the paper's frames are full HD).
constexpr int kMaxDimension = 16384;
constexpr std::size_t kMaxPixels = std::size_t{1} << 28;  // 256 Mpixel

// Skip whitespace and `#` comment lines between header tokens.
void skip_separators(std::istream& in) {
  while (true) {
    const int c = in.peek();
    if (c == '#') {
      std::string line;
      std::getline(in, line);
    } else if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      in.get();
    } else {
      return;
    }
  }
}

int read_header_int(std::istream& in, const char* field,
                    const std::string& path) {
  skip_separators(in);
  // Reject signs explicitly: "-1" would otherwise parse and only be caught
  // as a range error, with a misleading message.
  const int first = in.peek();
  if (first == std::istream::traits_type::eof() || first < '0' || first > '9')
    throw Error{strprintf("malformed PGM header: %s is not a number in %s",
                          field, path.c_str())};
  int v = 0;
  if (!(in >> v))  // overflow sets failbit
    throw Error{strprintf("malformed PGM header: bad %s in %s", field,
                          path.c_str())};
  return v;
}

}  // namespace

FrameU8 read_pgm(std::istream& in, const std::string& name) {
  char magic[2] = {};
  in.read(magic, 2);
  if (!in || magic[0] != 'P' || magic[1] != '5')
    throw Error{"not a binary PGM (P5): " + name};
  // The magic must be its own token: "P51 1 255" is a corrupt header, not a
  // 1x1 image (corpus finding — the old parser silently accepted it).
  const int after_magic = in.peek();
  if (after_magic != ' ' && after_magic != '\t' && after_magic != '\r' &&
      after_magic != '\n' && after_magic != '#')
    throw Error{"malformed PGM header: no separator after magic in " + name};

  const int width = read_header_int(in, "width", name);
  const int height = read_header_int(in, "height", name);
  const int maxval = read_header_int(in, "maxval", name);
  if (width <= 0 || height <= 0 || maxval <= 0 || maxval > 255)
    throw Error{strprintf("unsupported PGM geometry %dx%d maxval=%d in %s",
                          width, height, maxval, name.c_str())};
  if (width > kMaxDimension || height > kMaxDimension ||
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height) >
          kMaxPixels)
    throw Error{strprintf(
        "implausible PGM dimensions %dx%d in %s (limit %d per axis, %zu "
        "pixels total)",
        width, height, name.c_str(), kMaxDimension, kMaxPixels)};
  const int sep = in.get();  // single whitespace byte after maxval
  if (sep != ' ' && sep != '\t' && sep != '\r' && sep != '\n')
    throw Error{"malformed PGM header: missing whitespace after maxval in " +
                name};

  FrameU8 image(width, height);
  in.read(reinterpret_cast<char*>(image.data()),
          static_cast<std::streamsize>(image.size()));
  if (!in || static_cast<std::size_t>(in.gcount()) != image.size())
    throw Error{"truncated PGM payload: " + name};
  if (maxval < 255) {
    // Spec: samples run 0..maxval; rescale so a maxval-15 image is not
    // uniformly near-black downstream (corpus finding).
    for (std::size_t i = 0; i < image.size(); ++i) {
      const int v = std::min<int>(image[i], maxval);  // clamp out-of-range
      image[i] = static_cast<std::uint8_t>((v * 255 + maxval / 2) / maxval);
    }
  }
  return image;
}

FrameU8 read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error{"cannot open for reading: " + path};
  return read_pgm(in, path);
}

}  // namespace mog
