// Binary PGM (P5) image I/O — used by the examples to dump frames,
// foreground masks, and background estimates in a format any viewer reads.
#pragma once

#include <string>

#include "mog/common/image.hpp"

namespace mog {

/// Write an 8-bit grayscale image as binary PGM. Throws mog::Error on I/O
/// failure.
void write_pgm(const std::string& path, const FrameU8& image);

/// Read a binary PGM (P5, maxval <= 255). Throws mog::Error on parse or I/O
/// failure.
FrameU8 read_pgm(const std::string& path);

}  // namespace mog
