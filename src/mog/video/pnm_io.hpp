// Binary PGM (P5) image I/O — used by the examples to dump frames,
// foreground masks, and background estimates in a format any viewer reads.
#pragma once

#include <iosfwd>
#include <string>

#include "mog/common/image.hpp"

namespace mog {

/// Write an 8-bit grayscale image as binary PGM. Throws mog::Error on I/O
/// failure.
void write_pgm(const std::string& path, const FrameU8& image);

/// Read a binary PGM (P5, maxval <= 255). Throws mog::Error on parse or I/O
/// failure. Samples with maxval < 255 are rescaled to full 8-bit range.
FrameU8 read_pgm(const std::string& path);

/// Same parser over an already-open stream — the seam the fuzz harness and
/// corpus tests use to feed arbitrary bytes without touching the
/// filesystem. `name` labels errors (a path or a synthetic tag).
FrameU8 read_pgm(std::istream& in, const std::string& name);

}  // namespace mog
