// Deterministic synthetic surveillance scene.
//
// Stands in for the paper's full-HD camera footage (not available): a static
// multi-modal background — the regime MoG is designed for (§III-A: "very
// good quality and efficiency in capturing multi-modal background scenes") —
// plus moving foreground objects with ground-truth masks.
//
// Every frame is a pure function of (config, frame index): pixels get their
// noise from a counter-based hash, so sequences are bit-reproducible, frames
// can be generated out of order, and no frame history is stored.
#pragma once

#include <cstdint>
#include <vector>

#include "mog/common/image.hpp"

namespace mog {

struct SceneConfig {
  int width = 320;
  int height = 180;
  std::uint64_t seed = 1;

  double noise_sd = 6.0;        ///< per-pixel sensor noise (σ, gray levels)
  int num_objects = 3;          ///< moving foreground objects
  double object_speed = 3.5;    ///< pixels/frame (scaled per object)

  bool flicker_regions = true;  ///< bimodal blinking areas (e.g. status LEDs)
  bool waving_region = true;    ///< smoothly oscillating area (foliage-like)
  double illumination_drift = 0.0;  ///< slow global brightness swing (levels)

  /// Fraction of pixels with independent bimodal temporal dynamics (foliage,
  /// water, specular shimmer): each such pixel square-waves between two
  /// intensity modes with its own period and phase. This is what makes real
  /// scenes *divergent* for SIMT execution — neighbouring pixels match
  /// different Gaussian components at any instant — and MoG's multi-modal
  /// modeling is exactly the mechanism that absorbs it.
  double texture_fraction = 0.90;

  void validate() const;

  // --- presets (named after classic background-subtraction test scenes) ----
  /// Highway overpass: many fast vehicles, light texture, strong noise.
  static SceneConfig highway(int width = 640, int height = 360,
                             std::uint64_t seed = 101);
  /// Indoor lobby: few slow subjects, clean background, flickering displays.
  static SceneConfig lobby(int width = 640, int height = 360,
                           std::uint64_t seed = 102);
  /// Parking lot in wind: heavy foliage-like texture, few moving objects.
  static SceneConfig waving_trees(int width = 640, int height = 360,
                                  std::uint64_t seed = 103);
};

class SyntheticScene {
 public:
  explicit SyntheticScene(const SceneConfig& config = {});

  int width() const { return config_.width; }
  int height() const { return config_.height; }
  const SceneConfig& config() const { return config_; }

  /// Render frame t (>= 0) and its ground-truth foreground mask
  /// (255 = object pixel). Either output may be null to skip it.
  void render(int t, FrameU8* frame, FrameU8* truth) const;

  FrameU8 frame(int t) const;
  FrameU8 truth(int t) const;

  /// Clean background plate at frame t (no noise, no objects) — useful as a
  /// reference for background-estimate quality metrics.
  FrameU8 background_plate(int t) const;

 private:
  struct MovingObject {
    double x0, y0;      // initial center
    double vx, vy;      // velocity, pixels/frame
    double half_w, half_h;
    std::uint8_t intensity;
    bool elliptical;
  };
  struct Region {
    int x, y, w, h;
  };

  double background_value(int x, int y, int t) const;
  static double reflect(double p, double lo, double hi);

  SceneConfig config_;
  std::vector<MovingObject> objects_;
  std::vector<Region> flicker_;
  Region waving_{};
};

}  // namespace mog
