// Pull-based encoded-byte sources feeding the ingest decoders.
//
// A ByteSource is the seam between "where encoded video comes from" (a file,
// a memory buffer, eventually a socket) and the parsers, which only ever see
// bytes. ByteReader adds the small buffered-cursor vocabulary the parsers
// share — peek/get/read_exact/read_line — plus a running consumed-byte
// count
// so decode telemetry can report compressed throughput.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "mog/ingest/ingest_error.hpp"

namespace mog::ingest {

/// Abstract pull source. read() fills up to `max` bytes and returns the
/// count; 0 means end of stream. Implementations throw IngestError
/// (kTruncated) only for genuine I/O failure, not for clean EOF.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  virtual std::size_t read(std::uint8_t* dst, std::size_t max) = 0;
};

/// In-memory source over an owned buffer (tests, fuzzers, MJPEG splits).
class MemorySource : public ByteSource {
 public:
  explicit MemorySource(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  std::size_t read(std::uint8_t* dst, std::size_t max) override {
    const std::size_t n = std::min(max, bytes_.size() - pos_);
    std::copy(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
              bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n), dst);
    pos_ += n;
    return n;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// File-backed source (the multicam --y4m/--mjpeg inputs).
class FileSource : public ByteSource {
 public:
  explicit FileSource(const std::string& path)
      : path_(path), in_(path, std::ios::binary) {
    if (!in_)
      throw IngestError{IngestErrorKind::kTruncated,
                        "cannot open for reading: " + path};
  }

  std::size_t read(std::uint8_t* dst, std::size_t max) override {
    in_.read(reinterpret_cast<char*>(dst),
             static_cast<std::streamsize>(max));
    const std::streamsize n = in_.gcount();
    if (n < 0 || (in_.bad()))
      throw IngestError{IngestErrorKind::kTruncated, "read failed: " + path_};
    return static_cast<std::size_t>(n);
  }

 private:
  std::string path_;
  std::ifstream in_;
};

/// Buffered cursor over a ByteSource: the byte-level vocabulary the Y4M and
/// MJPEG parsers share. All read_* methods throw kTruncated on premature end
/// of stream; eof() is only true once the source is exhausted *and* the
/// buffer is drained.
class ByteReader {
 public:
  explicit ByteReader(std::unique_ptr<ByteSource> source)
      : source_(std::move(source)) {
    MOG_CHECK(source_ != nullptr, "ByteReader needs a source");
  }

  /// Next byte without consuming it; -1 at end of stream.
  int peek() {
    if (pos_ == buf_.size() && !fill()) return -1;
    return buf_[pos_];
  }

  /// Consume and return the next byte; -1 at end of stream.
  int get() {
    const int c = peek();
    if (c >= 0) {
      ++pos_;
      ++consumed_;
    }
    return c;
  }

  /// Read exactly n bytes into dst or throw kTruncated (`what` names the
  /// structure being read, e.g. "Y4M frame payload").
  void read_exact(std::uint8_t* dst, std::size_t n, const char* what) {
    std::size_t done = 0;
    while (done < n) {
      if (pos_ == buf_.size() && !fill())
        throw IngestError{IngestErrorKind::kTruncated,
                          std::string{what} + " ended after " +
                              std::to_string(done) + " of " +
                              std::to_string(n) + " bytes"};
      const std::size_t take = std::min(n - done, buf_.size() - pos_);
      std::copy(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + take),
                dst + done);
      pos_ += take;
      consumed_ += take;
      done += take;
    }
  }

  /// Read bytes up to (and consuming) '\n', not including it. Throws
  /// kTruncated at end of stream and kBombCap past `max_len`.
  std::string read_line(std::size_t max_len, const char* what) {
    std::string line;
    while (true) {
      const int c = get();
      if (c < 0)
        throw IngestError{IngestErrorKind::kTruncated,
                          std::string{what} + " has no terminating newline"};
      if (c == '\n') return line;
      if (line.size() >= max_len)
        throw IngestError{IngestErrorKind::kBombCap,
                          std::string{what} + " exceeds " +
                              std::to_string(max_len) + " bytes"};
      line.push_back(static_cast<char>(c));
    }
  }

  bool eof() { return peek() < 0; }

  /// Total bytes consumed through this reader.
  std::uint64_t consumed() const { return consumed_; }

 private:
  bool fill() {
    buf_.resize(kChunk);
    const std::size_t n = source_->read(buf_.data(), kChunk);
    buf_.resize(n);
    pos_ = 0;
    return n > 0;
  }

  static constexpr std::size_t kChunk = 64 * 1024;
  std::unique_ptr<ByteSource> source_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  std::uint64_t consumed_ = 0;
};

}  // namespace mog::ingest
