#include "mog/ingest/mjpeg.hpp"

#include "mog/common/strutil.hpp"

namespace mog::ingest {

namespace {

constexpr std::size_t kChunk = 64 * 1024;
// A single MJPEG part larger than this is a bomb, not a camera frame: even
// a pathological 16384x16384 baseline JPEG stays far below it.
constexpr std::size_t kMaxPartBytes = std::size_t{64} << 20;

}  // namespace

std::optional<std::size_t> find_jpeg_span(
    std::span<const std::uint8_t> bytes) {
  std::size_t pos = 0;
  const auto need = [&](std::size_t n) { return pos + n <= bytes.size(); };

  if (!need(2)) return std::nullopt;
  if (bytes[0] != 0xFF || bytes[1] != 0xD8)
    throw IngestError{IngestErrorKind::kFormat,
                      "MJPEG part does not start with SOI"};
  pos = 2;

  while (true) {
    // Marker: optional fill 0xFF bytes, then the marker code.
    if (!need(1)) return std::nullopt;
    if (bytes[pos] != 0xFF)
      throw IngestError{
          IngestErrorKind::kFormat,
          strprintf("expected a marker at offset %zu, found byte 0x%02X",
                    pos, bytes[pos])};
    while (need(2) && bytes[pos + 1] == 0xFF) ++pos;
    if (!need(2)) return std::nullopt;
    const std::uint8_t m = bytes[pos + 1];
    pos += 2;

    if (m == 0xD9) return pos;                  // EOI: span complete
    if (m == 0x01 || (m >= 0xD0 && m <= 0xD7))  // standalone markers
      continue;
    if (m == 0xD8)
      throw IngestError{IngestErrorKind::kFormat,
                        "nested SOI inside an MJPEG part"};

    // Every other marker owns a length-prefixed segment.
    if (!need(2)) return std::nullopt;
    const std::size_t len =
        (static_cast<std::size_t>(bytes[pos]) << 8) | bytes[pos + 1];
    if (len < 2)
      throw IngestError{IngestErrorKind::kFormat,
                        strprintf("marker FF%02X with segment length %zu", m,
                                  len)};
    if (pos + len > bytes.size()) return std::nullopt;
    pos += len;

    if (m != 0xDA) continue;

    // Entropy-coded data after SOS: runs until a marker that is neither a
    // stuffed 0x00 nor a restart. (EOI bytes inside header segments never
    // reach this scanner — they were length-skipped above.)
    while (true) {
      if (!need(1)) return std::nullopt;
      if (bytes[pos] != 0xFF) {
        ++pos;
        continue;
      }
      if (!need(2)) return std::nullopt;
      const std::uint8_t em = bytes[pos + 1];
      if (em == 0x00 || (em >= 0xD0 && em <= 0xD7)) {
        pos += 2;
        continue;
      }
      if (em == 0xD9) return pos + 2;
      break;  // another structural marker (DNL, next scan): outer loop
    }
  }
}

bool MjpegReader::refill() {
  if (source_eof_) return false;
  const std::size_t old = buf_.size();
  buf_.resize(old + kChunk);
  const std::size_t n = source_->read(buf_.data() + old, kChunk);
  buf_.resize(old + n);
  if (n == 0) source_eof_ = true;
  return n > 0;
}

bool MjpegReader::next(FrameU8& out) {
  if (failed_)
    throw IngestError{IngestErrorKind::kFormat,
                      "MJPEG reader already failed; stream position is lost"};
  failed_ = true;

  // Inter-part padding: cameras pad parts with NUL bytes to alignment.
  while (true) {
    while (start_ < buf_.size() && buf_[start_] == 0x00) {
      ++start_;
      ++consumed_;
    }
    if (start_ < buf_.size()) break;
    if (!refill()) {
      failed_ = false;
      return false;  // clean end of stream
    }
  }

  // Grow the buffer until the part's full SOI..EOI span is visible.
  std::optional<std::size_t> span;
  while (true) {
    span = find_jpeg_span(
        std::span<const std::uint8_t>{buf_}.subspan(start_));
    if (span.has_value()) break;
    if (buf_.size() - start_ > kMaxPartBytes)
      throw IngestError{
          IngestErrorKind::kBombCap,
          strprintf("MJPEG part exceeds %zu bytes with no EOI",
                    kMaxPartBytes)};
    if (!refill())
      throw IngestError{IngestErrorKind::kTruncated,
                        "stream ended inside an MJPEG part"};
  }

  out = decode_jpeg_gray(
      std::span<const std::uint8_t>{buf_}.subspan(start_, *span));
  start_ += *span;
  consumed_ += *span;
  // Compact so a long stream does not retain every decoded part.
  if (start_ > kChunk) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(start_));
    start_ = 0;
  }
  failed_ = false;
  return true;
}

std::vector<std::uint8_t> encode_mjpeg(const std::vector<FrameU8>& frames,
                                       const JpegEncodeConfig& config) {
  std::vector<std::uint8_t> out;
  for (const FrameU8& f : frames) {
    const std::vector<std::uint8_t> part = encode_jpeg_gray(f, config);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

}  // namespace mog::ingest
