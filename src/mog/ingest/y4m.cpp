#include "mog/ingest/y4m.hpp"

#include "mog/common/strutil.hpp"

namespace mog::ingest {

namespace {

// Same geometry caps as the PGM reader: a hostile header must not drive a
// multi-gigabyte allocation.
constexpr int kMaxDimension = 16384;
constexpr std::size_t kMaxPixels = std::size_t{1} << 28;  // 256 Mpixel
constexpr std::size_t kMaxHeaderLine = 4096;

// Strict positive decimal parse for header parameters ("W640"). Rejects
// signs, empty strings, and trailing junk; overflow is a bomb-cap.
int parse_param_int(const std::string& text, const char* what) {
  if (text.empty())
    throw IngestError{IngestErrorKind::kFormat,
                      std::string{what} + " parameter is empty"};
  long v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9')
      throw IngestError{IngestErrorKind::kFormat,
                        std::string{what} + " parameter is not a number: " +
                            text};
    v = v * 10 + (c - '0');
    if (v > kMaxDimension * 1000L)
      throw IngestError{IngestErrorKind::kBombCap,
                        std::string{what} + " parameter overflows: " + text};
  }
  return static_cast<int>(v);
}

std::vector<std::string> split_params(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < line.size()) {
    std::size_t end = line.find(' ', start);
    if (end == std::string::npos) end = line.size();
    if (end > start) out.push_back(line.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

Y4mReader::Y4mReader(std::unique_ptr<ByteSource> source)
    : in_(std::move(source)) {
  static constexpr char kMagic[] = "YUV4MPEG2";
  for (const char m : std::string_view{kMagic}) {
    const int c = in_.get();
    if (c < 0)
      throw IngestError{IngestErrorKind::kTruncated,
                        "stream ended inside the YUV4MPEG2 magic"};
    if (c != m)
      throw IngestError{IngestErrorKind::kFormat, "not a YUV4MPEG2 stream"};
  }
  const int sep = in_.get();
  if (sep == '\n') {
    // Bare magic: no parameters at all — dimensions are mandatory.
    throw IngestError{IngestErrorKind::kFormat,
                      "Y4M header carries no parameters"};
  }
  if (sep != ' ')
    throw IngestError{IngestErrorKind::kFormat,
                      "Y4M magic not followed by a space"};

  const std::string line = in_.read_line(kMaxHeaderLine, "Y4M header");
  bool have_w = false, have_h = false;
  for (const std::string& param : split_params(line)) {
    const char tag = param[0];
    const std::string value = param.substr(1);
    switch (tag) {
      case 'W':
        header_.width = parse_param_int(value, "Y4M width");
        have_w = true;
        break;
      case 'H':
        header_.height = parse_param_int(value, "Y4M height");
        have_h = true;
        break;
      case 'F': {
        const std::size_t colon = value.find(':');
        if (colon == std::string::npos)
          throw IngestError{IngestErrorKind::kFormat,
                            "Y4M frame rate is not num:den: " + param};
        header_.fps_num =
            parse_param_int(value.substr(0, colon), "Y4M fps numerator");
        header_.fps_den =
            parse_param_int(value.substr(colon + 1), "Y4M fps denominator");
        if (header_.fps_num <= 0 || header_.fps_den <= 0)
          throw IngestError{IngestErrorKind::kFormat,
                            "Y4M frame rate must be positive: " + param};
        break;
      }
      case 'C':
        if (value == "420" || value == "420jpeg" || value == "420mpeg2")
          header_.colorspace = Y4mColorspace::k420;
        else if (value == "mono")
          header_.colorspace = Y4mColorspace::kMono;
        else
          throw IngestError{IngestErrorKind::kUnsupported,
                            "Y4M colorspace C" + value +
                                " (supported: C420, C420jpeg, C420mpeg2, "
                                "Cmono)"};
        break;
      case 'I':  // interlacing — grayscale conversion is field-agnostic
      case 'A':  // pixel aspect ratio
      case 'X':  // vendor extension
        break;
      default:
        throw IngestError{IngestErrorKind::kFormat,
                          "unknown Y4M header parameter: " + param};
    }
  }
  if (!have_w || !have_h)
    throw IngestError{IngestErrorKind::kFormat,
                      "Y4M header is missing W or H"};
  if (header_.width <= 0 || header_.height <= 0)
    throw IngestError{IngestErrorKind::kFormat,
                      strprintf("Y4M dimensions must be positive (got %dx%d)",
                                header_.width, header_.height)};
  if (header_.width > kMaxDimension || header_.height > kMaxDimension ||
      static_cast<std::size_t>(header_.width) *
              static_cast<std::size_t>(header_.height) >
          kMaxPixels)
    throw IngestError{
        IngestErrorKind::kBombCap,
        strprintf("implausible Y4M dimensions %dx%d (limit %d per axis, "
                  "%zu pixels total)",
                  header_.width, header_.height, kMaxDimension, kMaxPixels)};
  if (header_.colorspace == Y4mColorspace::k420 &&
      (header_.width % 2 != 0 || header_.height % 2 != 0))
    throw IngestError{
        IngestErrorKind::kUnsupported,
        strprintf("C420 needs even dimensions (got %dx%d)", header_.width,
                  header_.height)};
}

bool Y4mReader::next(FrameU8& out) {
  if (failed_)
    throw IngestError{IngestErrorKind::kFormat,
                      "Y4M reader already failed; stream position is lost"};
  if (in_.eof()) return false;

  // "FRAME" literal, optional parameters (ignored), newline.
  failed_ = true;  // re-armed only on a fully decoded frame
  static constexpr char kFrame[] = "FRAME";
  for (const char m : std::string_view{kFrame}) {
    const int c = in_.get();
    if (c < 0)
      throw IngestError{IngestErrorKind::kTruncated,
                        "stream ended inside a FRAME marker"};
    if (c != m)
      throw IngestError{IngestErrorKind::kFormat,
                        "expected FRAME marker between Y4M frames"};
  }
  const int sep = in_.get();
  if (sep != '\n') {
    if (sep != ' ')
      throw IngestError{IngestErrorKind::kFormat,
                        "FRAME marker not followed by space or newline"};
    in_.read_line(kMaxHeaderLine, "Y4M FRAME parameters");
  }

  FrameU8 frame(header_.width, header_.height);
  in_.read_exact(frame.data(), frame.size(), "Y4M luma plane");
  if (header_.colorspace == Y4mColorspace::k420) {
    // Chroma is decoded (consumed) but discarded: the pipeline is grayscale.
    const std::size_t chroma =
        static_cast<std::size_t>(header_.width / 2) * (header_.height / 2);
    chroma_scratch_.resize(chroma);
    in_.read_exact(chroma_scratch_.data(), chroma, "Y4M Cb plane");
    in_.read_exact(chroma_scratch_.data(), chroma, "Y4M Cr plane");
  }
  out = std::move(frame);
  failed_ = false;
  return true;
}

std::vector<FrameU8> decode_y4m(std::vector<std::uint8_t> bytes,
                                std::size_t max_frames) {
  Y4mReader reader{std::make_unique<MemorySource>(std::move(bytes))};
  std::vector<FrameU8> frames;
  FrameU8 f;
  while ((max_frames == 0 || frames.size() < max_frames) && reader.next(f))
    frames.push_back(std::move(f));
  return frames;
}

Y4mWriter::Y4mWriter(const std::string& path, const Y4mHeader& header)
    : path_(path), out_(path, std::ios::binary), header_(header) {
  MOG_CHECK(header.width > 0 && header.height > 0,
            "Y4M writer needs positive dimensions");
  MOG_CHECK(header.colorspace != Y4mColorspace::k420 ||
                (header.width % 2 == 0 && header.height % 2 == 0),
            "C420 needs even dimensions");
  MOG_CHECK(header.fps_num > 0 && header.fps_den > 0,
            "Y4M frame rate must be positive");
  if (!out_) throw Error{"cannot open for writing: " + path};
  out_ << "YUV4MPEG2 W" << header.width << " H" << header.height << " F"
       << header.fps_num << ':' << header.fps_den << " Ip A1:1 C"
       << (header.colorspace == Y4mColorspace::kMono ? "mono" : "420") << '\n';
  if (!out_) throw Error{"write failed: " + path};
}

void Y4mWriter::append(const FrameU8& frame) {
  MOG_CHECK(!closed_, "append to a closed Y4M writer");
  MOG_CHECK(frame.width() == header_.width &&
                frame.height() == header_.height,
            "frame shape does not match the Y4M header");
  out_ << "FRAME\n";
  out_.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
  if (header_.colorspace == Y4mColorspace::k420) {
    const std::size_t chroma =
        static_cast<std::size_t>(header_.width / 2) * (header_.height / 2);
    const std::vector<char> neutral(chroma, static_cast<char>(128));
    out_.write(neutral.data(), static_cast<std::streamsize>(chroma));
    out_.write(neutral.data(), static_cast<std::streamsize>(chroma));
  }
  if (!out_) throw Error{"write failed: " + path_};
}

void Y4mWriter::close() {
  if (closed_) return;
  closed_ = true;
  out_.close();
  if (out_.fail()) throw Error{"close failed: " + path_};
}

Y4mWriter::~Y4mWriter() {
  try {
    close();
  } catch (const Error&) {
    // Destructors must not throw; callers needing the verdict call close().
  }
}

}  // namespace mog::ingest
