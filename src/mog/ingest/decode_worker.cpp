#include "mog/ingest/decode_worker.hpp"

#include <chrono>

#include "mog/common/strutil.hpp"
#include "mog/ingest/ingest_error.hpp"
#include "mog/obs/frame_ticket.hpp"
#include "mog/obs/sampler.hpp"
#include "mog/telemetry/telemetry.hpp"

namespace mog::ingest {

DecodeWorker::DecodeWorker(std::unique_ptr<FrameReader> reader,
                           SubmitFn submit, DecodeWorkerConfig config)
    : reader_(std::move(reader)), submit_(std::move(submit)),
      config_(config) {
  MOG_CHECK(reader_ != nullptr, "DecodeWorker needs a FrameReader");
  MOG_CHECK(submit_ != nullptr, "DecodeWorker needs a submit function");
  MOG_CHECK(config_.fps > 0, "DecodeWorker fps must be positive");
}

DecodeWorker::~DecodeWorker() { stop(); }

void DecodeWorker::start() {
  std::lock_guard<std::mutex> lock(mu_);
  MOG_CHECK(!started_, "DecodeWorker already started");
  started_ = true;
  thread_ = std::thread([this] { run(); });
}

void DecodeWorker::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  join();
}

void DecodeWorker::join() {
  std::thread t;
  {
    std::lock_guard<std::mutex> lock(mu_);
    t = std::move(thread_);
  }
  if (t.joinable()) t.join();
}

bool DecodeWorker::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

DecodeStats DecodeWorker::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

bool DecodeWorker::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !error_.empty();
}

std::string DecodeWorker::error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

void DecodeWorker::run() {
  using clock = std::chrono::steady_clock;
  obs::prof_set_thread_name(
      strprintf("decode%d", config_.stream_id).c_str());
  std::uint64_t n = 0;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_requested_) break;
      if (config_.max_frames > 0 && n >= config_.max_frames) break;
    }

    FrameU8 frame;
    bool got = false;
    const auto t0 = clock::now();
    // Mint the ticket before decoding: the decode span is the first hop of
    // the frame's flow chain, ahead of queue admission.
    const std::uint64_t ticket = obs::mint_frame_ticket();
    try {
      const obs::ProfSpan decode_span{obs::ProfTag::kDecode};
      got = reader_->next(frame);
    } catch (const IngestError& e) {
      std::lock_guard<std::mutex> lock(mu_);
      error_ = e.what();
      log_.error("decode failed; stopping stream at frame boundary",
                 {{"stream", config_.stream_id},
                  {"frames_delivered",
                   static_cast<std::int64_t>(stats_.frames_decoded)},
                  {"error", e.what()}});
      break;
    }
    const double dt =
        std::chrono::duration<double>(clock::now() - t0).count();
    if (!got) break;  // clean end of stream

    if (telemetry::TraceRecorder* tr = telemetry::tracer()) {
      const std::int64_t end_us = tr->now_us();
      const std::int64_t dur_us =
          static_cast<std::int64_t>(1e6 * dt);
      tr->complete("decode", "ingest",
                   telemetry::TraceRecorder::kWallTrack, end_us - dur_us,
                   dur_us,
                   {{"stream", static_cast<double>(config_.stream_id)},
                    {"ticket", static_cast<double>(ticket)}});
      tr->flow_begin("frame", "serve.flow", ticket,
                     telemetry::TraceRecorder::kWallTrack, end_us);
    }

    const double arrival = static_cast<double>(n) / config_.fps;
    const bool accepted = submit_(std::move(frame), arrival, ticket);
    ++n;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.frames_decoded;
    if (!accepted) ++stats_.frames_rejected;
    stats_.bytes_consumed = reader_->bytes_consumed();
    stats_.decode_seconds += dt;
  }
  std::lock_guard<std::mutex> lock(mu_);
  stats_.bytes_consumed = reader_->bytes_consumed();
  done_ = true;
}

}  // namespace mog::ingest
