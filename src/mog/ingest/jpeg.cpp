#include "mog/ingest/jpeg.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include "mog/common/strutil.hpp"

namespace mog::ingest {
namespace {

constexpr int kMaxDimension = 16384;
constexpr std::size_t kMaxPixels = std::size_t{1} << 28;  // 256 Mpixel

// Zigzag scan position -> natural (row-major) coefficient index.
constexpr int kZigzag[64] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

// cos(k*pi/16) for k = 0..8 as literals: the DCT basis must not depend on
// the host libm (bit-identical decode output is a gated bench metric).
constexpr double kCos16[9] = {1.0,
                              0.98078528040323044913,
                              0.92387953251128675613,
                              0.83146961230254523708,
                              0.70710678118654752440,
                              0.55557023301960222474,
                              0.38268343236508977173,
                              0.19509032201612826785,
                              0.0};

// cos(a*pi/16) for any non-negative integer a, via symmetry.
constexpr double cos16(int a) {
  a %= 32;
  if (a <= 8) return kCos16[a];
  if (a <= 16) return -kCos16[16 - a];
  if (a <= 24) return -kCos16[a - 16];
  return kCos16[32 - a];
}

// Orthonormal 1-D DCT-II basis row u evaluated at sample x, scaled so that
// applying it along rows then columns yields the T.81 FDCT (and its exact
// inverse for the IDCT).
struct DctBasis {
  double fwd[8][8];  // fwd[u][x] = alpha(u) * cos((2x+1)u*pi/16)
  constexpr DctBasis() : fwd{} {
    for (int u = 0; u < 8; ++u)
      for (int x = 0; x < 8; ++x)
        fwd[u][x] = (u == 0 ? kCos16[4] / 2.0 : 0.5) * cos16((2 * x + 1) * u);
  }
};
constexpr DctBasis kDct;

void idct8x8(const double in[64], double out[64]) {
  double tmp[64];
  for (int y = 0; y < 8; ++y)       // rows: sum over u
    for (int x = 0; x < 8; ++x) {
      double s = 0;
      for (int u = 0; u < 8; ++u) s += kDct.fwd[u][x] * in[y * 8 + u];
      tmp[y * 8 + x] = s;
    }
  for (int x = 0; x < 8; ++x)       // columns: sum over v
    for (int y = 0; y < 8; ++y) {
      double s = 0;
      for (int v = 0; v < 8; ++v) s += kDct.fwd[v][y] * tmp[v * 8 + x];
      out[y * 8 + x] = s;
    }
}

void fdct8x8(const double in[64], double out[64]) {
  double tmp[64];
  for (int y = 0; y < 8; ++y)
    for (int u = 0; u < 8; ++u) {
      double s = 0;
      for (int x = 0; x < 8; ++x) s += kDct.fwd[u][x] * in[y * 8 + x];
      tmp[y * 8 + u] = s;
    }
  for (int u = 0; u < 8; ++u)
    for (int v = 0; v < 8; ++v) {
      double s = 0;
      for (int y = 0; y < 8; ++y) s += kDct.fwd[v][y] * tmp[y * 8 + u];
      out[v * 8 + u] = s;
    }
}

[[noreturn]] void fail(IngestErrorKind kind, const std::string& msg) {
  throw IngestError{kind, msg};
}

// Bounds-checked cursor over the whole JPEG byte span.
struct Cursor {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  std::uint8_t u8(const char* what) {
    if (pos >= bytes.size())
      fail(IngestErrorKind::kTruncated,
           std::string{"JPEG ended inside "} + what);
    return bytes[pos++];
  }
  int u16(const char* what) {
    const int hi = u8(what);
    const int lo = u8(what);
    return (hi << 8) | lo;
  }
  int peek() const { return pos < bytes.size() ? bytes[pos] : -1; }
  std::size_t remaining() const { return bytes.size() - pos; }
  void skip(std::size_t n, const char* what) {
    if (n > remaining())
      fail(IngestErrorKind::kTruncated,
           std::string{"JPEG ended inside "} + what);
    pos += n;
  }
};

// Canonical Huffman table (T.81 Annex C construction, F.2.2.3 decode).
struct HuffTable {
  bool present = false;
  int mincode[17] = {};
  int maxcode[17] = {};
  int valptr[17] = {};
  std::vector<std::uint8_t> values;

  void build(const std::uint8_t counts[16], std::vector<std::uint8_t> vals) {
    values = std::move(vals);
    int code = 0, k = 0;
    for (int l = 1; l <= 16; ++l) {
      const int n = counts[l - 1];
      valptr[l] = k;
      mincode[l] = code;
      code += n;
      if (code > (1 << l))
        fail(IngestErrorKind::kFormat, "oversubscribed Huffman table");
      maxcode[l] = n > 0 ? code - 1 : -1;
      k += n;
      code <<= 1;
    }
    present = true;
  }
};

struct Component {
  int id = 0;
  int h = 1, v = 1;   ///< sampling factors
  int tq = 0;         ///< quant table id
  int td = 0, ta = 0; ///< DC/AC Huffman table ids (from SOS)
  std::int32_t dc_pred = 0;
};

// Entropy-coded-segment bit reader: handles 0xFF00 stuffing, throws on a
// premature marker, byte-aligns at restart boundaries.
struct BitReader {
  Cursor& cur;
  std::uint8_t byte = 0;
  int bits_left = 0;

  explicit BitReader(Cursor& c) : cur(c) {}

  int next_bit() {
    if (bits_left == 0) {
      std::uint8_t b = cur.u8("entropy-coded data");
      if (b == 0xFF) {
        const std::uint8_t n = cur.u8("entropy-coded data");
        if (n != 0x00)
          fail(IngestErrorKind::kTruncated,
               strprintf("entropy-coded data ended early at marker FF%02X",
                         n));
      }
      byte = b;
      bits_left = 8;
    }
    --bits_left;
    return (byte >> bits_left) & 1;
  }

  int receive(int s) {
    int v = 0;
    for (int i = 0; i < s; ++i) v = (v << 1) | next_bit();
    return v;
  }

  void align() { bits_left = 0; }
};

int extend(int v, int s) {
  return (s > 0 && v < (1 << (s - 1))) ? v - (1 << s) + 1 : v;
}

int huff_decode(BitReader& br, const HuffTable& t) {
  int code = br.next_bit();
  for (int l = 1; l <= 16; ++l) {
    if (t.maxcode[l] >= 0 && code <= t.maxcode[l]) {
      const int idx = t.valptr[l] + code - t.mincode[l];
      MOG_ASSERT(idx >= 0 && idx < static_cast<int>(t.values.size()),
                 "Huffman value index out of range");
      return t.values[static_cast<std::size_t>(idx)];
    }
    code = (code << 1) | br.next_bit();
  }
  fail(IngestErrorKind::kFormat, "invalid Huffman code in scan data");
}

class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> bytes) : cur_{bytes} {}

  /// Full decode: marker walk, scan, EOI, trailing-garbage check.
  FrameU8 decode() {
    walk_markers(/*stop_at_sof=*/false);
    MOG_ASSERT(scan_done_, "walk_markers returned without a scan");
    expect_eoi();
    if (cur_.remaining() != 0)
      fail(IngestErrorKind::kFormat,
           strprintf("%zu trailing bytes after EOI", cur_.remaining()));
    return std::move(luma_);
  }

  JpegInfo probe() {
    walk_markers(/*stop_at_sof=*/true);
    return JpegInfo{width_, height_, ncomp_};
  }

 private:
  void walk_markers(bool stop_at_sof) {
    if (cur_.u8("SOI") != 0xFF || cur_.u8("SOI") != 0xD8)
      fail(IngestErrorKind::kFormat, "missing SOI marker (not a JPEG)");
    while (true) {
      std::uint8_t b = cur_.u8("marker");
      // 0xFF fill bytes before a marker are legal (B.1.1.2).
      while (b == 0xFF && cur_.peek() == 0xFF) b = cur_.u8("marker");
      if (b != 0xFF)
        fail(IngestErrorKind::kFormat,
             strprintf("expected a marker, found byte 0x%02X", b));
      const std::uint8_t m = cur_.u8("marker");
      switch (m) {
        case 0xD8:
          fail(IngestErrorKind::kFormat, "unexpected second SOI");
        case 0xD9:
          fail(IngestErrorKind::kFormat, "EOI before any scan data");
        case 0xC0:
          read_sof();
          if (stop_at_sof) return;
          break;
        case 0xC4:
          read_dht();
          break;
        case 0xCC:
          fail(IngestErrorKind::kUnsupported,
               "arithmetic coding conditioning (DAC)");
        case 0xC1: case 0xC2: case 0xC3: case 0xC5: case 0xC6: case 0xC7:
        case 0xC9: case 0xCA: case 0xCB: case 0xCD: case 0xCE: case 0xCF:
          fail(IngestErrorKind::kUnsupported,
               strprintf("SOF%d frame (only baseline SOF0 is supported)",
                         m & 0x0F));
        case 0xDB:
          read_dqt();
          break;
        case 0xDD: {
          if (cur_.u16("DRI length") != 4)
            fail(IngestErrorKind::kFormat, "DRI segment must have length 4");
          restart_interval_ = cur_.u16("DRI interval");
          break;
        }
        case 0xDA:
          read_sos_and_scan();
          return;
        case 0xFE:
          skip_segment("COM");
          break;
        default:
          if (m >= 0xE0 && m <= 0xEF) {
            skip_segment("APPn");
            break;
          }
          fail(IngestErrorKind::kFormat,
               strprintf("unexpected marker FF%02X in header", m));
      }
    }
  }

  std::size_t segment_end(const char* what) {
    const int len = cur_.u16(what);
    if (len < 2) fail(IngestErrorKind::kFormat,
                      std::string{what} + " segment length < 2");
    const std::size_t payload = static_cast<std::size_t>(len) - 2;
    if (payload > cur_.remaining())
      fail(IngestErrorKind::kTruncated,
           std::string{"JPEG ended inside "} + what);
    return cur_.pos + payload;
  }

  void skip_segment(const char* what) {
    cur_.pos = segment_end(what);
  }

  void read_dqt() {
    const std::size_t end = segment_end("DQT");
    while (cur_.pos < end) {
      const std::uint8_t pt = cur_.u8("DQT");
      const int pq = pt >> 4, tq = pt & 0x0F;
      if (pq == 1)
        fail(IngestErrorKind::kUnsupported, "16-bit quantization table");
      if (pq > 1) fail(IngestErrorKind::kFormat, "bad DQT precision");
      if (tq > 3) fail(IngestErrorKind::kFormat, "quant table id > 3");
      for (int k = 0; k < 64; ++k) {
        const std::uint8_t q = cur_.u8("DQT entries");
        if (q == 0)
          fail(IngestErrorKind::kFormat, "zero quantization table entry");
        qt_[tq][kZigzag[k]] = q;
      }
      qt_present_[tq] = true;
    }
    if (cur_.pos != end)
      fail(IngestErrorKind::kFormat, "DQT length does not match its tables");
  }

  void read_dht() {
    const std::size_t end = segment_end("DHT");
    while (cur_.pos < end) {
      const std::uint8_t tcth = cur_.u8("DHT");
      const int tc = tcth >> 4, th = tcth & 0x0F;
      if (tc > 1) fail(IngestErrorKind::kFormat, "Huffman table class > 1");
      if (th > 3) fail(IngestErrorKind::kFormat, "Huffman table id > 3");
      std::uint8_t counts[16];
      std::size_t total = 0;
      for (auto& c : counts) {
        c = cur_.u8("DHT code counts");
        total += c;
      }
      if (total == 0 || total > 256)
        fail(IngestErrorKind::kFormat,
             strprintf("Huffman table with %zu codes", total));
      std::vector<std::uint8_t> vals(total);
      for (auto& v : vals) v = cur_.u8("DHT values");
      (tc == 0 ? dc_[th] : ac_[th]).build(counts, std::move(vals));
    }
    if (cur_.pos != end)
      fail(IngestErrorKind::kFormat, "DHT length does not match its tables");
  }

  void read_sof() {
    if (have_sof_) fail(IngestErrorKind::kFormat, "duplicate SOF");
    const std::size_t end = segment_end("SOF0");
    if (cur_.u8("SOF0 precision") != 8)
      fail(IngestErrorKind::kUnsupported, "sample precision != 8 bits");
    height_ = cur_.u16("SOF0 height");
    width_ = cur_.u16("SOF0 width");
    if (width_ <= 0 || height_ <= 0)
      fail(IngestErrorKind::kFormat, "zero frame dimensions (DNL streams "
                                     "are not supported)");
    if (width_ > kMaxDimension || height_ > kMaxDimension ||
        static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_) >
            kMaxPixels)
      fail(IngestErrorKind::kBombCap,
           strprintf("implausible JPEG dimensions %dx%d (limit %d per axis, "
                     "%zu pixels total)",
                     width_, height_, kMaxDimension, kMaxPixels));
    ncomp_ = cur_.u8("SOF0 component count");
    if (ncomp_ == 4)
      fail(IngestErrorKind::kUnsupported, "4-component (CMYK) JPEG");
    if (ncomp_ != 1 && ncomp_ != 3)
      fail(IngestErrorKind::kFormat,
           strprintf("SOF0 declares %d components", ncomp_));
    max_h_ = max_v_ = 1;
    for (int c = 0; c < ncomp_; ++c) {
      comps_[c].id = cur_.u8("SOF0 component id");
      const std::uint8_t hv = cur_.u8("SOF0 sampling");
      comps_[c].h = hv >> 4;
      comps_[c].v = hv & 0x0F;
      if (comps_[c].h == 0 || comps_[c].v == 0)
        fail(IngestErrorKind::kFormat, "zero sampling factor");
      if (comps_[c].h > 2 || comps_[c].v > 2)
        fail(IngestErrorKind::kUnsupported,
             strprintf("sampling factor %dx%d (supported: <= 2)",
                       comps_[c].h, comps_[c].v));
      comps_[c].tq = cur_.u8("SOF0 quant selector");
      if (comps_[c].tq > 3)
        fail(IngestErrorKind::kFormat, "quant table selector > 3");
      max_h_ = std::max(max_h_, comps_[c].h);
      max_v_ = std::max(max_v_, comps_[c].v);
      for (int p = 0; p < c; ++p)
        if (comps_[p].id == comps_[c].id)
          fail(IngestErrorKind::kFormat, "duplicate component id in SOF0");
    }
    if (comps_[0].h != max_h_ || comps_[0].v != max_v_)
      fail(IngestErrorKind::kUnsupported,
           "luma component is not at maximum sampling");
    if (cur_.pos != end)
      fail(IngestErrorKind::kFormat, "SOF0 length does not match its payload");
    have_sof_ = true;
  }

  void read_sos_and_scan() {
    if (!have_sof_)
      fail(IngestErrorKind::kFormat, "SOS before SOF0");
    const std::size_t end = segment_end("SOS");
    const int ns = cur_.u8("SOS component count");
    if (ns != ncomp_)
      fail(IngestErrorKind::kUnsupported,
           strprintf("scan covers %d of %d components (multi-scan streams "
                     "are not supported)",
                     ns, ncomp_));
    for (int s = 0; s < ns; ++s) {
      const int cs = cur_.u8("SOS component selector");
      Component* comp = nullptr;
      for (int c = 0; c < ncomp_; ++c)
        if (comps_[c].id == cs) comp = &comps_[c];
      if (comp == nullptr)
        fail(IngestErrorKind::kFormat,
             strprintf("scan component id %d not declared in SOF0", cs));
      const std::uint8_t tdta = cur_.u8("SOS table selectors");
      comp->td = tdta >> 4;
      comp->ta = tdta & 0x0F;
      if (comp->td > 3 || comp->ta > 3)
        fail(IngestErrorKind::kFormat, "Huffman table selector > 3");
      if (!dc_[comp->td].present || !ac_[comp->ta].present)
        fail(IngestErrorKind::kFormat,
             "scan references an undefined Huffman table");
      if (!qt_present_[comp->tq])
        fail(IngestErrorKind::kFormat,
             "scan references an undefined quantization table");
    }
    const int ss = cur_.u8("SOS spectral start");
    const int se = cur_.u8("SOS spectral end");
    const int ahal = cur_.u8("SOS approximation");
    if (ss != 0 || se != 63 || ahal != 0)
      fail(IngestErrorKind::kFormat,
           "baseline scan must cover spectral band 0..63 with no "
           "approximation");
    if (cur_.pos != end)
      fail(IngestErrorKind::kFormat, "SOS length does not match its payload");
    decode_scan();
    scan_done_ = true;
  }

  void decode_scan() {
    luma_ = FrameU8(width_, height_);
    BitReader br{cur_};

    // Interleaved 3-component scans step in MCUs of max_h x max_v luma
    // blocks; a single-component scan is non-interleaved and its MCU is one
    // block (T.81 A.2).
    const bool interleaved = ncomp_ > 1;
    const int mcus_x = interleaved
                           ? (width_ + 8 * max_h_ - 1) / (8 * max_h_)
                           : (width_ + 7) / 8;
    const int mcus_y = interleaved
                           ? (height_ + 8 * max_v_ - 1) / (8 * max_v_)
                           : (height_ + 7) / 8;
    const std::int64_t total =
        static_cast<std::int64_t>(mcus_x) * mcus_y;

    int rst_index = 0;
    for (std::int64_t m = 0; m < total; ++m) {
      if (restart_interval_ > 0 && m > 0 && m % restart_interval_ == 0) {
        sync_restart(br, rst_index);
        rst_index = (rst_index + 1) & 7;
      }
      const int mx = static_cast<int>(m % mcus_x);
      const int my = static_cast<int>(m / mcus_x);
      if (!interleaved) {
        decode_block_to_luma(br, comps_[0], mx, my);
        continue;
      }
      for (int c = 0; c < ncomp_; ++c) {
        for (int by = 0; by < comps_[c].v; ++by)
          for (int bx = 0; bx < comps_[c].h; ++bx) {
            if (c == 0)
              decode_block_to_luma(br, comps_[0], mx * max_h_ + bx,
                                   my * max_v_ + by);
            else
              decode_block_discard(br, comps_[c]);
          }
      }
    }
  }

  /// Decode one entropy-coded block into natural-order coefficients.
  void decode_block(BitReader& br, Component& comp, std::int32_t blk[64]) {
    std::memset(blk, 0, 64 * sizeof(blk[0]));
    const int t = huff_decode(br, dc_[comp.td]);
    if (t > 11)
      fail(IngestErrorKind::kFormat,
           strprintf("DC category %d exceeds baseline maximum 11", t));
    const int diff = t > 0 ? extend(br.receive(t), t) : 0;
    comp.dc_pred = std::clamp(comp.dc_pred + diff, -(1 << 24), 1 << 24);
    blk[0] = comp.dc_pred;
    int k = 1;
    while (k < 64) {
      const int rs = huff_decode(br, ac_[comp.ta]);
      const int r = rs >> 4, s = rs & 0x0F;
      if (s == 0) {
        if (rs == 0x00) break;  // EOB
        if (rs == 0xF0) {       // ZRL
          k += 16;
          continue;
        }
        fail(IngestErrorKind::kFormat,
             strprintf("invalid AC run/size symbol 0x%02X", rs));
      }
      k += r;
      if (k > 63)
        fail(IngestErrorKind::kFormat,
             "AC coefficient index past the end of the block");
      blk[kZigzag[k]] = extend(br.receive(s), s);
      ++k;
    }
  }

  /// Block of the luma component at block coordinates (bx, by): dequantize,
  /// IDCT, level-shift, clip into the output frame.
  void decode_block_to_luma(BitReader& br, Component& comp, int bx, int by) {
    std::int32_t blk[64];
    decode_block(br, comp, blk);
    double coeff[64], pix[64];
    const std::uint8_t* qt = qt_[comp.tq];
    for (int i = 0; i < 64; ++i)
      coeff[i] = static_cast<double>(blk[i]) * qt[i];
    idct8x8(coeff, pix);
    const int x0 = bx * 8, y0 = by * 8;
    for (int y = 0; y < 8 && y0 + y < height_; ++y)
      for (int x = 0; x < 8 && x0 + x < width_; ++x)
        luma_.at(x0 + x, y0 + y) = saturate_u8(pix[y * 8 + x] + 128.0);
  }

  /// Chroma block: the bitstream must be consumed, the pixels are not.
  void decode_block_discard(BitReader& br, Component& comp) {
    std::int32_t blk[64];
    decode_block(br, comp, blk);
  }

  void sync_restart(BitReader& br, int expected) {
    br.align();
    std::uint8_t b = cur_.u8("restart marker");
    while (b == 0xFF && cur_.peek() == 0xFF) b = cur_.u8("restart marker");
    const std::uint8_t m = cur_.u8("restart marker");
    if (b != 0xFF || m != 0xD0 + expected)
      fail(IngestErrorKind::kFormat,
           strprintf("expected restart marker RST%d, found FF%02X", expected,
                     m));
    for (int c = 0; c < ncomp_; ++c) comps_[c].dc_pred = 0;
  }

  void expect_eoi() {
    std::uint8_t b = cur_.u8("EOI");
    while (b == 0xFF && cur_.peek() == 0xFF) b = cur_.u8("EOI");
    const std::uint8_t m = cur_.u8("EOI");
    if (b != 0xFF || m != 0xD9)
      fail(IngestErrorKind::kFormat,
           strprintf("expected EOI after scan data, found FF%02X", m));
  }

  Cursor cur_;
  std::uint8_t qt_[4][64] = {};
  bool qt_present_[4] = {};
  HuffTable dc_[4], ac_[4];
  Component comps_[3];
  int ncomp_ = 0;
  int width_ = 0, height_ = 0;
  int max_h_ = 1, max_v_ = 1;
  int restart_interval_ = 0;
  bool have_sof_ = false;
  bool scan_done_ = false;
  FrameU8 luma_;
};

// --- encoder -----------------------------------------------------------------

// Annex K.1 luminance quantization table (natural order).
constexpr std::uint8_t kBaseQuant[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

// Annex K.3 luminance DC table.
constexpr std::uint8_t kDcCounts[16] = {0, 1, 5, 1, 1, 1, 1, 1,
                                        1, 0, 0, 0, 0, 0, 0, 0};
constexpr std::uint8_t kDcValues[12] = {0, 1, 2, 3, 4,  5,
                                        6, 7, 8, 9, 10, 11};

// Annex K.3 luminance AC table.
constexpr std::uint8_t kAcCounts[16] = {0, 2, 1, 3, 3, 2, 4, 3,
                                        5, 5, 4, 4, 0, 0, 1, 0x7D};
constexpr std::uint8_t kAcValues[162] = {
    0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06,
    0x13, 0x51, 0x61, 0x07, 0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08,
    0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52, 0xD1, 0xF0, 0x24, 0x33, 0x62, 0x72,
    0x82, 0x09, 0x0A, 0x16, 0x17, 0x18, 0x19, 0x1A, 0x25, 0x26, 0x27, 0x28,
    0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3A, 0x43, 0x44, 0x45,
    0x46, 0x47, 0x48, 0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
    0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6A, 0x73, 0x74, 0x75,
    0x76, 0x77, 0x78, 0x79, 0x7A, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
    0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9A, 0xA2, 0xA3,
    0xA4, 0xA5, 0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6,
    0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9,
    0xCA, 0xD2, 0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2,
    0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA, 0xF1, 0xF2, 0xF3, 0xF4,
    0xF5, 0xF6, 0xF7, 0xF8, 0xF9, 0xFA};

/// Canonical code assignment for an encoder: symbol -> (code, length).
struct EncodeTable {
  std::uint16_t code[256] = {};
  std::uint8_t len[256] = {};

  EncodeTable(const std::uint8_t counts[16], const std::uint8_t* vals,
              std::size_t nvals) {
    int c = 0;
    std::size_t k = 0;
    for (int l = 1; l <= 16; ++l) {
      for (int i = 0; i < counts[l - 1]; ++i) {
        MOG_ASSERT(k < nvals, "Huffman spec count/value mismatch");
        code[vals[k]] = static_cast<std::uint16_t>(c);
        len[vals[k]] = static_cast<std::uint8_t>(l);
        ++c;
        ++k;
      }
      c <<= 1;
    }
  }
};

struct BitWriter {
  std::vector<std::uint8_t>& out;
  std::uint32_t acc = 0;
  int nbits = 0;

  void put(std::uint32_t bits, int n) {
    acc = (acc << n) | (bits & ((1u << n) - 1));
    nbits += n;
    while (nbits >= 8) {
      const std::uint8_t b =
          static_cast<std::uint8_t>((acc >> (nbits - 8)) & 0xFF);
      out.push_back(b);
      if (b == 0xFF) out.push_back(0x00);  // byte stuffing
      nbits -= 8;
    }
  }

  /// Pad with 1-bits to a byte boundary (B.2.1.1).
  void flush() {
    if (nbits > 0) put(0xFF, 8 - nbits);
  }
};

void put_u16(std::vector<std::uint8_t>& out, int v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void put_marker(std::vector<std::uint8_t>& out, std::uint8_t m) {
  out.push_back(0xFF);
  out.push_back(m);
}

int bit_category(int v) {
  int a = v < 0 ? -v : v, s = 0;
  while (a != 0) {
    a >>= 1;
    ++s;
  }
  return s;
}

class Encoder {
 public:
  Encoder(const FrameU8& frame, const JpegEncodeConfig& cfg)
      : frame_(frame), cfg_(cfg),
        dc_table_(kDcCounts, kDcValues, sizeof(kDcValues)),
        ac_table_(kAcCounts, kAcValues, sizeof(kAcValues)) {
    MOG_CHECK(cfg.quality >= 1 && cfg.quality <= 100,
              "JPEG quality must be in 1..100");
    MOG_CHECK(cfg.restart_interval >= 0 && cfg.restart_interval <= 0xFFFF,
              "restart interval must fit in 16 bits");
    MOG_CHECK(!frame.empty(), "cannot encode an empty frame");
    // libjpeg-style quality scaling of the Annex K table.
    const int sf =
        cfg.quality < 50 ? 5000 / cfg.quality : 200 - 2 * cfg.quality;
    for (int i = 0; i < 64; ++i)
      quant_[i] = static_cast<std::uint8_t>(
          std::clamp((kBaseQuant[i] * sf + 50) / 100, 1, 255));
  }

  std::vector<std::uint8_t> encode() {
    std::vector<std::uint8_t> out;
    put_marker(out, 0xD8);  // SOI
    emit_app0(out);
    emit_dqt(out);
    emit_sof0(out);
    emit_dht(out);
    if (cfg_.restart_interval > 0) {
      put_marker(out, 0xDD);
      put_u16(out, 4);
      put_u16(out, cfg_.restart_interval);
    }
    emit_sos(out);
    emit_scan(out);
    put_marker(out, 0xD9);  // EOI
    return out;
  }

 private:
  void emit_app0(std::vector<std::uint8_t>& out) {
    put_marker(out, 0xE0);
    put_u16(out, 16);
    const char jfif[5] = {'J', 'F', 'I', 'F', '\0'};
    out.insert(out.end(), jfif, jfif + 5);
    out.push_back(1);  // version 1.1
    out.push_back(1);
    out.push_back(0);  // no density units
    put_u16(out, 1);
    put_u16(out, 1);
    out.push_back(0);  // no thumbnail
    out.push_back(0);
  }

  void emit_dqt(std::vector<std::uint8_t>& out) {
    put_marker(out, 0xDB);
    put_u16(out, 2 + 1 + 64);
    out.push_back(0x00);  // 8-bit, table 0
    for (int k = 0; k < 64; ++k) out.push_back(quant_[kZigzag[k]]);
  }

  void emit_sof0(std::vector<std::uint8_t>& out) {
    const int ncomp = cfg_.ycbcr420 ? 3 : 1;
    put_marker(out, 0xC0);
    put_u16(out, 8 + 3 * ncomp);
    out.push_back(8);  // precision
    put_u16(out, frame_.height());
    put_u16(out, frame_.width());
    out.push_back(static_cast<std::uint8_t>(ncomp));
    out.push_back(1);  // Y
    out.push_back(cfg_.ycbcr420 ? 0x22 : 0x11);
    out.push_back(0);
    if (cfg_.ycbcr420) {
      for (std::uint8_t id : {std::uint8_t{2}, std::uint8_t{3}}) {
        out.push_back(id);
        out.push_back(0x11);
        out.push_back(0);  // chroma shares the luminance quant table
      }
    }
  }

  void emit_dht(std::vector<std::uint8_t>& out) {
    put_marker(out, 0xC4);
    put_u16(out, 2 + (1 + 16 + sizeof(kDcValues)) +
                     (1 + 16 + sizeof(kAcValues)));
    out.push_back(0x00);  // DC table 0
    out.insert(out.end(), kDcCounts, kDcCounts + 16);
    out.insert(out.end(), kDcValues, kDcValues + sizeof(kDcValues));
    out.push_back(0x10);  // AC table 0
    out.insert(out.end(), kAcCounts, kAcCounts + 16);
    out.insert(out.end(), kAcValues, kAcValues + sizeof(kAcValues));
  }

  void emit_sos(std::vector<std::uint8_t>& out) {
    const int ncomp = cfg_.ycbcr420 ? 3 : 1;
    put_marker(out, 0xDA);
    put_u16(out, 6 + 2 * ncomp);
    out.push_back(static_cast<std::uint8_t>(ncomp));
    for (int c = 0; c < ncomp; ++c) {
      out.push_back(static_cast<std::uint8_t>(c + 1));
      out.push_back(0x00);  // DC/AC table 0
    }
    out.push_back(0);   // Ss
    out.push_back(63);  // Se
    out.push_back(0);   // Ah/Al
  }

  /// FDCT + quantize one 8x8 block whose top-left pixel is (x0, y0); pixels
  /// outside the frame replicate the nearest edge pixel.
  void quantized_block(int x0, int y0, std::int32_t out_blk[64]) const {
    double pix[64], coeff[64];
    for (int y = 0; y < 8; ++y)
      for (int x = 0; x < 8; ++x) {
        const int sx = std::min(x0 + x, frame_.width() - 1);
        const int sy = std::min(y0 + y, frame_.height() - 1);
        pix[y * 8 + x] = static_cast<double>(frame_.at(sx, sy)) - 128.0;
      }
    fdct8x8(pix, coeff);
    for (int i = 0; i < 64; ++i) {
      const double q = coeff[i] / quant_[i];
      out_blk[i] = static_cast<std::int32_t>(q >= 0 ? q + 0.5 : q - 0.5);
    }
  }

  void encode_block(BitWriter& bw, const std::int32_t blk[64],
                    std::int32_t& dc_pred) const {
    const int diff = blk[0] - dc_pred;
    dc_pred = blk[0];
    const int s = bit_category(diff);
    put_symbol(bw, dc_table_, s);
    if (s > 0)
      bw.put(static_cast<std::uint32_t>(diff < 0 ? diff + (1 << s) - 1
                                                 : diff),
             s);
    int run = 0;
    for (int k = 1; k < 64; ++k) {
      const std::int32_t v = blk[kZigzag[k]];
      if (v == 0) {
        ++run;
        continue;
      }
      while (run > 15) {
        put_symbol(bw, ac_table_, 0xF0);  // ZRL
        run -= 16;
      }
      const int sz = bit_category(v);
      MOG_ASSERT(sz <= 10, "AC coefficient out of 8-bit baseline range");
      put_symbol(bw, ac_table_, (run << 4) | sz);
      bw.put(static_cast<std::uint32_t>(v < 0 ? v + (1 << sz) - 1 : v), sz);
      run = 0;
    }
    if (run > 0) put_symbol(bw, ac_table_, 0x00);  // EOB
  }

  /// All-zero coefficient block (the neutral-chroma planes).
  void encode_zero_block(BitWriter& bw, std::int32_t& dc_pred) const {
    const int diff = 0 - dc_pred;
    dc_pred = 0;
    const int s = bit_category(diff);
    put_symbol(bw, dc_table_, s);
    if (s > 0)
      bw.put(static_cast<std::uint32_t>(diff < 0 ? diff + (1 << s) - 1
                                                 : diff),
             s);
    put_symbol(bw, ac_table_, 0x00);  // EOB
  }

  static void put_symbol(BitWriter& bw, const EncodeTable& t, int symbol) {
    MOG_ASSERT(t.len[symbol] > 0, "symbol missing from Huffman table");
    bw.put(t.code[symbol], t.len[symbol]);
  }

  void emit_scan(std::vector<std::uint8_t>& out) {
    BitWriter bw{out};
    const int w = frame_.width(), h = frame_.height();
    const int mcu_span = cfg_.ycbcr420 ? 16 : 8;
    const int mcus_x = (w + mcu_span - 1) / mcu_span;
    const int mcus_y = (h + mcu_span - 1) / mcu_span;
    std::int32_t dc_y = 0, dc_cb = 0, dc_cr = 0;
    int rst_index = 0;
    std::int64_t m = 0;
    for (int my = 0; my < mcus_y; ++my)
      for (int mx = 0; mx < mcus_x; ++mx, ++m) {
        if (cfg_.restart_interval > 0 && m > 0 &&
            m % cfg_.restart_interval == 0) {
          bw.flush();
          put_marker(out, static_cast<std::uint8_t>(0xD0 + rst_index));
          rst_index = (rst_index + 1) & 7;
          dc_y = dc_cb = dc_cr = 0;
        }
        std::int32_t blk[64];
        if (!cfg_.ycbcr420) {
          quantized_block(mx * 8, my * 8, blk);
          encode_block(bw, blk, dc_y);
          continue;
        }
        for (int by = 0; by < 2; ++by)
          for (int bx = 0; bx < 2; ++bx) {
            quantized_block((mx * 2 + bx) * 8, (my * 2 + by) * 8, blk);
            encode_block(bw, blk, dc_y);
          }
        encode_zero_block(bw, dc_cb);
        encode_zero_block(bw, dc_cr);
      }
    bw.flush();
  }

  const FrameU8& frame_;
  JpegEncodeConfig cfg_;
  std::uint8_t quant_[64] = {};
  EncodeTable dc_table_;
  EncodeTable ac_table_;
};

}  // namespace

FrameU8 decode_jpeg_gray(std::span<const std::uint8_t> bytes) {
  return Decoder{bytes}.decode();
}

JpegInfo probe_jpeg(std::span<const std::uint8_t> bytes) {
  return Decoder{bytes}.probe();
}

std::vector<std::uint8_t> encode_jpeg_gray(const FrameU8& frame,
                                           const JpegEncodeConfig& config) {
  return Encoder{frame, config}.encode();
}

}  // namespace mog::ingest
