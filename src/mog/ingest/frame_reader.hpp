// Decoder-facing interface of the ingestion front end.
//
// A FrameReader turns a stream of encoded bytes into decoded grayscale
// frames, one next() at a time. Implementations (Y4mReader, MjpegReader)
// throw IngestError on malformed input and never hand out a partial frame:
// next() either returns a complete frame, returns false at a clean end of
// stream, or throws.
#pragma once

#include <cstdint>

#include "mog/common/image.hpp"

namespace mog::ingest {

class FrameReader {
 public:
  virtual ~FrameReader() = default;

  /// Decode the next frame into `out`. Returns false at a clean end of
  /// stream (out untouched); throws IngestError on malformed input.
  virtual bool next(FrameU8& out) = 0;

  /// Compressed bytes consumed so far (decode-throughput telemetry).
  virtual std::uint64_t bytes_consumed() const = 0;
};

}  // namespace mog::ingest
