// Baseline-sequential JPEG (ITU-T T.81) decoder and grayscale encoder.
//
// Decoder: a strict SOI → {APPn, COM, DQT, DHT, DRI, SOF0, SOS} → EOI
// marker
// walk, canonical Huffman entropy decode with 0xFF00 byte-stuffing and
// RST0-7 restart markers, dequantization, and a separable 8×8 IDCT. The
// pipeline consumes grayscale, so only the luma component is reconstructed
// to pixels; chroma blocks are still entropy-decoded (the bitstream cannot
// be skipped) and then discarded. Supported subset: 8-bit precision, 1 or 3
// components, sampling factors ≤ 2 with the luma component at the maximum
// (covers 4:4:4, 4:2:2, 4:2:0 and grayscale); everything else — progressive
// (SOF2), arithmetic coding, 12-bit, 16-bit DQT, 4-component CMYK — is a
// typed kUnsupported, never a crash. The DCT basis uses literal constants
// (not std::cos), so decode output is bit-deterministic across libm
// versions — a property the bench baselines gate.
//
// Encoder: baseline grayscale (or YCbCr 4:2:0 with neutral chroma) with the
// Annex K example tables, used to generate golden fixtures and the fuzz
// seed corpus from synthetic scenes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mog/common/image.hpp"
#include "mog/ingest/ingest_error.hpp"

namespace mog::ingest {

/// Decode a complete baseline JPEG into a grayscale frame. Throws
/// IngestError on malformed/unsupported/truncated input and on trailing
/// garbage after EOI (an MJPEG splitter hands in exact SOI..EOI spans).
FrameU8 decode_jpeg_gray(std::span<const std::uint8_t> bytes);

/// Geometry probe: walks markers up to SOF0 only (no entropy decode).
struct JpegInfo {
  int width = 0;
  int height = 0;
  int components = 0;
};
JpegInfo probe_jpeg(std::span<const std::uint8_t> bytes);

struct JpegEncodeConfig {
  int quality = 90;          ///< 1..100, libjpeg-style quant scaling
  int restart_interval = 0;  ///< MCUs between RSTn markers; 0 = none
  /// Encode as 3-component YCbCr 4:2:0 with neutral chroma instead of a
  /// single-component grayscale scan (exercises the interleaved-MCU decode
  /// path; the decoded grayscale output is identical).
  bool ycbcr420 = false;
};

/// Encode a grayscale frame as baseline JPEG.
std::vector<std::uint8_t> encode_jpeg_gray(const FrameU8& frame,
                                           const JpegEncodeConfig& config = {});

}  // namespace mog::ingest
