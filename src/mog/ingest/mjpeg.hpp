// MJPEG stream splitter: a byte stream of concatenated baseline JPEGs,
// the wire format of IP-camera `multipart/x-mixed-replace` feeds once the
// HTTP part headers are stripped.
//
// Splitting cannot just search for the next FFD9: EOI's byte pattern may
// legally appear inside APPn/COM segment payloads. find_jpeg_span() therefore
// walks the marker structure — length-skipping header segments and scanning
// entropy-coded data for a non-stuffed, non-restart marker — which is exactly
// how production decode stacks delimit MJPEG parts. Padding bytes between
// parts are tolerated (cameras pad to alignment); anything else between
// frames is a typed kFormat error.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "mog/common/image.hpp"
#include "mog/ingest/byte_source.hpp"
#include "mog/ingest/frame_reader.hpp"
#include "mog/ingest/jpeg.hpp"

namespace mog::ingest {

/// Length in bytes of the complete JPEG (SOI..EOI inclusive) at the start
/// of `bytes`, or nullopt when the stream is structurally a JPEG prefix but
/// more bytes are needed. Throws IngestError when the bytes cannot be a
/// baseline JPEG at all.
std::optional<std::size_t> find_jpeg_span(std::span<const std::uint8_t> bytes);

class MjpegReader : public FrameReader {
 public:
  explicit MjpegReader(std::unique_ptr<ByteSource> source)
      : source_(std::move(source)) {
    MOG_CHECK(source_ != nullptr, "MjpegReader needs a source");
  }

  bool next(FrameU8& out) override;
  std::uint64_t bytes_consumed() const override { return consumed_; }

 private:
  bool refill();

  std::unique_ptr<ByteSource> source_;
  std::vector<std::uint8_t> buf_;
  std::size_t start_ = 0;  ///< parse position within buf_
  std::uint64_t consumed_ = 0;
  bool source_eof_ = false;
  bool failed_ = false;
};

/// Concatenate frames into an MJPEG stream (fixture generation).
std::vector<std::uint8_t> encode_mjpeg(const std::vector<FrameU8>& frames,
                                       const JpegEncodeConfig& config = {});

}  // namespace mog::ingest
