// YUV4MPEG2 (Y4M) stream reader and writer.
//
// Y4M is the uncompressed interchange format every decode tool speaks
// (`ffmpeg -f yuv4mpeg`, mjpegtools): one ASCII header line, then per frame
// a "FRAME" line followed by raw planes. We support C420 / C420jpeg /
// C420mpeg2 (identical plane layout; the tags differ only in chroma siting,
// which grayscale conversion ignores) and Cmono. The pipeline is grayscale,
// so conversion is plane extraction: the Y plane *is* the frame, chroma is
// skipped — which also makes the Y4M path bit-lossless, the property the
// round-trip fidelity tests lean on.
//
// All malformed input surfaces as typed IngestError (see ingest_error.hpp);
// a reader that has thrown stays in a failed state and keeps throwing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mog/common/image.hpp"
#include "mog/ingest/byte_source.hpp"
#include "mog/ingest/frame_reader.hpp"

namespace mog::ingest {

enum class Y4mColorspace {
  k420,      ///< C420, C420jpeg, C420mpeg2 — 4:2:0 planar
  kMono,     ///< Cmono — luma plane only
};

struct Y4mHeader {
  int width = 0;
  int height = 0;
  int fps_num = 30;  ///< frame rate as F<num>:<den>; default 30:1
  int fps_den = 1;
  Y4mColorspace colorspace = Y4mColorspace::k420;

  double fps() const { return static_cast<double>(fps_num) / fps_den; }
};

class Y4mReader : public FrameReader {
 public:
  /// Parses the stream header eagerly (throws IngestError on a bad one).
  explicit Y4mReader(std::unique_ptr<ByteSource> source);

  const Y4mHeader& header() const { return header_; }

  bool next(FrameU8& out) override;
  std::uint64_t bytes_consumed() const override { return in_.consumed(); }

 private:
  ByteReader in_;
  Y4mHeader header_;
  std::vector<std::uint8_t> chroma_scratch_;
  bool failed_ = false;
};

/// Decode every frame of an in-memory Y4M stream (tests, corpus replay).
/// `max_frames` caps the output (0 = unlimited).
std::vector<FrameU8> decode_y4m(std::vector<std::uint8_t> bytes,
                                std::size_t max_frames = 0);

/// Streaming Y4M writer (fixture generation). Grayscale frames are written
/// as the Y plane; C420 emits neutral chroma (128), which the reader skips,
/// so both colorspaces round-trip grayscale bit-exactly.
class Y4mWriter {
 public:
  Y4mWriter(const std::string& path, const Y4mHeader& header);

  void append(const FrameU8& frame);
  void close();  ///< flush + close; throws on I/O failure. Idempotent.
  ~Y4mWriter();

 private:
  std::string path_;
  std::ofstream out_;
  Y4mHeader header_;
  bool closed_ = false;
};

}  // namespace mog::ingest
