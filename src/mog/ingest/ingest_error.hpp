// Typed errors for the encoded-video ingestion front end.
//
// Every parser in src/mog/ingest/ converts hostile or broken input into an
// IngestError carrying a machine-checkable kind — the same discipline as the
// model loader's ModelIoError hierarchy: callers can branch on kind(), tests
// can assert the exact failure class, and no decoder ever returns a partial
// frame alongside an error.
#pragma once

#include <string>

#include "mog/common/error.hpp"

namespace mog::ingest {

enum class IngestErrorKind {
  kFormat,      ///< structurally invalid bytes (bad magic, bad marker, ...)
  kTruncated,   ///< input ended before a complete header/frame
  kUnsupported, ///< valid but outside the supported baseline subset
  kBombCap,     ///< header requests implausible geometry / allocation
};

const char* to_string(IngestErrorKind kind);

class IngestError : public Error {
 public:
  IngestError(IngestErrorKind kind, const std::string& what)
      : Error(std::string{to_string(kind)} + ": " + what), kind_(kind) {}

  IngestErrorKind kind() const { return kind_; }

 private:
  IngestErrorKind kind_;
};

inline const char* to_string(IngestErrorKind kind) {
  switch (kind) {
    case IngestErrorKind::kFormat: return "ingest format error";
    case IngestErrorKind::kTruncated: return "ingest truncated input";
    case IngestErrorKind::kUnsupported: return "ingest unsupported input";
    case IngestErrorKind::kBombCap: return "ingest bomb cap exceeded";
  }
  return "ingest error";
}

}  // namespace mog::ingest
