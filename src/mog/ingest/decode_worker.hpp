// Per-stream decode worker: the bridge from encoded bytes to the serving
// layer's bounded ingress queues.
//
// Each camera stream gets one DecodeWorker owning a FrameReader (Y4M or
// MJPEG over a ByteSource). The worker thread pulls and decodes frames *off
// the scheduler's pump thread*, mints the frame's obs trace ticket at decode
// start, emits a wall-clock "decode" span carrying that ticket as the first
// hop of the frame's flow chain, and submits the decoded frame through the
// caller-supplied SubmitFn — in practice StreamServer::submit or
// DeviceFleet::submit with the pre-minted ticket, which lands the frame in
// the stream's existing BoundedFrameQueue. Everything downstream —
// backpressure, admission control, CPU degradation, fleet failover — applies
// unchanged, because by the queue the frame is indistinguishable from a
// synthetic one.
//
// Error policy mirrors the parsers: a typed IngestError stops the worker at
// the frame boundary — every frame submitted before the error is complete,
// and no partial frame is ever delivered downstream. The error is kept for
// the owner (error()/failed()) and logged.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "mog/common/image.hpp"
#include "mog/ingest/frame_reader.hpp"
#include "mog/obs/log.hpp"

namespace mog::ingest {

/// Delivery seam into the serving layer. Must be thread-safe (it is called
/// from the worker thread); returns false when the queue's drop policy
/// refused the frame.
using SubmitFn =
    std::function<bool(FrameU8 frame, double arrival_seconds,
                       std::uint64_t ticket)>;

struct DecodeWorkerConfig {
  double fps = 30.0;          ///< modeled camera cadence (arrival stamps)
  std::uint64_t max_frames = 0;  ///< stop after N frames; 0 = whole stream
  int stream_id = 0;          ///< serving-layer stream id (telemetry label)
};

struct DecodeStats {
  std::uint64_t frames_decoded = 0;   ///< complete frames handed to SubmitFn
  std::uint64_t frames_rejected = 0;  ///< refused by the queue's drop policy
  std::uint64_t bytes_consumed = 0;   ///< compressed bytes pulled
  double decode_seconds = 0;          ///< wall-clock time inside the decoder

  bool operator==(const DecodeStats&) const = default;
};

class DecodeWorker {
 public:
  DecodeWorker(std::unique_ptr<FrameReader> reader, SubmitFn submit,
               DecodeWorkerConfig config = {});
  ~DecodeWorker();  ///< stops and joins

  DecodeWorker(const DecodeWorker&) = delete;
  DecodeWorker& operator=(const DecodeWorker&) = delete;

  /// Spawn the worker thread. May be called once.
  void start();

  /// Ask the worker to stop at the next frame boundary, then join it.
  void stop();

  /// Block until the stream is exhausted (or failed) and the thread exited.
  void join();

  /// True once the thread has exited (join() will not block).
  bool done() const;

  DecodeStats stats() const;

  bool failed() const;
  std::string error() const;  ///< empty when !failed()

 private:
  void run();

  std::unique_ptr<FrameReader> reader_;
  SubmitFn submit_;
  DecodeWorkerConfig config_;
  obs::ScopedLogger log_{"ingest"};

  mutable std::mutex mu_;
  std::thread thread_;
  bool started_ = false;
  bool stop_requested_ = false;
  bool done_ = false;
  DecodeStats stats_;
  std::string error_;
};

}  // namespace mog::ingest
