#include "mog/pipeline/experiment.hpp"

#include <cmath>
#include <deque>

#include "mog/common/strutil.hpp"
#include "mog/cpu/serial_mog.hpp"
#include "mog/gpusim/transfer_model.hpp"
#include "mog/metrics/ssim.hpp"
#include "mog/pipeline/gpu_pipeline.hpp"
#include "mog/video/scene.hpp"

namespace mog {

std::string ExperimentConfig::label() const {
  std::string s = tiled ? strprintf("Tiled(g=%d)", tiled_config.frame_group)
                        : kernels::to_string(level);
  // G implies postproc; below G an enabled postproc is worth calling out.
  if (postproc.enabled && !kernels::uses_fused_postproc(level)) s += "+pp";
  s += strprintf(" K=%d %s", params.num_components,
                 precision == Precision::kDouble ? "double" : "float");
  return s;
}

gpusim::KernelStats scale_stats(const gpusim::KernelStats& stats,
                                double ratio) {
  auto sc = [ratio](std::uint64_t v) {
    return static_cast<std::uint64_t>(std::llround(
        static_cast<double>(v) * ratio));
  };
  gpusim::KernelStats s = stats;
  s.load_instructions = sc(s.load_instructions);
  s.store_instructions = sc(s.store_instructions);
  s.load_transactions = sc(s.load_transactions);
  s.store_transactions = sc(s.store_transactions);
  s.rmw_transactions = sc(s.rmw_transactions);
  s.bytes_requested_load = sc(s.bytes_requested_load);
  s.bytes_requested_store = sc(s.bytes_requested_store);
  s.bytes_transferred_load = sc(s.bytes_transferred_load);
  s.bytes_transferred_store = sc(s.bytes_transferred_store);
  s.dram_page_switches = sc(s.dram_page_switches);
  s.branches_executed = sc(s.branches_executed);
  s.branches_divergent = sc(s.branches_divergent);
  s.issue_cycles = sc(s.issue_cycles);
  s.warp_instructions = sc(s.warp_instructions);
  s.shared_accesses = sc(s.shared_accesses);
  s.shared_cycles = sc(s.shared_cycles);
  s.num_blocks = sc(s.num_blocks);
  s.num_warps = sc(s.num_warps);
  return s;
}

namespace {

/// Full-scale (1080p, 450-frame) modeled GPU seconds from measured per-frame
/// counters.
double extrapolate_fullhd450(const ExperimentConfig& cfg,
                             const gpusim::KernelStats& per_frame,
                             const gpusim::Occupancy& occ,
                             const gpusim::DeviceSpec& spec) {
  constexpr double kFullPixels = 1920.0 * 1080.0;
  constexpr std::uint64_t kFullFrames = 450;
  const double ratio =
      kFullPixels / (static_cast<double>(cfg.width) * cfg.height);

  const gpusim::KernelStats full = scale_stats(per_frame, ratio);
  const gpusim::KernelTiming timing = gpusim::kernel_time(full, occ, spec);

  gpusim::FrameSchedule sched;
  sched.upload_seconds =
      gpusim::transfer_seconds(spec, static_cast<std::uint64_t>(kFullPixels));
  sched.download_seconds = sched.upload_seconds;
  sched.kernel_seconds = timing.total_seconds;

  if (!cfg.tiled) {
    return kernels::uses_overlap(cfg.level)
               ? gpusim::overlapped_pipeline_seconds(sched, kFullFrames)
               : gpusim::sequential_pipeline_seconds(sched, kFullFrames);
  }
  const double g = static_cast<double>(cfg.tiled_config.frame_group);
  gpusim::FrameSchedule group_sched;
  group_sched.upload_seconds = sched.upload_seconds * g;
  group_sched.download_seconds = sched.download_seconds * g;
  group_sched.kernel_seconds = sched.kernel_seconds * g;
  const std::uint64_t groups = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(kFullFrames) / g));
  return gpusim::overlapped_pipeline_seconds(group_sched, groups);
}

template <typename T>
ExperimentResult run_impl(const ExperimentConfig& cfg) {
  SceneConfig scene_cfg;
  scene_cfg.width = cfg.width;
  scene_cfg.height = cfg.height;
  scene_cfg.seed = cfg.seed;
  const SyntheticScene scene{scene_cfg};

  typename GpuMogPipeline<T>::Config pipe_cfg;
  pipe_cfg.width = cfg.width;
  pipe_cfg.height = cfg.height;
  pipe_cfg.params = cfg.params;
  pipe_cfg.level = cfg.level;
  pipe_cfg.tiled = cfg.tiled;
  pipe_cfg.tiled_config = cfg.tiled_config;
  pipe_cfg.threads_per_block = cfg.threads_per_block;
  pipe_cfg.postproc = cfg.postproc;
  pipe_cfg.device = cfg.device;
  GpuMogPipeline<T> gpu{pipe_cfg};

  // CPU double-precision serial reference: the quality ground truth.
  SerialMog<double> cpu_ref{cfg.width, cfg.height, cfg.params};

  // Pending frames whose GPU masks have not been produced yet (tiled
  // grouping delays them); pairs of (frame index, CPU mask).
  std::deque<std::pair<int, FrameU8>> pending;

  double msssim_sum = 0, disagreement_sum = 0;
  int quality_frames = 0;
  ConfusionCounts vs_truth;

  FrameU8 frame, truth, cpu_fg, gpu_fg;
  // The pipeline may clean its masks (validated() force-enables postproc at
  // level G); give the CPU reference masks the identical host stages so the
  // comparison measures MoG divergence, not the clean-up itself.
  const MaskPostprocConfig& pp = gpu.config().postproc;
  const bool pp_active = pp.enabled && pp.validation.active();
  auto compare = [&](int t, const FrameU8& gpu_mask, const FrameU8& cpu_mask) {
    if (t < cfg.warmup_frames) return;
    FrameU8 cleaned;
    const FrameU8* ref = &cpu_mask;
    if (pp_active) {
      cleaned = validate_foreground(cpu_mask, pp.validation);
      ref = &cleaned;
    }
    if (cfg.measure_quality) {
      msssim_sum += ms_ssim(gpu_mask, *ref);
      ++quality_frames;
    }
    disagreement_sum += mask_disagreement(gpu_mask, *ref);
    vs_truth += compare_masks(gpu_mask, scene.truth(t));
  };

  int compared = 0;
  for (int t = 0; t < cfg.frames; ++t) {
    scene.render(t, &frame, &truth);
    cpu_ref.apply(frame, cpu_fg);  // ground truth runs on every frame
    const bool done = gpu.process(frame, gpu_fg);
    pending.emplace_back(t, cpu_fg);
    if (done) {
      if (cfg.tiled) {
        for (const FrameU8& mask : gpu.last_group_masks()) {
          compare(pending.front().first, mask, pending.front().second);
          pending.pop_front();
          ++compared;
        }
      } else {
        compare(pending.front().first, gpu_fg, pending.front().second);
        pending.pop_front();
        ++compared;
      }
    }
  }
  {
    std::vector<FrameU8> rest;
    gpu.flush(rest);
    for (const FrameU8& mask : rest) {
      compare(pending.front().first, mask, pending.front().second);
      pending.pop_front();
      ++compared;
    }
  }
  MOG_ASSERT(compared == cfg.frames && pending.empty(),
             "experiment lost track of frames");

  ExperimentResult res;
  res.config = cfg;
  res.per_frame = gpu.per_frame_stats();
  res.occupancy = gpu.occupancy();
  res.kernel_timing = gpu.per_frame_kernel_timing();
  res.gpu_seconds = gpu.modeled_seconds();
  res.launches_per_frame = static_cast<double>(gpu.kernel_launches()) /
                           static_cast<double>(gpu.frames_processed());
  res.host_postproc_fallbacks = gpu.host_postproc_fallbacks();

  const CpuCostModel cost;
  res.cpu_seconds =
      cost.seconds(CpuVariant::kSerial, cfg.precision, cfg.width, cfg.height,
                   cfg.frames, cfg.params.num_components);
  res.cpu_seconds_fullhd450 =
      cost.seconds(CpuVariant::kSerial, cfg.precision, 1920, 1080, 450,
                   cfg.params.num_components);
  res.gpu_seconds_fullhd450 = extrapolate_fullhd450(
      cfg, res.per_frame, res.occupancy, gpu.device_spec());
  res.speedup = res.cpu_seconds_fullhd450 / res.gpu_seconds_fullhd450;

  const int qn = cfg.frames - cfg.warmup_frames;
  res.fg_disagreement = qn > 0 ? disagreement_sum / qn : 0.0;
  if (cfg.measure_quality && quality_frames > 0) {
    res.msssim_foreground = msssim_sum / quality_frames;
    const Image<double> bg_gpu =
        to_real<double>(to_u8(gpu.model().background_image()));
    const Image<double> bg_cpu =
        to_real<double>(to_u8(cpu_ref.model().background_image()));
    res.msssim_background = ms_ssim(bg_gpu, bg_cpu);
  }
  res.vs_truth = vs_truth;
  return res;
}

}  // namespace

ExperimentResult run_gpu_experiment(const ExperimentConfig& config) {
  MOG_CHECK(config.frames > config.warmup_frames,
            "need at least one post-warmup frame");
  return config.precision == Precision::kDouble ? run_impl<double>(config)
                                                : run_impl<float>(config);
}

}  // namespace mog
