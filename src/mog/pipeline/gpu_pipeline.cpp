#include "mog/pipeline/gpu_pipeline.hpp"

#include <algorithm>
#include <array>

#include "mog/obs/heatmap.hpp"
#include "mog/obs/sampler.hpp"
#include "mog/telemetry/telemetry.hpp"

namespace mog {

namespace {

// Validated before any member construction, so a bad config reports itself
// instead of surfacing as a failed device allocation.
template <typename T>
typename GpuMogPipeline<T>::Config validated(
    const typename GpuMogPipeline<T>::Config& config) {
  MOG_CHECK(config.width > 0 && config.height > 0, "bad pipeline dimensions");
  if (config.tiled) {
    MOG_CHECK(config.level == kernels::OptLevel::kF ||
                  config.level == kernels::OptLevel::kG,
              "the tiled variant builds on optimization level F (or G, "
              "which adds the fused postproc epilogue on top)");
    config.tiled_config.validate();
  }
  typename GpuMogPipeline<T>::Config out = config;
  // Level G *is* the fused postproc epilogue: force-enable it so kG can
  // never silently run as plain F. A caller-provided ValidationConfig is
  // kept (an unfusable one falls back to host postproc, with the fallback
  // counter recording the degradation).
  if (kernels::uses_fused_postproc(config.level)) {
    out.postproc.enabled = true;
    out.postproc.on_device = true;
  }
  if (out.postproc.enabled) out.postproc.validation.validate();
  // The pipeline-level executor knob overrides the spec's so callers can
  // pin the thread count without composing a DeviceSpec.
  if (config.executor_threads != 0)
    out.device.executor_threads = config.executor_threads;
  return out;
}

}  // namespace

template <typename T>
GpuMogPipeline<T>::GpuMogPipeline(const Config& config)
    : config_(validated<T>(config)),
      tp_(TypedMogParams<T>::from(config.params)),
      device_(config_.device),
      state_(device_, config.width, config.height, config.params,
             kernels::uses_aos_layout(config.level)
                 ? kernels::ParamLayout::kAoS
                 : kernels::ParamLayout::kSoA) {
  const int nbuf = config_.tiled ? config_.tiled_config.frame_group : 1;
  const std::size_t n = state_.num_pixels();
  for (int i = 0; i < nbuf; ++i) {
    frame_bufs_.push_back(device_.memory().alloc<std::uint8_t>(n));
    fg_bufs_.push_back(device_.memory().alloc<std::uint8_t>(n));
  }
  if (device_postproc_active()) {
    for (int i = 0; i < nbuf; ++i)
      pp_bufs_.push_back(device_.memory().alloc<std::uint8_t>(n));
    // The unfused chain ping-pongs through global scratch between stages;
    // the fused epilogue (level G) holds every intermediate in shared memory.
    if (!kernels::uses_fused_postproc(config_.level))
      for (int i = 0; i < 2; ++i)
        pp_scratch_.push_back(device_.memory().alloc<std::uint8_t>(n));
  }
  // Counter export: a globally installed registry observes every launch of
  // this device (survives ResilientPipeline engine rebuilds, which construct
  // a fresh pipeline and land here again). A globally installed heatmap
  // sink (obs::set_heatmap_sink; bench_util under MOG_BENCH_PROFILE) goes
  // in front and chains to the registry, adding per-block spatial capture
  // without displacing counter export.
  gpusim::StatsSink* sink = telemetry::counters();
  if (obs::HeatmapSink* heat = obs::heatmap_sink()) {
    heat->bind_frame(config_.width, config_.height);
    heat->set_chain(sink);
    sink = heat;
  }
  device_.set_stats_sink(sink);
}

template <typename T>
bool GpuMogPipeline<T>::process(const FrameU8& frame, FrameU8& fg) {
  MOG_CHECK(frame.width() == config_.width &&
                frame.height() == config_.height,
            "frame dimensions do not match the pipeline");
  MOG_CHECK(!in_flight(),
            "interrupted device operation outstanding; call resume() first");
  const std::size_t n = state_.num_pixels();

  if (!config_.tiled) {
    {
      auto sp = telemetry::maybe_span("upload", "transfer");
      sp.arg("frame", static_cast<double>(frames_));
      const obs::ProfSpan prof{obs::ProfTag::kUpload};
      device_.upload(frame_bufs_[0], frame.data(), n);
    }
    gpusim::KernelStats launch_stats;
    {
      auto sp = telemetry::maybe_span("mog_kernel", "kernel");
      sp.arg("frame", static_cast<double>(frames_));
      launch_stats = kernels::launch_mog_frame<T>(
          device_, state_, frame_bufs_[0], fg_bufs_[0], tp_, config_.level,
          config_.threads_per_block);
    }
    accumulated_ += launch_stats;
    emit_modeled_timeline(launch_stats, 1);
    ++launches_;
    ++frames_;
    group_masks_.clear();
    group_size_cur_ = 1;
    postproc_left_ = device_postproc_active() ? 1 : 0;
    downloads_left_ = 1;
    run_device_postproc();
    download_group_masks();
    if (!fg.same_shape(frame)) fg = FrameU8(config_.width, config_.height);
    fg = group_masks_.back();
    return true;
  }

  // Tiled: buffer until the frame group is full.
  {
    auto sp = telemetry::maybe_span("upload", "transfer");
    sp.arg("frame", static_cast<double>(frames_));
    const obs::ProfSpan prof{obs::ProfTag::kUpload};
    device_.upload(frame_bufs_[static_cast<std::size_t>(pending_)],
                   frame.data(), n);
  }
  ++pending_;
  ++frames_;
  if (pending_ < config_.tiled_config.frame_group) return false;

  group_launch_pending_ = true;
  finish_group();
  if (!fg.same_shape(frame)) fg = FrameU8(config_.width, config_.height);
  fg = group_masks_.back();
  return true;
}

template <typename T>
void GpuMogPipeline<T>::finish_group() {
  if (group_launch_pending_) {
    const std::size_t g = static_cast<std::size_t>(pending_);
    gpusim::KernelStats launch_stats;
    {
      auto sp = telemetry::maybe_span("tiled_kernel", "kernel");
      sp.arg("group_size", static_cast<double>(g));
      launch_stats = kernels::launch_tiled_group<T>(
          device_, state_,
          std::span<const gpusim::DevSpan<std::uint8_t>>{frame_bufs_.data(),
                                                         g},
          std::span<const gpusim::DevSpan<std::uint8_t>>{fg_bufs_.data(), g},
          tp_, config_.tiled_config);
    }
    accumulated_ += launch_stats;
    emit_modeled_timeline(launch_stats, g);
    ++launches_;
    // The update kernel has run: from here on only downloads remain, and a
    // retry must not re-launch.
    group_launch_pending_ = false;
    pending_ = 0;
    group_masks_.clear();
    group_size_cur_ = g;
    postproc_left_ = device_postproc_active() ? g : 0;
    downloads_left_ = g;
  }
  run_device_postproc();
  download_group_masks();
}

/// Drain the device post-processing owed to the current group, one frame at
/// a time in frame order. Each frame's clean-up reads the (complete,
/// immutable) raw mask and writes the cleaned buffer, so a launch that
/// faulted mid-group can simply be re-attempted — the model was updated by
/// the frame pass and is not touched here.
template <typename T>
void GpuMogPipeline<T>::run_device_postproc() {
  const obs::ProfSpan prof{obs::ProfTag::kPostproc};
  const ValidationConfig& v = config_.postproc.validation;
  while (postproc_left_ > 0) {
    const std::size_t i = group_size_cur_ - postproc_left_;
    if (kernels::uses_fused_postproc(config_.level)) {
      auto sp = telemetry::maybe_span("fused_postproc", "kernel");
      sp.arg("frame_buf", static_cast<double>(i));
      accumulated_ += kernels::launch_fused_postproc(
          device_, fg_bufs_[i], pp_bufs_[i], config_.width, config_.height, v,
          postproc_threads_per_block());
      ++launches_;
    } else {
      // Below G the same stages run unfused: one stencil launch per stage,
      // every intermediate mask round-tripping global memory. This is the
      // measurable pre-fusion cost that step G removes.
      std::array<kernels::MaskStageOp, 3> ops{};
      std::size_t nops = 0;
      if (v.despeckle) ops[nops++] = kernels::MaskStageOp::kMedian3;
      if (v.close_radius == 1) {
        ops[nops++] = kernels::MaskStageOp::kDilate1;
        ops[nops++] = kernels::MaskStageOp::kErode1;
      }
      gpusim::DevSpan<std::uint8_t> src = fg_bufs_[i];
      for (std::size_t s = 0; s < nops; ++s) {
        const gpusim::DevSpan<std::uint8_t> dst =
            s + 1 == nops ? pp_bufs_[i] : pp_scratch_[s % 2];
        auto sp = telemetry::maybe_span("postproc_stage", "kernel");
        sp.arg("stage", static_cast<double>(s));
        accumulated_ += kernels::launch_mask_stage(
            device_, src, dst, config_.width, config_.height, ops[s],
            postproc_threads_per_block());
        ++launches_;
        src = dst;
      }
    }
    --postproc_left_;
  }
}

template <typename T>
void GpuMogPipeline<T>::download_group_masks() {
  const obs::ProfSpan prof{obs::ProfTag::kDownload};
  const std::size_t n = state_.num_pixels();
  auto sp = telemetry::maybe_span("download", "transfer");
  sp.arg("masks", static_cast<double>(downloads_left_));
  // With device postproc the cleaned buffer is what crosses the transfer
  // boundary; the raw mask stays device-resident.
  const bool from_pp = device_postproc_active();
  while (downloads_left_ > 0) {
    const std::size_t i = group_size_cur_ - downloads_left_;
    FrameU8 mask(config_.width, config_.height);
    device_.download(mask.data(), (from_pp ? pp_bufs_ : fg_bufs_)[i], n);
    if (host_postproc_active()) {
      mask = validate_foreground(mask, config_.postproc.validation);
      // Wanted the device path but the config is not fusable: record the
      // degradation instead of diverging silently.
      if (config_.postproc.on_device) ++host_postproc_fallbacks_;
    }
    group_masks_.push_back(std::move(mask));
    --downloads_left_;
  }
}

template <typename T>
void GpuMogPipeline<T>::emit_modeled_timeline(
    const gpusim::KernelStats& launch_stats, std::size_t frames_in_launch) {
  telemetry::TraceRecorder* tr = telemetry::tracer();
  if (tr == nullptr) return;

  const std::size_t n = state_.num_pixels();
  const double g = static_cast<double>(frames_in_launch);
  const double upload_us =
      1e6 * gpusim::transfer_seconds(device_.spec(), n) * g;
  const double download_us = upload_us;
  const gpusim::Occupancy occ = gpusim::compute_occupancy(
      device_.spec(), launch_stats.regs_per_thread,
      launch_stats.threads_per_block, launch_stats.shared_bytes_per_block);
  const double kernel_us =
      1e6 * gpusim::kernel_time(launch_stats, occ, device_.spec())
                .total_seconds;

  const auto us = [](double v) { return static_cast<std::int64_t>(v); };
  const std::int64_t t0 = us(modeled_ts_us_);
  const int tid = telemetry::TraceRecorder::kModeledTrack;
  tr->complete("upload", "modeled", tid, t0, us(upload_us),
               {{"frames", g}});
  tr->complete(config_.tiled ? "tiled_kernel" : "mog_kernel", "modeled", tid,
               t0 + us(upload_us), us(kernel_us),
               {{"frames", g}, {"occupancy", occ.achieved}});
  tr->complete("download", "modeled", tid,
               t0 + us(upload_us + kernel_us), us(download_us),
               {{"frames", g}});

  // Advance the cursor the way the variant's transfer schedule would: with
  // overlap (level C+ and the tiled grouping) the next window starts after
  // max(kernel, transfers) — the hidden portion is the Fig. 5b gain.
  const bool overlapped = config_.tiled || kernels::uses_overlap(config_.level);
  const double serial_us = upload_us + kernel_us + download_us;
  if (overlapped) {
    const double window_us = std::max(kernel_us, upload_us + download_us);
    tr->complete("overlap_window", "modeled",
                 telemetry::TraceRecorder::kModeledOverlapTrack, t0,
                 us(window_us), {{"hidden_us", serial_us - window_us}});
    modeled_ts_us_ += window_us;
  } else {
    modeled_ts_us_ += serial_us;
  }
}

template <typename T>
bool GpuMogPipeline<T>::resume(FrameU8& fg) {
  MOG_CHECK(in_flight(), "no interrupted device operation to resume");
  finish_group();
  if (fg.width() != config_.width || fg.height() != config_.height)
    fg = FrameU8(config_.width, config_.height);
  fg = group_masks_.back();
  return true;
}

template <typename T>
int GpuMogPipeline<T>::abort_in_flight() {
  int discarded = 0;
  if (group_launch_pending_) {
    discarded = pending_;
    frames_ -= static_cast<std::uint64_t>(pending_);
    pending_ = 0;
    group_launch_pending_ = false;
  }
  postproc_left_ = 0;
  downloads_left_ = 0;
  group_size_cur_ = 0;
  return discarded;
}

template <typename T>
int GpuMogPipeline<T>::flush(std::vector<FrameU8>& out) {
  MOG_CHECK(!in_flight(),
            "interrupted device operation outstanding; call resume() first");
  if (!config_.tiled || pending_ == 0) return 0;
  group_launch_pending_ = true;
  finish_group();
  for (const auto& m : group_masks_) out.push_back(m);
  return static_cast<int>(group_masks_.size());
}

template <typename T>
gpusim::KernelStats GpuMogPipeline<T>::per_frame_stats() const {
  const std::uint64_t processed = frames_ - static_cast<std::uint64_t>(pending_);
  return processed == 0 ? accumulated_ : accumulated_.averaged_over(processed);
}

template <typename T>
gpusim::Occupancy GpuMogPipeline<T>::occupancy() const {
  const gpusim::KernelStats s = per_frame_stats();
  return gpusim::compute_occupancy(device_.spec(), s.regs_per_thread,
                                   s.threads_per_block,
                                   s.shared_bytes_per_block);
}

template <typename T>
gpusim::KernelTiming GpuMogPipeline<T>::per_frame_kernel_timing() const {
  return gpusim::kernel_time(per_frame_stats(), occupancy(), device_.spec());
}

template <typename T>
gpusim::FrameSchedule GpuMogPipeline<T>::frame_schedule() const {
  const std::size_t n = state_.num_pixels();
  gpusim::FrameSchedule sched;
  sched.upload_seconds = gpusim::transfer_seconds(device_.spec(), n);
  sched.download_seconds = gpusim::transfer_seconds(device_.spec(), n);
  const std::uint64_t processed =
      frames_ - static_cast<std::uint64_t>(pending_);
  sched.kernel_seconds =
      processed == 0 ? 0.0 : per_frame_kernel_timing().total_seconds;
  return sched;
}

template <typename T>
double GpuMogPipeline<T>::modeled_seconds(std::uint64_t frames) const {
  const std::uint64_t processed =
      frames_ - static_cast<std::uint64_t>(pending_);
  if (frames == 0) frames = processed;
  if (frames == 0) return 0.0;

  const gpusim::FrameSchedule sched = frame_schedule();

  if (!config_.tiled) {
    return kernels::uses_overlap(config_.level)
               ? gpusim::overlapped_pipeline_seconds(sched, frames)
               : gpusim::sequential_pipeline_seconds(sched, frames);
  }

  // Tiled: transfers are per frame, the kernel runs once per group. The
  // schedule overlaps group g's kernel with group g+1's uploads / group
  // g-1's downloads.
  const double g = static_cast<double>(config_.tiled_config.frame_group);
  gpusim::FrameSchedule group_sched;
  group_sched.upload_seconds = sched.upload_seconds * g;
  group_sched.download_seconds = sched.download_seconds * g;
  group_sched.kernel_seconds = sched.kernel_seconds * g;  // per-frame avg * g
  const std::uint64_t groups = static_cast<std::uint64_t>(
      (static_cast<double>(frames) + g - 1.0) / g);
  return gpusim::overlapped_pipeline_seconds(group_sched, groups);
}

template class GpuMogPipeline<float>;
template class GpuMogPipeline<double>;

}  // namespace mog
