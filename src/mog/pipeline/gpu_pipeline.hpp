// Host-side GPU processing pipeline.
//
// Owns the simulated device, the device-resident model, and the per-frame
// I/O buffers; runs the configured kernel variant frame by frame (or in
// frame groups for the tiled variant), accumulates profiler counters, and
// produces modeled wall-clock seconds by composing kernel timing with the
// transfer schedule (sequential for A/B, overlapped Fig. 5b for C+).
//
// Fault-aware operation: frame uploads, kernel launches, and mask downloads
// go through the device's hooked entry points, so an installed
// gpusim::FaultHook can fail them (TransferError / LaunchError). A failure
// leaves the pipeline in a *resumable* state — in_flight() reports whether
// an interrupted group launch, post-processing launch, or mask download is
// outstanding, and resume() re-attempts exactly the remaining work without
// repeating the model update (retries are therefore free of double-update
// divergence; postproc launches only read the already-written raw mask and
// are idempotent by construction).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mog/common/image.hpp"
#include "mog/cpu/mog_model.hpp"
#include "mog/gpusim/occupancy.hpp"
#include "mog/gpusim/timing_model.hpp"
#include "mog/gpusim/transfer_model.hpp"
#include "mog/kernels/mog_kernels.hpp"
#include "mog/kernels/postproc_kernels.hpp"
#include "mog/kernels/tiled_kernel.hpp"
#include "mog/postproc/validation.hpp"

namespace mog {

template <typename T>
class GpuMogPipeline {
 public:
  struct Config {
    int width = 0;
    int height = 0;
    MogParams params;
    kernels::OptLevel level = kernels::OptLevel::kF;
    bool tiled = false;                 ///< §IV-D windowed variant (on top of F)
    kernels::TiledConfig tiled_config;  ///< used when tiled
    int threads_per_block = kernels::kDefaultThreadsPerBlock;

    /// Mask post-processing. Level G (kernel fusion) force-enables this —
    /// the fused epilogue is what step G *is* — with the fused-friendly
    /// default stages unless the caller configured its own.
    MaskPostprocConfig postproc;

    /// Simulated device (defaults to the paper's Tesla C2075; pass
    /// gpusim::embedded_device_spec() for the §VI future-work studies).
    gpusim::DeviceSpec device;

    /// Host worker threads for the device's block executor. 0 inherits
    /// device.executor_threads (whose 0 means one worker per hardware
    /// thread); 1 forces serial execution. Purely a wall-clock knob — masks
    /// and every simulated counter are bit-identical at any value.
    int executor_threads = 0;
  };

  explicit GpuMogPipeline(const Config& config);

  /// Process one frame: upload, kernel (for the tiled variant: buffered
  /// until the frame group fills), download the mask. For the tiled variant
  /// `fg` is only written when the group completes (returns true).
  ///
  /// With a fault hook installed this may throw gpusim::TransferError or
  /// gpusim::LaunchError. An upload or launch failure leaves the pipeline
  /// clean (the call may simply be repeated); a download failure happens
  /// after the model update and leaves the pipeline in_flight() — call
  /// resume() to retry the remaining downloads, not process().
  bool process(const FrameU8& frame, FrameU8& fg);

  /// True when a device fault interrupted a group launch or mask download;
  /// process()/flush() refuse to run until resume() completes the work.
  bool in_flight() const {
    return group_launch_pending_ || postproc_left_ > 0 || downloads_left_ > 0;
  }

  /// Re-attempt the interrupted portion of the last operation (group launch
  /// and/or remaining mask downloads). Idempotent with respect to the model:
  /// the update kernel is never re-run once it has executed. On success
  /// writes the newest mask to `fg` and returns true; may throw again.
  bool resume(FrameU8& fg);

  /// Abandon an interrupted operation after exhausted retries: drops any
  /// owed group launch (its buffered frames leave the accounting) and any
  /// un-downloaded masks. Returns the number of buffered input frames
  /// discarded (0 when only mask downloads were lost — those frames did
  /// update the model).
  int abort_in_flight();

  /// Tiled variant: run any buffered partial group now. Returns the number
  /// of masks appended to `out`. May throw like process(); after resume()
  /// recovers an interrupted flush, the masks are in last_group_masks().
  int flush(std::vector<FrameU8>& out);

  /// Masks of the last completed group (group-size entries; the non-tiled
  /// path behaves as a group of one).
  const std::vector<FrameU8>& last_group_masks() const {
    return group_masks_;
  }

  std::uint64_t frames_processed() const { return frames_; }
  std::uint64_t kernel_launches() const { return launches_; }

  /// Frames whose post-processing ran on the host because the configured
  /// validation stages are not expressible on the device (postproc.on_device
  /// requested but ValidationConfig::fusable() is false). Always 0 when the
  /// device path is active; nonzero means level G silently-degraded — except
  /// it is not silent, it is this counter.
  std::uint64_t host_postproc_fallbacks() const {
    return host_postproc_fallbacks_;
  }

  /// True when masks are cleaned on the device before the download (the
  /// fused epilogue at level G, the unfused stencil chain below it).
  bool device_postproc_active() const {
    return postproc_active() && config_.postproc.on_device &&
           config_.postproc.validation.fusable();
  }

  /// Per-frame averaged profiler counters (tiled launches are normalized by
  /// their group size).
  gpusim::KernelStats per_frame_stats() const;

  gpusim::Occupancy occupancy() const;
  gpusim::KernelTiming per_frame_kernel_timing() const;

  /// Per-frame modeled schedule — upload / kernel / download seconds at the
  /// current averaged counters. The kernel term is only meaningful once at
  /// least one frame has been processed (it is 0 before); the transfer terms
  /// depend only on the frame geometry. The serving layer uses this to
  /// reserve shared-device time for each frame it multiplexes.
  gpusim::FrameSchedule frame_schedule() const;

  /// Modeled end-to-end seconds for `frames` frames at this pipeline's
  /// resolution (defaults to the number actually processed), composing the
  /// per-frame kernel time with the variant's transfer schedule.
  double modeled_seconds(std::uint64_t frames = 0) const;

  /// Download the device model (background estimates, cross-checks,
  /// checkpointing). Uses the un-hooked copy path: reading the model out
  /// never fails, even under fault injection.
  MogModel<T> model() const { return state_.download(config_.params); }

  /// Overwrite the device model (checkpoint restore / rollback). Un-hooked
  /// like model().
  void set_model(const MogModel<T>& m) { state_.upload(m); }

  /// The simulated device — exposed so recovery layers can install fault
  /// hooks and inspect memory accounting.
  gpusim::Device& device() { return device_; }
  const gpusim::Device& device() const { return device_; }
  kernels::DeviceMogState<T>& state() { return state_; }

  const Config& config() const { return config_; }
  const gpusim::DeviceSpec& device_spec() const { return device_.spec(); }

 private:
  bool postproc_active() const {
    return config_.postproc.enabled && config_.postproc.validation.active();
  }
  /// Postproc stages that must run on the host (fallback or by request).
  bool host_postproc_active() const {
    return postproc_active() && !device_postproc_active();
  }
  int postproc_threads_per_block() const {
    return config_.tiled ? config_.tiled_config.tile_pixels
                         : config_.threads_per_block;
  }

  void finish_group();
  void run_device_postproc();
  void download_group_masks();

  /// Telemetry: append this launch's upload/kernel/download windows to the
  /// modeled-GPU-timeline trace track (no-op without an installed tracer).
  void emit_modeled_timeline(const gpusim::KernelStats& launch_stats,
                             std::size_t frames_in_launch);

  Config config_;
  TypedMogParams<T> tp_;
  gpusim::Device device_;
  kernels::DeviceMogState<T> state_;
  std::vector<gpusim::DevSpan<std::uint8_t>> frame_bufs_;
  std::vector<gpusim::DevSpan<std::uint8_t>> fg_bufs_;  ///< raw MoG masks
  /// Cleaned masks (device postproc only) — the download source, so the raw
  /// mask never crosses the transfer boundary when the epilogue is active.
  std::vector<gpusim::DevSpan<std::uint8_t>> pp_bufs_;
  /// Intermediate stages of the unfused chain (below level G); the fused
  /// epilogue keeps these in shared memory and needs no scratch.
  std::vector<gpusim::DevSpan<std::uint8_t>> pp_scratch_;

  int pending_ = 0;  ///< buffered frames of the current tiled group
  std::vector<FrameU8> group_masks_;

  // Resumable-operation state (see in_flight()/resume()).
  bool group_launch_pending_ = false;  ///< full group buffered, launch owed
  std::size_t group_size_cur_ = 0;     ///< frames in the group being drained
  std::size_t postproc_left_ = 0;      ///< frames still owed device postproc
  std::size_t downloads_left_ = 0;     ///< masks still owed by the device

  gpusim::KernelStats accumulated_;
  std::uint64_t frames_ = 0;
  std::uint64_t launches_ = 0;
  std::uint64_t host_postproc_fallbacks_ = 0;
  double modeled_ts_us_ = 0;  ///< cursor of the modeled trace track
};

extern template class GpuMogPipeline<float>;
extern template class GpuMogPipeline<double>;

}  // namespace mog
