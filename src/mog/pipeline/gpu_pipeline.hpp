// Host-side GPU processing pipeline.
//
// Owns the simulated device, the device-resident model, and the per-frame
// I/O buffers; runs the configured kernel variant frame by frame (or in
// frame groups for the tiled variant), accumulates profiler counters, and
// produces modeled wall-clock seconds by composing kernel timing with the
// transfer schedule (sequential for A/B, overlapped Fig. 5b for C+).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mog/common/image.hpp"
#include "mog/cpu/mog_model.hpp"
#include "mog/gpusim/occupancy.hpp"
#include "mog/gpusim/timing_model.hpp"
#include "mog/gpusim/transfer_model.hpp"
#include "mog/kernels/mog_kernels.hpp"
#include "mog/kernels/tiled_kernel.hpp"

namespace mog {

template <typename T>
class GpuMogPipeline {
 public:
  struct Config {
    int width = 0;
    int height = 0;
    MogParams params;
    kernels::OptLevel level = kernels::OptLevel::kF;
    bool tiled = false;                 ///< §IV-D windowed variant (on top of F)
    kernels::TiledConfig tiled_config;  ///< used when tiled
    int threads_per_block = kernels::kDefaultThreadsPerBlock;

    /// Simulated device (defaults to the paper's Tesla C2075; pass
    /// gpusim::embedded_device_spec() for the §VI future-work studies).
    gpusim::DeviceSpec device;
  };

  explicit GpuMogPipeline(const Config& config);

  /// Process one frame: upload, kernel (for the tiled variant: buffered
  /// until the frame group fills), download the mask. For the tiled variant
  /// `fg` is only written when the group completes (returns true).
  bool process(const FrameU8& frame, FrameU8& fg);

  /// Tiled variant: run any buffered partial group now. Returns the number
  /// of masks appended to `out`.
  int flush(std::vector<FrameU8>& out);

  /// Masks of the last completed tiled group (group-size entries).
  const std::vector<FrameU8>& last_group_masks() const {
    return group_masks_;
  }

  std::uint64_t frames_processed() const { return frames_; }
  std::uint64_t kernel_launches() const { return launches_; }

  /// Per-frame averaged profiler counters (tiled launches are normalized by
  /// their group size).
  gpusim::KernelStats per_frame_stats() const;

  gpusim::Occupancy occupancy() const;
  gpusim::KernelTiming per_frame_kernel_timing() const;

  /// Modeled end-to-end seconds for `frames` frames at this pipeline's
  /// resolution (defaults to the number actually processed), composing the
  /// per-frame kernel time with the variant's transfer schedule.
  double modeled_seconds(std::uint64_t frames = 0) const;

  /// Download the device model (background estimates, cross-checks).
  MogModel<T> model() const { return state_.download(config_.params); }

  const Config& config() const { return config_; }
  const gpusim::DeviceSpec& device_spec() const { return device_.spec(); }

 private:
  void run_group();

  Config config_;
  TypedMogParams<T> tp_;
  gpusim::Device device_;
  kernels::DeviceMogState<T> state_;
  std::vector<gpusim::DevSpan<std::uint8_t>> frame_bufs_;
  std::vector<gpusim::DevSpan<std::uint8_t>> fg_bufs_;

  int pending_ = 0;  ///< buffered frames of the current tiled group
  std::vector<FrameU8> group_masks_;

  gpusim::KernelStats accumulated_;
  std::uint64_t frames_ = 0;
  std::uint64_t launches_ = 0;
};

extern template class GpuMogPipeline<float>;
extern template class GpuMogPipeline<double>;

}  // namespace mog
