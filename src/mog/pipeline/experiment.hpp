// Experiment runner: reproduces one cell of the paper's evaluation.
//
// Runs the synthetic scene through (a) the CPU double-precision serial
// reference (the paper's ground truth) and (b) the configured GPU variant on
// the simulator; collects profiler counters, modeled seconds, speedups
// against the calibrated CPU cost model, and MS-SSIM / confusion quality.
//
// Counters are measured at the configured (reduced) resolution and frame
// count, then extrapolated to the paper's full-scale workload (450 full-HD
// frames) for the headline speedup — every per-warp counter is resolution-
// independent, and both timing models are linear in pixels and frames (see
// DESIGN.md §2).
#pragma once

#include <cstdint>
#include <string>

#include "mog/cpu/cost_model.hpp"
#include "mog/gpusim/device_spec.hpp"
#include "mog/gpusim/occupancy.hpp"
#include "mog/gpusim/stats.hpp"
#include "mog/gpusim/timing_model.hpp"
#include "mog/kernels/opt_level.hpp"
#include "mog/kernels/tiled_kernel.hpp"
#include "mog/metrics/confusion.hpp"
#include "mog/cpu/mog_params.hpp"
#include "mog/postproc/validation.hpp"

namespace mog {

struct ExperimentConfig {
  // Workload (measured scale).
  int width = 640;
  int height = 360;
  int frames = 24;
  int warmup_frames = 8;  ///< excluded from quality averaging
  std::uint64_t seed = 42;

  // Algorithm.
  MogParams params;  ///< num_components lives here
  Precision precision = Precision::kDouble;

  // GPU variant.
  kernels::OptLevel level = kernels::OptLevel::kF;
  bool tiled = false;
  kernels::TiledConfig tiled_config;
  int threads_per_block = 128;

  /// Mask post-processing; level G force-enables the fused epilogue. When
  /// any postproc stage is active the CPU reference masks get the identical
  /// host stages before quality comparison, so the deltas keep measuring the
  /// MoG math rather than the (intentional) clean-up.
  MaskPostprocConfig postproc;

  // Simulated device (defaults to the Tesla C2075).
  gpusim::DeviceSpec device;

  // Quality measurement is the expensive part; off by default.
  bool measure_quality = false;

  std::string label() const;
};

struct ExperimentResult {
  ExperimentConfig config;

  // Profiler counters (per frame, averaged).
  gpusim::KernelStats per_frame;
  gpusim::Occupancy occupancy;
  gpusim::KernelTiming kernel_timing;

  // Launch accounting: how many kernel launches one frame costs on average
  // (1 below G without postproc; 1 + stage count with the unfused device
  // chain; 2 with the fused epilogue — the Fig.-worthy delta of step G).
  double launches_per_frame = 0;
  std::uint64_t host_postproc_fallbacks = 0;

  // Modeled seconds at the measured scale.
  double gpu_seconds = 0;
  double cpu_seconds = 0;

  // Full-scale extrapolation: the paper's 450 full-HD frames.
  double gpu_seconds_fullhd450 = 0;
  double cpu_seconds_fullhd450 = 0;
  double speedup = 0;  ///< cpu_seconds_fullhd450 / gpu_seconds_fullhd450

  // Quality vs the CPU double-precision reference (when measured).
  double msssim_foreground = 0;
  double msssim_background = 0;
  double fg_disagreement = 0;  ///< fraction of pixels flipped vs reference
  ConfusionCounts vs_truth;    ///< GPU mask vs the scene's ground truth
};

ExperimentResult run_gpu_experiment(const ExperimentConfig& config);

/// Scale a launch's extensive counters by a pixel-count ratio (resource
/// fields pass through). Exposed for the extrapolation tests.
gpusim::KernelStats scale_stats(const gpusim::KernelStats& stats,
                                double ratio);

}  // namespace mog
