// Public API: background subtraction with selectable backend.
//
// This is the library's front door. A BackgroundSubtractor consumes 8-bit
// grayscale frames and produces foreground masks (255 = foreground). The
// backend selects between the real CPU implementations (serial reference,
// SIMD-restructured, multi-threaded) and the simulated-GPU pipeline at any
// of the optimization levels A..G (A..F from the paper, G = kernel-fused
// mask post-processing) or the tiled/windowed variant.
//
// Quickstart:
//
//   mog::BackgroundSubtractor::Config cfg;
//   cfg.width = 640; cfg.height = 360;
//   mog::BackgroundSubtractor bgs{cfg};            // GPU-sim, level F
//   mog::FrameU8 mask;
//   while (camera >> frame) {
//     if (bgs.apply(frame, mask)) consume(mask);
//   }
#pragma once

#include <memory>
#include <vector>

#include "mog/common/image.hpp"
#include "mog/cpu/cost_model.hpp"
#include "mog/cpu/mog_params.hpp"
#include "mog/gpusim/occupancy.hpp"
#include "mog/gpusim/stats.hpp"
#include "mog/gpusim/timing_model.hpp"
#include "mog/kernels/opt_level.hpp"
#include "mog/kernels/tiled_kernel.hpp"
#include "mog/postproc/validation.hpp"

namespace mog {

class BackgroundSubtractor {
 public:
  enum class Backend {
    kCpuSerial,    ///< single-threaded Algorithm 1 (the reference)
    kCpuSimd,      ///< SIMD-restructured (no-sort, predicated)
    kCpuParallel,  ///< multi-threaded row bands
    kGpuSim,       ///< simulated-GPU kernels (optimization levels A..G)
  };

  struct Config {
    int width = 0;
    int height = 0;
    MogParams params;
    Precision precision = Precision::kDouble;
    Backend backend = Backend::kGpuSim;

    // GPU backend options.
    kernels::OptLevel opt_level = kernels::OptLevel::kF;
    bool tiled = false;
    kernels::TiledConfig tiled_config;
    int threads_per_block = 128;
    /// Mask post-processing; level G force-enables the fused epilogue (see
    /// MaskPostprocConfig in gpu_pipeline.hpp). Ignored by CPU backends.
    MaskPostprocConfig postproc;

    // CPU parallel backend option (0 = hardware concurrency).
    int num_threads = 0;
  };

  /// Profiler snapshot; `available` is false for CPU backends.
  struct Profile {
    bool available = false;
    gpusim::KernelStats per_frame;
    gpusim::Occupancy occupancy;
    gpusim::KernelTiming kernel_timing;
    double modeled_seconds = 0;  ///< modeled GPU time for frames so far
  };

  explicit BackgroundSubtractor(const Config& config);
  ~BackgroundSubtractor();
  BackgroundSubtractor(BackgroundSubtractor&&) noexcept;
  BackgroundSubtractor& operator=(BackgroundSubtractor&&) noexcept;
  BackgroundSubtractor(const BackgroundSubtractor&) = delete;
  BackgroundSubtractor& operator=(const BackgroundSubtractor&) = delete;

  /// Process one frame. Returns true when `fg` was written; the tiled GPU
  /// variant buffers frames and delivers the most recent mask when the frame
  /// group completes (use flush() to drain a trailing partial group).
  bool apply(const FrameU8& frame, FrameU8& fg);

  /// Drain buffered tiled frames; appends their masks to `out` and returns
  /// the count (0 for non-tiled configurations).
  int flush(std::vector<FrameU8>& out);

  /// Current background estimate (highest-rank component mean per pixel).
  FrameU8 background() const;

  Profile profile() const;
  const Config& config() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mog
