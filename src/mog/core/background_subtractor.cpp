#include "mog/core/background_subtractor.hpp"

#include "mog/cpu/parallel_mog.hpp"
#include "mog/cpu/serial_mog.hpp"
#include "mog/cpu/simd_mog.hpp"
#include "mog/pipeline/gpu_pipeline.hpp"

namespace mog {

namespace {

/// Backend-erasing interface; one concrete wrapper per engine type.
class Engine {
 public:
  virtual ~Engine() = default;
  virtual bool apply(const FrameU8& frame, FrameU8& fg) = 0;
  virtual int flush(std::vector<FrameU8>& out) = 0;
  virtual FrameU8 background() const = 0;
  virtual BackgroundSubtractor::Profile profile() const = 0;
};

template <typename CpuEngine, typename T>
class CpuWrapper final : public Engine {
 public:
  CpuWrapper(const BackgroundSubtractor::Config& cfg)
      : engine_(make(cfg)) {}

  bool apply(const FrameU8& frame, FrameU8& fg) override {
    engine_.apply(frame, fg);
    return true;
  }
  int flush(std::vector<FrameU8>&) override { return 0; }
  FrameU8 background() const override { return to_u8(engine_.background()); }
  BackgroundSubtractor::Profile profile() const override { return {}; }

 private:
  static CpuEngine make(const BackgroundSubtractor::Config& cfg) {
    if constexpr (std::is_same_v<CpuEngine, ParallelMog<T>>) {
      return CpuEngine{cfg.width, cfg.height, cfg.params, cfg.num_threads};
    } else {
      return CpuEngine{cfg.width, cfg.height, cfg.params};
    }
  }
  CpuEngine engine_;
};

template <typename T>
class GpuWrapper final : public Engine {
 public:
  explicit GpuWrapper(const BackgroundSubtractor::Config& cfg)
      : pipeline_(make_config(cfg)) {}

  bool apply(const FrameU8& frame, FrameU8& fg) override {
    return pipeline_.process(frame, fg);
  }
  int flush(std::vector<FrameU8>& out) override {
    return pipeline_.flush(out);
  }
  FrameU8 background() const override {
    return to_u8(pipeline_.model().background_image());
  }
  BackgroundSubtractor::Profile profile() const override {
    BackgroundSubtractor::Profile p;
    if (pipeline_.frames_processed() == 0) return p;
    p.available = true;
    p.per_frame = pipeline_.per_frame_stats();
    p.occupancy = pipeline_.occupancy();
    p.kernel_timing = pipeline_.per_frame_kernel_timing();
    p.modeled_seconds = pipeline_.modeled_seconds();
    return p;
  }

 private:
  static typename GpuMogPipeline<T>::Config make_config(
      const BackgroundSubtractor::Config& cfg) {
    typename GpuMogPipeline<T>::Config pc;
    pc.width = cfg.width;
    pc.height = cfg.height;
    pc.params = cfg.params;
    pc.level = cfg.opt_level;
    pc.tiled = cfg.tiled;
    pc.tiled_config = cfg.tiled_config;
    pc.threads_per_block = cfg.threads_per_block;
    pc.postproc = cfg.postproc;
    return pc;
  }
  GpuMogPipeline<T> pipeline_;
};

template <typename T>
std::unique_ptr<Engine> make_engine(const BackgroundSubtractor::Config& cfg) {
  switch (cfg.backend) {
    case BackgroundSubtractor::Backend::kCpuSerial:
      return std::make_unique<CpuWrapper<SerialMog<T>, T>>(cfg);
    case BackgroundSubtractor::Backend::kCpuSimd:
      return std::make_unique<CpuWrapper<SimdMog<T>, T>>(cfg);
    case BackgroundSubtractor::Backend::kCpuParallel:
      return std::make_unique<CpuWrapper<ParallelMog<T>, T>>(cfg);
    case BackgroundSubtractor::Backend::kGpuSim:
      return std::make_unique<GpuWrapper<T>>(cfg);
  }
  throw Error{"unknown backend"};
}

}  // namespace

struct BackgroundSubtractor::Impl {
  Config config;
  std::unique_ptr<Engine> engine;
};

BackgroundSubtractor::BackgroundSubtractor(const Config& config)
    : impl_(std::make_unique<Impl>()) {
  MOG_CHECK(config.width > 0 && config.height > 0,
            "frame dimensions must be positive");
  config.params.validate();
  impl_->config = config;
  impl_->engine = config.precision == Precision::kDouble
                      ? make_engine<double>(config)
                      : make_engine<float>(config);
}

BackgroundSubtractor::~BackgroundSubtractor() = default;
BackgroundSubtractor::BackgroundSubtractor(BackgroundSubtractor&&) noexcept =
    default;
BackgroundSubtractor& BackgroundSubtractor::operator=(
    BackgroundSubtractor&&) noexcept = default;

bool BackgroundSubtractor::apply(const FrameU8& frame, FrameU8& fg) {
  return impl_->engine->apply(frame, fg);
}

int BackgroundSubtractor::flush(std::vector<FrameU8>& out) {
  return impl_->engine->flush(out);
}

FrameU8 BackgroundSubtractor::background() const {
  return impl_->engine->background();
}

BackgroundSubtractor::Profile BackgroundSubtractor::profile() const {
  return impl_->engine->profile();
}

const BackgroundSubtractor::Config& BackgroundSubtractor::config() const {
  return impl_->config;
}

}  // namespace mog
