// Multi-stream serving layer: one simulated device, N camera streams.
//
// A StreamServer multiplexes independent camera streams onto one simulated
// GPU. Functionally each stream owns a fault::ResilientPipeline (its own
// model state — masks are bit-identical to running that stream alone, which
// tests assert); *temporally* all streams share one gpusim::SharedTimeline:
// a single DMA copy engine and a single compute engine, the C2075 contention
// model of Fig. 5 generalized to incremental multi-stream arrival.
//
// Scheduling is a synchronous round pump. Each pump() round, in round-robin
// order starting from a rotating cursor (fairness: no stream moves two
// frames before another ready stream moves one):
//
//   1. ingest  — pop at most one frame per stream from its bounded queue and
//                reserve the copy engine for its upload;
//   2. deliver — reserve the copy engine for the *previous* round's pending
//                mask downloads and complete their end-to-end latencies.
//                Ordering uploads ahead of the older downloads reproduces
//                the double-buffered FIFO order of simulate_overlapped()
//                exactly for a single stream (tests assert the makespans
//                match);
//   3. compute — run the frame through the stream's pipeline; when masks
//                come due (every frame for direct variants, once per group
//                for tiled), reserve the kernel engine and defer the
//                (batched) download to the next round's phase 2.
//
// Backpressure is explicit: bounded queues with a configurable DropPolicy,
// every drop counted (frame_queue.hpp). Admission control bounds both the
// stream count and the aggregate device-memory footprint. A stream that
// degrades to the CPU tier stops consuming shared device time — its frames
// complete on a private CPU clock instead.
//
// Per-stream telemetry goes to the installed global sinks: modeled op
// windows on trace track TraceRecorder::kServeTrackBase + id, end-to-end
// latencies into CounterRegistry custom series "serve.latency_seconds".
//
// Thread safety: every public method locks the server mutex; submit() may be
// called from capture threads while the scheduler pumps. start()/stop() run
// the pump on a background thread for live use; deterministic callers
// (tests, benches) call pump()/drain() synchronously instead.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mog/fault/resilient_pipeline.hpp"
#include "mog/gpusim/stream_sim.hpp"
#include "mog/obs/http_server.hpp"
#include "mog/obs/log.hpp"
#include "mog/serve/frame_queue.hpp"
#include "mog/telemetry/counters.hpp"

namespace mog::serve {

/// Thrown by open_stream() when admission control refuses a stream (stream
/// cap or device-memory budget exceeded).
class AdmissionError : public Error {
 public:
  explicit AdmissionError(const std::string& what) : Error(what) {}
};

struct ServeConfig {
  int max_streams = 16;         ///< admission cap on concurrently open streams
  std::size_t queue_depth = 8;  ///< per-stream ingress queue depth
  DropPolicy drop_policy = DropPolicy::kDropNewest;

  /// Aggregate device-memory budget for admission control; 0 uses the
  /// simulated device's capacity.
  std::size_t device_memory_budget_bytes = 0;

  /// Recovery configuration for every stream's ResilientPipeline.
  fault::ResilienceConfig resilience;

  /// Keep delivered masks in memory for take_masks(); disable for soak
  /// runs / benches that only need counters.
  bool collect_masks = true;

  /// Observability HTTP endpoint (/metrics, /healthz, /statusz, /profilez),
  /// served from a thread the server owns: -1 disables it (default), 0 binds
  /// an ephemeral loopback port (tests read it back via obs_port()), >0
  /// binds that port. The listener runs for the server's whole lifetime, not
  /// just while the pump thread does — a scrape between pumps is the normal
  /// case.
  int obs_port = -1;

  /// Label prefix for this plane's threads in sampling profiles — the pump
  /// thread shows up as "<profile_label>.pump". DeviceFleet sets "dev<i>"
  /// per node so one /profilez capture attributes across devices.
  std::string profile_label = "serve";

  void validate() const;
};

/// Per-stream observability snapshot.
struct StreamStats {
  QueueStats queue;
  std::uint64_t frames_scheduled = 0;  ///< frames popped into the pipeline
  std::uint64_t masks_delivered = 0;
  double dma_seconds = 0;     ///< shared copy-engine time reserved
  double kernel_seconds = 0;  ///< shared compute-engine time reserved
  fault::ExecutionTier tier = fault::ExecutionTier::kTiledGpu;
};

template <typename T>
class StreamServer {
 public:
  using GpuConfig = typename GpuMogPipeline<T>::Config;

  explicit StreamServer(const ServeConfig& config);
  ~StreamServer();

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  /// Admit a stream: builds its ResilientPipeline and timeline lane. Throws
  /// AdmissionError when the stream cap or the device-memory budget would be
  /// exceeded (the stream is not admitted and nothing leaks). `injector` is
  /// forwarded to the stream's ResilientPipeline. Returns the stream id.
  int open_stream(const GpuConfig& gpu_config,
                  std::shared_ptr<fault::FaultInjector> injector = nullptr);

  /// Flush the stream's partial tiled group, deliver the remaining masks,
  /// and release its pipeline (its memory leaves the admission budget). The
  /// id is never reused.
  void close_stream(int id);

  /// Offer one frame to stream `id` at modeled time `arrival_seconds`.
  /// Returns false when the queue's drop policy refused it. Thread-safe.
  ///
  /// `ticket` == 0 (the default) mints a fresh obs trace ticket here and
  /// admission becomes the start of the frame's flow chain. A decode front
  /// end (ingest::DecodeWorker) passes its pre-minted ticket instead: the
  /// chain then began at the decode span, and admission is a step on it.
  bool submit(int id, FrameU8 frame, double arrival_seconds = 0,
              std::uint64_t ticket = 0);

  /// Run one scheduling round (see file comment). Returns the number of
  /// frames ingested this round; pending downloads from the previous round
  /// are delivered even when that count is 0.
  int pump();

  /// Pump until every queue is empty and every scheduled mask is delivered.
  /// Partial tiled groups stay buffered (close_stream() flushes them).
  void drain();

  /// Flush stream `id`'s partial tiled group without closing it.
  int flush_stream(int id);

  /// Background scheduler thread driving pump() (live serving / TSan
  /// coverage). Deterministic callers use pump()/drain() directly.
  void start();
  void stop();

  /// Move out the masks delivered so far for stream `id` (arrival order).
  /// Empty when ServeConfig::collect_masks is off.
  std::vector<FrameU8> take_masks(int id);

  int num_streams() const;       ///< streams ever opened
  int open_streams() const;      ///< streams currently admitted
  StreamStats stream_stats(int id) const;

  // --- migration hooks (used by cluster::DeviceFleet to move a live stream
  // to another device; see src/mog/cluster/) ------------------------------

  /// The GPU configuration the stream was opened with.
  GpuConfig stream_gpu_config(int id) const;

  /// Pop every frame still waiting in the stream's ingress queue, in order,
  /// preserving arrival stamps and trace tickets (they re-enter another
  /// device's queue via resubmit()). Counted as popped in QueueStats.
  std::vector<QueuedFrame> steal_queue(int id);

  /// Re-enqueue a frame stolen from another server, keeping its arrival
  /// stamp and ticket (no new ticket is minted). Returns false when the
  /// drop policy refused it.
  bool resubmit(int id, QueuedFrame qf);

  /// Download the stream's current MoG model (works on every tier).
  MogModel<T> stream_model(int id) const;

  /// Overwrite the stream's model with restored snapshot state.
  void restore_stream_model(int id, const MogModel<T>& m);

  /// Recovery counters of the stream's resilient pipeline.
  fault::RecoveryStats stream_recovery_stats(int id) const;

  /// Raw end-to-end latency samples (per stream / across all streams) — the
  /// fleet merges these into device-spanning histograms.
  std::vector<double> latency_samples(int id) const;
  std::vector<double> aggregate_latencies() const;

  /// End-to-end latency (arrival -> mask download complete) rollups.
  telemetry::Rollup latency_rollup(int id) const;
  telemetry::Rollup aggregate_latency_rollup() const;

  std::uint64_t masks_delivered() const;  ///< aggregate across streams
  std::uint64_t frames_dropped() const;   ///< aggregate queue drops

  /// Modeled completion time across both shared engines and any CPU-tier
  /// private clocks.
  double makespan_seconds() const;

  /// Aggregate device-memory bytes held by admitted streams.
  std::size_t device_bytes_in_use() const;

  const gpusim::SharedTimeline& timeline() const { return timeline_; }
  const ServeConfig& config() const { return config_; }

  /// Human-readable per-stream digest (examples, logs).
  std::string summary() const;

  // --- observability plane (the /metrics, /healthz, /statusz bodies; also
  // callable directly so tests and embedders need no socket) ---------------

  /// Prometheus text exposition: per-stream queue/drop/delivery counters and
  /// latency histograms, recovery-action counters, shared-engine
  /// utilization, plus the global CounterRegistry and trace health when
  /// telemetry sinks are installed.
  std::string metrics_text() const;

  /// Liveness verdict: true when every open stream is on a GPU tier and its
  /// model passes fault::validate_model(). `detail` gets one line per open
  /// stream either way (the /healthz body).
  bool healthz(std::string& detail) const;

  /// Human-readable status page (summary + recovery + engine utilization).
  std::string statusz() const;

  /// Bound observability port; -1 when ServeConfig::obs_port disabled it.
  int obs_port() const { return obs_http_.port(); }

 private:
  struct PendingDownload {
    double ready_seconds = 0;           ///< producing kernel's end
    std::vector<double> arrivals;       ///< arrival stamp per owed mask
    std::vector<std::uint64_t> tickets; ///< obs ticket per owed mask
    std::vector<FrameU8> masks;         ///< functional masks (may be empty)
  };

  /// A frame absorbed by the model whose mask is still owed (tiled
  /// mid-group), keyed by its arrival stamp and obs ticket.
  struct InFlightFrame {
    double arrival_seconds = 0;
    std::uint64_t ticket = 0;
  };

  struct Stream {
    std::unique_ptr<fault::ResilientPipeline<T>> pipeline;
    std::unique_ptr<BoundedFrameQueue> queue;
    GpuConfig gpu_config;
    int lane = -1;               ///< SharedTimeline stream index
    bool open = true;
    std::size_t device_bytes = 0;
    fault::ExecutionTier last_tier = fault::ExecutionTier::kTiledGpu;

    std::uint64_t uploads_outstanding = 0;  ///< scheduled, kernel not yet
    double last_upload_end = 0;
    std::deque<InFlightFrame> in_model;  ///< absorbed, masks pending
    std::vector<PendingDownload> pending;

    double cpu_clock = 0;  ///< private completion clock after CPU degrade
    std::uint64_t frames_scheduled = 0;
    std::uint64_t masks_delivered = 0;
    double dma_seconds = 0;
    double kernel_seconds = 0;
    double last_completion = 0;
    std::vector<double> latencies;
    std::vector<FrameU8> collected;
  };

  Stream& stream_at(int id);
  const Stream& stream_at(int id) const;
  int pump_locked();
  void deliver_pending(Stream& s, int id);
  void complete_masks(Stream& s, int id, PendingDownload&& d,
                      double end_seconds);
  void finish_group(Stream& s, int id, std::vector<FrameU8> masks);
  int flush_locked(int id);
  void emit_window(int id, const char* kind, double start_seconds,
                   double end_seconds);
  void emit_flow(char phase, std::uint64_t ticket, int id, double seconds);
  void start_obs_server();
  std::string metrics_text_locked() const;
  bool healthz_locked(std::string& detail) const;
  std::string statusz_locked() const;

  ServeConfig config_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Stream>> streams_;
  gpusim::SharedTimeline timeline_;
  int cursor_ = 0;
  std::size_t bytes_in_use_ = 0;
  obs::ScopedLogger log_{"serve"};
  obs::HttpServer obs_http_;

  std::condition_variable cv_;
  std::thread worker_;
  bool stop_requested_ = false;
  bool running_ = false;
};

extern template class StreamServer<float>;
extern template class StreamServer<double>;

}  // namespace mog::serve
