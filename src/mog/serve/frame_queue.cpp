#include "mog/serve/frame_queue.hpp"

#include <algorithm>
#include <utility>

#include "mog/common/error.hpp"

namespace mog::serve {

const char* to_string(DropPolicy policy) {
  switch (policy) {
    case DropPolicy::kDropNewest: return "drop-newest";
    case DropPolicy::kDropOldest: return "drop-oldest";
  }
  return "?";
}

BoundedFrameQueue::BoundedFrameQueue(std::size_t depth, DropPolicy policy)
    : depth_(depth), policy_(policy) {
  MOG_CHECK(depth >= 1, "frame queue needs a positive depth");
}

bool BoundedFrameQueue::push(FrameU8 frame, double arrival_seconds,
                             std::uint64_t ticket) {
  MOG_CHECK(arrival_seconds >= 0, "negative arrival time");
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.submitted;
  const std::uint64_t seq = next_sequence_++;
  if (q_.size() >= depth_) {
    if (policy_ == DropPolicy::kDropNewest) {
      ++stats_.dropped;
      return false;
    }
    q_.pop_front();  // kDropOldest: evict the stalest frame
    ++stats_.dropped;
  }
  q_.push_back(QueuedFrame{std::move(frame), arrival_seconds, seq, ticket});
  ++stats_.accepted;
  stats_.high_water = std::max<std::uint64_t>(stats_.high_water, q_.size());
  return true;
}

bool BoundedFrameQueue::pop(QueuedFrame& out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (q_.empty()) return false;
  out = std::move(q_.front());
  q_.pop_front();
  ++stats_.popped;
  return true;
}

std::size_t BoundedFrameQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return q_.size();
}

QueueStats BoundedFrameQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mog::serve
