// Bounded per-stream ingress queue for the serving layer.
//
// Each camera stream owns one BoundedFrameQueue. Producers push frames with
// a modeled arrival timestamp; when the queue is full the configured
// DropPolicy decides which frame loses its slot — the incoming one
// (kDropNewest, tail drop: latency on admitted frames stays bounded) or the
// oldest queued one (kDropOldest, head drop: the model always sees the most
// recent scene). Every decision is counted in QueueStats so backpressure is
// observable rather than silent.
//
// The queue is thread-safe (one mutex) so capture threads can push while the
// scheduler pops.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>

#include "mog/common/image.hpp"

namespace mog::serve {

/// What to do when a frame arrives at a full queue.
enum class DropPolicy {
  kDropNewest,  ///< refuse the incoming frame (tail drop)
  kDropOldest,  ///< evict the oldest queued frame to make room (head drop)
};

const char* to_string(DropPolicy policy);

/// A frame waiting for the scheduler, stamped at admission.
struct QueuedFrame {
  FrameU8 frame;
  double arrival_seconds = 0;  ///< modeled arrival time (caller-supplied)
  std::uint64_t sequence = 0;  ///< per-stream submission index
  std::uint64_t ticket = 0;    ///< obs frame ticket (trace flow id; 0 = none)
};

/// Backpressure counters. Conservation (tests assert it): under kDropNewest
/// `dropped` counts refused pushes, so submitted == accepted + dropped; under
/// kDropOldest every push is accepted and `dropped` counts evictions, so
/// accepted == popped + dropped + size().
struct QueueStats {
  std::uint64_t submitted = 0;   ///< push attempts
  std::uint64_t accepted = 0;    ///< frames that entered the queue
  std::uint64_t dropped = 0;     ///< frames lost to the drop policy
  std::uint64_t popped = 0;      ///< frames handed to the scheduler
  std::uint64_t high_water = 0;  ///< max queue depth observed

  bool operator==(const QueueStats&) const = default;
};

class BoundedFrameQueue {
 public:
  BoundedFrameQueue(std::size_t depth, DropPolicy policy);

  /// Offer one frame. Returns false when the frame was dropped (kDropNewest
  /// at a full queue); kDropOldest always admits the new frame but may have
  /// evicted a predecessor (visible in stats().dropped). `ticket` is the
  /// frame's obs trace ticket, carried through to the scheduler.
  bool push(FrameU8 frame, double arrival_seconds, std::uint64_t ticket = 0);

  /// Pop the oldest queued frame; false when empty.
  bool pop(QueuedFrame& out);

  std::size_t size() const;
  bool empty() const { return size() == 0; }
  std::size_t depth() const { return depth_; }
  DropPolicy policy() const { return policy_; }
  QueueStats stats() const;

 private:
  const std::size_t depth_;
  const DropPolicy policy_;

  mutable std::mutex mu_;
  std::deque<QueuedFrame> q_;
  std::uint64_t next_sequence_ = 0;
  QueueStats stats_;
};

}  // namespace mog::serve
