#include "mog/serve/stream_server.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "mog/common/strutil.hpp"
#include "mog/obs/flame.hpp"
#include "mog/obs/frame_ticket.hpp"
#include "mog/obs/prometheus.hpp"
#include "mog/obs/sampler.hpp"
#include "mog/telemetry/telemetry.hpp"

namespace mog::serve {

namespace {

constexpr char kLatencyMetric[] = "serve.latency_seconds";
constexpr char kQueueDepthMetric[] = "serve.queue_depth";

std::int64_t to_us(double seconds) {
  return static_cast<std::int64_t>(seconds * 1e6);
}

}  // namespace

void ServeConfig::validate() const {
  MOG_CHECK(max_streams >= 1, "serving needs at least one stream slot");
  MOG_CHECK(queue_depth >= 1, "queue depth must be positive");
  MOG_CHECK(obs_port <= 65535, "obs_port out of range");
  resilience.validate();
}

template <typename T>
StreamServer<T>::StreamServer(const ServeConfig& config) : config_(config) {
  config_.validate();
  start_obs_server();
}

template <typename T>
StreamServer<T>::~StreamServer() {
  obs_http_.stop();  // no scrape may touch a half-destroyed server
  stop();
}

template <typename T>
void StreamServer<T>::start_obs_server() {
  if (config_.obs_port < 0) return;
  obs_http_.handle("/metrics", [this](const obs::HttpRequest&) {
    obs::HttpResponse r;
    r.content_type = obs::kPrometheusContentType;
    r.body = metrics_text();
    return r;
  });
  obs_http_.handle("/healthz", [this](const obs::HttpRequest&) {
    obs::HttpResponse r;
    std::string detail;
    const bool ok = healthz(detail);
    r.status = ok ? 200 : 503;
    r.body = (ok ? "ok\n" : "unhealthy\n") + detail;
    return r;
  });
  obs_http_.handle("/statusz", [this](const obs::HttpRequest&) {
    obs::HttpResponse r;
    r.body = statusz();
    return r;
  });
  obs_http_.handle("/profilez", obs::profilez_response);
  obs_http_.start(config_.obs_port);
  log_.info("observability endpoint up",
            {{"port", obs_http_.port()},
             {"endpoints", "/metrics /healthz /statusz /profilez"}});
}

template <typename T>
int StreamServer<T>::open_stream(
    const GpuConfig& gpu_config,
    std::shared_ptr<fault::FaultInjector> injector) {
  std::lock_guard<std::mutex> lock(mu_);
  int open_count = 0;
  for (const auto& s : streams_) open_count += s->open ? 1 : 0;
  if (open_count >= config_.max_streams)
    throw AdmissionError{strprintf(
        "stream refused: %d streams already open (max_streams = %d)",
        open_count, config_.max_streams)};

  auto pipeline = std::make_unique<fault::ResilientPipeline<T>>(
      gpu_config, config_.resilience, std::move(injector));
  const gpusim::Device& device = pipeline->gpu_pipeline()->device();
  const std::size_t bytes = device.memory().bytes_allocated();
  const std::size_t budget = config_.device_memory_budget_bytes != 0
                                 ? config_.device_memory_budget_bytes
                                 : device.memory().capacity();
  if (bytes_in_use_ + bytes > budget)
    throw AdmissionError{strprintf(
        "stream refused: needs %s device memory, %s of %s budget in use",
        human_bytes(static_cast<double>(bytes)).c_str(),
        human_bytes(static_cast<double>(bytes_in_use_)).c_str(),
        human_bytes(static_cast<double>(budget)).c_str())};

  auto s = std::make_unique<Stream>();
  s->pipeline = std::move(pipeline);
  s->queue = std::make_unique<BoundedFrameQueue>(config_.queue_depth,
                                                 config_.drop_policy);
  s->gpu_config = gpu_config;
  const int buffers =
      gpu_config.tiled ? 2 * gpu_config.tiled_config.frame_group : 2;
  s->lane = timeline_.add_stream(buffers);
  s->device_bytes = bytes;
  bytes_in_use_ += bytes;
  streams_.push_back(std::move(s));
  const int id = static_cast<int>(streams_.size()) - 1;
  log_.info("stream opened",
            {{"stream", id},
             {"buffers", buffers},
             {"device_bytes", static_cast<std::int64_t>(bytes)}});
  return id;
}

template <typename T>
void StreamServer<T>::close_stream(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  Stream& s = stream_at(id);
  MOG_CHECK(s.open, "stream already closed");
  flush_locked(id);
  bytes_in_use_ -= s.device_bytes;
  s.device_bytes = 0;
  s.last_tier = s.pipeline->tier();
  s.pipeline.reset();
  s.open = false;
  log_.info("stream closed",
            {{"stream", id},
             {"masks_delivered",
              static_cast<std::int64_t>(s.masks_delivered)}});
}

template <typename T>
bool StreamServer<T>::submit(int id, FrameU8 frame, double arrival_seconds,
                             std::uint64_t ticket) {
  bool accepted = false;
  const bool preminted = ticket != 0;
  if (!preminted) ticket = obs::mint_frame_ticket();
  {
    std::lock_guard<std::mutex> lock(mu_);
    Stream& s = stream_at(id);
    MOG_CHECK(s.open, "submit to a closed stream");
    accepted = s.queue->push(std::move(frame), arrival_seconds, ticket);
    if (accepted) {
      // Flow begin: the frame's journey starts at queue admission; every
      // later hop (upload, kernel, download) extends this ticket's chain.
      // A pre-minted ticket means the chain began upstream (decode span),
      // so admission is a step on it rather than its start.
      emit_flow(preminted ? 't' : 's', ticket, id, arrival_seconds);
    } else {
      log_.warn("frame dropped at ingress",
                {{"stream", id},
                 {"ticket", static_cast<std::int64_t>(ticket)},
                 {"policy", to_string(config_.drop_policy)}});
    }
  }
  cv_.notify_all();
  return accepted;
}

template <typename T>
typename StreamServer<T>::GpuConfig StreamServer<T>::stream_gpu_config(
    int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return stream_at(id).gpu_config;
}

template <typename T>
std::vector<QueuedFrame> StreamServer<T>::steal_queue(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  Stream& s = stream_at(id);
  MOG_CHECK(s.open, "steal_queue on a closed stream");
  std::vector<QueuedFrame> out;
  QueuedFrame qf;
  while (s.queue->pop(qf)) out.push_back(std::move(qf));
  return out;
}

template <typename T>
bool StreamServer<T>::resubmit(int id, QueuedFrame qf) {
  bool accepted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Stream& s = stream_at(id);
    MOG_CHECK(s.open, "resubmit to a closed stream");
    accepted =
        s.queue->push(std::move(qf.frame), qf.arrival_seconds, qf.ticket);
    if (!accepted)
      log_.warn("migrated frame dropped at ingress",
                {{"stream", id},
                 {"ticket", static_cast<std::int64_t>(qf.ticket)},
                 {"policy", to_string(config_.drop_policy)}});
  }
  cv_.notify_all();
  return accepted;
}

template <typename T>
MogModel<T> StreamServer<T>::stream_model(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Stream& s = stream_at(id);
  MOG_CHECK(s.pipeline != nullptr, "stream_model on a closed stream");
  return s.pipeline->model();
}

template <typename T>
void StreamServer<T>::restore_stream_model(int id, const MogModel<T>& m) {
  std::lock_guard<std::mutex> lock(mu_);
  Stream& s = stream_at(id);
  MOG_CHECK(s.pipeline != nullptr, "restore_stream_model on a closed stream");
  s.pipeline->adopt_model(m);
}

template <typename T>
fault::RecoveryStats StreamServer<T>::stream_recovery_stats(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Stream& s = stream_at(id);
  MOG_CHECK(s.pipeline != nullptr,
            "stream_recovery_stats on a closed stream");
  return s.pipeline->recovery_stats();
}

template <typename T>
std::vector<double> StreamServer<T>::latency_samples(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return stream_at(id).latencies;
}

template <typename T>
std::vector<double> StreamServer<T>::aggregate_latencies() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<double> all;
  for (const auto& s : streams_)
    all.insert(all.end(), s->latencies.begin(), s->latencies.end());
  return all;
}

template <typename T>
int StreamServer<T>::pump() {
  std::lock_guard<std::mutex> lock(mu_);
  return pump_locked();
}

template <typename T>
int StreamServer<T>::pump_locked() {
  const obs::ProfSpan pump_span{obs::ProfTag::kPump};
  const int n = static_cast<int>(streams_.size());
  if (n == 0) return 0;

  // Round-robin order rotated by the fairness cursor; the same order drives
  // all three phases of this round.
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) order.push_back((cursor_ + k) % n);
  cursor_ = (cursor_ + 1) % n;

  // Phase 1 — ingest: pop at most one frame per stream and reserve the copy
  // engine for its upload. Round r's uploads go ahead of round r-1's
  // downloads in the DMA FIFO (the simulate_overlapped enqueue order).
  struct Popped {
    int id;
    QueuedFrame qf;
  };
  std::vector<Popped> popped;
  for (const int id : order) {
    Stream& s = *streams_[static_cast<std::size_t>(id)];
    if (!s.open) continue;
    QueuedFrame qf;
    if (!s.queue->pop(qf)) continue;
    if (telemetry::CounterRegistry* reg = telemetry::counters())
      reg->record(kQueueDepthMetric, static_cast<double>(s.queue->size()));
    if (s.pipeline->gpu_pipeline() != nullptr) {
      const gpusim::FrameSchedule sched = s.pipeline->frame_schedule();
      const gpusim::SharedTimeline::Window w = timeline_.schedule_upload(
          s.lane, qf.arrival_seconds, sched.upload_seconds);
      s.last_upload_end = w.end_seconds;
      s.dma_seconds += w.end_seconds - w.start_seconds;
      ++s.uploads_outstanding;
      emit_window(id, "up", w.start_seconds, w.end_seconds);
      emit_flow('t', qf.ticket, id, w.start_seconds);
    }
    popped.push_back(Popped{id, std::move(qf)});
  }

  // Phase 2 — deliver: the previous round's pending downloads.
  for (const int id : order)
    deliver_pending(*streams_[static_cast<std::size_t>(id)], id);

  // Phase 3 — compute: run each ingested frame through its pipeline; when
  // masks come due, reserve the kernel engine and defer the batched
  // download to the next round.
  for (Popped& p : popped) {
    Stream& s = *streams_[static_cast<std::size_t>(p.id)];
    ++s.frames_scheduled;
    const double arrival = p.qf.arrival_seconds;
    const bool was_gpu = s.pipeline->gpu_pipeline() != nullptr;

    FrameU8 fg;
    bool delivered;
    {
      // The ticket scope lets the recovery layer tag its trace instants
      // with the frame that triggered them.
      obs::FrameTicketScope ticket_scope(p.qf.ticket);
      delivered = s.pipeline->process(p.qf.frame, fg);
    }
    const fault::ExecutionTier tier_now = s.pipeline->tier();
    if (tier_now != s.last_tier)
      log_.warn("stream degraded",
                {{"stream", p.id},
                 {"from", fault::to_string(s.last_tier)},
                 {"to", fault::to_string(tier_now)}});
    s.last_tier = tier_now;

    if (!was_gpu) {
      // CPU tier: private clock, no shared-engine reservations.
      const gpusim::FrameSchedule sched = s.pipeline->frame_schedule();
      const double done =
          std::max(arrival, s.cpu_clock) + sched.kernel_seconds;
      s.cpu_clock = done;
      if (delivered) {
        PendingDownload d;
        d.ready_seconds = done;
        d.arrivals.push_back(arrival);
        d.tickets.push_back(p.qf.ticket);
        if (config_.collect_masks) d.masks.push_back(std::move(fg));
        complete_masks(s, p.id, std::move(d), done);
      }
      continue;
    }

    s.in_model.push_back(InFlightFrame{arrival, p.qf.ticket});
    if (!delivered) continue;  // tiled mid-group: mask owed later

    // Group boundary (group of one for the direct variants). Prefer the full
    // group's masks; under a salvage recovery only the newest mask exists.
    std::vector<FrameU8> masks;
    const GpuMogPipeline<T>* gpu = s.pipeline->gpu_pipeline();
    if (gpu != nullptr && gpu->last_group_masks().size() == s.in_model.size())
      masks = gpu->last_group_masks();
    else
      masks.push_back(std::move(fg));
    finish_group(s, p.id, std::move(masks));
  }
  return static_cast<int>(popped.size());
}

template <typename T>
void StreamServer<T>::finish_group(Stream& s, int id,
                                   std::vector<FrameU8> masks) {
  const std::size_t count = std::min(masks.size(), s.in_model.size());
  PendingDownload d;
  // Masks bias newest (a salvage delivers only the latest), so attach the
  // newest `count` arrivals, oldest first.
  for (std::size_t i = s.in_model.size() - count; i < s.in_model.size(); ++i) {
    d.arrivals.push_back(s.in_model[i].arrival_seconds);
    d.tickets.push_back(s.in_model[i].ticket);
  }
  masks.resize(count);
  if (config_.collect_masks) d.masks = std::move(masks);
  s.in_model.clear();

  const GpuMogPipeline<T>* gpu = s.pipeline->gpu_pipeline();
  if (gpu != nullptr && s.uploads_outstanding > 0) {
    const gpusim::FrameSchedule sched = s.pipeline->frame_schedule();
    const int consumed = static_cast<int>(s.uploads_outstanding);
    const gpusim::SharedTimeline::Window w = timeline_.schedule_kernel(
        s.lane, s.last_upload_end, sched.kernel_seconds * consumed, consumed);
    s.kernel_seconds += w.end_seconds - w.start_seconds;
    s.uploads_outstanding = 0;
    emit_window(id, "kernel", w.start_seconds, w.end_seconds);
    for (const std::uint64_t t : d.tickets)
      emit_flow('t', t, id, w.start_seconds);
    d.ready_seconds = w.end_seconds;
    s.pending.push_back(std::move(d));
    return;
  }

  // Degraded mid-group: the lane goes quiet; complete on the private clock.
  s.uploads_outstanding = 0;
  double done = s.cpu_clock;
  for (const double a : d.arrivals) done = std::max(done, a);
  s.cpu_clock = done;
  d.ready_seconds = done;
  complete_masks(s, id, std::move(d), done);
}

template <typename T>
void StreamServer<T>::deliver_pending(Stream& s, int id) {
  if (s.pending.empty()) return;
  std::vector<PendingDownload> pending = std::move(s.pending);
  s.pending.clear();
  for (PendingDownload& d : pending) {
    const std::size_t count = d.arrivals.size();
    double end = d.ready_seconds;
    const GpuMogPipeline<T>* gpu =
        s.pipeline != nullptr ? s.pipeline->gpu_pipeline() : nullptr;
    if (gpu != nullptr && count > 0) {
      const gpusim::FrameSchedule sched = s.pipeline->frame_schedule();
      const gpusim::SharedTimeline::Window w = timeline_.schedule_download(
          s.lane, d.ready_seconds,
          sched.download_seconds * static_cast<double>(count));
      s.dma_seconds += w.end_seconds - w.start_seconds;
      emit_window(id, "down", w.start_seconds, w.end_seconds);
      end = w.end_seconds;
    }
    complete_masks(s, id, std::move(d), end);
  }
}

template <typename T>
void StreamServer<T>::complete_masks(Stream& s, int id, PendingDownload&& d,
                                     double end_seconds) {
  telemetry::CounterRegistry* reg = telemetry::counters();
  for (std::size_t i = 0; i < d.arrivals.size(); ++i) {
    const double latency = std::max(0.0, end_seconds - d.arrivals[i]);
    s.latencies.push_back(latency);
    if (reg != nullptr) reg->record(kLatencyMetric, latency);
    if (i < d.tickets.size()) emit_flow('f', d.tickets[i], id, end_seconds);
    ++s.masks_delivered;
  }
  if (config_.collect_masks)
    for (FrameU8& m : d.masks) s.collected.push_back(std::move(m));
  s.last_completion = std::max(s.last_completion, end_seconds);
}

template <typename T>
int StreamServer<T>::flush_stream(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  return flush_locked(id);
}

template <typename T>
int StreamServer<T>::flush_locked(int id) {
  Stream& s = stream_at(id);
  MOG_CHECK(s.open, "flush of a closed stream");
  deliver_pending(s, id);
  std::vector<FrameU8> out;
  const int n = s.pipeline->flush(out);
  if (n > 0) {
    finish_group(s, id, std::move(out));
    deliver_pending(s, id);
  }
  s.in_model.clear();
  s.uploads_outstanding = 0;
  return n;
}

template <typename T>
void StreamServer<T>::drain() {
  while (pump() > 0) {
  }
}

template <typename T>
void StreamServer<T>::start() {
  std::lock_guard<std::mutex> lock(mu_);
  MOG_CHECK(!running_, "scheduler thread already running");
  log_.info("scheduler thread starting");
  stop_requested_ = false;
  running_ = true;
  worker_ = std::thread([this] {
    obs::prof_set_thread_name((config_.profile_label + ".pump").c_str());
    std::unique_lock<std::mutex> lk(mu_);
    while (!stop_requested_) {
      if (pump_locked() > 0) continue;
      const obs::ProfSpan wait_span{obs::ProfTag::kQueueWait};
      cv_.wait_for(lk, std::chrono::milliseconds(1));
    }
  });
}

template <typename T>
void StreamServer<T>::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  worker_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

template <typename T>
std::vector<FrameU8> StreamServer<T>::take_masks(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(stream_at(id).collected);
}

template <typename T>
int StreamServer<T>::num_streams() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(streams_.size());
}

template <typename T>
int StreamServer<T>::open_streams() const {
  std::lock_guard<std::mutex> lock(mu_);
  int open_count = 0;
  for (const auto& s : streams_) open_count += s->open ? 1 : 0;
  return open_count;
}

template <typename T>
StreamStats StreamServer<T>::stream_stats(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Stream& s = stream_at(id);
  StreamStats st;
  st.queue = s.queue->stats();
  st.frames_scheduled = s.frames_scheduled;
  st.masks_delivered = s.masks_delivered;
  st.dma_seconds = s.dma_seconds;
  st.kernel_seconds = s.kernel_seconds;
  st.tier = s.pipeline != nullptr ? s.pipeline->tier() : s.last_tier;
  return st;
}

template <typename T>
telemetry::Rollup StreamServer<T>::latency_rollup(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return telemetry::make_rollup(stream_at(id).latencies);
}

template <typename T>
telemetry::Rollup StreamServer<T>::aggregate_latency_rollup() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<double> all;
  for (const auto& s : streams_)
    all.insert(all.end(), s->latencies.begin(), s->latencies.end());
  return telemetry::make_rollup(all);
}

template <typename T>
std::uint64_t StreamServer<T>::masks_delivered() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& s : streams_) total += s->masks_delivered;
  return total;
}

template <typename T>
std::uint64_t StreamServer<T>::frames_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& s : streams_) total += s->queue->stats().dropped;
  return total;
}

template <typename T>
double StreamServer<T>::makespan_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  double span = timeline_.makespan_seconds();
  for (const auto& s : streams_) {
    span = std::max(span, s->cpu_clock);
    span = std::max(span, s->last_completion);
  }
  return span;
}

template <typename T>
std::size_t StreamServer<T>::device_bytes_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_in_use_;
}

template <typename T>
std::string StreamServer<T>::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  double span = timeline_.makespan_seconds();
  for (const auto& s : streams_) {
    span = std::max(span, s->cpu_clock);
    span = std::max(span, s->last_completion);
  }
  std::string out = strprintf(
      "serve: %d stream(s), makespan %.3f s, device memory %s",
      static_cast<int>(streams_.size()), span,
      human_bytes(static_cast<double>(bytes_in_use_)).c_str());
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const Stream& s = *streams_[i];
    const QueueStats q = s.queue->stats();
    const telemetry::Rollup lat = telemetry::make_rollup(s.latencies);
    out += strprintf(
        "\n  stream %zu [%s]: %llu in / %llu masks, %llu dropped, "
        "latency p50 %.3f ms p99 %.3f ms, device %.3f s dma + %.3f s kernel",
        i,
        fault::to_string(s.pipeline != nullptr ? s.pipeline->tier()
                                               : s.last_tier),
        static_cast<unsigned long long>(q.submitted),
        static_cast<unsigned long long>(s.masks_delivered),
        static_cast<unsigned long long>(q.dropped), lat.p50 * 1e3,
        lat.p99 * 1e3, s.dma_seconds, s.kernel_seconds);
  }
  return out;
}

template <typename T>
typename StreamServer<T>::Stream& StreamServer<T>::stream_at(int id) {
  MOG_CHECK(id >= 0 && id < static_cast<int>(streams_.size()),
            "unknown stream id");
  return *streams_[static_cast<std::size_t>(id)];
}

template <typename T>
const typename StreamServer<T>::Stream& StreamServer<T>::stream_at(
    int id) const {
  MOG_CHECK(id >= 0 && id < static_cast<int>(streams_.size()),
            "unknown stream id");
  return *streams_[static_cast<std::size_t>(id)];
}

template <typename T>
void StreamServer<T>::emit_window(int id, const char* kind,
                                  double start_seconds, double end_seconds) {
  telemetry::TraceRecorder* tr = telemetry::tracer();
  if (tr == nullptr) return;
  tr->complete(kind, "serve", telemetry::TraceRecorder::kServeTrackBase + id,
               to_us(start_seconds), to_us(end_seconds - start_seconds),
               {{"stream", static_cast<double>(id)}});
}

template <typename T>
void StreamServer<T>::emit_flow(char phase, std::uint64_t ticket, int id,
                                double seconds) {
  if (ticket == 0) return;
  telemetry::TraceRecorder* tr = telemetry::tracer();
  if (tr == nullptr) return;
  const int tid = telemetry::TraceRecorder::kServeTrackBase + id;
  if (phase == 's')
    tr->flow_begin("frame", "serve.flow", ticket, tid, to_us(seconds));
  else if (phase == 't')
    tr->flow_step("frame", "serve.flow", ticket, tid, to_us(seconds));
  else
    tr->flow_end("frame", "serve.flow", ticket, tid, to_us(seconds));
}

template <typename T>
std::string StreamServer<T>::metrics_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_text_locked();
}

template <typename T>
std::string StreamServer<T>::metrics_text_locked() const {
  using obs::MetricFamily;
  using obs::MetricType;
  std::vector<MetricFamily> families;

  const auto stream_label = [](std::size_t i) {
    return obs::LabelSet{{"stream", strprintf("%zu", i)}};
  };

  // Queue / delivery counters, one sample per stream.
  struct CounterSpec {
    const char* name;
    const char* help;
    std::uint64_t (*value)(const Stream&);
  };
  const CounterSpec specs[] = {
      {"mog_serve_frames_submitted_total", "Frames offered to submit()",
       [](const Stream& s) { return s.queue->stats().submitted; }},
      {"mog_serve_frames_dropped_total",
       "Frames lost to the queue drop policy",
       [](const Stream& s) { return s.queue->stats().dropped; }},
      {"mog_serve_frames_scheduled_total",
       "Frames popped into the pipeline",
       [](const Stream& s) { return s.frames_scheduled; }},
      {"mog_serve_masks_delivered_total", "Masks completed end to end",
       [](const Stream& s) { return s.masks_delivered; }},
  };
  for (const CounterSpec& spec : specs) {
    MetricFamily f;
    f.name = spec.name;
    f.help = spec.help;
    f.type = MetricType::kCounter;
    for (std::size_t i = 0; i < streams_.size(); ++i)
      f.samples.push_back(
          {stream_label(i), static_cast<double>(spec.value(*streams_[i]))});
    families.push_back(std::move(f));
  }

  {
    MetricFamily f;
    f.name = "mog_serve_queue_depth";
    f.help = "Frames currently waiting in the ingress queue";
    for (std::size_t i = 0; i < streams_.size(); ++i)
      f.samples.push_back(
          {stream_label(i), static_cast<double>(streams_[i]->queue->size())});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f;
    f.name = "mog_serve_queue_high_water";
    f.help = "Maximum ingress queue depth observed";
    for (std::size_t i = 0; i < streams_.size(); ++i)
      f.samples.push_back({stream_label(i),
                           static_cast<double>(
                               streams_[i]->queue->stats().high_water)});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f;
    f.name = "mog_serve_stream_tier";
    f.help = "Degradation-ladder tier (0 tiled GPU, 1 direct GPU, 2 CPU)";
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      const Stream& s = *streams_[i];
      const fault::ExecutionTier tier =
          s.pipeline != nullptr ? s.pipeline->tier() : s.last_tier;
      f.samples.push_back(
          {stream_label(i), static_cast<double>(static_cast<int>(tier))});
    }
    families.push_back(std::move(f));
  }

  // End-to-end latency histograms (arrival -> mask download complete).
  {
    MetricFamily f;
    f.name = "mog_serve_latency_seconds";
    f.help = "End-to-end modeled latency per delivered mask";
    f.type = MetricType::kHistogram;
    for (std::size_t i = 0; i < streams_.size(); ++i)
      f.histograms.push_back(
          obs::make_histogram(streams_[i]->latencies, stream_label(i)));
    families.push_back(std::move(f));
  }

  // Recovery actions, labelled by action kind.
  {
    MetricFamily f;
    f.name = "mog_serve_recovery_actions_total";
    f.help = "Recovery actions taken by each stream's resilient pipeline";
    f.type = MetricType::kCounter;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      const Stream& s = *streams_[i];
      if (s.pipeline == nullptr) continue;
      const fault::RecoveryStats& r = s.pipeline->recovery_stats();
      const std::pair<const char*, std::uint64_t> actions[] = {
          {"retry", r.retries},          {"mask_reused", r.masks_reused},
          {"frame_lost", r.frames_lost}, {"checkpoint", r.checkpoints},
          {"rollback", r.rollbacks},     {"degradation", r.degradations},
          {"deadline", r.deadline_exceeded},
      };
      for (const auto& [action, count] : actions) {
        obs::LabelSet labels = stream_label(i);
        labels.emplace_back("action", action);
        f.samples.push_back({std::move(labels), static_cast<double>(count)});
      }
    }
    families.push_back(std::move(f));
  }

  // Shared-engine utilization: which engine is the multi-stream bottleneck.
  const double span = timeline_.makespan_seconds();
  {
    MetricFamily f;
    f.name = "mog_timeline_engine_busy_seconds";
    f.help = "Cumulative busy time of the shared device engines";
    f.samples.push_back(
        {{{"engine", "dma"}}, timeline_.dma_busy_seconds()});
    f.samples.push_back(
        {{{"engine", "kernel"}}, timeline_.kernel_busy_seconds()});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f;
    f.name = "mog_timeline_engine_utilization";
    f.help = "Engine busy time over the modeled makespan (0 when idle)";
    f.samples.push_back(
        {{{"engine", "dma"}},
         span > 0 ? timeline_.dma_busy_seconds() / span : 0.0});
    f.samples.push_back(
        {{{"engine", "kernel"}},
         span > 0 ? timeline_.kernel_busy_seconds() / span : 0.0});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f;
    f.name = "mog_timeline_makespan_seconds";
    f.help = "Modeled completion time across engines and CPU-tier clocks";
    double makespan = span;
    for (const auto& s : streams_) {
      makespan = std::max(makespan, s->cpu_clock);
      makespan = std::max(makespan, s->last_completion);
    }
    f.samples.push_back({{}, makespan});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f;
    f.name = "mog_serve_open_streams";
    f.help = "Streams currently admitted";
    int open_count = 0;
    for (const auto& s : streams_) open_count += s->open ? 1 : 0;
    f.samples.push_back({{}, static_cast<double>(open_count)});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f;
    f.name = "mog_serve_device_memory_bytes";
    f.help = "Aggregate device memory held by admitted streams";
    f.samples.push_back({{}, static_cast<double>(bytes_in_use_)});
    families.push_back(std::move(f));
  }

  // Global telemetry sinks, when installed: kernel-counter rollups and
  // trace-recorder drop health. The server records its own custom series
  // (serve.latency_seconds, serve.queue_depth) into the registry, and
  // append_counter_registry would render those under the same mog_serve_*
  // names as the richer per-stream families above — drop the duplicates, the
  // labelled families win.
  std::vector<MetricFamily> global;
  if (const telemetry::CounterRegistry* reg = telemetry::counters())
    obs::append_counter_registry(*reg, global);
  if (const telemetry::TraceRecorder* tr = telemetry::tracer())
    obs::append_trace_health(*tr, global);
  for (MetricFamily& f : global) {
    bool duplicate = false;
    for (const MetricFamily& own : families) duplicate |= own.name == f.name;
    if (!duplicate) families.push_back(std::move(f));
  }

  return obs::render(families);
}

template <typename T>
bool StreamServer<T>::healthz(std::string& detail) const {
  std::lock_guard<std::mutex> lock(mu_);
  return healthz_locked(detail);
}

template <typename T>
bool StreamServer<T>::healthz_locked(std::string& detail) const {
  bool ok = true;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const Stream& s = *streams_[i];
    if (!s.open) continue;
    const fault::ExecutionTier tier = s.pipeline->tier();
    const bool on_gpu = tier != fault::ExecutionTier::kCpuSerial;
    // Subsampled watchdog scan — same check the rollback machinery uses.
    const fault::ModelHealth health = fault::validate_model(
        s.pipeline->model(), config_.resilience.health_check_stride);
    const bool model_ok =
        health.healthy(config_.resilience.weight_drift_tolerance);
    ok = ok && on_gpu && model_ok;
    detail += strprintf("stream %zu: tier=%s model=%s\n", i,
                        fault::to_string(tier),
                        model_ok ? "healthy" : health.summary().c_str());
  }
  return ok;
}

template <typename T>
std::string StreamServer<T>::statusz() const {
  std::lock_guard<std::mutex> lock(mu_);
  return statusz_locked();
}

template <typename T>
std::string StreamServer<T>::statusz_locked() const {
  std::string out = "== serve ==\n";
  double span = timeline_.makespan_seconds();
  for (const auto& s : streams_) {
    span = std::max(span, s->cpu_clock);
    span = std::max(span, s->last_completion);
  }
  out += strprintf(
      "streams: %zu, makespan %.3f s, device memory %s\n"
      "engines: dma %.3f s busy, kernel %.3f s busy\n",
      streams_.size(), span,
      human_bytes(static_cast<double>(bytes_in_use_)).c_str(),
      timeline_.dma_busy_seconds(), timeline_.kernel_busy_seconds());
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const Stream& s = *streams_[i];
    const QueueStats q = s.queue->stats();
    const telemetry::Rollup lat = telemetry::make_rollup(s.latencies);
    out += strprintf(
        "stream %zu [%s]: %llu in / %llu masks / %llu dropped, "
        "latency p50 %.3f ms p99 %.3f ms\n",
        i,
        fault::to_string(s.pipeline != nullptr ? s.pipeline->tier()
                                               : s.last_tier),
        static_cast<unsigned long long>(q.submitted),
        static_cast<unsigned long long>(s.masks_delivered),
        static_cast<unsigned long long>(q.dropped), lat.p50 * 1e3,
        lat.p99 * 1e3);
    if (s.pipeline != nullptr)
      out += "  " + s.pipeline->recovery_stats().summary() + "\n";
  }
  if (const telemetry::CounterRegistry* reg = telemetry::counters()) {
    out += "== kernel counters ==\n";
    out += reg->summary() + "\n";
  }
  return out;
}

template class StreamServer<float>;
template class StreamServer<double>;

}  // namespace mog::serve
