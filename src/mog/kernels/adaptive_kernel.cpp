#include "mog/kernels/adaptive_kernel.hpp"

namespace mog::kernels {

namespace {

using gpusim::Addr;
using gpusim::Pred;
using gpusim::Vec;
using gpusim::WarpCtx;

template <typename T>
struct AdaptiveArgs {
  const AdaptiveDeviceState<T>* state;
  gpusim::DevSpan<std::uint8_t> frame;
  gpusim::DevSpan<std::uint8_t> foreground;
  TypedMogParams<T> p;
  T prune_weight;
  Addr n;
  AdaptiveCounters* counters;
};

/// The variable-K warp body. Parameters stay memory-resident throughout —
/// per-lane slot indices (cnt differs across lanes) defeat register caching,
/// which is exactly the §II "unbalanced memory access" effect.
template <typename T>
void adaptive_warp(WarpCtx& ctx, const AdaptiveArgs<T>& a) {
  const T alpha = a.p.alpha;
  const T oma = a.p.one_minus_alpha;
  const T min_var = a.p.min_sd * a.p.min_sd;
  const auto& st = *a.state;

  const Vec<Addr> gid = ctx.global_ids();
  const Vec<T> x = ctx.load<T>(a.frame, gid);
  Vec<std::int32_t> cnt = ctx.load<std::int32_t>(st.counts(), gid);

  auto slot_idx = [&](int k) {
    return gid + static_cast<Addr>(k) * a.n;
  };
  auto lane_slot_idx = [&](const Vec<std::int32_t>& k) {
    // Per-lane slot index: gid + k*n (two instructions on real hardware).
    Vec<Addr> idx = gid;
    for (int i = 0; i < gpusim::kWarpSize; ++i)
      idx[i] = gid[i] + static_cast<Addr>(k[i]) * a.n;
    return idx;
  };

  // Lockstep bound: every lane runs to the warp-wide maximum count.
  const int warp_max = ctx.lane_max(cnt, 1);
  if (a.counters != nullptr) {
    std::uint64_t lane_iters = 0;
    for (int i = 0; i < gpusim::kWarpSize; ++i)
      if ((ctx.active_mask() >> i) & 1u)
        lane_iters += static_cast<std::uint64_t>(cnt[i]);
    a.counters->lane_iterations.fetch_add(lane_iters,
                                          std::memory_order_relaxed);
    a.counters->lockstep_iterations.fetch_add(
        static_cast<std::uint64_t>(warp_max) *
            static_cast<std::uint64_t>(ctx.active_count()),
        std::memory_order_relaxed);
  }

  // --- match / update over active slots --------------------------------------
  Pred any{};
  for (int k = 0; k < warp_max; ++k) {
    ctx.if_then(vlt(Vec<std::int32_t>(k), cnt), [&] {
      const Vec<Addr> idx = slot_idx(k);
      const Vec<T> mk = ctx.load<T>(st.means(), idx);
      const Vec<T> sk = ctx.load<T>(st.sds(), idx);
      const Vec<T> d = vabs(mk - x);
      const Pred match = vlt(d, sk * a.p.gamma1);
      any.bits |= match.bits & ctx.active_mask();
      ctx.if_then_else(
          match,
          [&] {
            const Vec<T> wk = ctx.load<T>(st.weights(), idx);
            const Vec<T> w_new = vfma(wk, Vec<T>(alpha), Vec<T>(oma));
            const Vec<T> tmp = oma / w_new;
            const Vec<T> delta = x - mk;
            const Vec<T> m_new = vfma(tmp, delta, mk);
            Vec<T> var = sk * sk;
            var = vfma(tmp, delta * delta - var, var);
            var = vmax(var, Vec<T>(min_var));
            const Vec<T> sd_new = vsqrt(var);
            ctx.store(st.weights(), idx, w_new);
            ctx.store(st.means(), idx, m_new);
            ctx.store(st.sds(), idx, sd_new);
          },
          [&] {
            const Vec<T> wk = ctx.load<T>(st.weights(), idx);
            ctx.store(st.weights(), idx, wk * Vec<T>(alpha));
          });
    });
  }

  // --- growth / replacement on no-match --------------------------------------
  ctx.if_then(~any, [&] {
    const Pred can_grow =
        vlt(cnt, static_cast<std::int32_t>(st.max_components()));
    ctx.if_then_else(
        can_grow,
        [&] {
          const Vec<Addr> idx = lane_slot_idx(cnt);
          ctx.store(st.weights(), idx, Vec<T>(a.p.w_init));
          ctx.store(st.means(), idx, x);
          ctx.store(st.sds(), idx, Vec<T>(a.p.sd_init));
          ctx.set(cnt, cnt + Vec<std::int32_t>(1));
        },
        [&] {
          // Replace the lowest-weight slot: scan active slots.
          Vec<T> min_w(static_cast<T>(1e30));
          Vec<std::int32_t> min_k(0);
          for (int k = 0; k < warp_max; ++k) {
            ctx.if_then(vlt(Vec<std::int32_t>(k), cnt), [&] {
              const Vec<T> wk = ctx.load<T>(st.weights(), slot_idx(k));
              const Pred less = vlt(wk, min_w);
              // Masked blends: only active lanes may update their minimum.
              ctx.set(min_w, select(less, wk, min_w));
              ctx.set(min_k, select(less, Vec<std::int32_t>(k), min_k));
            });
          }
          const Vec<Addr> idx = lane_slot_idx(min_k);
          ctx.store(st.weights(), idx, Vec<T>(a.p.w_init));
          ctx.store(st.means(), idx, x);
          ctx.store(st.sds(), idx, Vec<T>(a.p.sd_init));
        });
  });
  const int warp_max2 = ctx.lane_max(cnt, 1);  // growth may have raised it

  // --- normalization over active slots ----------------------------------------
  Vec<T> sum(T{0});
  for (int k = 0; k < warp_max2; ++k) {
    ctx.if_then(vlt(Vec<std::int32_t>(k), cnt), [&] {
      const Vec<T> wk = ctx.load<T>(st.weights(), slot_idx(k));
      ctx.set(sum, sum + wk);
    });
  }
  const Vec<T> inv = T{1} / sum;
  for (int k = 0; k < warp_max2; ++k) {
    ctx.if_then(vlt(Vec<std::int32_t>(k), cnt), [&] {
      const Vec<T> wk = ctx.load<T>(st.weights(), slot_idx(k));
      ctx.store(st.weights(), slot_idx(k), wk * inv);
    });
  }

  // --- prune negligible slots (swap-with-last, matching the CPU order) --------
  for (int k = warp_max2 - 1; k >= 0; --k) {
    const Pred valid = vlt(Vec<std::int32_t>(k), cnt);
    ctx.if_then(valid, [&] {
      const Vec<T> wk = ctx.load<T>(st.weights(), slot_idx(k));
      const Pred prunable =
          vlt(wk, Vec<T>(a.prune_weight)) & vgt(cnt, std::int32_t{1});
      ctx.if_then(prunable, [&] {
        const Vec<std::int32_t> last = cnt - Vec<std::int32_t>(1);
        const Vec<Addr> last_idx = lane_slot_idx(last);
        const Vec<Addr> k_idx = slot_idx(k);
        // Move the last slot into k (the pruned weight is discarded).
        ctx.store(st.weights(), k_idx, ctx.load<T>(st.weights(), last_idx));
        ctx.store(st.means(), k_idx, ctx.load<T>(st.means(), last_idx));
        ctx.store(st.sds(), k_idx, ctx.load<T>(st.sds(), last_idx));
        ctx.set(cnt, last);
      });
    });
  }

  // --- decision over active slots ----------------------------------------------
  Pred bg{};
  const int warp_max3 = ctx.lane_max(cnt, 1);
  for (int k = 0; k < warp_max3; ++k) {
    ctx.if_then(vlt(Vec<std::int32_t>(k), cnt), [&] {
      const Vec<Addr> idx = slot_idx(k);
      const Vec<T> wk = ctx.load<T>(st.weights(), idx);
      const Vec<T> mk = ctx.load<T>(st.means(), idx);
      const Vec<T> sk = ctx.load<T>(st.sds(), idx);
      const Pred bgk =
          vge(wk, a.p.gamma2) & vlt(vabs(x - mk), sk * a.p.gamma1d);
      bg.bits |= bgk.bits & ctx.active_mask();
    });
  }

  ctx.store(st.counts(), gid, cnt);
  ctx.store(a.foreground, gid,
            select(bg, Vec<std::int32_t>(0), Vec<std::int32_t>(255)));
}

}  // namespace

template <typename T>
AdaptiveDeviceState<T>::AdaptiveDeviceState(gpusim::Device& device, int width,
                                            int height,
                                            const AdaptiveMogParams& params)
    : width_(width),
      height_(height),
      k_max_(params.base.num_components),
      n_(static_cast<std::size_t>(width) * height) {
  params.validate();
  w_ = device.memory().alloc<T>(n_ * k_max_);
  m_ = device.memory().alloc<T>(n_ * k_max_);
  sd_ = device.memory().alloc<T>(n_ * k_max_);
  count_ = device.memory().alloc<std::int32_t>(n_);
  upload(AdaptiveMogModel<T>(width, height, params));
}

template <typename T>
void AdaptiveDeviceState<T>::upload(const AdaptiveMogModel<T>& model) {
  MOG_CHECK(model.width() == width_ && model.height() == height_ &&
                model.max_components() == k_max_,
            "model shape mismatch");
  gpusim::copy_to_device(w_, model.weights().data(), n_ * k_max_);
  gpusim::copy_to_device(m_, model.means().data(), n_ * k_max_);
  gpusim::copy_to_device(sd_, model.sds().data(), n_ * k_max_);
  gpusim::copy_to_device(count_, model.counts().data(), n_);
}

template <typename T>
AdaptiveMogModel<T> AdaptiveDeviceState<T>::download(
    const AdaptiveMogParams& params) const {
  AdaptiveMogModel<T> model(width_, height_, params);
  gpusim::copy_from_device(model.weights().data(), w_, n_ * k_max_);
  gpusim::copy_from_device(model.means().data(), m_, n_ * k_max_);
  gpusim::copy_from_device(model.sds().data(), sd_, n_ * k_max_);
  gpusim::copy_from_device(model.counts().data(), count_, n_);
  return model;
}

template <typename T>
gpusim::KernelStats launch_adaptive_frame(
    gpusim::Device& device, AdaptiveDeviceState<T>& state,
    const gpusim::DevSpan<std::uint8_t>& frame,
    const gpusim::DevSpan<std::uint8_t>& foreground,
    const TypedMogParams<T>& params, T prune_weight,
    AdaptiveCounters* counters, int threads_per_block) {
  MOG_CHECK(frame.count == state.num_pixels() &&
                foreground.count == state.num_pixels(),
            "frame/foreground buffers must cover all pixels");
  MOG_CHECK(params.k == state.max_components(),
            "params.k must equal the state's max component count");

  AdaptiveArgs<T> args{&state,
                       frame,
                       foreground,
                       params,
                       prune_weight,
                       static_cast<Addr>(state.num_pixels()),
                       counters};
  gpusim::LaunchConfig cfg;
  cfg.num_threads = static_cast<std::int64_t>(state.num_pixels());
  cfg.threads_per_block = threads_per_block;
  return device.launch(cfg, [&](gpusim::BlockCtx& blk) {
    blk.parallel([&](WarpCtx& warp) { adaptive_warp(warp, args); });
  });
}

template class AdaptiveDeviceState<float>;
template class AdaptiveDeviceState<double>;
template gpusim::KernelStats launch_adaptive_frame<float>(
    gpusim::Device&, AdaptiveDeviceState<float>&,
    const gpusim::DevSpan<std::uint8_t>&, const gpusim::DevSpan<std::uint8_t>&,
    const TypedMogParams<float>&, float, AdaptiveCounters*, int);
template gpusim::KernelStats launch_adaptive_frame<double>(
    gpusim::Device&, AdaptiveDeviceState<double>&,
    const gpusim::DevSpan<std::uint8_t>&, const gpusim::DevSpan<std::uint8_t>&,
    const TypedMogParams<double>&, double, AdaptiveCounters*, int);

}  // namespace mog::kernels
