#include "mog/kernels/tiled_kernel.hpp"

namespace mog::kernels {

namespace {

using gpusim::Addr;
using gpusim::Pred;
using gpusim::SharedSpan;
using gpusim::Vec;
using gpusim::WarpCtx;

template <typename T>
struct TiledArgs {
  const DeviceMogState<T>* state;
  std::span<const gpusim::DevSpan<std::uint8_t>> frames;
  std::span<const gpusim::DevSpan<std::uint8_t>> foregrounds;
  TypedMogParams<T> p;
  int tile;
  Addr n;
};

template <typename T>
struct TileShared {
  SharedSpan<T> w, m, sd;
};

/// One frame's worth of per-warp MoG work against shared-memory parameters
/// (variant-F structure: predicated update, no sort, recomputed diff).
template <typename T>
void tiled_frame_warp(WarpCtx& ctx, const TiledArgs<T>& a,
                      const TileShared<T>& sh, int frame_idx) {
  const int K = a.p.k;
  const T alpha = a.p.alpha;
  const T oma = a.p.one_minus_alpha;
  const T min_var = a.p.min_sd * a.p.min_sd;
  const Addr tile = a.tile;

  const Vec<Addr> gid = ctx.global_ids();
  const Vec<Addr> tid = gid - Vec<Addr>(gid[0] / tile * tile);  // within tile
  const Vec<T> x = ctx.load<T>(a.frames[frame_idx], gid);

  // Pass 1: match + predicated update, parameters in shared memory.
  Pred any{};
  Vec<T> sum(T{0});
  ctx.for_range(K, [&](int k) {
    const Vec<Addr> si = tid + static_cast<Addr>(k) * tile;
    const Vec<T> wv = ctx.shared_load(sh.w, si);
    const Vec<T> mv = ctx.shared_load(sh.m, si);
    const Vec<T> sv = ctx.shared_load(sh.sd, si);

    const Vec<T> d = vabs(mv - x);
    const Pred match = vlt(d, sv * a.p.gamma1);
    any = any | match;

    const Vec<T> matchv = select(match, Vec<T>(T{1}), Vec<T>(T{0}));
    const Vec<T> w_new = vfma(matchv, Vec<T>(oma), wv * Vec<T>(alpha));
    const Vec<T> w_safe = vmax(w_new, Vec<T>(static_cast<T>(1e-12)));
    const Vec<T> tmp = oma / w_safe;
    const Vec<T> delta = x - mv;
    const Vec<T> m_upd = vfma(tmp, delta, mv);
    Vec<T> var = sv * sv;
    var = vfma(tmp, delta * delta - var, var);
    var = vmax(var, Vec<T>(min_var));
    const Vec<T> sd_upd = vsqrt(var);

    ctx.shared_store(sh.w, si, w_new);
    ctx.shared_store(sh.m, si, select(match, m_upd, mv));
    ctx.shared_store(sh.sd, si, select(match, sd_upd, sv));
    sum = sum + w_new;
  });

  // Virtual component: replace the lowest-weight one where nothing matched.
  ctx.if_then(~any, [&] {
    Vec<T> min_w = ctx.shared_load(sh.w, tid);
    Vec<std::int32_t> min_idx(0);
    ctx.for_range(K - 1, [&](int k1) {
      const Vec<Addr> si = tid + static_cast<Addr>(k1 + 1) * tile;
      const Vec<T> wv = ctx.shared_load(sh.w, si);
      const Pred less = vlt(wv, min_w);
      min_w = select(less, wv, min_w);
      min_idx = select(less, Vec<std::int32_t>(k1 + 1), min_idx);
    });
    ctx.for_range(K, [&](int k) {
      ctx.if_then(veq(min_idx, static_cast<std::int32_t>(k)), [&] {
        const Vec<Addr> si = tid + static_cast<Addr>(k) * tile;
        ctx.shared_store(sh.w, si, Vec<T>(a.p.w_init));
        ctx.shared_store(sh.m, si, x);
        ctx.shared_store(sh.sd, si, Vec<T>(a.p.sd_init));
        // The weight sum must reflect the replacement: add the delta.
        ctx.set(sum, sum - min_w + Vec<T>(a.p.w_init));
      });
    });
  });

  // Pass 2: normalize weights in shared memory + foreground decision
  // (variant-F style: recomputed diff against the updated mean).
  const Vec<T> inv = T{1} / sum;
  Pred bg{};
  ctx.for_range(K, [&](int k) {
    const Vec<Addr> si = tid + static_cast<Addr>(k) * tile;
    const Vec<T> wn = ctx.shared_load(sh.w, si) * inv;
    ctx.shared_store(sh.w, si, wn);
    const Vec<T> d = vabs(x - ctx.shared_load(sh.m, si));
    const Pred bgk =
        vge(wn, a.p.gamma2) & vlt(d, ctx.shared_load(sh.sd, si) * a.p.gamma1d);
    bg = bg | bgk;
  });

  const Vec<std::int32_t> fg_val =
      select(bg, Vec<std::int32_t>(0), Vec<std::int32_t>(255));
  ctx.store(a.foregrounds[frame_idx], gid, fg_val);
}

template <typename T>
void tiled_block(gpusim::BlockCtx& blk, const TiledArgs<T>& a) {
  const int K = a.p.k;
  const Addr tile = a.tile;
  // Shared memory is strictly block-scoped: every block stages its own tile
  // from global memory in phase 1 and writes it back in phase 3, never
  // reading another block's resident data. That is what lets the host block
  // executor run blocks concurrently, each against its worker's private
  // arena — the SharedSpans below are only valid within this block. `a` is
  // shared across concurrently-running blocks and must stay read-only.
  TileShared<T> sh;
  sh.w = blk.shared_alloc<T>(static_cast<std::size_t>(tile) * K);
  sh.m = blk.shared_alloc<T>(static_cast<std::size_t>(tile) * K);
  sh.sd = blk.shared_alloc<T>(static_cast<std::size_t>(tile) * K);

  // Phase 1: global -> shared (coalesced: consecutive lanes, consecutive
  // elements in both spaces).
  blk.parallel([&](WarpCtx& ctx) {
    const Vec<Addr> gid = ctx.global_ids();
    const Vec<Addr> tid = gid - Vec<Addr>(gid[0] / tile * tile);
    ctx.for_range(K, [&](int k) {
      const Vec<Addr> gi = gid + static_cast<Addr>(k) * a.n;
      const Vec<Addr> si = tid + static_cast<Addr>(k) * tile;
      ctx.shared_store(sh.w, si, ctx.load<T>(a.state->weights(), gi));
      ctx.shared_store(sh.m, si, ctx.load<T>(a.state->means(), gi));
      ctx.shared_store(sh.sd, si, ctx.load<T>(a.state->sds(), gi));
    });
  });

  // Phase 2: the frame group, same tile across consecutive frames (Fig. 9).
  for (std::size_t f = 0; f < a.frames.size(); ++f) {
    blk.parallel([&](WarpCtx& ctx) {
      tiled_frame_warp(ctx, a, sh, static_cast<int>(f));
    });
  }

  // Phase 3: shared -> global write-back.
  blk.parallel([&](WarpCtx& ctx) {
    const Vec<Addr> gid = ctx.global_ids();
    const Vec<Addr> tid = gid - Vec<Addr>(gid[0] / tile * tile);
    ctx.for_range(K, [&](int k) {
      const Vec<Addr> gi = gid + static_cast<Addr>(k) * a.n;
      const Vec<Addr> si = tid + static_cast<Addr>(k) * tile;
      ctx.store(a.state->weights(), gi, ctx.shared_load(sh.w, si));
      ctx.store(a.state->means(), gi, ctx.shared_load(sh.m, si));
      ctx.store(a.state->sds(), gi, ctx.shared_load(sh.sd, si));
    });
  });
}

}  // namespace

template <typename T>
gpusim::KernelStats launch_tiled_group(
    gpusim::Device& device, DeviceMogState<T>& state,
    std::span<const gpusim::DevSpan<std::uint8_t>> frames,
    std::span<const gpusim::DevSpan<std::uint8_t>> foregrounds,
    const TypedMogParams<T>& params, const TiledConfig& config) {
  config.validate();
  MOG_CHECK(state.layout() == ParamLayout::kSoA,
            "tiled kernel requires SoA state");
  MOG_CHECK(!frames.empty() && frames.size() == foregrounds.size(),
            "frame group must be non-empty and masks must match");
  MOG_CHECK(frames.size() <= static_cast<std::size_t>(config.frame_group),
            "group larger than configured frame_group");
  for (const auto& f : frames)
    MOG_CHECK(f.count == state.num_pixels(), "frame buffer size mismatch");
  for (const auto& f : foregrounds)
    MOG_CHECK(f.count == state.num_pixels(), "mask buffer size mismatch");

  TiledArgs<T> args{&state,
                    frames,
                    foregrounds,
                    params,
                    config.tile_pixels,
                    static_cast<Addr>(state.num_pixels())};

  gpusim::LaunchConfig cfg;
  cfg.num_threads = static_cast<std::int64_t>(state.num_pixels());
  cfg.threads_per_block = config.tile_pixels;
  return device.launch(cfg, [&](gpusim::BlockCtx& blk) {
    tiled_block(blk, args);
  });
}

template gpusim::KernelStats launch_tiled_group<float>(
    gpusim::Device&, DeviceMogState<float>&,
    std::span<const gpusim::DevSpan<std::uint8_t>>,
    std::span<const gpusim::DevSpan<std::uint8_t>>,
    const TypedMogParams<float>&, const TiledConfig&);
template gpusim::KernelStats launch_tiled_group<double>(
    gpusim::Device&, DeviceMogState<double>&,
    std::span<const gpusim::DevSpan<std::uint8_t>>,
    std::span<const gpusim::DevSpan<std::uint8_t>>,
    const TypedMogParams<double>&, const TiledConfig&);

}  // namespace mog::kernels
