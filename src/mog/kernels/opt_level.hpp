// The paper's optimization ladder (Tables II and III).
//
//   A  base CUDA port           — AoS layout, sorted algorithm, sequential
//                                 transfers
//   B  + memory coalescing      — SoA layout (Fig. 4b)
//   C  + overlapped execution   — double-buffered transfers (Fig. 5b);
//                                 kernel identical to B
//   D  + branch reduction       — no rank/sort, unconditional component scan
//                                 (Algorithms 2 -> 3)
//   E  + predicated execution   — parameter update via blends
//                                 (Algorithms 4 -> 5)
//   F  + register reduction     — drop the diff[] array, recompute the
//                                 difference in the foreground test
//   G  + kernel fusion          — the despeckle/close mask-validation
//                                 epilogue runs on-device, fused into the
//                                 frame pass (arXiv 1509.04394's technique);
//                                 only the cleaned mask crosses DRAM
#pragma once

namespace mog::kernels {

enum class OptLevel { kA, kB, kC, kD, kE, kF, kG };

inline constexpr OptLevel kAllLevels[] = {
    OptLevel::kA, OptLevel::kB, OptLevel::kC, OptLevel::kD,
    OptLevel::kE, OptLevel::kF, OptLevel::kG};

/// A uses the interleaved (array-of-structures) parameter layout.
inline bool uses_aos_layout(OptLevel level) { return level == OptLevel::kA; }

/// A, B, C rank + sort components and early-exit the foreground scan.
inline bool uses_sort(OptLevel level) { return level <= OptLevel::kC; }

/// E, F use source-level predicated updates instead of branches.
inline bool uses_predication(OptLevel level) { return level >= OptLevel::kE; }

/// A..E keep the pre-update diff[] array live for the foreground test;
/// F recomputes the difference (the register-reduction rewrite).
inline bool keeps_diff_array(OptLevel level) { return level <= OptLevel::kE; }

/// C onward overlaps transfers with kernel execution.
inline bool uses_overlap(OptLevel level) { return level >= OptLevel::kC; }

/// G fuses the mask-validation epilogue (despeckle + close) into the device
/// frame pass; the MoG phase itself keeps F's structure (predicated, no
/// sort, recomputed diff).
inline bool uses_fused_postproc(OptLevel level) {
  return level >= OptLevel::kG;
}

inline const char* to_string(OptLevel level) {
  switch (level) {
    case OptLevel::kA: return "A";
    case OptLevel::kB: return "B";
    case OptLevel::kC: return "C";
    case OptLevel::kD: return "D";
    case OptLevel::kE: return "E";
    case OptLevel::kF: return "F";
    case OptLevel::kG: return "G";
  }
  return "?";
}

inline const char* describe(OptLevel level) {
  switch (level) {
    case OptLevel::kA: return "base implementation";
    case OptLevel::kB: return "+ memory coalescing (SoA)";
    case OptLevel::kC: return "+ overlapped transfers";
    case OptLevel::kD: return "+ branch reduction (no sort)";
    case OptLevel::kE: return "+ predicated execution";
    case OptLevel::kF: return "+ register reduction";
    case OptLevel::kG: return "+ kernel fusion (fused mask postproc)";
  }
  return "?";
}

}  // namespace mog::kernels
