// Device-resident Gaussian-mixture state.
//
// Like the paper (§IV-A), parameters are "initialized once by the CPU and
// then stored in GPU global memory" — they never cross the PCIe link during
// steady-state processing. Two layouts:
//
//   AoS (Fig. 4a, variant A):  [pixel0: m0 w0 sd0 m1 w1 sd1 ...][pixel1: ...]
//   SoA (Fig. 4b, variants B+): m[k*N + p], w[k*N + p], sd[k*N + p]
#pragma once

#include <cstdint>

#include "mog/cpu/mog_model.hpp"
#include "mog/gpusim/kernel_launch.hpp"

namespace mog::kernels {

enum class ParamLayout { kAoS, kSoA };

template <typename T>
class DeviceMogState {
 public:
  DeviceMogState(gpusim::Device& device, int width, int height,
                 const MogParams& params, ParamLayout layout)
      : layout_(layout),
        width_(width),
        height_(height),
        k_(params.num_components),
        n_(static_cast<std::size_t>(width) * height) {
    params.validate();
    if (layout == ParamLayout::kAoS) {
      aos_ = device.memory().alloc<T>(n_ * k_ * 3);
    } else {
      w_ = device.memory().alloc<T>(n_ * k_);
      m_ = device.memory().alloc<T>(n_ * k_);
      sd_ = device.memory().alloc<T>(n_ * k_);
    }
    upload(MogModel<T>(width, height, params));
  }

  ParamLayout layout() const { return layout_; }
  int width() const { return width_; }
  int height() const { return height_; }
  int num_components() const { return k_; }
  std::size_t num_pixels() const { return n_; }

  // SoA spans (valid when layout == kSoA).
  const gpusim::DevSpan<T>& weights() const { return w_; }
  const gpusim::DevSpan<T>& means() const { return m_; }
  const gpusim::DevSpan<T>& sds() const { return sd_; }
  // AoS span (valid when layout == kAoS); element order per component:
  // mean, weight, sd.
  const gpusim::DevSpan<T>& aos() const { return aos_; }

  /// Overwrite device state from a host model (layout conversion included).
  void upload(const MogModel<T>& model) {
    MOG_CHECK(model.width() == width_ && model.height() == height_ &&
                  model.num_components() == k_,
              "model shape mismatch");
    if (layout_ == ParamLayout::kAoS) {
      for (std::size_t p = 0; p < n_; ++p)
        for (int k = 0; k < k_; ++k) {
          const std::size_t base = (p * k_ + static_cast<std::size_t>(k)) * 3;
          aos_.data[base + 0] = model.mean(p, k);
          aos_.data[base + 1] = model.weight(p, k);
          aos_.data[base + 2] = model.sd(p, k);
        }
    } else {
      gpusim::copy_to_device(w_, model.weights().data(), n_ * k_);
      gpusim::copy_to_device(m_, model.means().data(), n_ * k_);
      gpusim::copy_to_device(sd_, model.sds().data(), n_ * k_);
    }
  }

  /// Read device state back into a host model (for background estimates and
  /// cross-checking against the CPU reference).
  MogModel<T> download(const MogParams& params) const {
    MogModel<T> model(width_, height_, params);
    if (layout_ == ParamLayout::kAoS) {
      for (std::size_t p = 0; p < n_; ++p)
        for (int k = 0; k < k_; ++k) {
          const std::size_t base = (p * k_ + static_cast<std::size_t>(k)) * 3;
          model.mean(p, k) = aos_.data[base + 0];
          model.weight(p, k) = aos_.data[base + 1];
          model.sd(p, k) = aos_.data[base + 2];
        }
    } else {
      gpusim::copy_from_device(model.weights().data(), w_, n_ * k_);
      gpusim::copy_from_device(model.means().data(), m_, n_ * k_);
      gpusim::copy_from_device(model.sds().data(), sd_, n_ * k_);
    }
    return model;
  }

  /// Parameter bytes touched per frame (read + write), the paper's
  /// "284 MByte (475 MByte) per full HD frame" bandwidth figure.
  std::size_t param_bytes_per_frame() const {
    return 2 * n_ * static_cast<std::size_t>(k_) * 3 * sizeof(T);
  }

 private:
  ParamLayout layout_;
  int width_, height_, k_;
  std::size_t n_;
  gpusim::DevSpan<T> w_, m_, sd_, aos_;
};

}  // namespace mog::kernels
