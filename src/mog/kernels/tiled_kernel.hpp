// Windowed (tiled) MoG using SM shared memory — §IV-D / Fig. 9 of the paper.
//
// Frames are split into 640-pixel tiles and ordered into frame groups. One
// block owns one tile: it fetches the tile's Gaussian parameters into shared
// memory once, processes the tile across every frame of the group (updating
// the parameters in shared memory), and writes them back once — dividing the
// per-frame global parameter traffic by the group size at the cost of
// shared-memory capacity (and thus occupancy) and per-frame output latency.
//
// The compute structure on top is the fully optimized variant F (no sort,
// predicated update, recomputed diff).
#pragma once

#include <cstdint>
#include <span>

#include "mog/cpu/mog_update.hpp"
#include "mog/gpusim/kernel_launch.hpp"
#include "mog/kernels/device_state.hpp"

namespace mog::kernels {

struct TiledConfig {
  int tile_pixels = 640;  ///< threads per block; the paper's tile size
  int frame_group = 8;    ///< frames processed per parameter residency

  void validate() const {
    MOG_CHECK(tile_pixels >= 32 && tile_pixels <= 1024 &&
                  tile_pixels % 32 == 0,
              "tile_pixels must be a warp multiple in [32, 1024]");
    MOG_CHECK(frame_group >= 1 && frame_group <= 64,
              "frame_group must be in [1, 64]");
  }
};

/// Process a group of frames in one launch. `frames` / `foregrounds` hold
/// one device buffer per frame of the group (1 <= group size <= config
/// limit; a trailing partial group is fine). Requires SoA state.
template <typename T>
gpusim::KernelStats launch_tiled_group(
    gpusim::Device& device, DeviceMogState<T>& state,
    std::span<const gpusim::DevSpan<std::uint8_t>> frames,
    std::span<const gpusim::DevSpan<std::uint8_t>> foregrounds,
    const TypedMogParams<T>& params, const TiledConfig& config);

extern template gpusim::KernelStats launch_tiled_group<float>(
    gpusim::Device&, DeviceMogState<float>&,
    std::span<const gpusim::DevSpan<std::uint8_t>>,
    std::span<const gpusim::DevSpan<std::uint8_t>>,
    const TypedMogParams<float>&, const TiledConfig&);
extern template gpusim::KernelStats launch_tiled_group<double>(
    gpusim::Device&, DeviceMogState<double>&,
    std::span<const gpusim::DevSpan<std::uint8_t>>,
    std::span<const gpusim::DevSpan<std::uint8_t>>,
    const TypedMogParams<double>&, const TiledConfig&);

}  // namespace mog::kernels
