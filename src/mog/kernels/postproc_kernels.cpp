#include "mog/kernels/postproc_kernels.hpp"

#include <array>
#include <cstdint>

namespace mog::kernels {

namespace {

using gpusim::Addr;
using gpusim::Pred;
using gpusim::SharedSpan;
using gpusim::Vec;
using gpusim::WarpCtx;

constexpr int kTileW = 32;  ///< fused tile width (one warp per tile row)

/// Combine window counters into the stage's 0/1 decision. `tot` counts the
/// in-frame cells of the (possibly border-shrunk) 3x3 window, `fg` the
/// in-frame foreground cells — see the header for why these two counters
/// reproduce the host border semantics of all three ops exactly.
Vec<std::int32_t> stage_value(MaskStageOp op, const Vec<std::int32_t>& fg,
                              const Vec<std::int32_t>& tot) {
  const Vec<std::int32_t> one(1), zero(0);
  switch (op) {
    case MaskStageOp::kMedian3:  // strict majority, ties -> background
      return select(vgt(fg + fg, tot), one, zero);
    case MaskStageOp::kDilate1:  // any foreground, out-of-frame = background
      return select(vgt(fg, std::int32_t{0}), one, zero);
    case MaskStageOp::kErode1:  // all foreground, out-of-frame = foreground
      return select(veq(fg, tot), one, zero);
  }
  MOG_CHECK(false, "unknown MaskStageOp");
  return zero;
}

// ---------------------------------------------------------------------------
// Unfused single-stage stencil (the pre-fusion baseline)
// ---------------------------------------------------------------------------

struct StageArgs {
  gpusim::DevSpan<std::uint8_t> in;
  gpusim::DevSpan<std::uint8_t> out;
  Addr width = 0;
  Addr height = 0;
  MaskStageOp op = MaskStageOp::kMedian3;
  Addr n = 0;  ///< width * height
};

/// out[x, y] = op(3x3 window of in at (x, y)): nine masked gathers, one
/// store, everything through global memory. A full A..F-style chain pays
/// this once per stage plus a launch boundary in between — the cost fusion
/// removes.
void mask_stage_warp(WarpCtx& ctx, const StageArgs& a) {
  const Vec<Addr> gid = ctx.global_ids();
  const Pred live = vlt(gid, a.n);
  ctx.if_then(live, [&] {
    const Vec<Addr> y = gid / a.width;
    const Vec<Addr> x = gid - y * a.width;
    Vec<std::int32_t> fg(0), tot(0);
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const Vec<Addr> fx = x + static_cast<Addr>(dx);
        const Vec<Addr> fy = y + static_cast<Addr>(dy);
        const Pred inb = vge(fx, Addr{0}) & vlt(fx, a.width) &
                         vge(fy, Addr{0}) & vlt(fy, a.height);
        Vec<std::int32_t> v(0);
        ctx.if_then(inb, [&] {
          ctx.set(v, ctx.load<std::int32_t>(a.in, fy * a.width + fx));
        });
        const Vec<std::int32_t> one(1), zero(0);
        tot = tot + select(inb, one, zero);
        fg = fg + select(inb & vgt(v, std::int32_t{0}), one, zero);
      }
    }
    const Vec<std::int32_t> v = stage_value(a.op, fg, tot);
    ctx.store(a.out, gid,
              select(vgt(v, std::int32_t{0}), Vec<std::int32_t>(255),
                     Vec<std::int32_t>(0)));
  });
}

// ---------------------------------------------------------------------------
// Fused chain (optimization step G)
// ---------------------------------------------------------------------------

struct FusedArgs {
  gpusim::DevSpan<std::uint8_t> raw;
  gpusim::DevSpan<std::uint8_t> cleaned;
  Addr width = 0;
  Addr height = 0;
  int tile_h = 0;   ///< kTileW x tile_h pixels per block
  int tiles_x = 0;  ///< blocks per tile row
  std::array<MaskStageOp, 3> ops{};
  int num_ops = 0;  ///< 1..3; stage s consumes halo ring (num_ops - s)
};

/// One block's fused postproc: stage a (tile + halo) window of the raw mask
/// into shared memory, then evaluate every stage in shared memory with a
/// halo ring that shrinks by one per stage; only the final stage touches
/// global memory again. Values in the stage arrays are 0/1 foreground
/// codes; cells whose frame coordinate is out of frame hold an arbitrary
/// value (zero from staging) and are never consumed — every window sum
/// recomputes cell validity from frame coordinates, which is what makes the
/// border semantics exact rather than approximated by halo padding.
void fused_postproc_block(gpusim::BlockCtx& blk, const FusedArgs& a) {
  const int tpb = blk.threads_per_block();
  const int R = a.num_ops;  // total halo radius of the chain
  const Addr bx = blk.block_id() % a.tiles_x;
  const Addr by = blk.block_id() / a.tiles_x;
  const Addr x0 = bx * kTileW;       // frame coords of tile origin
  const Addr y0 = by * a.tile_h;

  // Stage arrays: arr[s] holds the input of op s, with halo ring (R - s).
  std::array<SharedSpan<std::int32_t>, 3> arr;
  std::array<int, 3> ext{}, aw{};
  for (int s = 0; s < a.num_ops; ++s) {
    ext[static_cast<std::size_t>(s)] = R - s;
    aw[static_cast<std::size_t>(s)] = kTileW + 2 * (R - s);
    const int ah = a.tile_h + 2 * (R - s);
    arr[static_cast<std::size_t>(s)] = blk.shared_alloc<std::int32_t>(
        static_cast<std::size_t>(aw[static_cast<std::size_t>(s)]) *
        static_cast<std::size_t>(ah));
  }

  /// fg/tot over the 3x3 window of tile-coordinate cell (cx, cy), read from
  /// stage array `s` (whose ring is one wider than the cells being
  /// computed). In-frame validity of each window cell comes from its frame
  /// coordinate, never from padding.
  const auto window_counts = [&](WarpCtx& ctx, int s, const Vec<Addr>& cx,
                                 const Vec<Addr>& cy, Vec<std::int32_t>& fg,
                                 Vec<std::int32_t>& tot) {
    const Addr e = ext[static_cast<std::size_t>(s)];
    const Addr sw = aw[static_cast<std::size_t>(s)];
    const Vec<std::int32_t> one(1), zero(0);
    fg = zero;
    tot = zero;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const Vec<Addr> wx = cx + static_cast<Addr>(dx);
        const Vec<Addr> wy = cy + static_cast<Addr>(dy);
        const Pred inb = vge(wx + x0, Addr{0}) & vlt(wx + x0, a.width) &
                         vge(wy + y0, Addr{0}) & vlt(wy + y0, a.height);
        const Vec<std::int32_t> v = ctx.shared_load(
            arr[static_cast<std::size_t>(s)], (wy + e) * sw + (wx + e));
        tot = tot + select(inb, one, zero);
        fg = fg + select(inb, v, zero);
      }
    }
  };

  // Phase 0: stage raw mask -> arr[0] as 0/1 codes. The halo window is
  // larger than the tile, so each thread stages ceil(window / tpb) cells.
  blk.parallel([&](WarpCtx& ctx) {
    const Vec<Addr> lin = ctx.global_ids() - Vec<Addr>(blk.block_id() * tpb);
    const Addr cells = static_cast<Addr>(aw[0]) *
                       static_cast<Addr>(a.tile_h + 2 * R);
    const int iters =
        static_cast<int>((cells + tpb - 1) / static_cast<Addr>(tpb));
    ctx.for_range(iters, [&](int it) {
      const Vec<Addr> i = lin + static_cast<Addr>(it) * tpb;
      ctx.if_then(vlt(i, cells), [&] {
        const Vec<Addr> hy = i / static_cast<Addr>(aw[0]);
        const Vec<Addr> hx = i - hy * static_cast<Addr>(aw[0]);
        const Vec<Addr> fx = hx + (x0 - R);
        const Vec<Addr> fy = hy + (y0 - R);
        const Pred inb = vge(fx, Addr{0}) & vlt(fx, a.width) &
                         vge(fy, Addr{0}) & vlt(fy, a.height);
        Vec<std::int32_t> v(0);
        ctx.if_then(inb, [&] {
          ctx.set(v, ctx.load<std::int32_t>(a.raw, fy * a.width + fx));
        });
        ctx.shared_store(arr[0], i,
                         select(vgt(v, std::int32_t{0}), Vec<std::int32_t>(1),
                                Vec<std::int32_t>(0)));
      });
    });
  });

  // Phases 1..num_ops-1: op s-1 from arr[s-1] -> arr[s], entirely in shared
  // memory. Consecutive blk.parallel calls have an implicit __syncthreads().
  for (int s = 1; s < a.num_ops; ++s) {
    blk.parallel([&](WarpCtx& ctx) {
      const Vec<Addr> lin = ctx.global_ids() - Vec<Addr>(blk.block_id() * tpb);
      const Addr e = ext[static_cast<std::size_t>(s)];
      const Addr sw = aw[static_cast<std::size_t>(s)];
      const Addr cells = sw * static_cast<Addr>(a.tile_h + 2 * e);
      const int iters =
          static_cast<int>((cells + tpb - 1) / static_cast<Addr>(tpb));
      ctx.for_range(iters, [&](int it) {
        const Vec<Addr> i = lin + static_cast<Addr>(it) * tpb;
        ctx.if_then(vlt(i, cells), [&] {
          const Vec<Addr> ly = i / sw;
          const Vec<Addr> lx = i - ly * sw;
          Vec<std::int32_t> fg(0), tot(0);
          window_counts(ctx, s - 1, lx - e, ly - e, fg, tot);
          ctx.shared_store(
              arr[static_cast<std::size_t>(s)], i,
              stage_value(a.ops[static_cast<std::size_t>(s - 1)], fg, tot));
        });
      });
    });
  }

  // Final phase: the last op writes the cleaned 0/255 mask to global — one
  // cell per thread, the only global store of the whole chain.
  blk.parallel([&](WarpCtx& ctx) {
    const Vec<Addr> lin = ctx.global_ids() - Vec<Addr>(blk.block_id() * tpb);
    const Vec<Addr> cy = lin / Addr{kTileW};
    const Vec<Addr> cx = lin - cy * Addr{kTileW};
    const Vec<Addr> fx = cx + x0;
    const Vec<Addr> fy = cy + y0;
    // Edge tiles overhang the frame; fx/fy are never negative here.
    ctx.if_then(vlt(fx, a.width) & vlt(fy, a.height), [&] {
      Vec<std::int32_t> fg(0), tot(0);
      window_counts(ctx, a.num_ops - 1, cx, cy, fg, tot);
      const Vec<std::int32_t> v =
          stage_value(a.ops[static_cast<std::size_t>(a.num_ops - 1)], fg, tot);
      ctx.store(a.cleaned, fy * a.width + fx,
                select(vgt(v, std::int32_t{0}), Vec<std::int32_t>(255),
                       Vec<std::int32_t>(0)));
    });
  });
}

}  // namespace

gpusim::KernelStats launch_mask_stage(gpusim::Device& device,
                                      const gpusim::DevSpan<std::uint8_t>& in,
                                      const gpusim::DevSpan<std::uint8_t>& out,
                                      int width, int height, MaskStageOp op,
                                      int threads_per_block) {
  MOG_CHECK(width >= 1 && height >= 1, "frame dimensions must be positive");
  const std::size_t n =
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  MOG_CHECK(in.count == n && out.count == n,
            "mask buffers must cover the frame");
  MOG_CHECK(in.data != out.data,
            "stencil stage cannot run in place: in and out must differ");

  StageArgs args{in,
                 out,
                 static_cast<Addr>(width),
                 static_cast<Addr>(height),
                 op,
                 static_cast<Addr>(n)};

  gpusim::LaunchConfig cfg;
  cfg.num_threads = static_cast<std::int64_t>(n);
  cfg.threads_per_block = threads_per_block;
  return device.launch(cfg, [&](gpusim::BlockCtx& blk) {
    blk.parallel([&](WarpCtx& warp) { mask_stage_warp(warp, args); });
  });
}

gpusim::KernelStats launch_fused_postproc(
    gpusim::Device& device, const gpusim::DevSpan<std::uint8_t>& raw,
    const gpusim::DevSpan<std::uint8_t>& cleaned, int width, int height,
    const ValidationConfig& config, int threads_per_block) {
  config.validate_fused();
  MOG_CHECK(width >= 1 && height >= 1, "frame dimensions must be positive");
  const std::size_t n =
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  MOG_CHECK(raw.count == n && cleaned.count == n,
            "mask buffers must cover the frame");
  MOG_CHECK(threads_per_block >= kTileW && threads_per_block % kTileW == 0,
            "fused postproc needs threads_per_block as a multiple of 32");

  FusedArgs args;
  args.raw = raw;
  args.cleaned = cleaned;
  args.width = static_cast<Addr>(width);
  args.height = static_cast<Addr>(height);
  args.tile_h = threads_per_block / kTileW;
  args.tiles_x = (width + kTileW - 1) / kTileW;
  if (config.despeckle) args.ops[static_cast<std::size_t>(args.num_ops++)] =
      MaskStageOp::kMedian3;
  if (config.close_radius == 1) {
    args.ops[static_cast<std::size_t>(args.num_ops++)] = MaskStageOp::kDilate1;
    args.ops[static_cast<std::size_t>(args.num_ops++)] = MaskStageOp::kErode1;
  }
  MOG_CHECK(args.num_ops >= 1,
            "fused postproc launched with no stage enabled");

  const int tiles_y = (height + args.tile_h - 1) / args.tile_h;
  gpusim::LaunchConfig cfg;
  // Full blocks only: edge tiles overhang and mask in-frame per pixel.
  cfg.num_threads = static_cast<std::int64_t>(args.tiles_x) * tiles_y *
                    threads_per_block;
  cfg.threads_per_block = threads_per_block;
  return device.launch(cfg, [&](gpusim::BlockCtx& blk) {
    fused_postproc_block(blk, args);
  });
}

}  // namespace mog::kernels
