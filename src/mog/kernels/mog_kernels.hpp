// The MoG device kernels, optimization levels A..F (§IV of the paper).
//
// One launch processes one frame: every thread owns one pixel. Variants
// differ along three axes (see opt_level.hpp):
//   * parameter layout        — AoS (A) vs coalesced SoA (B..F)
//   * control structure       — sorted + branchy (A..C), no-sort branchy (D),
//                               no-sort predicated (E, F)
//   * register usage          — diff[] array kept (A..E) vs recomputed (F)
//
// Faithful structural details that drive the profiler counters:
//   * the branchy variants write mean/sd inside the match branch (masked,
//     scattered stores — the source of B's 78% memory access efficiency),
//     while the predicated variants write every component unconditionally
//     (the "all data fetched is used" ~100% efficiency of E);
//   * rank + sort order the register-resident copies for the early-exit
//     foreground scan (divergent), canonical component order in memory is
//     preserved;
//   * weights are normalized and stored once per frame, after the update.
#pragma once

#include <cstdint>

#include "mog/cpu/mog_update.hpp"
#include "mog/gpusim/kernel_launch.hpp"
#include "mog/kernels/device_state.hpp"
#include "mog/kernels/opt_level.hpp"

namespace mog::kernels {

inline constexpr int kDefaultThreadsPerBlock = 128;  // §IV-A

/// Run the MoG kernel for one frame. `frame` and `foreground` are
/// device-resident 8-bit buffers of state.num_pixels() elements. Returns the
/// launch's profiler counters; the model update and foreground mask land in
/// device memory.
template <typename T>
gpusim::KernelStats launch_mog_frame(
    gpusim::Device& device, DeviceMogState<T>& state,
    const gpusim::DevSpan<std::uint8_t>& frame,
    const gpusim::DevSpan<std::uint8_t>& foreground,
    const TypedMogParams<T>& params, OptLevel level,
    int threads_per_block = kDefaultThreadsPerBlock);

extern template gpusim::KernelStats launch_mog_frame<float>(
    gpusim::Device&, DeviceMogState<float>&,
    const gpusim::DevSpan<std::uint8_t>&, const gpusim::DevSpan<std::uint8_t>&,
    const TypedMogParams<float>&, OptLevel, int);
extern template gpusim::KernelStats launch_mog_frame<double>(
    gpusim::Device&, DeviceMogState<double>&,
    const gpusim::DevSpan<std::uint8_t>&, const gpusim::DevSpan<std::uint8_t>&,
    const TypedMogParams<double>&, OptLevel, int);

}  // namespace mog::kernels
