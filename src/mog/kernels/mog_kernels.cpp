#include "mog/kernels/mog_kernels.hpp"

#include <vector>

namespace mog::kernels {

namespace {

using gpusim::Addr;
using gpusim::Pred;
using gpusim::Vec;
using gpusim::WarpCtx;

/// Per-warp working set for one pixel's mixture, register-resident.
template <typename T>
struct WarpLocals {
  std::vector<Vec<T>> w, m, sd, diff;
};

template <typename T>
struct KernelArgs {
  const DeviceMogState<T>* state;
  gpusim::DevSpan<std::uint8_t> frame;
  gpusim::DevSpan<std::uint8_t> foreground;
  TypedMogParams<T> p;
  OptLevel level;
  Addr n;  ///< pixels
};

template <typename T>
void load_params(WarpCtx& ctx, const KernelArgs<T>& a, const Vec<Addr>& gid,
                 WarpLocals<T>& r) {
  const int K = a.p.k;
  r.w.reserve(static_cast<std::size_t>(K));
  r.m.reserve(static_cast<std::size_t>(K));
  r.sd.reserve(static_cast<std::size_t>(K));
  if (uses_aos_layout(a.level)) {
    // AoS element index: (pixel*K + k)*3 + {0:m, 1:w, 2:sd} (Fig. 4a).
    const Vec<Addr> base = gid * static_cast<Addr>(3 * K);
    ctx.for_range(K, [&](int k) {
      r.m.push_back(
          ctx.load<T>(a.state->aos(), base + static_cast<Addr>(3 * k)));
      r.w.push_back(
          ctx.load<T>(a.state->aos(), base + static_cast<Addr>(3 * k + 1)));
      r.sd.push_back(
          ctx.load<T>(a.state->aos(), base + static_cast<Addr>(3 * k + 2)));
    });
  } else {
    // SoA: param[k*N + pixel] (Fig. 4b) — contiguous across lanes.
    ctx.for_range(K, [&](int k) {
      const Vec<Addr> idx = gid + static_cast<Addr>(k) * a.n;
      r.m.push_back(ctx.load<T>(a.state->means(), idx));
      r.w.push_back(ctx.load<T>(a.state->weights(), idx));
      r.sd.push_back(ctx.load<T>(a.state->sds(), idx));
    });
  }
}

template <typename T>
void store_component_msd(WarpCtx& ctx, const KernelArgs<T>& a,
                         const Vec<Addr>& gid, int k, const Vec<T>& m_val,
                         const Vec<T>& sd_val) {
  if (uses_aos_layout(a.level)) {
    const Vec<Addr> base = gid * static_cast<Addr>(3 * a.p.k);
    ctx.store(a.state->aos(), base + static_cast<Addr>(3 * k), m_val);
    ctx.store(a.state->aos(), base + static_cast<Addr>(3 * k + 2), sd_val);
  } else {
    const Vec<Addr> idx = gid + static_cast<Addr>(k) * a.n;
    ctx.store(a.state->means(), idx, m_val);
    ctx.store(a.state->sds(), idx, sd_val);
  }
}

template <typename T>
void store_component_w(WarpCtx& ctx, const KernelArgs<T>& a,
                       const Vec<Addr>& gid, int k, const Vec<T>& w_val) {
  if (uses_aos_layout(a.level)) {
    const Vec<Addr> base = gid * static_cast<Addr>(3 * a.p.k);
    ctx.store(a.state->aos(), base + static_cast<Addr>(3 * k + 1), w_val);
  } else {
    ctx.store(a.state->weights(), gid + static_cast<Addr>(k) * a.n, w_val);
  }
}

/// The MoG kernel body for one warp (32 pixels).
template <typename T>
void mog_warp(WarpCtx& ctx, const KernelArgs<T>& a) {
  const int K = a.p.k;
  const T alpha = a.p.alpha;
  const T oma = a.p.one_minus_alpha;
  const T min_var = a.p.min_sd * a.p.min_sd;

  const Vec<Addr> gid = ctx.global_ids();
  const Vec<T> x = ctx.load<T>(a.frame, gid);

  WarpLocals<T> r;
  load_params(ctx, a, gid, r);

  // --- match classification (Algorithm 1 lines 4-5) -----------------------
  // diff stays live as an array through A..E; F's register optimization
  // keeps only the match predicates and recomputes the difference later.
  std::vector<Pred> match(static_cast<std::size_t>(K));
  Pred any{};
  if (keeps_diff_array(a.level))
    r.diff.reserve(static_cast<std::size_t>(K));
  ctx.for_range(K, [&](int k) {
    const std::size_t ks = static_cast<std::size_t>(k);
    Vec<T> d = vabs(r.m[ks] - x);
    match[ks] = vlt(d, r.sd[ks] * a.p.gamma1);
    any = any | match[ks];
    if (keeps_diff_array(a.level)) r.diff.push_back(std::move(d));
  });

  // --- parameter update ------------------------------------------------------
  if (!uses_predication(a.level)) {
    // Branchy update (Algorithm 4): matched components take the full path
    // and write mean/sd back under the branch mask (masked, scattered
    // stores); non-matched components only decay their weight.
    ctx.for_range(K, [&](int k) {
      const std::size_t ks = static_cast<std::size_t>(k);
      ctx.if_then_else(
          match[ks],
          [&] {
            const Vec<T> w_new = vfma(r.w[ks], Vec<T>(alpha), Vec<T>(oma));
            const Vec<T> tmp = oma / w_new;
            const Vec<T> delta = x - r.m[ks];
            const Vec<T> m_new = vfma(tmp, delta, r.m[ks]);
            Vec<T> var = r.sd[ks] * r.sd[ks];
            var = vfma(tmp, delta * delta - var, var);
            var = vmax(var, Vec<T>(min_var));
            const Vec<T> sd_new = vsqrt(var);
            ctx.set(r.w[ks], w_new);
            ctx.set(r.sd[ks], sd_new);
            store_component_msd(ctx, a, gid, k, m_new, sd_new);
          },
          [&] { ctx.set(r.w[ks], r.w[ks] * Vec<T>(alpha)); });
    });
  } else {
    // Predicated update (Algorithm 5): one execution path, every component
    // computed and written unconditionally; match blends the results. The
    // weight formula alpha*w + match*(1-alpha) covers both cases.
    ctx.for_range(K, [&](int k) {
      const std::size_t ks = static_cast<std::size_t>(k);
      const Vec<T> matchv = select(match[ks], Vec<T>(T{1}), Vec<T>(T{0}));
      const Vec<T> w_new = vfma(matchv, Vec<T>(oma), r.w[ks] * Vec<T>(alpha));
      const Vec<T> w_safe = vmax(w_new, Vec<T>(static_cast<T>(1e-12)));
      const Vec<T> tmp = oma / w_safe;
      const Vec<T> delta = x - r.m[ks];
      const Vec<T> m_upd = vfma(tmp, delta, r.m[ks]);
      Vec<T> var = r.sd[ks] * r.sd[ks];
      var = vfma(tmp, delta * delta - var, var);
      var = vmax(var, Vec<T>(min_var));
      const Vec<T> sd_upd = vsqrt(var);

      r.w[ks] = w_new;
      const Vec<T> m_fin = select(match[ks], m_upd, r.m[ks]);
      const Vec<T> sd_fin = select(match[ks], sd_upd, r.sd[ks]);
      r.sd[ks] = sd_fin;
      if (!keeps_diff_array(a.level)) r.m[ks] = m_fin;  // F: mean stays live
      store_component_msd(ctx, a, gid, k, m_fin, sd_fin);
    });
  }

  // D and E no longer need the means (the foreground test uses the stored
  // diff); releasing them here models register liveness. The sorted
  // variants keep the whole component (mean included) live through the sort
  // — they are sorting components, not projections of them.
  if (keeps_diff_array(a.level) && !uses_sort(a.level)) {
    r.m.clear();
    r.m.shrink_to_fit();
  }

  // --- virtual component (lines 12-15): replace the lowest-weight one -------
  ctx.if_then(~any, [&] {
    Vec<T> min_w = r.w[0];
    Vec<std::int32_t> min_idx(0);
    ctx.for_range(K - 1, [&](int k1) {
      const std::size_t ks = static_cast<std::size_t>(k1 + 1);
      const Pred less = vlt(r.w[ks], min_w);
      min_w = select(less, r.w[ks], min_w);
      min_idx = select(less, Vec<std::int32_t>(k1 + 1), min_idx);
    });
    ctx.for_range(K, [&](int k) {
      const std::size_t ks = static_cast<std::size_t>(k);
      ctx.if_then(veq(min_idx, static_cast<std::int32_t>(k)), [&] {
        ctx.set(r.w[ks], Vec<T>(a.p.w_init));
        ctx.set(r.sd[ks], Vec<T>(a.p.sd_init));
        if (keeps_diff_array(a.level))
          ctx.set(r.diff[ks], Vec<T>(T{0}));  // fresh component sits on x
        else
          ctx.set(r.m[ks], x);
        store_component_msd(ctx, a, gid, k, x, Vec<T>(a.p.sd_init));
      });
    });
  });

  // --- weight normalization + write-back --------------------------------------
  Vec<T> sum = r.w[0];
  ctx.for_range(K - 1, [&](int k1) {
    sum = sum + r.w[static_cast<std::size_t>(k1 + 1)];
  });
  const Vec<T> inv = T{1} / sum;
  ctx.for_range(K, [&](int k) {
    const std::size_t ks = static_cast<std::size_t>(k);
    r.w[ks] = r.w[ks] * inv;
    store_component_w(ctx, a, gid, k, r.w[ks]);
  });

  // --- foreground decision ------------------------------------------------------
  Pred bg{};
  if (uses_sort(a.level)) {
    // Rank + register sort (lines 16-21), then the early-exit scan
    // (lines 22-28) — the divergent pattern D eliminates.
    std::vector<Vec<T>> rank;
    rank.reserve(static_cast<std::size_t>(K));
    ctx.for_range(K, [&](int k) {
      const std::size_t ks = static_cast<std::size_t>(k);
      rank.push_back(r.w[ks] / r.sd[ks]);
    });
    ctx.for_range(K - 1, [&](int pass) {
      ctx.for_range(K - 1 - pass, [&](int j) {
        const std::size_t js = static_cast<std::size_t>(j);
        ctx.if_then(vlt(rank[js], rank[js + 1]), [&] {
          const Vec<T> tr = rank[js];
          ctx.set(rank[js], rank[js + 1]);
          ctx.set(rank[js + 1], tr);
          const Vec<T> tw = r.w[js];
          ctx.set(r.w[js], r.w[js + 1]);
          ctx.set(r.w[js + 1], tw);
          const Vec<T> ts = r.sd[js];
          ctx.set(r.sd[js], r.sd[js + 1]);
          ctx.set(r.sd[js + 1], ts);
          const Vec<T> tm = r.m[js];
          ctx.set(r.m[js], r.m[js + 1]);
          ctx.set(r.m[js + 1], tm);
          const Vec<T> td = r.diff[js];
          ctx.set(r.diff[js], r.diff[js + 1]);
          ctx.set(r.diff[js + 1], td);
        });
      });
    });
    ctx.for_range(K, [&](int k) {
      const std::size_t ks = static_cast<std::size_t>(k);
      ctx.if_then(~bg, [&] {  // early exit: decided lanes sit idle
        const Pred bgk = vge(r.w[ks], a.p.gamma2) &
                         vlt(r.diff[ks], r.sd[ks] * a.p.gamma1d);
        bg.bits |= bgk.bits & ctx.active_mask();
      });
    });
  } else {
    // Unconditional scan of all components (Algorithm 3) — no divergence,
    // order irrelevant.
    ctx.for_range(K, [&](int k) {
      const std::size_t ks = static_cast<std::size_t>(k);
      const Vec<T> d = keeps_diff_array(a.level)
                           ? r.diff[ks]
                           : vabs(x - r.m[ks]);  // F: recompute (post-update)
      const Pred bgk =
          vge(r.w[ks], a.p.gamma2) & vlt(d, r.sd[ks] * a.p.gamma1d);
      bg = bg | bgk;
    });
  }

  const Vec<std::int32_t> fg_val =
      select(bg, Vec<std::int32_t>(0), Vec<std::int32_t>(255));
  ctx.store(a.foreground, gid, fg_val);
}

}  // namespace

template <typename T>
gpusim::KernelStats launch_mog_frame(
    gpusim::Device& device, DeviceMogState<T>& state,
    const gpusim::DevSpan<std::uint8_t>& frame,
    const gpusim::DevSpan<std::uint8_t>& foreground,
    const TypedMogParams<T>& params, OptLevel level, int threads_per_block) {
  MOG_CHECK(frame.count == state.num_pixels() &&
                foreground.count == state.num_pixels(),
            "frame/foreground buffers must cover all pixels");
  MOG_CHECK(uses_aos_layout(level) == (state.layout() == ParamLayout::kAoS),
            "device state layout does not match the optimization level");

  KernelArgs<T> args{&state,       frame, foreground, params, level,
                     static_cast<Addr>(state.num_pixels())};

  gpusim::LaunchConfig cfg;
  cfg.num_threads = static_cast<std::int64_t>(state.num_pixels());
  cfg.threads_per_block = threads_per_block;
  return device.launch(cfg, [&](gpusim::BlockCtx& blk) {
    blk.parallel([&](WarpCtx& warp) { mog_warp(warp, args); });
  });
}

template gpusim::KernelStats launch_mog_frame<float>(
    gpusim::Device&, DeviceMogState<float>&,
    const gpusim::DevSpan<std::uint8_t>&, const gpusim::DevSpan<std::uint8_t>&,
    const TypedMogParams<float>&, OptLevel, int);
template gpusim::KernelStats launch_mog_frame<double>(
    gpusim::Device&, DeviceMogState<double>&,
    const gpusim::DevSpan<std::uint8_t>&, const gpusim::DevSpan<std::uint8_t>&,
    const TypedMogParams<double>&, OptLevel, int);

}  // namespace mog::kernels
