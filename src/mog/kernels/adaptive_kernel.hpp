// GPU port of the variable-component-count MoG (§II related work).
//
// The paper predicts this algorithm family maps poorly to GPUs:
//   "The parallel threads in a GPU execute in lock-step mode. All threads
//    perform the same amount of computation even with variable number of
//    Gaussian components. ... the thread with the most Gaussian components
//    determines the latency of all parallel threads. Furthermore, an
//    unbalanced memory access pattern ... potentially reduces the memory
//    access efficiency."
//
// This kernel implements the algorithm faithfully for lockstep execution —
// component loops run to the warp-wide maximum count with lanes masked off,
// and parameter accesses stay memory-resident (per-lane slot indices make
// register caching impossible) — so the two §II effects can be *measured*:
// AdaptiveCounters reports lane-level useful iterations vs lockstep-charged
// iterations, and the ordinary KernelStats captures the ragged gathers.
#pragma once

#include <atomic>
#include <cstdint>

#include "mog/cpu/adaptive_mog.hpp"
#include "mog/gpusim/kernel_launch.hpp"

namespace mog::kernels {

/// Lockstep-waste accounting for one or more launches.
///
/// The kernel bumps these from every warp; with the multi-threaded block
/// executor, warps of different blocks run on different host threads, so the
/// counters are relaxed atomics. The totals stay deterministic at any thread
/// count — they are plain commutative sums. Copies snapshot the values.
struct AdaptiveCounters {
  std::atomic<std::uint64_t> lane_iterations{0};   ///< useful per-lane steps
  std::atomic<std::uint64_t> lockstep_iterations{
      0};  ///< charged: warp_max * active lanes

  AdaptiveCounters() = default;
  AdaptiveCounters(const AdaptiveCounters& o)
      : lane_iterations(o.lane_iterations.load(std::memory_order_relaxed)),
        lockstep_iterations(
            o.lockstep_iterations.load(std::memory_order_relaxed)) {}
  AdaptiveCounters& operator=(const AdaptiveCounters& o) {
    lane_iterations.store(o.lane_iterations.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    lockstep_iterations.store(
        o.lockstep_iterations.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    return *this;
  }

  /// Fraction of lockstep component work that was useful (<= 1).
  double lane_utilization() const {
    const std::uint64_t lock =
        lockstep_iterations.load(std::memory_order_relaxed);
    return lock == 0 ? 1.0
                     : static_cast<double>(
                           lane_iterations.load(std::memory_order_relaxed)) /
                           static_cast<double>(lock);
  }
  AdaptiveCounters& operator+=(const AdaptiveCounters& o) {
    lane_iterations.fetch_add(
        o.lane_iterations.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    lockstep_iterations.fetch_add(
        o.lockstep_iterations.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    return *this;
  }
};

/// Device-resident adaptive model state (SoA slots + per-pixel counts).
template <typename T>
class AdaptiveDeviceState {
 public:
  AdaptiveDeviceState(gpusim::Device& device, int width, int height,
                      const AdaptiveMogParams& params);

  std::size_t num_pixels() const { return n_; }
  int max_components() const { return k_max_; }

  const gpusim::DevSpan<T>& weights() const { return w_; }
  const gpusim::DevSpan<T>& means() const { return m_; }
  const gpusim::DevSpan<T>& sds() const { return sd_; }
  const gpusim::DevSpan<std::int32_t>& counts() const { return count_; }

  void upload(const AdaptiveMogModel<T>& model);
  AdaptiveMogModel<T> download(const AdaptiveMogParams& params) const;

 private:
  int width_, height_, k_max_;
  std::size_t n_;
  gpusim::DevSpan<T> w_, m_, sd_;
  gpusim::DevSpan<std::int32_t> count_;
};

/// Process one frame with the variable-K kernel. `counters` (optional)
/// accumulates the lockstep-waste metrics.
template <typename T>
gpusim::KernelStats launch_adaptive_frame(
    gpusim::Device& device, AdaptiveDeviceState<T>& state,
    const gpusim::DevSpan<std::uint8_t>& frame,
    const gpusim::DevSpan<std::uint8_t>& foreground,
    const TypedMogParams<T>& params, T prune_weight,
    AdaptiveCounters* counters = nullptr, int threads_per_block = 128);

extern template class AdaptiveDeviceState<float>;
extern template class AdaptiveDeviceState<double>;
extern template gpusim::KernelStats launch_adaptive_frame<float>(
    gpusim::Device&, AdaptiveDeviceState<float>&,
    const gpusim::DevSpan<std::uint8_t>&, const gpusim::DevSpan<std::uint8_t>&,
    const TypedMogParams<float>&, float, AdaptiveCounters*, int);
extern template gpusim::KernelStats launch_adaptive_frame<double>(
    gpusim::Device&, AdaptiveDeviceState<double>&,
    const gpusim::DevSpan<std::uint8_t>&, const gpusim::DevSpan<std::uint8_t>&,
    const TypedMogParams<double>&, double, AdaptiveCounters*, int);

}  // namespace mog::kernels
