// Device-side mask post-processing: the despeckle (3x3 median) and
// radius-1 close stages of validate_foreground, as gpusim kernels.
//
// Two formulations with bit-identical output:
//
//  * launch_mask_stage — ONE stage (median / dilate / erode) as a plain
//    global-memory stencil kernel. The pre-fusion chain runs one launch per
//    stage, round-tripping every intermediate mask through DRAM: this is
//    what "ladder level <= F + post-processing" costs, and the comparison
//    baseline for step G.
//
//  * launch_fused_postproc — the WHOLE chain in one launch (optimization
//    step G, the kernel-fusion technique of arXiv 1509.04394). Each block
//    stages a (tile + halo) window of the raw mask into shared memory and
//    evaluates every stage in shared memory; intermediate masks never touch
//    DRAM, and only the cleaned mask is stored. Cross-block halos need no
//    seam pass here because the raw mask is complete when this launch
//    starts — the frame pass is split at exactly the point where a grid-
//    wide barrier would otherwise be required (see DESIGN.md §12).
//
// Border semantics reproduce the host postproc byte-for-byte: the median
// window shrinks at frame borders (ties clear to background), dilation pads
// out-of-frame with background, erosion pads with foreground. All three
// reduce to two counters per window — in-frame cells (total) and in-frame
// foreground cells (fg): median = 2*fg > total, dilate = fg > 0,
// erode = fg == total.
#pragma once

#include <cstdint>

#include "mog/gpusim/kernel_launch.hpp"
#include "mog/postproc/validation.hpp"

namespace mog::kernels {

/// One unfused post-processing stage over a full-frame 0/255 mask.
enum class MaskStageOp {
  kMedian3,  ///< 3x3 majority, shrinking window at borders
  kDilate1,  ///< radius-1 max, out-of-frame = background
  kErode1,   ///< radius-1 min, out-of-frame = foreground
};

/// Launch one stencil stage: out[p] = op(in window at p). `in` and `out`
/// must be distinct full-frame buffers.
gpusim::KernelStats launch_mask_stage(gpusim::Device& device,
                                      const gpusim::DevSpan<std::uint8_t>& in,
                                      const gpusim::DevSpan<std::uint8_t>& out,
                                      int width, int height, MaskStageOp op,
                                      int threads_per_block);

/// Launch the fused epilogue: cleaned = close_1?(median3?(raw)) per
/// `config` (which must satisfy config.validate_fused() and enable at least
/// one of despeckle / close). threads_per_block must be a positive multiple
/// of 32; each block processes a 32 x (threads_per_block/32) pixel tile.
gpusim::KernelStats launch_fused_postproc(
    gpusim::Device& device, const gpusim::DevSpan<std::uint8_t>& raw,
    const gpusim::DevSpan<std::uint8_t>& cleaned, int width, int height,
    const ValidationConfig& config, int threads_per_block);

}  // namespace mog::kernels
