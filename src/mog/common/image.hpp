// Dense 2-D image container used throughout the library.
//
// Images are row-major with no padding; Image<std::uint8_t> holds 8-bit
// grayscale frames (the pixel representation the paper's MoG operates on),
// Image<double>/Image<float> hold background estimates and metric scratch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "mog/common/error.hpp"

namespace mog {

template <typename T>
class Image {
 public:
  Image() = default;

  Image(int width, int height, T fill_value = T{})
      : width_(width), height_(height) {
    MOG_CHECK(width > 0 && height > 0, "image dimensions must be positive");
    data_.assign(static_cast<std::size_t>(width) * height, fill_value);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& at(int x, int y) {
    MOG_ASSERT(in_bounds(x, y), "pixel out of bounds");
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  const T& at(int x, int y) const {
    MOG_ASSERT(in_bounds(x, y), "pixel out of bounds");
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }

  /// Unchecked linear access (hot paths; index = y * width + x).
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  std::span<T> pixels() { return data_; }
  std::span<const T> pixels() const { return data_; }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  bool in_bounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  void fill(T value) { data_.assign(data_.size(), value); }

  bool same_shape(const Image& other) const {
    return width_ == other.width_ && height_ == other.height_;
  }

  friend bool operator==(const Image& a, const Image& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.data_ == b.data_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<T> data_;
};

using FrameU8 = Image<std::uint8_t>;

/// Convert with saturation to 8-bit (used when rendering float images).
inline std::uint8_t saturate_u8(double v) {
  if (v <= 0.0) return 0;
  if (v >= 255.0) return 255;
  return static_cast<std::uint8_t>(v + 0.5);
}

template <typename T>
FrameU8 to_u8(const Image<T>& src) {
  FrameU8 out(src.width(), src.height());
  for (std::size_t i = 0; i < src.size(); ++i)
    out[i] = saturate_u8(static_cast<double>(src[i]));
  return out;
}

template <typename T>
Image<T> to_real(const FrameU8& src) {
  Image<T> out(src.width(), src.height());
  for (std::size_t i = 0; i < src.size(); ++i)
    out[i] = static_cast<T>(src[i]);
  return out;
}

}  // namespace mog
