#include "mog/common/strutil.hpp"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace mog {

std::string strprintf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n <= 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string human_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return strprintf("%.1f %s", bytes, units[u]);
}

std::string percent(double fraction, int decimals) {
  return strprintf("%.*f%%", decimals, 100.0 * fraction);
}

}  // namespace mog
