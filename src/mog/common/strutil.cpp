#include "mog/common/strutil.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "mog/common/error.hpp"

namespace mog {

std::string strprintf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n <= 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

namespace {

[[noreturn]] void parse_fail(const std::string& what, const std::string& text,
                             const char* why) {
  throw Error{strprintf("%s: invalid value \"%s\" (%s)", what.c_str(),
                        text.c_str(), why)};
}

}  // namespace

int parse_int(const std::string& text, int min_value, int max_value,
              const std::string& what) {
  if (text.empty()) parse_fail(what, text, "empty");
  // strtoll skips leading whitespace; the whole-input rule forbids it.
  if (std::isspace(static_cast<unsigned char>(text.front())) != 0)
    parse_fail(what, text, "not a base-10 integer");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0')
    parse_fail(what, text, "not a base-10 integer");
  if (errno == ERANGE || v < min_value || v > max_value)
    parse_fail(what, text,
               strprintf("must be in [%d, %d]", min_value, max_value).c_str());
  return static_cast<int>(v);
}

double parse_double(const std::string& text, double min_value,
                    double max_value, const std::string& what) {
  if (text.empty()) parse_fail(what, text, "empty");
  if (std::isspace(static_cast<unsigned char>(text.front())) != 0)
    parse_fail(what, text, "not a decimal number");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0')
    parse_fail(what, text, "not a decimal number");
  if (errno == ERANGE || !std::isfinite(v) || v < min_value || v > max_value)
    parse_fail(what, text,
               strprintf("must be in [%g, %g]", min_value, max_value).c_str());
  return v;
}

std::string human_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return strprintf("%.1f %s", bytes, units[u]);
}

std::string percent(double fraction, int decimals) {
  return strprintf("%.*f%%", decimals, 100.0 * fraction);
}

}  // namespace mog
