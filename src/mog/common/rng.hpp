// Deterministic, seedable random number generation.
//
// All stochastic parts of the library (scene synthesis, noise injection,
// property-test sweeps) draw from these generators so that every figure,
// table, and test is bit-reproducible across runs. We deliberately avoid
// std::mt19937 + std::normal_distribution because their outputs are not
// guaranteed identical across standard library implementations.
#pragma once

#include <cstdint>

namespace mog {

/// SplitMix64 — used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the workhorse generator. Small, fast, high quality.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedu);

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint32_t uniform_u32(std::uint32_t n);

  /// Standard normal via Box–Muller (deterministic, portable).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double sd) { return mean + sd * normal(); }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace mog
