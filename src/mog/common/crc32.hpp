// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the checksum used by the
// model snapshot format to detect corrupt checkpoints before they are rolled
// back into a live pipeline.
//
// Incremental interface so callers can stream large arrays without
// concatenating them in memory.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mog {

class Crc32 {
 public:
  void update(const void* data, std::size_t bytes);
  /// Finalized checksum of everything fed so far (update() may continue).
  std::uint32_t value() const { return state_ ^ 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

/// One-shot convenience over a single buffer.
std::uint32_t crc32(const void* data, std::size_t bytes);

}  // namespace mog
