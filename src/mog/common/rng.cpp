#include "mog/common/rng.hpp"

#include <cmath>
#include <numbers>

#include "mog/common/error.hpp"

namespace mog {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm{seed};
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits → uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MOG_CHECK(lo <= hi, "empty interval");
  return lo + (hi - lo) * uniform();
}

std::uint32_t Rng::uniform_u32(std::uint32_t n) {
  MOG_CHECK(n > 0, "uniform_u32 requires n > 0");
  // Lemire-style unbiased bounded draw (rejection on the low word).
  while (true) {
    const std::uint64_t x = next_u64() & 0xffffffffull;
    const std::uint64_t m = x * n;
    if ((m & 0xffffffffull) >= (0x100000000ull % n) || 0x100000000ull % n == 0)
      return static_cast<std::uint32_t>(m >> 32);
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is kept away from 0 so log() stays finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

}  // namespace mog
