// Small string/format helpers (GCC 12 lacks <format>, so we wrap snprintf).
#pragma once

#include <string>

namespace mog {

/// printf-style formatting into std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable byte count, e.g. "46.1 KB", "1.4 GB".
std::string human_bytes(double bytes);

/// Fixed-width percentage, e.g. "78.3%".
std::string percent(double fraction, int decimals = 1);

}  // namespace mog
