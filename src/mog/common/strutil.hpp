// Small string/format helpers (GCC 12 lacks <format>, so we wrap snprintf)
// and checked numeric parsing for CLI flags.
#pragma once

#include <string>

namespace mog {

/// printf-style formatting into std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Parse a base-10 integer, rejecting what std::atoi silently accepts:
/// empty input, non-numeric text ("banana" -> 0), trailing junk ("12x"),
/// and out-of-range values. `what` names the value (e.g. "--count") in the
/// thrown mog::Error.
int parse_int(const std::string& text, int min_value, int max_value,
              const std::string& what);

/// Parse a finite decimal floating-point value with the same strictness
/// (whole input must be consumed; NaN/inf and range violations rejected).
double parse_double(const std::string& text, double min_value,
                    double max_value, const std::string& what);

/// Human-readable byte count, e.g. "46.1 KB", "1.4 GB".
std::string human_bytes(double bytes);

/// Fixed-width percentage, e.g. "78.3%".
std::string percent(double fraction, int decimals = 1);

}  // namespace mog
