// Error handling primitives shared by every mog subsystem.
//
// Library code throws mog::Error (derived from std::runtime_error) for
// recoverable misuse; MOG_CHECK is the argument-validation macro used at
// public API boundaries. Internal invariants use MOG_ASSERT, which is active
// in all build types (simulation correctness matters more than the nanoseconds
// saved by disabling it).
#pragma once

#include <stdexcept>
#include <string>

namespace mog {

/// Base exception for all errors raised by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* kind, const char* cond,
                              const char* file, int line,
                              const std::string& msg) {
  std::string s{kind};
  s += ": (";
  s += cond;
  s += ") at ";
  s += file;
  s += ':';
  s += std::to_string(line);
  if (!msg.empty()) {
    s += " — ";
    s += msg;
  }
  throw Error{s};
}
}  // namespace detail

}  // namespace mog

/// Validate a caller-supplied condition; throws mog::Error when violated.
#define MOG_CHECK(cond, msg)                                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::mog::detail::fail("precondition violated", #cond, __FILE__,      \
                          __LINE__, (msg));                              \
    }                                                                    \
  } while (false)

/// Internal invariant; always on.
#define MOG_ASSERT(cond, msg)                                            \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::mog::detail::fail("internal invariant violated", #cond,          \
                          __FILE__, __LINE__, (msg));                    \
    }                                                                    \
  } while (false)
