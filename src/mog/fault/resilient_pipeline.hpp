// Self-healing wrapper around the GPU pipeline.
//
// Recovery machinery, in the order a frame meets it:
//
//   1. Input validation — dropped (empty), truncated (short read), or
//      burst-corrupted frames (saturation integrity check) never reach the
//      model: the last known mask is reused and the update is skipped.
//   2. Bounded retry with exponential backoff — transient DMA / launch
//      faults (gpusim::TransferError / LaunchError) are retried up to
//      RetryPolicy::max_attempts. Retries piggyback on the pipeline's
//      resumable-operation support, so a failed mask download is re-fetched
//      without re-running the model update (no double-update divergence);
//      backoff is modeled time, accumulated in RecoveryStats.
//   3. Checkpoint + rollback — the model is snapshotted on a period (in
//      memory, optionally to disk via model_io, whose v2 format carries a
//      CRC32); a periodic watchdog (fault::validate_model) rolls a diverged
//      or corrupted model back to the last healthy checkpoint.
//   4. Graceful degradation — when whole frames keep failing, the pipeline
//      steps down the ladder tiled -> level F direct -> CPU serial,
//      carrying the model across so masks keep flowing.
//
// Every recovery action is counted in RecoveryStats (comparable, so tests
// can assert deterministic replay). process() never throws on injected
// device faults.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mog/cpu/serial_mog.hpp"
#include "mog/fault/fault_injector.hpp"
#include "mog/fault/model_health.hpp"
#include "mog/pipeline/gpu_pipeline.hpp"

namespace mog::fault {

/// Degradation ladder, healthiest first.
enum class ExecutionTier { kTiledGpu, kGpuDirect, kCpuSerial };

const char* to_string(ExecutionTier tier);

struct RetryPolicy {
  int max_attempts = 4;                ///< total attempts per operation
  double backoff_base_seconds = 1e-3;  ///< modeled delay before retry 1
  double backoff_multiplier = 2.0;     ///< exponential growth per retry

  void validate() const;
};

struct ResilienceConfig {
  RetryPolicy retry;

  int checkpoint_interval = 128;   ///< frames between snapshots; 0 disables
  int health_check_interval = 32;  ///< frames between watchdog scans; 0 off
  std::size_t health_check_stride = 4;  ///< watchdog pixel subsampling
  double weight_drift_tolerance = kDefaultWeightDriftTolerance;

  /// Cap on the total modeled retry/backoff wall-clock spent on one frame
  /// (seconds; 0 = unlimited). A sick device whose every attempt fails would
  /// otherwise stall its stream for the full exponential ladder — with a
  /// deadline the frame is abandoned early (salvaged mask, degradation
  /// counter advances) so the stream fails over instead of stalling.
  double frame_deadline_seconds = 0;

  /// Consecutive unrecoverable frame episodes before stepping down the
  /// degradation ladder.
  int degrade_after_failures = 2;

  /// Optional on-disk snapshot path (model_io MOGM v2, CRC-protected);
  /// empty keeps checkpoints in memory only.
  std::string checkpoint_path;

  void validate() const;
};

/// Counters for every recovery action taken, surfaced like
/// gpusim::KernelStats. Comparable so deterministic replay can be asserted.
struct RecoveryStats {
  std::uint64_t frames_in = 0;         ///< frames offered to process()
  std::uint64_t frames_absorbed = 0;   ///< frames the model actually saw
  std::uint64_t masks_delivered = 0;   ///< masks handed to the caller
  std::uint64_t frames_dropped = 0;    ///< empty input (capture dropout)
  std::uint64_t frames_truncated = 0;  ///< short read at the video layer
  std::uint64_t frames_corrupt = 0;    ///< failed the integrity check
  std::uint64_t masks_reused = 0;      ///< salvaged via last-known-mask
  std::uint64_t transfer_faults = 0;   ///< DMA faults caught
  std::uint64_t launch_faults = 0;     ///< launch faults caught
  std::uint64_t retries = 0;           ///< re-attempts performed
  std::uint64_t frames_lost = 0;       ///< abandoned after all retries
  std::uint64_t checkpoints = 0;       ///< snapshots taken
  std::uint64_t rollbacks = 0;         ///< watchdog-triggered restores
  std::uint64_t degradations = 0;      ///< ladder steps taken
  std::uint64_t deadline_exceeded = 0; ///< retries cut off by frame deadline
  double backoff_seconds = 0.0;        ///< modeled retry delay, total

  bool operator==(const RecoveryStats&) const = default;
  std::string summary() const;
};

template <typename T>
class ResilientPipeline {
 public:
  using GpuConfig = typename GpuMogPipeline<T>::Config;

  /// `injector` is optional; when set it is installed as the device fault
  /// hook of every GPU pipeline this wrapper builds (including rebuilds
  /// after degradation) and consulted at the video-layer and model-memory
  /// fault points.
  ResilientPipeline(const GpuConfig& gpu_config,
                    const ResilienceConfig& resilience,
                    std::shared_ptr<FaultInjector> injector = nullptr);

  /// Process one frame. Injected device faults never escape: the frame is
  /// retried, salvaged (last known mask), or the pipeline degrades. Returns
  /// true when `fg` holds a mask for this call — always, except mid-group
  /// at the tiled tier.
  bool process(const FrameU8& frame, FrameU8& fg);

  /// Drain a buffered partial tiled group (recovering from faults like
  /// process()); appends masks to `out`, returns the count.
  int flush(std::vector<FrameU8>& out);

  ExecutionTier tier() const { return tier_; }
  const RecoveryStats& recovery_stats() const { return stats_; }

  /// Per-frame modeled schedule of the *active* engine. GPU tiers forward
  /// GpuMogPipeline::frame_schedule(); after degradation to the CPU tier the
  /// transfers are zero (no PCIe crossing) and the kernel term is the cost
  /// model's per-frame serial seconds — a CPU-degraded stream stops
  /// consuming shared device time in the serving layer, which is exactly
  /// what happens on real hardware.
  gpusim::FrameSchedule frame_schedule() const;

  /// Current model (downloaded from the active engine).
  MogModel<T> model() const;
  FrameU8 background() const;

  /// Overwrite the live model with externally restored state (migration
  /// resume, warm start). The adopted state also becomes the in-memory
  /// checkpoint, so a later watchdog rollback cannot resurrect whatever the
  /// engine held before adoption, and the failure streak is reset.
  void adopt_model(const MogModel<T>& m);

  /// Active GPU pipeline, or nullptr after degradation to the CPU tier.
  const GpuMogPipeline<T>* gpu_pipeline() const { return gpu_.get(); }

  const ResilienceConfig& resilience_config() const { return res_; }

 private:
  void build_engine(ExecutionTier tier);
  void degrade();
  bool backoff_before_retry(int attempt, double& frame_backoff);
  bool run_gpu_with_retry(const FrameU8& frame, FrameU8& fg, bool& delivered);
  bool salvage(FrameU8& fg, std::uint64_t& counter);
  void after_absorbed_frame();
  void rollback();
  void take_checkpoint();
  MogModel<T> current_model() const;
  void restore_model(const MogModel<T>& m);
  void scrub_model_fault_point();

  GpuConfig gpu_config_;
  ResilienceConfig res_;
  std::shared_ptr<FaultInjector> injector_;

  ExecutionTier tier_;
  std::unique_ptr<GpuMogPipeline<T>> gpu_;
  std::unique_ptr<SerialMog<T>> cpu_;

  RecoveryStats stats_;
  FrameU8 last_mask_;
  MogModel<T> checkpoint_;
  bool has_checkpoint_ = false;
  int frames_since_checkpoint_ = 0;
  int frames_since_health_ = 0;
  int consecutive_lost_ = 0;
};

extern template class ResilientPipeline<float>;
extern template class ResilientPipeline<double>;

}  // namespace mog::fault
