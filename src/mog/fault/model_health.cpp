#include "mog/fault/model_health.hpp"

#include <cmath>

#include "mog/common/strutil.hpp"

namespace mog::fault {

std::string ModelHealth::summary() const {
  return strprintf(
      "%llu pixels checked: %llu non-finite, %llu non-positive sd, "
      "weight drift %.3g",
      static_cast<unsigned long long>(pixels_checked),
      static_cast<unsigned long long>(non_finite),
      static_cast<unsigned long long>(nonpositive_sd), max_weight_drift);
}

template <typename T>
ModelHealth validate_model(const MogModel<T>& model,
                           std::size_t pixel_stride) {
  MOG_CHECK(pixel_stride >= 1, "pixel_stride must be >= 1");
  ModelHealth h;
  const int k = model.num_components();
  for (std::size_t p = 0; p < model.num_pixels(); p += pixel_stride) {
    ++h.pixels_checked;
    double weight_sum = 0.0;
    for (int c = 0; c < k; ++c) {
      const double w = static_cast<double>(model.weight(p, c));
      const double m = static_cast<double>(model.mean(p, c));
      const double sd = static_cast<double>(model.sd(p, c));
      if (!std::isfinite(w) || !std::isfinite(m) || !std::isfinite(sd)) {
        ++h.non_finite;
        continue;  // don't fold NaN into the weight sum
      }
      if (sd <= 0.0) ++h.nonpositive_sd;
      weight_sum += w;
    }
    const double drift = std::abs(weight_sum - 1.0);
    if (std::isfinite(drift)) {
      if (drift > h.max_weight_drift) h.max_weight_drift = drift;
    }
  }
  return h;
}

template <typename T>
ModelHealth validate_model(const kernels::DeviceMogState<T>& state,
                           const MogParams& params,
                           std::size_t pixel_stride) {
  return validate_model(state.download(params), pixel_stride);
}

template ModelHealth validate_model<float>(const MogModel<float>&,
                                           std::size_t);
template ModelHealth validate_model<double>(const MogModel<double>&,
                                            std::size_t);
template ModelHealth validate_model<float>(
    const kernels::DeviceMogState<float>&, const MogParams&, std::size_t);
template ModelHealth validate_model<double>(
    const kernels::DeviceMogState<double>&, const MogParams&, std::size_t);

}  // namespace mog::fault
