#include "mog/fault/resilient_pipeline.hpp"

#include <cmath>
#include <type_traits>

#include "mog/common/strutil.hpp"
#include "mog/cpu/cost_model.hpp"
#include "mog/cpu/model_io.hpp"
#include "mog/obs/frame_ticket.hpp"
#include "mog/obs/log.hpp"
#include "mog/telemetry/telemetry.hpp"

namespace mog::fault {

namespace {

const obs::ScopedLogger klog{"fault"};

/// Tag a recovery trace instant with the frame ticket in scope, so the
/// serving layer's per-frame flow chains name the frame an action salvaged.
std::vector<std::pair<std::string, double>> with_ticket(
    std::vector<std::pair<std::string, double>> args) {
  if (const std::uint64_t t = obs::current_frame_ticket(); t != 0)
    args.emplace_back("ticket", static_cast<double>(t));
  return args;
}

// A burst-corrupted frame is saturated (0/255) over a large contiguous
// band; clean camera frames are not. Conservative: a false positive only
// costs one reused mask.
constexpr double kSaturationFractionThreshold = 0.25;

bool looks_corrupt(const FrameU8& frame) {
  std::size_t saturated = 0;
  for (std::size_t i = 0; i < frame.size(); ++i)
    saturated += (frame[i] == 0 || frame[i] == 255) ? 1u : 0u;
  return static_cast<double>(saturated) >
         kSaturationFractionThreshold * static_cast<double>(frame.size());
}

}  // namespace

const char* to_string(ExecutionTier tier) {
  switch (tier) {
    case ExecutionTier::kTiledGpu: return "tiled-gpu";
    case ExecutionTier::kGpuDirect: return "gpu-direct";
    case ExecutionTier::kCpuSerial: return "cpu-serial";
  }
  return "?";
}

void RetryPolicy::validate() const {
  MOG_CHECK(max_attempts >= 1, "retry policy needs at least one attempt");
  MOG_CHECK(backoff_base_seconds >= 0.0, "backoff base must be >= 0");
  MOG_CHECK(backoff_multiplier >= 1.0, "backoff multiplier must be >= 1");
}

void ResilienceConfig::validate() const {
  retry.validate();
  MOG_CHECK(checkpoint_interval >= 0, "checkpoint_interval must be >= 0");
  MOG_CHECK(health_check_interval >= 0,
            "health_check_interval must be >= 0");
  MOG_CHECK(health_check_stride >= 1, "health_check_stride must be >= 1");
  MOG_CHECK(weight_drift_tolerance > 0.0,
            "weight_drift_tolerance must be positive");
  MOG_CHECK(degrade_after_failures >= 1,
            "degrade_after_failures must be >= 1");
  MOG_CHECK(frame_deadline_seconds >= 0.0,
            "frame_deadline_seconds must be >= 0");
}

std::string RecoveryStats::summary() const {
  return strprintf(
      "%llu/%llu frames absorbed, %llu masks (%llu reused); faults: "
      "%llu transfer, %llu launch, %llu bad frames; recovery: %llu retries "
      "(%.1f ms backoff), %llu lost, %llu checkpoints, %llu rollbacks, "
      "%llu degradations",
      static_cast<unsigned long long>(frames_absorbed),
      static_cast<unsigned long long>(frames_in),
      static_cast<unsigned long long>(masks_delivered),
      static_cast<unsigned long long>(masks_reused),
      static_cast<unsigned long long>(transfer_faults),
      static_cast<unsigned long long>(launch_faults),
      static_cast<unsigned long long>(frames_dropped + frames_truncated +
                                      frames_corrupt),
      static_cast<unsigned long long>(retries), 1e3 * backoff_seconds,
      static_cast<unsigned long long>(frames_lost),
      static_cast<unsigned long long>(checkpoints),
      static_cast<unsigned long long>(rollbacks),
      static_cast<unsigned long long>(degradations));
}

template <typename T>
ResilientPipeline<T>::ResilientPipeline(const GpuConfig& gpu_config,
                                        const ResilienceConfig& resilience,
                                        std::shared_ptr<FaultInjector> injector)
    : gpu_config_(gpu_config),
      res_(resilience),
      injector_(std::move(injector)) {
  res_.validate();
  tier_ = gpu_config_.tiled ? ExecutionTier::kTiledGpu
                            : ExecutionTier::kGpuDirect;
  build_engine(tier_);
  last_mask_ = FrameU8(gpu_config_.width, gpu_config_.height);
}

template <typename T>
void ResilientPipeline<T>::build_engine(ExecutionTier tier) {
  gpu_.reset();
  cpu_.reset();
  switch (tier) {
    case ExecutionTier::kTiledGpu:
      gpu_ = std::make_unique<GpuMogPipeline<T>>(gpu_config_);
      break;
    case ExecutionTier::kGpuDirect: {
      GpuConfig direct = gpu_config_;
      if (direct.tiled) {
        // Stepping down from the tiled tier lands on plain level F.
        direct.tiled = false;
        direct.level = kernels::OptLevel::kF;
      }
      gpu_ = std::make_unique<GpuMogPipeline<T>>(direct);
      break;
    }
    case ExecutionTier::kCpuSerial:
      cpu_ = std::make_unique<SerialMog<T>>(gpu_config_.width,
                                            gpu_config_.height,
                                            gpu_config_.params);
      break;
  }
  if (gpu_ && injector_) gpu_->device().set_fault_hook(injector_.get());
}

template <typename T>
MogModel<T> ResilientPipeline<T>::current_model() const {
  return cpu_ ? cpu_->model() : gpu_->model();
}

template <typename T>
MogModel<T> ResilientPipeline<T>::model() const {
  return current_model();
}

template <typename T>
FrameU8 ResilientPipeline<T>::background() const {
  return to_u8(current_model().background_image());
}

template <typename T>
void ResilientPipeline<T>::adopt_model(const MogModel<T>& m) {
  MOG_CHECK(m.width() == gpu_config_.width &&
                m.height() == gpu_config_.height &&
                m.num_components() == gpu_config_.params.num_components,
            "adopted model geometry does not match the pipeline");
  restore_model(m);
  checkpoint_ = m;
  has_checkpoint_ = true;
  frames_since_checkpoint_ = 0;
  consecutive_lost_ = 0;
  telemetry::emit_instant("model_adopted", "recovery", with_ticket({}));
  klog.info("external model adopted",
            {{"tier", to_string(tier_)},
             {"pixels", static_cast<std::int64_t>(m.num_pixels())}});
}

template <typename T>
gpusim::FrameSchedule ResilientPipeline<T>::frame_schedule() const {
  if (gpu_) return gpu_->frame_schedule();
  gpusim::FrameSchedule sched;  // CPU tier: no host<->device transfers
  sched.kernel_seconds = CpuCostModel{}.seconds(
      CpuVariant::kSerial,
      std::is_same_v<T, float> ? Precision::kFloat : Precision::kDouble,
      gpu_config_.width, gpu_config_.height, /*frames=*/1,
      gpu_config_.params.num_components);
  return sched;
}

template <typename T>
void ResilientPipeline<T>::restore_model(const MogModel<T>& m) {
  if (cpu_)
    cpu_->model() = m;
  else
    gpu_->set_model(m);
}

template <typename T>
bool ResilientPipeline<T>::salvage(FrameU8& fg, std::uint64_t& counter) {
  ++counter;
  ++stats_.masks_reused;
  ++stats_.masks_delivered;
  fg = last_mask_;
  telemetry::emit_instant(
      "mask_salvaged", "recovery",
      with_ticket({{"frame", static_cast<double>(stats_.frames_in)}}));
  klog.debug("mask salvaged",
             {{"frame", static_cast<std::int64_t>(stats_.frames_in)}});
  return true;
}

template <typename T>
bool ResilientPipeline<T>::process(const FrameU8& frame, FrameU8& fg) {
  ++stats_.frames_in;

  // 1. Video layer: apply injected faults, then validate what "arrived".
  FrameU8 working;
  const FrameU8* input = &frame;
  if (injector_) {
    working = frame;
    injector_->apply_frame_faults(working);
    input = &working;
  }
  if (input->empty()) return salvage(fg, stats_.frames_dropped);
  if (input->width() != gpu_config_.width ||
      input->height() != gpu_config_.height)
    return salvage(fg, stats_.frames_truncated);
  if (looks_corrupt(*input)) return salvage(fg, stats_.frames_corrupt);

  // 2. Feed the engine.
  bool delivered = false;
  bool absorbed = false;
  if (cpu_) {
    cpu_->apply(*input, fg);
    last_mask_ = fg;
    ++stats_.masks_delivered;
    delivered = true;
    absorbed = true;
  } else {
    absorbed = run_gpu_with_retry(*input, fg, delivered);
  }

  // 3. Post-frame bookkeeping: scrub fault point, watchdog, checkpoint.
  if (absorbed) {
    ++stats_.frames_absorbed;
    // Only an actually delivered mask proves the engine is healthy again; a
    // tiled frame that was merely buffered has not exercised the launch or
    // download path, so it must not reset the degradation counter.
    if (delivered) consecutive_lost_ = 0;
    after_absorbed_frame();
  }
  return delivered;
}

template <typename T>
bool ResilientPipeline<T>::backoff_before_retry(int attempt,
                                                double& frame_backoff) {
  const double delay = res_.retry.backoff_base_seconds *
                       std::pow(res_.retry.backoff_multiplier, attempt - 2);
  // A sick device must fail over, not stall its stream through the whole
  // exponential ladder: once this frame's accumulated backoff would cross
  // the deadline, stop retrying and let the abandonment path run now.
  if (res_.frame_deadline_seconds > 0 &&
      frame_backoff + delay > res_.frame_deadline_seconds) {
    ++stats_.deadline_exceeded;
    telemetry::emit_instant(
        "retry_deadline", "recovery",
        with_ticket({{"deadline_seconds", res_.frame_deadline_seconds}}));
    klog.warn("frame retry deadline exceeded, abandoning",
              {{"deadline_seconds", res_.frame_deadline_seconds},
               {"attempt", attempt}});
    return false;
  }
  frame_backoff += delay;
  ++stats_.retries;
  stats_.backoff_seconds += delay;
  return true;
}

template <typename T>
bool ResilientPipeline<T>::run_gpu_with_retry(const FrameU8& frame,
                                              FrameU8& fg, bool& delivered) {
  double frame_backoff = 0;
  for (int attempt = 1; attempt <= res_.retry.max_attempts; ++attempt) {
    if (attempt > 1) {
      if (!backoff_before_retry(attempt, frame_backoff)) break;
      telemetry::emit_instant(
          "retry", "recovery",
          with_ticket({{"attempt", static_cast<double>(attempt)}}));
      klog.warn("transient device fault, retrying", {{"attempt", attempt}});
    }
    try {
      // A failed download leaves the pipeline in_flight(); resume() fetches
      // only what is still owed — the model update never runs twice.
      const bool got =
          gpu_->in_flight() ? gpu_->resume(fg) : gpu_->process(frame, fg);
      if (got) {
        last_mask_ = fg;
        ++stats_.masks_delivered;
        delivered = true;
      }
      return true;
    } catch (const gpusim::TransferError&) {
      ++stats_.transfer_faults;
      telemetry::emit_instant("transfer_fault", "fault", with_ticket({}));
    } catch (const gpusim::LaunchError&) {
      ++stats_.launch_faults;
      telemetry::emit_instant("launch_fault", "fault", with_ticket({}));
    }
  }

  // Retries exhausted: abandon the operation, salvage a mask, and step down
  // the ladder if this keeps happening.
  const int discarded = gpu_->abort_in_flight();
  stats_.frames_lost += static_cast<std::uint64_t>(discarded > 0 ? discarded
                                                                 : 1);
  std::uint64_t unused = 0;
  salvage(fg, unused);
  delivered = true;
  ++consecutive_lost_;
  if (consecutive_lost_ >= res_.degrade_after_failures) degrade();
  return false;
}

template <typename T>
void ResilientPipeline<T>::degrade() {
  if (tier_ == ExecutionTier::kCpuSerial) return;  // floor of the ladder

  // Carry the model across. The un-hooked model download always works
  // functionally; if the state itself is unhealthy, fall back to the last
  // checkpoint (or a fresh model as the last resort).
  MogModel<T> carry = current_model();
  if (!validate_model(carry, res_.health_check_stride)
           .healthy(res_.weight_drift_tolerance)) {
    carry = has_checkpoint_
                ? checkpoint_
                : MogModel<T>(gpu_config_.width, gpu_config_.height,
                              gpu_config_.params);
  }

  const ExecutionTier from = tier_;
  tier_ = tier_ == ExecutionTier::kTiledGpu ? ExecutionTier::kGpuDirect
                                            : ExecutionTier::kCpuSerial;
  build_engine(tier_);
  restore_model(carry);
  ++stats_.degradations;
  consecutive_lost_ = 0;
  telemetry::emit_instant(
      "degrade", "recovery",
      with_ticket({{"from_tier", static_cast<double>(from)},
                   {"to_tier", static_cast<double>(tier_)}}));
  klog.warn("degraded down the execution ladder",
            {{"from", to_string(from)}, {"to", to_string(tier_)}});
}

template <typename T>
void ResilientPipeline<T>::scrub_model_fault_point() {
  if (!injector_) return;
  if (cpu_) {
    auto& means = cpu_->model().means();
    injector_->corrupt_model_maybe(means.data(), means.size());
    return;
  }
  auto& state = gpu_->state();
  if (state.layout() == kernels::ParamLayout::kSoA) {
    const auto& means = state.means();
    injector_->corrupt_model_maybe(means.data, means.count);
  } else {
    const auto& aos = state.aos();
    injector_->corrupt_model_maybe(aos.data, aos.count);
  }
}

template <typename T>
void ResilientPipeline<T>::after_absorbed_frame() {
  scrub_model_fault_point();

  if (res_.health_check_interval > 0 &&
      ++frames_since_health_ >= res_.health_check_interval) {
    frames_since_health_ = 0;
    const ModelHealth health =
        validate_model(current_model(), res_.health_check_stride);
    if (!health.healthy(res_.weight_drift_tolerance)) rollback();
  }

  if (res_.checkpoint_interval > 0 &&
      ++frames_since_checkpoint_ >= res_.checkpoint_interval) {
    frames_since_checkpoint_ = 0;
    take_checkpoint();
  }
}

template <typename T>
void ResilientPipeline<T>::rollback() {
  ++stats_.rollbacks;
  telemetry::emit_instant(
      "rollback", "recovery",
      with_ticket({{"has_checkpoint", has_checkpoint_ ? 1.0 : 0.0}}));
  klog.warn("model unhealthy, rolling back",
            {{"has_checkpoint", has_checkpoint_}});
  if (has_checkpoint_) {
    restore_model(checkpoint_);
  } else {
    restore_model(MogModel<T>(gpu_config_.width, gpu_config_.height,
                              gpu_config_.params));
  }
}

template <typename T>
void ResilientPipeline<T>::take_checkpoint() {
  MogModel<T> snapshot = current_model();
  // Never checkpoint a sick model — that would turn rollback into replay of
  // the corruption.
  if (!validate_model(snapshot, res_.health_check_stride)
           .healthy(res_.weight_drift_tolerance))
    return;
  checkpoint_ = std::move(snapshot);
  has_checkpoint_ = true;
  ++stats_.checkpoints;
  telemetry::emit_instant(
      "checkpoint", "recovery",
      with_ticket({{"frame", static_cast<double>(stats_.frames_absorbed)}}));
  if (!res_.checkpoint_path.empty())
    save_model(res_.checkpoint_path, checkpoint_);
}

template <typename T>
int ResilientPipeline<T>::flush(std::vector<FrameU8>& out) {
  if (!gpu_) return 0;
  double frame_backoff = 0;
  for (int attempt = 1; attempt <= res_.retry.max_attempts; ++attempt) {
    if (attempt > 1 && !backoff_before_retry(attempt, frame_backoff)) break;
    try {
      int n = 0;
      if (gpu_->in_flight()) {
        FrameU8 scratch;
        gpu_->resume(scratch);
        const auto& masks = gpu_->last_group_masks();
        out.insert(out.end(), masks.begin(), masks.end());
        n = static_cast<int>(masks.size());
      } else {
        n = gpu_->flush(out);
      }
      if (n > 0) {
        // The flushed frames were already counted as absorbed when buffered.
        last_mask_ = out.back();
        stats_.masks_delivered += static_cast<std::uint64_t>(n);
      }
      return n;
    } catch (const gpusim::TransferError&) {
      ++stats_.transfer_faults;
    } catch (const gpusim::LaunchError&) {
      ++stats_.launch_faults;
    }
  }
  const int discarded = gpu_->abort_in_flight();
  stats_.frames_lost += static_cast<std::uint64_t>(discarded);
  return 0;
}

template class ResilientPipeline<float>;
template class ResilientPipeline<double>;

}  // namespace mog::fault
