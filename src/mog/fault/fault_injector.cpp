#include "mog/fault/fault_injector.hpp"

#include <algorithm>

namespace mog::fault {

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kFrameDrop: return "frame-drop";
    case FaultSite::kFrameTruncate: return "frame-truncate";
    case FaultSite::kFrameCorrupt: return "frame-corrupt";
    case FaultSite::kUpload: return "upload";
    case FaultSite::kDownload: return "download";
    case FaultSite::kLaunch: return "launch";
    case FaultSite::kPayloadBitflip: return "payload-bitflip";
    case FaultSite::kModelMemory: return "model-memory";
  }
  return "?";
}

void FaultConfig::validate() const {
  const double probs[] = {frame_drop_prob,    frame_truncate_prob,
                          frame_corrupt_prob, upload_fault_prob,
                          download_fault_prob, launch_fault_prob,
                          payload_bitflip_prob, model_corrupt_prob};
  for (const double p : probs)
    MOG_CHECK(p >= 0.0 && p <= 1.0,
              "fault probabilities must be in [0, 1]");
}

FaultInjector::FaultInjector(const FaultConfig& config) : config_(config) {
  config_.validate();
  SplitMix64 expander{config_.seed};
  for (auto& r : rngs_) r = Rng{expander.next()};
}

bool FaultInjector::fires(FaultSite site, double probability) {
  const std::uint64_t index = op_counts_[static_cast<std::size_t>(site)]++;
  // Always draw, even at probability 0, so every site's stream advances
  // identically whatever the configuration — replay stays exact when a test
  // toggles one probability.
  const bool random = rng(site).chance(probability);
  const bool scheduled =
      std::any_of(config_.schedule.begin(), config_.schedule.end(),
                  [&](const ScheduledFault& f) {
                    return f.site == site && f.op_index == index;
                  });
  return random || scheduled;
}

FrameFault FaultInjector::apply_frame_faults(FrameU8& frame) {
  ++log_.frames_seen;
  const bool drop = fires(FaultSite::kFrameDrop, config_.frame_drop_prob);
  const bool truncate =
      fires(FaultSite::kFrameTruncate, config_.frame_truncate_prob);
  const bool corrupt =
      fires(FaultSite::kFrameCorrupt, config_.frame_corrupt_prob);

  if (drop) {
    frame = FrameU8{};  // the capture layer delivered nothing
    ++log_.frames_dropped;
    return FrameFault::kDropped;
  }
  if (truncate && frame.height() > 1) {
    // Short read: only the leading rows arrived.
    const int keep = 1 + static_cast<int>(rng(FaultSite::kFrameTruncate)
                                              .uniform_u32(static_cast<std::uint32_t>(
                                                  frame.height() - 1)));
    FrameU8 shorter(frame.width(), keep);
    std::copy_n(frame.data(), shorter.size(), shorter.data());
    frame = std::move(shorter);
    ++log_.frames_truncated;
    return FrameFault::kTruncated;
  }
  if (corrupt && !frame.empty()) {
    // Burst corruption: a band of rows is overwritten with saturated noise
    // (the signature of a DMA/sensor burst error) — detectable downstream
    // by a saturation-fraction integrity check.
    Rng& r = rng(FaultSite::kFrameCorrupt);
    const int h = frame.height();
    const int band = (2 * h + 4) / 5;  // ~40% of the rows
    const int start = static_cast<int>(
        r.uniform_u32(static_cast<std::uint32_t>(h - band + 1)));
    for (int y = start; y < start + band; ++y)
      for (int x = 0; x < frame.width(); ++x)
        frame.at(x, y) = r.chance(0.5) ? 0 : 255;
    ++log_.frames_corrupted;
    return FrameFault::kCorrupted;
  }
  return FrameFault::kNone;
}

void FaultInjector::before_transfer(gpusim::TransferDir dir,
                                    std::uint64_t bytes) {
  if (dir == gpusim::TransferDir::kHostToDevice) {
    ++log_.uploads_seen;
    if (fires(FaultSite::kUpload, config_.upload_fault_prob)) {
      ++log_.upload_faults;
      throw gpusim::TransferError{
          dir, "injected DMA fault: host->device transfer of " +
                   std::to_string(bytes) + " bytes failed"};
    }
  } else {
    ++log_.downloads_seen;
    if (fires(FaultSite::kDownload, config_.download_fault_prob)) {
      ++log_.download_faults;
      throw gpusim::TransferError{
          dir, "injected DMA fault: device->host transfer of " +
                   std::to_string(bytes) + " bytes failed"};
    }
  }
}

void FaultInjector::after_transfer(gpusim::TransferDir, void* data,
                                   std::size_t bytes) {
  if (!fires(FaultSite::kPayloadBitflip, config_.payload_bitflip_prob) ||
      bytes == 0)
    return;
  Rng& r = rng(FaultSite::kPayloadBitflip);
  const auto span = static_cast<std::uint32_t>(
      bytes < 0xffffffffu ? bytes : std::size_t{0xffffffffu});
  const std::size_t byte = r.uniform_u32(span);
  const int bit = static_cast<int>(r.uniform_u32(8));
  static_cast<std::uint8_t*>(data)[byte] ^=
      static_cast<std::uint8_t>(1u << bit);
  ++log_.payload_bitflips;
}

void FaultInjector::before_launch() {
  ++log_.launches_seen;
  if (fires(FaultSite::kLaunch, config_.launch_fault_prob)) {
    ++log_.launch_faults;
    throw gpusim::LaunchError{
        "injected launch failure: kernel did not start"};
  }
}

}  // namespace mog::fault
