// Deterministic, seeded fault injection for the whole pipeline.
//
// Long-running surveillance deployments fail on corrupted frames, transfer
// faults, and model divergence — not on the happy path. This injector makes
// those failures *testable*: every fault site draws from its own
// deterministic RNG stream (expanded from one user seed via SplitMix64), so
// a given (seed, config) replays the exact same fault sequence run after
// run, and faults can additionally be pinned to exact operation indices via
// a schedule.
//
// Sites:
//   * video layer   — drop, truncate, or burst-corrupt input frames
//                     (apply_frame_faults, called by the recovery layer)
//   * DMA transfers — fail uploads/downloads (gpusim::FaultHook), or flip a
//                     bit in a delivered payload (silent corruption)
//   * kernel launch — fail a launch before any block runs
//   * model memory  — poison one model scalar at the per-frame scrub point
//                     (modeling an uncorrected GPU memory error)
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "mog/common/image.hpp"
#include "mog/common/rng.hpp"
#include "mog/gpusim/fault_hooks.hpp"

namespace mog::fault {

enum class FaultSite {
  kFrameDrop = 0,
  kFrameTruncate,
  kFrameCorrupt,
  kUpload,
  kDownload,
  kLaunch,
  kPayloadBitflip,
  kModelMemory,
};
inline constexpr int kNumFaultSites = 8;

const char* to_string(FaultSite site);

/// Pin a fault to the `op_index`-th operation (0-based) at a site, e.g.
/// {kLaunch, 3} fails the fourth kernel launch regardless of probability.
struct ScheduledFault {
  FaultSite site;
  std::uint64_t op_index;
};

struct FaultConfig {
  std::uint64_t seed = 0x5eedfa17u;

  // Per-operation fault probabilities, all in [0, 1].
  double frame_drop_prob = 0.0;
  double frame_truncate_prob = 0.0;
  double frame_corrupt_prob = 0.0;
  double upload_fault_prob = 0.0;
  double download_fault_prob = 0.0;
  double launch_fault_prob = 0.0;
  double payload_bitflip_prob = 0.0;
  double model_corrupt_prob = 0.0;

  std::vector<ScheduledFault> schedule;

  void validate() const;
};

/// What happened to a frame at the video layer.
enum class FrameFault { kNone, kDropped, kTruncated, kCorrupted };

/// Injection counters — every fault actually delivered. Comparable so tests
/// can assert bit-identical replay across runs.
struct InjectionLog {
  std::uint64_t frames_seen = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_truncated = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t uploads_seen = 0;
  std::uint64_t upload_faults = 0;
  std::uint64_t downloads_seen = 0;
  std::uint64_t download_faults = 0;
  std::uint64_t launches_seen = 0;
  std::uint64_t launch_faults = 0;
  std::uint64_t payload_bitflips = 0;
  std::uint64_t model_corruptions = 0;

  bool operator==(const InjectionLog&) const = default;
};

class FaultInjector final : public gpusim::FaultHook {
 public:
  explicit FaultInjector(const FaultConfig& config);

  /// Video-layer fault point: mutate `frame` in place (drop → empty image,
  /// truncate → fewer rows, corrupt → saturated burst band) and report what
  /// was injected. Precedence when several fire: drop > truncate > corrupt.
  FrameFault apply_frame_faults(FrameU8& frame);

  // gpusim::FaultHook — installed on the simulated device.
  void before_transfer(gpusim::TransferDir dir, std::uint64_t bytes) override;
  void after_transfer(gpusim::TransferDir dir, void* data,
                      std::size_t bytes) override;
  void before_launch() override;

  /// Model-memory scrub point: with probability model_corrupt_prob (or per
  /// schedule) poison one scalar of the given parameter array with NaN,
  /// modeling an uncorrected memory error between frames. Returns true when
  /// an error was injected.
  template <typename T>
  bool corrupt_model_maybe(T* data, std::size_t n) {
    if (!fires(FaultSite::kModelMemory, config_.model_corrupt_prob) || n == 0)
      return false;
    const auto span = static_cast<std::uint32_t>(
        n < 0xffffffffu ? n : std::size_t{0xffffffffu});
    data[rng(FaultSite::kModelMemory).uniform_u32(span)] =
        std::numeric_limits<T>::quiet_NaN();
    ++log_.model_corruptions;
    return true;
  }

  const FaultConfig& config() const { return config_; }
  const InjectionLog& log() const { return log_; }

 private:
  /// One deterministic draw at `site` (always consumes exactly one uniform
  /// so streams stay aligned across runs), OR-ed with the schedule.
  bool fires(FaultSite site, double probability);
  Rng& rng(FaultSite site) {
    return rngs_[static_cast<std::size_t>(site)];
  }

  FaultConfig config_;
  std::array<Rng, kNumFaultSites> rngs_;
  std::array<std::uint64_t, kNumFaultSites> op_counts_{};
  InjectionLog log_;
};

}  // namespace mog::fault
