// Model health validation — the cheap periodic watchdog behind
// rollback-on-divergence.
//
// A MoG model is healthy when every parameter is finite, every standard
// deviation is positive, and each pixel's component weights still sum to ~1
// (the kernels renormalize once per frame, so drift beyond numeric noise
// means the update went wrong or memory was corrupted). The check is O(K·N)
// over the scanned pixels; `pixel_stride` subsamples for watchdog use —
// corruption that matters (NaN spreading through the update recurrence,
// whole rows of garbage) is dense enough to catch at stride 4–16 while
// costing a fraction of a frame's work.
#pragma once

#include <cstdint>
#include <string>

#include "mog/cpu/mog_model.hpp"
#include "mog/kernels/device_state.hpp"

namespace mog::fault {

inline constexpr double kDefaultWeightDriftTolerance = 1e-2;

struct ModelHealth {
  std::uint64_t pixels_checked = 0;
  std::uint64_t non_finite = 0;      ///< NaN/Inf scalars (any parameter)
  std::uint64_t nonpositive_sd = 0;  ///< σ <= 0 entries
  double max_weight_drift = 0.0;     ///< max over pixels of |Σ_k w_k − 1|

  bool healthy(double weight_drift_tolerance =
                   kDefaultWeightDriftTolerance) const {
    return non_finite == 0 && nonpositive_sd == 0 &&
           max_weight_drift <= weight_drift_tolerance;
  }
  std::string summary() const;
};

/// Scan a host model. `pixel_stride` >= 1 subsamples pixels.
template <typename T>
ModelHealth validate_model(const MogModel<T>& model,
                           std::size_t pixel_stride = 1);

/// Download and scan a device-resident model.
template <typename T>
ModelHealth validate_model(const kernels::DeviceMogState<T>& state,
                           const MogParams& params,
                           std::size_t pixel_stride = 1);

extern template ModelHealth validate_model<float>(const MogModel<float>&,
                                                  std::size_t);
extern template ModelHealth validate_model<double>(const MogModel<double>&,
                                                   std::size_t);
extern template ModelHealth validate_model<float>(
    const kernels::DeviceMogState<float>&, const MogParams&, std::size_t);
extern template ModelHealth validate_model<double>(
    const kernels::DeviceMogState<double>&, const MogParams&, std::size_t);

}  // namespace mog::fault
