#include "mog/cpu/parallel_mog.hpp"

#include <algorithm>

namespace mog {

template <typename T>
ParallelMog<T>::ParallelMog(int width, int height, const MogParams& params,
                            int num_threads)
    : params_(params),
      tp_(TypedMogParams<T>::from(params)),
      model_(width, height, params) {
  int n = num_threads;
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  n = std::clamp(n, 1, 64);
  // Band 0 runs on the calling thread; bands 1..n-1 on workers.
  for (int band = 1; band < n; ++band)
    workers_.emplace_back([this, band] { worker_loop(band); });
}

template <typename T>
ParallelMog<T>::~ParallelMog() {
  {
    std::lock_guard lk{mu_};
    shutting_down_ = true;
    ++generation_;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

template <typename T>
void ParallelMog<T>::worker_loop(int band) {
  std::uint64_t seen = 0;
  while (true) {
    const FrameU8* frame = nullptr;
    FrameU8* fg = nullptr;
    {
      std::unique_lock lk{mu_};
      cv_start_.wait(lk, [&] { return generation_ != seen || shutting_down_; });
      if (shutting_down_) return;
      seen = generation_;
      frame = cur_frame_;
      fg = cur_fg_;
    }
    process_band(band, *frame, *fg);
    {
      std::lock_guard lk{mu_};
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

template <typename T>
void ParallelMog<T>::process_band(int band, const FrameU8& frame,
                                  FrameU8& fg) {
  const std::size_t n = model_.num_pixels();
  const int bands = num_threads();
  const std::size_t lo = n * band / bands;
  const std::size_t hi = n * (band + 1) / bands;

  T* w = model_.weights().data();
  T* m = model_.means().data();
  T* sd = model_.sds().data();
  for (std::size_t p = lo; p < hi; ++p) {
    const T x = static_cast<T>(frame[p]);
    fg[p] = update_pixel_sorted(w + p, m + p, sd + p, n, x, tp_) ? 255 : 0;
  }
}

template <typename T>
void ParallelMog<T>::apply(const FrameU8& frame, FrameU8& fg) {
  MOG_CHECK(frame.width() == model_.width() &&
                frame.height() == model_.height(),
            "frame dimensions do not match the model");
  if (!fg.same_shape(frame)) fg = FrameU8(frame.width(), frame.height());

  {
    std::lock_guard lk{mu_};
    cur_frame_ = &frame;
    cur_fg_ = &fg;
    pending_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  cv_start_.notify_all();
  process_band(0, frame, fg);
  std::unique_lock lk{mu_};
  cv_done_.wait(lk, [&] { return pending_ == 0; });
}

template class ParallelMog<float>;
template class ParallelMog<double>;

}  // namespace mog
