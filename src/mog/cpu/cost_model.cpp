#include "mog/cpu/cost_model.hpp"

namespace mog {

namespace {

// Affine fit of serial-double seconds vs component count through the paper's
// two anchors (K=3 → 227.3 s, K=5 → 406.6 s over 450 full-HD frames).
double serial_double_seconds(int k) {
  constexpr double kSlope = (406.6 - 227.3) / 2.0;        // 89.65 s per comp.
  constexpr double kIntercept = 227.3 - 3.0 * kSlope;     // fixed overhead
  double s = kIntercept + kSlope * k;
  // The affine fit has a negative intercept; keep extrapolation sane below
  // the fitted range by falling back to proportional scaling for K < 2.
  if (k < 2) s = 227.3 * (static_cast<double>(k) / 3.0);
  return s;
}

constexpr double kFloatFactor = 180.0 / 227.3;  // §V-C
constexpr double kSimdFactor = 163.0 / 227.3;   // §IV-A
// Parallel contention model: speedup(t) = t / (1 + (t-1) * beta), with beta
// chosen so that speedup(8) = 227.3 / 99.8 = 2.2776 (the memory-bandwidth
// ceiling of the Table I DDR3 system dominates beyond a few threads).
constexpr double kParallelBeta =
    (8.0 / (227.3 / 99.8) - 1.0) / 7.0;  // ≈ 0.3588

}  // namespace

double CpuCostModel::seconds(CpuVariant variant, Precision precision,
                             int width, int height, int frames,
                             int num_components, int threads) const {
  MOG_CHECK(width > 0 && height > 0 && frames >= 0, "bad workload shape");
  MOG_CHECK(num_components >= 1, "bad component count");
  MOG_CHECK(threads >= 1, "bad thread count");

  double s = serial_double_seconds(num_components);

  // Linear scaling in pixels and frames relative to the reference workload.
  const double pixel_scale =
      (static_cast<double>(width) * height) /
      (static_cast<double>(kReferenceWidth) * kReferenceHeight);
  const double frame_scale =
      static_cast<double>(frames) / kReferenceFrames;
  s *= pixel_scale * frame_scale;

  if (precision == Precision::kFloat) s *= kFloatFactor;

  switch (variant) {
    case CpuVariant::kSerial:
      break;
    case CpuVariant::kSimd:
      s *= kSimdFactor;
      break;
    case CpuVariant::kParallel: {
      const double t = static_cast<double>(threads);
      const double speedup = t / (1.0 + (t - 1.0) * kParallelBeta);
      s /= speedup;
      break;
    }
  }
  return s;
}

}  // namespace mog
