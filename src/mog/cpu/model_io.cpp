#include "mog/cpu/model_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "mog/common/crc32.hpp"
#include "mog/common/strutil.hpp"

namespace mog {

namespace {

constexpr char kMagic[4] = {'M', 'O', 'G', 'M'};
// v1: header + arrays. v2 appends a CRC-32 of the three parameter arrays so
// checkpoint rollback can reject corrupt snapshots; v1 files (no checksum)
// still load.
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kOldestLoadableVersion = 1;

struct Header {
  char magic[4];
  std::uint32_t version;
  std::uint32_t dtype;
  std::int32_t width;
  std::int32_t height;
  std::int32_t components;
};

template <typename T>
void write_array(std::ofstream& out, const std::vector<T>& v, Crc32& crc) {
  const std::size_t bytes = v.size() * sizeof(T);
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(bytes));
  crc.update(v.data(), bytes);
}

template <typename T>
void read_array(std::ifstream& in, std::vector<T>& v, Crc32& crc,
                const std::string& path) {
  const std::size_t bytes = v.size() * sizeof(T);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(bytes));
  if (!in) throw Error{"truncated model file: " + path};
  crc.update(v.data(), bytes);
}

}  // namespace

template <typename T>
void save_model(const std::string& path, const MogModel<T>& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error{"cannot open for writing: " + path};

  Header h{};
  std::memcpy(h.magic, kMagic, 4);
  h.version = kVersion;
  h.dtype = sizeof(T);
  h.width = model.width();
  h.height = model.height();
  h.components = model.num_components();
  out.write(reinterpret_cast<const char*>(&h), sizeof h);
  Crc32 crc;
  write_array(out, model.weights(), crc);
  write_array(out, model.means(), crc);
  write_array(out, model.sds(), crc);
  const std::uint32_t checksum = crc.value();
  out.write(reinterpret_cast<const char*>(&checksum), sizeof checksum);
  if (!out) throw Error{"write failed: " + path};
}

template <typename T>
MogModel<T> load_model(const std::string& path, const MogParams& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error{"cannot open for reading: " + path};

  Header h{};
  in.read(reinterpret_cast<char*>(&h), sizeof h);
  if (!in || std::memcmp(h.magic, kMagic, 4) != 0)
    throw Error{"not a MOGM model file: " + path};
  if (h.version < kOldestLoadableVersion || h.version > kVersion)
    throw Error{strprintf("unsupported model version %u in %s", h.version,
                          path.c_str())};
  if (h.dtype != sizeof(T))
    throw Error{strprintf(
        "scalar-type mismatch in %s: file has %u-byte scalars, caller "
        "expects %zu",
        path.c_str(), h.dtype, sizeof(T))};
  if (h.width <= 0 || h.height <= 0 || h.components <= 0 ||
      h.components > 8)
    throw Error{"corrupt model header: " + path};
  MOG_CHECK(h.components == params.num_components,
            "params.num_components does not match the stored model");

  MogModel<T> model(h.width, h.height, params);
  Crc32 crc;
  read_array(in, model.weights(), crc, path);
  read_array(in, model.means(), crc, path);
  read_array(in, model.sds(), crc, path);
  if (h.version >= 2) {
    std::uint32_t stored = 0;
    in.read(reinterpret_cast<char*>(&stored), sizeof stored);
    if (!in) throw Error{"truncated model file (missing checksum): " + path};
    if (stored != crc.value())
      throw Error{strprintf(
          "model checksum mismatch in %s (stored %08x, computed %08x) — "
          "snapshot is corrupt",
          path.c_str(), stored, crc.value())};
  }
  return model;
}

template void save_model<float>(const std::string&, const MogModel<float>&);
template void save_model<double>(const std::string&, const MogModel<double>&);
template MogModel<float> load_model<float>(const std::string&,
                                           const MogParams&);
template MogModel<double> load_model<double>(const std::string&,
                                             const MogParams&);

}  // namespace mog
