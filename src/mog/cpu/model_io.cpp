#include "mog/cpu/model_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "mog/common/strutil.hpp"

namespace mog {

namespace {

constexpr char kMagic[4] = {'M', 'O', 'G', 'M'};
constexpr std::uint32_t kVersion = 1;

struct Header {
  char magic[4];
  std::uint32_t version;
  std::uint32_t dtype;
  std::int32_t width;
  std::int32_t height;
  std::int32_t components;
};

template <typename T>
void write_array(std::ofstream& out, const std::vector<T>& v) {
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
void read_array(std::ifstream& in, std::vector<T>& v,
                const std::string& path) {
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(T)));
  if (!in) throw Error{"truncated model file: " + path};
}

}  // namespace

template <typename T>
void save_model(const std::string& path, const MogModel<T>& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error{"cannot open for writing: " + path};

  Header h{};
  std::memcpy(h.magic, kMagic, 4);
  h.version = kVersion;
  h.dtype = sizeof(T);
  h.width = model.width();
  h.height = model.height();
  h.components = model.num_components();
  out.write(reinterpret_cast<const char*>(&h), sizeof h);
  write_array(out, model.weights());
  write_array(out, model.means());
  write_array(out, model.sds());
  if (!out) throw Error{"write failed: " + path};
}

template <typename T>
MogModel<T> load_model(const std::string& path, const MogParams& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error{"cannot open for reading: " + path};

  Header h{};
  in.read(reinterpret_cast<char*>(&h), sizeof h);
  if (!in || std::memcmp(h.magic, kMagic, 4) != 0)
    throw Error{"not a MOGM model file: " + path};
  if (h.version != kVersion)
    throw Error{strprintf("unsupported model version %u in %s", h.version,
                          path.c_str())};
  if (h.dtype != sizeof(T))
    throw Error{strprintf(
        "scalar-type mismatch in %s: file has %u-byte scalars, caller "
        "expects %zu",
        path.c_str(), h.dtype, sizeof(T))};
  if (h.width <= 0 || h.height <= 0 || h.components <= 0 ||
      h.components > 8)
    throw Error{"corrupt model header: " + path};
  MOG_CHECK(h.components == params.num_components,
            "params.num_components does not match the stored model");

  MogModel<T> model(h.width, h.height, params);
  read_array(in, model.weights(), path);
  read_array(in, model.means(), path);
  read_array(in, model.sds(), path);
  return model;
}

template void save_model<float>(const std::string&, const MogModel<float>&);
template void save_model<double>(const std::string&, const MogModel<double>&);
template MogModel<float> load_model<float>(const std::string&,
                                           const MogParams&);
template MogModel<double> load_model<double>(const std::string&,
                                             const MogParams&);

}  // namespace mog
