#include "mog/cpu/model_io.hpp"

#include <cstring>
#include <fstream>

#include "mog/common/crc32.hpp"
#include "mog/common/strutil.hpp"

namespace mog {

namespace {

constexpr char kMagic[4] = {'M', 'O', 'G', 'M'};
// v1: header + arrays. v2 appends a CRC-32 of the three parameter arrays so
// checkpoint rollback can reject corrupt snapshots; v1 files (no checksum)
// still load.
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kOldestLoadableVersion = 1;

// A header can claim any dimensions it likes; without a cap a 16-byte
// forgery would make the loader allocate terabytes before the truncation
// check fires. 16384² at K=8 is ~50 GB of scalars — far beyond any real
// model, close enough to reject everything absurd.
constexpr std::int32_t kMaxDimension = 16384;

struct Header {
  char magic[4];
  std::uint32_t version;
  std::uint32_t dtype;
  std::int32_t width;
  std::int32_t height;
  std::int32_t components;
};

template <typename T>
void append_array(std::vector<std::uint8_t>& out, const std::vector<T>& v,
                  Crc32& crc) {
  const std::size_t bytes = v.size() * sizeof(T);
  const std::size_t at = out.size();
  out.resize(at + bytes);
  std::memcpy(out.data() + at, v.data(), bytes);
  crc.update(v.data(), bytes);
}

template <typename T>
void extract_array(const std::uint8_t* data, std::size_t& cursor,
                   std::vector<T>& v, Crc32& crc) {
  const std::size_t bytes = v.size() * sizeof(T);
  std::memcpy(v.data(), data + cursor, bytes);
  cursor += bytes;
  crc.update(v.data(), bytes);
}

}  // namespace

template <typename T>
std::vector<std::uint8_t> serialize_model(const MogModel<T>& model) {
  Header h{};
  std::memcpy(h.magic, kMagic, 4);
  h.version = kVersion;
  h.dtype = sizeof(T);
  h.width = model.width();
  h.height = model.height();
  h.components = model.num_components();

  std::vector<std::uint8_t> out;
  out.reserve(sizeof h + 3 * model.weights().size() * sizeof(T) +
              sizeof(std::uint32_t));
  out.resize(sizeof h);
  std::memcpy(out.data(), &h, sizeof h);
  Crc32 crc;
  append_array(out, model.weights(), crc);
  append_array(out, model.means(), crc);
  append_array(out, model.sds(), crc);
  const std::uint32_t checksum = crc.value();
  const std::size_t at = out.size();
  out.resize(at + sizeof checksum);
  std::memcpy(out.data() + at, &checksum, sizeof checksum);
  return out;
}

template <typename T>
MogModel<T> deserialize_model(const std::uint8_t* data, std::size_t size,
                              const MogParams& params,
                              const std::string& context) {
  // Every check fires before the first byte of model state is written, so a
  // rejected payload can never leave a half-restored model behind.
  if (size < sizeof(Header))
    throw ModelTruncatedError{strprintf(
        "truncated model in %s: %zu bytes is shorter than the %zu-byte "
        "header",
        context.c_str(), size, sizeof(Header))};

  Header h{};
  std::memcpy(&h, data, sizeof h);
  if (std::memcmp(h.magic, kMagic, 4) != 0)
    throw ModelFormatError{"not a MOGM model: " + context};
  if (h.version < kOldestLoadableVersion || h.version > kVersion)
    throw ModelFormatError{strprintf("unsupported model version %u in %s",
                                     h.version, context.c_str())};
  if (h.dtype != sizeof(T))
    throw ModelFormatError{strprintf(
        "scalar-type mismatch in %s: payload has %u-byte scalars, caller "
        "expects %zu",
        context.c_str(), h.dtype, sizeof(T))};
  if (h.width <= 0 || h.height <= 0 || h.width > kMaxDimension ||
      h.height > kMaxDimension || h.components <= 0 || h.components > 8)
    throw ModelFormatError{strprintf(
        "corrupt model header in %s: claims %dx%d, %d components",
        context.c_str(), h.width, h.height, h.components)};
  if (h.components != params.num_components)
    throw ModelFormatError{strprintf(
        "component mismatch in %s: payload has %d, params expect %d",
        context.c_str(), h.components, params.num_components)};

  // Dimensions are capped above, so this cannot overflow std::size_t.
  const std::size_t scalars = static_cast<std::size_t>(h.width) *
                              static_cast<std::size_t>(h.height) *
                              static_cast<std::size_t>(h.components);
  const std::size_t payload = 3 * scalars * sizeof(T);
  const std::size_t expected =
      sizeof(Header) + payload +
      (h.version >= 2 ? sizeof(std::uint32_t) : std::size_t{0});
  if (size < expected)
    throw ModelTruncatedError{strprintf(
        "truncated model in %s: %zu bytes, header promises %zu",
        context.c_str(), size, expected)};
  if (size > expected)
    throw ModelFormatError{strprintf(
        "trailing garbage in %s: %zu bytes past the declared payload",
        context.c_str(), size - expected)};

  MogModel<T> model(h.width, h.height, params);
  std::size_t cursor = sizeof(Header);
  Crc32 crc;
  extract_array(data, cursor, model.weights(), crc);
  extract_array(data, cursor, model.means(), crc);
  extract_array(data, cursor, model.sds(), crc);
  if (h.version >= 2) {
    std::uint32_t stored = 0;
    std::memcpy(&stored, data + cursor, sizeof stored);
    if (stored != crc.value())
      throw ModelChecksumError{strprintf(
          "model checksum mismatch in %s (stored %08x, computed %08x) — "
          "snapshot is corrupt",
          context.c_str(), stored, crc.value())};
  }
  return model;
}

template <typename T>
void save_model(const std::string& path, const MogModel<T>& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ModelIoError{"cannot open for writing: " + path};
  const std::vector<std::uint8_t> bytes = serialize_model(model);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw ModelIoError{"write failed: " + path};
}

template <typename T>
MogModel<T> load_model(const std::string& path, const MogParams& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ModelIoError{"cannot open for reading: " + path};
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  if (in.bad()) throw ModelIoError{"read failed: " + path};
  return deserialize_model<T>(bytes.data(), bytes.size(), params, path);
}

template std::vector<std::uint8_t> serialize_model<float>(
    const MogModel<float>&);
template std::vector<std::uint8_t> serialize_model<double>(
    const MogModel<double>&);
template MogModel<float> deserialize_model<float>(const std::uint8_t*,
                                                  std::size_t,
                                                  const MogParams&,
                                                  const std::string&);
template MogModel<double> deserialize_model<double>(const std::uint8_t*,
                                                    std::size_t,
                                                    const MogParams&,
                                                    const std::string&);
template void save_model<float>(const std::string&, const MogModel<float>&);
template void save_model<double>(const std::string&, const MogModel<double>&);
template MogModel<float> load_model<float>(const std::string&,
                                           const MogParams&);
template MogModel<double> load_model<double>(const std::string&,
                                             const MogParams&);

}  // namespace mog
