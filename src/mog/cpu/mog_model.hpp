// Per-pixel Gaussian mixture state.
//
// The model is stored SoA (one array per parameter) because that is what the
// coalesced GPU variants need; the AoS view used by the paper's base variant
// is produced on demand by the GPU pipeline. CPU implementations index the
// SoA arrays directly.
//
// Layout: param[k * num_pixels + pixel] — all pixels' component k are
// contiguous, exactly the coalesced layout of the paper's Fig. 4(b).
#pragma once

#include <cstddef>
#include <vector>

#include "mog/common/error.hpp"
#include "mog/common/image.hpp"
#include "mog/cpu/mog_params.hpp"

namespace mog {

template <typename T>
class MogModel {
 public:
  MogModel() = default;

  MogModel(int width, int height, const MogParams& params)
      : width_(width), height_(height), k_(params.num_components) {
    params.validate();
    MOG_CHECK(width > 0 && height > 0, "model dimensions must be positive");
    const std::size_t n = num_pixels() * static_cast<std::size_t>(k_);
    weight_.assign(n, T{0});
    mean_.assign(n, T{0});
    sd_.assign(n, static_cast<T>(params.initial_sd));
    // Component 0 starts with full weight at mid-gray; the others are dormant
    // (zero weight) and get recruited as virtual components.
    for (std::size_t p = 0; p < num_pixels(); ++p) {
      weight_[p] = T{1};
      mean_[p] = T{128};
    }
  }

  int width() const { return width_; }
  int height() const { return height_; }
  int num_components() const { return k_; }
  std::size_t num_pixels() const {
    return static_cast<std::size_t>(width_) * height_;
  }

  /// Linear index of component k of pixel p in the SoA arrays.
  std::size_t idx(std::size_t pixel, int k) const {
    return static_cast<std::size_t>(k) * num_pixels() + pixel;
  }

  T& weight(std::size_t pixel, int k) { return weight_[idx(pixel, k)]; }
  T& mean(std::size_t pixel, int k) { return mean_[idx(pixel, k)]; }
  T& sd(std::size_t pixel, int k) { return sd_[idx(pixel, k)]; }
  T weight(std::size_t pixel, int k) const { return weight_[idx(pixel, k)]; }
  T mean(std::size_t pixel, int k) const { return mean_[idx(pixel, k)]; }
  T sd(std::size_t pixel, int k) const { return sd_[idx(pixel, k)]; }

  std::vector<T>& weights() { return weight_; }
  std::vector<T>& means() { return mean_; }
  std::vector<T>& sds() { return sd_; }
  const std::vector<T>& weights() const { return weight_; }
  const std::vector<T>& means() const { return mean_; }
  const std::vector<T>& sds() const { return sd_; }

  /// Background estimate: mean of the highest-rank (w/σ) component per pixel.
  Image<T> background_image() const {
    Image<T> bg(width_, height_);
    for (std::size_t p = 0; p < num_pixels(); ++p) {
      int best = 0;
      T best_rank = rank(p, 0);
      for (int k = 1; k < k_; ++k) {
        const T r = rank(p, k);
        if (r > best_rank) {
          best_rank = r;
          best = k;
        }
      }
      bg[p] = mean(p, best);
    }
    return bg;
  }

  T rank(std::size_t pixel, int k) const {
    const T s = sd(pixel, k);
    return s > T{0} ? weight(pixel, k) / s : T{0};
  }

  /// Total model footprint in bytes (the quantity the paper's bandwidth
  /// discussion is about: 284 MB/frame of parameter traffic at K=3, double).
  std::size_t bytes() const {
    return 3 * weight_.size() * sizeof(T);
  }

 private:
  int width_ = 0;
  int height_ = 0;
  int k_ = 0;
  std::vector<T> weight_, mean_, sd_;
};

}  // namespace mog
