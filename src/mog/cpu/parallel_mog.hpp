// Multi-threaded CPU MoG — the paper's 8-thread OpenMP baseline (§IV-A,
// 99.8 s vs 227.3 s serial, i.e. 2.28x). Pixels are independent, so the
// frame is split into contiguous pixel bands, one band per worker thread.
// Implemented with a persistent std::thread pool (equivalent to an OpenMP
// static schedule) to avoid per-frame thread creation cost.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "mog/common/image.hpp"
#include "mog/cpu/mog_model.hpp"
#include "mog/cpu/mog_params.hpp"
#include "mog/cpu/mog_update.hpp"

namespace mog {

template <typename T>
class ParallelMog {
 public:
  ParallelMog(int width, int height, const MogParams& params = {},
              int num_threads = 0);  // 0 = hardware_concurrency
  ~ParallelMog();

  ParallelMog(const ParallelMog&) = delete;
  ParallelMog& operator=(const ParallelMog&) = delete;

  void apply(const FrameU8& frame, FrameU8& fg);

  const MogModel<T>& model() const { return model_; }
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }
  Image<T> background() const { return model_.background_image(); }

 private:
  void worker_loop(int band);
  void process_band(int band, const FrameU8& frame, FrameU8& fg);

  MogParams params_;
  TypedMogParams<T> tp_;
  MogModel<T> model_;

  // Simple generation-counted barrier pool.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool shutting_down_ = false;
  const FrameU8* cur_frame_ = nullptr;
  FrameU8* cur_fg_ = nullptr;
};

extern template class ParallelMog<float>;
extern template class ParallelMog<double>;

}  // namespace mog
