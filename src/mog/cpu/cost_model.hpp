// CPU timing model anchored at the paper's measured wall-clock numbers.
//
// The paper's speedups are ratios of GPU time to single-threaded CPU time on
// an Intel Xeon E5-2620. That machine is not available here, so the CPU side
// of every speedup is produced by this model, anchored exactly at the
// paper's measurements (§IV-A and §V):
//
//   serial, double, K=3:  227.3 s / 450 full-HD frames
//   serial, double, K=5:  406.6 s                      (linear in K, §V-B)
//   serial, float,  K=3:  180.0 s                      (§V-C, ~21% faster)
//   SIMD-customized:      163.0 s                      (0.28x improvement)
//   8-thread OpenMP:       99.8 s                      (2.28x)
//
// Everything else (resolution, frame count) scales linearly — MoG is a
// strictly per-pixel streaming algorithm.
#pragma once

#include <cstdint>

#include "mog/common/error.hpp"

namespace mog {

enum class Precision { kFloat, kDouble };

enum class CpuVariant {
  kSerial,    ///< single-threaded, Algorithm 1 (the reference point)
  kSimd,      ///< SIMD-customized restructure
  kParallel,  ///< multi-threaded (the paper used 8 OpenMP threads)
};

/// Intel Xeon E5-2620 — the paper's Table I CPU column.
struct CpuSpec {
  const char* name = "Intel Xeon E5-2620";
  int cores = 6;
  double frequency_ghz = 2.5;
  double sp_gflops = 120.3;
  double mem_bw_gbps = 12.8;  // DDR3
  int l2_kb = 256;
  int l3_kb = 15 * 1024;
};

class CpuCostModel {
 public:
  /// Modeled wall-clock seconds for processing `frames` frames of
  /// width x height with K Gaussian components. `threads` only matters for
  /// kParallel (the paper's data point is 8 threads).
  double seconds(CpuVariant variant, Precision precision, int width,
                 int height, int frames, int num_components,
                 int threads = 8) const;

  /// The paper's reference point: serial double K=3 over 450 full-HD frames.
  static constexpr double kReferenceSeconds = 227.3;
  static constexpr int kReferenceFrames = 450;
  static constexpr int kReferenceWidth = 1920;
  static constexpr int kReferenceHeight = 1080;
};

}  // namespace mog
