// SIMD-restructured CPU MoG — the paper's "customizing the code for SIMD
// operations" baseline (§IV-A, measured at 1.39x over plain serial).
//
// The restructure is the no-sort/predicated rewrite over SoA storage: the
// per-component loop is branch-free so the compiler can vectorize across
// adjacent pixels. The paper observes only a small SIMD benefit because of
// MoG's conditional structure; the same structure is what limits
// autovectorization here.
#pragma once

#include <cstdint>

#include "mog/common/image.hpp"
#include "mog/cpu/mog_model.hpp"
#include "mog/cpu/mog_params.hpp"
#include "mog/cpu/mog_update.hpp"

namespace mog {

template <typename T>
class SimdMog {
 public:
  SimdMog(int width, int height, const MogParams& params = {});

  void apply(const FrameU8& frame, FrameU8& fg);

  const MogModel<T>& model() const { return model_; }
  Image<T> background() const { return model_.background_image(); }

 private:
  MogParams params_;
  TypedMogParams<T> tp_;
  MogModel<T> model_;
};

extern template class SimdMog<float>;
extern template class SimdMog<double>;

}  // namespace mog
