// The per-pixel MoG step, shared by the CPU implementations.
//
// Two flavours mirror the paper:
//  * update_pixel_sorted   — Algorithm 1: match/update, virtual component,
//                            rank + sort, early-exit foreground scan.
//  * update_pixel_nosort   — Algorithms 2/3/5: predicated update and an
//                            unconditional scan of all components (the
//                            GPU-friendly rewrite; used by the SIMD variant).
//
// Both produce the same foreground decision up to floating-point ordering,
// which is exactly the property the paper's Table IV quantifies.
#pragma once

#include <cmath>
#include <cstdint>

#include "mog/cpu/mog_params.hpp"

namespace mog {

/// MogParams narrowed to the working scalar type, with derived constants
/// precomputed once per sequence instead of once per pixel.
template <typename T>
struct TypedMogParams {
  int k;
  T alpha;            // retention factor
  T one_minus_alpha;
  T gamma1;           // match threshold in σ units
  T gamma1d;          // background-decision threshold in σ units (≤ gamma1)
  T gamma2;           // background weight threshold
  T w_init, sd_init, min_sd;

  static TypedMogParams from(const MogParams& p) {
    p.validate();
    return TypedMogParams{p.num_components,
                          static_cast<T>(p.alpha),
                          static_cast<T>(1.0 - p.alpha),
                          static_cast<T>(p.match_sigma),
                          static_cast<T>(p.decision_sigma),
                          static_cast<T>(p.weight_threshold),
                          static_cast<T>(p.initial_weight),
                          static_cast<T>(p.initial_sd),
                          static_cast<T>(p.min_sd)};
  }
};

namespace detail {

/// Matched-component parameter update (paper's Algorithm 4 lines 3-6).
/// Mean and sd are updated in place. The variance is floored at min_sd²
/// *before* the square root so the same formulation is usable in the
/// predicated flavour (where a blended-away lane must still stay finite).
template <typename T>
inline void update_matched(T& w, T& m, T& sd, T x,
                           const TypedMogParams<T>& p) {
  w = p.alpha * w + p.one_minus_alpha;
  const T tmp = p.one_minus_alpha / w;
  const T delta = x - m;
  m = m + tmp * delta;
  T var = sd * sd;
  var = var + tmp * (delta * delta - var);
  const T min_var = p.min_sd * p.min_sd;
  if (var < min_var) var = min_var;
  sd = std::sqrt(var);
}

}  // namespace detail

/// One pixel, Algorithm 1 (sorted) flavour. `w`, `m`, `sd` point at the
/// pixel's K components (stride `stride` between components, supporting both
/// SoA and AoS storage). Returns true if the pixel is foreground.
template <typename T>
inline bool update_pixel_sorted(T* w, T* m, T* sd, std::size_t stride,
                                T x, const TypedMogParams<T>& p) {
  const int K = p.k;
  MOG_ASSERT(K <= 8, "component count exceeds kMaxComponents");
  // The routine walks the components up to six times (match, virtual-
  // component scan, two normalize passes, sort, decision). With SoA storage
  // the stride is the whole frame, putting every strided access on its own
  // cache line — so gather the K ≤ 8 triples into dense locals once, run
  // every pass stride-1, and scatter back once. The arithmetic and its
  // evaluation order are untouched, so results are bit-identical.
  T lw[8], lm[8], lsd[8];
  for (int k = 0; k < K; ++k) {
    const std::size_t i = k * stride;
    lw[k] = w[i];
    lm[k] = m[i];
    lsd[k] = sd[i];
  }

  bool any_match = false;
  // Pre-update diffs, kept and permuted through the sort exactly as the
  // paper's Algorithm 1 does (diff computed at line 4, reused at line 24).
  T diff[8];

  // Match classification and per-component update (Algorithm 1, lines 3-11).
  for (int k = 0; k < K; ++k) {
    diff[k] = std::abs(lm[k] - x);
    if (diff[k] < p.gamma1 * lsd[k]) {
      detail::update_matched(lw[k], lm[k], lsd[k], x, p);
      any_match = true;
    } else {
      lw[k] = p.alpha * lw[k];
    }
  }

  // Virtual component replaces the lowest-weight one (lines 12-15).
  if (!any_match) {
    int lowest = 0;
    for (int k = 1; k < K; ++k)
      if (lw[k] < lw[lowest]) lowest = k;
    lw[lowest] = p.w_init;
    lm[lowest] = x;
    lsd[lowest] = p.sd_init;
  }

  // Normalize weights so the Γ2 threshold stays meaningful. (For the common
  // single-match case the update rule already preserves Σw = 1; this guards
  // multi-match overlap and virtual-component creation.)
  T wsum = T{0};
  for (int k = 0; k < K; ++k) wsum += lw[k];
  const T inv = T{1} / wsum;
  for (int k = 0; k < K; ++k) lw[k] *= inv;

  // Rank and sort by w/σ descending (lines 16-21). Insertion sort on the
  // parameter triples (diff travels with its component); K ≤ 8 so this is
  // cheap on a CPU.
  for (int k = 1; k < K; ++k) {
    int j = k;
    while (j > 0 && lw[j] / lsd[j] > lw[j - 1] / lsd[j - 1]) {
      std::swap(lw[j], lw[j - 1]);
      std::swap(lm[j], lm[j - 1]);
      std::swap(lsd[j], lsd[j - 1]);
      std::swap(diff[j], diff[j - 1]);
      --j;
    }
  }

  // Foreground decision: scan from highest rank, stop at first background
  // match (lines 22-28; pre-update diff against updated w and sd).
  bool foreground = true;
  for (int k = 0; k < K; ++k) {
    if (lw[k] >= p.gamma2 && diff[k] < p.gamma1d * lsd[k]) {
      foreground = false;  // background
      break;
    }
  }

  for (int k = 0; k < K; ++k) {
    const std::size_t i = k * stride;
    w[i] = lw[k];
    m[i] = lm[k];
    sd[i] = lsd[k];
  }
  return foreground;
}

/// One pixel, no-sort + predicated flavour (Algorithms 3 and 5). Branch-free
/// in the component loop so compilers can vectorize across pixels; identical
/// decisions to the sorted flavour up to floating-point ordering.
template <typename T>
inline bool update_pixel_nosort(T* w, T* m, T* sd, std::size_t stride,
                                T x, const TypedMogParams<T>& p) {
  const int K = p.k;
  MOG_ASSERT(K <= 8, "component count exceeds kMaxComponents");
  // Dense local copies for the same reason as update_pixel_sorted: one
  // strided gather and one strided scatter replace five strided component
  // walks, and the stride-1 passes are what the compiler can vectorize.
  T lw[8], lm[8], lsd[8];
  for (int k = 0; k < K; ++k) {
    const std::size_t i = k * stride;
    lw[k] = w[i];
    lm[k] = m[i];
    lsd[k] = sd[i];
  }

  T any_match = T{0};
  T diffs[8];

  for (int k = 0; k < K; ++k) {
    const T diff = std::abs(lm[k] - x);
    diffs[k] = diff;
    const T match = diff < p.gamma1 * lsd[k] ? T{1} : T{0};
    any_match = any_match + match - any_match * match;  // logical OR

    // Predicated update (Algorithm 5): blend matched/non-matched results.
    // The speculative (blended-away) path must stay finite: 0 * NaN = NaN
    // would otherwise leak through the blend, so the divisor is floored (a
    // matched component always has w_new >= 1-alpha, far above the floor,
    // hence matched results are bit-identical to the branchy path) and the
    // variance is floored before sqrt (same flooring as update_matched).
    const T w_new = p.alpha * lw[k] + match * p.one_minus_alpha;
    const T w_safe = w_new > T{1e-12} ? w_new : T{1e-12};
    const T tmp = p.one_minus_alpha / w_safe;
    const T delta = x - lm[k];
    const T m_new = lm[k] + tmp * delta;
    T var = lsd[k] * lsd[k];
    var = var + tmp * (delta * delta - var);
    const T min_var = p.min_sd * p.min_sd;
    if (var < min_var) var = min_var;
    const T sd_new = std::sqrt(var);

    lw[k] = w_new;
    lm[k] = (T{1} - match) * lm[k] + match * m_new;
    lsd[k] = (T{1} - match) * lsd[k] + match * sd_new;
  }

  if (any_match == T{0}) {
    int lowest = 0;
    for (int k = 1; k < K; ++k)
      if (lw[k] < lw[lowest]) lowest = k;
    lw[lowest] = p.w_init;
    lm[lowest] = x;
    lsd[lowest] = p.sd_init;
  }

  T wsum = T{0};
  for (int k = 0; k < K; ++k) wsum += lw[k];
  const T inv = T{1} / wsum;
  for (int k = 0; k < K; ++k) lw[k] *= inv;

  // Unconditional check of all components (Algorithm 3) — order irrelevant;
  // pre-update diff against updated w and sd, like the sorted flavour.
  bool background = false;
  for (int k = 0; k < K; ++k)
    background |= (lw[k] >= p.gamma2 && diffs[k] < p.gamma1d * lsd[k]);

  for (int k = 0; k < K; ++k) {
    const std::size_t i = k * stride;
    w[i] = lw[k];
    m[i] = lm[k];
    sd[i] = lsd[k];
  }
  return !background;
}

}  // namespace mog
