// Mixture-of-Gaussians algorithm parameters.
//
// The update rule follows the paper's Algorithm 1 / Algorithm 4 excerpt
// (Zhang et al., ICPP 2014, which in turn follows Cheung & Kamath 2005 and
// Stauffer & Grimson 1999):
//
//   matched:      w  = alpha * w + (1 - alpha)
//                 tmp = (1 - alpha) / w
//                 m  = m + tmp * (x - m)
//                 sd² = sd² + tmp * ((x - m_old)² - sd²)
//   non-matched:  w  = alpha * w
//
// i.e. `alpha` is the *retention* factor (close to 1). A component matches
// when |x - m| < match_sigma * sd (the paper's Γ1, expressed in σ units,
// consistent with the foreground test diff/sd < Γ1). A pixel is background
// when a component with weight ≥ weight_threshold (the paper's Γ2) matches.
#pragma once

#include "mog/common/error.hpp"

namespace mog {

struct MogParams {
  int num_components = 3;         ///< K: Gaussian components per pixel (3..5).
  double alpha = 0.99;            ///< weight retention factor.
  /// Γ1 for the match test (σ units). Following the reference
  /// implementation the paper builds on (Cheung & Kamath), the match gate
  /// is wider than the foreground-decision gate: a component can absorb a
  /// sample that is still declared foreground.
  double match_sigma = 3.0;
  double decision_sigma = 2.5;    ///< Γ1 for the background decision (σ).
  double weight_threshold = 0.20; ///< Γ2: background weight threshold.
  double initial_weight = 0.05;   ///< weight of a freshly created component.
  double initial_sd = 15.0;       ///< σ of a freshly created component.
  double min_sd = 4.0;            ///< σ floor (prevents degenerate matches).

  void validate() const {
    MOG_CHECK(num_components >= 1 && num_components <= 8,
              "num_components must be in [1, 8]");
    MOG_CHECK(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    MOG_CHECK(match_sigma > 0.0, "match_sigma must be positive");
    MOG_CHECK(decision_sigma > 0.0 && decision_sigma <= match_sigma,
              "decision_sigma must be in (0, match_sigma]");
    MOG_CHECK(weight_threshold > 0.0 && weight_threshold < 1.0,
              "weight_threshold must be in (0, 1)");
    MOG_CHECK(initial_weight > 0.0 && initial_weight <= 1.0,
              "initial_weight must be in (0, 1]");
    MOG_CHECK(initial_sd > 0.0, "initial_sd must be positive");
    MOG_CHECK(min_sd > 0.0 && min_sd <= initial_sd,
              "min_sd must be in (0, initial_sd]");
  }
};

}  // namespace mog
