#include "mog/cpu/simd_mog.hpp"

namespace mog {

template <typename T>
SimdMog<T>::SimdMog(int width, int height, const MogParams& params)
    : params_(params),
      tp_(TypedMogParams<T>::from(params)),
      model_(width, height, params) {}

template <typename T>
void SimdMog<T>::apply(const FrameU8& frame, FrameU8& fg) {
  MOG_CHECK(frame.width() == model_.width() &&
                frame.height() == model_.height(),
            "frame dimensions do not match the model");
  if (!fg.same_shape(frame)) fg = FrameU8(frame.width(), frame.height());

  const std::size_t n = model_.num_pixels();
  T* w = model_.weights().data();
  T* m = model_.means().data();
  T* sd = model_.sds().data();

  for (std::size_t p = 0; p < n; ++p) {
    const T x = static_cast<T>(frame[p]);
    fg[p] = update_pixel_nosort(w + p, m + p, sd + p, n, x, tp_) ? 255 : 0;
  }
}

template class SimdMog<float>;
template class SimdMog<double>;

}  // namespace mog
