#include "mog/cpu/adaptive_mog.hpp"

#include <cmath>

namespace mog {

template <typename T>
AdaptiveMogModel<T>::AdaptiveMogModel(int width, int height,
                                      const AdaptiveMogParams& params)
    : width_(width), height_(height), k_max_(params.base.num_components) {
  params.validate();
  MOG_CHECK(width > 0 && height > 0, "model dimensions must be positive");
  const std::size_t n = num_pixels() * static_cast<std::size_t>(k_max_);
  weight_.assign(n, T{0});
  mean_.assign(n, T{0});
  sd_.assign(n, static_cast<T>(params.base.initial_sd));
  count_.assign(num_pixels(), 1);
  for (std::size_t p = 0; p < num_pixels(); ++p) {
    weight_[p] = T{1};
    mean_[p] = T{128};
  }
}

template <typename T>
double AdaptiveMogModel<T>::mean_active_components() const {
  std::uint64_t sum = 0;
  for (const std::int32_t c : count_) sum += static_cast<std::uint64_t>(c);
  return static_cast<double>(sum) / static_cast<double>(count_.size());
}

template <typename T>
bool adaptive_update_pixel(T* w, T* m, T* sd, std::int32_t& count,
                           std::size_t stride, T x,
                           const TypedMogParams<T>& p, T prune_weight,
                           std::uint64_t* active_iterations) {
  const int k_max = p.k;
  int n = count;
  MOG_ASSERT(n >= 1 && n <= k_max, "corrupt active-component count");
  bool any_match = false;

  // Match / update over the *active* components only.
  for (int k = 0; k < n; ++k) {
    const std::size_t i = k * stride;
    const T diff = std::abs(m[i] - x);
    if (diff < p.gamma1 * sd[i]) {
      detail::update_matched(w[i], m[i], sd[i], x, p);
      any_match = true;
    } else {
      w[i] = p.alpha * w[i];
    }
  }
  if (active_iterations != nullptr)
    *active_iterations += static_cast<std::uint64_t>(n);

  if (!any_match) {
    // Grow if a slot is free, otherwise replace the lowest-weight one.
    int slot;
    if (n < k_max) {
      slot = n++;
    } else {
      slot = 0;
      for (int k = 1; k < n; ++k)
        if (w[k * stride] < w[slot * stride]) slot = k;
    }
    const std::size_t i = slot * stride;
    w[i] = p.w_init;
    m[i] = x;
    sd[i] = p.sd_init;
  }

  // Normalize over active components.
  T wsum = T{0};
  for (int k = 0; k < n; ++k) wsum += w[k * stride];
  const T inv = T{1} / wsum;
  for (int k = 0; k < n; ++k) w[k * stride] *= inv;

  // Prune negligible components (swap-with-last keeps slots packed).
  for (int k = n - 1; k >= 0 && n > 1; --k) {
    if (w[k * stride] >= prune_weight) continue;
    const int last = n - 1;
    if (k != last) {
      std::swap(w[k * stride], w[last * stride]);
      std::swap(m[k * stride], m[last * stride]);
      std::swap(sd[k * stride], sd[last * stride]);
    }
    --n;
  }

  // Decision over active components (pre-update diff is not retained in
  // this algorithm family; recompute against the current mean).
  bool background = false;
  for (int k = 0; k < n; ++k) {
    const std::size_t i = k * stride;
    background |= (w[i] >= p.gamma2 &&
                   std::abs(x - m[i]) < p.gamma1d * sd[i]);
  }

  count = n;
  return !background;
}

template <typename T>
AdaptiveMog<T>::AdaptiveMog(int width, int height,
                            const AdaptiveMogParams& params)
    : params_(params),
      tp_(TypedMogParams<T>::from(params.base)),
      model_(width, height, params) {}

template <typename T>
void AdaptiveMog<T>::apply(const FrameU8& frame, FrameU8& fg) {
  MOG_CHECK(frame.width() == model_.width() &&
                frame.height() == model_.height(),
            "frame dimensions do not match the model");
  if (!fg.same_shape(frame)) fg = FrameU8(frame.width(), frame.height());

  const std::size_t n = model_.num_pixels();
  T* w = model_.weights().data();
  T* m = model_.means().data();
  T* sd = model_.sds().data();
  std::int32_t* counts = model_.counts().data();
  const T prune = static_cast<T>(params_.prune_weight);

  for (std::size_t p = 0; p < n; ++p) {
    const T x = static_cast<T>(frame[p]);
    fg[p] = adaptive_update_pixel(w + p, m + p, sd + p, counts[p], n, x, tp_,
                                  prune, &active_iterations_)
                ? 255
                : 0;
  }
  ++frames_;
}

template class AdaptiveMog<float>;
template class AdaptiveMog<double>;
template class AdaptiveMogModel<float>;
template class AdaptiveMogModel<double>;

template bool adaptive_update_pixel<float>(float*, float*, float*,
                                           std::int32_t&, std::size_t, float,
                                           const TypedMogParams<float>&,
                                           float, std::uint64_t*);
template bool adaptive_update_pixel<double>(double*, double*, double*,
                                            std::int32_t&, std::size_t,
                                            double,
                                            const TypedMogParams<double>&,
                                            double, std::uint64_t*);

}  // namespace mog
