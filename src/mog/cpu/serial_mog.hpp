// Single-threaded reference MoG — the paper's ground-truth implementation
// (§IV-A: "the single core CPU implementation (-O3 optimization) as the
// reference point"). Faithful to Algorithm 1: per-component match/update,
// virtual component, rank + sort, early-exit foreground scan.
#pragma once

#include <cstdint>

#include "mog/common/image.hpp"
#include "mog/cpu/mog_model.hpp"
#include "mog/cpu/mog_params.hpp"
#include "mog/cpu/mog_update.hpp"

namespace mog {

template <typename T>
class SerialMog {
 public:
  SerialMog(int width, int height, const MogParams& params = {});

  /// Process one frame: update the model and write the foreground mask
  /// (255 = foreground, 0 = background). `fg` is resized as needed.
  void apply(const FrameU8& frame, FrameU8& fg);

  const MogModel<T>& model() const { return model_; }
  MogModel<T>& model() { return model_; }
  const MogParams& params() const { return params_; }

  /// Background estimate (highest-rank component mean per pixel).
  Image<T> background() const { return model_.background_image(); }

  std::uint64_t frames_processed() const { return frames_; }

 private:
  MogParams params_;
  TypedMogParams<T> tp_;
  MogModel<T> model_;
  std::uint64_t frames_ = 0;
};

extern template class SerialMog<float>;
extern template class SerialMog<double>;

}  // namespace mog
