// Variable-component-count MoG — the related-work approach of the paper's
// §II ([18] Azmat et al. / [19] multimodal mean): each pixel maintains only
// as many Gaussian components as its history needs (1..max), growing on
// unmatched samples and pruning negligible-weight components.
//
// On a CPU this saves real work (most pixels are unimodal). The paper
// argues it is a poor fit for GPUs: lockstep warps execute to the
// *maximum* component count across their 32 lanes. This implementation is
// the CPU half of that comparison; kernels/adaptive_kernel.hpp is the GPU
// half, and bench_related_work quantifies the §II claim.
#pragma once

#include <cstdint>
#include <vector>

#include "mog/common/image.hpp"
#include "mog/cpu/mog_params.hpp"
#include "mog/cpu/mog_update.hpp"

namespace mog {

struct AdaptiveMogParams {
  MogParams base;               ///< num_components acts as the per-pixel max
  double prune_weight = 0.015;  ///< drop components below this (post-norm)

  void validate() const {
    base.validate();
    MOG_CHECK(prune_weight >= 0.0 && prune_weight < base.weight_threshold,
              "prune_weight must be in [0, weight_threshold)");
  }
};

/// Per-pixel state: K_max component slots + an active count.
template <typename T>
class AdaptiveMogModel {
 public:
  AdaptiveMogModel() = default;
  AdaptiveMogModel(int width, int height, const AdaptiveMogParams& params);

  int width() const { return width_; }
  int height() const { return height_; }
  int max_components() const { return k_max_; }
  std::size_t num_pixels() const {
    return static_cast<std::size_t>(width_) * height_;
  }

  std::size_t idx(std::size_t pixel, int k) const {
    return static_cast<std::size_t>(k) * num_pixels() + pixel;
  }

  std::vector<T>& weights() { return weight_; }
  std::vector<T>& means() { return mean_; }
  std::vector<T>& sds() { return sd_; }
  std::vector<std::int32_t>& counts() { return count_; }
  const std::vector<std::int32_t>& counts() const { return count_; }
  const std::vector<T>& weights() const { return weight_; }
  const std::vector<T>& means() const { return mean_; }
  const std::vector<T>& sds() const { return sd_; }

  /// Mean active components across all pixels — the CPU-side saving.
  double mean_active_components() const;

 private:
  int width_ = 0, height_ = 0, k_max_ = 0;
  std::vector<T> weight_, mean_, sd_;
  std::vector<std::int32_t> count_;
};

/// One pixel of the adaptive algorithm (exposed for the GPU kernel to share
/// and for direct unit testing). Arrays are strided like MogModel (SoA).
/// Returns foreground; `active_iterations` accumulates the number of
/// component-loop iterations actually needed (the CPU cost proxy).
template <typename T>
bool adaptive_update_pixel(T* w, T* m, T* sd, std::int32_t& count,
                           std::size_t stride, T x,
                           const TypedMogParams<T>& p, T prune_weight,
                           std::uint64_t* active_iterations = nullptr);

template <typename T>
class AdaptiveMog {
 public:
  AdaptiveMog(int width, int height, const AdaptiveMogParams& params = {});

  void apply(const FrameU8& frame, FrameU8& fg);

  const AdaptiveMogModel<T>& model() const { return model_; }
  /// Component-loop iterations executed so far (CPU work proxy).
  std::uint64_t active_iterations() const { return active_iterations_; }
  std::uint64_t frames_processed() const { return frames_; }

 private:
  AdaptiveMogParams params_;
  TypedMogParams<T> tp_;
  AdaptiveMogModel<T> model_;
  std::uint64_t active_iterations_ = 0;
  std::uint64_t frames_ = 0;
};

extern template class AdaptiveMog<float>;
extern template class AdaptiveMog<double>;
extern template class AdaptiveMogModel<float>;
extern template class AdaptiveMogModel<double>;

}  // namespace mog
