// Binary persistence for Gaussian-mixture models.
//
// Long-running deployments warm a background model over minutes of video;
// saving it lets a pipeline restart without re-learning (and lets tests pin
// exact model states). Format: little-endian, self-describing header:
//
//   magic "MOGM" | u32 version | u32 dtype (4=float, 8=double)
//   | i32 width | i32 height | i32 components
//   | weights[] | means[] | sds[]          (each K*W*H scalars, SoA order)
//   | u32 crc32                            (v2+: checksum of the arrays)
//
// Writers emit v2; the loader accepts v1 files (no trailing checksum) and
// verifies the CRC on v2+ so checkpoint rollback can reject corrupt
// snapshots instead of resurrecting garbage into a live pipeline.
#pragma once

#include <string>

#include "mog/cpu/mog_model.hpp"

namespace mog {

template <typename T>
void save_model(const std::string& path, const MogModel<T>& model);

/// Throws mog::Error on malformed files or scalar-type mismatch.
template <typename T>
MogModel<T> load_model(const std::string& path, const MogParams& params);

extern template void save_model<float>(const std::string&,
                                       const MogModel<float>&);
extern template void save_model<double>(const std::string&,
                                        const MogModel<double>&);
extern template MogModel<float> load_model<float>(const std::string&,
                                                  const MogParams&);
extern template MogModel<double> load_model<double>(const std::string&,
                                                    const MogParams&);

}  // namespace mog
