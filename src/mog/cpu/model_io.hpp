// Binary persistence for Gaussian-mixture models.
//
// Long-running deployments warm a background model over minutes of video;
// saving it lets a pipeline restart without re-learning (and lets tests pin
// exact model states). Format: little-endian, self-describing header:
//
//   magic "MOGM" | u32 version | u32 dtype (4=float, 8=double)
//   | i32 width | i32 height | i32 components
//   | weights[] | means[] | sds[]          (each K*W*H scalars, SoA order)
//   | u32 crc32                            (v2+: checksum of the arrays)
//
// Writers emit v2; the loader accepts v1 files (no trailing checksum) and
// verifies the CRC on v2+ so checkpoint rollback can reject corrupt
// snapshots instead of resurrecting garbage into a live pipeline.
//
// The same encoding exists in memory: serialize_model()/deserialize_model()
// are the fleet's live-migration snapshot path (a stream failing over to
// another device round-trips its model through these), so the decoder is
// hardened — truncated, oversized, dimension-bombed, or bit-flipped payloads
// are rejected with a *typed* error before any model state is exposed, never
// returned as partial state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mog/cpu/mog_model.hpp"

namespace mog {

/// Base of every model (de)serialization failure.
class ModelIoError : public Error {
 public:
  using Error::Error;
};

/// Structurally invalid: bad magic, unsupported version, scalar-type or
/// component mismatch, absurd dimensions, or trailing bytes.
class ModelFormatError : public ModelIoError {
 public:
  using ModelIoError::ModelIoError;
};

/// Payload shorter than the header promises (short read / cut-off file).
class ModelTruncatedError : public ModelIoError {
 public:
  using ModelIoError::ModelIoError;
};

/// CRC-32 mismatch over the parameter arrays (bit rot / in-flight flip).
class ModelChecksumError : public ModelIoError {
 public:
  using ModelIoError::ModelIoError;
};

/// Encode the model as a self-contained MOGM v2 image (CRC-protected).
template <typename T>
std::vector<std::uint8_t> serialize_model(const MogModel<T>& model);

/// Decode a MOGM image produced by serialize_model()/save_model(). Throws a
/// ModelIoError subclass on any defect; `context` names the payload's origin
/// in error messages (a path, "migration snapshot", ...).
template <typename T>
MogModel<T> deserialize_model(const std::uint8_t* data, std::size_t size,
                              const MogParams& params,
                              const std::string& context = "model payload");

template <typename T>
void save_model(const std::string& path, const MogModel<T>& model);

/// Throws a ModelIoError subclass on malformed files or scalar-type
/// mismatch.
template <typename T>
MogModel<T> load_model(const std::string& path, const MogParams& params);

extern template std::vector<std::uint8_t> serialize_model<float>(
    const MogModel<float>&);
extern template std::vector<std::uint8_t> serialize_model<double>(
    const MogModel<double>&);
extern template MogModel<float> deserialize_model<float>(const std::uint8_t*,
                                                         std::size_t,
                                                         const MogParams&,
                                                         const std::string&);
extern template MogModel<double> deserialize_model<double>(
    const std::uint8_t*, std::size_t, const MogParams&, const std::string&);
extern template void save_model<float>(const std::string&,
                                       const MogModel<float>&);
extern template void save_model<double>(const std::string&,
                                        const MogModel<double>&);
extern template MogModel<float> load_model<float>(const std::string&,
                                                  const MogParams&);
extern template MogModel<double> load_model<double>(const std::string&,
                                                    const MogParams&);

}  // namespace mog
