// Warp-level SIMT execution engine.
//
// Device kernels are written against this API: values are 32-lane Vec<T>s,
// control flow goes through WarpCtx (if_then / if_then_else / while_any /
// for_range) which maintains the active-mask stack exactly like Fermi's SSY
// + predicated commit scheme — a divergent branch executes both paths under
// complementary masks, so serialization cost, branch-efficiency counters and
// the extra instructions all emerge from simply running the kernel.
//
// Bookkeeping (issue-cycle charging and live-register tracking) happens
// through a thread-local ExecEnv installed while a warp is running; Vec<T>
// objects constructed outside a kernel are inert.
//
// Charging is the interpreter's hottest path (every arithmetic operator and
// memory op pays it), so it is a branch-free add into a constinit
// thread-local accumulator that the launcher flushes into KernelStats at
// warp end — see detail::charge for why this is bit-identical to charging
// each op under the active-mask check.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>

#include "mog/common/error.hpp"
#include "mog/gpusim/coalescer.hpp"
#include "mog/gpusim/device_memory.hpp"
#include "mog/gpusim/stats.hpp"
#include "mog/gpusim/timing_constants.hpp"

namespace mog::gpusim {

using Addr = std::int64_t;  ///< lane-level index/address arithmetic type

inline constexpr std::uint32_t kFullMask = 0xffffffffu;

/// Register footprint of one lane value, in 32-bit words. Addresses (Addr)
/// occupy a 64-bit register pair, as on real hardware.
template <typename T>
inline constexpr int kRegWords = sizeof(T) <= 4 ? 1 : 2;

// ---------------------------------------------------------------------------
// Execution environment (thread-local, installed per running warp)
// ---------------------------------------------------------------------------

struct RegTracker {
  int live_words = 0;
  int peak_words = 0;
};

struct ExecEnv {
  KernelStats* stats = nullptr;
  Coalescer* coalescer = nullptr;
  std::uint32_t active_mask = kFullMask;
};

namespace detail {

/// Per-warp issue accounting, accumulated branch-free (see charge below) and
/// folded into KernelStats by flush_charges at warp end.
struct ChargeAcc {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
};

/// constinit: accesses compile to a direct TLS load with no dynamic-init
/// guard and no function call — the whole point of the accumulators. The
/// register tracker lives here too (not behind an ExecEnv pointer): Vec
/// construction/destruction is the most frequent interpreter event, and a
/// direct TLS read-modify-write beats the two dependent pointer loads of
/// env->regs->.
inline thread_local constinit ChargeAcc tl_charge{};
inline thread_local constinit RegTracker tl_regs{};
inline thread_local constinit ExecEnv* tl_env = nullptr;

}  // namespace detail

/// Currently-running warp environment (nullptr outside kernel execution).
/// Thread-local: every host executor worker installs its own environment
/// while simulating a warp, so warp bookkeeping never needs locking.
inline ExecEnv*& exec_env() { return detail::tl_env; }

/// RAII installation of the thread-local ExecEnv. Kernel callables can throw
/// (MOG_CHECK, fault injection), and a dangling exec_env() pointer left by a
/// failed launch would silently poison the next launch's divergence and
/// register accounting on this thread — the guard makes the reset
/// exception-safe. Installation also rearms the charge accumulator, so
/// cycles charged outside any kernel (inert host-side Vec arithmetic) are
/// dropped rather than billed to the next warp.
class ExecEnvScope {
 public:
  explicit ExecEnvScope(ExecEnv& env) {
    exec_env() = &env;
    detail::tl_charge = {};
    detail::tl_regs = {};
  }
  ~ExecEnvScope() { exec_env() = nullptr; }

  ExecEnvScope(const ExecEnvScope&) = delete;
  ExecEnvScope& operator=(const ExecEnvScope&) = delete;
};

namespace detail {

/// Unconditional accumulate — no environment load, no branch. Bit-identical
/// to the historical per-op `env != nullptr && active_mask != 0` check:
///  * inside a kernel the active mask is never zero at a charge site — the
///    WarpCtx control-flow scopes only execute a branch body under a
///    non-empty mask (if_then skips an untaken branch, while_any exits
///    before the body once every lane has dropped out), and a warp starts
///    with at least one live lane;
///  * outside any kernel the accumulator is never flushed — ExecEnvScope
///    zeroes it on installation, so idle charges vanish exactly as the old
///    null-environment check dropped them.
inline void charge(int cycles) {
  tl_charge.cycles += static_cast<std::uint64_t>(cycles);
  ++tl_charge.instructions;
}

/// Fold the accumulated per-warp charges into `stats` and rearm. The
/// launcher calls this once per warp; integer sums make the deferred flush
/// bit-identical to charging `stats` op by op.
inline void flush_charges(KernelStats& stats) {
  stats.issue_cycles += tl_charge.cycles;
  stats.warp_instructions += tl_charge.instructions;
  tl_charge = {};
}

template <typename T>
inline void charge_arith() {
  if constexpr (sizeof(T) == 8 && std::is_floating_point_v<T>)
    charge(kCyclesDpArith);
  else if constexpr (std::is_floating_point_v<T>)
    charge(kCyclesSpArith);
  else
    charge(kCyclesIntArith);
}

template <typename T>
inline void charge_div() {
  if constexpr (std::is_floating_point_v<T> && sizeof(T) == 8)
    charge(kCyclesDpDiv);
  else if constexpr (std::is_floating_point_v<T>)
    charge(kCyclesSpDiv);
  else
    charge(kCyclesIntArith * 4);  // integer div: multi-instruction sequence
}

template <typename T>
inline void charge_sqrt() {
  charge(sizeof(T) == 8 ? kCyclesDpSqrt : kCyclesSpSqrt);
}

/// Register-allocates `words` if a kernel is running on this thread and
/// returns whether it did — the Vec remembers the answer so its destructor
/// never releases words it did not allocate (a Vec constructed outside a
/// kernel but destroyed while one runs would otherwise drive live_words
/// negative and corrupt peak_words / regs_per_thread).
inline bool track_alloc(int words) {
  if (tl_env == nullptr) return false;
  RegTracker& r = tl_regs;
  r.live_words += words;
  if (r.live_words > r.peak_words) r.peak_words = r.live_words;
  return true;
}
inline void track_release(int words) {
  if (tl_env != nullptr) tl_regs.live_words -= words;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Vec<T>: one register's worth of per-lane values
// ---------------------------------------------------------------------------

template <typename T>
class Vec {
 public:
  Vec() : lane_{}, tracked_(detail::track_alloc(kRegWords<T>)) {}
  explicit Vec(T broadcast) {
    lane_.fill(broadcast);
    tracked_ = detail::track_alloc(kRegWords<T>);
  }
  Vec(const Vec& other)
      : lane_(other.lane_), tracked_(detail::track_alloc(kRegWords<T>)) {}
  Vec(Vec&& other) noexcept
      : lane_(other.lane_), tracked_(detail::track_alloc(kRegWords<T>)) {}
  // Assignment transfers lane values only: this Vec's own allocation (and
  // whether it was tracked at construction) is unchanged.
  Vec& operator=(const Vec& other) {
    lane_ = other.lane_;
    return *this;
  }
  Vec& operator=(Vec&& other) noexcept {
    lane_ = other.lane_;
    return *this;
  }
  ~Vec() {
    if (tracked_) detail::track_release(kRegWords<T>);
  }

  /// Result-register factory for ops that assign every lane: registers are
  /// tracked exactly like the default constructor's, but the lanes start
  /// unspecified, skipping a dead 32-lane zero fill per temporary.
  static Vec uninit() { return Vec{UninitTag{}}; }

  T& operator[](int lane) { return lane_[static_cast<std::size_t>(lane)]; }
  const T& operator[](int lane) const {
    return lane_[static_cast<std::size_t>(lane)];
  }

  /// Raw lane storage, for the tight per-lane loops of the operators below
  /// (contiguous pointer iteration keeps them trivially vectorizable).
  std::array<T, kWarpSize>& lanes() { return lane_; }
  const std::array<T, kWarpSize>& lanes() const { return lane_; }

  /// Lane-indexed iota helper: lane i gets base + i * step.
  static Vec iota(T base, T step = T{1}) {
    Vec v = uninit();
    for (int i = 0; i < kWarpSize; ++i)
      v.lane_[static_cast<std::size_t>(i)] =
          static_cast<T>(base + step * static_cast<T>(i));
    return v;
  }

 private:
  struct UninitTag {};
  explicit Vec(UninitTag) : tracked_(detail::track_alloc(kRegWords<T>)) {}

  std::array<T, kWarpSize> lane_;
  bool tracked_;  ///< allocation was counted at construction (see track_alloc)
};

/// Per-lane boolean predicate (Fermi predicate registers are not part of the
/// general register file, so Pred is untracked).
struct Pred {
  std::uint32_t bits = 0;
  bool lane(int i) const { return (bits >> i) & 1u; }
  void set(int i, bool v) {
    if (v)
      bits |= (1u << i);
    else
      bits &= ~(1u << i);
  }
  friend Pred operator&(Pred a, Pred b) { return Pred{a.bits & b.bits}; }
  friend Pred operator|(Pred a, Pred b) { return Pred{a.bits | b.bits}; }
  friend Pred operator~(Pred a) { return Pred{~a.bits}; }
};

// --- elementwise arithmetic (charged as one warp instruction each) ---------

#define MOG_GPUSIM_BINOP(op)                                            \
  template <typename T>                                                 \
  inline Vec<T> operator op(const Vec<T>& a, const Vec<T>& b) {         \
    detail::charge_arith<T>();                                          \
    Vec<T> r = Vec<T>::uninit();                                        \
    T* rp = r.lanes().data();                                           \
    const T* ap = a.lanes().data();                                     \
    const T* bp = b.lanes().data();                                     \
    for (int i = 0; i < kWarpSize; ++i) rp[i] = ap[i] op bp[i];         \
    return r;                                                           \
  }                                                                     \
  template <typename T>                                                 \
  inline Vec<T> operator op(const Vec<T>& a, T b) {                     \
    detail::charge_arith<T>();                                          \
    Vec<T> r = Vec<T>::uninit();                                        \
    T* rp = r.lanes().data();                                           \
    const T* ap = a.lanes().data();                                     \
    for (int i = 0; i < kWarpSize; ++i) rp[i] = ap[i] op b;             \
    return r;                                                           \
  }                                                                     \
  template <typename T>                                                 \
  inline Vec<T> operator op(T a, const Vec<T>& b) {                     \
    detail::charge_arith<T>();                                          \
    Vec<T> r = Vec<T>::uninit();                                        \
    T* rp = r.lanes().data();                                           \
    const T* bp = b.lanes().data();                                     \
    for (int i = 0; i < kWarpSize; ++i) rp[i] = a op bp[i];             \
    return r;                                                           \
  }

MOG_GPUSIM_BINOP(+)
MOG_GPUSIM_BINOP(-)
MOG_GPUSIM_BINOP(*)
#undef MOG_GPUSIM_BINOP

template <typename T>
inline Vec<T> operator/(const Vec<T>& a, const Vec<T>& b) {
  detail::charge_div<T>();
  Vec<T> r = Vec<T>::uninit();
  T* rp = r.lanes().data();
  const T* ap = a.lanes().data();
  const T* bp = b.lanes().data();
  for (int i = 0; i < kWarpSize; ++i)
    rp[i] = bp[i] != T{0} ? ap[i] / bp[i] : T{0};
  return r;
}
template <typename T>
inline Vec<T> operator/(const Vec<T>& a, T b) {
  detail::charge_div<T>();
  Vec<T> r = Vec<T>::uninit();
  T* rp = r.lanes().data();
  const T* ap = a.lanes().data();
  for (int i = 0; i < kWarpSize; ++i) rp[i] = b != T{0} ? ap[i] / b : T{0};
  return r;
}
template <typename T>
inline Vec<T> operator/(T a, const Vec<T>& b) {
  detail::charge_div<T>();
  Vec<T> r = Vec<T>::uninit();
  T* rp = r.lanes().data();
  const T* bp = b.lanes().data();
  for (int i = 0; i < kWarpSize; ++i)
    rp[i] = bp[i] != T{0} ? a / bp[i] : T{0};
  return r;
}

template <typename T>
inline Vec<T> vabs(const Vec<T>& a) {
  detail::charge_arith<T>();
  Vec<T> r = Vec<T>::uninit();
  T* rp = r.lanes().data();
  const T* ap = a.lanes().data();
  for (int i = 0; i < kWarpSize; ++i) rp[i] = std::abs(ap[i]);
  return r;
}

template <typename T>
inline Vec<T> vsqrt(const Vec<T>& a) {
  detail::charge_sqrt<T>();
  Vec<T> r = Vec<T>::uninit();
  T* rp = r.lanes().data();
  const T* ap = a.lanes().data();
  for (int i = 0; i < kWarpSize; ++i)
    rp[i] = ap[i] > T{0} ? std::sqrt(ap[i]) : T{0};
  return r;
}

namespace detail {

/// Correctly-rounded per-lane fused multiply-add r[i] = fma(a[i],b[i],c[i]).
/// Out of line with function multiversioning (see warp.cpp): on hosts with
/// an FMA unit the clone inlines std::fma into vector vfmadd instructions —
/// bit-identical to the libm call, since IEEE 754 defines exactly one
/// correctly-rounded fma result — replacing 32 libm calls per vfma with a
/// few vector ops. The default clone keeps the portable libm path.
void fma_lanes(const float* a, const float* b, const float* c, float* r);
void fma_lanes(const double* a, const double* b, const double* c, double* r);

}  // namespace detail

/// Fused multiply-add a*b + c — contracted, matching GPU codegen. CPU
/// reference code compiles with -ffp-contract=off, so this is the mechanism
/// behind the paper's small MS-SSIM deltas (§V-A).
template <typename T>
inline Vec<T> vfma(const Vec<T>& a, const Vec<T>& b, const Vec<T>& c) {
  detail::charge_arith<T>();
  Vec<T> r = Vec<T>::uninit();
  detail::fma_lanes(a.lanes().data(), b.lanes().data(), c.lanes().data(),
                    r.lanes().data());
  return r;
}

template <typename T>
inline Vec<T> vmax(const Vec<T>& a, const Vec<T>& b) {
  detail::charge_arith<T>();
  Vec<T> r = Vec<T>::uninit();
  T* rp = r.lanes().data();
  const T* ap = a.lanes().data();
  const T* bp = b.lanes().data();
  for (int i = 0; i < kWarpSize; ++i) rp[i] = ap[i] > bp[i] ? ap[i] : bp[i];
  return r;
}

template <typename T>
inline Vec<T> vmin(const Vec<T>& a, const Vec<T>& b) {
  detail::charge_arith<T>();
  Vec<T> r = Vec<T>::uninit();
  T* rp = r.lanes().data();
  const T* ap = a.lanes().data();
  const T* bp = b.lanes().data();
  for (int i = 0; i < kWarpSize; ++i) rp[i] = ap[i] < bp[i] ? ap[i] : bp[i];
  return r;
}

template <typename To, typename From>
inline Vec<To> vcast(const Vec<From>& a) {
  // Conversion cost follows the destination width: a cast producing doubles
  // runs at the half-rate DP pipe, int targets at the int pipe.
  detail::charge_arith<To>();
  Vec<To> r = Vec<To>::uninit();
  To* rp = r.lanes().data();
  const From* ap = a.lanes().data();
  for (int i = 0; i < kWarpSize; ++i) rp[i] = static_cast<To>(ap[i]);
  return r;
}

/// Predicated blend: lane-wise p ? a : b. One select instruction.
template <typename T>
inline Vec<T> select(const Pred& p, const Vec<T>& a, const Vec<T>& b) {
  detail::charge_arith<T>();
  Vec<T> r = Vec<T>::uninit();
  T* rp = r.lanes().data();
  const T* ap = a.lanes().data();
  const T* bp = b.lanes().data();
  for (int i = 0; i < kWarpSize; ++i)
    rp[i] = (p.bits >> i) & 1u ? ap[i] : bp[i];
  return r;
}

#define MOG_GPUSIM_CMP(name, op)                                        \
  template <typename T>                                                 \
  inline Pred name(const Vec<T>& a, const Vec<T>& b) {                  \
    detail::charge_arith<T>();                                          \
    const T* ap = a.lanes().data();                                     \
    const T* bp = b.lanes().data();                                     \
    std::uint32_t bits = 0;                                             \
    for (int i = 0; i < kWarpSize; ++i)                                 \
      bits |= static_cast<std::uint32_t>(ap[i] op bp[i]) << i;          \
    return Pred{bits};                                                  \
  }                                                                     \
  template <typename T>                                                 \
  inline Pred name(const Vec<T>& a, T b) {                              \
    detail::charge_arith<T>();                                          \
    const T* ap = a.lanes().data();                                     \
    std::uint32_t bits = 0;                                             \
    for (int i = 0; i < kWarpSize; ++i)                                 \
      bits |= static_cast<std::uint32_t>(ap[i] op b) << i;              \
    return Pred{bits};                                                  \
  }

MOG_GPUSIM_CMP(vlt, <)
MOG_GPUSIM_CMP(vle, <=)
MOG_GPUSIM_CMP(vgt, >)
MOG_GPUSIM_CMP(vge, >=)
MOG_GPUSIM_CMP(veq, ==)
#undef MOG_GPUSIM_CMP

// ---------------------------------------------------------------------------
// Shared memory
// ---------------------------------------------------------------------------

/// Block-scope shared array handle (storage owned by BlockCtx).
template <typename T>
struct SharedSpan {
  T* data = nullptr;
  std::uint32_t byte_offset = 0;  ///< within the block's shared segment
  std::size_t count = 0;
};

// ---------------------------------------------------------------------------
// WarpCtx: mask-stack control flow + memory access
// ---------------------------------------------------------------------------

class WarpCtx {
 public:
  /// `active_lanes` < 32 models the ragged last warp of a grid.
  WarpCtx(ExecEnv& env, std::int64_t global_thread_base, int active_lanes);
  ~WarpCtx();

  WarpCtx(const WarpCtx&) = delete;
  WarpCtx& operator=(const WarpCtx&) = delete;

  /// Global thread ids of this warp's lanes (blockIdx*blockDim+threadIdx).
  Vec<Addr> global_ids() const {
    return Vec<Addr>::iota(global_base_, 1);
  }
  std::int64_t global_base() const { return global_base_; }
  std::uint32_t active_mask() const { return env_.active_mask; }
  int active_count() const { return std::popcount(env_.active_mask); }
  bool any_active() const { return env_.active_mask != 0; }

  // --- control flow -------------------------------------------------------
  template <typename ThenFn>
  void if_then(const Pred& p, ThenFn&& then_fn) {
    record_branch(p);
    const std::uint32_t taken = env_.active_mask & p.bits;
    if (taken != 0) {
      MaskScope scope{env_, taken};
      then_fn();
    }
  }

  template <typename ThenFn, typename ElseFn>
  void if_then_else(const Pred& p, ThenFn&& then_fn, ElseFn&& else_fn) {
    record_branch(p);
    const std::uint32_t taken = env_.active_mask & p.bits;
    const std::uint32_t not_taken = env_.active_mask & ~p.bits;
    if (taken != 0) {
      MaskScope scope{env_, taken};
      then_fn();
    }
    if (not_taken != 0) {
      MaskScope scope{env_, not_taken};
      else_fn();
    }
  }

  /// Uniform counted loop (all lanes iterate together; back-edge branches
  /// are never divergent).
  template <typename BodyFn>
  void for_range(int n, BodyFn&& body) {
    for (int i = 0; i < n; ++i) {
      ++env_.stats->branches_executed;
      detail::charge(kCyclesBranch);
      body(i);
    }
    ++env_.stats->branches_executed;  // loop-exit branch
    detail::charge(kCyclesBranch);
  }

  /// Data-dependent loop: iterate while any active lane's condition holds;
  /// lanes whose condition fails drop out (this is where early-exit scans
  /// diverge). `cond` is evaluated under the loop's current mask.
  template <typename CondFn, typename BodyFn>
  void while_any(CondFn&& cond, BodyFn&& body) {
    const std::uint32_t saved = env_.active_mask;
    while (env_.active_mask != 0) {
      const Pred p = cond();
      record_branch(p);
      env_.active_mask &= p.bits;
      if (env_.active_mask == 0) break;
      body();
    }
    env_.active_mask = saved;
  }

  /// Masked commit: dst = src on active lanes only.
  template <typename T>
  void set(Vec<T>& dst, const Vec<T>& src) {
    detail::charge_arith<T>();
    if (env_.active_mask == kFullMask) {
      dst.lanes() = src.lanes();
      return;
    }
    T* dp = dst.lanes().data();
    const T* sp = src.lanes().data();
    for (int i = 0; i < kWarpSize; ++i)
      if ((env_.active_mask >> i) & 1u) dp[i] = sp[i];
  }

  /// Warp-wide OR-reduction of a predicate over active lanes (models the
  /// __any() / vote intrinsic family: one instruction).
  bool any(const Pred& p) const {
    detail::charge(kCyclesIntArith);
    return (env_.active_mask & p.bits) != 0;
  }

  /// Warp-wide max over active lanes (butterfly shuffle reduction: 5 steps
  /// of shfl+max on real hardware). Returns `fallback` when no lane is
  /// active.
  std::int32_t lane_max(const Vec<std::int32_t>& v,
                        std::int32_t fallback = 0) const {
    detail::charge(10 * kCyclesIntArith);  // 5x (shfl + max)
    std::int32_t best = fallback;
    bool found = false;
    for (int i = 0; i < kWarpSize; ++i) {
      if (((env_.active_mask >> i) & 1u) == 0) continue;
      best = found ? std::max(best, v[i]) : v[i];
      found = true;
    }
    return best;
  }

  // --- global memory --------------------------------------------------------
  /// Gather: out lane i = static_cast<T>(span[idx[i]]) for active lanes;
  /// inactive lanes read as zero. Records one warp load instruction.
  template <typename T, typename S>
  Vec<T> load(const DevSpan<S>& span, const Vec<Addr>& idx) {
    Vec<T> out;  // zero-initialized: inactive lanes read as zero
    std::array<std::uint64_t, kWarpSize> addrs;
    T* op = out.lanes().data();
    const Addr* ip = idx.lanes().data();
    int n = 0;
    if (env_.active_mask == kFullMask) {
      for (int i = 0; i < kWarpSize; ++i) {
        const Addr j = ip[i];
        MOG_ASSERT(j >= 0 && static_cast<std::size_t>(j) < span.count,
                   "device load out of bounds");
        op[i] = static_cast<T>(span.data[j]);
        addrs[static_cast<std::size_t>(i)] =
            span.addr_of(static_cast<std::size_t>(j));
      }
      n = kWarpSize;
    } else {
      for (int i = 0; i < kWarpSize; ++i) {
        if (((env_.active_mask >> i) & 1u) == 0) continue;
        const Addr j = ip[i];
        MOG_ASSERT(j >= 0 && static_cast<std::size_t>(j) < span.count,
                   "device load out of bounds");
        op[i] = static_cast<T>(span.data[j]);
        addrs[static_cast<std::size_t>(n++)] =
            span.addr_of(static_cast<std::size_t>(j));
      }
    }
    env_.coalescer->access(Coalescer::Kind::kLoad,
                           std::span<const std::uint64_t>{addrs.data(),
                                                          std::size_t(n)},
                           sizeof(S), *env_.stats);
    detail::charge(kCyclesMemIssue);
    return out;
  }

  /// Scatter: span[idx[i]] = static_cast<S>(v[i]) for active lanes.
  template <typename S, typename T>
  void store(const DevSpan<S>& span, const Vec<Addr>& idx, const Vec<T>& v) {
    std::array<std::uint64_t, kWarpSize> addrs;
    const Addr* ip = idx.lanes().data();
    const T* vp = v.lanes().data();
    int n = 0;
    if (env_.active_mask == kFullMask) {
      for (int i = 0; i < kWarpSize; ++i) {
        const Addr j = ip[i];
        MOG_ASSERT(j >= 0 && static_cast<std::size_t>(j) < span.count,
                   "device store out of bounds");
        span.data[j] = static_cast<S>(vp[i]);
        addrs[static_cast<std::size_t>(i)] =
            span.addr_of(static_cast<std::size_t>(j));
      }
      n = kWarpSize;
    } else {
      for (int i = 0; i < kWarpSize; ++i) {
        if (((env_.active_mask >> i) & 1u) == 0) continue;
        const Addr j = ip[i];
        MOG_ASSERT(j >= 0 && static_cast<std::size_t>(j) < span.count,
                   "device store out of bounds");
        span.data[j] = static_cast<S>(vp[i]);
        addrs[static_cast<std::size_t>(n++)] =
            span.addr_of(static_cast<std::size_t>(j));
      }
    }
    env_.coalescer->access(Coalescer::Kind::kStore,
                           std::span<const std::uint64_t>{addrs.data(),
                                                          std::size_t(n)},
                           sizeof(S), *env_.stats);
    detail::charge(kCyclesMemIssue);
  }

  // --- shared memory ---------------------------------------------------------
  template <typename T>
  Vec<T> shared_load(const SharedSpan<T>& sh, const Vec<Addr>& idx) {
    Vec<T> out;  // zero-initialized: inactive lanes read as zero
    T* op = out.lanes().data();
    const Addr* ip = idx.lanes().data();
    for (int i = 0; i < kWarpSize; ++i) {
      if (((env_.active_mask >> i) & 1u) == 0) continue;
      const Addr j = ip[i];
      MOG_ASSERT(j >= 0 && static_cast<std::size_t>(j) < sh.count,
                 "shared load out of bounds");
      op[i] = sh.data[j];
    }
    charge_shared<T>(sh, idx);
    return out;
  }

  template <typename T>
  void shared_store(const SharedSpan<T>& sh, const Vec<Addr>& idx,
                    const Vec<T>& v) {
    const Addr* ip = idx.lanes().data();
    const T* vp = v.lanes().data();
    for (int i = 0; i < kWarpSize; ++i) {
      if (((env_.active_mask >> i) & 1u) == 0) continue;
      const Addr j = ip[i];
      MOG_ASSERT(j >= 0 && static_cast<std::size_t>(j) < sh.count,
                 "shared store out of bounds");
      sh.data[j] = vp[i];
    }
    charge_shared<T>(sh, idx);
  }

 private:
  struct MaskScope {
    MaskScope(ExecEnv& env, std::uint32_t new_mask)
        : env_(env), saved_(env.active_mask) {
      env_.active_mask = new_mask;
    }
    ~MaskScope() { env_.active_mask = saved_; }
    ExecEnv& env_;
    std::uint32_t saved_;
  };

  void record_branch(const Pred& p) {
    ++env_.stats->branches_executed;
    detail::charge(kCyclesBranch);
    const std::uint32_t taken = env_.active_mask & p.bits;
    if (taken != 0 && taken != env_.active_mask) {
      ++env_.stats->branches_divergent;
      detail::charge(kCyclesDivergence);
    }
  }

  /// Bank-conflict model: 32 banks x 4-byte words; replay count = max number
  /// of *distinct* words needed from one bank. 64-bit types run as two
  /// 32-bit phases (Fermi handles them without inherent conflict).
  template <typename T>
  void charge_shared(const SharedSpan<T>& sh, const Vec<Addr>& idx);

  ExecEnv& env_;
  std::int64_t global_base_;
};

template <typename T>
void WarpCtx::charge_shared(const SharedSpan<T>& sh, const Vec<Addr>& idx) {
  // Distinct 32-bit word addresses per bank, computed on the first word of
  // each element.
  std::uint32_t words[kWarpSize];
  const Addr* ip = idx.lanes().data();
  int n = 0;
  if (env_.active_mask == kFullMask) {
    for (int i = 0; i < kWarpSize; ++i)
      words[i] = static_cast<std::uint32_t>(
          (sh.byte_offset + static_cast<std::uint64_t>(ip[i]) * sizeof(T)) /
          4);
    n = kWarpSize;
  } else {
    for (int i = 0; i < kWarpSize; ++i) {
      if (((env_.active_mask >> i) & 1u) == 0) continue;
      words[n++] = static_cast<std::uint32_t>(
          (sh.byte_offset + static_cast<std::uint64_t>(ip[i]) * sizeof(T)) /
          4);
    }
  }
  // Count each *distinct* word once per bank (same word from several lanes
  // is a broadcast). Dedupe through a small open-addressed set instead of
  // the O(n²) pairwise scan; set membership is order-independent, so the
  // conflict degree is unchanged.
  std::uint32_t seen[64];
  bool used[64] = {};
  int bank_count[kWarpSize] = {};
  int degree = 1;
  for (int a = 0; a < n; ++a) {
    std::uint32_t h = words[a] & 63u;
    for (;;) {
      if (!used[h]) {
        used[h] = true;
        seen[h] = words[a];
        const int bank = static_cast<int>(words[a] % 32u);
        if (++bank_count[bank] > degree) degree = bank_count[bank];
        break;
      }
      if (seen[h] == words[a]) break;  // broadcast: same word, no conflict
      h = (h + 1) & 63u;
    }
  }
  ++env_.stats->shared_accesses;
  env_.stats->shared_cycles += static_cast<std::uint64_t>(
      degree * (sizeof(T) == 8 ? kCyclesSharedF64 : kCyclesSharedF32));
  detail::charge(kCyclesMemIssue);
}

}  // namespace mog::gpusim
