// Warp-level SIMT execution engine.
//
// Device kernels are written against this API: values are 32-lane Vec<T>s,
// control flow goes through WarpCtx (if_then / if_then_else / while_any /
// for_range) which maintains the active-mask stack exactly like Fermi's SSY
// + predicated commit scheme — a divergent branch executes both paths under
// complementary masks, so serialization cost, branch-efficiency counters and
// the extra instructions all emerge from simply running the kernel.
//
// Bookkeeping (issue-cycle charging and live-register tracking) happens
// through a thread-local ExecEnv installed while a warp is running; Vec<T>
// objects constructed outside a kernel are inert.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>

#include "mog/common/error.hpp"
#include "mog/gpusim/coalescer.hpp"
#include "mog/gpusim/device_memory.hpp"
#include "mog/gpusim/stats.hpp"
#include "mog/gpusim/timing_constants.hpp"

namespace mog::gpusim {

using Addr = std::int64_t;  ///< lane-level index/address arithmetic type

/// Register footprint of one lane value, in 32-bit words. Addresses (Addr)
/// occupy a 64-bit register pair, as on real hardware.
template <typename T>
inline constexpr int kRegWords = sizeof(T) <= 4 ? 1 : 2;

// ---------------------------------------------------------------------------
// Execution environment (thread-local, installed per running warp)
// ---------------------------------------------------------------------------

struct RegTracker {
  int live_words = 0;
  int peak_words = 0;
  void alloc(int words) {
    live_words += words;
    if (live_words > peak_words) peak_words = live_words;
  }
  void release(int words) { live_words -= words; }
};

struct ExecEnv {
  KernelStats* stats = nullptr;
  RegTracker* regs = nullptr;
  Coalescer* coalescer = nullptr;
  std::uint32_t active_mask = 0xffffffffu;
};

/// Currently-running warp environment (nullptr outside kernel execution).
/// Thread-local: every host executor worker installs its own environment
/// while simulating a warp, so warp bookkeeping never needs locking.
ExecEnv*& exec_env();

/// RAII installation of the thread-local ExecEnv. Kernel callables can throw
/// (MOG_CHECK, fault injection), and a dangling exec_env() pointer left by a
/// failed launch would silently poison the next launch's divergence and
/// register accounting on this thread — the guard makes the reset
/// exception-safe.
class ExecEnvScope {
 public:
  explicit ExecEnvScope(ExecEnv& env) { exec_env() = &env; }
  ~ExecEnvScope() { exec_env() = nullptr; }

  ExecEnvScope(const ExecEnvScope&) = delete;
  ExecEnvScope& operator=(const ExecEnvScope&) = delete;
};

namespace detail {

inline void charge(int cycles) {
  if (ExecEnv* env = exec_env(); env != nullptr && env->active_mask != 0) {
    env->stats->issue_cycles += static_cast<std::uint64_t>(cycles);
    ++env->stats->warp_instructions;
  }
}

template <typename T>
inline void charge_arith() {
  if constexpr (sizeof(T) == 8 && std::is_floating_point_v<T>)
    charge(kCyclesDpArith);
  else if constexpr (std::is_floating_point_v<T>)
    charge(kCyclesSpArith);
  else
    charge(kCyclesIntArith);
}

template <typename T>
inline void charge_div() {
  if constexpr (std::is_floating_point_v<T> && sizeof(T) == 8)
    charge(kCyclesDpDiv);
  else if constexpr (std::is_floating_point_v<T>)
    charge(kCyclesSpDiv);
  else
    charge(kCyclesIntArith * 4);  // integer div: multi-instruction sequence
}

template <typename T>
inline void charge_sqrt() {
  charge(sizeof(T) == 8 ? kCyclesDpSqrt : kCyclesSpSqrt);
}

/// Register-allocates `words` if a kernel is running on this thread and
/// returns whether it did — the Vec remembers the answer so its destructor
/// never releases words it did not allocate (a Vec constructed outside a
/// kernel but destroyed while one runs would otherwise drive live_words
/// negative and corrupt peak_words / regs_per_thread).
inline bool track_alloc(int words) {
  if (ExecEnv* env = exec_env(); env != nullptr) {
    env->regs->alloc(words);
    return true;
  }
  return false;
}
inline void track_release(int words) {
  if (ExecEnv* env = exec_env(); env != nullptr) env->regs->release(words);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Vec<T>: one register's worth of per-lane values
// ---------------------------------------------------------------------------

template <typename T>
class Vec {
 public:
  Vec() : lane_{}, tracked_(detail::track_alloc(kRegWords<T>)) {}
  explicit Vec(T broadcast) {
    lane_.fill(broadcast);
    tracked_ = detail::track_alloc(kRegWords<T>);
  }
  Vec(const Vec& other)
      : lane_(other.lane_), tracked_(detail::track_alloc(kRegWords<T>)) {}
  Vec(Vec&& other) noexcept
      : lane_(other.lane_), tracked_(detail::track_alloc(kRegWords<T>)) {}
  // Assignment transfers lane values only: this Vec's own allocation (and
  // whether it was tracked at construction) is unchanged.
  Vec& operator=(const Vec& other) {
    lane_ = other.lane_;
    return *this;
  }
  Vec& operator=(Vec&& other) noexcept {
    lane_ = other.lane_;
    return *this;
  }
  ~Vec() {
    if (tracked_) detail::track_release(kRegWords<T>);
  }

  T& operator[](int lane) { return lane_[static_cast<std::size_t>(lane)]; }
  const T& operator[](int lane) const {
    return lane_[static_cast<std::size_t>(lane)];
  }

  /// Lane-indexed iota helper: lane i gets base + i * step.
  static Vec iota(T base, T step = T{1}) {
    Vec v;
    for (int i = 0; i < kWarpSize; ++i)
      v.lane_[static_cast<std::size_t>(i)] =
          static_cast<T>(base + step * static_cast<T>(i));
    return v;
  }

 private:
  std::array<T, kWarpSize> lane_;
  bool tracked_;  ///< allocation was counted at construction (see track_alloc)
};

/// Per-lane boolean predicate (Fermi predicate registers are not part of the
/// general register file, so Pred is untracked).
struct Pred {
  std::uint32_t bits = 0;
  bool lane(int i) const { return (bits >> i) & 1u; }
  void set(int i, bool v) {
    if (v)
      bits |= (1u << i);
    else
      bits &= ~(1u << i);
  }
  friend Pred operator&(Pred a, Pred b) { return Pred{a.bits & b.bits}; }
  friend Pred operator|(Pred a, Pred b) { return Pred{a.bits | b.bits}; }
  friend Pred operator~(Pred a) { return Pred{~a.bits}; }
};

// --- elementwise arithmetic (charged as one warp instruction each) ---------

#define MOG_GPUSIM_BINOP(op)                                            \
  template <typename T>                                                 \
  inline Vec<T> operator op(const Vec<T>& a, const Vec<T>& b) {         \
    detail::charge_arith<T>();                                          \
    Vec<T> r;                                                           \
    for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] op b[i];            \
    return r;                                                           \
  }                                                                     \
  template <typename T>                                                 \
  inline Vec<T> operator op(const Vec<T>& a, T b) {                     \
    detail::charge_arith<T>();                                          \
    Vec<T> r;                                                           \
    for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] op b;               \
    return r;                                                           \
  }                                                                     \
  template <typename T>                                                 \
  inline Vec<T> operator op(T a, const Vec<T>& b) {                     \
    detail::charge_arith<T>();                                          \
    Vec<T> r;                                                           \
    for (int i = 0; i < kWarpSize; ++i) r[i] = a op b[i];               \
    return r;                                                           \
  }

MOG_GPUSIM_BINOP(+)
MOG_GPUSIM_BINOP(-)
MOG_GPUSIM_BINOP(*)
#undef MOG_GPUSIM_BINOP

template <typename T>
inline Vec<T> operator/(const Vec<T>& a, const Vec<T>& b) {
  detail::charge_div<T>();
  Vec<T> r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = b[i] != T{0} ? a[i] / b[i] : T{0};
  return r;
}
template <typename T>
inline Vec<T> operator/(const Vec<T>& a, T b) {
  detail::charge_div<T>();
  Vec<T> r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = b != T{0} ? a[i] / b : T{0};
  return r;
}
template <typename T>
inline Vec<T> operator/(T a, const Vec<T>& b) {
  detail::charge_div<T>();
  Vec<T> r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = b[i] != T{0} ? a / b[i] : T{0};
  return r;
}

template <typename T>
inline Vec<T> vabs(const Vec<T>& a) {
  detail::charge_arith<T>();
  Vec<T> r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = std::abs(a[i]);
  return r;
}

template <typename T>
inline Vec<T> vsqrt(const Vec<T>& a) {
  detail::charge_sqrt<T>();
  Vec<T> r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] > T{0} ? std::sqrt(a[i]) : T{0};
  return r;
}

/// Fused multiply-add a*b + c — contracted, matching GPU codegen. CPU
/// reference code compiles with -ffp-contract=off, so this is the mechanism
/// behind the paper's small MS-SSIM deltas (§V-A).
template <typename T>
inline Vec<T> vfma(const Vec<T>& a, const Vec<T>& b, const Vec<T>& c) {
  detail::charge_arith<T>();
  Vec<T> r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = std::fma(a[i], b[i], c[i]);
  return r;
}

template <typename T>
inline Vec<T> vmax(const Vec<T>& a, const Vec<T>& b) {
  detail::charge_arith<T>();
  Vec<T> r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] > b[i] ? a[i] : b[i];
  return r;
}

template <typename T>
inline Vec<T> vmin(const Vec<T>& a, const Vec<T>& b) {
  detail::charge_arith<T>();
  Vec<T> r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] < b[i] ? a[i] : b[i];
  return r;
}

template <typename To, typename From>
inline Vec<To> vcast(const Vec<From>& a) {
  // Conversion cost follows the destination width: a cast producing doubles
  // runs at the half-rate DP pipe, int targets at the int pipe.
  detail::charge_arith<To>();
  Vec<To> r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = static_cast<To>(a[i]);
  return r;
}

/// Predicated blend: lane-wise p ? a : b. One select instruction.
template <typename T>
inline Vec<T> select(const Pred& p, const Vec<T>& a, const Vec<T>& b) {
  detail::charge_arith<T>();
  Vec<T> r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = p.lane(i) ? a[i] : b[i];
  return r;
}

#define MOG_GPUSIM_CMP(name, op)                                        \
  template <typename T>                                                 \
  inline Pred name(const Vec<T>& a, const Vec<T>& b) {                  \
    detail::charge_arith<T>();                                          \
    Pred p;                                                             \
    for (int i = 0; i < kWarpSize; ++i) p.set(i, a[i] op b[i]);         \
    return p;                                                           \
  }                                                                     \
  template <typename T>                                                 \
  inline Pred name(const Vec<T>& a, T b) {                              \
    detail::charge_arith<T>();                                          \
    Pred p;                                                             \
    for (int i = 0; i < kWarpSize; ++i) p.set(i, a[i] op b);            \
    return p;                                                           \
  }

MOG_GPUSIM_CMP(vlt, <)
MOG_GPUSIM_CMP(vle, <=)
MOG_GPUSIM_CMP(vgt, >)
MOG_GPUSIM_CMP(vge, >=)
MOG_GPUSIM_CMP(veq, ==)
#undef MOG_GPUSIM_CMP

// ---------------------------------------------------------------------------
// Shared memory
// ---------------------------------------------------------------------------

/// Block-scope shared array handle (storage owned by BlockCtx).
template <typename T>
struct SharedSpan {
  T* data = nullptr;
  std::uint32_t byte_offset = 0;  ///< within the block's shared segment
  std::size_t count = 0;
};

// ---------------------------------------------------------------------------
// WarpCtx: mask-stack control flow + memory access
// ---------------------------------------------------------------------------

class WarpCtx {
 public:
  /// `active_lanes` < 32 models the ragged last warp of a grid.
  WarpCtx(ExecEnv& env, std::int64_t global_thread_base, int active_lanes);
  ~WarpCtx();

  WarpCtx(const WarpCtx&) = delete;
  WarpCtx& operator=(const WarpCtx&) = delete;

  /// Global thread ids of this warp's lanes (blockIdx*blockDim+threadIdx).
  Vec<Addr> global_ids() const {
    return Vec<Addr>::iota(global_base_, 1);
  }
  std::int64_t global_base() const { return global_base_; }
  std::uint32_t active_mask() const { return env_.active_mask; }
  int active_count() const { return std::popcount(env_.active_mask); }
  bool any_active() const { return env_.active_mask != 0; }

  // --- control flow -------------------------------------------------------
  template <typename ThenFn>
  void if_then(const Pred& p, ThenFn&& then_fn) {
    record_branch(p);
    const std::uint32_t taken = env_.active_mask & p.bits;
    if (taken != 0) {
      MaskScope scope{env_, taken};
      then_fn();
    }
  }

  template <typename ThenFn, typename ElseFn>
  void if_then_else(const Pred& p, ThenFn&& then_fn, ElseFn&& else_fn) {
    record_branch(p);
    const std::uint32_t taken = env_.active_mask & p.bits;
    const std::uint32_t not_taken = env_.active_mask & ~p.bits;
    if (taken != 0) {
      MaskScope scope{env_, taken};
      then_fn();
    }
    if (not_taken != 0) {
      MaskScope scope{env_, not_taken};
      else_fn();
    }
  }

  /// Uniform counted loop (all lanes iterate together; back-edge branches
  /// are never divergent).
  template <typename BodyFn>
  void for_range(int n, BodyFn&& body) {
    for (int i = 0; i < n; ++i) {
      ++env_.stats->branches_executed;
      detail::charge(kCyclesBranch);
      body(i);
    }
    ++env_.stats->branches_executed;  // loop-exit branch
    detail::charge(kCyclesBranch);
  }

  /// Data-dependent loop: iterate while any active lane's condition holds;
  /// lanes whose condition fails drop out (this is where early-exit scans
  /// diverge). `cond` is evaluated under the loop's current mask.
  template <typename CondFn, typename BodyFn>
  void while_any(CondFn&& cond, BodyFn&& body) {
    const std::uint32_t saved = env_.active_mask;
    while (env_.active_mask != 0) {
      const Pred p = cond();
      record_branch(p);
      env_.active_mask &= p.bits;
      if (env_.active_mask == 0) break;
      body();
    }
    env_.active_mask = saved;
  }

  /// Masked commit: dst = src on active lanes only.
  template <typename T>
  void set(Vec<T>& dst, const Vec<T>& src) {
    detail::charge_arith<T>();
    for (int i = 0; i < kWarpSize; ++i)
      if ((env_.active_mask >> i) & 1u) dst[i] = src[i];
  }

  /// Warp-wide OR-reduction of a predicate over active lanes (models the
  /// __any() / vote intrinsic family: one instruction).
  bool any(const Pred& p) const {
    detail::charge(kCyclesIntArith);
    return (env_.active_mask & p.bits) != 0;
  }

  /// Warp-wide max over active lanes (butterfly shuffle reduction: 5 steps
  /// of shfl+max on real hardware). Returns `fallback` when no lane is
  /// active.
  std::int32_t lane_max(const Vec<std::int32_t>& v,
                        std::int32_t fallback = 0) const {
    detail::charge(10 * kCyclesIntArith);  // 5x (shfl + max)
    std::int32_t best = fallback;
    bool found = false;
    for (int i = 0; i < kWarpSize; ++i) {
      if (((env_.active_mask >> i) & 1u) == 0) continue;
      best = found ? std::max(best, v[i]) : v[i];
      found = true;
    }
    return best;
  }

  // --- global memory --------------------------------------------------------
  /// Gather: out lane i = static_cast<T>(span[idx[i]]) for active lanes;
  /// inactive lanes read as zero. Records one warp load instruction.
  template <typename T, typename S>
  Vec<T> load(const DevSpan<S>& span, const Vec<Addr>& idx) {
    Vec<T> out;
    std::array<std::uint64_t, kWarpSize> addrs;
    int n = 0;
    for (int i = 0; i < kWarpSize; ++i) {
      if (((env_.active_mask >> i) & 1u) == 0) continue;
      const Addr j = idx[i];
      MOG_ASSERT(j >= 0 && static_cast<std::size_t>(j) < span.count,
                 "device load out of bounds");
      out[i] = static_cast<T>(span.data[j]);
      addrs[static_cast<std::size_t>(n++)] =
          span.addr_of(static_cast<std::size_t>(j));
    }
    env_.coalescer->access(Coalescer::Kind::kLoad,
                           std::span<const std::uint64_t>{addrs.data(),
                                                          std::size_t(n)},
                           sizeof(S), *env_.stats);
    detail::charge(kCyclesMemIssue);
    return out;
  }

  /// Scatter: span[idx[i]] = static_cast<S>(v[i]) for active lanes.
  template <typename S, typename T>
  void store(const DevSpan<S>& span, const Vec<Addr>& idx, const Vec<T>& v) {
    std::array<std::uint64_t, kWarpSize> addrs;
    int n = 0;
    for (int i = 0; i < kWarpSize; ++i) {
      if (((env_.active_mask >> i) & 1u) == 0) continue;
      const Addr j = idx[i];
      MOG_ASSERT(j >= 0 && static_cast<std::size_t>(j) < span.count,
                 "device store out of bounds");
      span.data[j] = static_cast<S>(v[i]);
      addrs[static_cast<std::size_t>(n++)] =
          span.addr_of(static_cast<std::size_t>(j));
    }
    env_.coalescer->access(Coalescer::Kind::kStore,
                           std::span<const std::uint64_t>{addrs.data(),
                                                          std::size_t(n)},
                           sizeof(S), *env_.stats);
    detail::charge(kCyclesMemIssue);
  }

  // --- shared memory ---------------------------------------------------------
  template <typename T>
  Vec<T> shared_load(const SharedSpan<T>& sh, const Vec<Addr>& idx) {
    Vec<T> out;
    for (int i = 0; i < kWarpSize; ++i) {
      if (((env_.active_mask >> i) & 1u) == 0) continue;
      const Addr j = idx[i];
      MOG_ASSERT(j >= 0 && static_cast<std::size_t>(j) < sh.count,
                 "shared load out of bounds");
      out[i] = sh.data[j];
    }
    charge_shared<T>(sh, idx);
    return out;
  }

  template <typename T>
  void shared_store(const SharedSpan<T>& sh, const Vec<Addr>& idx,
                    const Vec<T>& v) {
    for (int i = 0; i < kWarpSize; ++i) {
      if (((env_.active_mask >> i) & 1u) == 0) continue;
      const Addr j = idx[i];
      MOG_ASSERT(j >= 0 && static_cast<std::size_t>(j) < sh.count,
                 "shared store out of bounds");
      sh.data[j] = v[i];
    }
    charge_shared<T>(sh, idx);
  }

 private:
  struct MaskScope {
    MaskScope(ExecEnv& env, std::uint32_t new_mask)
        : env_(env), saved_(env.active_mask) {
      env_.active_mask = new_mask;
    }
    ~MaskScope() { env_.active_mask = saved_; }
    ExecEnv& env_;
    std::uint32_t saved_;
  };

  void record_branch(const Pred& p) {
    ++env_.stats->branches_executed;
    detail::charge(kCyclesBranch);
    const std::uint32_t taken = env_.active_mask & p.bits;
    if (taken != 0 && taken != env_.active_mask) {
      ++env_.stats->branches_divergent;
      detail::charge(kCyclesDivergence);
    }
  }

  /// Bank-conflict model: 32 banks x 4-byte words; replay count = max number
  /// of *distinct* words needed from one bank. 64-bit types run as two
  /// 32-bit phases (Fermi handles them without inherent conflict).
  template <typename T>
  void charge_shared(const SharedSpan<T>& sh, const Vec<Addr>& idx);

  ExecEnv& env_;
  std::int64_t global_base_;
};

template <typename T>
void WarpCtx::charge_shared(const SharedSpan<T>& sh, const Vec<Addr>& idx) {
  // Distinct 32-bit word addresses per bank, computed on the first word of
  // each element.
  std::uint32_t words[kWarpSize];
  int n = 0;
  for (int i = 0; i < kWarpSize; ++i) {
    if (((env_.active_mask >> i) & 1u) == 0) continue;
    words[n++] = static_cast<std::uint32_t>(
        (sh.byte_offset + static_cast<std::uint64_t>(idx[i]) * sizeof(T)) / 4);
  }
  int bank_count[kWarpSize] = {};
  int degree = 1;
  for (int a = 0; a < n; ++a) {
    bool dup = false;
    for (int b = 0; b < a; ++b)
      if (words[b] == words[a]) {
        dup = true;  // broadcast: same word, no conflict
        break;
      }
    if (dup) continue;
    const int bank = static_cast<int>(words[a] % 32u);
    if (++bank_count[bank] > degree) degree = bank_count[bank];
  }
  ++env_.stats->shared_accesses;
  env_.stats->shared_cycles += static_cast<std::uint64_t>(
      degree * (sizeof(T) == 8 ? kCyclesSharedF64 : kCyclesSharedF32));
  detail::charge(kCyclesMemIssue);
}

}  // namespace mog::gpusim
