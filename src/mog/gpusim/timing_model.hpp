// Analytical kernel timing from simulated event counts.
//
// Per kernel launch:
//
//   compute  = issue_cycles / SMs / sustained_issue_efficiency
//   shared   = shared_cycles / SMs
//   bw_floor = L1-level bytes transferred / memory-system bandwidth
//              + page_switches * activation_penalty          (device-wide)
//   latency  = transactions * dram_latency
//              / (SMs * resident_warps * mem_parallelism)    (Little's law)
//   exposed  = latency * (1 - occ / (occ + kHideHalfOccupancy))
//
//   total    = max(compute + shared + exposed, bw_floor) + launch_overhead
//
// Rationale: compute and the *un-hidden* part of memory latency serialize
// inside an SM; bandwidth is a device-wide throughput floor no amount of
// multithreading can beat. Occupancy enters twice (resident warps for
// Little's law; the saturating hide() factor), which is what makes the
// paper's register/occupancy optimizations pay off in modeled seconds.
#pragma once

#include "mog/gpusim/device_spec.hpp"
#include "mog/gpusim/occupancy.hpp"
#include "mog/gpusim/stats.hpp"

namespace mog::gpusim {

struct KernelTiming {
  double compute_seconds = 0;
  double shared_seconds = 0;
  double bandwidth_floor_seconds = 0;
  double latency_seconds = 0;          ///< raw latency-bound term
  double exposed_latency_seconds = 0;  ///< after occupancy hiding
  double launch_overhead_seconds = 0;
  double total_seconds = 0;

  /// Which term bound the kernel ("compute", "bandwidth").
  const char* bound_by = "compute";
};

KernelTiming kernel_time(const KernelStats& stats, const Occupancy& occ,
                         const DeviceSpec& spec);

}  // namespace mog::gpusim
