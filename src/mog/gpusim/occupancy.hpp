// SM occupancy calculator (CUDA occupancy rules for compute capability 2.0).
//
// Occupancy = resident warps per SM / max warps per SM, limited by:
//   * warps per block vs the 48-warp SM limit,
//   * the 8-blocks-per-SM scheduler limit,
//   * register file: registers are allocated per warp with 64-register
//     granularity on Fermi,
//   * shared memory per block (128-byte allocation granularity).
//
// The profiler-style *achieved* occupancy applies the calibrated
// kAchievedOccupancyFactor (scheduler gaps, tail blocks never reach the
// theoretical bound in practice).
#pragma once

#include <cstdint>

#include "mog/gpusim/device_spec.hpp"

namespace mog::gpusim {

struct Occupancy {
  int blocks_per_sm = 0;
  int warps_per_sm = 0;
  double theoretical = 0.0;  ///< warps_per_sm / max_warps_per_sm
  double achieved = 0.0;     ///< theoretical * kAchievedOccupancyFactor

  /// Which resource bound the result (useful in reports and tests).
  enum class Limiter { kWarps, kBlocks, kRegisters, kSharedMem };
  Limiter limiter = Limiter::kWarps;

  int resident_threads() const { return warps_per_sm * 32; }
};

Occupancy compute_occupancy(const DeviceSpec& spec, int regs_per_thread,
                            int threads_per_block,
                            std::uint64_t shared_bytes_per_block);

const char* to_string(Occupancy::Limiter limiter);

}  // namespace mog::gpusim
