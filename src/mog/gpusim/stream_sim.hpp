// Discrete-event simulation of the host-side frame pipeline.
//
// The closed-form schedules in transfer_model.hpp summarize Fig. 5; this
// module *simulates* the pipeline instead: one DMA engine (the C2075 has a
// single copy engine, so uploads and downloads serialize) and one compute
// engine, with real data dependencies (kernel i needs upload i; download i
// needs kernel i; double buffering lets upload i+1 proceed once kernel i-1
// released its input buffer). It produces the exact operation timeline —
// renderable as a Fig.-5-style Gantt chart — and cross-validates the closed
// forms (tests assert they agree).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mog/gpusim/transfer_model.hpp"

namespace mog::gpusim {

struct TimelineOp {
  enum class Engine { kDma, kKernel };
  Engine engine;
  int frame;
  const char* kind;  // "up", "kernel", "down"
  double start_seconds;
  double end_seconds;
};

struct Timeline {
  std::vector<TimelineOp> ops;
  double total_seconds = 0;

  /// Render as a two-row ASCII Gantt chart (DMA / KER), `columns` wide.
  std::string ascii(int columns = 72) const;
};

/// Fig. 5(a): strictly sequential per frame.
Timeline simulate_sequential(const FrameSchedule& frame, int frames);

/// Fig. 5(b): overlapped with double buffering and one copy engine.
Timeline simulate_overlapped(const FrameSchedule& frame, int frames);

}  // namespace mog::gpusim
