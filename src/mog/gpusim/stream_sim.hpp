// Discrete-event simulation of the host-side frame pipeline.
//
// The closed-form schedules in transfer_model.hpp summarize Fig. 5; this
// module *simulates* the pipeline instead: one DMA engine (the C2075 has a
// single copy engine, so uploads and downloads serialize) and one compute
// engine, with real data dependencies (kernel i needs upload i; download i
// needs kernel i; double buffering lets upload i+1 proceed once kernel i-1
// released its input buffer). It produces the exact operation timeline —
// renderable as a Fig.-5-style Gantt chart — and cross-validates the closed
// forms (tests assert they agree).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mog/gpusim/transfer_model.hpp"

namespace mog::gpusim {

struct TimelineOp {
  enum class Engine { kDma, kKernel };
  Engine engine;
  int frame;
  const char* kind;  // "up", "kernel", "down"
  double start_seconds;
  double end_seconds;
};

struct Timeline {
  std::vector<TimelineOp> ops;
  double total_seconds = 0;

  /// Render as a two-row ASCII Gantt chart (DMA / KER), `columns` wide.
  std::string ascii(int columns = 72) const;
};

/// Fig. 5(a): strictly sequential per frame.
Timeline simulate_sequential(const FrameSchedule& frame, int frames);

/// Fig. 5(b): overlapped with double buffering and one copy engine.
Timeline simulate_overlapped(const FrameSchedule& frame, int frames);

/// Multi-stream generalization of the Fig. 5(b) contention model: one DMA
/// engine and one kernel engine shared by any number of camera streams, with
/// operations arriving incrementally instead of from a closed-form loop. The
/// serving layer drives one of these per simulated device to model how N
/// pipelines share the single copy engine.
///
/// Engine reservations are granted in call order (the engines are FIFOs,
/// like real CUDA copy/compute queues), so the caller's enqueue order is
/// part of the model — the serving scheduler enqueues the next round's
/// uploads ahead of the previous round's downloads, which reproduces
/// simulate_overlapped() exactly for a single stream (tests assert this).
///
/// Per stream, frames are FIFO through a bounded buffer pool: the upload of
/// frame i may not start before the kernel that consumed frame i - buffers
/// of the same stream has completed (double buffering is buffers = 2; the
/// tiled variant rotates 2 * frame_group buffers at group granularity).
class SharedTimeline {
 public:
  struct Window {
    double start_seconds = 0;
    double end_seconds = 0;
  };

  /// Register a stream with a `buffers`-deep device-buffer rotation.
  /// Returns the stream's index.
  int add_stream(int buffers = 2);

  int num_streams() const { return static_cast<int>(streams_.size()); }

  /// Reserve the copy engine for one upload of `seconds`, no earlier than
  /// `ready_seconds` (frame arrival) and not before the stream's buffer
  /// rotation frees a slot.
  Window schedule_upload(int stream, double ready_seconds, double seconds);

  /// Reserve the kernel engine, no earlier than `ready_seconds` (the end of
  /// the consumed uploads). `uploads_consumed` frames of the stream's buffer
  /// rotation are released when this kernel completes (1 per frame for the
  /// direct variants, frame_group for a tiled group launch).
  Window schedule_kernel(int stream, double ready_seconds, double seconds,
                         int uploads_consumed = 1);

  /// Reserve the copy engine for a (possibly batched) download, no earlier
  /// than `ready_seconds` (the producing kernel's end).
  Window schedule_download(int stream, double ready_seconds, double seconds);

  double dma_free_seconds() const { return dma_free_; }
  double kernel_free_seconds() const { return kernel_free_; }

  /// Cumulative seconds each engine spent occupied. Divided by the makespan
  /// these are the copy/compute utilizations the /metrics endpoint exports —
  /// the saturation signal that says which engine is the multi-stream
  /// bottleneck (the paper's single copy engine usually saturates first).
  double dma_busy_seconds() const { return dma_busy_; }
  double kernel_busy_seconds() const { return kernel_busy_; }

  /// Every scheduled operation (TimelineOp::frame holds the stream index);
  /// total_seconds is the makespan so far.
  const Timeline& timeline() const { return tl_; }
  double makespan_seconds() const { return tl_.total_seconds; }

 private:
  struct StreamLane {
    int buffers = 2;
    std::uint64_t uploads = 0;   ///< uploads scheduled so far
    std::uint64_t consumed = 0;  ///< uploads released by scheduled kernels
    /// release_seconds[i] = completion of the kernel that consumed upload i
    /// (known for every i < consumed).
    std::vector<double> release_seconds;
  };

  double dma_free_ = 0;
  double kernel_free_ = 0;
  double dma_busy_ = 0;
  double kernel_busy_ = 0;
  std::vector<StreamLane> streams_;
  Timeline tl_;
};

}  // namespace mog::gpusim
