// Kernel launch framework: grid/block decomposition, per-warp execution,
// shared-memory arena, and counter aggregation.
//
// A kernel is a callable `void(BlockCtx&)`. Inside, `blk.parallel(fn)` runs
// `fn(WarpCtx&)` once per warp of the block; consecutive parallel() sections
// are separated by an implicit __syncthreads() (the simulator executes warps
// of a section sequentially, so any cross-warp shared-memory communication
// must straddle a section boundary — the same discipline real CUDA code
// needs around barriers).
//
// Blocks of one launch run concurrently across host worker threads
// (DeviceSpec::executor_threads), mirroring the independence real CUDA
// blocks have across SMs: a kernel may not communicate between blocks
// within a launch. Kernel callables are invoked concurrently from multiple
// threads and must only write device memory owned by their own block's
// threads — exactly the discipline the modeled hardware enforces.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "mog/gpusim/block_executor.hpp"
#include "mog/gpusim/coalescer.hpp"
#include "mog/gpusim/device_memory.hpp"
#include "mog/gpusim/device_spec.hpp"
#include "mog/gpusim/fault_hooks.hpp"
#include "mog/gpusim/stats.hpp"
#include "mog/gpusim/warp.hpp"
// Header-only profiler tag primitives (one relaxed load per site when no
// sampler runs); gpusim does not link mog_obs — see sampler.hpp.
#include "mog/obs/sampler.hpp"

namespace mog::gpusim {

struct LaunchConfig {
  std::int64_t num_threads = 0;  ///< grid size in threads (≥ 1)
  int threads_per_block = 128;
};

class BlockCtx {
 public:
  BlockCtx(std::int64_t block_id, int threads_in_block, int threads_per_block,
           KernelStats& stats, Coalescer& coalescer,
           std::vector<std::byte>& shared_arena);

  std::int64_t block_id() const { return block_id_; }
  int threads_per_block() const { return threads_per_block_; }
  int threads_in_block() const { return threads_in_block_; }
  int num_warps() const {
    return (threads_in_block_ + kWarpSize - 1) / kWarpSize;
  }

  /// Allocate a block-scope shared array (8-byte aligned). Counts toward the
  /// block's shared-memory footprint for the occupancy calculation. The
  /// arena is pre-sized to the SM's physical capacity so earlier SharedSpan
  /// pointers never dangle; over-allocation is a kernel bug and throws.
  template <typename T>
  SharedSpan<T> shared_alloc(std::size_t count) {
    const std::size_t offset = (shared_used_ + 7) / 8 * 8;
    const std::size_t bytes = count * sizeof(T);
    MOG_CHECK(offset + bytes <= shared_arena_.size(),
              "kernel exceeds per-SM shared memory capacity");
    shared_used_ = offset + bytes;
    if (shared_used_ > stats_.shared_bytes_per_block)
      stats_.shared_bytes_per_block = shared_used_;
    return SharedSpan<T>{reinterpret_cast<T*>(shared_arena_.data() + offset),
                         static_cast<std::uint32_t>(offset), count};
  }

  /// Run `fn(WarpCtx&)` for every warp of the block. Implicit barrier
  /// between consecutive parallel() calls.
  template <typename Fn>
  void parallel(Fn&& fn) {
    const obs::ProfSpan prof_span{obs::ProfTag::kWarpDispatch};
    const int warps = num_warps();
    for (int w = 0; w < warps; ++w) {
      const int lanes = std::min<int>(kWarpSize,
                                      threads_in_block_ - w * kWarpSize);
      ExecEnv env{&stats_, &coalescer_, 0xffffffffu};
      coalescer_.begin_warp();
      // RAII: a kernel that throws mid-warp (MOG_CHECK, fault injection)
      // must not leave this thread's exec_env() dangling for the next
      // launch's bookkeeping to scribble through.
      ExecEnvScope env_scope{env};
      {
        WarpCtx warp{env, block_id_ * threads_per_block_ +
                              static_cast<std::int64_t>(w) * kWarpSize,
                     lanes};
        fn(warp);
      }
      // Per-op issue/instruction charges and register high-water marks
      // accumulate in thread-locals (branch-free hot path, see
      // detail::charge / detail::track_alloc); fold them in here, once per
      // warp, while the scope is still installed.
      {
        const obs::ProfSpan flush_span{obs::ProfTag::kChargeFlush};
        detail::flush_charges(stats_);
        ++stats_.num_warps;
        if (detail::tl_regs.peak_words > peak_reg_words_)
          peak_reg_words_ = detail::tl_regs.peak_words;
      }
    }
  }

  int peak_reg_words() const { return peak_reg_words_; }

 private:
  std::int64_t block_id_;
  int threads_in_block_;
  int threads_per_block_;
  KernelStats& stats_;
  Coalescer& coalescer_;
  std::vector<std::byte>& shared_arena_;
  std::size_t shared_used_ = 0;
  int peak_reg_words_ = 0;
};

/// The simulated device: spec + global memory + launch entry point.
class Device {
 public:
  explicit Device(DeviceSpec spec = {});

  const DeviceSpec& spec() const { return spec_; }
  DeviceMemory& memory() { return memory_; }
  const DeviceMemory& memory() const { return memory_; }

  /// Install a fault-injection hook (non-owning; nullptr restores fault-free
  /// operation). The hook is consulted by launch() and the hooked transfer
  /// members below — the plain copy_to_device/copy_from_device free
  /// functions stay fault-free, so model initialization and recovery
  /// (checkpoint upload, rollback) never fail.
  void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }
  FaultHook* fault_hook() const { return fault_hook_; }

  /// Install a counter export hook (non-owning; nullptr detaches). The sink
  /// observes the finalized KernelStats of every successful launch — this is
  /// how the telemetry layer aggregates per-launch counters without the
  /// pipeline having to forward them by hand.
  void set_stats_sink(StatsSink* sink) { stats_sink_ = sink; }
  StatsSink* stats_sink() const { return stats_sink_; }

  /// Hooked host->device DMA transfer: may throw TransferError, and the
  /// installed hook may corrupt the delivered payload in place.
  template <typename T>
  std::size_t upload(DevSpan<T> dst, const T* src, std::size_t count) {
    if (fault_hook_)
      fault_hook_->before_transfer(TransferDir::kHostToDevice,
                                   count * sizeof(T));
    const std::size_t bytes = copy_to_device(dst, src, count);
    if (fault_hook_)
      fault_hook_->after_transfer(TransferDir::kHostToDevice, dst.data, bytes);
    return bytes;
  }

  /// Hooked device->host DMA transfer; mirror of upload().
  template <typename T>
  std::size_t download(T* dst, DevSpan<T> src, std::size_t count) {
    if (fault_hook_)
      fault_hook_->before_transfer(TransferDir::kDeviceToHost,
                                   count * sizeof(T));
    const std::size_t bytes = copy_from_device(dst, src, count);
    if (fault_hook_)
      fault_hook_->after_transfer(TransferDir::kDeviceToHost, dst, bytes);
    return bytes;
  }

  /// Execute a kernel over the whole grid, returning its profiler counters.
  /// Functional side effects land in device memory synchronously. With a
  /// fault hook installed the launch may throw LaunchError *before* any
  /// block runs (device state is untouched, mirroring a CUDA launch
  /// failure); a MOG_CHECK failure inside the kernel propagates from
  /// whichever host worker hit it.
  ///
  /// Blocks execute across spec().executor_threads host workers (resolved by
  /// resolved_executor_threads; 1 = serial). Results are bit-identical at
  /// any thread count: blocks are independent, each worker accumulates into
  /// private state (KernelStats, Coalescer, shared-memory arena), the
  /// per-worker stats merge in fixed worker order with commutative integer
  /// reductions, and DRAM open-row accounting is replayed in block order
  /// (see run_blocks). Telemetry delivery (the StatsSink) stays on the
  /// launching thread.
  template <typename KernelFn>
  KernelStats launch(const LaunchConfig& config, KernelFn&& kernel) {
    validate(config);
    if (fault_hook_) fault_hook_->before_launch();
    return run_blocks(config, [&kernel](BlockCtx& blk) { kernel(blk); });
  }

  /// Worker count this device's launches resolve to.
  int executor_threads() const {
    return resolved_executor_threads(spec_.executor_threads);
  }

 private:
  void validate(const LaunchConfig& config) const;

  /// Type-erased launch body: per-worker state setup, block dispatch
  /// (serial or via the persistent BlockExecutor), deterministic reduction.
  KernelStats run_blocks(const LaunchConfig& config,
                         const std::function<void(BlockCtx&)>& block_fn);

  std::vector<std::byte>& worker_arena(int worker);

  /// Per-worker accumulation state, persistent across launches so the
  /// steady-state frame loop performs no per-launch allocation: stats and
  /// caches are reset at launch entry instead of rebuilt, and each worker's
  /// flat page-trace arena keeps its high-water capacity. Defined out of
  /// line (ctor needs timing constants private to kernel_launch.cpp).
  struct WorkerState {
    explicit WorkerState(const DeviceSpec& spec);
    KernelStats stats;
    Coalescer coalescer;
    int peak_reg_words = 0;
    std::vector<std::uint64_t> page_trace;  ///< parallel launches only
  };
  /// Block id → the slice of its worker's page_trace it produced, so the
  /// block-order DRAM replay can walk traces without per-block vectors.
  struct TraceSpan {
    int worker = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  DeviceSpec spec_;
  DeviceMemory memory_;
  /// One shared-memory arena per host worker (index 0 = launching thread);
  /// grown lazily so a serial device never pays for a pool's worth.
  std::vector<std::vector<std::byte>> worker_arenas_;
  std::vector<WorkerState> workers_;
  std::vector<TraceSpan> block_spans_;
  std::unique_ptr<BlockExecutor> executor_;  ///< lazy; created on first
                                             ///< parallel launch
  FaultHook* fault_hook_ = nullptr;
  StatsSink* stats_sink_ = nullptr;
};

}  // namespace mog::gpusim
